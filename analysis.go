package bgpsim

import (
	"fmt"
	"io"
	"math/rand"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/deploy"
	"github.com/bgpsim/bgpsim/internal/detect"
	"github.com/bgpsim/bgpsim/internal/experiments"
	"github.com/bgpsim/bgpsim/internal/irr"
	"github.com/bgpsim/bgpsim/internal/pgbgp"
	"github.com/bgpsim/bgpsim/internal/selfinterest"
	"github.com/bgpsim/bgpsim/internal/topology"
)

// Additional re-exports for the analysis APIs.
type (
	// DetectionResult summarizes one probe configuration against an
	// attack workload.
	DetectionResult = detect.Result
	// MissedAttack is one attack no probe saw.
	MissedAttack = detect.MissedAttack
	// DeploymentEval is one strategy's sweep outcome.
	DeploymentEval = deploy.Evaluation
	// RegionalReport measures a region's exposure to hijacks of one of
	// its members.
	RegionalReport = selfinterest.RegionalResult
	// PGBGPResult is a PGBGP-defense sweep outcome.
	PGBGPResult = pgbgp.Result
	// IRRRegistry is an Internet Routing Registry (RPSL route objects);
	// it satisfies OriginValidator for use in HijackSpec.ValidateAgainst.
	IRRRegistry = irr.Registry
	// RouteObject is one RPSL route registration.
	RouteObject = irr.RouteObject
)

// LoadIRR parses RPSL route objects into a registry usable as an origin
// validator (the paper's "most widely-used" prevention data source).
func LoadIRR(r io.Reader) (*IRRRegistry, error) { return irr.Parse(r) }

// --- Detection --------------------------------------------------------------

// Tier1Probes peers a detector with every tier-1 AS (the paper's case 1).
func (s *Simulator) Tier1Probes() ProbeSet {
	return detect.Tier1Probes(s.world.Class)
}

// TopDegreeProbes peers with the k highest-degree ASes (the paper's
// case 3).
func (s *Simulator) TopDegreeProbes(k int) ProbeSet {
	return detect.TopDegreeProbes(s.world.Graph, k)
}

// BGPmonLikeProbes builds the paper's case-2 configuration: k
// medium-degree transit ASes with regional clustering.
func (s *Simulator) BGPmonLikeProbes(k int, seed int64) ProbeSet {
	return detect.BGPmonLikeProbes(s.world.Graph, s.world.Class, k, seedRNG(seed))
}

// seedRNG is the facade's seed→generator boundary: the public API speaks
// plain int64 seeds, the internal packages consume explicit *rand.Rand.
func seedRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// ProbesAt builds a probe set from explicit ASNs.
func (s *Simulator) ProbesAt(name string, probes []ASN) (ProbeSet, error) {
	nodes := make([]int, 0, len(probes))
	for _, p := range probes {
		i, err := s.nodeOf(p)
		if err != nil {
			return ProbeSet{}, err
		}
		nodes = append(nodes, i)
	}
	return detect.CustomProbes(name, nodes), nil
}

// ProbeASNs converts a probe set's nodes back to ASNs.
func (s *Simulator) ProbeASNs(ps ProbeSet) []ASN {
	out := make([]ASN, 0, len(ps.Probes))
	for _, i := range ps.Probes {
		out = append(out, s.world.Graph.ASN(i))
	}
	return out
}

// GreedyProbes trains a probe set of up to k ASes by greedy set cover on
// a random workload of `attacks` transit-pair hijacks: each round adds the
// AS that catches the most still-undetected attacks — the constructive
// form of the paper's "high-degree, non-overlapping ASes" recommendation.
func (s *Simulator) GreedyProbes(k, attacks int, seed int64) (ProbeSet, error) {
	workload, err := detect.GenerateAttacks(s.world.Graph.TransitNodes(), attacks, seedRNG(seed))
	if err != nil {
		return ProbeSet{}, err
	}
	return detect.GreedyProbes(s.world.Policy, workload, nil, k)
}

// EvaluateDetection runs `attacks` random transit-pair hijacks against the
// probe configuration and reports trigger histograms and misses. The same
// (attacks, seed) pair yields the same workload across configurations, so
// results are directly comparable.
func (s *Simulator) EvaluateDetection(ps ProbeSet, attacks int, seed int64) (*DetectionResult, error) {
	workload, err := detect.GenerateAttacks(s.world.Graph.TransitNodes(), attacks, seedRNG(seed))
	if err != nil {
		return nil, err
	}
	return detect.Evaluate(s.world.Policy, ps, workload, detect.SelectedRoute, core.Defense{})
}

// --- Deployment -------------------------------------------------------------

// EvaluateDeployment sweeps the target from every transit AS (or a seeded
// sample of `sample` of them) under each strategy in turn.
func (s *Simulator) EvaluateDeployment(target ASN, strategies []Strategy, sample int, seed int64) ([]DeploymentEval, error) {
	tgt, err := s.nodeOf(target)
	if err != nil {
		return nil, err
	}
	attackers := experiments.SampleAttackers(s.world.Graph.TransitNodes(), sample, seedRNG(seed))
	return deploy.Evaluate(s.world.Policy, tgt, attackers, strategies, 0)
}

// RandomDeployment deploys filters at k random transit ASes.
func (s *Simulator) RandomDeployment(k int, seed int64) Strategy {
	return deploy.Random(s.world.Graph, k, seedRNG(seed))
}

// Tier1Deployment deploys filters at every tier-1 AS.
func (s *Simulator) Tier1Deployment() Strategy {
	return deploy.Tier1(s.world.Class)
}

// TopDegreeDeployment deploys filters at the k highest-degree ASes.
func (s *Simulator) TopDegreeDeployment(k int) Strategy {
	return deploy.TopDegree(s.world.Graph, k)
}

// DeploymentAt builds a strategy from explicit ASNs.
func (s *Simulator) DeploymentAt(name string, filters []ASN) (Strategy, error) {
	nodes := make([]int, 0, len(filters))
	for _, f := range filters {
		i, err := s.nodeOf(f)
		if err != nil {
			return Strategy{}, err
		}
		nodes = append(nodes, i)
	}
	return deploy.Custom(name, nodes), nil
}

// EvaluatePGBGP sweeps the target with PGBGP history-based depref active
// at the deployed ASes (instead of drop-style filtering): deployers treat
// the hijack's novel origin as suspicious and avoid it whenever any
// historically normal route exists, falling back rather than
// disconnecting.
func (s *Simulator) EvaluatePGBGP(target ASN, deployed []ASN, sample int, seed int64) (*PGBGPResult, error) {
	tgt, err := s.nodeOf(target)
	if err != nil {
		return nil, err
	}
	nodes := make([]int, 0, len(deployed))
	for _, d := range deployed {
		i, err := s.nodeOf(d)
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, i)
	}
	attackers := experiments.SampleAttackers(s.world.Graph.TransitNodes(), sample, seedRNG(seed))
	return pgbgp.Evaluate(s.world.Policy, tgt, attackers, nodes)
}

// --- Regions and Section VII tooling ----------------------------------------

// RegionOf returns the region label of an AS (-1 when unassigned).
func (s *Simulator) RegionOf(a ASN) (int, error) {
	i, err := s.nodeOf(a)
	if err != nil {
		return 0, err
	}
	return s.world.Graph.Region(i), nil
}

// RegionASNs lists the ASes labeled with a region.
func (s *Simulator) RegionASNs(region int) []ASN {
	nodes := s.world.Graph.RegionNodes(region)
	out := make([]ASN, 0, len(nodes))
	for _, i := range nodes {
		out = append(out, s.world.Graph.ASN(i))
	}
	return out
}

// IslandRegion returns the generated topology's island region label (the
// New Zealand analog) — the highest region id in use — or -1 when the
// topology has no regions.
func (s *Simulator) IslandRegion() int {
	best := -1
	for i := 0; i < s.world.Graph.N(); i++ {
		if r := s.world.Graph.Region(i); r > best {
			best = r
		}
	}
	return best
}

// RegionHub returns the highest-degree transit AS of a region.
func (s *Simulator) RegionHub(region int) (ASN, error) {
	hub, err := selfinterest.RegionHub(s.world.Graph, region)
	if err != nil {
		return 0, err
	}
	return s.world.Graph.ASN(hub), nil
}

// MeasureRegional attacks the target from every AS in its region plus
// outsideSample random outsiders, reporting how much of the region each
// attack class pollutes. filters (optional) is an active deployment.
func (s *Simulator) MeasureRegional(target ASN, outsideSample int, seed int64, filters []ASN) (*RegionalReport, error) {
	tgt, err := s.nodeOf(target)
	if err != nil {
		return nil, err
	}
	region := s.world.Graph.Region(tgt)
	if region < 0 {
		return nil, fmt.Errorf("AS %v has no region label", target)
	}
	var blocked *asn.IndexSet
	if len(filters) > 0 {
		blocked = asn.NewIndexSet(s.world.Graph.N())
		for _, f := range filters {
			i, err := s.nodeOf(f)
			if err != nil {
				return nil, err
			}
			blocked.Add(i)
		}
	}
	return selfinterest.MeasureRegional(s.world.Policy, tgt, region, outsideSample, seedRNG(seed), blocked)
}

// Rehome returns a new Simulator in which the target has been re-homed
// `levels` steps up its provider chain (the paper's vulnerability-reduction
// step). The original Simulator is unchanged.
func (s *Simulator) Rehome(target ASN, levels int) (*Simulator, error) {
	tgt, err := s.nodeOf(target)
	if err != nil {
		return nil, err
	}
	ng, _, err := selfinterest.RehomeUp(s.world.Graph, s.world.Class, tgt, levels)
	if err != nil {
		return nil, err
	}
	w, err := experiments.WorldFromGraph(ng)
	if err != nil {
		return nil, err
	}
	return &Simulator{world: w, solver: newSolverFor(w)}, nil
}

// PollutedASNs lists the ASes that selected a route to the attacker in an
// outcome (e.g. HijackReport.Outcome).
func (s *Simulator) PollutedASNs(o *Outcome) []ASN {
	var out []ASN
	for i := 0; i < o.N(); i++ {
		if o.Polluted(i) {
			out = append(out, s.world.Graph.ASN(i))
		}
	}
	return out
}

// ASesAtDepth returns up to max stub ASes at the given depth.
func (s *Simulator) ASesAtDepth(depth, max int) []ASN {
	nodes := topology.FindTargets(s.world.Graph, s.world.Class, topology.TargetQuery{Depth: depth, Stub: true}, max)
	out := make([]ASN, 0, len(nodes))
	for _, i := range nodes {
		out = append(out, s.world.Graph.ASN(i))
	}
	return out
}
