#!/bin/sh
# Lifecycle smoke test for cmd/hijackd: start the daemon on a fixture
# world and an ephemeral port, poll /healthz until it serves, push one
# query through every endpoint, reload and assert the snapshot epoch
# bumped, then SIGTERM with a query in flight and assert the daemon
# answers it before printing its drain line and exiting 0. The
# deterministic drain/shed proofs live in internal/queryd's tests —
# this script checks the wiring between them and the real process:
# flags, signal handlers, listener lifecycle, stderr contract.
# Usage: scripts/check_hijackd_smoke.sh
set -eu

cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
PID=""
cleanup() {
    [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/hijackd" ./cmd/hijackd

"$WORK/hijackd" -scale 400 -seed 7 -workers 2 -listen 127.0.0.1:0 \
    2> "$WORK/stderr.log" &
PID=$!

# The daemon prints its resolved address once the listener is up.
ADDR=""
for _ in $(seq 1 100); do
    ADDR="$(sed -n 's#^hijackd: listening on http://##p' "$WORK/stderr.log" | head -1)"
    [ -n "$ADDR" ] && break
    kill -0 "$PID" 2>/dev/null || { cat "$WORK/stderr.log" >&2; echo "FAIL: hijackd died before listening" >&2; exit 1; }
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "FAIL: no listening line after 10s" >&2; exit 1; }

req() { # req METHOD PATH [BODY] -> body on stdout, fails on non-2xx
    method="$1"; path="$2"; body="${3:-}"
    if [ -n "$body" ]; then
        curl -fsS -X "$method" -d "$body" "http://$ADDR$path"
    else
        curl -fsS -X "$method" "http://$ADDR$path"
    fi
}

H="$(req GET /healthz)"
printf '%s\n' "$H" | grep -q '"epoch": *1' || { echo "FAIL: /healthz epoch != 1: $H" >&2; exit 1; }

A="$(req POST /v1/attack '{"target": 133, "attacker": 7, "exact": true}')"
printf '%s\n' "$A" | grep -q '"path": *"\(delta\|full\)"' || { echo "FAIL: exact attack answer: $A" >&2; exit 1; }

E="$(req POST /v1/attack '{"target": 133, "attacker": 7}')"
printf '%s\n' "$E" | grep -q '"path": *"estimate"' || { echo "FAIL: estimate answer: $E" >&2; exit 1; }

V="$(req POST /v1/vulnerability '{"target": 133, "attackers": [5, 7, 200]}')"
printf '%s\n' "$V" | grep -q '"pollution"' || { echo "FAIL: vulnerability answer: $V" >&2; exit 1; }

D="$(req POST /v1/deployment '{"target": 133, "strategies": [{"tier1": true}, {"top_degree": 10}]}')"
printf '%s\n' "$D" | grep -q '"deployed"' || { echo "FAIL: deployment answer: $D" >&2; exit 1; }

T="$(req POST /v1/detection '{"probes": [{"name": "pair", "probes": [3, 50]}], "attacks": [{"attacker": 7, "target": 133}]}')"
printf '%s\n' "$T" | grep -q '"total_attacks": *1' || { echo "FAIL: detection answer: $T" >&2; exit 1; }

req GET /metrics | grep -q '"snapshots"' || { echo "FAIL: /metrics shape" >&2; exit 1; }

R="$(req POST /reload)"
printf '%s\n' "$R" | grep -q '"epoch": *2' || { echo "FAIL: reload did not bump epoch: $R" >&2; exit 1; }
H2="$(req GET /healthz)"
printf '%s\n' "$H2" | grep -q '"epoch": *2' || { echo "FAIL: /healthz stale after reload: $H2" >&2; exit 1; }

# Drain: fire a wide sub-prefix sweep (every attack takes the full-solve
# path — the slowest query this world offers), give it a head start,
# then SIGTERM. The daemon must answer the in-flight query, print its
# drain line, and exit 0. Indices stay below 100: sibling contraction
# makes the world smaller than -scale.
ATTACKERS="$(awk 'BEGIN { printf "[" ; for (i = 0; i < 100; i++) printf "%s%d", (i ? "," : ""), i; printf "]" }')"
curl -fsS -d "{\"target\": 133, \"attackers\": $ATTACKERS, \"sub_prefix\": true}" \
    "http://$ADDR/v1/vulnerability" > "$WORK/inflight.json" &
CURL=$!
sleep 0.2
kill -TERM "$PID"
if ! wait "$CURL"; then
    echo "FAIL: in-flight query failed across SIGTERM" >&2; exit 1
fi
grep -q '"pollution"' "$WORK/inflight.json" || { echo "FAIL: in-flight answer truncated" >&2; exit 1; }
if ! wait "$PID"; then
    echo "FAIL: hijackd exited non-zero on SIGTERM" >&2; cat "$WORK/stderr.log" >&2; exit 1
fi
PID=""
grep -q '^hijackd: drained, exiting$' "$WORK/stderr.log" || { echo "FAIL: no drain line" >&2; cat "$WORK/stderr.log" >&2; exit 1; }

echo "OK: hijackd served every endpoint, reloaded to epoch 2, and drained cleanly on SIGTERM"
