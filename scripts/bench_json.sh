#!/bin/sh
# Run the sweep-backed reproduction benchmarks (Figures 2, 5, 7, the
# kernel scaling micro-benchmarks, and the buffered-vs-streaming
# reduction comparison) and write the measurements as JSON, then run
# the shard-codec benchmarks (json vs recio encode/decode throughput,
# bytes on disk, and resume-replay cost) into a second JSON file.
# Then run the firehose replay-throughput benchmark (MRT updates
# through probe sessions into a TCP collector) into a third JSON file,
# and the hijackd serving benchmarks (query latency quantiles,
# delta-vs-full solve speedup, overload shedding) into a fourth.
# Usage: scripts/bench_json.sh [outfile] [recio-outfile] [firehose-outfile] [hijackd-outfile]
# Output: outfile is one JSON array; each element carries the benchmark
# name, the worker count (0 when the benchmark does not parameterize
# workers), the shard count (0 likewise), ns/op, B/op, allocs/op, and
# the peak RSS in KB (0 when the benchmark does not sample it).
# recio-outfile is one JSON object: per-codec encode/decode MB/s and
# bytes-on-disk (json, recio, recio-col), the json:recio size ratio,
# resume cost through both paths (checkpoint replay vs index seek), the
# single-column read cost, and the machine's CPU count — the writer's
# segment-compression pool scales with cores, so throughput numbers are
# only comparable at the same gomaxprocs. The top-level
# encode_recio_mb_per_s key is the value scripts/check_bench_trend.sh
# gates on.
set -eu

OUT="${1:-BENCH_sweep.json}"
RECOUT="${2:-BENCH_recio.json}"
FHOUT="${3:-BENCH_firehose.json}"
HJOUT="${4:-BENCH_hijackd.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' \
  -bench 'BenchmarkFig2VulnerabilityTier1|BenchmarkFig5IncrementalDefenseDepth1|BenchmarkFig7DetectorConfigurations|BenchmarkSweepRunWorkers|BenchmarkMatrixShards|BenchmarkVulnerabilityReduction|BenchmarkScenarioKinds' \
  -benchmem -benchtime 1x . ./internal/sweep ./internal/experiments | tee "$RAW"

# Benchmark lines look like:
#   BenchmarkSweepRunWorkers/workers=4-8  1  12345 ns/op  678 B/op  9 allocs/op  [extra metrics]
#   BenchmarkVulnerabilityReduction/streaming-8  1  12345 ns/op  678 peakRSS-KB  9 B/op  1 allocs/op
awk '
BEGIN { print "["; first = 1 }
/^Benchmark/ {
    name = $1
    workers = 0
    if (match(name, /workers=[0-9]+/)) {
        workers = substr(name, RSTART + 8, RLENGTH - 8) + 0
    }
    shards = 0
    if (match(name, /shards=[0-9]+/)) {
        shards = substr(name, RSTART + 7, RLENGTH - 7) + 0
    }
    ns = ""; bytes = ""; allocs = ""; rss = "0"
    for (i = 2; i < NF; i++) {
        if ($(i + 1) == "ns/op") ns = $i
        if ($(i + 1) == "B/op") bytes = $i
        if ($(i + 1) == "allocs/op") allocs = $i
        if ($(i + 1) == "peakRSS-KB") rss = $i
    }
    if (ns == "") next
    if (!first) printf ",\n"
    first = 0
    printf "  {\"name\": \"%s\", \"workers\": %d, \"shards\": %d, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s, \"peak_rss_kb\": %s}", \
        name, workers, shards, ns, (bytes == "" ? "0" : bytes), (allocs == "" ? "0" : allocs), rss
}
END { print "\n]" }
' "$RAW" > "$OUT"

echo "wrote $OUT"

# Shard-codec section: the same 20k-record shard through all three
# codecs. With SetBytes (disk size) the harness prints MB/s directly;
# disk-B is the codec's own bytes-on-disk metric. Sub-benchmark names
# are matched with their trailing -GOMAXPROCS suffix optional (the
# harness omits it on single-CPU machines), and the recio matcher is
# anchored so it cannot swallow recio-col's lines.
go test -run '^$' \
  -bench 'BenchmarkShardEncode|BenchmarkShardDecode|BenchmarkShardResumeReplay|BenchmarkShardSeekResume|BenchmarkShardColumnRead' \
  -benchtime 30x ./internal/sweep | tee "$RAW"

# Benchmark lines look like:
#   BenchmarkShardEncode/json-8   10  1234 ns/op  125.50 MB/s  1547082 disk-B
#   BenchmarkShardResumeReplay-8  10  5678 ns/op  40.20 MB/s
awk -v ncpu="$(nproc 2>/dev/null || echo 1)" '
BEGIN { print "{"; print "  \"benchmarks\": ["; first = 1 }
/^Benchmark/ {
    name = $1
    ns = ""; mbs = "0"; disk = "0"
    for (i = 2; i < NF; i++) {
        if ($(i + 1) == "ns/op") ns = $i
        if ($(i + 1) == "MB/s") mbs = $i
        if ($(i + 1) == "disk-B") disk = $i
    }
    if ($NF == "disk-B") disk = $(NF - 1)
    if (ns == "") next
    if (!first) printf ",\n"
    first = 0
    printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"mb_per_s\": %s, \"disk_bytes\": %s}", \
        name, ns, mbs, disk
    if (name ~ /^BenchmarkShardEncode\/json(-[0-9]+)?$/)      json_disk = disk
    if (name ~ /^BenchmarkShardEncode\/recio(-[0-9]+)?$/)     { recio_disk = disk; recio_mbs = mbs }
    if (name ~ /^BenchmarkShardEncode\/recio-col(-[0-9]+)?$/) col_disk = disk
    if (name ~ /^BenchmarkShardDecode\/recio(-[0-9]+)?$/)     dec_mbs = mbs
    if (name ~ /^BenchmarkShardResumeReplay/)                 replay_ns = ns
    if (name ~ /^BenchmarkShardSeekResume/)                   seek_ns = ns
}
END {
    print "\n  ],"
    ratio = (recio_disk + 0 > 0) ? (json_disk + 0) / (recio_disk + 0) : 0
    printf "  \"gomaxprocs\": %d,\n", ncpu
    printf "  \"disk_bytes_json\": %s,\n", (json_disk == "" ? "0" : json_disk)
    printf "  \"disk_bytes_recio\": %s,\n", (recio_disk == "" ? "0" : recio_disk)
    printf "  \"disk_bytes_recio_col\": %s,\n", (col_disk == "" ? "0" : col_disk)
    printf "  \"compression_ratio\": %.2f,\n", ratio
    printf "  \"encode_recio_mb_per_s\": %s,\n", (recio_mbs == "" ? "0" : recio_mbs)
    printf "  \"decode_recio_mb_per_s\": %s,\n", (dec_mbs == "" ? "0" : dec_mbs)
    printf "  \"resume_replay_ns\": %s,\n", (replay_ns == "" ? "0" : replay_ns)
    printf "  \"resume_seek_ns\": %s\n", (seek_ns == "" ? "0" : seek_ns)
    print "}"
}
' "$RAW" > "$RECOUT"

echo "wrote $RECOUT"

# Firehose section: 20k synthetic updates over 8 probe sessions into a
# real TCP collector, end to end (dispatch, session writes, collector
# reads, route-server validation). The benchmark reports updates/s as
# its own metric.
go test -run '^$' \
  -bench 'BenchmarkReplayThroughput' \
  -benchmem -benchtime 20000x ./internal/firehose | tee "$RAW"

# Benchmark lines look like:
#   BenchmarkReplayThroughput  20000  5728 ns/op  174587 updates/s  867 B/op  20 allocs/op
awk -v ncpu="$(nproc 2>/dev/null || echo 1)" '
BEGIN { print "{"; print "  \"benchmarks\": ["; first = 1 }
/^Benchmark/ {
    name = $1
    ns = ""; ups = "0"; bytes = "0"; allocs = "0"
    for (i = 2; i < NF; i++) {
        if ($(i + 1) == "ns/op") ns = $i
        if ($(i + 1) == "updates/s") ups = $i
        if ($(i + 1) == "B/op") bytes = $i
        if ($(i + 1) == "allocs/op") allocs = $i
    }
    if ($NF == "allocs/op") allocs = $(NF - 1)
    if (ns == "") next
    if (!first) printf ",\n"
    first = 0
    printf "    {\"name\": \"%s\", \"ns_per_update\": %s, \"updates_per_s\": %s, \"bytes_per_update\": %s, \"allocs_per_update\": %s}", \
        name, ns, ups, bytes, allocs
    if (name ~ /^BenchmarkReplayThroughput/) total_ups = ups
}
END {
    print "\n  ],"
    printf "  \"gomaxprocs\": %d,\n", ncpu
    printf "  \"replay_updates_per_s\": %s\n", (total_ups == "" ? "0" : total_ups)
    print "}"
}
' "$RAW" > "$FHOUT"

echo "wrote $FHOUT"

# hijackd section: the serving stack end to end. BenchmarkAttackQuery
# drives exact what-if queries through the HTTP handler against a warm
# snapshot and reports p50/p99 latency from the server's own histogram;
# BenchmarkOverloadShed saturates a one-worker server and reports the
# shed fraction; the two core solver benchmarks supply the delta-vs-full
# speedup the snapshot cache exists for.
go test -run '^$' \
  -bench '^(BenchmarkDeltaSolve|BenchmarkFullSolveCold|BenchmarkAttackQuery|BenchmarkOverloadShed)$' \
  -benchtime 2000x ./internal/core ./internal/queryd | tee "$RAW"

# Benchmark lines look like:
#   BenchmarkDeltaSolve-8      2000   8408 ns/op
#   BenchmarkAttackQuery-8     2000 147080 ns/op  131071 p50_ns  262143 p99_ns
#   BenchmarkOverloadShed-8    2000  23564 ns/op  0.935 shed_frac  1870 shed_total
awk -v ncpu="$(nproc 2>/dev/null || echo 1)" '
BEGIN { print "{"; print "  \"benchmarks\": ["; first = 1 }
/^Benchmark/ {
    name = $1
    ns = ""; p50 = "0"; p99 = "0"; sfrac = "0"; stot = "0"
    for (i = 2; i < NF; i++) {
        if ($(i + 1) == "ns/op") ns = $i
        if ($(i + 1) == "p50_ns") p50 = $i
        if ($(i + 1) == "p99_ns") p99 = $i
        if ($(i + 1) == "shed_frac") sfrac = $i
        if ($(i + 1) == "shed_total") stot = $i
    }
    if ($NF == "shed_total") stot = $(NF - 1)
    if (ns == "") next
    if (!first) printf ",\n"
    first = 0
    printf "    {\"name\": \"%s\", \"ns_per_op\": %s}", name, ns
    if (name ~ /^BenchmarkDeltaSolve(-[0-9]+)?$/)    delta_ns = ns
    if (name ~ /^BenchmarkFullSolveCold(-[0-9]+)?$/) full_ns = ns
    if (name ~ /^BenchmarkAttackQuery(-[0-9]+)?$/)   { q_ns = ns; q_p50 = p50; q_p99 = p99 }
    if (name ~ /^BenchmarkOverloadShed(-[0-9]+)?$/)  { shed_frac = sfrac; shed_total = stot }
}
END {
    print "\n  ],"
    speedup = (delta_ns + 0 > 0) ? (full_ns + 0) / (delta_ns + 0) : 0
    qps = (q_ns + 0 > 0) ? 1e9 / (q_ns + 0) : 0
    printf "  \"gomaxprocs\": %d,\n", ncpu
    printf "  \"queries_per_s\": %.1f,\n", qps
    printf "  \"p50_latency_ns\": %s,\n", (q_p50 == "" ? "0" : q_p50)
    printf "  \"p99_latency_ns\": %s,\n", (q_p99 == "" ? "0" : q_p99)
    printf "  \"delta_vs_full_speedup\": %.2f,\n", speedup
    printf "  \"shed_frac_under_overload\": %s,\n", (shed_frac == "" ? "0" : shed_frac)
    printf "  \"shed_total_under_overload\": %s\n", (shed_total == "" ? "0" : shed_total)
    print "}"
}
' "$RAW" > "$HJOUT"

echo "wrote $HJOUT"
