#!/bin/sh
# Run the sweep-backed reproduction benchmarks (Figures 2, 5, 7, the
# kernel scaling micro-benchmarks, and the buffered-vs-streaming
# reduction comparison) and write the measurements as JSON.
# Usage: scripts/bench_json.sh [outfile]
# Output: one JSON array; each element carries the benchmark name, the
# worker count (0 when the benchmark does not parameterize workers),
# the shard count (0 likewise), ns/op, B/op, allocs/op, and the peak
# RSS in KB (0 when the benchmark does not sample it).
set -eu

OUT="${1:-BENCH_sweep.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' \
  -bench 'BenchmarkFig2VulnerabilityTier1|BenchmarkFig5IncrementalDefenseDepth1|BenchmarkFig7DetectorConfigurations|BenchmarkSweepRunWorkers|BenchmarkMatrixShards|BenchmarkVulnerabilityReduction' \
  -benchmem -benchtime 1x . ./internal/sweep ./internal/experiments | tee "$RAW"

# Benchmark lines look like:
#   BenchmarkSweepRunWorkers/workers=4-8  1  12345 ns/op  678 B/op  9 allocs/op  [extra metrics]
#   BenchmarkVulnerabilityReduction/streaming-8  1  12345 ns/op  678 peakRSS-KB  9 B/op  1 allocs/op
awk '
BEGIN { print "["; first = 1 }
/^Benchmark/ {
    name = $1
    workers = 0
    if (match(name, /workers=[0-9]+/)) {
        workers = substr(name, RSTART + 8, RLENGTH - 8) + 0
    }
    shards = 0
    if (match(name, /shards=[0-9]+/)) {
        shards = substr(name, RSTART + 7, RLENGTH - 7) + 0
    }
    ns = ""; bytes = ""; allocs = ""; rss = "0"
    for (i = 2; i < NF; i++) {
        if ($(i + 1) == "ns/op") ns = $i
        if ($(i + 1) == "B/op") bytes = $i
        if ($(i + 1) == "allocs/op") allocs = $i
        if ($(i + 1) == "peakRSS-KB") rss = $i
    }
    if (ns == "") next
    if (!first) printf ",\n"
    first = 0
    printf "  {\"name\": \"%s\", \"workers\": %d, \"shards\": %d, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s, \"peak_rss_kb\": %s}", \
        name, workers, shards, ns, (bytes == "" ? "0" : bytes), (allocs == "" ? "0" : allocs), rss
}
END { print "\n]" }
' "$RAW" > "$OUT"

echo "wrote $OUT"
