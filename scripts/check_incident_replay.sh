#!/bin/sh
# Replay the checked-in historical-incident fixture (a YouTube-style
# sub-prefix hijack capture with deliberate damage: an unknown record,
# a malformed body, a truncated tail) through cmd/mrtreplay and compare
# the resulting alert-set digest against the pinned value. A mismatch
# means a change in the MRT decoder, the replay engine, the feed stack
# or the detector altered what a fixed input detects — which must only
# ever happen deliberately, via -firehose.update plus a new pin.
# Usage: scripts/check_incident_replay.sh
set -eu

cd "$(dirname "$0")/.."
TESTDATA=internal/firehose/testdata

WANT="$(cat "$TESTDATA/incident.digest")"
OUT="$(go run ./cmd/mrtreplay \
  -rib "$TESTDATA/incident_rib.mrt" \
  -updates "$TESTDATA/incident.mrt" \
  -roas "$TESTDATA/incident_roas.txt" 2>&1)"
printf '%s\n' "$OUT"

GOT="$(printf '%s\n' "$OUT" | awk '/^alert-set digest:/ { print $3 }')"
if [ -z "$GOT" ]; then
    echo "FAIL: mrtreplay printed no alert-set digest" >&2
    exit 1
fi
if [ "$GOT" != "$WANT" ]; then
    echo "FAIL: replay digest $GOT != pinned $WANT ($TESTDATA/incident.digest)" >&2
    exit 1
fi

ALERTS="$(printf '%s\n' "$OUT" | awk '/^[0-9]+ alert\(s\)$/ { print $1 }')"
if [ "$ALERTS" != "5" ]; then
    echo "FAIL: replay raised $ALERTS alerts, want 5" >&2
    exit 1
fi

echo "OK: incident replay reproduced the pinned alert-set digest ($GOT)"
