#!/bin/sh
# Compare a paper-scale reproduction run (scripts/reproduce.sh 42697,
# i.e. `make reproduce-paper-scale`) against the headline metrics
# recorded in EXPERIMENTS.md, "Paper-scale runs (42,697 ASes)".
# Deterministic seeds make these exact: any mismatch is a behavior
# change, not noise — update EXPERIMENTS.md and this script together.
# Usage: scripts/check_paper_scale.sh [outdir]   (default reproduction-full)
set -u

OUT="${1:-reproduction-full}"
fail=0

expect() { # expect <file> <extended-regex> <label>
	if [ ! -f "$OUT/$1" ]; then
		echo "MISSING: $OUT/$1 ($3)"
		fail=1
	elif grep -Eq "$2" "$OUT/$1"; then
		echo "ok: $3"
	else
		echo "MISMATCH: $3 — wanted /$2/ in $OUT/$1"
		fail=1
	fi
}

# Substrate: the generated full-scale world and its audit.
expect topology-stats.txt 'ASes=42697 .*tier1=17 ' "topology: 42,697 ASes, 17 tier-1s"
expect topology-stats.txt 'clean=true' "topology audit clean"

# Figure 1: aggressive attack propagation.
expect fig1.txt '39796 ASes polluted, 92% of address space lost, 12 generations' \
	"figure 1: 39,796 polluted, 92% address space, 12 generations"

# Figure 2: tier-1 hierarchy CCDFs (depth-5 target nearly saturates).
expect fig2.txt 'depth-5 stub \(very vulnerable\) +5 +2000 +40094\.8' \
	"figure 2: depth-5 target mean pollution 40,094.8"

# Figure 7: detector-configuration miss rates over 8000 attacks.
expect fig7-tables.txt '17 tier-1 probes +17 +927 +11\.6% +6692 +31242' \
	"figure 7: tier-1 probes miss 11.6%, max 31,242"
expect fig7-tables.txt '24 BGPmon-like probes +24 +421 +5\.3% +1820 +9042' \
	"figure 7: BGPmon-like probes miss 5.3%"
expect fig7-tables.txt 'top 61 degree probes +61 +106 +1\.3% +132 +942' \
	"figure 7: degree-core probes miss 1.3%"

# Figures 5/6: the deployment-ladder knee and the threat-model tables.
expect fig5-6-tables.txt 'top 61 ASes by degree +1665\.1 ' \
	"figure 6: 61-core rung mean pollution 1,665.1 (600 attacks)"
expect fig5-6-tables.txt 'deployer-turned-attacker' \
	"residual attacks under 298 filters flagged deployer-turned-attacker"

# S*BGP route-selection ranks (Lychev ordering).
expect fig5-6-tables.txt 'security off +40022\.7' "s*bgp: security off 40,022.7"
expect fig5-6-tables.txt 'security 1st +11396\.0' "s*bgp: security 1st 11,396.0"

# Section VII: re-homing, hub filter, reactive mitigation.
expect section7.txt 'after re-homing +inside attacks: mean 32\.5 region ASes \(17%\) +outside: mean 2\.0 \(1%\)' \
	"section VII: re-homing 74%→17% inside, 18%→1% outside"
expect section7.txt 'with hub filter +inside attacks: mean 34\.9 region ASes \(19%\)' \
	"section VII: hub filter 74%→19% inside"
expect section7.txt 'recovered 42679 +stranded 0' "mitigation: permissive ROA recovers 42,679"
expect section7.txt 'stranded 42651' "mitigation: conservative MaxLength strands 42,651"

# RIB validation over 10 origins × 42,680 routes.
expect validation.txt 'overall: exact=194567 topo-equivalent=218032 mismatch=14201 missing=0 match-rate=96\.7%' \
	"validation: 96.7% exact-or-equivalent over 426,800 routes"

# Hole analysis: the strongest surviving non-deployer attack.
expect holes.txt '531 succeed \(pollution ≥ 426\) despite filters; 531 of those escape detection' \
	"holes: 531 of 3000 attacks beat filters and probes"
expect holes.txt 'AS137971 +AS114132 +9044 +0 ' "holes: worst hole pollutes 9,044 from depth 0"

# Exercise the compressed shard path at full topology scale: solve one
# eighth of the Figure 2 cell space into a recio shard, then rerun the
# identical command with -resume — a complete shard must resume to a
# no-op, proving the on-disk file recovers and matches the rebuilt
# workload (digest and all) at 42,697 ASes.
SHARDS="$OUT/recio-shards"
mkdir -p "$SHARDS"
if go run ./cmd/vulnscan -scale 42697 -sample 2000 -shard 0/8 \
		-shard-dir "$SHARDS" -format recio \
	&& go run ./cmd/vulnscan -scale 42697 -sample 2000 -shard 0/8 \
		-shard-dir "$SHARDS" -format recio -resume 2>&1 | grep -q "resumed from checkpoint" \
	&& [ -s "$SHARDS/fig2.0of8.rec" ]; then
	echo "ok: recio shard written and resumed at paper scale ($(wc -c < "$SHARDS/fig2.0of8.rec") bytes)"
else
	echo "FAILED: recio-format paper-scale shard run"
	fail=1
fi

if [ "$fail" -ne 0 ]; then
	echo "paper-scale check FAILED: metrics drifted from EXPERIMENTS.md"
	exit 1
fi
echo "paper-scale check passed: all headline metrics match EXPERIMENTS.md"
