#!/bin/sh
# Reproduce every figure and table of the paper at a chosen scale.
# Usage: scripts/reproduce.sh [scale] [outdir]
# Paper scale is 42697 (minutes on one core); default 10000.
set -eu

SCALE="${1:-10000}"
OUT="${2:-reproduction}"
mkdir -p "$OUT"
echo "reproducing at scale $SCALE into $OUT/ ..."

go run ./cmd/topogen     -scale "$SCALE" -stats -o "$OUT/topology.txt"      2> "$OUT/topology-stats.txt"
go run ./cmd/polarviz    -scale "$SCALE" -out "$OUT/fig1-frames"            >  "$OUT/fig1.txt"
go run ./cmd/vulnscan    -scale "$SCALE" -sample 2000 -svg "$OUT/fig2.svg"  >  "$OUT/fig2.txt"
go run ./cmd/vulnscan    -scale "$SCALE" -sample 2000 -hierarchy tier2 \
                         -svg "$OUT/fig3.svg"                               >  "$OUT/fig3.txt"
go run ./cmd/vulnscan    -scale "$SCALE" -sample 2000 -stubfilter           >  "$OUT/fig4.txt"
go run ./cmd/deployscan  -scale "$SCALE" -sample 600 -subprefix -sbgp \
                         -svg "$OUT/fig"                              >  "$OUT/fig5-6-tables.txt"
go run ./cmd/detectscan  -scale "$SCALE" -attacks 8000 -falsealarms \
                         -svg "$OUT/fig7"                             >  "$OUT/fig7-tables.txt"
go run ./cmd/selfdefense -scale "$SCALE" -outside 200 -mitigate             >  "$OUT/section7.txt"
go run ./cmd/ribcheck    -scale "$SCALE" -origins 10                        >  "$OUT/validation.txt"
go run ./cmd/holescan    -scale "$SCALE" -attacks 3000                      >  "$OUT/holes.txt"
go run ./cmd/mrtdump     -scale "$SCALE" -o "$OUT/view.mrt"                 >  "$OUT/mrt.txt"
go run ./cmd/hijackmon   -demo -scale "$SCALE" -listen 127.0.0.1:0          >  "$OUT/live-detection.txt"

echo "done; compare against EXPERIMENTS.md"
