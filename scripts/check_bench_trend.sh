#!/bin/sh
# Throughput regression gate. Re-runs the recio encode benchmark and
# the firehose replay benchmark and fails if either fell more than the
# allowed fraction below its committed baseline (BENCH_recio.json's
# encode_recio_mb_per_s, BENCH_firehose.json's replay_updates_per_s —
# both files scripts/bench_json.sh regenerates).
#
# Throughput is machine-relative: a baseline is only meaningful on a
# machine shaped like the one that produced it, so each gate compares
# against its baseline's recorded gomaxprocs and skips (with a note)
# when the core counts disagree rather than fail a faster or slower
# box for being different hardware. A baseline that predates the
# gomaxprocs key gates unconditionally, as before.
#
# Usage: scripts/check_bench_trend.sh [baseline.json] [max-regression-%] [firehose-baseline.json]
set -eu

BASE="${1:-BENCH_recio.json}"
MAXPCT="${2:-20}"
FHBASE="${3:-BENCH_firehose.json}"

if [ ! -f "$BASE" ]; then
    echo "check_bench_trend: no baseline at $BASE (run scripts/bench_json.sh to create one)" >&2
    exit 1
fi

cpus="$(nproc 2>/dev/null || echo 1)"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

# same_shape BASELINE: 0 (true) when the baseline's recorded gomaxprocs
# matches this machine's core count or the baseline never recorded one.
same_shape() {
    base_cpus="$(sed -n 's/.*"gomaxprocs": *\([0-9]*\).*/\1/p' "$1")"
    if [ -n "$base_cpus" ] && [ "$base_cpus" != "$cpus" ]; then
        echo "check_bench_trend: $1 was measured on $base_cpus CPUs, this machine has $cpus; skipping"
        return 1
    fi
    return 0
}

# --- recio encode gate -------------------------------------------------

base_mbs="$(sed -n 's/.*"encode_recio_mb_per_s": *\([0-9.]*\).*/\1/p' "$BASE")"
if [ -z "$base_mbs" ]; then
    # Older baselines predate the top-level key; fall back to the
    # benchmarks array entry.
    base_mbs="$(sed -n 's/.*"BenchmarkShardEncode\/recio[^c"]*".*"mb_per_s": *\([0-9.]*\).*/\1/p' "$BASE" | head -1)"
fi
if [ -z "$base_mbs" ]; then
    echo "check_bench_trend: $BASE carries no recio encode throughput" >&2
    exit 1
fi

if same_shape "$BASE"; then
    go test -run '^$' -bench 'BenchmarkShardEncode/recio$' -benchtime 30x ./internal/sweep | tee "$RAW"

    new_mbs="$(awk '$1 ~ /^BenchmarkShardEncode\/recio(-[0-9]+)?$/ {
        for (i = 2; i <= NF; i++) if ($i == "MB/s") print $(i - 1)
    }' "$RAW" | head -1)"
    if [ -z "$new_mbs" ]; then
        echo "check_bench_trend: benchmark produced no recio encode MB/s" >&2
        exit 1
    fi

    awk -v base="$base_mbs" -v new="$new_mbs" -v maxpct="$MAXPCT" 'BEGIN {
        floor = base * (1 - maxpct / 100)
        if (new + 0 < floor) {
            printf "check_bench_trend: FAIL — recio encode %.2f MB/s is more than %s%% below the committed %.2f MB/s (floor %.2f)\n", new, maxpct, base, floor
            exit 1
        }
        printf "check_bench_trend: ok — recio encode %.2f MB/s vs committed %.2f MB/s (floor %.2f)\n", new, base, floor
    }'
fi

# --- firehose replay gate ----------------------------------------------

if [ ! -f "$FHBASE" ]; then
    echo "check_bench_trend: no firehose baseline at $FHBASE (run scripts/bench_json.sh to create one)" >&2
    exit 1
fi

base_ups="$(sed -n 's/.*"replay_updates_per_s": *\([0-9.]*\).*/\1/p' "$FHBASE" | head -1)"
if [ -z "$base_ups" ]; then
    echo "check_bench_trend: $FHBASE carries no replay throughput" >&2
    exit 1
fi

if same_shape "$FHBASE"; then
    go test -run '^$' -bench 'BenchmarkReplayThroughput' -benchtime 20000x ./internal/firehose | tee "$RAW"

    new_ups="$(awk '$1 ~ /^BenchmarkReplayThroughput(-[0-9]+)?$/ {
        for (i = 2; i <= NF; i++) if ($i == "updates/s") print $(i - 1)
    }' "$RAW" | head -1)"
    if [ -z "$new_ups" ]; then
        echo "check_bench_trend: benchmark produced no replay updates/s" >&2
        exit 1
    fi

    awk -v base="$base_ups" -v new="$new_ups" -v maxpct="$MAXPCT" 'BEGIN {
        floor = base * (1 - maxpct / 100)
        if (new + 0 < floor) {
            printf "check_bench_trend: FAIL — firehose replay %.0f updates/s is more than %s%% below the committed %.0f updates/s (floor %.0f)\n", new, maxpct, base, floor
            exit 1
        }
        printf "check_bench_trend: ok — firehose replay %.0f updates/s vs committed %.0f updates/s (floor %.0f)\n", new, base, floor
    }'
fi
