#!/bin/sh
# Shard-encode throughput regression gate. Re-runs the recio encode
# benchmark and fails if its disk-bytes throughput (MB/s) fell more
# than the allowed fraction below the committed baseline in
# BENCH_recio.json — the file scripts/bench_json.sh regenerates.
#
# Throughput is machine-relative: the baseline is only meaningful on a
# machine shaped like the one that produced it, so the gate compares
# against the baseline's recorded gomaxprocs and skips (exit 0, with a
# note) when the core counts disagree rather than fail a faster or
# slower box for being different hardware.
#
# Usage: scripts/check_bench_trend.sh [baseline.json] [max-regression-%]
set -eu

BASE="${1:-BENCH_recio.json}"
MAXPCT="${2:-20}"

if [ ! -f "$BASE" ]; then
    echo "check_bench_trend: no baseline at $BASE (run scripts/bench_json.sh to create one)" >&2
    exit 1
fi

base_mbs="$(sed -n 's/.*"encode_recio_mb_per_s": *\([0-9.]*\).*/\1/p' "$BASE")"
if [ -z "$base_mbs" ]; then
    # Older baselines predate the top-level key; fall back to the
    # benchmarks array entry.
    base_mbs="$(sed -n 's/.*"BenchmarkShardEncode\/recio[^c"]*".*"mb_per_s": *\([0-9.]*\).*/\1/p' "$BASE" | head -1)"
fi
if [ -z "$base_mbs" ]; then
    echo "check_bench_trend: $BASE carries no recio encode throughput" >&2
    exit 1
fi

base_cpus="$(sed -n 's/.*"gomaxprocs": *\([0-9]*\).*/\1/p' "$BASE")"
cpus="$(nproc 2>/dev/null || echo 1)"
if [ -n "$base_cpus" ] && [ "$base_cpus" != "$cpus" ]; then
    echo "check_bench_trend: baseline was measured on $base_cpus CPUs, this machine has $cpus; skipping"
    exit 0
fi

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT
go test -run '^$' -bench 'BenchmarkShardEncode/recio$' -benchtime 30x ./internal/sweep | tee "$RAW"

new_mbs="$(awk '$1 ~ /^BenchmarkShardEncode\/recio(-[0-9]+)?$/ {
    for (i = 2; i <= NF; i++) if ($i == "MB/s") print $(i - 1)
}' "$RAW" | head -1)"
if [ -z "$new_mbs" ]; then
    echo "check_bench_trend: benchmark produced no recio encode MB/s" >&2
    exit 1
fi

awk -v base="$base_mbs" -v new="$new_mbs" -v maxpct="$MAXPCT" 'BEGIN {
    floor = base * (1 - maxpct / 100)
    if (new + 0 < floor) {
        printf "check_bench_trend: FAIL — recio encode %.2f MB/s is more than %s%% below the committed %.2f MB/s (floor %.2f)\n", new, maxpct, base, floor
        exit 1
    }
    printf "check_bench_trend: ok — recio encode %.2f MB/s vs committed %.2f MB/s (floor %.2f)\n", new, base, floor
}'
