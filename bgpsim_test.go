package bgpsim

import (
	"bytes"
	"strings"
	"testing"

	"github.com/bgpsim/bgpsim/internal/topology"
)

func newSim(t *testing.T) *Simulator {
	t.Helper()
	sim, err := New(WithScale(1000), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestNewSimulator(t *testing.T) {
	sim := newSim(t)
	if sim.NumASes() < 900 {
		t.Errorf("NumASes = %d", sim.NumASes())
	}
	if sim.NumLinks() <= sim.NumASes() {
		t.Errorf("NumLinks = %d suspiciously low", sim.NumLinks())
	}
	if len(sim.Tier1ASNs()) == 0 {
		t.Error("no tier-1 ASes")
	}
	// Determinism across constructions.
	sim2, err := New(WithScale(1000), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if sim.NumASes() != sim2.NumASes() || sim.MustASNAt(5) != sim2.MustASNAt(5) {
		t.Error("same seed produced different simulators")
	}
}

func TestLoadFromCAIDA(t *testing.T) {
	in := `# tiny
1|2|0
1|10|-1
2|11|-1
10|20|-1
11|21|-1
`
	sim, err := Load(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if sim.NumASes() != 6 {
		t.Errorf("NumASes = %d, want 6", sim.NumASes())
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty topology accepted")
	}
}

func TestMetricsAccessors(t *testing.T) {
	sim := newSim(t)
	t1 := sim.Tier1ASNs()[0]
	d, err := sim.DepthOf(t1)
	if err != nil || d != 0 {
		t.Errorf("tier-1 depth = %d (%v)", d, err)
	}
	deg, err := sim.DegreeOf(t1)
	if err != nil || deg <= 0 {
		t.Errorf("tier-1 degree = %d (%v)", deg, err)
	}
	reach, err := sim.ReachOf(t1)
	if err != nil || reach <= 0 {
		t.Errorf("tier-1 reach = %d (%v)", reach, err)
	}
	if _, err := sim.DepthOf(ASN(4_000_000_000)); err == nil {
		t.Error("unknown ASN accepted")
	}
}

func TestFindAS(t *testing.T) {
	sim := newSim(t)
	a, err := sim.FindAS(TargetQuery{Depth: 2, Stub: true})
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := sim.DepthOf(a); d != 2 {
		t.Errorf("FindAS returned depth-%d AS", d)
	}
}

func TestHijackBasics(t *testing.T) {
	sim := newSim(t)
	target, err := sim.FindAS(TargetQuery{Depth: 2, Stub: true})
	if err != nil {
		t.Fatal(err)
	}
	attacker := sim.Tier1ASNs()[0]
	rep, err := sim.Hijack(HijackSpec{Attacker: attacker, Target: target})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PollutedASes <= 0 {
		t.Error("tier-1 attacker polluted nothing")
	}
	if rep.PollutedFrac <= 0 || rep.PollutedFrac > 1 {
		t.Errorf("PollutedFrac = %v", rep.PollutedFrac)
	}
	if rep.AddrSpaceFrac <= 0 || rep.AddrSpaceFrac > 1 {
		t.Errorf("AddrSpaceFrac = %v", rep.AddrSpaceFrac)
	}
	if rep.FiltersArmed {
		t.Error("no filters specified but armed")
	}
	if rep.Outcome == nil || rep.Outcome.PollutedCount() != rep.PollutedASes {
		t.Error("outcome inconsistent with report")
	}
	// Errors for unknown ASNs.
	if _, err := sim.Hijack(HijackSpec{Attacker: 4_000_000_000, Target: target}); err == nil {
		t.Error("unknown attacker accepted")
	}
}

// TestHijackPublicationLeverage exercises the paper's Section VII
// "publish route origins" step through the facade: identical filters stop
// the attack only once the target's ROA exists.
func TestHijackPublicationLeverage(t *testing.T) {
	sim := newSim(t)
	target, err := sim.FindAS(TargetQuery{Depth: 2, Stub: true})
	if err != nil {
		t.Fatal(err)
	}
	attacker := sim.Tier1ASNs()[0]
	victimPrefix, err := ParsePrefix("129.82.0.0/16")
	if err != nil {
		t.Fatal(err)
	}
	filters := sim.FiltersOf(sim.DeploymentLadder(1)[6]) // a core rung

	spec := HijackSpec{
		Attacker:        attacker,
		Target:          target,
		Filters:         filters,
		ValidateAgainst: sim.ROAStore(),
		HijackedPrefix:  victimPrefix,
	}
	// Before publication: NotFound → filters cannot arm.
	before, err := sim.Hijack(spec)
	if err != nil {
		t.Fatal(err)
	}
	if before.FiltersArmed {
		t.Fatal("filters armed without published origin")
	}
	// Publish the ROA, rerun: filters arm and pollution drops.
	if err := sim.PublishROA(ROA{Prefix: victimPrefix, MaxLength: 24, Origin: target}); err != nil {
		t.Fatal(err)
	}
	after, err := sim.Hijack(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !after.FiltersArmed {
		t.Fatal("filters did not arm after publication")
	}
	if after.PollutedASes > before.PollutedASes {
		t.Errorf("armed filters increased pollution: %d → %d", before.PollutedASes, after.PollutedASes)
	}
	// The attacker announcing its own published space stays unblocked.
	if err := sim.PublishROA(ROA{Prefix: victimPrefix, MaxLength: 24, Origin: attacker}); err != nil {
		t.Fatal(err)
	}
	multi, err := sim.Hijack(spec)
	if err != nil {
		t.Fatal(err)
	}
	if multi.FiltersArmed {
		t.Error("filters armed although the 'attacker' is an authorized origin")
	}
}

func TestTraceHijack(t *testing.T) {
	sim := newSim(t)
	target, err := sim.FindAS(TargetQuery{Depth: 2, Stub: true})
	if err != nil {
		t.Fatal(err)
	}
	o, tr, err := sim.TraceHijack(sim.Tier1ASNs()[0], target)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Generations < 2 || len(tr.Events) == 0 {
		t.Error("trace empty")
	}
	if o.PollutedCount() <= 0 {
		t.Error("no pollution in traced attack")
	}
}

func TestVulnerabilitySweepFacade(t *testing.T) {
	sim := newSim(t)
	target, err := sim.FindAS(TargetQuery{Depth: 2, Stub: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.VulnerabilitySweep(target, 150)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pollution) != 150 {
		t.Errorf("sweep size = %d", len(res.Pollution))
	}
	if res.Summary().Mean <= 0 {
		t.Error("zero mean pollution")
	}
}

func TestDeploymentLadderFacade(t *testing.T) {
	sim := newSim(t)
	ladder := sim.DeploymentLadder(7)
	if len(ladder) != 8 {
		t.Fatalf("ladder = %d rungs", len(ladder))
	}
	filters := sim.FiltersOf(ladder[3])
	if len(filters) != len(sim.Tier1ASNs()) {
		t.Errorf("tier-1 rung has %d filters, want %d", len(filters), len(sim.Tier1ASNs()))
	}
}

func TestWorldAccessor(t *testing.T) {
	sim := newSim(t)
	w := sim.World()
	if w == nil || w.Graph != sim.Graph() {
		t.Error("World accessor inconsistent")
	}
	// The classification alias exposes depth metrics.
	if sim.Classification().MaxDepth() < 2 {
		t.Error("MaxDepth too small")
	}
	_ = topology.DepthUnreachable // keep explicit dependency for the alias contract
}
