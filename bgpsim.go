package bgpsim

import (
	"fmt"
	"io"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/deploy"
	"github.com/bgpsim/bgpsim/internal/detect"
	"github.com/bgpsim/bgpsim/internal/experiments"
	"github.com/bgpsim/bgpsim/internal/hijack"
	"github.com/bgpsim/bgpsim/internal/prefix"
	"github.com/bgpsim/bgpsim/internal/rpki"
	"github.com/bgpsim/bgpsim/internal/stats"
	"github.com/bgpsim/bgpsim/internal/topology"
)

// Re-exported building blocks. These aliases are the public names of the
// library's core types; the internal packages are implementation layout.
type (
	// ASN is an autonomous system number.
	ASN = asn.ASN
	// Prefix is an IPv4 CIDR block.
	Prefix = prefix.Prefix
	// Graph is an immutable AS-level topology.
	Graph = topology.Graph
	// GenParams configures the synthetic Internet generator.
	GenParams = topology.GenParams
	// Classification holds tier sets and depth metrics.
	Classification = topology.Classification
	// TargetQuery selects ASes by topological role.
	TargetQuery = topology.TargetQuery
	// Policy is the compiled routing-policy context.
	Policy = core.Policy
	// Outcome is one converged routing state.
	Outcome = core.Outcome
	// Trace is a generation-by-generation propagation record.
	Trace = core.Trace
	// Strategy is a named filter-deployment set.
	Strategy = deploy.Strategy
	// ProbeSet is a named detector vantage configuration.
	ProbeSet = detect.ProbeSet
	// SweepResult holds per-attack pollution measurements for one target.
	SweepResult = hijack.SweepResult
	// CCDFPoint is one point of a vulnerability curve.
	CCDFPoint = stats.CCDFPoint
	// World bundles graph, classification and policy for the experiment
	// runners in internal/experiments.
	World = experiments.World
	// OriginValidator is the RPKI/ROVER origin-authorization oracle.
	OriginValidator = rpki.OriginValidator
	// ROA is a Route Origin Authorization.
	ROA = rpki.ROA
)

// ParsePrefix parses CIDR notation ("129.82.0.0/16").
func ParsePrefix(s string) (Prefix, error) { return prefix.Parse(s) }

// ParseASN parses an AS number with or without the "AS" prefix.
func ParseASN(s string) (ASN, error) { return asn.Parse(s) }

// Simulator is the high-level entry point: a generated or loaded internet
// plus its routing policy, addressed by ASN.
type Simulator struct {
	world  *experiments.World
	solver *core.Solver
	roas   rpki.Store
}

func newSolverFor(w *experiments.World) *core.Solver { return core.NewSolver(w.Policy) }

// Option configures New and Load.
type Option func(*options)

type options struct {
	scale      int
	seed       int64
	genParams  *topology.GenParams
	policyOpts []core.PolicyOption
}

// WithScale sets the approximate AS count of the generated internet
// (default 5000; pass 42697 for paper scale).
func WithScale(n int) Option { return func(o *options) { o.scale = n } }

// WithSeed fixes the generator seed (default 1); identical seeds produce
// identical internets.
func WithSeed(seed int64) Option { return func(o *options) { o.seed = seed } }

// WithGenParams overrides the generator parameters entirely.
func WithGenParams(p GenParams) Option { return func(o *options) { o.genParams = &p } }

// WithTier1ShortestPath toggles the paper's tier-1 shortest-path import
// override (default on).
func WithTier1ShortestPath(on bool) Option {
	return func(o *options) {
		o.policyOpts = append(o.policyOpts, core.WithTier1ShortestPath(on))
	}
}

func gather(opts []Option) options {
	o := options{scale: 5000, seed: 1}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// New builds a Simulator over a synthetic internet.
func New(opts ...Option) (*Simulator, error) {
	o := gather(opts)
	p := topology.DefaultParams(o.scale)
	p.Seed = o.seed
	if o.genParams != nil {
		p = *o.genParams
	}
	w, err := experiments.NewWorldWithParams(p, o.policyOpts...)
	if err != nil {
		return nil, err
	}
	return &Simulator{world: w, solver: core.NewSolver(w.Policy)}, nil
}

// Load builds a Simulator from CAIDA AS-relationship data.
func Load(r io.Reader, opts ...Option) (*Simulator, error) {
	o := gather(opts)
	g, err := topology.Parse(r)
	if err != nil {
		return nil, err
	}
	w, err := experiments.WorldFromGraph(g, o.policyOpts...)
	if err != nil {
		return nil, err
	}
	return &Simulator{world: w, solver: core.NewSolver(w.Policy)}, nil
}

// World exposes the underlying experiment context for direct use with the
// runners in internal/experiments (Fig1…Fig7, SectionVII, …).
func (s *Simulator) World() *World { return s.world }

// Graph returns the (sibling-contracted) topology.
func (s *Simulator) Graph() *Graph { return s.world.Graph }

// Classification returns tier sets and depth metrics.
func (s *Simulator) Classification() *Classification { return s.world.Class }

// NumASes returns the AS count.
func (s *Simulator) NumASes() int { return s.world.Graph.N() }

// NumLinks returns the relationship-link count.
func (s *Simulator) NumLinks() int { return s.world.Graph.Edges() }

// MustASNAt returns the ASN of dense node index i (handy for examples and
// tests that just need "some AS").
func (s *Simulator) MustASNAt(i int) ASN { return s.world.Graph.ASN(i) }

// nodeOf resolves an ASN to its node index.
func (s *Simulator) nodeOf(a ASN) (int, error) {
	i, ok := s.world.Graph.Index(a)
	if !ok {
		return 0, fmt.Errorf("unknown AS %v", a)
	}
	return i, nil
}

// DepthOf returns the AS's depth (hops to the nearest tier-1 or tier-2).
func (s *Simulator) DepthOf(a ASN) (int, error) {
	i, err := s.nodeOf(a)
	if err != nil {
		return 0, err
	}
	return s.world.Class.Depth[i], nil
}

// DegreeOf returns the AS's neighbor count.
func (s *Simulator) DegreeOf(a ASN) (int, error) {
	i, err := s.nodeOf(a)
	if err != nil {
		return 0, err
	}
	return s.world.Graph.Degree(i), nil
}

// ReachOf returns the paper's reach metric (ASes reachable without peer
// links).
func (s *Simulator) ReachOf(a ASN) (int, error) {
	i, err := s.nodeOf(a)
	if err != nil {
		return 0, err
	}
	return topology.Reach(s.world.Graph, i), nil
}

// Tier1ASNs returns the classified tier-1 ASes.
func (s *Simulator) Tier1ASNs() []ASN {
	out := make([]ASN, 0, len(s.world.Class.Tier1))
	for _, i := range s.world.Class.Tier1 {
		out = append(out, s.world.Graph.ASN(i))
	}
	return out
}

// FindAS returns an AS matching the topological role query.
func (s *Simulator) FindAS(q TargetQuery) (ASN, error) {
	i, err := topology.FindTarget(s.world.Graph, s.world.Class, q)
	if err != nil {
		return 0, err
	}
	return s.world.Graph.ASN(i), nil
}

// HijackSpec describes one hijack simulation.
type HijackSpec struct {
	// Attacker originates address space owned by Target.
	Attacker ASN
	Target   ASN
	// SubPrefix makes the attacker announce a more-specific prefix.
	SubPrefix bool
	// Filters lists ASes performing route-origin validation. They drop
	// the bogus announcement — but only when the validation data proves it
	// bogus: if ValidateAgainst is set and the target has not published
	// its origin (NotFound), the filters have nothing to act on and the
	// attack sails through, which is exactly the paper's argument for
	// publishing route origins early.
	Filters []ASN
	// ValidateAgainst, when non-nil, is consulted with the hijacked
	// prefix and the attacker ASN before arming Filters.
	ValidateAgainst OriginValidator
	// HijackedPrefix is the prefix used with ValidateAgainst.
	HijackedPrefix Prefix
}

// HijackReport summarizes one simulated attack.
type HijackReport struct {
	Attacker ASN
	Target   ASN
	// PollutedASes is the number of ASes routing to the attacker.
	PollutedASes int
	// PollutedFrac is PollutedASes over the AS population.
	PollutedFrac float64
	// AddrSpaceFrac is the fraction of announced address space whose
	// traffic no longer reaches the target.
	AddrSpaceFrac float64
	// FiltersArmed reports whether origin validation actually blocked the
	// announcement (false when the target never published its origin).
	FiltersArmed bool
	// Outcome is the full converged routing state for deeper inspection.
	Outcome *Outcome
}

// Hijack simulates one origin (or sub-prefix) hijack.
func (s *Simulator) Hijack(spec HijackSpec) (*HijackReport, error) {
	att, err := s.nodeOf(spec.Attacker)
	if err != nil {
		return nil, err
	}
	tgt, err := s.nodeOf(spec.Target)
	if err != nil {
		return nil, err
	}
	var blocked *asn.IndexSet
	armed := false
	if len(spec.Filters) > 0 {
		arm := true
		if spec.ValidateAgainst != nil {
			arm = spec.ValidateAgainst.Validate(spec.HijackedPrefix, spec.Attacker) == rpki.Invalid
		}
		if arm {
			armed = true
			blocked = asn.NewIndexSet(s.world.Graph.N())
			for _, f := range spec.Filters {
				i, err := s.nodeOf(f)
				if err != nil {
					return nil, err
				}
				blocked.Add(i)
			}
		}
	}
	o, err := s.solver.Solve(core.Attack{Target: tgt, Attacker: att, SubPrefix: spec.SubPrefix}, blocked)
	if err != nil {
		return nil, err
	}
	g := s.world.Graph
	var lostWeight, totalWeight int64
	polluted := 0
	for i := 0; i < g.N(); i++ {
		totalWeight += g.AddrWeight(i)
		if o.Polluted(i) {
			polluted++
			lostWeight += g.AddrWeight(i)
		}
	}
	rep := &HijackReport{
		Attacker:     spec.Attacker,
		Target:       spec.Target,
		PollutedASes: polluted,
		PollutedFrac: float64(polluted) / float64(g.N()),
		FiltersArmed: armed,
		Outcome:      o.Clone(),
	}
	if totalWeight > 0 {
		rep.AddrSpaceFrac = float64(lostWeight) / float64(totalWeight)
	}
	return rep, nil
}

// TraceHijack runs the attack on the generation-stepped message engine and
// returns the outcome with its full propagation trace (Figure-1 style).
func (s *Simulator) TraceHijack(attacker, target ASN) (*Outcome, *Trace, error) {
	att, err := s.nodeOf(attacker)
	if err != nil {
		return nil, nil, err
	}
	tgt, err := s.nodeOf(target)
	if err != nil {
		return nil, nil, err
	}
	return core.NewEngine(s.world.Policy).Run(core.Attack{Target: tgt, Attacker: att}, nil, true)
}

// VulnerabilitySweep attacks the target from every other AS (or from
// `sample` random ones if sample > 0) and returns the pollution
// distribution.
func (s *Simulator) VulnerabilitySweep(target ASN, sample int) (*SweepResult, error) {
	tgt, err := s.nodeOf(target)
	if err != nil {
		return nil, err
	}
	attackers := experiments.SampleAttackers(hijack.AllNodes(s.world.Graph.N()), sample, seedRNG(1))
	return hijack.Sweep(s.world.Policy, hijack.SweepConfig{Target: tgt, Attackers: attackers})
}

// PublishROA records a Route Origin Authorization in the simulator's
// built-in RPKI store (see HijackSpec.ValidateAgainst and ROAStore).
func (s *Simulator) PublishROA(r ROA) error { return s.roas.Add(r) }

// ROAStore returns the simulator's built-in RPKI validator for use as
// HijackSpec.ValidateAgainst.
func (s *Simulator) ROAStore() OriginValidator { return &s.roas }

// DeploymentLadder returns the paper's Figure 5/6 strategy ladder scaled
// to this internet.
func (s *Simulator) DeploymentLadder(seed int64) []Strategy {
	return deploy.PaperLadder(s.world.Graph, s.world.Class, seed)
}

// FiltersOf converts a Strategy's node set to ASNs.
func (s *Simulator) FiltersOf(st Strategy) []ASN {
	out := make([]ASN, 0, len(st.Nodes))
	for _, i := range st.Nodes {
		out = append(out, s.world.Graph.ASN(i))
	}
	return out
}
