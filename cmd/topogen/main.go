// Command topogen generates synthetic Internet-like AS topologies in the
// CAIDA AS-relationship interchange format, or re-emits a loaded topology
// (useful for normalizing third-party files).
//
// Usage:
//
//	topogen -scale 42697 -seed 7 -o topo.txt
//	topogen -topo caida.txt -o normalized.txt -stats
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/bgpsim/bgpsim/internal/cli"
	"github.com/bgpsim/bgpsim/internal/topology"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}

func run() error {
	fs := flag.NewFlagSet("topogen", flag.ExitOnError)
	wf := cli.AddWorldFlags(fs)
	out := fs.String("o", "", "output file (default stdout)")
	showStats := fs.Bool("stats", false, "print structural statistics to stderr")
	if err := fs.Parse(os.Args[1:]); err != nil {
		return err
	}

	var g *topology.Graph
	if *wf.TopoFile != "" {
		fh, err := os.Open(*wf.TopoFile)
		if err != nil {
			return err
		}
		defer fh.Close()
		g, err = topology.Parse(fh)
		if err != nil {
			return err
		}
	} else {
		p := topology.DefaultParams(*wf.Scale)
		p.Seed = *wf.Seed
		var err error
		g, err = topology.Generate(p)
		if err != nil {
			return err
		}
	}

	if *showStats {
		c := topology.Classify(g, topology.ClassifyOptions{})
		depthHist := map[int]int{}
		for i := 0; i < g.N(); i++ {
			depthHist[c.Depth[i]]++
		}
		fmt.Fprintf(os.Stderr, "ASes=%d links=%d tier1=%d tier2=%d transit=%d\n",
			g.N(), g.Edges(), len(c.Tier1), len(c.Tier2), len(g.TransitNodes()))
		for d := 0; d <= c.MaxDepth(); d++ {
			fmt.Fprintf(os.Stderr, "depth %d: %d ASes\n", d, depthHist[d])
		}
		audit := topology.Audit(g)
		fmt.Fprintf(os.Stderr,
			"audit: components=%d largest=%d provider-cycle-nodes=%d isolated=%d stub-share=%.2f clean=%v\n",
			audit.Components, audit.LargestComponent, audit.ProviderCycles,
			audit.IsolatedFromCore, audit.StubShare, audit.Clean(g.N()))
	}

	w := os.Stdout
	if *out != "" {
		fh, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer fh.Close()
		w = fh
	}
	return topology.Write(w, g)
}
