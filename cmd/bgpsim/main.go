// Command bgpsim runs a single origin-hijack simulation and prints the
// outcome: pollution counts, address-space impact, and (with -trace) the
// generation-by-generation propagation of the bogus announcement.
//
// Usage:
//
//	bgpsim -scale 5000 -attacker AS123 -target AS456
//	bgpsim -target-depth 5 -trace            # pick a deep target automatically
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/cli"
	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/experiments"
	"github.com/bgpsim/bgpsim/internal/topology"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bgpsim:", err)
		os.Exit(1)
	}
}

func run() error {
	fs := flag.NewFlagSet("bgpsim", flag.ExitOnError)
	wf := cli.AddWorldFlags(fs)
	attackerFlag := fs.String("attacker", "", "attacker ASN (default: highest-degree depth-1 transit)")
	targetFlag := fs.String("target", "", "target ASN (overrides -target-depth)")
	targetDepth := fs.Int("target-depth", 2, "pick a stub target at this depth when -target is unset")
	subprefix := fs.Bool("subprefix", false, "simulate a sub-prefix hijack")
	trace := fs.Bool("trace", false, "run the message engine and print per-generation statistics")
	if err := fs.Parse(os.Args[1:]); err != nil {
		return err
	}
	w, err := wf.BuildWorld()
	if err != nil {
		return err
	}
	cli.Describe(w)

	target, err := pickNode(w, *targetFlag, func() (int, error) {
		node, err := topology.FindTarget(w.Graph, w.Class, topology.TargetQuery{Depth: *targetDepth, Stub: true})
		if err != nil {
			return 0, fmt.Errorf("no depth-%d stub target: %w", *targetDepth, err)
		}
		return node, nil
	})
	if err != nil {
		return err
	}
	attacker, err := pickNode(w, *attackerFlag, func() (int, error) {
		best := -1
		for _, i := range w.Graph.TransitNodes() {
			if i == target || w.Class.Depth[i] > 1 {
				continue
			}
			if best == -1 || w.Graph.Degree(i) > w.Graph.Degree(best) {
				best = i
			}
		}
		if best < 0 {
			return 0, fmt.Errorf("no transit attacker available")
		}
		return best, nil
	})
	if err != nil {
		return err
	}

	at := core.Attack{Target: target, Attacker: attacker, SubPrefix: *subprefix}
	fmt.Printf("attack: %v (depth %d, degree %d) hijacks %v (depth %d, degree %d)\n",
		w.Graph.ASN(attacker), w.Class.Depth[attacker], w.Graph.Degree(attacker),
		w.Graph.ASN(target), w.Class.Depth[target], w.Graph.Degree(target))

	if *trace {
		eng := core.NewEngine(w.Policy)
		o, tr, err := eng.Run(at, nil, true)
		if err != nil {
			return err
		}
		printOutcome(w, o)
		for g := 1; g <= tr.Generations; g++ {
			msgs, acc := 0, 0
			for _, ev := range tr.EventsInGen(g) {
				if ev.Withdraw {
					continue
				}
				msgs++
				if ev.Accepted {
					acc++
				}
			}
			fmt.Printf("  generation %2d: %6d announcements, %6d accepted\n", g, msgs, acc)
		}
		return nil
	}
	o, err := core.NewSolver(w.Policy).Solve(at, nil)
	if err != nil {
		return err
	}
	printOutcome(w, o)
	return nil
}

func pickNode(w *experiments.World, asnText string, fallback func() (int, error)) (int, error) {
	if asnText == "" {
		return fallback()
	}
	a, err := asn.Parse(asnText)
	if err != nil {
		return 0, err
	}
	i, ok := w.Graph.Index(a)
	if !ok {
		return 0, fmt.Errorf("AS %v not in topology", a)
	}
	return i, nil
}

func printOutcome(w *experiments.World, o *core.Outcome) {
	polluted := o.PollutedCount()
	var lost, total int64
	for i := 0; i < w.Graph.N(); i++ {
		total += w.Graph.AddrWeight(i)
		if o.Polluted(i) {
			lost += w.Graph.AddrWeight(i)
		}
	}
	fmt.Printf("result: %d of %d ASes polluted (%.1f%%), %.1f%% of address space diverted\n",
		polluted, w.Graph.N(), 100*float64(polluted)/float64(w.Graph.N()),
		100*float64(lost)/float64(total))
}
