// Command ribcheck runs the paper's Section III validation methodology:
// full routing tables computed under the default policy are compared
// route-by-route against a reference internet (a tie-break perturbed
// policy standing in for real-world policy variance), reporting exact and
// topologically-equivalent match rates.
//
// Usage:
//
//	ribcheck -scale 5000 -origins 10
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/bgpsim/bgpsim/internal/cli"
	"github.com/bgpsim/bgpsim/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ribcheck:", err)
		os.Exit(1)
	}
}

func run() error {
	fs := flag.NewFlagSet("ribcheck", flag.ExitOnError)
	wf := cli.AddWorldFlags(fs)
	origins := fs.Int("origins", 5, "number of origin ASes to build full RIBs for")
	if err := fs.Parse(os.Args[1:]); err != nil {
		return err
	}
	w, err := wf.BuildWorld()
	if err != nil {
		return err
	}
	cli.Describe(w)

	res, err := experiments.ValidationStudy(w, experiments.ValidationConfig{
		Origins: *origins,
		Seed:    *wf.Seed,
	})
	if err != nil {
		return err
	}
	return res.WriteText(os.Stdout)
}
