// Command hijackmon is a live IP-hijack detection daemon: it runs a BGP
// route collector (the BGPmon role) with an origin-validating detector
// behind it (the PHAS/ROVER role). Probe routers open ordinary BGP
// sessions to it; every announced (prefix, origin) is validated against
// the configured route-origin data and violations print alerts.
//
// With -demo it additionally simulates a hijack and streams the probe
// feeds at itself, demonstrating the full pipeline in one process.
//
// Usage:
//
//	hijackmon -listen 127.0.0.1:1790 -roa roas.txt
//	hijackmon -demo
//
// The -roa file holds one "prefix maxlen origin" triple per line, e.g.
//
//	129.82.0.0/16 24 AS12145
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/cli"
	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/detect"
	"github.com/bgpsim/bgpsim/internal/feed"
	"github.com/bgpsim/bgpsim/internal/mrt"
	"github.com/bgpsim/bgpsim/internal/prefix"
	"github.com/bgpsim/bgpsim/internal/rpki"
	"github.com/bgpsim/bgpsim/internal/topology"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hijackmon:", err)
		os.Exit(1)
	}
}

func run() error {
	fs := flag.NewFlagSet("hijackmon", flag.ExitOnError)
	wf := cli.AddWorldFlags(fs)
	listen := fs.String("listen", "127.0.0.1:1790", "collector listen address")
	roaFile := fs.String("roa", "", "ROA file: 'prefix maxlen origin' per line")
	demo := fs.Bool("demo", false, "simulate a hijack and stream its probe feeds at this daemon")
	record := fs.String("record", "", "log every received UPDATE to this MRT file (BGP4MP records)")
	if err := fs.Parse(os.Args[1:]); err != nil {
		return err
	}

	var store rpki.Store
	det := feed.NewDetector(&store, func(a feed.Alert) {
		fmt.Printf("ALERT [%s] t=%d peer=%v prefix=%v origin=%v path=%v\n",
			a.Reason, a.Time, a.PeerAS, a.Prefix, a.Origin, a.Path)
	})
	if *roaFile != "" {
		n, err := loadROAs(&store, det, *roaFile)
		if err != nil {
			return err
		}
		fmt.Printf("loaded %d ROAs from %s\n", n, *roaFile)
	}

	collector := &feed.Collector{LocalAS: 65535, RouterID: 0x7f000001, Detector: det}
	if *record != "" {
		fh, err := os.Create(*record)
		if err != nil {
			return err
		}
		defer fh.Close()
		w := mrt.NewWriter(fh, 0)
		defer func() { _ = w.Flush() }() // best-effort flush at exit
		collector.Recorder = w
		fmt.Printf("recording updates to %s (MRT BGP4MP)\n", *record)
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Printf("collector listening on %s\n", l.Addr())

	if !*demo {
		return collector.Serve(l)
	}

	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		_ = collector.Serve(l)
	}()

	// Demo: simulate a hijack against a published victim and stream it.
	w, err := wf.BuildWorld()
	if err != nil {
		return err
	}
	cli.Describe(w)
	target, err := topology.FindTarget(w.Graph, w.Class, topology.TargetQuery{Depth: 2, Stub: true})
	if err != nil {
		return err
	}
	victimPrefix := prefix.MustParse("129.82.0.0/16")
	if err := store.Add(rpki.ROA{Prefix: victimPrefix, MaxLength: 24, Origin: w.Graph.ASN(target)}); err != nil {
		return err
	}
	det.NotePublished(victimPrefix)

	attacker := w.Class.Tier1[0]
	o, err := core.NewSolver(w.Policy).Solve(core.Attack{Target: target, Attacker: attacker}, nil)
	if err != nil {
		return err
	}
	probes := detect.TopDegreeProbes(w.Graph, 24).Probes
	updates, err := feed.FromOutcome(w.Graph, o, victimPrefix, prefix.Prefix{}, probes)
	if err != nil {
		return err
	}
	fmt.Printf("demo: %v hijacks %v; streaming %d probe feeds\n",
		w.Graph.ASN(attacker), w.Graph.ASN(target), len(updates))

	var wg sync.WaitGroup
	for _, tu := range updates {
		wg.Add(1)
		go func(tu feed.TimedUpdate) {
			defer wg.Done()
			conn, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			p := &feed.Probe{AS: tu.PeerAS, RouterID: tu.PeerAS.Uint32()}
			if err := p.Dial(conn); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer func() { _ = p.Close() }() // best-effort session teardown
			if err := p.Send(tu.Update); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}(tu)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		return err
	}
	collector.Shutdown()
	<-serveDone
	fmt.Printf("demo complete: %d sessions, %d alert(s)\n", collector.Sessions(), len(det.Alerts()))
	return nil
}

// loadROAs parses "prefix maxlen origin" lines into the store.
func loadROAs(store *rpki.Store, det *feed.Detector, path string) (int, error) {
	fh, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer fh.Close()
	sc := bufio.NewScanner(fh)
	n := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return n, fmt.Errorf("%s: want 'prefix maxlen origin', got %q", path, line)
		}
		p, err := prefix.Parse(fields[0])
		if err != nil {
			return n, err
		}
		maxLen, err := strconv.ParseUint(fields[1], 10, 8)
		if err != nil {
			return n, fmt.Errorf("%s: bad maxlen %q", path, fields[1])
		}
		origin, err := asn.Parse(fields[2])
		if err != nil {
			return n, err
		}
		if err := store.Add(rpki.ROA{Prefix: p, MaxLength: uint8(maxLen), Origin: origin}); err != nil {
			return n, err
		}
		det.NotePublished(p)
		n++
	}
	return n, sc.Err()
}
