// Command hijackmon is a live IP-hijack detection daemon: it runs a BGP
// route collector (the BGPmon role) with an origin-validating detector
// behind it (the PHAS/ROVER role). Probe routers open ordinary BGP
// sessions to it; every announced (prefix, origin) is validated against
// the configured route-origin data and violations print alerts.
//
// With -demo it additionally simulates a hijack and streams the probe
// feeds at itself — each probe driven by a reconnecting session runner —
// demonstrating the full pipeline in one process.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes,
// sessions drain (up to -drain, then are force-closed), and the MRT
// recorder is flushed — a flush failure exits non-zero, because a
// silently truncated recording is worse than a loud one.
//
// Usage:
//
//	hijackmon -listen 127.0.0.1:1790 -roa roas.txt -record updates.mrt
//	hijackmon -demo
//
// The -roa file holds one "prefix maxlen origin" triple per line, e.g.
//
//	129.82.0.0/16 24 AS12145
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/bgpwire"
	"github.com/bgpsim/bgpsim/internal/cli"
	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/detect"
	"github.com/bgpsim/bgpsim/internal/feed"
	"github.com/bgpsim/bgpsim/internal/mrt"
	"github.com/bgpsim/bgpsim/internal/prefix"
	"github.com/bgpsim/bgpsim/internal/rpki"
	"github.com/bgpsim/bgpsim/internal/topology"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hijackmon:", err)
		os.Exit(1)
	}
}

func run() error {
	fs := flag.NewFlagSet("hijackmon", flag.ExitOnError)
	wf := cli.AddWorldFlags(fs)
	listen := fs.String("listen", "127.0.0.1:1790", "collector listen address")
	roaFile := fs.String("roa", "", "ROA file: 'prefix maxlen origin' per line")
	demo := fs.Bool("demo", false, "simulate a hijack and stream its probe feeds at this daemon")
	record := fs.String("record", "", "log every received UPDATE to this MRT file (BGP4MP records)")
	hold := fs.Uint("hold", uint(feed.DefaultHoldTime), "hold time offered in OPEN, in seconds (RFC 4271 minimum 3)")
	reconnect := fs.Duration("reconnect", feed.DefaultBackoffBase, "demo probes: reconnect backoff base (doubles per failure, capped)")
	drain := fs.Duration("drain", 5*time.Second, "graceful shutdown: how long sessions may drain before being force-closed")
	if err := fs.Parse(os.Args[1:]); err != nil {
		return err
	}
	switch {
	case *hold > 65535:
		return fmt.Errorf("-hold %d does not fit the OPEN message's 16-bit field", *hold)
	case *hold < 3:
		// 0 would disable liveness detection entirely (and this collector
		// treats a zero field as "use the default"), so the daemon insists
		// on the RFC 4271 §6.2 floor.
		return fmt.Errorf("-hold %d is below the RFC 4271 floor of 3 seconds", *hold)
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "hijackmon: "+format+"\n", args...)
	}

	var store rpki.Store
	det := feed.NewDetector(&store, func(a feed.Alert) {
		fmt.Printf("ALERT [%s] t=%d peer=%v prefix=%v origin=%v path=%v\n",
			a.Reason, a.Time, a.PeerAS, a.Prefix, a.Origin, a.Path)
	})
	if *roaFile != "" {
		n, err := loadROAs(&store, det, *roaFile)
		if err != nil {
			return err
		}
		fmt.Printf("loaded %d ROAs from %s\n", n, *roaFile)
	}

	collector := &feed.Collector{
		LocalAS: 65535, RouterID: 0x7f000001, Detector: det,
		HoldTime: uint16(*hold),
		Logf:     logf,
	}
	// flushRecorder settles the MRT file at shutdown. Its error is the
	// process exit status: losing buffered records must be loud.
	var flushRecorder func() error
	if *record != "" {
		fh, err := os.Create(*record)
		if err != nil {
			return err
		}
		w := mrt.NewWriter(fh, 0)
		collector.Recorder = w
		flushRecorder = func() error {
			if err := w.Flush(); err != nil {
				_ = fh.Close()
				return fmt.Errorf("flush MRT recording %s: %w", *record, err)
			}
			if err := fh.Close(); err != nil {
				return fmt.Errorf("close MRT recording %s: %w", *record, err)
			}
			return nil
		}
		fmt.Printf("recording updates to %s (MRT BGP4MP)\n", *record)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Printf("collector listening on %s (hold %ds)\n", l.Addr(), *hold)

	serveErr := make(chan error, 1)
	go func() { serveErr <- collector.Serve(l) }()

	// shutdown drains the collector (force-closing leftovers after
	// -drain), reports its robustness counters, and settles the recorder.
	// Callers must close the listener first and reap serveErr after.
	shutdown := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		err := collector.Shutdown(ctx)
		st := collector.Stats()
		fmt.Printf("collector: %d sessions, %d malformed messages, %d hold expiries\n",
			st.Sessions, st.MalformedMessages, st.HoldExpiries)
		if st.Degraded {
			logf("recording DEGRADED: %d write errors, %d updates dropped", st.RecorderErrors, st.RecorderDropped)
		}
		if err != nil {
			logf("drain timeout after %v: force-closed remaining sessions", *drain)
		}
		if flushRecorder != nil {
			return flushRecorder()
		}
		return nil
	}

	if !*demo {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(sig)
		select {
		case s := <-sig:
			fmt.Printf("received %v; shutting down\n", s)
			// Order matters: stop accepting, then drain/force-close (which
			// unblocks Serve's session wait), then reap Serve itself.
			if err := l.Close(); err != nil {
				logf("close listener: %v", err)
			}
			err := shutdown()
			<-serveErr
			return err
		case err := <-serveErr:
			// The listener died under us; still drain and settle the recorder.
			if serr := shutdown(); serr != nil {
				return serr
			}
			return err
		}
	}

	// Demo: simulate a hijack against a published victim and stream it.
	w, err := wf.BuildWorld()
	if err != nil {
		return err
	}
	cli.Describe(w)
	target, err := topology.FindTarget(w.Graph, w.Class, topology.TargetQuery{Depth: 2, Stub: true})
	if err != nil {
		return err
	}
	victimPrefix := prefix.MustParse("129.82.0.0/16")
	if err := store.Add(rpki.ROA{Prefix: victimPrefix, MaxLength: 24, Origin: w.Graph.ASN(target)}); err != nil {
		return err
	}
	det.NotePublished(victimPrefix)

	attacker := w.Class.Tier1[0]
	o, err := core.NewSolver(w.Policy).Solve(core.Attack{Target: target, Attacker: attacker}, nil)
	if err != nil {
		return err
	}
	probes := detect.TopDegreeProbes(w.Graph, 24).Probes
	updates, err := feed.FromOutcome(w.Graph, o, victimPrefix, prefix.Prefix{}, probes)
	if err != nil {
		return err
	}
	fmt.Printf("demo: %v hijacks %v; streaming %d probe feeds\n",
		w.Graph.ASN(attacker), w.Graph.ASN(target), len(updates))

	// One reconnecting session runner per probe AS, feeding that probe's
	// updates in time order and healing transient connection failures.
	byPeer := make(map[asn.ASN][]*bgpwire.Update)
	var order []asn.ASN
	for _, tu := range updates {
		if _, ok := byPeer[tu.PeerAS]; !ok {
			order = append(order, tu.PeerAS)
		}
		byPeer[tu.PeerAS] = append(byPeer[tu.PeerAS], tu.Update)
	}
	var wg sync.WaitGroup
	runErrs := make(chan error, len(order))
	for i, peer := range order {
		r := &feed.ProbeRunner{
			AS: peer, RouterID: peer.Uint32(),
			HoldTime:    uint16(*hold),
			BackoffBase: *reconnect,
			MaxAttempts: 8,
			Jitter:      rand.New(rand.NewSource(*wf.Seed + int64(i))),
			Dial: func() (io.ReadWriteCloser, error) {
				return net.DialTimeout("tcp", l.Addr().String(), 10*time.Second)
			},
			Logf: logf,
		}
		for _, u := range byPeer[peer] {
			r.Enqueue(u)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			if err := r.RunDrain(ctx); err != nil {
				runErrs <- fmt.Errorf("probe %v: %w", r.AS, err)
			}
		}()
	}
	wg.Wait()
	close(runErrs)
	for err := range runErrs {
		logf("%v", err)
	}
	if err := l.Close(); err != nil {
		return err
	}
	err = shutdown()
	<-serveErr
	if err != nil {
		return err
	}
	fmt.Printf("demo complete: %d sessions, %d alert(s)\n", collector.Sessions(), len(det.Alerts()))
	return nil
}

// loadROAs reads a "prefix maxlen origin" file into the store and
// registers every prefix with the detector (see rpki.LoadROAs).
func loadROAs(store *rpki.Store, det *feed.Detector, path string) (int, error) {
	fh, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer fh.Close()
	return rpki.LoadROAs(store, fh, path, det.NotePublished)
}
