// Command deployscan reproduces the paper's Section V incremental-defense
// study: the Figure 5/6 deployment ladders plus the "top still-potent
// attacks" residual tables.
//
// Usage:
//
//	deployscan -target depth1        # Figure 5 (resistant target)
//	deployscan -target deep          # Figure 6 (vulnerable target)
//	deployscan -target both -top 5
//
// The ladders generalize beyond the paper's attack model: -scenario picks
// the attack kind and -defense what the deployed sets validate, and -rank
// runs the per-scenario deployment ranking study (random vs degree-ranked
// vs depth-ranked, every scenario, one matrix run):
//
//	deployscan -scenario route-leak -defense rov+aspa
//	deployscan -rank
//
// Multi-process runs shard each panel's ladder by cell range:
//
//	deployscan -shard 0/2 -shard-dir out
//	deployscan -shard 1/2 -shard-dir out
//	deployscan -merge -shard-dir out
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/bgpsim/bgpsim/internal/cli"
	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/experiments"
	"github.com/bgpsim/bgpsim/internal/hijack"
	"github.com/bgpsim/bgpsim/internal/sweep"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "deployscan:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("deployscan", flag.ContinueOnError)
	wf := cli.AddWorldFlags(fs)
	target := fs.String("target", "both", "which target panel to run: depth1 | deep | both")
	sample := fs.Int("sample", 0, "transit-attacker sample (0 = all transit ASes)")
	top := fs.Int("top", 5, "residual-attack table size")
	subprefix := fs.Bool("subprefix", false, "also run the sub-prefix-vs-origin hijack study")
	sbgpStudy := fs.Bool("sbgp", false, "also run the S*BGP security-rank study")
	rank := fs.Bool("rank", false, "run the per-scenario deployment ranking study instead of the Figure 5/6 panels")
	svgPrefix := fs.String("svg", "", "render each panel's chart to <prefix>-depth1.svg / <prefix>-deep.svg")
	sc := cli.AddScenarioFlags(fs)
	workers := cli.AddWorkersFlag(fs)
	sh := cli.AddShardFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	mode, sel, err := sh.Mode()
	if err != nil {
		return err
	}
	if mode != cli.RunFull && (*subprefix || *sbgpStudy) {
		return fmt.Errorf("-subprefix and -sbgp do not shard; drop them from -shard/-merge runs")
	}
	kind, mechs, err := sc.Parse()
	if err != nil {
		return err
	}
	w, err := wf.BuildWorld()
	if err != nil {
		return err
	}
	cli.Describe(w)
	if *rank {
		return runRanking(w, sh, mode, sel, *sample, *wf.Seed, mechs, *workers)
	}
	// The ladder defends each rung's node set with the -defense
	// mechanisms (empty = ROV, the paper's model) against -scenario
	// attacks.
	cfg := experiments.DeploymentConfig{
		AttackerSample: *sample, Seed: *wf.Seed, ResidualTop: *top,
		Kind: kind, Mechs: mechs, Workers: *workers,
	}

	runDepth1 := *target == "depth1" || *target == "both"
	runDeep := *target == "deep" || *target == "both"
	if !runDepth1 && !runDeep {
		return fmt.Errorf("unknown -target %q (want depth1, deep or both)", *target)
	}
	if mode == cli.RunShard {
		store := sh.Store("deployscan", *wf.Seed, *workers)
		if runDepth1 {
			rep, err := experiments.Fig5ShardTo(w, cfg, sel, store)
			if err != nil {
				return err
			}
			cli.NoteShard(rep)
		}
		if runDeep {
			rep, err := experiments.Fig6ShardTo(w, cfg, sel, store)
			if err != nil {
				return err
			}
			cli.NoteShard(rep)
		}
		return nil
	}

	emit := func(res *experiments.DeploymentResult, tag string) error {
		if err := res.WriteText(os.Stdout); err != nil {
			return err
		}
		if *svgPrefix != "" {
			name := *svgPrefix + "-" + tag + ".svg"
			fh, err := os.Create(name)
			if err != nil {
				return err
			}
			defer fh.Close()
			if err := res.RenderSVG(fh); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "chart written to %s\n", name)
		}
		return nil
	}
	if runDepth1 {
		var res *experiments.DeploymentResult
		if mode == cli.RunMerge {
			files, err := cli.ReadShards[hijack.Record](*sh.Dir, experiments.TagFig5)
			if err != nil {
				return err
			}
			res, err = experiments.Fig5Merge(w, cfg, files)
			if err != nil {
				return err
			}
		} else {
			res, err = experiments.Fig5(w, cfg)
			if err != nil {
				return err
			}
		}
		if err := emit(res, "depth1"); err != nil {
			return err
		}
		fmt.Println()
	}
	if runDeep {
		var res *experiments.DeploymentResult
		if mode == cli.RunMerge {
			files, err := cli.ReadShards[hijack.Record](*sh.Dir, experiments.TagFig6)
			if err != nil {
				return err
			}
			res, err = experiments.Fig6Merge(w, cfg, files)
			if err != nil {
				return err
			}
		} else {
			res, err = experiments.Fig6(w, cfg)
			if err != nil {
				return err
			}
		}
		if err := emit(res, "deep"); err != nil {
			return err
		}
	}
	if *subprefix {
		fmt.Println()
		res, err := experiments.SubPrefixStudy(w, cfg)
		if err != nil {
			return err
		}
		if err := res.WriteText(os.Stdout); err != nil {
			return err
		}
	}
	if *sbgpStudy {
		fmt.Println()
		res, err := experiments.SBGPStudy(w, cfg)
		if err != nil {
			return err
		}
		if err := res.WriteText(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// runRanking runs the scenario-ranking study in whichever shard mode the
// flags selected. mechs = 0 keeps the study's own rov+aspa default.
func runRanking(w *experiments.World, sh *cli.ShardFlags, mode cli.ShardMode, sel sweep.ShardSel, sample int, seed int64, mechs core.DefenseMech, workers int) error {
	cfg := experiments.ScenarioRankingConfig{
		AttackerSample: sample,
		Seed:           seed,
		Mechs:          mechs,
		Workers:        workers,
	}
	switch mode {
	case cli.RunShard:
		rep, err := experiments.ScenarioRankingShardTo(w, cfg, sel, sh.Store("deployscan", seed, workers))
		if err != nil {
			return err
		}
		cli.NoteShard(rep)
		return nil
	case cli.RunMerge:
		files, err := cli.ReadShards[hijack.Record](*sh.Dir, experiments.TagScenario)
		if err != nil {
			return err
		}
		res, err := experiments.ScenarioRankingMerge(w, cfg, files)
		if err != nil {
			return err
		}
		return res.WriteText(os.Stdout)
	default:
		res, err := experiments.ScenarioRanking(w, cfg)
		if err != nil {
			return err
		}
		return res.WriteText(os.Stdout)
	}
}
