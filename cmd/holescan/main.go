// Command holescan runs the paper's future-work analysis: which attacks
// still get through a partial filter deployment AND escape a detector
// configuration, and why each probe stayed blind (never reached /
// LOCAL_PREF / shorter legitimate path / tie-break).
//
// Usage:
//
//	holescan -scale 10000 -attacks 4000
//	holescan -filters tier1 -probes tier1     # the weakest configuration
//
// Multi-process runs shard the attack workload by cell range:
//
//	holescan -attacks 4000 -shard 0/2 -shard-dir out
//	holescan -attacks 4000 -shard 1/2 -shard-dir out
//	holescan -attacks 4000 -merge -shard-dir out
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"github.com/bgpsim/bgpsim/internal/cli"
	"github.com/bgpsim/bgpsim/internal/deploy"
	"github.com/bgpsim/bgpsim/internal/detect"
	"github.com/bgpsim/bgpsim/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "holescan:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("holescan", flag.ContinueOnError)
	wf := cli.AddWorldFlags(fs)
	attacks := fs.Int("attacks", 2000, "random attack workload size")
	minPollution := fs.Int("min-pollution", 0, "success threshold in polluted ASes (0 = 1% of ASes)")
	filtersKind := fs.String("filters", "core", "deployed filters: core | tier1 | none")
	probesKind := fs.String("probes", "core", "detector probes: core | tier1 | bgpmon")
	sc := cli.AddScenarioFlags(fs)
	workers := cli.AddWorkersFlag(fs)
	sh := cli.AddShardFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	mode, sel, err := sh.Mode()
	if err != nil {
		return err
	}
	kind, mechs, err := sc.Parse()
	if err != nil {
		return err
	}
	w, err := wf.BuildWorld()
	if err != nil {
		return err
	}
	cli.Describe(w)

	coreK := w.ScaledCoreK()
	cfg := experiments.HoleConfig{
		Attacks:      *attacks,
		Seed:         *wf.Seed,
		MinPollution: *minPollution,
		Kind:         kind,
		// -defense picks what the -filters set deploys (empty = ROV).
		Mechs:   mechs,
		Workers: *workers,
	}
	switch *filtersKind {
	case "core":
		f := deploy.TopDegree(w.Graph, coreK)
		cfg.Filters = &f
	case "tier1":
		f := deploy.Tier1(w.Class)
		cfg.Filters = &f
	case "none":
		f := deploy.None()
		cfg.Filters = &f
	default:
		return fmt.Errorf("unknown -filters %q", *filtersKind)
	}
	switch *probesKind {
	case "core":
		p := detect.TopDegreeProbes(w.Graph, coreK)
		cfg.Probes = &p
	case "tier1":
		p := detect.Tier1Probes(w.Class)
		cfg.Probes = &p
	case "bgpmon":
		p := detect.BGPmonLikeProbes(w.Graph, w.Class, 24, rand.New(rand.NewSource(*wf.Seed)))
		cfg.Probes = &p
	default:
		return fmt.Errorf("unknown -probes %q", *probesKind)
	}

	var res *experiments.HoleResult
	switch mode {
	case cli.RunShard:
		rep, err := experiments.HoleShardTo(w, cfg, sel, sh.Store("holescan", *wf.Seed, *workers))
		if err != nil {
			return err
		}
		cli.NoteShard(rep)
		return nil
	case cli.RunMerge:
		files, err := cli.ReadShards[experiments.HoleRecord](*sh.Dir, experiments.TagHoles)
		if err != nil {
			return err
		}
		res, err = experiments.HoleMerge(w, cfg, files)
		if err != nil {
			return err
		}
	default:
		res, err = experiments.HoleAnalysis(w, cfg)
		if err != nil {
			return err
		}
	}
	return res.WriteText(os.Stdout, func(n int) string { return w.Graph.ASN(n).String() })
}
