package main

import (
	"strings"
	"testing"
)

// TestLevelFlagRejectedAtParse: an out-of-range -level must fail during
// flag parsing — before any topology is built — with an error naming
// the flag.
func TestLevelFlagRejectedAtParse(t *testing.T) {
	for _, bad := range []string{"0", "10", "-2", "best"} {
		err := run([]string{"-level", bad, "-format", "recio", "-shard", "0/2", "-shard-dir", t.TempDir()})
		if err == nil {
			t.Fatalf("-level %q accepted", bad)
		}
		if !strings.Contains(err.Error(), "level") {
			t.Fatalf("-level %q: error %q does not name the flag", bad, err)
		}
	}
}

// TestLevelFlagAccepted: a legal -level survives flag parsing and mode
// validation (the run then fails on the deliberately missing
// -shard-dir, proving it got past the flag layer).
func TestLevelFlagAccepted(t *testing.T) {
	err := run([]string{"-level", "9", "-format", "recio", "-shard", "0/2"})
	if err == nil || !strings.Contains(err.Error(), "-shard-dir") {
		t.Fatalf("want the -shard-dir mode error after accepting -level 9, got: %v", err)
	}
}
