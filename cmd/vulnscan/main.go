// Command vulnscan reproduces the paper's Section IV vulnerability
// analysis: Figure 2 (targets under tier-1 hierarchies), Figure 3
// (tier-2 hierarchies) and Figure 4 (the effect of defensive stub
// filters).
//
// Usage:
//
//	vulnscan -scale 5000                     # Figure 2
//	vulnscan -hierarchy tier2                # Figure 3
//	vulnscan -stubfilter                     # Figure 4
//	vulnscan -sample 2000                    # cap attackers per target
//
// Large runs split across processes (or machines) by cell range; each
// shard writes a mergeable JSON slice and a final merge invocation
// reduces them into the exact single-process result:
//
//	vulnscan -scale 42697 -shard 0/3 -shard-dir out   # on machine A
//	vulnscan -scale 42697 -shard 1/3 -shard-dir out   # on machine B
//	vulnscan -scale 42697 -shard 2/3 -shard-dir out   # on machine C
//	vulnscan -scale 42697 -merge -shard-dir out
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/bgpsim/bgpsim/internal/cli"
	"github.com/bgpsim/bgpsim/internal/deploy"
	"github.com/bgpsim/bgpsim/internal/experiments"
	"github.com/bgpsim/bgpsim/internal/hijack"
	"github.com/bgpsim/bgpsim/internal/sweep"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "vulnscan:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("vulnscan", flag.ContinueOnError)
	wf := cli.AddWorldFlags(fs)
	hierarchy := fs.String("hierarchy", "tier1", "target hierarchy for the depth panel: tier1 | tier2")
	stubFilter := fs.Bool("stubfilter", false, "run the Figure 4 stub-filter comparison instead")
	sample := fs.Int("sample", 0, "attacker sample per target (0 = every AS)")
	svgOut := fs.String("svg", "", "also render the panel as an SVG chart to this file")
	sc := cli.AddScenarioFlags(fs)
	workers := cli.AddWorkersFlag(fs)
	sh := cli.AddShardFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	mode, sel, err := sh.Mode()
	if err != nil {
		return err
	}
	kind, mechs, err := sc.Parse()
	if err != nil {
		return err
	}
	w, err := wf.BuildWorld()
	if err != nil {
		return err
	}
	cli.Describe(w)

	cfg := experiments.VulnerabilityConfig{AttackerSample: *sample, Seed: *wf.Seed, Kind: kind, Workers: *workers}
	// -defense deploys the selected mechanisms at the scaled 62-AS
	// high-degree core; the default stays the paper's undefended baseline.
	if mechs != 0 {
		cfg.Defense = mechs.Deploy(deploy.TopDegree(w.Graph, w.ScaledCoreK()).Blocked(w.Graph.N()))
	}
	store := sh.Store("vulnscan", *wf.Seed, *workers)
	if *stubFilter {
		switch mode {
		case cli.RunShard:
			rep, err := experiments.Fig4ShardTo(w, cfg, sel, store)
			if err != nil {
				return err
			}
			cli.NoteShard(rep)
			return nil
		case cli.RunMerge:
			files, err := cli.ReadShards[hijack.Record](*sh.Dir, experiments.TagFig4)
			if err != nil {
				return err
			}
			res, err := experiments.Fig4Merge(w, cfg, files)
			if err != nil {
				return err
			}
			return res.WriteText(os.Stdout)
		}
		res, err := experiments.Fig4(w, cfg)
		if err != nil {
			return err
		}
		return res.WriteText(os.Stdout)
	}

	var tag string
	switch *hierarchy {
	case "tier1":
		tag = experiments.TagFig2
	case "tier2":
		tag = experiments.TagFig3
	default:
		return fmt.Errorf("unknown -hierarchy %q (want tier1 or tier2)", *hierarchy)
	}
	var res *experiments.VulnerabilityResult
	switch mode {
	case cli.RunShard:
		var rep sweep.ShardReport
		if tag == experiments.TagFig2 {
			rep, err = experiments.Fig2ShardTo(w, cfg, sel, store)
		} else {
			rep, err = experiments.Fig3ShardTo(w, cfg, sel, store)
		}
		if err != nil {
			return err
		}
		cli.NoteShard(rep)
		return nil
	case cli.RunMerge:
		files, err := cli.ReadShards[hijack.Record](*sh.Dir, tag)
		if err != nil {
			return err
		}
		if tag == experiments.TagFig2 {
			res, err = experiments.Fig2Merge(w, cfg, files)
		} else {
			res, err = experiments.Fig3Merge(w, cfg, files)
		}
		if err != nil {
			return err
		}
	default:
		if tag == experiments.TagFig2 {
			res, err = experiments.Fig2(w, cfg)
		} else {
			res, err = experiments.Fig3(w, cfg)
		}
		if err != nil {
			return err
		}
	}
	if *svgOut != "" {
		fh, err := os.Create(*svgOut)
		if err != nil {
			return err
		}
		defer fh.Close()
		if err := res.RenderSVG(fh); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "chart written to %s\n", *svgOut)
	}
	return res.WriteText(os.Stdout)
}
