// Command vulnscan reproduces the paper's Section IV vulnerability
// analysis: Figure 2 (targets under tier-1 hierarchies), Figure 3
// (tier-2 hierarchies) and Figure 4 (the effect of defensive stub
// filters).
//
// Usage:
//
//	vulnscan -scale 5000                     # Figure 2
//	vulnscan -hierarchy tier2                # Figure 3
//	vulnscan -stubfilter                     # Figure 4
//	vulnscan -sample 2000                    # cap attackers per target
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/bgpsim/bgpsim/internal/cli"
	"github.com/bgpsim/bgpsim/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vulnscan:", err)
		os.Exit(1)
	}
}

func run() error {
	fs := flag.NewFlagSet("vulnscan", flag.ExitOnError)
	wf := cli.AddWorldFlags(fs)
	hierarchy := fs.String("hierarchy", "tier1", "target hierarchy for the depth panel: tier1 | tier2")
	stubFilter := fs.Bool("stubfilter", false, "run the Figure 4 stub-filter comparison instead")
	sample := fs.Int("sample", 0, "attacker sample per target (0 = every AS)")
	svgOut := fs.String("svg", "", "also render the panel as an SVG chart to this file")
	if err := fs.Parse(os.Args[1:]); err != nil {
		return err
	}
	w, err := wf.BuildWorld()
	if err != nil {
		return err
	}
	cli.Describe(w)

	cfg := experiments.VulnerabilityConfig{AttackerSample: *sample, Seed: *wf.Seed}
	if *stubFilter {
		res, err := experiments.Fig4(w, cfg)
		if err != nil {
			return err
		}
		return res.WriteText(os.Stdout)
	}
	var res *experiments.VulnerabilityResult
	switch *hierarchy {
	case "tier1":
		res, err = experiments.Fig2(w, cfg)
	case "tier2":
		res, err = experiments.Fig3(w, cfg)
	default:
		return fmt.Errorf("unknown -hierarchy %q (want tier1 or tier2)", *hierarchy)
	}
	if err != nil {
		return err
	}
	if *svgOut != "" {
		fh, err := os.Create(*svgOut)
		if err != nil {
			return err
		}
		defer fh.Close()
		if err := res.RenderSVG(fh); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "chart written to %s\n", *svgOut)
	}
	return res.WriteText(os.Stdout)
}
