// Command selfdefense reproduces the paper's Section VII pragmatic
// self-interest experiments on the topology's island region (the New
// Zealand analog): re-homing the most vulnerable regional AS up the
// provider chain, and placing a single origin-validation filter at the
// regional transit hub.
//
// Usage:
//
//	selfdefense -scale 5000
//	selfdefense -outside 200 -levels 2
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/bgpsim/bgpsim/internal/cli"
	"github.com/bgpsim/bgpsim/internal/experiments"
	"github.com/bgpsim/bgpsim/internal/mitigate"
	"github.com/bgpsim/bgpsim/internal/prefix"
	"github.com/bgpsim/bgpsim/internal/topology"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "selfdefense:", err)
		os.Exit(1)
	}
}

func run() error {
	fs := flag.NewFlagSet("selfdefense", flag.ExitOnError)
	wf := cli.AddWorldFlags(fs)
	outside := fs.Int("outside", 200, "attacks sampled from outside the region (paper: 200)")
	levels := fs.Int("levels", 2, "provider-chain levels to re-home upward (paper: 2)")
	mitigateStudy := fs.Bool("mitigate", false, "also run the reactive sub-prefix mitigation study")
	if err := fs.Parse(os.Args[1:]); err != nil {
		return err
	}
	w, err := wf.BuildWorld()
	if err != nil {
		return err
	}
	cli.Describe(w)

	res, err := experiments.SectionVII(w, experiments.SelfInterestConfig{
		OutsideSample: *outside,
		Seed:          *wf.Seed,
		RehomeLevels:  *levels,
	})
	if err != nil {
		return err
	}
	if err := res.WriteText(os.Stdout); err != nil {
		return err
	}
	if *mitigateStudy {
		fmt.Println()
		if err := runMitigation(w); err != nil {
			return err
		}
	}
	return nil
}

// runMitigation demonstrates the reactive defense class: the victim
// counter-announces more-specific halves, under permissive vs conservative
// ROA MaxLength policies.
func runMitigation(w *experiments.World) error {
	victim, err := topology.FindTarget(w.Graph, w.Class, topology.TargetQuery{Depth: 2, Stub: true})
	if err != nil {
		return err
	}
	attacker := w.Class.Tier1[0]
	coreK := 62 * w.Graph.N() / 42697
	if coreK < len(w.Class.Tier1)+3 {
		coreK = len(w.Class.Tier1) + 3
	}
	filtering := topology.NodesByDegree(w.Graph)[:coreK]
	study, err := mitigate.Study(w.Policy, victim, attacker, prefix.MustParse("129.82.0.0/16"), filtering)
	if err != nil {
		return err
	}
	fmt.Printf("reactive mitigation (sub-prefix counter-announcement) of %v hijacked by %v, %d filtering ASes:\n",
		w.Graph.ASN(victim), w.Graph.ASN(attacker), study.FilteringASes)
	fmt.Printf("  ROA maxlen %d (permissive):   mitigation valid=%v  recovered %d  stranded %d\n",
		17, study.Permissive.MitigationValid, study.Permissive.RecoveredASes, study.Permissive.StrandedASes)
	fmt.Printf("  ROA maxlen %d (conservative): mitigation valid=%v  recovered %d  stranded %d  ← the MaxLength trap\n",
		16, study.Conservative.MitigationValid, study.Conservative.RecoveredASes, study.Conservative.StrandedASes)
	return nil
}
