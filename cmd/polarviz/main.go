// Command polarviz renders the paper's Figure 1: polar graphs of an
// origin attack propagating generation by generation, one SVG per
// generation (red = bogus announcement accepted, green = rejected; radius
// = AS depth band, circle size = announced address space).
//
// Usage:
//
//	polarviz -scale 3000 -out frames/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/bgpsim/bgpsim/internal/cli"
	"github.com/bgpsim/bgpsim/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "polarviz:", err)
		os.Exit(1)
	}
}

func run() error {
	fs := flag.NewFlagSet("polarviz", flag.ExitOnError)
	wf := cli.AddWorldFlags(fs)
	outDir := fs.String("out", "polar-frames", "output directory for SVG frames")
	size := fs.Float64("size", 900, "SVG canvas size in pixels")
	if err := fs.Parse(os.Args[1:]); err != nil {
		return err
	}
	w, err := wf.BuildWorld()
	if err != nil {
		return err
	}
	cli.Describe(w)

	res, err := experiments.Fig1(w)
	if err != nil {
		return err
	}
	if err := res.WriteText(os.Stdout, func(n int) string { return w.Graph.ASN(n).String() }); err != nil {
		return err
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	err = res.RenderFrames(w, *size, func(gen int, svg []byte) error {
		name := filepath.Join(*outDir, fmt.Sprintf("generation-%02d.svg", gen))
		return os.WriteFile(name, svg, 0o644)
	})
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d frames to %s/\n", res.Trace.Generations, *outDir)
	return nil
}
