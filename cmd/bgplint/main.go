// Command bgplint runs the repository's custom static-analysis suite
// (maporder, globalrand, asnconv, errdrop, obsappend, walltime, lockheld,
// goroleak, hotalloc) over the module's library code and exits non-zero
// on any finding.
//
// Usage:
//
//	bgplint [-C dir] [-only analyzer,...] [-json | -sarif] [packages]
//
// The package arguments are accepted for familiarity ("./...") but the
// driver always checks the whole module rooted at -C (default: the
// current directory's module). Test files are not checked.
//
// Before running analyzers the driver computes the determinism closure
// (lint.DeterministicClosure over the module-internal import graph) and
// hands each package its fact via pass.Facts.Deterministic; afterwards
// it applies //bgplint:ignore suppressions centrally, so malformed
// directives (missing reason, unknown analyzer) surface as findings of
// the pseudo-analyzer "directive" even in otherwise clean packages.
//
// Output is plain text by default; -json emits {"findings": [...]} and
// -sarif emits a SARIF 2.1.0 log for GitHub code scanning. All formats
// use repository-relative paths and report findings sorted by position.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/bgpsim/bgpsim/internal/lint"
	"github.com/bgpsim/bgpsim/internal/lint/analysis"
	"github.com/bgpsim/bgpsim/internal/lint/directive"
	"github.com/bgpsim/bgpsim/internal/lint/loader"
	"github.com/bgpsim/bgpsim/internal/lint/report"
)

func main() {
	dir := flag.String("C", ".", "module root (directory containing go.mod)")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := flag.Bool("json", false, "emit findings as JSON on stdout")
	sarifOut := flag.Bool("sarif", false, "emit findings as SARIF 2.1.0 on stdout")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: bgplint [-C dir] [-only analyzer,...] [-json | -sarif] [packages]\n\nanalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *jsonOut && *sarifOut {
		fmt.Fprintln(os.Stderr, "bgplint: -json and -sarif are mutually exclusive")
		os.Exit(2)
	}
	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bgplint:", err)
		os.Exit(2)
	}
	findings, err := runAll(*dir, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bgplint:", err)
		os.Exit(2)
	}
	switch {
	case *jsonOut:
		err = report.JSON(os.Stdout, findings)
	case *sarifOut:
		err = report.SARIF(os.Stdout, rules(), findings)
	default:
		err = report.Text(os.Stdout, findings)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bgplint:", err)
		os.Exit(2)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "bgplint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	all := lint.Analyzers()
	if only == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// rules builds the SARIF rule table: every analyzer plus the directive
// pseudo-analyzer that reports malformed //bgplint comments.
func rules() []report.Rule {
	var out []report.Rule
	for _, a := range lint.Analyzers() {
		out = append(out, report.Rule{ID: a.Name, Doc: a.Doc})
	}
	out = append(out, report.Rule{
		ID:  directive.Name,
		Doc: "malformed //bgplint directive (unknown keyword or analyzer, or ignore without a reason)",
	})
	return out
}

// runAll loads every module package, computes the determinism closure,
// applies the analyzers and the //bgplint:ignore suppressions, and
// returns the surviving findings sorted by position.
func runAll(root string, analyzers []*analysis.Analyzer) ([]report.Finding, error) {
	l, err := loader.New(root)
	if err != nil {
		return nil, err
	}
	imports, err := lint.ScanModuleImports(l.Root, l.ModPath)
	if err != nil {
		return nil, err
	}
	closure := lint.DeterministicClosure(imports)
	pkgs, err := l.LoadAll()
	if err != nil {
		return nil, err
	}
	// Suppressions may name any analyzer in the suite, including ones
	// deselected by -only: a partial run must not reject a directive the
	// full run accepts.
	known := lint.Names()
	var findings []report.Finding
	for _, pkg := range pkgs {
		var diags []analysis.Diagnostic
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      l.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				PkgPath:   pkg.Path,
				Facts:     analysis.Facts{Deterministic: closure[pkg.Path]},
				Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
		diags = directive.Filter(l.Fset, pkg.Files, diags, known)
		for _, d := range diags {
			pos := l.Fset.Position(d.Pos)
			rel, err := filepath.Rel(l.Root, pos.Filename)
			if err != nil {
				rel = pos.Filename
			}
			findings = append(findings, report.Finding{
				Analyzer: d.Analyzer,
				File:     filepath.ToSlash(rel),
				Line:     pos.Line,
				Column:   pos.Column,
				Message:  d.Message,
			})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
