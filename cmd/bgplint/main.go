// Command bgplint runs the repository's custom static-analysis suite
// (maporder, globalrand, asnconv, errdrop, obsappend) over the module's library
// code and exits non-zero on any finding.
//
// Usage:
//
//	bgplint [-C dir] [-only analyzer,...] [packages]
//
// The package arguments are accepted for familiarity ("./...") but the
// driver always checks the whole module rooted at -C (default: the
// current directory's module). Test files are not checked.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/bgpsim/bgpsim/internal/lint"
	"github.com/bgpsim/bgpsim/internal/lint/analysis"
	"github.com/bgpsim/bgpsim/internal/lint/loader"
)

func main() {
	dir := flag.String("C", ".", "module root (directory containing go.mod)")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: bgplint [-C dir] [-only analyzer,...] [packages]\n\nanalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bgplint:", err)
		os.Exit(2)
	}
	count, err := runAll(*dir, analyzers, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bgplint:", err)
		os.Exit(2)
	}
	if count > 0 {
		fmt.Fprintf(os.Stderr, "bgplint: %d finding(s)\n", count)
		os.Exit(1)
	}
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	all := lint.Analyzers()
	if only == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// runAll loads every module package and applies the analyzers, printing
// findings sorted by position. It returns the finding count.
func runAll(root string, analyzers []*analysis.Analyzer, out *os.File) (int, error) {
	l, err := loader.New(root)
	if err != nil {
		return 0, err
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		return 0, err
	}
	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      l.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				PkgPath:   pkg.Path,
				Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			}
			if _, err := a.Run(pass); err != nil {
				return 0, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := l.Fset.Position(diags[i].Pos), l.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	for _, d := range diags {
		pos := l.Fset.Position(d.Pos)
		fmt.Fprintf(out, "%s:%d:%d: %s (%s)\n", pos.Filename, pos.Line, pos.Column, d.Message, d.Analyzer)
	}
	return len(diags), nil
}
