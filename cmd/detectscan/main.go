// Command detectscan reproduces the paper's Section VI hijack-detection
// study (Figure 7): the same random transit-pair attack workload evaluated
// against three probe configurations — all tier-1s, a BGPmon-like
// volunteer set, and the high-degree core — including the "top undetected
// attacks" tables.
//
// Usage:
//
//	detectscan -attacks 8000
//	detectscan -semantics received        # ablation: any-received triggers
//
// Multi-process runs shard the attack workload by cell range:
//
//	detectscan -attacks 8000 -shard 0/2 -shard-dir out
//	detectscan -attacks 8000 -shard 1/2 -shard-dir out
//	detectscan -attacks 8000 -merge -shard-dir out
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/bgpsim/bgpsim/internal/cli"
	"github.com/bgpsim/bgpsim/internal/deploy"
	"github.com/bgpsim/bgpsim/internal/detect"
	"github.com/bgpsim/bgpsim/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "detectscan:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("detectscan", flag.ContinueOnError)
	wf := cli.AddWorldFlags(fs)
	attacks := fs.Int("attacks", 2000, "random attack workload size (paper: 8000)")
	bgpmon := fs.Int("bgpmon-probes", 24, "probe count for the BGPmon-like configuration")
	top := fs.Int("top", 5, "top undetected attacks per configuration")
	semantics := fs.String("semantics", "selected", "probe trigger semantics: selected | received")
	falseAlarms := fs.Bool("falsealarms", false, "also run the data-freshness false-alarm study")
	svgPrefix := fs.String("svg", "", "render each configuration's histogram to <prefix>-caseN.svg")
	sc := cli.AddScenarioFlags(fs)
	workers := cli.AddWorkersFlag(fs)
	sh := cli.AddShardFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	mode, sel, err := sh.Mode()
	if err != nil {
		return err
	}
	kind, mechs, err := sc.Parse()
	if err != nil {
		return err
	}
	if mode != cli.RunFull && *falseAlarms {
		return fmt.Errorf("-falsealarms does not shard; drop it from -shard/-merge runs")
	}
	w, err := wf.BuildWorld()
	if err != nil {
		return err
	}
	cli.Describe(w)

	sem := detect.SelectedRoute
	switch *semantics {
	case "selected":
	case "received":
		sem = detect.AnyReceived
	default:
		return fmt.Errorf("unknown -semantics %q (want selected or received)", *semantics)
	}
	cfg := experiments.DetectionConfig{
		Attacks:      *attacks,
		Seed:         *wf.Seed,
		BGPmonProbes: *bgpmon,
		TopMisses:    *top,
		Semantics:    sem,
		Kind:         kind,
		Workers:      *workers,
	}
	// -defense deploys the selected mechanisms at the scaled 62-AS core,
	// so detection is measured alongside prevention; the default stays
	// the paper's detection-only model.
	if mechs != 0 {
		cfg.Defense = mechs.Deploy(deploy.TopDegree(w.Graph, w.ScaledCoreK()).Blocked(w.Graph.N()))
	}
	var res *experiments.DetectionResult
	switch mode {
	case cli.RunShard:
		rep, err := experiments.Fig7ShardTo(w, cfg, sel, sh.Store("detectscan", *wf.Seed, *workers))
		if err != nil {
			return err
		}
		cli.NoteShard(rep)
		return nil
	case cli.RunMerge:
		files, err := cli.ReadShards[detect.Record](*sh.Dir, experiments.TagFig7)
		if err != nil {
			return err
		}
		res, err = experiments.Fig7Merge(w, cfg, files)
		if err != nil {
			return err
		}
	default:
		res, err = experiments.Fig7(w, cfg)
		if err != nil {
			return err
		}
	}
	if err := res.WriteText(os.Stdout, func(node int) string { return w.Graph.ASN(node).String() }); err != nil {
		return err
	}
	if *svgPrefix != "" {
		for i := range res.Cases {
			name := fmt.Sprintf("%s-case%d.svg", *svgPrefix, i+1)
			fh, err := os.Create(name)
			if err != nil {
				return err
			}
			if err := res.RenderSVG(fh, i); err != nil {
				fh.Close()
				return err
			}
			if err := fh.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "chart written to %s\n", name)
		}
	}
	if *falseAlarms {
		fmt.Println()
		fa, err := experiments.FalseAlarmStudy(w, experiments.FalseAlarmConfig{Seed: *wf.Seed, Workers: *workers})
		if err != nil {
			return err
		}
		if err := fa.WriteText(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}
