// Command hijackd serves what-if hijack queries over a loaded world:
// the long-running form of the scan tools, for interactive and
// operational use. It loads one topology, precomputes baseline route
// snapshots on demand, and answers per-attack queries via delta repair
// against them — orders of magnitude less work per query than a cold
// solve (see DESIGN.md §11 for the serving contract).
//
// Usage:
//
//	hijackd -scale 5000 -listen 127.0.0.1:8642
//
//	curl -s localhost:8642/healthz
//	curl -s -d '{"target": 42, "attacker": 700, "exact": true}' localhost:8642/v1/attack
//
// Endpoints: GET /healthz, GET /metrics, POST /reload, POST
// /v1/attack, /v1/vulnerability, /v1/deployment, /v1/detection.
//
// Signals: SIGHUP reloads the snapshot epoch (as does POST /reload);
// SIGTERM/SIGINT stop intake, drain in-flight queries and exit 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/bgpsim/bgpsim/internal/cli"
	"github.com/bgpsim/bgpsim/internal/queryd"
	"github.com/bgpsim/bgpsim/internal/tick"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hijackd:", err)
		os.Exit(1)
	}
}

// drainTimeout bounds the graceful-shutdown wait for in-flight queries;
// per-query solve time is milliseconds, so this is generous.
const drainTimeout = 30 * time.Second

func run(args []string) error {
	fs := flag.NewFlagSet("hijackd", flag.ContinueOnError)
	wf := cli.AddWorldFlags(fs)
	workers := cli.AddWorkersFlag(fs)
	sv := cli.AddServeFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, err := wf.BuildWorld()
	if err != nil {
		return err
	}
	cli.Describe(w)
	s, err := queryd.New(queryd.Config{
		World:       w,
		Workers:     *workers,
		Backlog:     *sv.Backlog,
		SnapshotCap: *sv.SnapCache,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *sv.Listen)
	if err != nil {
		return err
	}
	// The smoke harness parses this line for the bound address, so :0
	// listeners stay scriptable.
	fmt.Fprintf(os.Stderr, "hijackd: listening on http://%s\n", ln.Addr())

	srv := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGHUP, syscall.SIGTERM, os.Interrupt)
	defer signal.Stop(sigs)
	for {
		select {
		case sig := <-sigs:
			if sig == syscall.SIGHUP {
				fmt.Fprintf(os.Stderr, "hijackd: reloaded, epoch %d\n", s.Reload())
				continue
			}
			// Graceful drain: Shutdown stops intake and waits for handlers,
			// Drain is the epoch-level barrier behind it.
			ctx, cancel := timeoutCtx(tick.Or(nil), drainTimeout)
			err := srv.Shutdown(ctx)
			cancel()
			s.Drain()
			if err != nil {
				return fmt.Errorf("shutdown: %w", err)
			}
			fmt.Fprintln(os.Stderr, "hijackd: drained, exiting")
			return nil
		case err := <-errc:
			if errors.Is(err, http.ErrServerClosed) {
				return nil
			}
			return err
		}
	}
}

// timeoutCtx derives a deadline context from a tick.Clock, keeping the
// drain timer on the same clock seam the rest of the repo uses.
func timeoutCtx(clk tick.Clock, d time.Duration) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	t := clk.NewTimer(d)
	go func() {
		defer t.Stop()
		select {
		case <-t.C():
			cancel()
		case <-ctx.Done():
		}
	}()
	return ctx, cancel
}
