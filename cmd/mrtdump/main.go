// Command mrtdump exports a simulated routing view as a RouteViews-style
// MRT TABLE_DUMP_V2 snapshot, or inspects an existing MRT file.
//
// Usage:
//
//	mrtdump -scale 5000 -o view.mrt            # simulate + export
//	mrtdump -read view.mrt                     # inspect a dump
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/bgpsim/bgpsim/internal/bgpwire"
	"github.com/bgpsim/bgpsim/internal/cli"
	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/mrt"
	"github.com/bgpsim/bgpsim/internal/prefix"
	"github.com/bgpsim/bgpsim/internal/topology"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mrtdump:", err)
		os.Exit(1)
	}
}

// inspect summarizes an MRT file: a TABLE_DUMP_V2 snapshot when it starts
// with a peer index table, otherwise a BGP4MP update log (the format
// hijackmon -record produces).
func inspect(path string) error {
	fh, err := os.Open(path)
	if err != nil {
		return err
	}
	defer fh.Close()
	if snap, err := mrt.ReadSnapshot(fh); err == nil {
		fmt.Printf("view %q: %d peers, %d RIB records\n",
			snap.Peers.ViewName, len(snap.Peers.Peers), len(snap.RIBs))
		for _, rib := range snap.RIBs {
			fmt.Printf("prefix %v: %d entries\n", rib.Prefix, len(rib.Entries))
			for _, e := range rib.Entries {
				fmt.Printf("  peer %v: path %v\n", snap.Peers.Peers[e.PeerIndex].AS, e.ASPath)
			}
		}
		return nil
	}
	// Not a snapshot: stream it as an update log.
	if _, err := fh.Seek(0, 0); err != nil {
		return err
	}
	r := mrt.NewReader(fh)
	updates := 0
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if mrt.Skippable(err) {
			continue
		}
		if errors.Is(err, mrt.ErrTruncated) {
			fmt.Printf("truncated after a clean %d-byte prefix: %v\n", r.Offset(), err)
			break
		}
		if err != nil {
			return err
		}
		m, ok := rec.(*mrt.BGP4MPMessage)
		if !ok {
			continue
		}
		updates++
		if u, ok := m.Message.(*bgpwire.Update); ok {
			origin, _ := u.OriginAS()
			fmt.Printf("t=%d peer %v → collector %v: announce %v origin %v path %v\n",
				m.Timestamp, m.PeerAS, m.LocalAS, u.NLRI, origin, u.ASPath)
		}
	}
	if n := r.Skipped(); n > 0 {
		fmt.Printf("skipped %d unknown/malformed records\n", n)
	}
	fmt.Printf("update log: %d BGP4MP records\n", updates)
	return nil
}

func run() error {
	fs := flag.NewFlagSet("mrtdump", flag.ExitOnError)
	wf := cli.AddWorldFlags(fs)
	out := fs.String("o", "view.mrt", "output MRT file")
	read := fs.String("read", "", "read and summarize an existing MRT snapshot instead")
	peersN := fs.Int("peers", 24, "number of vantage peers to dump")
	prefixText := fs.String("prefix", "129.82.0.0/16", "contested prefix to dump routes for")
	if err := fs.Parse(os.Args[1:]); err != nil {
		return err
	}
	contested, err := prefix.Parse(*prefixText)
	if err != nil {
		return err
	}

	if *read != "" {
		return inspect(*read)
	}

	w, err := wf.BuildWorld()
	if err != nil {
		return err
	}
	cli.Describe(w)
	target, err := topology.FindTarget(w.Graph, w.Class, topology.TargetQuery{Depth: 2, Stub: true})
	if err != nil {
		return err
	}
	attacker := w.Class.Tier1[0]
	o, err := core.NewSolver(w.Policy).Solve(core.Attack{Target: target, Attacker: attacker}, nil)
	if err != nil {
		return err
	}
	peers := topology.NodesByDegree(w.Graph)
	if *peersN < len(peers) {
		peers = peers[:*peersN]
	}
	fh, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer fh.Close()
	if err := mrt.WriteSnapshot(fh, w.Graph, o, contested, peers, 0); err != nil {
		return err
	}
	fmt.Printf("wrote MRT snapshot of %v under hijack by %v (%d peers) to %s\n",
		w.Graph.ASN(target), w.Graph.ASN(attacker), len(peers), *out)
	return nil
}
