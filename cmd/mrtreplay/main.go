// Command mrtreplay replays MRT routing data — a TABLE_DUMP_V2 RIB dump
// as the baseline table and/or a BGP4MP update stream — through
// concurrent BGP probe sessions into a collector, as if the capture were
// arriving live. By default it runs its own collector with a
// route-server validator and an origin-hijack detector behind it,
// printing every alert plus the alert-set digest (the reproducibility
// handle CI pins fixtures with); with -connect it feeds an external
// collector such as a running hijackmon instead.
//
// Damaged input is survived, not trusted: unknown and undecodable MRT
// records are skipped against a per-file budget, and a truncated file
// replays its intact prefix. A slow collector is survived too — each
// session bounds its unsent queue and sheds the oldest updates past
// -max-pending, with every shed counted in the final stats.
//
// The first SIGINT stops dispatch at the next record and drains: every
// session finishes writing what it holds and closes with a Cease. A
// second SIGINT force-closes the transports.
//
// Usage:
//
//	mrtreplay -rib rib.mrt -updates updates.mrt -roas roas.txt
//	mrtreplay -updates updates.mrt -speed 60 -connect 127.0.0.1:1790
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/bgpsim/bgpsim/internal/cli"
	"github.com/bgpsim/bgpsim/internal/feed"
	"github.com/bgpsim/bgpsim/internal/firehose"
	"github.com/bgpsim/bgpsim/internal/rpki"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mrtreplay:", err)
		os.Exit(1)
	}
}

// stopReader serves its reader until stop closes, then reports EOF —
// how the first SIGINT turns into a graceful end-of-input instead of a
// torn-down replay.
type stopReader struct {
	r    io.Reader
	stop <-chan struct{}
}

func (s *stopReader) Read(p []byte) (int, error) {
	select {
	case <-s.stop:
		return 0, io.EOF
	default:
		return s.r.Read(p)
	}
}

func run() error {
	fs := flag.NewFlagSet("mrtreplay", flag.ExitOnError)
	ribFile := fs.String("rib", "", "TABLE_DUMP_V2 RIB dump loaded as the baseline table")
	updFile := fs.String("updates", "", "BGP4MP update stream replayed in file order")
	roaFile := fs.String("roas", "", "ROA file ('prefix maxlen origin' per line) for the built-in validator")
	connect := fs.String("connect", "", "feed an external collector at host:port instead of the built-in one")
	drain := fs.Duration("drain", 10*time.Second, "how long the built-in collector may drain at shutdown")
	attempts := fs.Int("max-attempts", 8, "consecutive failed connect attempts before a session gives up (0 = retry forever)")
	progress := fs.Duration("progress", 0, "log a replay-counter snapshot at this interval (0 = off)")
	rf := cli.AddReplayFlags(fs)
	if err := fs.Parse(os.Args[1:]); err != nil {
		return err
	}
	if *ribFile == "" && *updFile == "" {
		return errors.New("nothing to replay: give -rib and/or -updates")
	}
	if *connect != "" && *roaFile != "" {
		return errors.New("-roas configures the built-in collector; with -connect validation is the remote side's job")
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "mrtreplay: "+format+"\n", args...)
	}
	// The first SIGINT closes stop: the engine ends dispatch at the next
	// record boundary (interrupting any pacing wait), both inputs report
	// EOF if read again, and the normal graceful drain proceeds.
	stop := make(chan struct{})
	cfg := firehose.Config{MaxAttempts: *attempts, Stop: stop, Logf: logf}
	if err := rf.Apply(&cfg); err != nil {
		return err
	}
	open := func(path string) (io.Reader, func() error, error) {
		fh, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		return &stopReader{r: fh, stop: stop}, fh.Close, nil
	}
	if *ribFile != "" {
		r, closeFn, err := open(*ribFile)
		if err != nil {
			return err
		}
		defer closeFn()
		cfg.RIB = r
	}
	if *updFile != "" {
		r, closeFn, err := open(*updFile)
		if err != nil {
			return err
		}
		defer closeFn()
		cfg.Updates = r
	}

	// Built-in collector: route-server validator at the session boundary,
	// detector behind it, alerts straight to stdout.
	var (
		det       *feed.Detector
		collector *feed.Collector
		listener  net.Listener
		serveErr  chan error
	)
	addr := *connect
	if addr == "" {
		var store rpki.Store
		rs := feed.NewRouteServer(&store)
		det = feed.NewDetector(rs, func(a feed.Alert) {
			fmt.Printf("ALERT [%s] t=%d peer=%v prefix=%v origin=%v path=%v\n",
				a.Reason, a.Time, a.PeerAS, a.Prefix, a.Origin, a.Path)
		})
		if *roaFile != "" {
			fh, err := os.Open(*roaFile)
			if err != nil {
				return err
			}
			n, err := rpki.LoadROAs(&store, fh, *roaFile, det.NotePublished)
			fh.Close()
			if err != nil {
				return err
			}
			logf("loaded %d ROAs from %s", n, *roaFile)
		}
		collector = &feed.Collector{
			LocalAS: 65535, RouterID: 0x7f000001,
			Detector: det, Validator: rs,
			HoldTime: cfg.HoldTime,
			Logf:     logf,
		}
		var err error
		listener, err = net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		addr = listener.Addr().String()
		serveErr = make(chan error, 1)
		go func() { serveErr <- collector.Serve(listener) }()
	}
	cfg.Dial = func() (io.ReadWriteCloser, error) {
		return net.DialTimeout("tcp", addr, 10*time.Second)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	go func() {
		select {
		case s := <-sig:
			logf("received %v; finishing dispatch and draining (interrupt again to force-close)", s)
			close(stop)
		case <-ctx.Done():
			return
		}
		select {
		case s := <-sig:
			logf("received %v again; force-closing sessions", s)
			cancel()
		case <-ctx.Done():
		}
	}()

	e := firehose.New(cfg)
	if *progress > 0 {
		ticker := time.NewTicker(*progress)
		defer ticker.Stop()
		go func() {
			for {
				select {
				case <-ticker.C:
					s := e.Snapshot()
					logf("progress: %d updates dispatched over %d sessions, %d sent, %d shed, %d skipped",
						s.Updates, s.Sessions, s.Sent, s.Shed, s.Skipped)
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	stats, runErr := e.Run(ctx)

	// Run returning means the sessions wrote everything and closed; the
	// built-in collector still has TCP buffers to read through, so drain
	// it before reading the detector.
	if collector != nil {
		if err := listener.Close(); err != nil {
			logf("close listener: %v", err)
		}
		sctx, scancel := context.WithTimeout(context.Background(), *drain)
		if err := collector.Shutdown(sctx); err != nil {
			logf("drain timeout after %v: force-closed remaining sessions", *drain)
		}
		scancel()
		<-serveErr
		cs := collector.Stats()
		logf("collector: %d sessions, %d malformed messages, %d hold expiries", cs.Sessions, cs.MalformedMessages, cs.HoldExpiries)
	}

	var reconnects int
	for _, r := range stats.Runners {
		reconnects += r.Stats.Reconnects
	}
	logf("replay: %d RIB routes, %d updates from %d peers over %d sessions (%d reconnects); %d sent, %d shed, %d records skipped",
		stats.RIBRoutes, stats.Updates, stats.Peers, stats.Sessions, reconnects, stats.Sent, stats.Shed, stats.Skipped)
	if stats.Truncated {
		logf("input truncated mid-record; the replay covered its intact prefix")
	}
	if det != nil {
		alerts := det.Alerts()
		fmt.Printf("%d alert(s)\n", len(alerts))
		fmt.Printf("alert-set digest: %x\n", feed.AlertSetDigest(alerts))
	}
	return runErr
}
