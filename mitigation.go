package bgpsim

import (
	"github.com/bgpsim/bgpsim/internal/mitigate"
)

// Reactive-mitigation re-exports (the paper's third defense class).
type (
	// MitigationResult reports a sub-prefix counter-announcement outcome.
	MitigationResult = mitigate.Result
	// MitigationStudy contrasts permissive vs conservative ROA MaxLength.
	MitigationStudy = mitigate.StudyResult
)

// Mitigate executes the classic reactive mitigation: the victim announces
// the two more-specific halves of its hijacked prefix, winning traffic
// back by longest-prefix match. Filters (optional) consult the
// simulator's ROA store — if the victim's published ROA caps MaxLength at
// the covering prefix length, the counter-announcement validates Invalid
// and filtering ASes drop the cure (the MaxLength trap).
func (s *Simulator) Mitigate(victim, attacker ASN, victimPrefix Prefix, filters []ASN) (*MitigationResult, error) {
	v, err := s.nodeOf(victim)
	if err != nil {
		return nil, err
	}
	a, err := s.nodeOf(attacker)
	if err != nil {
		return nil, err
	}
	plan := mitigate.Plan{Victim: v, Attacker: a, VictimPrefix: victimPrefix}
	if len(filters) > 0 {
		plan.Validator = &s.roas
		for _, f := range filters {
			i, err := s.nodeOf(f)
			if err != nil {
				return nil, err
			}
			plan.Filtering = append(plan.Filtering, i)
		}
	}
	return mitigate.Execute(s.world.Policy, plan)
}

// RunMitigationStudy contrasts the MaxLength policies for a victim/attacker
// pair under the given filter deployment.
func (s *Simulator) RunMitigationStudy(victim, attacker ASN, victimPrefix Prefix, filters []ASN) (*MitigationStudy, error) {
	v, err := s.nodeOf(victim)
	if err != nil {
		return nil, err
	}
	a, err := s.nodeOf(attacker)
	if err != nil {
		return nil, err
	}
	nodes := make([]int, 0, len(filters))
	for _, f := range filters {
		i, err := s.nodeOf(f)
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, i)
	}
	return mitigate.Study(s.world.Policy, v, a, victimPrefix, nodes)
}
