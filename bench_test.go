package bgpsim

// One benchmark per table and figure of the paper's evaluation (see
// DESIGN.md §4). Each benchmark runs the same experiment runner the cmd/
// tools use, on a fixed mid-scale world, and reports the experiment's
// headline metric via b.ReportMetric so `go test -bench` output doubles as
// reproduction evidence. EXPERIMENTS.md records paper-vs-measured values.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/detect"
	"github.com/bgpsim/bgpsim/internal/experiments"
	"github.com/bgpsim/bgpsim/internal/hijack"
	"github.com/bgpsim/bgpsim/internal/mitigate"
	"github.com/bgpsim/bgpsim/internal/pgbgp"
	"github.com/bgpsim/bgpsim/internal/prefix"
	"github.com/bgpsim/bgpsim/internal/sbgp"
	"github.com/bgpsim/bgpsim/internal/topology"
)

const benchScale = 2000

var (
	benchOnce  sync.Once
	benchWorld *experiments.World
)

func world(b *testing.B) *experiments.World {
	b.Helper()
	benchOnce.Do(func() {
		w, err := experiments.NewWorld(benchScale, 1)
		if err != nil {
			panic(err)
		}
		benchWorld = w
	})
	return benchWorld
}

// BenchmarkFig1PolarPropagation traces one aggressive attack on the
// message engine, generation by generation (paper Figure 1).
func BenchmarkFig1PolarPropagation(b *testing.B) {
	w := world(b)
	b.ReportAllocs()
	var polluted int
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig1(w)
		if err != nil {
			b.Fatal(err)
		}
		polluted = res.Polluted
		b.ReportMetric(float64(res.Trace.Generations), "generations")
		b.ReportMetric(100*res.AddrFracLost, "%addr-lost")
	}
	b.ReportMetric(float64(polluted), "polluted")
}

func benchVulnerability(b *testing.B, run func(*experiments.World, experiments.VulnerabilityConfig) (*experiments.VulnerabilityResult, error)) {
	w := world(b)
	cfg := experiments.VulnerabilityConfig{AttackerSample: 400, Seed: 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := run(w, cfg)
		if err != nil {
			b.Fatal(err)
		}
		first, last := res.Curves[0], res.Curves[len(res.Curves)-1]
		b.ReportMetric(first.Summary.Mean, "mean-shallow")
		b.ReportMetric(last.Summary.Mean, "mean-deep")
	}
}

// BenchmarkFig2VulnerabilityTier1 sweeps the depth ladder of targets under
// tier-1 hierarchies (paper Figure 2).
func BenchmarkFig2VulnerabilityTier1(b *testing.B) {
	benchVulnerability(b, experiments.Fig2)
}

// BenchmarkFig3VulnerabilityTier2 sweeps targets under tier-2 hierarchies
// (paper Figure 3).
func BenchmarkFig3VulnerabilityTier2(b *testing.B) {
	benchVulnerability(b, experiments.Fig3)
}

// BenchmarkFig4StubFiltering compares all-AS and transit-only attacker
// populations (paper Figure 4).
func BenchmarkFig4StubFiltering(b *testing.B) {
	w := world(b)
	cfg := experiments.VulnerabilityConfig{AttackerSample: 400, Seed: 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(w, cfg)
		if err != nil {
			b.Fatal(err)
		}
		p := res.Panels[len(res.Panels)-1]
		if p.AllASes.Summary.Mean > 0 {
			b.ReportMetric(p.Filtered.Summary.Mean/p.AllASes.Summary.Mean, "filtered/all-ratio")
		}
	}
}

func benchDeployment(b *testing.B, run func(*experiments.World, experiments.DeploymentConfig) (*experiments.DeploymentResult, error)) {
	w := world(b)
	cfg := experiments.DeploymentConfig{AttackerSample: 150, Seed: 7}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := run(w, cfg)
		if err != nil {
			b.Fatal(err)
		}
		base := res.Rungs[0].Result.Summary().Mean
		best := res.Rungs[len(res.Rungs)-1].Result.Summary().Mean
		if base > 0 {
			b.ReportMetric(100*best/base, "%residual-pollution")
		}
		b.ReportMetric(float64(res.CrossoverIndex(4)), "crossover-rung")
	}
}

// BenchmarkFig5IncrementalDefenseDepth1 runs the deployment ladder against
// the resistant depth-1 target (paper Figure 5).
func BenchmarkFig5IncrementalDefenseDepth1(b *testing.B) {
	benchDeployment(b, experiments.Fig5)
}

// BenchmarkFig6IncrementalDefenseDepth5 runs the ladder against the deep
// vulnerable target (paper Figure 6).
func BenchmarkFig6IncrementalDefenseDepth5(b *testing.B) {
	benchDeployment(b, experiments.Fig6)
}

// BenchmarkTableResidualAttacks ranks the attacks still potent under the
// strongest deployment (paper Section V tables).
func BenchmarkTableResidualAttacks(b *testing.B) {
	w := world(b)
	cfg := experiments.DeploymentConfig{AttackerSample: 150, Seed: 7, ResidualTop: 5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(w, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Residual) == 0 {
			b.Fatal("no residual attacks")
		}
		b.ReportMetric(float64(res.Residual[0].Pollution), "top-residual-pollution")
	}
}

// BenchmarkFig7DetectorConfigurations evaluates the three probe
// configurations against a shared random workload (paper Figure 7).
func BenchmarkFig7DetectorConfigurations(b *testing.B) {
	w := world(b)
	cfg := experiments.DetectionConfig{Attacks: 800, Seed: 9}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(w, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Cases[0].Result.MissRate(), "%miss-tier1")
		b.ReportMetric(100*res.Cases[1].Result.MissRate(), "%miss-bgpmon")
		b.ReportMetric(100*res.Cases[2].Result.MissRate(), "%miss-core")
	}
}

// BenchmarkTableUndetectedAttacks extracts the top-5 undetected attacks
// per configuration (paper Section VI tables).
func BenchmarkTableUndetectedAttacks(b *testing.B) {
	w := world(b)
	cfg := experiments.DetectionConfig{Attacks: 800, Seed: 9, TopMisses: 5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(w, cfg)
		if err != nil {
			b.Fatal(err)
		}
		worst := 0
		for _, c := range res.Cases {
			for _, m := range c.TopMisses {
				if m.Pollution > worst {
					worst = m.Pollution
				}
			}
		}
		b.ReportMetric(float64(worst), "largest-undetected")
	}
}

// BenchmarkTableRehoming runs the Section VII re-homing experiment.
func BenchmarkTableRehoming(b *testing.B) {
	w := world(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.SectionVII(w, experiments.SelfInterestConfig{OutsideSample: 60, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Rehome.Before.InsideFrac, "%inside-before")
		b.ReportMetric(100*res.Rehome.After.InsideFrac, "%inside-after")
	}
}

// BenchmarkTableRegionalFilter runs the Section VII hub-filter experiment.
func BenchmarkTableRegionalFilter(b *testing.B) {
	w := world(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.SectionVII(w, experiments.SelfInterestConfig{OutsideSample: 60, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Filter.Base.InsideFrac, "%inside-before")
		b.ReportMetric(100*res.Filter.Filtered.InsideFrac, "%inside-filtered")
	}
}

// BenchmarkRIBValidation runs the Section III RouteViews-style validation
// comparison.
func BenchmarkRIBValidation(b *testing.B) {
	w := world(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.ValidationStudy(w, experiments.ValidationConfig{Origins: 5, Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Overall.MatchRate(), "%match-rate")
	}
}

// --- Ablations (DESIGN.md §6) ----------------------------------------------

// BenchmarkAblationEngineVsSolver compares the cost of the O(V+E) solver
// against the generation-stepped message engine on identical attacks.
func BenchmarkAblationEngineVsSolver(b *testing.B) {
	w := world(b)
	deep, _ := w.DeepTarget()
	attack := core.Attack{Target: deep, Attacker: w.Class.Tier1[0]}
	b.Run("solver", func(b *testing.B) {
		s := core.NewSolver(w.Policy)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.Solve(attack, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("engine", func(b *testing.B) {
		e := core.NewEngine(w.Policy)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := e.Run(attack, nil, false); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationTier1Policy measures how the tier-1 shortest-path
// override changes detector blind spots (the paper's AS6450 analysis).
func BenchmarkAblationTier1Policy(b *testing.B) {
	w := world(b)
	wOff, err := experiments.WorldFromGraph(cloneGraph(w), core.WithTier1ShortestPath(false))
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiments.DetectionConfig{Attacks: 500, Seed: 9}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		on, err := experiments.Fig7(w, cfg)
		if err != nil {
			b.Fatal(err)
		}
		off, err := experiments.Fig7(wOff, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*on.Cases[0].Result.MissRate(), "%miss-tier1-spf-on")
		b.ReportMetric(100*off.Cases[0].Result.MissRate(), "%miss-tier1-spf-off")
	}
}

// cloneGraph round-trips the world's graph through the builder so a second
// world with different policy options can be built.
func cloneGraph(w *experiments.World) *topology.Graph {
	return topology.Clone(w.Graph).Build()
}

// BenchmarkAblationDepthDefinition contrasts the paper's two depth
// definitions (tier-1 only vs tier-1 ∪ tier-2) by how well each predicts
// vulnerability (Spearman over a sampled sweep matrix).
func BenchmarkAblationDepthDefinition(b *testing.B) {
	w := world(b)
	targets := topology.FindTargets(w.Graph, w.Class, topology.TargetQuery{Depth: 1, Stub: true}, 8)
	deep := topology.FindTargets(w.Graph, w.Class, topology.TargetQuery{Depth: 3, Stub: true}, 8)
	targets = append(targets, deep...)
	attackers := experiments.SampleAttackers(hijack.AllNodes(w.Graph.N()), 200, rand.New(rand.NewSource(3)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var v1Gap, v2Gap float64
		for _, tgt := range targets {
			res, err := hijack.Sweep(w.Policy, hijack.SweepConfig{Target: tgt, Attackers: attackers})
			if err != nil {
				b.Fatal(err)
			}
			mean := res.Summary().Mean
			if w.Class.Depth[tgt] >= 3 {
				v2Gap += mean
			} else {
				v2Gap -= mean
			}
			if w.Class.DepthV1[tgt] >= 3 {
				v1Gap += mean
			} else {
				v1Gap -= mean
			}
		}
		b.ReportMetric(v1Gap, "v1-depth-separation")
		b.ReportMetric(v2Gap, "v2-depth-separation")
	}
}

// BenchmarkAblationDetectionSemantics compares selected-route probes (the
// paper's model) against any-received probes.
func BenchmarkAblationDetectionSemantics(b *testing.B) {
	w := world(b)
	attacks, err := detect.GenerateAttacks(w.Graph.TransitNodes(), 500, rand.New(rand.NewSource(13)))
	if err != nil {
		b.Fatal(err)
	}
	ps := detect.Tier1Probes(w.Class)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sel, err := detect.Evaluate(w.Policy, ps, attacks, detect.SelectedRoute, core.Defense{})
		if err != nil {
			b.Fatal(err)
		}
		rec, err := detect.Evaluate(w.Policy, ps, attacks, detect.AnyReceived, core.Defense{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*sel.MissRate(), "%miss-selected")
		b.ReportMetric(100*rec.MissRate(), "%miss-received")
	}
}

// BenchmarkHoleAnalysis runs the paper's future-work study: successful
// attacks that also escape detection, with per-probe blindness reasons.
func BenchmarkHoleAnalysis(b *testing.B) {
	w := world(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.HoleAnalysis(w, experiments.HoleConfig{Attacks: 600, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Succeeded), "succeeded")
		b.ReportMetric(float64(res.Undetected), "holes")
	}
}

// BenchmarkAblationPGBGPVsDrop compares PGBGP history-based depref with
// drop-style origin validation at the same core deployment — the paper's
// corroboration of the PGBGP "62 core ASes" claim.
func BenchmarkAblationPGBGPVsDrop(b *testing.B) {
	w := world(b)
	deep, _ := w.DeepTarget()
	attackers := experiments.SampleAttackers(w.Graph.TransitNodes(), 60, rand.New(rand.NewSource(1)))
	deployed := topology.NodesByDegree(w.Graph)[:62*benchScale/42697+10]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		deprefMean, dropMean, err := pgbgp.CompareWithDrop(w.Policy, deep, attackers, deployed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(deprefMean, "mean-pgbgp")
		b.ReportMetric(dropMean, "mean-drop")
	}
}

// BenchmarkAblationSBGPModes compares S*BGP security-1st/2nd/3rd route
// selection under partial core deployment against the undefended baseline
// (the Lychev et al. section-4 comparison the paper corroborates).
func BenchmarkAblationSBGPModes(b *testing.B) {
	w := world(b)
	deep, _ := w.DeepTarget()
	attackers := experiments.SampleAttackers(w.Graph.TransitNodes(), 40, rand.New(rand.NewSource(1)))
	// A self-interested target deploys together with its upstream chain
	// (without it no secure route to its prefix can exist — the
	// "squeeze"); the core provides the rest of the secure mesh.
	deployed := topology.NodesByDegree(w.Graph)[:40]
	cur := deep
	for w.Class.Depth[cur] > 0 {
		next := -1
		nbrs, rels := w.Graph.Neighbors(cur)
		for k, nb := range nbrs {
			if rels[k] == topology.RelProvider && w.Class.Depth[nb] == w.Class.Depth[cur]-1 {
				next = int(nb)
				break
			}
		}
		if next < 0 {
			break
		}
		deployed = append(deployed, next)
		cur = next
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		means, err := sbgp.CompareModes(w.Policy, deep, attackers, deployed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(means[core.SecureOff], "mean-off")
		b.ReportMetric(means[core.SecurityFirst], "mean-sec1")
		b.ReportMetric(means[core.SecuritySecond], "mean-sec2")
		b.ReportMetric(means[core.SecurityThird], "mean-sec3")
	}
}

// BenchmarkMitigation runs the reactive sub-prefix counter-announcement
// study, reporting recovered ASes under permissive vs conservative ROA
// MaxLength (the mitigation/validation conflict).
func BenchmarkMitigation(b *testing.B) {
	w := world(b)
	deep, _ := w.DeepTarget()
	filtering := topology.NodesByDegree(w.Graph)[:20]
	victimPrefix := prefix.MustParse("129.82.0.0/16")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		study, err := mitigate.Study(w.Policy, deep, w.Class.Tier1[0], victimPrefix, filtering)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(study.Permissive.RecoveredASes), "recovered-permissive")
		b.ReportMetric(float64(study.Conservative.RecoveredASes), "recovered-maxlen-trap")
	}
}

// --- Micro-benchmarks on the core engine -------------------------------------

// BenchmarkSolverSweep measures raw sweep throughput (attacks/op core of
// every figure).
func BenchmarkSolverSweep(b *testing.B) {
	w := world(b)
	deep, _ := w.DeepTarget()
	attackers := experiments.SampleAttackers(w.Graph.TransitNodes(), 100, rand.New(rand.NewSource(1)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := hijack.Sweep(w.Policy, hijack.SweepConfig{Target: deep, Attackers: attackers}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepRunWorkers measures the shared sweep kernel's parallel
// scaling: one fixed attack workload at increasing worker counts. The
// results are bit-identical at every count (see internal/sweep), so the
// sub-benchmarks differ only in wall-clock and scheduling overhead.
func BenchmarkSweepRunWorkers(b *testing.B) {
	w := world(b)
	deep, _ := w.DeepTarget()
	attackers := experiments.SampleAttackers(w.Graph.TransitNodes(), 200, rand.New(rand.NewSource(1)))
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := hijack.Sweep(w.Policy, hijack.SweepConfig{Target: deep, Attackers: attackers, Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScenarioKinds measures one sweep per attack scenario against
// the same defended deep target: the kinds share the solver's three-stage
// kernel but differ in scenario resolution (forged-origin checks ASPA
// plausibility per attacker; route leaks solve a defense-free baseline
// first), so the sub-benchmarks expose the marginal cost of each kind.
func BenchmarkScenarioKinds(b *testing.B) {
	w := world(b)
	deep, _ := w.DeepTarget()
	attackers := experiments.SampleAttackers(w.Graph.TransitNodes(), 100, rand.New(rand.NewSource(1)))
	set := asn.NewIndexSet(w.Graph.N())
	for _, n := range topology.NodesByDegree(w.Graph)[:62] {
		set.Add(n)
	}
	def := (core.MechROV | core.MechASPA | core.MechPeerlock).Deploy(set)
	for _, kind := range core.Kinds() {
		b.Run(kind.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := hijack.Sweep(w.Policy, hijack.SweepConfig{
					Target: deep, Attackers: attackers, Kind: kind, Defense: def,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Summary().Mean, "mean-polluted")
			}
		})
	}
}

// BenchmarkSolverWithFilters measures the marginal cost of filter checks.
func BenchmarkSolverWithFilters(b *testing.B) {
	w := world(b)
	deep, _ := w.DeepTarget()
	blocked := asn.NewIndexSet(w.Graph.N())
	for _, n := range topology.NodesByDegree(w.Graph)[:30] {
		blocked.Add(n)
	}
	s := core.NewSolver(w.Policy)
	attack := core.Attack{Target: deep, Attacker: w.Class.Tier1[0]}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(attack, blocked); err != nil {
			b.Fatal(err)
		}
	}
}
