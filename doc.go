// Package bgpsim is a simulation library for studying incremental
// deployment of BGP origin-hijack prevention and detection, reproducing
// Gersch, Massey & Papadopoulos, "Incremental Deployment Strategies for
// Effective Detection and Prevention of BGP Origin Hijacks" (IEEE ICDCS
// 2014).
//
// The library contains, from the bottom up:
//
//   - an AS-level topology substrate: CAIDA AS-relationship parsing, a
//     synthetic Internet generator with matching macro-structure, tier
//     classification, and the paper's depth/reach metrics;
//   - a BGP routing simulator with Gao–Rexford policy (LOCAL_PREF
//     customer > peer > provider, valley-free export, tier-1
//     shortest-path override) available both as an O(V+E) converged-state
//     solver and as a faithful generation-stepped message engine;
//   - origin-hijack attack machinery: pollution measurement, attack
//     sweeps, vulnerability (CCDF) analysis;
//   - prevention: filter-deployment strategies (random, tier-1,
//     degree-threshold core) and their evaluation;
//   - detection: probe-set configurations and miss analysis;
//   - origin-authorization substrates the defenses consume: an RPKI ROA
//     store with an Ed25519 certificate chain, and ROVER (reverse-DNS
//     origin publication under DNSSEC-lite);
//   - the paper's Section VII self-interest toolkit: regional exposure
//     measurement, re-homing, and targeted hub filters.
//
// # Quick start
//
//	sim, err := bgpsim.New(bgpsim.WithScale(5000), bgpsim.WithSeed(42))
//	if err != nil { ... }
//	rep, err := sim.Hijack(bgpsim.HijackSpec{
//		Attacker: sim.MustASNAt(10),
//		Target:   sim.MustASNAt(4000),
//	})
//	fmt.Printf("%d ASes polluted (%.0f%% of address space)\n",
//		rep.PollutedASes, 100*rep.AddrSpaceFrac)
//
// Every figure and table in the paper is reproducible through the
// Simulator's Run* methods (RunVulnerabilityPanel, RunDeploymentPanel,
// RunDetectionPanel, RunSectionVII, RunHoleAnalysis, …) or the cmd/ tools
// built on the same runners; see DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-vs-measured results.
package bgpsim
