module github.com/bgpsim/bgpsim

go 1.22
