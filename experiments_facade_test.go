package bgpsim

import (
	"bytes"
	"testing"
)

// TestExperimentRunnersFacade drives every paper experiment through the
// public API on a small world, checking each produces coherent output.
func TestExperimentRunnersFacade(t *testing.T) {
	sim := newSim(t)
	opts := ExperimentOptions{AttackerSample: 60, Attacks: 120, Seed: 3}

	t.Run("vulnerability", func(t *testing.T) {
		for _, underT2 := range []bool{false, true} {
			panel, err := sim.RunVulnerabilityPanel(underT2, opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(panel.Curves) < 3 {
				t.Errorf("underTier2=%v: %d curves", underT2, len(panel.Curves))
			}
			var buf bytes.Buffer
			if err := panel.RenderSVG(&buf); err != nil {
				t.Fatal(err)
			}
			if buf.Len() == 0 {
				t.Error("empty SVG")
			}
		}
	})
	t.Run("stubfilter", func(t *testing.T) {
		panel, err := sim.RunStubFilterStudy(opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(panel.Panels) != 2 {
			t.Errorf("panels = %d", len(panel.Panels))
		}
	})
	t.Run("deployment", func(t *testing.T) {
		shallow, err := sim.RunDeploymentPanel(false, opts)
		if err != nil {
			t.Fatal(err)
		}
		deep, err := sim.RunDeploymentPanel(true, opts)
		if err != nil {
			t.Fatal(err)
		}
		if deep.Rungs[0].Result.Summary().Mean <= shallow.Rungs[0].Result.Summary().Mean {
			t.Error("deep target not more vulnerable than shallow")
		}
	})
	t.Run("detection", func(t *testing.T) {
		panel, err := sim.RunDetectionPanel(opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(panel.Cases) != 3 {
			t.Errorf("cases = %d", len(panel.Cases))
		}
	})
	t.Run("sectionvii", func(t *testing.T) {
		panel, err := sim.RunSectionVII(opts)
		if err != nil {
			t.Fatal(err)
		}
		if panel.RegionSize == 0 {
			t.Error("empty island")
		}
	})
	t.Run("validation", func(t *testing.T) {
		panel, err := sim.RunValidationStudy(ExperimentOptions{Attacks: 3, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if len(panel.Reports) != 3 {
			t.Errorf("reports = %d", len(panel.Reports))
		}
	})
	t.Run("propagation", func(t *testing.T) {
		panel, err := sim.RunPropagationStudy()
		if err != nil {
			t.Fatal(err)
		}
		if panel.Polluted == 0 || panel.Trace.Generations < 2 {
			t.Error("degenerate propagation study")
		}
	})
	t.Run("holes", func(t *testing.T) {
		panel, err := sim.RunHoleAnalysis(opts)
		if err != nil {
			t.Fatal(err)
		}
		if panel.Succeeded < panel.Undetected {
			t.Error("undetected exceeds succeeded")
		}
	})
	t.Run("subprefix", func(t *testing.T) {
		panel, err := sim.RunSubPrefixStudy(opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(panel.Rows) == 0 {
			t.Fatal("no rows")
		}
		base := panel.Rows[0]
		if base.SubPrefix.Mean <= base.Origin.Mean {
			t.Error("subprefix should out-pollute origin hijack undefended")
		}
	})
}
