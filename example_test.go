package bgpsim_test

import (
	"fmt"
	"log"

	bgpsim "github.com/bgpsim/bgpsim"
)

// Build a small deterministic internet and run one origin hijack.
func ExampleSimulator_Hijack() {
	sim, err := bgpsim.New(bgpsim.WithScale(500), bgpsim.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	victim, err := sim.FindAS(bgpsim.TargetQuery{Depth: 2, Stub: true})
	if err != nil {
		log.Fatal(err)
	}
	attacker := sim.Tier1ASNs()[0]
	rep, err := sim.Hijack(bgpsim.HijackSpec{Attacker: attacker, Target: victim})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("polluted ASes: %d\n", rep.PollutedASes)
	fmt.Printf("filters armed: %v\n", rep.FiltersArmed)
	// Output:
	// polluted ASes: 89
	// filters armed: false
}

// Publishing a ROA is what lets deployed filters act (the paper's
// Section VII "publish route origins" step).
func ExampleSimulator_PublishROA() {
	sim, err := bgpsim.New(bgpsim.WithScale(500), bgpsim.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	victim, _ := sim.FindAS(bgpsim.TargetQuery{Depth: 2, Stub: true})
	attacker := sim.Tier1ASNs()[0]
	victimPrefix, _ := bgpsim.ParsePrefix("129.82.0.0/16")

	spec := bgpsim.HijackSpec{
		Attacker:        attacker,
		Target:          victim,
		Filters:         sim.FiltersOf(sim.TopDegreeDeployment(10)),
		ValidateAgainst: sim.ROAStore(),
		HijackedPrefix:  victimPrefix,
	}
	before, _ := sim.Hijack(spec)

	if err := sim.PublishROA(bgpsim.ROA{Prefix: victimPrefix, MaxLength: 24, Origin: victim}); err != nil {
		log.Fatal(err)
	}
	after, _ := sim.Hijack(spec)
	fmt.Printf("armed before publication: %v\n", before.FiltersArmed)
	fmt.Printf("armed after publication:  %v\n", after.FiltersArmed)
	fmt.Printf("pollution reduced: %v\n", after.PollutedASes < before.PollutedASes)
	// Output:
	// armed before publication: false
	// armed after publication:  true
	// pollution reduced: true
}

// Depth — hops to the nearest tier-1 or tier-2 — is the paper's central
// vulnerability metric.
func ExampleSimulator_DepthOf() {
	sim, err := bgpsim.New(bgpsim.WithScale(500), bgpsim.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	t1 := sim.Tier1ASNs()[0]
	d, _ := sim.DepthOf(t1)
	fmt.Printf("tier-1 depth: %d\n", d)
	stub, _ := sim.FindAS(bgpsim.TargetQuery{Depth: 3, Stub: true})
	d, _ = sim.DepthOf(stub)
	fmt.Printf("deep stub depth: %d\n", d)
	// Output:
	// tier-1 depth: 0
	// deep stub depth: 3
}
