package bgpsim

import (
	"github.com/bgpsim/bgpsim/internal/feed"
	"github.com/bgpsim/bgpsim/internal/prefix"
	"github.com/bgpsim/bgpsim/internal/rpki"
)

// Monitoring re-exports: the live hijack-detection pipeline (BGP feeds,
// origin-validating detector, BGP-over-TCP collector transport).
type (
	// FeedUpdate is one feed event (a timed BGP UPDATE from a peer AS).
	FeedUpdate = feed.TimedUpdate
	// Alert is one detector finding.
	Alert = feed.Alert
	// Detector validates announcement streams and raises alerts.
	Detector = feed.Detector
	// Collector is a BGP route collector that feeds a Detector.
	Collector = feed.Collector
	// FeedProbe is the router side of a collector session.
	FeedProbe = feed.Probe
	// FeedProbeRunner is a self-healing probe session: it reconnects
	// with capped exponential backoff and retransmits its table.
	FeedProbeRunner = feed.ProbeRunner
	// FeedRunnerStats is a snapshot of a FeedProbeRunner's counters.
	FeedRunnerStats = feed.RunnerStats
	// CollectorStats is a snapshot of a Collector's robustness counters
	// (degraded recording, malformed messages, hold expiries).
	CollectorStats = feed.CollectorStats
)

// AlertSetDigest returns a SHA-256 digest over an alert set's identity —
// stable across transport retries and session resets — for comparing
// detection outcomes between runs.
func AlertSetDigest(alerts []Alert) [32]byte { return feed.AlertSetDigest(alerts) }

// Alert reasons.
const (
	ReasonInvalidOrigin = feed.ReasonInvalidOrigin
	ReasonSubPrefix     = feed.ReasonSubPrefix
)

// NewDetector builds a detector over an origin validator (e.g.
// Simulator.ROAStore). onAlert, if non-nil, fires synchronously per alert.
func NewDetector(v OriginValidator, onAlert func(Alert)) *Detector {
	return feed.NewDetector(v, onAlert)
}

// FeedFromHijack reconstructs the BGP announcement stream the given probe
// ASes would report to a collector for the hijack in rep, announcing the
// contested prefix.
func (s *Simulator) FeedFromHijack(rep *HijackReport, contested Prefix, probes ProbeSet) ([]FeedUpdate, error) {
	var sub prefix.Prefix
	return feed.FromOutcome(s.world.Graph, rep.Outcome, contested, sub, probes.Probes)
}

// Validity re-exports for examining validator answers directly.
const (
	ValidityNotFound = rpki.NotFound
	ValidityValid    = rpki.Valid
	ValidityInvalid  = rpki.Invalid
)
