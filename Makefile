# bgpsim — build, test and reproduction targets.

GO ?= go

.PHONY: all build test vet lint race chaos replay-check serve-check vulncheck fuzz bench bench-json bench-trend reproduce reproduce-paper-scale clean

all: build test

build:
	$(GO) build ./...

test: lint
	$(GO) vet ./...
	$(GO) test ./...

# bgplint: the repository's own go/analysis suite (internal/lint) enforcing
# the determinism and concurrency invariants — sorted map walks and no wall
# clock in the determinism closure, no global math/rand, typed ASN
# conversions, no dropped module errors, no blocking ops under a mutex, no
# unjoined goroutines, no per-iteration allocation in //bgplint:hotpath
# loops. The first two runs emit the machine-readable reports (JSON for
# tooling, SARIF for GitHub code scanning) regardless of findings — CI
# uploads bgplint.sarif even on a red run — and the final plain-text run
# is the gate that fails the build.
lint:
	-@$(GO) run ./cmd/bgplint -sarif ./... > bgplint.sarif 2>/dev/null
	-@$(GO) run ./cmd/bgplint -json ./... > bgplint.json 2>/dev/null
	$(GO) run ./cmd/bgplint ./...

# Full test suite under the race detector (the feed collector and hijack
# sweep are the concurrent subsystems of record).
race:
	$(GO) test -race ./...

# Deterministic fault-injection soak: the live feed pipeline pushed
# through a chaotic transport (resets, truncation, corruption, stalls)
# at two fixed seeds must produce the exact alert set of a fault-free
# run — under the race detector, since reconnect storms are the
# concurrency stress of record. The firehose soak replays the checked-in
# MRT incident fixture through the same weather.
chaos:
	$(GO) test -race -count=1 ./internal/chaos/ -args -chaos.seed=1
	$(GO) test -race -count=1 ./internal/chaos/ -args -chaos.seed=7
	$(GO) test -race -count=1 ./internal/firehose/ -run ChaosSoak -args -firehose.seed=1
	$(GO) test -race -count=1 ./internal/firehose/ -run ChaosSoak -args -firehose.seed=42

# Replay the checked-in incident fixture end to end through cmd/mrtreplay
# and compare the alert-set digest to the pinned value.
replay-check:
	scripts/check_incident_replay.sh

# hijackd lifecycle smoke test: start the query daemon on a fixture
# world, exercise every endpoint, reload (epoch bump), SIGTERM with a
# query in flight (must be answered before the drain line prints).
serve-check:
	scripts/check_hijackd_smoke.sh

# Known-vulnerability scan; skips gracefully where govulncheck (or the
# network it needs) is unavailable, e.g. offline build containers.
vulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# Short fuzz pass over every parser (CI-friendly).
fuzz:
	$(GO) test ./internal/bgpwire -fuzz FuzzUnmarshal -fuzztime 15s
	$(GO) test ./internal/prefix  -fuzz FuzzParse     -fuzztime 10s
	$(GO) test ./internal/topology -fuzz FuzzParse    -fuzztime 10s
	$(GO) test ./internal/irr     -fuzz FuzzParse     -fuzztime 10s
	$(GO) test ./internal/recio   -fuzz FuzzDecode    -fuzztime 10s
	$(GO) test ./internal/mrt     -fuzz FuzzMRTReader -fuzztime 10s

# One benchmark per paper table/figure; metrics double as reproduction
# evidence (see EXPERIMENTS.md).
bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable sweep benchmarks (Figures 2/5/7 plus the kernel scaling
# micro-benchmark) → BENCH_sweep.json with ns/op, allocs/op and workers.
bench-json:
	scripts/bench_json.sh BENCH_sweep.json

# Throughput gates: fail if recio encode or firehose replay regressed
# more than 20% against the committed BENCH_recio.json /
# BENCH_firehose.json baselines (each gate skips on machines with a
# different core count — throughput baselines don't transfer).
bench-trend:
	scripts/check_bench_trend.sh BENCH_recio.json 20 BENCH_firehose.json

# Every figure and table at the default working scale.
reproduce:
	scripts/reproduce.sh 10000 reproduction

# The paper's own dimensions (42,697 ASes); takes minutes on one core.
reproduce-paper-scale:
	scripts/reproduce.sh 42697 reproduction-full

clean:
	rm -rf reproduction reproduction-full polar-frames view.mrt bgplint.json bgplint.sarif
