# bgpsim — build, test and reproduction targets.

GO ?= go

.PHONY: all build test vet fuzz bench reproduce reproduce-paper-scale clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) vet ./...
	$(GO) test ./...

# Short fuzz pass over every parser (CI-friendly).
fuzz:
	$(GO) test ./internal/bgpwire -fuzz FuzzUnmarshal -fuzztime 15s
	$(GO) test ./internal/prefix  -fuzz FuzzParse     -fuzztime 10s
	$(GO) test ./internal/topology -fuzz FuzzParse    -fuzztime 10s
	$(GO) test ./internal/irr     -fuzz FuzzParse     -fuzztime 10s

# One benchmark per paper table/figure; metrics double as reproduction
# evidence (see EXPERIMENTS.md).
bench:
	$(GO) test -bench=. -benchmem ./...

# Every figure and table at the default working scale.
reproduce:
	scripts/reproduce.sh 10000 reproduction

# The paper's own dimensions (42,697 ASes); takes minutes on one core.
reproduce-paper-scale:
	scripts/reproduce.sh 42697 reproduction-full

clean:
	rm -rf reproduction reproduction-full polar-frames view.mrt
