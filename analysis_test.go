package bgpsim

import (
	"strings"
	"testing"
)

func TestDetectionFacade(t *testing.T) {
	sim := newSim(t)
	ps := sim.Tier1Probes()
	if len(ps.Probes) != len(sim.Tier1ASNs()) {
		t.Error("Tier1Probes size mismatch")
	}
	res, err := sim.EvaluateDetection(ps, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalAttacks != 200 {
		t.Errorf("TotalAttacks = %d", res.TotalAttacks)
	}
	// Same workload seed must be reproducible.
	res2, err := sim.EvaluateDetection(ps, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.MissCount() != res2.MissCount() {
		t.Error("detection evaluation not deterministic")
	}
	// Probe ASN round trip.
	asns := sim.ProbeASNs(ps)
	back, err := sim.ProbesAt("copy", asns)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Probes) != len(ps.Probes) {
		t.Error("ProbesAt round trip size mismatch")
	}
	if _, err := sim.ProbesAt("bad", []ASN{4_000_000_000}); err == nil {
		t.Error("unknown probe ASN accepted")
	}
}

func TestDeploymentFacade(t *testing.T) {
	sim := newSim(t)
	target, err := sim.FindAS(TargetQuery{Depth: 2, Stub: true})
	if err != nil {
		t.Fatal(err)
	}
	strategies := []Strategy{
		sim.RandomDeployment(5, 1),
		sim.Tier1Deployment(),
		sim.TopDegreeDeployment(10),
	}
	evals, err := sim.EvaluateDeployment(target, strategies, 60, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(evals) != 3 {
		t.Fatalf("evals = %d", len(evals))
	}
	custom, err := sim.DeploymentAt("mine", sim.Tier1ASNs())
	if err != nil {
		t.Fatal(err)
	}
	if len(custom.Nodes) != len(sim.Tier1ASNs()) {
		t.Error("DeploymentAt size mismatch")
	}
	if _, err := sim.DeploymentAt("bad", []ASN{4_000_000_000}); err == nil {
		t.Error("unknown filter ASN accepted")
	}
}

func TestRegionalFacade(t *testing.T) {
	sim := newSim(t)
	island := sim.IslandRegion()
	if island < 0 {
		t.Fatal("no island region")
	}
	members := sim.RegionASNs(island)
	if len(members) == 0 {
		t.Fatal("island empty")
	}
	if r, err := sim.RegionOf(members[0]); err != nil || r != island {
		t.Errorf("RegionOf = %d (%v)", r, err)
	}
	hub, err := sim.RegionHub(island)
	if err != nil {
		t.Fatal(err)
	}
	if r, _ := sim.RegionOf(hub); r != island {
		t.Error("hub outside island")
	}
	// Deepest island stub.
	var target ASN
	depth := -1
	for _, a := range members {
		if d, _ := sim.DepthOf(a); d > depth {
			if deg, _ := sim.DegreeOf(a); deg <= 2 {
				target, depth = a, d
			}
		}
	}
	if depth < 1 {
		t.Skip("no island stub")
	}
	rep, err := sim.MeasureRegional(target, 40, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RegionSize != len(members) {
		t.Errorf("RegionSize = %d, want %d", rep.RegionSize, len(members))
	}
	filtered, err := sim.MeasureRegional(target, 40, 5, []ASN{hub})
	if err != nil {
		t.Fatal(err)
	}
	if filtered.InsideMean > rep.InsideMean {
		t.Error("hub filter increased regional pollution")
	}
	// Re-homing keeps the facade usable and reduces depth.
	if depth >= 2 {
		re, err := sim.Rehome(target, 1)
		if err != nil {
			t.Fatal(err)
		}
		nd, err := re.DepthOf(target)
		if err != nil {
			t.Fatal(err)
		}
		if nd >= depth {
			t.Errorf("rehome did not reduce depth: %d → %d", depth, nd)
		}
		// Original unchanged.
		if od, _ := sim.DepthOf(target); od != depth {
			t.Error("Rehome mutated the original simulator")
		}
	}
}

func TestPGBGPFacade(t *testing.T) {
	sim := newSim(t)
	target, err := sim.FindAS(TargetQuery{Depth: 2, Stub: true})
	if err != nil {
		t.Fatal(err)
	}
	core := sim.FiltersOf(sim.TopDegreeDeployment(10))
	res, err := sim.EvaluatePGBGP(target, core, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pollution) == 0 {
		t.Fatal("no PGBGP sweep results")
	}
	baseline, err := sim.EvaluatePGBGP(target, nil, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary().Mean >= baseline.Summary().Mean {
		t.Errorf("PGBGP at core (%.1f) did not beat baseline (%.1f)",
			res.Summary().Mean, baseline.Summary().Mean)
	}
}

func TestIRRFacade(t *testing.T) {
	sim := newSim(t)
	target, err := sim.FindAS(TargetQuery{Depth: 2, Stub: true})
	if err != nil {
		t.Fatal(err)
	}
	victimPrefix, err := ParsePrefix("192.0.2.0/24")
	if err != nil {
		t.Fatal(err)
	}
	reg, err := LoadIRR(strings.NewReader(
		"route: 192.0.2.0/24\norigin: " + target.String() + "\nsource: RADB\n"))
	if err != nil {
		t.Fatal(err)
	}
	attacker := sim.Tier1ASNs()[0]
	filters := sim.FiltersOf(sim.TopDegreeDeployment(15))
	rep, err := sim.Hijack(HijackSpec{
		Attacker:        attacker,
		Target:          target,
		Filters:         filters,
		ValidateAgainst: reg,
		HijackedPrefix:  victimPrefix,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.FiltersArmed {
		t.Error("IRR-backed filters did not arm against an unregistered origin")
	}
}

func TestMonitoringFacade(t *testing.T) {
	sim := newSim(t)
	target, err := sim.FindAS(TargetQuery{Depth: 2, Stub: true})
	if err != nil {
		t.Fatal(err)
	}
	victimPrefix, err := ParsePrefix("129.82.0.0/16")
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.PublishROA(ROA{Prefix: victimPrefix, MaxLength: 24, Origin: target}); err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Hijack(HijackSpec{Attacker: sim.Tier1ASNs()[0], Target: target})
	if err != nil {
		t.Fatal(err)
	}
	probes := sim.TopDegreeProbes(12)
	updates, err := sim.FeedFromHijack(rep, victimPrefix, probes)
	if err != nil {
		t.Fatal(err)
	}
	det := NewDetector(sim.ROAStore(), nil)
	det.NotePublished(victimPrefix)
	for _, tu := range updates {
		det.Process(tu)
	}
	// Whether an alert fires depends on probe placement; what must hold:
	// every alert names the attacker, never the victim.
	for _, a := range det.Alerts() {
		if a.Origin == target {
			t.Error("alert raised against the legitimate origin")
		}
		if a.Reason != ReasonInvalidOrigin && a.Reason != ReasonSubPrefix {
			t.Errorf("unexpected alert reason %q", a.Reason)
		}
	}
}
