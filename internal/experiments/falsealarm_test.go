package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestFalseAlarmStudy(t *testing.T) {
	w := world(t)
	res, err := FalseAlarmStudy(w, FalseAlarmConfig{Prefixes: 300, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Transfers == 0 {
		t.Fatal("no transfers simulated")
	}
	// The promptly-updated source never false-alarms on legitimate
	// transfers; the stale source does, roughly at the lag rate.
	if res.FreshFalseAlarms != 0 {
		t.Errorf("fresh source raised %d false alarms", res.FreshFalseAlarms)
	}
	if res.StaleFalseAlarms == 0 {
		t.Error("stale source raised no false alarms despite 80% lag")
	}
	frac := float64(res.StaleFalseAlarms) / float64(res.Transfers)
	if frac < 0.5 || frac > 1.0 {
		t.Errorf("stale false-alarm fraction %.2f far from configured lag 0.8", frac)
	}
	// Both sources detect hijacks comparably (hijackers are authorized
	// nowhere).
	if res.FreshDetected == 0 || res.StaleDetected == 0 {
		t.Error("hijacks undetected by a data source")
	}
	var buf bytes.Buffer
	if err := res.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "false alarms") {
		t.Error("WriteText missing rows")
	}
}

func TestFalseAlarmStudyDeterministic(t *testing.T) {
	w := world(t)
	a, err := FalseAlarmStudy(w, FalseAlarmConfig{Prefixes: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FalseAlarmStudy(w, FalseAlarmConfig{Prefixes: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Error("study not deterministic for a seed")
	}
}
