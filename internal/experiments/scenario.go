package experiments

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/deploy"
	"github.com/bgpsim/bgpsim/internal/hijack"
	"github.com/bgpsim/bgpsim/internal/stats"
	"github.com/bgpsim/bgpsim/internal/sweep"
)

// The scenario-ranking study is the payoff of the scenario layer: the
// paper ranks incremental deployment strategies against exact-origin
// hijacks only, where degree-ranked deployment dominates. Re-running the
// same ladder against forged-origin hijacks and route leaks — with the
// deployment set validating paths, not just origins — asks whether that
// ranking is an artifact of the attack model. One flattened matrix run
// sweeps every (kind × strategy family × size) cell against the deep
// target and ranks the families per scenario.

// TagScenario tags scenario-ranking shard files.
const TagScenario = "scenario"

// ScenarioRankingConfig tunes the per-scenario deployment ranking study.
type ScenarioRankingConfig struct {
	// AttackerSample caps the transit-attacker population (0 = all).
	AttackerSample int
	// Seed drives attacker sampling and the random deployment draws.
	Seed int64
	// Sizes are the deployment set sizes evaluated per strategy family
	// (default: the scaled paper ladder 62/124/299).
	Sizes []int
	// Mechs is what each deployment set turns on (default rov+aspa, so
	// every scenario has a deployed countermeasure to rank).
	Mechs core.DefenseMech
	// Kinds are the attack scenarios ranked (default: all three).
	Kinds []core.AttackKind
	// Workers bounds solve parallelism (0 = GOMAXPROCS); results are
	// bit-identical at any worker count.
	Workers int
}

func (c ScenarioRankingConfig) withDefaults(w *World) ScenarioRankingConfig {
	if len(c.Sizes) == 0 {
		scale := func(paper int) int {
			v := paper * w.Graph.N() / 42697
			if v < 1 {
				v = 1
			}
			return v
		}
		c.Sizes = []int{scale(62), scale(124), scale(299)}
	}
	if c.Mechs == 0 {
		c.Mechs = core.MechROV | core.MechASPA
	}
	if len(c.Kinds) == 0 {
		c.Kinds = core.Kinds()
	}
	return c
}

// ScenarioRankingCell is one (strategy, size) rung of one scenario's
// ladder.
type ScenarioRankingCell struct {
	Strategy deploy.Strategy
	Summary  stats.Summary
}

// ScenarioRankingRow is one attack scenario's evaluated ladder: the
// undefended baseline followed by every (family × size) deployment.
type ScenarioRankingRow struct {
	Kind     core.AttackKind
	Baseline stats.Summary
	Cells    []ScenarioRankingCell
}

// Ranking orders the row's cells by mean residual pollution, best
// deployment first (ties by strategy name for determinism).
func (r *ScenarioRankingRow) Ranking() []ScenarioRankingCell {
	out := append([]ScenarioRankingCell(nil), r.Cells...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Summary.Mean != out[j].Summary.Mean {
			return out[i].Summary.Mean < out[j].Summary.Mean
		}
		return out[i].Strategy.Name < out[j].Strategy.Name
	})
	return out
}

// ScenarioRankingResult is the full study: one row per attack scenario,
// all solved against the same target and attacker population.
type ScenarioRankingResult struct {
	Title  string
	Target Target
	Mechs  core.DefenseMech
	Rows   []ScenarioRankingRow
}

// scenarioStudy is the prepared study: defaulted config plus the derived
// target, attacker sample, and per-kind strategy ladder, shared by full,
// shard, and merge runs.
type scenarioStudy struct {
	cfg       ScenarioRankingConfig
	target    Target
	attackers []int
	// ladder[0] is the undefended baseline; the rest are family × size.
	ladder []deploy.Strategy
}

func newScenarioStudy(w *World, cfg ScenarioRankingConfig) (*scenarioStudy, error) {
	cfg = cfg.withDefaults(w)
	node, ok := w.DeepTarget()
	if !ok {
		return nil, fmt.Errorf("scenario ranking: no deep target")
	}
	target := Target{
		Name:  fmt.Sprintf("depth-%d stub", w.Class.Depth[node]),
		Node:  node,
		Depth: w.Class.Depth[node],
	}
	ladder := []deploy.Strategy{deploy.None()}
	for si, k := range cfg.Sizes {
		// One generator per random rung keeps the draws independent and
		// replayable, as in deploy.PaperLadder.
		ladder = append(ladder,
			deploy.Random(w.Graph, k, rngFor(cfg.Seed+int64(si), "scenario-random")),
			deploy.TopDegree(w.Graph, k),
			deploy.DepthRanked(w.Graph, w.Class, k),
		)
	}
	return &scenarioStudy{
		cfg:       cfg,
		target:    target,
		attackers: SampleAttackers(w.Graph.TransitNodes(), cfg.AttackerSample, rngFor(cfg.Seed, "attackers")),
		ladder:    ladder,
	}, nil
}

// workload flattens the study into one matrix: groups ordered kind-major,
// ladder rung minor, every cell the same attacker sample.
func (s *scenarioStudy) workload(w *World) (*hijack.Workload, error) {
	cfgs := make([]hijack.SweepConfig, 0, len(s.cfg.Kinds)*len(s.ladder))
	for _, kind := range s.cfg.Kinds {
		cfgs = append(cfgs, deploy.ConfigsScenario(w.Policy, s.target.Node, s.attackers, s.ladder, kind, s.cfg.Mechs)...)
	}
	return hijack.NewWorkload(w.Policy, cfgs)
}

// assemble folds the kind-major sweep results back into per-scenario rows.
func (s *scenarioStudy) assemble(results []*hijack.SweepResult) *ScenarioRankingResult {
	res := &ScenarioRankingResult{
		Title:  "Per-scenario deployment ranking",
		Target: s.target,
		Mechs:  s.cfg.Mechs,
	}
	for ki, kind := range s.cfg.Kinds {
		row := ScenarioRankingRow{Kind: kind}
		for li, st := range s.ladder {
			sum := results[ki*len(s.ladder)+li].Summary()
			if li == 0 {
				row.Baseline = sum
				continue
			}
			row.Cells = append(row.Cells, ScenarioRankingCell{Strategy: st, Summary: sum})
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// ScenarioRanking runs the full study as one flattened matrix run.
func ScenarioRanking(w *World, cfg ScenarioRankingConfig) (*ScenarioRankingResult, error) {
	s, err := newScenarioStudy(w, cfg)
	if err != nil {
		return nil, err
	}
	wl, err := s.workload(w)
	if err != nil {
		return nil, fmt.Errorf("scenario ranking: %w", err)
	}
	results, red := wl.Results()
	if err := sweep.RunMatrixReduce(wl.Matrix, sweep.MatrixOptions{Workers: s.cfg.Workers}, wl.Extract(), red); err != nil {
		return nil, fmt.Errorf("scenario ranking: %w", err)
	}
	return s.assemble(results), nil
}

// ScenarioRankingShard solves one shard of the study's matrix in memory.
func ScenarioRankingShard(w *World, cfg ScenarioRankingConfig, sel sweep.ShardSel) (*sweep.ShardFile[hijack.Record], error) {
	s, err := newScenarioStudy(w, cfg)
	if err != nil {
		return nil, err
	}
	wl, err := s.workload(w)
	if err != nil {
		return nil, fmt.Errorf("scenario shard: %w", err)
	}
	sf, err := sweep.RunShard(wl.Matrix, sweep.MatrixOptions{Workers: s.cfg.Workers, Sel: sel}, TagScenario, wl.Extract())
	if err != nil {
		return nil, fmt.Errorf("scenario shard: %w", err)
	}
	return sf, nil
}

// ScenarioRankingShardTo solves one shard of the study's matrix and
// persists it into the store.
func ScenarioRankingShardTo(w *World, cfg ScenarioRankingConfig, sel sweep.ShardSel, store sweep.ShardStore) (sweep.ShardReport, error) {
	s, err := newScenarioStudy(w, cfg)
	if err != nil {
		return sweep.ShardReport{}, err
	}
	wl, err := s.workload(w)
	if err != nil {
		return sweep.ShardReport{}, fmt.Errorf("scenario shard: %w", err)
	}
	rep, err := sweep.PersistShard(wl.Matrix, sweep.MatrixOptions{Workers: s.cfg.Workers, Sel: sel}, TagScenario, wl.Extract(), store)
	if err != nil {
		return rep, fmt.Errorf("scenario shard: %w", err)
	}
	return rep, nil
}

// ScenarioRankingMerge merges shard files into the full study result.
func ScenarioRankingMerge(w *World, cfg ScenarioRankingConfig, files []*sweep.ShardFile[hijack.Record]) (*ScenarioRankingResult, error) {
	s, err := newScenarioStudy(w, cfg)
	if err != nil {
		return nil, err
	}
	wl, err := s.workload(w)
	if err != nil {
		return nil, fmt.Errorf("scenario merge: %w", err)
	}
	results, red := wl.Results()
	if err := sweep.MergeShards(files, TagScenario, sweep.MatrixDigest(wl.Matrix), red); err != nil {
		return nil, err
	}
	return s.assemble(results), nil
}

// WriteText renders per-scenario ladders plus the best-first ranking line
// each scenario implies.
func (r *ScenarioRankingResult) WriteText(out io.Writer) error {
	fmt.Fprintf(out, "%s\ntarget: %s; deployed mechanisms: %s\n", r.Title, r.Target.Name, r.Mechs)
	for _, row := range r.Rows {
		fmt.Fprintf(out, "\nscenario %s (undefended mean pollution %.1f):\n", row.Kind, row.Baseline.Mean)
		tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "strategy\tmean polluted\tmax\tvs baseline")
		for _, c := range row.Cells {
			frac := 0.0
			if row.Baseline.Mean > 0 {
				frac = c.Summary.Mean / row.Baseline.Mean
			}
			fmt.Fprintf(tw, "%s\t%.1f\t%d\t%.0f%%\n", c.Strategy.Name, c.Summary.Mean, c.Summary.Max, 100*frac)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		ranked := row.Ranking()
		if len(ranked) > 0 {
			fmt.Fprintf(out, "  best deployment for %s: %s (mean %.1f)\n",
				row.Kind, ranked[0].Strategy.Name, ranked[0].Summary.Mean)
		}
	}
	return nil
}
