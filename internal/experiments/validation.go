package experiments

import (
	"fmt"
	"io"

	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/ribcompare"
	"github.com/bgpsim/bgpsim/internal/sweep"
)

// ValidationResult is the Section III validation study: simulated RIBs
// compared route-by-route against a reference internet (the paper: Oregon
// RouteViews, 62 % exact-or-equivalent; here: a tie-break perturbed policy
// standing in for real-world policy variance).
type ValidationResult struct {
	Origins int
	Reports []ribcompare.Report
	Overall ribcompare.Report
}

// ValidationConfig tunes the study.
type ValidationConfig struct {
	// Origins is how many origin ASes to build full RIBs for (default 5).
	Origins int
	// Seed picks the origins.
	Seed int64
	// Workers bounds solve parallelism (0 = GOMAXPROCS); results are
	// bit-identical at any worker count.
	Workers int
}

// ValidationStudy computes single-origin routing tables for a handful of
// origins under the default policy and under the perturbed "real world"
// policy, then runs the paper's exact/topologically-equivalent matcher.
func ValidationStudy(w *World, cfg ValidationConfig) (*ValidationResult, error) {
	if cfg.Origins == 0 {
		cfg.Origins = 5
	}
	refPolicy, err := core.NewPolicy(w.Graph, w.Class.Tier1, core.WithPreferHighNextHop(true))
	if err != nil {
		return nil, fmt.Errorf("validation: %w", err)
	}

	origins := SampleAttackers(allNodes(w.Graph.N()), cfg.Origins, rngFor(cfg.Seed, "origins"))
	// Single-origin routing state via a sub-prefix announcement. Both
	// policies run as one two-group matrix — group 0 the simulated policy,
	// group 1 the perturbed reference — so the same job list load-balances
	// across one worker pool and each worker keeps one warm solver per
	// policy. FromOutcome copies the paths, detaching each RIB from the
	// solver's transient outcome.
	pols := []*core.Policy{w.Policy, refPolicy}
	m := sweep.Matrix{
		Groups: 2,
		Size:   func(int) int { return len(origins) },
		Policy: func(g int) *core.Policy { return pols[g] },
		Job: func(_, k int) (core.Attack, core.Defense) {
			origin := origins[k]
			return core.Attack{Target: (origin + 1) % w.Graph.N(), Attacker: origin, SubPrefix: true}, core.Defense{}
		},
	}
	// Streaming pairwise compare: the simulated RIBs (group 0) are held
	// until their reference twin (group 1) arrives, compared, and released
	// — the reference RIBs are never stored.
	res := &ValidationResult{Origins: len(origins)}
	simRIBs := make([]ribcompare.RIB, len(origins))
	red := sweep.ReduceFunc[ribcompare.RIB]{EmitFn: func(idx int, rib ribcompare.RIB) {
		if idx < len(origins) {
			simRIBs[idx] = rib
			return
		}
		k := idx - len(origins)
		rep := ribcompare.Compare(w.Graph, simRIBs[k], rib)
		simRIBs[k] = nil
		res.Reports = append(res.Reports, rep)
		res.Overall.Exact += rep.Exact
		res.Overall.TopoEquivalent += rep.TopoEquivalent
		res.Overall.Mismatch += rep.Mismatch
		res.Overall.Missing += rep.Missing
	}}
	if err := sweep.RunMatrixReduce(m, sweep.MatrixOptions{Workers: cfg.Workers},
		func(_, _ int, o *core.Outcome) ribcompare.RIB { return ribcompare.FromOutcome(o) }, red); err != nil {
		return nil, fmt.Errorf("validation: %w", err)
	}
	return res, nil
}

func allNodes(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// WriteText renders per-origin and overall match rates.
func (r *ValidationResult) WriteText(out io.Writer) error {
	fmt.Fprintf(out, "Section III validation: simulated vs reference RIBs (%d origins)\n", r.Origins)
	for i, rep := range r.Reports {
		fmt.Fprintf(out, "  origin %d: %s\n", i, rep)
	}
	_, err := fmt.Fprintf(out, "  overall: %s\n", r.Overall)
	return err
}
