// Multi-process shard entry points: every headline experiment can run as
// `-shard i/n` slices on separate machines and be merged afterwards. A
// shard run rebuilds the exact workload a full run would solve (same
// world, same seeds, same defaulting), solves only its contiguous cell
// range, and persists the extracted records as a sweep.ShardFile. A merge
// run rebuilds the same workload, validates that the shard files tile the
// cell space exactly, and replays them through the experiment's streaming
// reducer — the merged result is bit-identical to a single-process run at
// any worker and shard count.
//
// The world and experiment flags (scale, seed, sample sizes, …) must
// match between the shard and merge invocations; mismatched dimensions
// are rejected at merge time.
package experiments

import (
	"fmt"

	"github.com/bgpsim/bgpsim/internal/deploy"
	"github.com/bgpsim/bgpsim/internal/detect"
	"github.com/bgpsim/bgpsim/internal/hijack"
	"github.com/bgpsim/bgpsim/internal/sweep"
	"github.com/bgpsim/bgpsim/internal/topology"
)

// Experiment tags embedded in shard files and used to name them on disk.
const (
	TagFig2  = "fig2"
	TagFig3  = "fig3"
	TagFig4  = "fig4"
	TagFig5  = "fig5"
	TagFig6  = "fig6"
	TagFig7  = "fig7"
	TagHoles = "holes"
)

// Fig2Shard solves one shard of the Figure 2 matrix.
func Fig2Shard(w *World, cfg VulnerabilityConfig, sel sweep.ShardSel) (*sweep.ShardFile[hijack.Record], error) {
	return vulnerabilityShard(w, cfg, topology.UnderTier1, TagFig2, sel)
}

// Fig2ShardTo solves one shard of the Figure 2 matrix and persists it
// straight into the store (streaming with checkpoint/resume when the
// store selects the recio format).
func Fig2ShardTo(w *World, cfg VulnerabilityConfig, sel sweep.ShardSel, store sweep.ShardStore) (sweep.ShardReport, error) {
	return vulnerabilityShardTo(w, cfg, topology.UnderTier1, TagFig2, sel, store)
}

// Fig2Merge merges Figure 2 shard files into the full panel.
func Fig2Merge(w *World, cfg VulnerabilityConfig, files []*sweep.ShardFile[hijack.Record]) (*VulnerabilityResult, error) {
	return vulnerabilityMerge(w, cfg, topology.UnderTier1, TagFig2,
		"Figure 2: attack vulnerability by depth (tier-1 hierarchy)", files)
}

// Fig3Shard solves one shard of the Figure 3 matrix.
func Fig3Shard(w *World, cfg VulnerabilityConfig, sel sweep.ShardSel) (*sweep.ShardFile[hijack.Record], error) {
	return vulnerabilityShard(w, cfg, topology.UnderTier2, TagFig3, sel)
}

// Fig3ShardTo solves one shard of the Figure 3 matrix and persists it
// straight into the store.
func Fig3ShardTo(w *World, cfg VulnerabilityConfig, sel sweep.ShardSel, store sweep.ShardStore) (sweep.ShardReport, error) {
	return vulnerabilityShardTo(w, cfg, topology.UnderTier2, TagFig3, sel, store)
}

// Fig3Merge merges Figure 3 shard files into the full panel.
func Fig3Merge(w *World, cfg VulnerabilityConfig, files []*sweep.ShardFile[hijack.Record]) (*VulnerabilityResult, error) {
	return vulnerabilityMerge(w, cfg, topology.UnderTier2, TagFig3,
		"Figure 3: attack vulnerability by depth (tier-2 hierarchy)", files)
}

func vulnerabilityShard(w *World, cfg VulnerabilityConfig, h topology.Hierarchy, tag string, sel sweep.ShardSel) (*sweep.ShardFile[hijack.Record], error) {
	_, wl, err := vulnerabilityWorkload(w, cfg, h)
	if err != nil {
		return nil, fmt.Errorf("%s shard: %w", tag, err)
	}
	sf, err := sweep.RunShard(wl.Matrix, sweep.MatrixOptions{Workers: cfg.Workers, Sel: sel}, tag, wl.Extract())
	if err != nil {
		return nil, fmt.Errorf("%s shard: %w", tag, err)
	}
	return sf, nil
}

func vulnerabilityShardTo(w *World, cfg VulnerabilityConfig, h topology.Hierarchy, tag string, sel sweep.ShardSel, store sweep.ShardStore) (sweep.ShardReport, error) {
	_, wl, err := vulnerabilityWorkload(w, cfg, h)
	if err != nil {
		return sweep.ShardReport{}, fmt.Errorf("%s shard: %w", tag, err)
	}
	rep, err := sweep.PersistShard(wl.Matrix, sweep.MatrixOptions{Workers: cfg.Workers, Sel: sel}, tag, wl.Extract(), store)
	if err != nil {
		return rep, fmt.Errorf("%s shard: %w", tag, err)
	}
	return rep, nil
}

func vulnerabilityMerge(w *World, cfg VulnerabilityConfig, h topology.Hierarchy, tag, title string, files []*sweep.ShardFile[hijack.Record]) (*VulnerabilityResult, error) {
	targets, wl, err := vulnerabilityWorkload(w, cfg, h)
	if err != nil {
		return nil, fmt.Errorf("%s merge: %w", tag, err)
	}
	res := &VulnerabilityResult{Title: title}
	red := vulnerabilityReducer(w, targets, wl, res)
	if err := sweep.MergeShards(files, tag, sweep.MatrixDigest(wl.Matrix), red); err != nil {
		return nil, err
	}
	return res, nil
}

// Fig4Shard solves one shard of the Figure 4 stub-filter matrix.
func Fig4Shard(w *World, cfg VulnerabilityConfig, sel sweep.ShardSel) (*sweep.ShardFile[hijack.Record], error) {
	_, wl, err := fig4Workload(w, cfg)
	if err != nil {
		return nil, fmt.Errorf("fig4 shard: %w", err)
	}
	sf, err := sweep.RunShard(wl.Matrix, sweep.MatrixOptions{Workers: cfg.Workers, Sel: sel}, TagFig4, wl.Extract())
	if err != nil {
		return nil, fmt.Errorf("fig4 shard: %w", err)
	}
	return sf, nil
}

// Fig4ShardTo solves one shard of the Figure 4 stub-filter matrix and
// persists it straight into the store.
func Fig4ShardTo(w *World, cfg VulnerabilityConfig, sel sweep.ShardSel, store sweep.ShardStore) (sweep.ShardReport, error) {
	_, wl, err := fig4Workload(w, cfg)
	if err != nil {
		return sweep.ShardReport{}, fmt.Errorf("fig4 shard: %w", err)
	}
	rep, err := sweep.PersistShard(wl.Matrix, sweep.MatrixOptions{Workers: cfg.Workers, Sel: sel}, TagFig4, wl.Extract(), store)
	if err != nil {
		return rep, fmt.Errorf("fig4 shard: %w", err)
	}
	return rep, nil
}

// Fig4Merge merges Figure 4 shard files into the full comparison.
func Fig4Merge(w *World, cfg VulnerabilityConfig, files []*sweep.ShardFile[hijack.Record]) (*Fig4Result, error) {
	targets, wl, err := fig4Workload(w, cfg)
	if err != nil {
		return nil, fmt.Errorf("fig4 merge: %w", err)
	}
	curves := make([]VulnerabilityCurve, wl.Matrix.Groups)
	if err := sweep.MergeShards(files, TagFig4, sweep.MatrixDigest(wl.Matrix), fig4Reducer(targets, wl, curves)); err != nil {
		return nil, err
	}
	return fig4Assemble(targets, curves), nil
}

// Fig5Shard solves one shard of the Figure 5 deployment ladder.
func Fig5Shard(w *World, cfg DeploymentConfig, sel sweep.ShardSel) (*sweep.ShardFile[hijack.Record], error) {
	t, title, err := fig5Panel(w)
	if err != nil {
		return nil, err
	}
	return deploymentShard(w, newDeploymentStudy(w, cfg, t, title), TagFig5, sel)
}

// Fig5ShardTo solves one shard of the Figure 5 deployment ladder and
// persists it straight into the store.
func Fig5ShardTo(w *World, cfg DeploymentConfig, sel sweep.ShardSel, store sweep.ShardStore) (sweep.ShardReport, error) {
	t, title, err := fig5Panel(w)
	if err != nil {
		return sweep.ShardReport{}, err
	}
	return deploymentShardTo(w, newDeploymentStudy(w, cfg, t, title), TagFig5, sel, store)
}

// Fig5Merge merges Figure 5 shard files into the full panel.
func Fig5Merge(w *World, cfg DeploymentConfig, files []*sweep.ShardFile[hijack.Record]) (*DeploymentResult, error) {
	t, title, err := fig5Panel(w)
	if err != nil {
		return nil, err
	}
	return deploymentMerge(w, newDeploymentStudy(w, cfg, t, title), TagFig5, files)
}

// Fig6Shard solves one shard of the Figure 6 deployment ladder.
func Fig6Shard(w *World, cfg DeploymentConfig, sel sweep.ShardSel) (*sweep.ShardFile[hijack.Record], error) {
	t, title, err := fig6Panel(w)
	if err != nil {
		return nil, err
	}
	return deploymentShard(w, newDeploymentStudy(w, cfg, t, title), TagFig6, sel)
}

// Fig6ShardTo solves one shard of the Figure 6 deployment ladder and
// persists it straight into the store.
func Fig6ShardTo(w *World, cfg DeploymentConfig, sel sweep.ShardSel, store sweep.ShardStore) (sweep.ShardReport, error) {
	t, title, err := fig6Panel(w)
	if err != nil {
		return sweep.ShardReport{}, err
	}
	return deploymentShardTo(w, newDeploymentStudy(w, cfg, t, title), TagFig6, sel, store)
}

// Fig6Merge merges Figure 6 shard files into the full panel.
func Fig6Merge(w *World, cfg DeploymentConfig, files []*sweep.ShardFile[hijack.Record]) (*DeploymentResult, error) {
	t, title, err := fig6Panel(w)
	if err != nil {
		return nil, err
	}
	return deploymentMerge(w, newDeploymentStudy(w, cfg, t, title), TagFig6, files)
}

func deploymentShard(w *World, s *deploymentStudy, tag string, sel sweep.ShardSel) (*sweep.ShardFile[hijack.Record], error) {
	wl, err := s.workload(w)
	if err != nil {
		return nil, fmt.Errorf("%s shard: %w", tag, err)
	}
	sf, err := sweep.RunShard(wl.Matrix, sweep.MatrixOptions{Workers: s.cfg.Workers, Sel: sel}, tag, wl.Extract())
	if err != nil {
		return nil, fmt.Errorf("%s shard: %w", tag, err)
	}
	return sf, nil
}

func deploymentShardTo(w *World, s *deploymentStudy, tag string, sel sweep.ShardSel, store sweep.ShardStore) (sweep.ShardReport, error) {
	wl, err := s.workload(w)
	if err != nil {
		return sweep.ShardReport{}, fmt.Errorf("%s shard: %w", tag, err)
	}
	rep, err := sweep.PersistShard(wl.Matrix, sweep.MatrixOptions{Workers: s.cfg.Workers, Sel: sel}, tag, wl.Extract(), store)
	if err != nil {
		return rep, fmt.Errorf("%s shard: %w", tag, err)
	}
	return rep, nil
}

func deploymentMerge(w *World, s *deploymentStudy, tag string, files []*sweep.ShardFile[hijack.Record]) (*DeploymentResult, error) {
	wl, err := s.workload(w)
	if err != nil {
		return nil, fmt.Errorf("%s merge: %w", tag, err)
	}
	results, red := wl.Results()
	if err := sweep.MergeShards(files, tag, sweep.MatrixDigest(wl.Matrix), red); err != nil {
		return nil, err
	}
	return s.assemble(w, deploy.Evaluations(s.ladder, results)), nil
}

// Fig7Shard solves one shard of the Figure 7 detection matrix.
func Fig7Shard(w *World, cfg DetectionConfig, sel sweep.ShardSel) (*sweep.ShardFile[detect.Record], error) {
	cfg = cfg.withDefaults()
	sets, attacks, err := detectionParts(w, cfg)
	if err != nil {
		return nil, fmt.Errorf("fig7 shard: %w", err)
	}
	sf, err := sweep.RunShard(detect.MatrixFor(w.Policy, attacks, cfg.Defense),
		sweep.MatrixOptions{Workers: cfg.Workers, Sel: sel}, TagFig7,
		detect.Extractor(w.Policy, sets, cfg.Semantics))
	if err != nil {
		return nil, fmt.Errorf("fig7 shard: %w", err)
	}
	return sf, nil
}

// Fig7ShardTo solves one shard of the Figure 7 detection matrix and
// persists it straight into the store.
func Fig7ShardTo(w *World, cfg DetectionConfig, sel sweep.ShardSel, store sweep.ShardStore) (sweep.ShardReport, error) {
	cfg = cfg.withDefaults()
	sets, attacks, err := detectionParts(w, cfg)
	if err != nil {
		return sweep.ShardReport{}, fmt.Errorf("fig7 shard: %w", err)
	}
	rep, err := sweep.PersistShard(detect.MatrixFor(w.Policy, attacks, cfg.Defense),
		sweep.MatrixOptions{Workers: cfg.Workers, Sel: sel}, TagFig7,
		detect.Extractor(w.Policy, sets, cfg.Semantics), store)
	if err != nil {
		return rep, fmt.Errorf("fig7 shard: %w", err)
	}
	return rep, nil
}

// Fig7Merge merges Figure 7 shard files into the full panel.
func Fig7Merge(w *World, cfg DetectionConfig, files []*sweep.ShardFile[detect.Record]) (*DetectionResult, error) {
	cfg = cfg.withDefaults()
	sets, attacks, err := detectionParts(w, cfg)
	if err != nil {
		return nil, fmt.Errorf("fig7 merge: %w", err)
	}
	results, red := detect.Results(sets, attacks)
	if err := sweep.MergeShards(files, TagFig7, sweep.MatrixDigest(detect.MatrixFor(w.Policy, attacks, cfg.Defense)), red); err != nil {
		return nil, err
	}
	return assembleDetection(cfg, results), nil
}

// HoleShard solves one shard of the hole-analysis matrix.
func HoleShard(w *World, cfg HoleConfig, sel sweep.ShardSel) (*sweep.ShardFile[HoleRecord], error) {
	s, err := newHoleStudy(w, cfg)
	if err != nil {
		return nil, err
	}
	sf, err := sweep.RunShard(s.matrix(w), sweep.MatrixOptions{Workers: cfg.Workers, Sel: sel}, TagHoles, s.extract(w))
	if err != nil {
		return nil, fmt.Errorf("hole analysis shard: %w", err)
	}
	return sf, nil
}

// HoleShardTo solves one shard of the hole-analysis matrix and persists
// it straight into the store.
func HoleShardTo(w *World, cfg HoleConfig, sel sweep.ShardSel, store sweep.ShardStore) (sweep.ShardReport, error) {
	s, err := newHoleStudy(w, cfg)
	if err != nil {
		return sweep.ShardReport{}, err
	}
	rep, err := sweep.PersistShard(s.matrix(w), sweep.MatrixOptions{Workers: cfg.Workers, Sel: sel}, TagHoles, s.extract(w), store)
	if err != nil {
		return rep, fmt.Errorf("hole analysis shard: %w", err)
	}
	return rep, nil
}

// HoleMerge merges hole-analysis shard files into the full result.
func HoleMerge(w *World, cfg HoleConfig, files []*sweep.ShardFile[HoleRecord]) (*HoleResult, error) {
	s, err := newHoleStudy(w, cfg)
	if err != nil {
		return nil, err
	}
	res, red := s.reduce(w)
	if err := sweep.MergeShards(files, TagHoles, sweep.MatrixDigest(s.matrix(w)), red); err != nil {
		return nil, err
	}
	return res, nil
}
