package experiments

// These tests pin the streaming-reducer refactor and the multi-process
// shard protocol at the experiment layer: a streaming panel must equal
// the buffered reference field-for-field, and shard files written to
// disk, read back, and merged in an arbitrary order must reproduce the
// single-process result digest-for-digest.

import (
	"fmt"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"github.com/bgpsim/bgpsim/internal/detect"
	"github.com/bgpsim/bgpsim/internal/hijack"
	"github.com/bgpsim/bgpsim/internal/sweep"
	"github.com/bgpsim/bgpsim/internal/topology"
)

// bufferedVulnerabilityPanel is the pre-refactor reference: materialize
// every sweep result in full — O(curves × attacks) memory — then derive
// each curve from its buffered pollution vector. The streaming panel must
// match it exactly; both paths sort private copies inside the stats calls.
func bufferedVulnerabilityPanel(w *World, cfg VulnerabilityConfig, h topology.Hierarchy, title string) (*VulnerabilityResult, error) {
	targets, wl, err := vulnerabilityWorkload(w, cfg, h)
	if err != nil {
		return nil, err
	}
	results, red := wl.Results()
	if err := sweep.RunMatrixReduce(wl.Matrix, sweep.MatrixOptions{Workers: cfg.Workers}, wl.Extract(), red); err != nil {
		return nil, err
	}
	res := &VulnerabilityResult{Title: title}
	for i, r := range results {
		rho, _ := r.AggressivenessDepthCorrelation(w.Class)
		res.Curves = append(res.Curves, VulnerabilityCurve{
			Target:                 targets[i],
			Points:                 r.CCDF(),
			Summary:                r.Summary(),
			AggressivenessDepthRho: rho,
		})
	}
	return res, nil
}

// TestVulnerabilityStreamingMatchesBuffered: the streaming Figure 2 panel
// (one reused pollution buffer) must equal the buffered reference at
// workers 1 and 4.
func TestVulnerabilityStreamingMatchesBuffered(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	w := world(t)
	for _, workers := range []int{1, 4} {
		cfg := VulnerabilityConfig{AttackerSample: 200, Seed: 3, Workers: workers}
		want, err := bufferedVulnerabilityPanel(w, cfg, topology.UnderTier1,
			"Figure 2: attack vulnerability by depth (tier-1 hierarchy)")
		if err != nil {
			t.Fatal(err)
		}
		got, err := Fig2(w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: streaming Fig2 differs from buffered reference", workers)
		}
	}
}

// shardRoundTrip persists a shard file to disk and reads it back, so the
// merge consumes exactly what a separate machine would have shipped.
func shardRoundTrip[T any](t *testing.T, dir string, sf *sweep.ShardFile[T]) *sweep.ShardFile[T] {
	t.Helper()
	path := filepath.Join(dir, fmt.Sprintf("%s.%dof%d.json", sf.Experiment, sf.Shard, sf.Shards))
	if err := sweep.WriteShardFileTo(path, sf); err != nil {
		t.Fatal(err)
	}
	files, err := sweep.ReadShardFiles[T]([]string{path})
	if err != nil {
		t.Fatal(err)
	}
	return files[0]
}

// shardOrder is a fixed shuffle: merge must reorder shards by cell range,
// not trust arrival order.
var shardOrder = []int{2, 0, 1}

// TestFig2ShardMergeMatchesFull: three Figure 2 shards, disk round-trip,
// merged out of order == the single-process panel.
func TestFig2ShardMergeMatchesFull(t *testing.T) {
	w := world(t)
	cfg := VulnerabilityConfig{AttackerSample: 200, Seed: 3}
	full, err := Fig2(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	var files []*sweep.ShardFile[hijack.Record]
	for _, sh := range shardOrder {
		sf, err := Fig2Shard(w, cfg, sweep.ShardSel{Shard: sh, Shards: len(shardOrder)})
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, shardRoundTrip(t, dir, sf))
	}
	got, err := Fig2Merge(w, cfg, files)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, full) {
		t.Error("merged Fig2 differs from full run")
	}
}

// TestFig7ShardMergeMatchesFull: the detection matrix sharded three ways
// must merge to the full panel's digest.
func TestFig7ShardMergeMatchesFull(t *testing.T) {
	w := world(t)
	cfg := DetectionConfig{Attacks: 300, Seed: 9}
	full, err := Fig7(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := detectionDigest(full)
	dir := t.TempDir()
	var files []*sweep.ShardFile[detect.Record]
	for _, sh := range shardOrder {
		sf, err := Fig7Shard(w, cfg, sweep.ShardSel{Shard: sh, Shards: len(shardOrder)})
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, shardRoundTrip(t, dir, sf))
	}
	got, err := Fig7Merge(w, cfg, files)
	if err != nil {
		t.Fatal(err)
	}
	if d := detectionDigest(got); d != want {
		t.Errorf("merged fig7 digest %x != full run %x", d[:8], want[:8])
	}
}

// TestHoleShardMergeMatchesFull: the hole-analysis matrix sharded three
// ways must merge to the full result's digest.
func TestHoleShardMergeMatchesFull(t *testing.T) {
	w := world(t)
	cfg := HoleConfig{Attacks: 300, Seed: 11}
	full, err := HoleAnalysis(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := holeDigest(full)
	dir := t.TempDir()
	var files []*sweep.ShardFile[HoleRecord]
	for _, sh := range shardOrder {
		sf, err := HoleShard(w, cfg, sweep.ShardSel{Shard: sh, Shards: len(shardOrder)})
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, shardRoundTrip(t, dir, sf))
	}
	got, err := HoleMerge(w, cfg, files)
	if err != nil {
		t.Fatal(err)
	}
	if d := holeDigest(got); d != want {
		t.Errorf("merged hole digest %x != full run %x", d[:8], want[:8])
	}
}
