package experiments

import (
	"bytes"
	"strings"
	"testing"

	"github.com/bgpsim/bgpsim/internal/stats"
	"github.com/bgpsim/bgpsim/internal/topology"
)

// world is a shared medium test world; experiments only read from it.
func world(t testing.TB) *World {
	t.Helper()
	w, err := NewWorld(1200, 1)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewWorld(t *testing.T) {
	w := world(t)
	if w.Graph.N() == 0 || len(w.Class.Tier1) == 0 || w.Policy == nil {
		t.Fatal("world incomplete")
	}
	// Sibling-free (policy construction would have failed otherwise).
	for i := 0; i < w.Graph.N(); i++ {
		_, rels := w.Graph.Neighbors(i)
		for _, r := range rels {
			if r == topology.RelSibling {
				t.Fatal("world contains sibling links")
			}
		}
	}
}

func TestScenarioTargets(t *testing.T) {
	w := world(t)
	targets, err := w.ScenarioTargets(topology.UnderTier1)
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) < 3 {
		t.Fatalf("only %d scenario targets", len(targets))
	}
	seen := map[int]bool{}
	for _, tgt := range targets {
		if tgt.Node < 0 || tgt.Node >= w.Graph.N() {
			t.Fatalf("target %q out of range", tgt.Name)
		}
		if w.Class.Depth[tgt.Node] != tgt.Depth {
			t.Errorf("target %q depth mismatch: %d vs %d", tgt.Name, w.Class.Depth[tgt.Node], tgt.Depth)
		}
		seen[tgt.Node] = true
	}
	if len(seen) < 3 {
		t.Error("scenario targets collapse onto too few nodes")
	}
}

func TestSampleAttackers(t *testing.T) {
	pool := []int{1, 2, 3, 4, 5, 6, 7, 8}
	if got := SampleAttackers(pool, 0, rngFor(1, "attackers")); len(got) != len(pool) {
		t.Error("sample 0 should return all")
	}
	if got := SampleAttackers(pool, 100, rngFor(1, "attackers")); len(got) != len(pool) {
		t.Error("oversized sample should return all")
	}
	got := SampleAttackers(pool, 3, rngFor(1, "attackers"))
	if len(got) != 3 {
		t.Fatalf("sample = %d", len(got))
	}
	again := SampleAttackers(pool, 3, rngFor(1, "attackers"))
	for i := range got {
		if got[i] != again[i] {
			t.Error("sampling not deterministic")
		}
	}
}

func TestFig2AndFig3(t *testing.T) {
	w := world(t)
	cfg := VulnerabilityConfig{AttackerSample: 250, Seed: 3}
	r2, err := Fig2(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Curves) < 3 {
		t.Fatalf("fig2 curves = %d", len(r2.Curves))
	}
	// Vulnerability must broadly increase with depth: compare the
	// shallowest and deepest curves.
	first, last := r2.Curves[0], r2.Curves[len(r2.Curves)-1]
	if first.Target.Depth >= last.Target.Depth {
		t.Fatalf("curves not depth-ordered: %d …%d", first.Target.Depth, last.Target.Depth)
	}
	if last.Summary.Mean <= first.Summary.Mean {
		t.Errorf("deepest target mean %.1f not above shallowest %.1f",
			last.Summary.Mean, first.Summary.Mean)
	}
	var buf bytes.Buffer
	if err := r2.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "CCDF") {
		t.Error("WriteText missing CCDF lines")
	}

	r3, err := Fig3(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r3.Curves) < 3 {
		t.Fatalf("fig3 curves = %d", len(r3.Curves))
	}
}

func TestFig4(t *testing.T) {
	w := world(t)
	r, err := Fig4(w, VulnerabilityConfig{AttackerSample: 300, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Panels) != 2 {
		t.Fatalf("panels = %d", len(r.Panels))
	}
	for _, p := range r.Panels {
		// Stub filtering removes attackers, so the attack count drops and
		// the mean must not increase dramatically (the paper: "filtering
		// simply scales the graph down").
		if p.Filtered.Summary.N >= p.AllASes.Summary.N {
			t.Errorf("%s: transit-only sweep should be smaller", p.Target.Name)
		}
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "stub-filtered") {
		t.Error("WriteText missing scenario rows")
	}
}

func TestFig5AndFig6(t *testing.T) {
	w := world(t)
	cfg := DeploymentConfig{AttackerSample: 120, Seed: 7}
	r5, err := Fig5(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r5.Rungs) != 8 {
		t.Fatalf("fig5 rungs = %d", len(r5.Rungs))
	}
	if len(r5.Residual) == 0 {
		t.Error("fig5 residual table empty")
	}
	base := r5.Rungs[0].Result.Summary().Mean
	best := r5.Rungs[len(r5.Rungs)-1].Result.Summary().Mean
	if best >= base {
		t.Errorf("fig5 ladder had no effect: %.1f → %.1f", base, best)
	}
	if idx := r5.CrossoverIndex(2); idx < 0 {
		t.Error("fig5: no rung halves the baseline pollution")
	}

	r6, err := Fig6(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The deep target starts much worse than the depth-1 target (paper's
	// central contrast between Figures 5 and 6).
	if r6.Rungs[0].Result.Summary().Mean <= r5.Rungs[0].Result.Summary().Mean {
		t.Errorf("fig6 baseline (%.1f) should exceed fig5 baseline (%.1f)",
			r6.Rungs[0].Result.Summary().Mean, r5.Rungs[0].Result.Summary().Mean)
	}
	var buf bytes.Buffer
	if err := r6.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "top residual attacks") {
		t.Error("WriteText missing residual table")
	}
}

func TestFig7(t *testing.T) {
	w := world(t)
	r, err := Fig7(w, DetectionConfig{Attacks: 400, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cases) != 3 {
		t.Fatalf("cases = %d", len(r.Cases))
	}
	// Paper ordering: tier-1 misses most, high-degree core misses least.
	t1 := r.Cases[0].Result.MissRate()
	core62 := r.Cases[2].Result.MissRate()
	if core62 > t1 {
		t.Errorf("core probes miss rate %.3f exceeds tier-1 %.3f", core62, t1)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf, func(n int) string { return w.Graph.ASN(n).String() }); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "miss rate") {
		t.Error("WriteText missing summary table")
	}
}

func TestSectionVII(t *testing.T) {
	w := world(t)
	r, err := SectionVII(w, SelfInterestConfig{OutsideSample: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.Rehome.After.InsideMean > r.Rehome.Before.InsideMean {
		t.Errorf("rehoming increased regional pollution: %.1f → %.1f",
			r.Rehome.Before.InsideMean, r.Rehome.After.InsideMean)
	}
	if r.Filter.Filtered.InsideMean > r.Filter.Base.InsideMean {
		t.Errorf("hub filter increased regional pollution")
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "re-homing experiment") {
		t.Error("WriteText missing rehoming section")
	}
}

func TestValidationStudy(t *testing.T) {
	w := world(t)
	r, err := ValidationStudy(w, ValidationConfig{Origins: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Reports) != 4 {
		t.Fatalf("reports = %d", len(r.Reports))
	}
	rate := r.Overall.MatchRate()
	if rate < 0.3 || rate > 1 {
		t.Errorf("overall match rate %.2f implausible", rate)
	}
	if r.Overall.Total() != 4*w.Graph.N() {
		t.Errorf("overall total = %d, want %d", r.Overall.Total(), 4*w.Graph.N())
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "overall") {
		t.Error("WriteText missing overall line")
	}
}

func TestFig1(t *testing.T) {
	w := world(t)
	r, err := Fig1(w)
	if err != nil {
		t.Fatal(err)
	}
	if r.Polluted <= 0 {
		t.Error("aggressive attack polluted nothing")
	}
	if r.AddrFracLost <= 0 || r.AddrFracLost > 1 {
		t.Errorf("AddrFracLost = %v", r.AddrFracLost)
	}
	if len(r.PerGeneration) != r.Trace.Generations {
		t.Errorf("per-generation stats = %d, generations = %d",
			len(r.PerGeneration), r.Trace.Generations)
	}
	// Messages ramp up then die down: the last generation must carry
	// fewer messages than the peak.
	peak, last := 0, 0
	for _, st := range r.PerGeneration {
		if st.Messages > peak {
			peak = st.Messages
		}
		last = st.Messages
	}
	if last >= peak {
		t.Error("propagation never converged downward")
	}
	frames := 0
	if err := r.RenderFrames(w, 400, func(gen int, svg []byte) error {
		frames++
		if len(svg) == 0 {
			t.Fatal("empty frame")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if frames != r.Trace.Generations {
		t.Errorf("frames = %d, want %d", frames, r.Trace.Generations)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf, func(n int) string { return w.Graph.ASN(n).String() }); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "generation") {
		t.Error("WriteText missing generation rows")
	}
}

// TestConcavityFlip asserts the paper's signature Section IV observation
// quantitatively: the normalized CCDF area (resistance → vulnerability
// shape measure) increases monotonically from the shallow to the deep
// target — the "concavity flip" between depth 1 and depth 2 and beyond.
func TestConcavityFlip(t *testing.T) {
	w := world(t)
	res, err := Fig2(w, VulnerabilityConfig{AttackerSample: 400, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Compare the multi-homed depth-1 curve (most resistant stub) against
	// the deepest curve.
	var shallow, deep *VulnerabilityCurve
	for i := range res.Curves {
		c := &res.Curves[i]
		if c.Target.Depth == 1 && (shallow == nil || c.Summary.Mean < shallow.Summary.Mean) {
			shallow = c
		}
		if deep == nil || c.Target.Depth > deep.Target.Depth {
			deep = c
		}
	}
	if shallow == nil || deep == nil || deep.Target.Depth <= 1 {
		t.Skip("world lacks the depth spread for the concavity check")
	}
	aShallow := stats.CCDFArea(shallow.Points)
	aDeep := stats.CCDFArea(deep.Points)
	if aShallow >= aDeep {
		t.Errorf("CCDF area did not grow with depth: depth-1 %.3f vs depth-%d %.3f",
			aShallow, deep.Target.Depth, aDeep)
	}
	// The deep target's curve must be in clearly concave territory.
	if aDeep < 0.5 {
		t.Errorf("deep target CCDF area %.3f, want > 0.5 (concave/vulnerable)", aDeep)
	}
}
