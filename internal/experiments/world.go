// Package experiments contains one runner per figure and table of the
// paper's evaluation, built on the substrate packages. The cmd/ tools and
// the repository benchmarks both call into these runners, so the printed
// rows always come from the same code.
package experiments

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"

	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/topology"
)

// World bundles the generated (or loaded) internet with its classification
// and routing policy — the fixed context every experiment runs against.
type World struct {
	Graph  *topology.Graph
	Class  *topology.Classification
	Policy *core.Policy
	Params topology.GenParams
}

// NewWorld generates a synthetic internet of approximately n ASes,
// contracts sibling groups, classifies tiers, and builds the routing
// policy.
func NewWorld(n int, seed int64, opts ...core.PolicyOption) (*World, error) {
	p := topology.DefaultParams(n)
	p.Seed = seed
	return NewWorldWithParams(p, opts...)
}

// NewWorldWithParams is NewWorld with explicit generator parameters.
func NewWorldWithParams(p topology.GenParams, opts ...core.PolicyOption) (*World, error) {
	g, err := topology.Generate(p)
	if err != nil {
		return nil, fmt.Errorf("world: %w", err)
	}
	w, err := WorldFromGraph(g, opts...)
	if err != nil {
		return nil, err
	}
	w.Params = p
	return w, nil
}

// WorldFromGraph wraps an existing topology (e.g. parsed from a CAIDA
// file). Sibling groups are contracted automatically.
func WorldFromGraph(g *topology.Graph, opts ...core.PolicyOption) (*World, error) {
	con, err := topology.ContractSiblings(g)
	if err != nil {
		return nil, fmt.Errorf("world: %w", err)
	}
	cg := con.Graph
	c := topology.Classify(cg, topology.ClassifyOptions{})
	pol, err := core.NewPolicy(cg, c.Tier1, opts...)
	if err != nil {
		return nil, fmt.Errorf("world: %w", err)
	}
	return &World{Graph: cg, Class: c, Policy: pol}, nil
}

// Target is a named scenario role (the paper's AS98, AS55857, …).
type Target struct {
	Name  string
	Node  int
	Depth int
}

// ScenarioTargets resolves the paper's target roles against this world:
// a tier-1 AS, single- and multi-homed depth-1 stubs, a depth-2 stub, and
// the deepest stub available (the AS55857 analog). hierarchy selects
// whether depth-1/2 targets must sit under a tier-1 (Figure 2) or tier-2
// (Figure 3).
func (w *World) ScenarioTargets(hierarchy topology.Hierarchy) ([]Target, error) {
	var out []Target
	if len(w.Class.Tier1) > 0 {
		out = append(out, Target{Name: "tier-1 AS", Node: w.Class.Tier1[0], Depth: 0})
	}
	type query struct {
		name string
		q    topology.TargetQuery
	}
	queries := []query{
		{"depth-1 stub (multi-homed)", topology.TargetQuery{Depth: 1, Stub: true, MultiHomed: topology.Bool(true), Hierarchy: hierarchy}},
		{"depth-1 stub (single-homed)", topology.TargetQuery{Depth: 1, Stub: true, MultiHomed: topology.Bool(false), Hierarchy: hierarchy}},
		{"depth-2 stub", topology.TargetQuery{Depth: 2, Stub: true}},
	}
	for _, q := range queries {
		node, err := topology.FindTarget(w.Graph, w.Class, q.q)
		if err != nil {
			// Fall back to the same depth in any hierarchy rather than fail
			// the whole scenario set.
			alt := q.q
			alt.Hierarchy = topology.AnyHierarchy
			node, err = topology.FindTarget(w.Graph, w.Class, alt)
			if err != nil {
				continue
			}
		}
		out = append(out, Target{Name: q.name, Node: node, Depth: q.q.Depth})
	}
	if deep, ok := w.DeepTarget(); ok {
		out = append(out, Target{Name: fmt.Sprintf("depth-%d stub (very vulnerable)", w.Class.Depth[deep]), Node: deep, Depth: w.Class.Depth[deep]})
	}
	if len(out) < 2 {
		return nil, fmt.Errorf("scenario targets: topology too degenerate (found %d roles)", len(out))
	}
	return out, nil
}

// DeepTarget returns the deepest stub in the world (depth capped at 5,
// matching the paper's most vulnerable studied AS).
func (w *World) DeepTarget() (int, bool) {
	for d := min(5, w.Class.MaxDepth()); d >= 3; d-- {
		if node, err := topology.FindTarget(w.Graph, w.Class, topology.TargetQuery{Depth: d, Stub: true}); err == nil {
			return node, true
		}
	}
	// Fall back to depth 2 on shallow topologies.
	node, err := topology.FindTarget(w.Graph, w.Class, topology.TargetQuery{Depth: 2, Stub: true})
	return node, err == nil
}

// ScaledCoreK scales the paper's 62-AS high-degree core (62 of 42697
// ASes) to this world's size, floored just above the tier-1 count so the
// "core" stays meaningful on small generated topologies.
func (w *World) ScaledCoreK() int {
	k := 62 * w.Graph.N() / 42697
	if k < len(w.Class.Tier1)+3 {
		k = len(w.Class.Tier1) + 3
	}
	return k
}

// Depth1Target returns the paper's AS98 analog: a multi-homed depth-1
// stub (single-homed or transit fallbacks keep small worlds working).
func (w *World) Depth1Target() (int, bool) {
	for _, q := range []topology.TargetQuery{
		{Depth: 1, Stub: true, MultiHomed: topology.Bool(true)},
		{Depth: 1, Stub: true},
		{Depth: 1},
	} {
		if node, err := topology.FindTarget(w.Graph, w.Class, q); err == nil {
			return node, true
		}
	}
	return -1, false
}

// SampleAttackers returns attackers for a sweep: the full population when
// sample ≤ 0 or ≥ len(pool), otherwise a random subset drawn from rng.
// Callers own the generator (see rngFor), so every sample is replayable
// from a configured seed.
func SampleAttackers(pool []int, sample int, rng *rand.Rand) []int {
	if sample <= 0 || sample >= len(pool) {
		return pool
	}
	cp := append([]int(nil), pool...)
	rng.Shuffle(len(cp), func(i, j int) { cp[i], cp[j] = cp[j], cp[i] })
	return cp[:sample]
}

// rngFor returns the deterministic generator for one sampled quantity,
// derived from the configured seed plus the quantity's name. Every purpose
// gets its own independent stream, so two generators built from one seed
// never alias — a runner that draws its attack workload and its probe set
// from the same raw seed would otherwise make the two selections
// correlated copies of each other. Adding a new purpose never shifts the
// streams — and therefore the published rows — of existing ones, and
// deliberately repeating a purpose string replays the identical stream
// (Fig4's paired attacker pools document that on purpose).
func rngFor(seed int64, purpose string) *rand.Rand {
	h := fnv.New64a()
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(seed))
	h.Write(b[:])          //nolint:errcheck // hash.Hash cannot fail
	h.Write([]byte(purpose)) //nolint:errcheck
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
