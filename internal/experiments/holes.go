package experiments

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/deploy"
	"github.com/bgpsim/bgpsim/internal/detect"
	"github.com/bgpsim/bgpsim/internal/sweep"
	"github.com/bgpsim/bgpsim/internal/topology"
	"github.com/bgpsim/bgpsim/internal/xmaps"
)

// The paper's closing future-work item: "Some origin and sub-prefix
// attacks will still get through, and possibly remain undetected. An
// analysis is desirable to understand these attacks, to determine how
// they remain invisible, and what can be done short of complete global
// deployment." HoleAnalysis is that analysis: it enumerates the attacks
// that both defeat a filter deployment and escape a probe configuration,
// and explains per-probe why each hole stayed invisible.

// MissReason classifies why one probe did not see one attack.
type MissReason string

const (
	// MissNeverReached: no neighbor exported the bogus route to the probe
	// (valley-free export stopped it earlier).
	MissNeverReached MissReason = "never-reached-probe"
	// MissLocalPref: the probe heard the bogus route but its legitimate
	// route wins on LOCAL_PREF class (customer > peer > provider).
	MissLocalPref MissReason = "local-pref"
	// MissShorterPath: equal class (or tier-1 shortest-path policy) and
	// the legitimate path is shorter.
	MissShorterPath MissReason = "shorter-legitimate-path"
	// MissTieBreak: equal class and length; the deterministic tie-break
	// kept the legitimate route.
	MissTieBreak MissReason = "tie-break"
	// MissFiltered: the probe AS itself deploys origin validation, so it
	// drops the bogus route it would otherwise have selected — a filter
	// and a detector at the same AS cancel each other, one of the
	// analysis's sharpest findings.
	MissFiltered MissReason = "probe-filters-route"
)

// Hole is one successful-yet-undetected attack.
type Hole struct {
	Attacker       int
	Target         int
	Pollution      int
	AttackerDepth  int
	AttackerDegree int
	// WhyMissed counts the miss reason per probe for this attack.
	WhyMissed map[MissReason]int
}

// HoleResult summarizes a hole analysis.
type HoleResult struct {
	Title string
	// Attacks is the workload size; Succeeded counts attacks polluting ≥
	// MinPollution despite the filters; Undetected counts succeeded
	// attacks with zero triggered probes.
	Attacks    int
	Succeeded  int
	Undetected int
	// Holes lists the undetected successful attacks, worst first.
	Holes []Hole
	// AttackerDepthHist histograms hole attackers by depth.
	AttackerDepthHist map[int]int
	// ReasonTotals aggregates per-probe miss reasons over all holes.
	ReasonTotals map[MissReason]int
	MinPollution int
}

// HoleConfig tunes the analysis.
type HoleConfig struct {
	// Attacks is the random workload size (default 2000).
	Attacks int
	// Seed drives workload generation.
	Seed int64
	// MinPollution is the success threshold (default: 1 % of the ASes).
	MinPollution int
	// Filters is the deployed prevention (default: the scaled 62-core).
	Filters *deploy.Strategy
	// Mechs selects which mechanisms the filter set deploys (default:
	// ROV origin validation, the paper's model).
	Mechs core.DefenseMech
	// Kind selects the attack scenario the workload uses (zero =
	// exact-origin hijack).
	Kind core.AttackKind
	// Probes is the detector configuration (default: scaled 62-core probes).
	Probes *detect.ProbeSet
	// MaxHoles bounds the retained hole list (default 50).
	MaxHoles int
	// Workers bounds solve parallelism (0 = GOMAXPROCS); results are
	// bit-identical at any worker count.
	Workers int
}

// HoleRecord is one attack's hole measurement — the matrix stream
// element and the shard-file payload. Why is populated only for
// successful undetected attacks.
type HoleRecord struct {
	Pollution int                `json:"pollution"`
	Succeeded bool               `json:"succeeded"`
	Triggered bool               `json:"triggered"`
	Why       map[MissReason]int `json:"why,omitempty"`
}

// holeStudy is a prepared hole analysis: defaulted configuration plus the
// derived workload, deployment, and detector.
type holeStudy struct {
	cfg     HoleConfig
	attacks []core.Attack
	def     core.Defense
	mechs   core.DefenseMech
	probes  detect.ProbeSet
	filters deploy.Strategy
}

func newHoleStudy(w *World, cfg HoleConfig) (*holeStudy, error) {
	if cfg.Attacks == 0 {
		cfg.Attacks = 2000
	}
	if cfg.MinPollution == 0 {
		cfg.MinPollution = w.Graph.N() / 100
		if cfg.MinPollution < 5 {
			cfg.MinPollution = 5
		}
	}
	if cfg.MaxHoles == 0 {
		cfg.MaxHoles = 50
	}
	coreK := w.ScaledCoreK()
	filters := deploy.TopDegree(w.Graph, coreK)
	if cfg.Filters != nil {
		filters = *cfg.Filters
	}
	probes := detect.TopDegreeProbes(w.Graph, coreK)
	if cfg.Probes != nil {
		probes = *cfg.Probes
	}
	attacks, err := detect.GenerateAttacksOfKind(w.Graph.TransitNodes(), cfg.Attacks, cfg.Kind, rngFor(cfg.Seed, "attacks"))
	if err != nil {
		return nil, fmt.Errorf("hole analysis: %w", err)
	}
	mechs := cfg.Mechs
	if mechs == 0 {
		mechs = core.MechROV
	}
	return &holeStudy{
		cfg:     cfg,
		attacks: attacks,
		def:     mechs.Deploy(filters.Blocked(w.Graph.N())),
		mechs:   mechs,
		probes:  probes,
		filters: filters,
	}, nil
}

// matrix flattens the study into a single-group workload.
func (s *holeStudy) matrix(w *World) sweep.Matrix {
	return sweep.Matrix{
		Groups: 1,
		Size:   func(int) int { return len(s.attacks) },
		Policy: func(int) *core.Policy { return w.Policy },
		Job:    func(_, k int) (core.Attack, core.Defense) { return s.attacks[k], s.def },
	}
}

// extract compresses one transient outcome into a HoleRecord: success,
// detection, and — for holes only — the per-probe miss classification.
func (s *holeStudy) extract(w *World) func(g, k int, o *core.Outcome) HoleRecord {
	return func(_, k int, o *core.Outcome) HoleRecord {
		rec := HoleRecord{Pollution: o.PollutedCount()}
		if rec.Pollution >= s.cfg.MinPollution {
			rec.Succeeded = true
			for _, p := range s.probes.Probes {
				if o.Polluted(p) {
					rec.Triggered = true
					break
				}
			}
			if !rec.Triggered {
				rec.Why = explainMisses(w, o, s.attacks[k], s.def, s.probes.Probes)
			}
		}
		return rec
	}
}

// reduce returns the result skeleton plus the streaming reducer that
// builds it from the in-order record stream — counts, histograms, and the
// hole list accumulate attack by attack (identical to the pre-kernel
// serial loop), and Finish ranks and truncates the holes.
func (s *holeStudy) reduce(w *World) (*HoleResult, sweep.Reducer[HoleRecord]) {
	title := fmt.Sprintf("Deployment holes: filters %q vs probes %q",
		s.filters.Name, s.probes.Name)
	if s.cfg.Kind != core.KindOrigin || s.mechs != core.MechROV {
		title = fmt.Sprintf("Deployment holes (%s attacks, %s deployed): filters %q vs probes %q",
			s.cfg.Kind, s.mechs, s.filters.Name, s.probes.Name)
	}
	res := &HoleResult{
		Title: title,
		Attacks:           s.cfg.Attacks,
		AttackerDepthHist: make(map[int]int),
		ReasonTotals:      make(map[MissReason]int),
		MinPollution:      s.cfg.MinPollution,
	}
	return res, sweep.ReduceFunc[HoleRecord]{
		EmitFn: func(i int, rec HoleRecord) {
			if !rec.Succeeded {
				return
			}
			res.Succeeded++
			if rec.Triggered {
				return
			}
			res.Undetected++
			at := s.attacks[i]
			hole := Hole{
				Attacker:       at.Attacker,
				Target:         at.Target,
				Pollution:      rec.Pollution,
				AttackerDepth:  w.Class.Depth[at.Attacker],
				AttackerDegree: w.Graph.Degree(at.Attacker),
				WhyMissed:      rec.Why,
			}
			res.AttackerDepthHist[hole.AttackerDepth]++
			for r, n := range hole.WhyMissed {
				res.ReasonTotals[r] += n
			}
			res.Holes = append(res.Holes, hole)
		},
		FinishFn: func() {
			sort.Slice(res.Holes, func(i, j int) bool {
				if res.Holes[i].Pollution != res.Holes[j].Pollution {
					return res.Holes[i].Pollution > res.Holes[j].Pollution
				}
				return res.Holes[i].Attacker < res.Holes[j].Attacker
			})
			if len(res.Holes) > s.cfg.MaxHoles {
				res.Holes = res.Holes[:s.cfg.MaxHoles]
			}
		},
	}
}

// HoleAnalysis runs the future-work experiment as one streaming matrix
// pass: per-attack records are extracted on the workers and reduced in
// workload order, with no per-attack observation buffer.
func HoleAnalysis(w *World, cfg HoleConfig) (*HoleResult, error) {
	s, err := newHoleStudy(w, cfg)
	if err != nil {
		return nil, err
	}
	res, red := s.reduce(w)
	if err := sweep.RunMatrixReduce(s.matrix(w), sweep.MatrixOptions{Workers: cfg.Workers}, s.extract(w), red); err != nil {
		return nil, fmt.Errorf("hole analysis: %w", err)
	}
	return res, nil
}

// explainMisses classifies, for each probe, why it did not select the
// bogus route in the converged outcome.
func explainMisses(w *World, o *core.Outcome, at core.Attack, def core.Defense, probes []int) map[MissReason]int {
	reasons := make(map[MissReason]int)
	g := w.Graph
	for _, p := range probes {
		if o.Origin(p) == core.OriginAttacker {
			continue // triggered probes are not misses (cannot happen for holes)
		}
		// Find the best bogus offer the probe actually received: neighbors
		// whose selected route leads to the attacker and whose export
		// rules reach the probe.
		bestClass := core.ClassNone
		bestDist := int16(0)
		nbrs, rels := g.Neighbors(p)
		for k, nb := range nbrs {
			v := int(nb)
			if o.Origin(v) != core.OriginAttacker || int32(p) == o.NextHop(v) {
				continue
			}
			// v exports to p if p is v's customer, or v's route is
			// customer/origin class (valley-free export).
			exported := false
			switch rels[k] {
			case topology.RelProvider: // v is p's provider → p is v's customer
				exported = true
			default:
				exported = o.Class(v) == core.ClassOrigin || o.Class(v) == core.ClassCustomer
			}
			if !exported {
				continue
			}
			// The class this offer would have at p.
			var offerClass core.RouteClass
			switch rels[k] {
			case topology.RelCustomer:
				offerClass = core.ClassCustomer
			case topology.RelPeer:
				offerClass = core.ClassPeer
			default:
				offerClass = core.ClassProvider
			}
			d := o.Dist(v) + 1
			if bestClass == core.ClassNone || offerClass < bestClass ||
				offerClass == bestClass && d < bestDist {
				bestClass, bestDist = offerClass, d
			}
		}
		switch {
		case bestClass == core.ClassNone:
			reasons[MissNeverReached]++
		case core.FiltersImport(w.Policy, at, def, p):
			reasons[MissFiltered]++
		case !o.HasRoute(p):
			// Received an offer yet routeless cannot happen in a converged
			// state; classify defensively.
			reasons[MissNeverReached]++
		default:
			selClass, selDist := o.Class(p), o.Dist(p)
			tier1 := w.Policy.IsTier1(p) && w.Policy.Tier1ShortestPath()
			switch {
			case !tier1 && selClass < bestClass:
				reasons[MissLocalPref]++
			case selDist < bestDist:
				reasons[MissShorterPath]++
			case tier1 && selDist == bestDist && selClass < bestClass:
				reasons[MissLocalPref]++
			default:
				reasons[MissTieBreak]++
			}
		}
	}
	return reasons
}

// WriteText renders the hole analysis.
func (r *HoleResult) WriteText(out io.Writer, asnOf func(node int) string) error {
	fmt.Fprintf(out, "%s\n", r.Title)
	fmt.Fprintf(out, "workload %d attacks; %d succeed (pollution ≥ %d) despite filters; %d of those escape detection\n\n",
		r.Attacks, r.Succeeded, r.MinPollution, r.Undetected)
	if len(r.Holes) == 0 {
		fmt.Fprintln(out, "no holes: every successful attack was seen by at least one probe")
		return nil
	}
	fmt.Fprintln(out, "attacker depth histogram of holes:")
	for _, d := range xmaps.SortedKeys(r.AttackerDepthHist) {
		fmt.Fprintf(out, "  depth %d: %d holes\n", d, r.AttackerDepthHist[d])
	}
	fmt.Fprintln(out, "\nwhy probes stayed blind (per-probe reasons over all holes):")
	for _, reason := range []MissReason{MissNeverReached, MissFiltered, MissLocalPref, MissShorterPath, MissTieBreak} {
		if n := r.ReasonTotals[reason]; n > 0 {
			fmt.Fprintf(out, "  %-24s %d\n", reason, n)
		}
	}
	fmt.Fprintln(out, "\nworst holes:")
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "attacker\ttarget\tpollution\tattacker depth\tattacker degree")
	max := len(r.Holes)
	if max > 10 {
		max = 10
	}
	for _, h := range r.Holes[:max] {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\n",
			asnOf(h.Attacker), asnOf(h.Target), h.Pollution, h.AttackerDepth, h.AttackerDegree)
	}
	return tw.Flush()
}
