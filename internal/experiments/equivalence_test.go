package experiments

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"runtime"
	"sort"
	"testing"

	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/deploy"
	"github.com/bgpsim/bgpsim/internal/detect"
	"github.com/bgpsim/bgpsim/internal/hijack"
)

// These tests pin the sweep-runtime refactor: every experiment runner that
// moved from a private serial solve loop onto the shared kernel must
// produce byte-identical results at any worker count, and — where a serial
// reference survives below — identical to the pre-refactor implementation.

// serialHoleReference is the pre-kernel HoleAnalysis solve loop, kept as
// the equivalence oracle (defaults resolved by the caller).
func serialHoleReference(t *testing.T, w *World, cfg HoleConfig) *HoleResult {
	t.Helper()
	filters := *cfg.Filters
	probes := *cfg.Probes
	attacks, err := detect.GenerateAttacks(w.Graph.TransitNodes(), cfg.Attacks, rngFor(cfg.Seed, "attacks"))
	if err != nil {
		t.Fatal(err)
	}
	blocked := filters.Blocked(w.Graph.N())
	solver := core.NewSolver(w.Policy)
	res := &HoleResult{
		Attacks:           cfg.Attacks,
		AttackerDepthHist: make(map[int]int),
		ReasonTotals:      make(map[MissReason]int),
		MinPollution:      cfg.MinPollution,
	}
	for _, at := range attacks {
		o, err := solver.Solve(at, blocked)
		if err != nil {
			t.Fatal(err)
		}
		pollution := o.PollutedCount()
		if pollution < cfg.MinPollution {
			continue
		}
		res.Succeeded++
		triggered := false
		for _, p := range probes.Probes {
			if o.Polluted(p) {
				triggered = true
				break
			}
		}
		if triggered {
			continue
		}
		res.Undetected++
		hole := Hole{
			Attacker:       at.Attacker,
			Target:         at.Target,
			Pollution:      pollution,
			AttackerDepth:  w.Class.Depth[at.Attacker],
			AttackerDegree: w.Graph.Degree(at.Attacker),
			WhyMissed:      explainMisses(w, o, at, core.RovOnly(blocked), probes.Probes),
		}
		res.AttackerDepthHist[hole.AttackerDepth]++
		for r, n := range hole.WhyMissed {
			res.ReasonTotals[r] += n
		}
		res.Holes = append(res.Holes, hole)
	}
	sort.Slice(res.Holes, func(i, j int) bool {
		if res.Holes[i].Pollution != res.Holes[j].Pollution {
			return res.Holes[i].Pollution > res.Holes[j].Pollution
		}
		return res.Holes[i].Attacker < res.Holes[j].Attacker
	})
	return res
}

func holeDigest(r *HoleResult) [sha256.Size]byte {
	h := sha256.New()
	wr := func(v int64) { binary.Write(h, binary.BigEndian, v) } //nolint:errcheck // hash.Hash cannot fail
	wr(int64(r.Attacks))
	wr(int64(r.Succeeded))
	wr(int64(r.Undetected))
	wr(int64(r.MinPollution))
	// Hash maps in deterministic key order.
	for d := 0; d < 64; d++ {
		if n, ok := r.AttackerDepthHist[d]; ok {
			wr(int64(d))
			wr(int64(n))
		}
	}
	for _, reason := range []MissReason{MissNeverReached, MissFiltered, MissLocalPref, MissShorterPath, MissTieBreak} {
		wr(int64(r.ReasonTotals[reason]))
	}
	for _, hole := range r.Holes {
		wr(int64(hole.Attacker))
		wr(int64(hole.Target))
		wr(int64(hole.Pollution))
		wr(int64(hole.AttackerDepth))
		wr(int64(hole.AttackerDegree))
		for _, reason := range []MissReason{MissNeverReached, MissFiltered, MissLocalPref, MissShorterPath, MissTieBreak} {
			wr(int64(hole.WhyMissed[reason]))
		}
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

func detectionDigest(r *DetectionResult) [sha256.Size]byte {
	h := sha256.New()
	wr := func(v int64) { binary.Write(h, binary.BigEndian, v) } //nolint:errcheck // hash.Hash cannot fail
	wr(int64(r.Attacks))
	for _, c := range r.Cases {
		for _, p := range c.Result.ProbeSet.Probes {
			wr(int64(p))
		}
		for _, n := range c.Result.TriggerHist {
			wr(int64(n))
		}
		for _, m := range c.Result.MeanPollutionByTriggers {
			wr(int64(math.Float64bits(m)))
		}
		for _, m := range c.Result.Misses {
			wr(int64(m.Attacker))
			wr(int64(m.Target))
			wr(int64(m.Pollution))
		}
		for _, m := range c.TopMisses {
			wr(int64(m.Attacker))
			wr(int64(m.Target))
			wr(int64(m.Pollution))
		}
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

func deploymentDigest(r *DeploymentResult) [sha256.Size]byte {
	h := sha256.New()
	wr := func(v int64) { binary.Write(h, binary.BigEndian, v) } //nolint:errcheck // hash.Hash cannot fail
	wr(int64(r.Target.Node))
	for _, e := range r.Rungs {
		for _, n := range e.Strategy.Nodes {
			wr(int64(n))
		}
		wr(int64(e.Result.Target))
		for _, a := range e.Result.Attackers {
			wr(int64(a))
		}
		for _, p := range e.Result.Pollution {
			wr(int64(p))
		}
		for _, w := range e.Result.WeightFrac {
			wr(int64(math.Float64bits(w)))
		}
	}
	for _, a := range append(append([]hijack.AttackerStat(nil), r.Residual...), r.ResidualOutsiders...) {
		wr(int64(a.Attacker))
		wr(int64(a.Pollution))
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// TestHoleAnalysisSerialEquivalence: kernel-backed HoleAnalysis must match
// the serial reference digest-for-digest at workers 1 and 4.
func TestHoleAnalysisSerialEquivalence(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	w := world(t)
	// Pin every default explicitly so the serial reference and the runner
	// evaluate one identical configuration.
	coreK := 62 * w.Graph.N() / 42697
	if coreK < len(w.Class.Tier1)+3 {
		coreK = len(w.Class.Tier1) + 3
	}
	fl := deploy.TopDegree(w.Graph, coreK)
	pr := detect.TopDegreeProbes(w.Graph, coreK)
	minPollution := w.Graph.N() / 100
	if minPollution < 5 {
		minPollution = 5
	}
	cfg := HoleConfig{
		Attacks:      300,
		Seed:         11,
		MinPollution: minPollution,
		Filters:      &fl,
		Probes:       &pr,
		MaxHoles:     1 << 30, // digest the full hole list, not a truncation
	}
	want := holeDigest(serialHoleReference(t, w, cfg))
	for _, workers := range []int{1, 4} {
		run := cfg
		run.Workers = workers
		got, err := HoleAnalysis(w, run)
		if err != nil {
			t.Fatal(err)
		}
		if d := holeDigest(got); d != want {
			t.Errorf("workers=%d: hole digest %x != serial reference %x", workers, d[:8], want[:8])
		}
	}
}

// TestFig7WorkerInvariance: the full Figure 7 panel must be bit-identical
// at workers 1 and 4.
func TestFig7WorkerInvariance(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	w := world(t)
	var want [sha256.Size]byte
	for i, workers := range []int{1, 4} {
		r, err := Fig7(w, DetectionConfig{Attacks: 300, Seed: 9, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		d := detectionDigest(r)
		if i == 0 {
			want = d
		} else if d != want {
			t.Errorf("fig7 workers=%d digest %x != workers=1 %x", workers, d[:8], want[:8])
		}
	}
}

// TestFig5WorkerInvariance: the deployment-ladder panel (rungs flattened
// across one worker pool) must be bit-identical at workers 1 and 4.
func TestFig5WorkerInvariance(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	w := world(t)
	var want [sha256.Size]byte
	for i, workers := range []int{1, 4} {
		r, err := Fig5(w, DeploymentConfig{AttackerSample: 120, Seed: 7, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		d := deploymentDigest(r)
		if i == 0 {
			want = d
		} else if d != want {
			t.Errorf("fig5 workers=%d digest %x != workers=1 %x", workers, d[:8], want[:8])
		}
	}
}
