package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/deploy"
	"github.com/bgpsim/bgpsim/internal/hijack"
	"github.com/bgpsim/bgpsim/internal/sweep"
	"github.com/bgpsim/bgpsim/internal/viz"
)

// DeploymentResult is one Figure 5/6 panel: the strategy ladder evaluated
// against one target, plus the residual-attack table for the strongest
// deployment (the paper's "top 5 still-potent attacks").
type DeploymentResult struct {
	Title  string
	Target Target
	Rungs  []deploy.Evaluation
	// Residual ranks all attacks surviving the strongest rung; attackers
	// that are themselves deployers are flagged.
	Residual []hijack.AttackerStat
	// ResidualOutsiders ranks only attacks from non-deploying ASes — the
	// paper's threat model, where a deployer is assumed trustworthy.
	ResidualOutsiders []hijack.AttackerStat
}

// DeploymentConfig tunes the ladder evaluation.
type DeploymentConfig struct {
	// AttackerSample caps the transit-attacker population (0 = all).
	AttackerSample int
	// Seed drives attacker sampling and random-deployment choice.
	Seed int64
	// ResidualTop is the residual-attack table size (default 5).
	ResidualTop int
	// Kind selects the attack scenario the ladder defends against (zero
	// = exact-origin hijack, the paper's model).
	Kind core.AttackKind
	// Mechs selects which mechanisms each rung deploys at its node set
	// (zero = ROV origin validation, the paper's model).
	Mechs core.DefenseMech
	// Workers bounds solve parallelism (0 = GOMAXPROCS); results are
	// bit-identical at any worker count.
	Workers int
}

func (c DeploymentConfig) withDefaults() DeploymentConfig {
	if c.ResidualTop == 0 {
		c.ResidualTop = 5
	}
	if c.Mechs == 0 {
		c.Mechs = core.MechROV
	}
	return c
}

// Fig5 reproduces Figure 5: incremental defense deployment against the
// relatively attack-resistant depth-1 target (the paper's AS98).
func Fig5(w *World, cfg DeploymentConfig) (*DeploymentResult, error) {
	t, title, err := fig5Panel(w)
	if err != nil {
		return nil, err
	}
	return deploymentPanel(w, cfg, t, title)
}

// Fig6 reproduces Figure 6: the same ladder against the very vulnerable
// deep target (the paper's AS55857).
func Fig6(w *World, cfg DeploymentConfig) (*DeploymentResult, error) {
	t, title, err := fig6Panel(w)
	if err != nil {
		return nil, err
	}
	return deploymentPanel(w, cfg, t, title)
}

func fig5Panel(w *World) (Target, string, error) {
	node, ok := w.Depth1Target()
	if !ok {
		return Target{}, "", fmt.Errorf("fig5: no depth-1 target")
	}
	t := Target{Name: "depth-1 stub (AS98 analog)", Node: node, Depth: w.Class.Depth[node]}
	return t, "Figure 5: incremental filtering, resistant target", nil
}

func fig6Panel(w *World) (Target, string, error) {
	node, ok := w.DeepTarget()
	if !ok {
		return Target{}, "", fmt.Errorf("fig6: no deep target")
	}
	t := Target{
		Name:  fmt.Sprintf("depth-%d stub (AS55857 analog)", w.Class.Depth[node]),
		Node:  node,
		Depth: w.Class.Depth[node],
	}
	return t, "Figure 6: incremental filtering, vulnerable target", nil
}

// deploymentStudy is one prepared Figure 5/6 panel: the defaulted config
// plus the derived attacker sample and strategy ladder, so full, shard,
// and merge runs all solve the same workload.
type deploymentStudy struct {
	cfg       DeploymentConfig
	target    Target
	title     string
	attackers []int
	ladder    []deploy.Strategy
}

func newDeploymentStudy(w *World, cfg DeploymentConfig, target Target, title string) *deploymentStudy {
	cfg = cfg.withDefaults()
	return &deploymentStudy{
		cfg:       cfg,
		target:    target,
		title:     title,
		attackers: SampleAttackers(w.Graph.TransitNodes(), cfg.AttackerSample, rngFor(cfg.Seed, "attackers")),
		ladder:    deploy.PaperLadder(w.Graph, w.Class, cfg.Seed),
	}
}

// workload flattens the ladder into the hijack matrix a full run solves.
func (s *deploymentStudy) workload(w *World) (*hijack.Workload, error) {
	return hijack.NewWorkload(w.Policy,
		deploy.ConfigsScenario(w.Policy, s.target.Node, s.attackers, s.ladder, s.cfg.Kind, s.cfg.Mechs))
}

// assemble derives the residual-attack tables from the strongest rung.
func (s *deploymentStudy) assemble(w *World, evals []deploy.Evaluation) *DeploymentResult {
	last := evals[len(evals)-1]
	residual := last.ResidualAttacks(len(s.attackers), w.Graph, w.Class)
	var outsiders []hijack.AttackerStat
	for _, a := range residual {
		if !a.Deployed && len(outsiders) < s.cfg.ResidualTop {
			outsiders = append(outsiders, a)
		}
	}
	if len(residual) > s.cfg.ResidualTop {
		residual = residual[:s.cfg.ResidualTop]
	}
	return &DeploymentResult{
		Title:             s.title,
		Target:            s.target,
		Rungs:             evals,
		Residual:          residual,
		ResidualOutsiders: outsiders,
	}
}

func deploymentPanel(w *World, cfg DeploymentConfig, target Target, title string) (*DeploymentResult, error) {
	s := newDeploymentStudy(w, cfg, target, title)
	results, err := hijack.SweepMatrix(w.Policy,
		deploy.ConfigsScenario(w.Policy, target.Node, s.attackers, s.ladder, s.cfg.Kind, s.cfg.Mechs),
		sweep.MatrixOptions{Workers: s.cfg.Workers})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", title, err)
	}
	return s.assemble(w, deploy.Evaluations(s.ladder, results)), nil
}

// WriteText renders the ladder summary plus the residual-attack table.
func (r *DeploymentResult) WriteText(out io.Writer) error {
	fmt.Fprintf(out, "%s\ntarget: %s\n\n", r.Title, r.Target.Name)
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "strategy\tmean polluted\tmax\tattacks ≥10%\tattacks ≥25%")
	n := 0
	for _, e := range r.Rungs {
		if e.Result.Summary().N > n {
			n = e.Result.Summary().N
		}
	}
	tenPct := r.totalASes() / 10
	quarter := r.totalASes() / 4
	for _, e := range r.Rungs {
		s := e.Result.Summary()
		fmt.Fprintf(tw, "%s\t%.1f\t%d\t%d\t%d\n",
			e.Strategy.Name, s.Mean, s.Max,
			e.Result.CountAttacksAtLeast(tenPct),
			e.Result.CountAttacksAtLeast(quarter))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(out, "\ntop residual attacks under %s:\n", r.Rungs[len(r.Rungs)-1].Strategy.Name)
	tw = tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ASN\tpollution\tdegree\tdepth\tnote")
	for _, a := range r.Residual {
		note := ""
		if a.Deployed {
			note = "deployer-turned-attacker"
		}
		fmt.Fprintf(tw, "%v\t%d\t%d\t%d\t%s\n", a.ASN, a.Pollution, a.Degree, a.Depth, note)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if len(r.ResidualOutsiders) > 0 {
		fmt.Fprintln(out, "\ntop residual attacks from non-deployers (the paper's threat model):")
		tw = tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "ASN\tpollution\tdegree\tdepth")
		for _, a := range r.ResidualOutsiders {
			fmt.Fprintf(tw, "%v\t%d\t%d\t%d\n", a.ASN, a.Pollution, a.Degree, a.Depth)
		}
		return tw.Flush()
	}
	return nil
}

// totalASes estimates the AS population from the first rung's sweep
// metadata (attackers + target + 1 is close enough for threshold rows; the
// graph size is authoritative when available through Rungs' outcomes).
func (r *DeploymentResult) totalASes() int {
	if len(r.Rungs) == 0 {
		return 0
	}
	// Attack counts cap at n-2, so infer from the undefended max.
	max := r.Rungs[0].Result.Summary().Max
	if max <= 0 {
		return len(r.Rungs[0].Result.Attackers) + 2
	}
	return max
}

// RenderSVG draws the ladder as the paper's Figure 5/6 CCDF chart: one
// curve per deployment strategy.
func (r *DeploymentResult) RenderSVG(out io.Writer) error {
	series := make([]viz.ChartSeries, 0, len(r.Rungs))
	for _, e := range r.Rungs {
		series = append(series, viz.ChartSeries{
			Name:   e.Strategy.Name,
			Points: e.Result.CCDF(),
		})
	}
	return viz.RenderCCDFChart(out, series, viz.ChartOptions{
		Title:  r.Title + " — " + r.Target.Name,
		XLabel: "minimum number of polluted ASes",
		YLabel: "attacks achieving at least X",
	})
}

// CrossoverIndex returns the index of the first ladder rung that cuts the
// baseline mean pollution by at least `factor` (e.g. 4.0 = 75 % reduction),
// or -1 — a quantitative handle on the paper's "non-linear threshold in
// which small security improvements shift into large security gains".
func (r *DeploymentResult) CrossoverIndex(factor float64) int {
	if len(r.Rungs) == 0 {
		return -1
	}
	base := r.Rungs[0].Result.Summary().Mean
	if base == 0 {
		return -1
	}
	for i, e := range r.Rungs[1:] {
		if e.Result.Summary().Mean <= base/factor {
			return i + 1
		}
	}
	return -1
}
