package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/deploy"
	"github.com/bgpsim/bgpsim/internal/stats"
)

// SubPrefixResult contrasts exact-prefix origin hijacks with sub-prefix
// hijacks under the same deployment ladder. The paper names sub-prefix
// attacks repeatedly ("an origin or sub-prefix hijack is detected…",
// "some origin and sub-prefix attacks will still get through") but
// evaluates only the origin kind; this experiment quantifies the
// difference: a sub-prefix announcement wins longest-prefix-match
// forwarding everywhere it propagates, so LOCAL_PREF offers no passive
// protection and only origin-validation filters contain it.
type SubPrefixResult struct {
	Title  string
	Target Target
	Rows   []SubPrefixRow
}

// SubPrefixRow is one deployment rung's pair of sweeps.
type SubPrefixRow struct {
	Strategy  deploy.Strategy
	Origin    stats.Summary // exact-prefix origin hijack pollution
	SubPrefix stats.Summary // sub-prefix hijack pollution
}

// SubPrefixStudy sweeps the deep target with both attack kinds under a
// compact deployment ladder.
func SubPrefixStudy(w *World, cfg DeploymentConfig) (*SubPrefixResult, error) {
	cfg = cfg.withDefaults()
	node, ok := w.DeepTarget()
	if !ok {
		return nil, fmt.Errorf("subprefix study: no deep target")
	}
	target := Target{
		Name:  fmt.Sprintf("depth-%d stub", w.Class.Depth[node]),
		Node:  node,
		Depth: w.Class.Depth[node],
	}
	attackers := SampleAttackers(w.Graph.TransitNodes(), cfg.AttackerSample, rngFor(cfg.Seed))
	coreK := 62 * w.Graph.N() / 42697
	if coreK < len(w.Class.Tier1)+3 {
		coreK = len(w.Class.Tier1) + 3
	}
	ladder := []deploy.Strategy{
		deploy.None(),
		deploy.Tier1(w.Class),
		deploy.TopDegree(w.Graph, coreK),
		deploy.TopDegree(w.Graph, 4*coreK),
	}
	res := &SubPrefixResult{
		Title:  "Sub-prefix vs origin hijacks under incremental filtering",
		Target: target,
	}
	solver := core.NewSolver(w.Policy)
	for _, st := range ladder {
		blocked := st.Blocked(w.Graph.N())
		var origin, sub []int
		for _, a := range attackers {
			if a == target.Node {
				continue
			}
			oo, err := solver.Solve(core.Attack{Target: target.Node, Attacker: a}, blocked)
			if err != nil {
				return nil, fmt.Errorf("subprefix study: %w", err)
			}
			origin = append(origin, oo.PollutedCount())
			os, err := solver.Solve(core.Attack{Target: target.Node, Attacker: a, SubPrefix: true}, blocked)
			if err != nil {
				return nil, fmt.Errorf("subprefix study: %w", err)
			}
			sub = append(sub, os.PollutedCount())
		}
		res.Rows = append(res.Rows, SubPrefixRow{
			Strategy:  st,
			Origin:    stats.Summarize(origin),
			SubPrefix: stats.Summarize(sub),
		})
	}
	return res, nil
}

// WriteText renders the comparison.
func (r *SubPrefixResult) WriteText(out io.Writer) error {
	fmt.Fprintf(out, "%s\ntarget: %s\n\n", r.Title, r.Target.Name)
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "strategy\torigin-hijack mean\tsubprefix mean\tsubprefix max")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%d\n",
			row.Strategy.Name, row.Origin.Mean, row.SubPrefix.Mean, row.SubPrefix.Max)
	}
	return tw.Flush()
}
