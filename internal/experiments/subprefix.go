package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/deploy"
	"github.com/bgpsim/bgpsim/internal/stats"
	"github.com/bgpsim/bgpsim/internal/sweep"
)

// SubPrefixResult contrasts exact-prefix origin hijacks with sub-prefix
// hijacks under the same deployment ladder. The paper names sub-prefix
// attacks repeatedly ("an origin or sub-prefix hijack is detected…",
// "some origin and sub-prefix attacks will still get through") but
// evaluates only the origin kind; this experiment quantifies the
// difference: a sub-prefix announcement wins longest-prefix-match
// forwarding everywhere it propagates, so LOCAL_PREF offers no passive
// protection and only origin-validation filters contain it.
type SubPrefixResult struct {
	Title  string
	Target Target
	Rows   []SubPrefixRow
}

// SubPrefixRow is one deployment rung's pair of sweeps.
type SubPrefixRow struct {
	Strategy  deploy.Strategy
	Origin    stats.Summary // exact-prefix origin hijack pollution
	SubPrefix stats.Summary // sub-prefix hijack pollution
}

// SubPrefixStudy sweeps the deep target with both attack kinds under a
// compact deployment ladder.
func SubPrefixStudy(w *World, cfg DeploymentConfig) (*SubPrefixResult, error) {
	cfg = cfg.withDefaults()
	node, ok := w.DeepTarget()
	if !ok {
		return nil, fmt.Errorf("subprefix study: no deep target")
	}
	target := Target{
		Name:  fmt.Sprintf("depth-%d stub", w.Class.Depth[node]),
		Node:  node,
		Depth: w.Class.Depth[node],
	}
	attackers := SampleAttackers(w.Graph.TransitNodes(), cfg.AttackerSample, rngFor(cfg.Seed, "attackers"))
	att := make([]int, 0, len(attackers))
	for _, a := range attackers {
		if a != target.Node {
			att = append(att, a)
		}
	}
	coreK := w.ScaledCoreK()
	ladder := []deploy.Strategy{
		deploy.None(),
		deploy.Tier1(w.Class),
		deploy.TopDegree(w.Graph, coreK),
		deploy.TopDegree(w.Graph, 4*coreK),
	}
	res := &SubPrefixResult{
		Title:  "Sub-prefix vs origin hijacks under incremental filtering",
		Target: target,
	}
	// One matrix group per rung, perRung cells each: even in-group indices
	// are exact-prefix attacks, odd ones sub-prefix — the same cell order
	// as the old flattened run. Each completed rung is summarized from one
	// reused pair of scratch buffers and dropped, so the ladder's memory
	// is O(attackers), not O(rungs × attackers).
	blockeds := make([]*asn.IndexSet, len(ladder))
	for r, st := range ladder {
		blockeds[r] = st.Blocked(w.Graph.N())
	}
	perRung := 2 * len(att)
	m := sweep.Matrix{
		Groups: len(ladder),
		Size:   func(int) int { return perRung },
		Policy: func(int) *core.Policy { return w.Policy },
		Job: func(r, rem int) (core.Attack, core.Defense) {
			return core.Attack{
				Target:    target.Node,
				Attacker:  att[rem/2],
				SubPrefix: rem%2 == 1,
			}, core.RovOnly(blockeds[r])
		},
	}
	sizes := make([]int, len(ladder))
	for r := range sizes {
		sizes[r] = perRung
	}
	var origin, sub []int
	red := sweep.Groups[int](sizes, func(r int, pollution []int) {
		origin, sub = origin[:0], sub[:0]
		for j := 0; j < len(pollution); j += 2 {
			origin = append(origin, pollution[j])
			sub = append(sub, pollution[j+1])
		}
		res.Rows = append(res.Rows, SubPrefixRow{
			Strategy:  ladder[r],
			Origin:    stats.Summarize(origin),
			SubPrefix: stats.Summarize(sub),
		})
	}, nil)
	err := sweep.RunMatrixReduce(m, sweep.MatrixOptions{Workers: cfg.Workers},
		func(_, _ int, o *core.Outcome) int { return o.PollutedCount() }, red)
	if err != nil {
		return nil, fmt.Errorf("subprefix study: %w", err)
	}
	return res, nil
}

// WriteText renders the comparison.
func (r *SubPrefixResult) WriteText(out io.Writer) error {
	fmt.Fprintf(out, "%s\ntarget: %s\n\n", r.Title, r.Target.Name)
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "strategy\torigin-hijack mean\tsubprefix mean\tsubprefix max")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%d\n",
			row.Strategy.Name, row.Origin.Mean, row.SubPrefix.Mean, row.SubPrefix.Max)
	}
	return tw.Flush()
}
