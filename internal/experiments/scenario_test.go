package experiments

import (
	"bytes"
	"strings"
	"testing"

	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/hijack"
	"github.com/bgpsim/bgpsim/internal/sweep"
)

// TestScenarioRanking sanity-checks the study's shape: one row per attack
// kind, one cell per (family × size) rung, and a ranking that orders the
// cells best-first.
func TestScenarioRanking(t *testing.T) {
	w := world(t)
	cfg := ScenarioRankingConfig{AttackerSample: 120, Seed: 5, Workers: 4}
	res, err := ScenarioRanking(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(core.Kinds()) {
		t.Fatalf("%d rows, want one per kind (%d)", len(res.Rows), len(core.Kinds()))
	}
	for _, row := range res.Rows {
		if len(row.Cells) != 9 { // 3 families × 3 sizes
			t.Fatalf("kind %s: %d cells, want 9", row.Kind, len(row.Cells))
		}
		ranked := row.Ranking()
		for i := 1; i < len(ranked); i++ {
			if ranked[i].Summary.Mean < ranked[i-1].Summary.Mean {
				t.Fatalf("kind %s: ranking not sorted at %d", row.Kind, i)
			}
		}
	}
	// The exact-origin row must have a positive undefended baseline, and
	// some deployment must improve on it.
	origin := res.Rows[0]
	if origin.Kind != core.KindOrigin || origin.Baseline.Mean <= 0 {
		t.Fatalf("origin baseline = %+v", origin.Baseline)
	}
	if best := origin.Ranking()[0]; best.Summary.Mean >= origin.Baseline.Mean {
		t.Errorf("no deployment beats the undefended baseline (best %.1f vs %.1f)",
			best.Summary.Mean, origin.Baseline.Mean)
	}
	var buf bytes.Buffer
	if err := res.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "best deployment for") {
		t.Error("WriteText lacks the per-scenario ranking line")
	}
}

// TestScenarioRankingWorkerInvariance is the scenario-axis acceptance
// criterion: the study's rendered output must be byte-identical across
// workers ∈ {1, 8} × shards ∈ {1, 3}, with sharded runs persisted to
// disk, read back, and merged in shuffled order.
func TestScenarioRankingWorkerInvariance(t *testing.T) {
	w := world(t)
	render := func(res *ScenarioRankingResult) string {
		var buf bytes.Buffer
		if err := res.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	ref := ""
	dir := t.TempDir()
	for _, workers := range []int{1, 8} {
		cfg := ScenarioRankingConfig{AttackerSample: 80, Seed: 5, Workers: workers}
		for _, shards := range []int{1, 3} {
			var res *ScenarioRankingResult
			var err error
			if shards == 1 {
				res, err = ScenarioRanking(w, cfg)
				if err != nil {
					t.Fatal(err)
				}
			} else {
				var files []*sweep.ShardFile[hijack.Record]
				for _, sh := range []int{2, 0, 1} {
					sf, err := ScenarioRankingShard(w, cfg, sweep.OneShard(sh, shards))
					if err != nil {
						t.Fatalf("shard %d: %v", sh, err)
					}
					files = append(files, shardRoundTrip(t, dir, sf))
				}
				res, err = ScenarioRankingMerge(w, cfg, files)
				if err != nil {
					t.Fatal(err)
				}
			}
			got := render(res)
			if ref == "" {
				ref = got
				continue
			}
			if got != ref {
				t.Errorf("workers=%d shards=%d: output diverges from reference", workers, shards)
			}
		}
	}
}
