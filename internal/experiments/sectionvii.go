package experiments

import (
	"fmt"
	"io"

	"github.com/bgpsim/bgpsim/internal/selfinterest"
	"github.com/bgpsim/bgpsim/internal/topology"
)

// SelfInterestConfig tunes the Section VII experiments.
type SelfInterestConfig struct {
	// OutsideSample is the number of attacks sampled from outside the
	// region (the paper ran 200).
	OutsideSample int
	// Seed drives the outside-attack sample.
	Seed int64
	// RehomeLevels is how far up the provider chain the target moves
	// (the paper re-homed "up two levels").
	RehomeLevels int
}

func (c SelfInterestConfig) withDefaults() SelfInterestConfig {
	if c.OutsideSample == 0 {
		c.OutsideSample = 200
	}
	if c.RehomeLevels == 0 {
		c.RehomeLevels = 2
	}
	return c
}

// SelfInterestResult bundles both Section VII experiments on one region.
type SelfInterestResult struct {
	Region     int
	RegionSize int
	TargetASN  string
	Rehome     *selfinterest.RehomeResult
	Filter     *selfinterest.FilterResult
	FilterASN  string
}

// SectionVII runs the paper's New Zealand case study against this world's
// island region: pick the deepest regional stub as the vulnerable target,
// (a) re-home it up the provider chain, (b) separately, place one filter
// at the regional hub; report regional pollution before and after each.
func SectionVII(w *World, cfg SelfInterestConfig) (*SelfInterestResult, error) {
	cfg = cfg.withDefaults()
	region, target, err := islandTarget(w)
	if err != nil {
		return nil, err
	}
	rehome, err := selfinterest.RehomeExperiment(
		w.Graph, w.Class, target, cfg.RehomeLevels, region, cfg.OutsideSample, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("section VII rehome: %w", err)
	}
	filter, err := selfinterest.FilterExperiment(w.Policy, target, region, cfg.OutsideSample, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("section VII filter: %w", err)
	}
	return &SelfInterestResult{
		Region:     region,
		RegionSize: len(w.Graph.RegionNodes(region)),
		TargetASN:  w.Graph.ASN(target).String(),
		Rehome:     rehome,
		Filter:     filter,
		FilterASN:  w.Graph.ASN(filter.FilterAS).String(),
	}, nil
}

// islandTarget locates the world's island region and its most vulnerable
// (deepest) stub.
func islandTarget(w *World) (region, target int, err error) {
	// The generator labels the island as the highest region id present.
	region = -1
	for i := 0; i < w.Graph.N(); i++ {
		if r := w.Graph.Region(i); r > region {
			region = r
		}
	}
	if region < 0 {
		return 0, 0, fmt.Errorf("section VII: topology has no regions")
	}
	bestDepth := -1
	for _, i := range w.Graph.RegionNodes(region) {
		if w.Graph.IsTransit(i) {
			continue
		}
		if d := w.Class.Depth[i]; d != topology.DepthUnreachable && d > bestDepth {
			bestDepth, target = d, i
		}
	}
	if bestDepth < 0 {
		return 0, 0, fmt.Errorf("section VII: island region %d has no stub", region)
	}
	return region, target, nil
}

// WriteText renders the Section VII before/after tables.
func (r *SelfInterestResult) WriteText(out io.Writer) error {
	fmt.Fprintf(out, "Section VII: pragmatic self-interest (island region %d, %d ASes, target %s)\n\n",
		r.Region, r.RegionSize, r.TargetASN)
	row := func(label string, m *selfinterest.RegionalResult) {
		fmt.Fprintf(out, "  %-28s inside attacks: mean %.1f region ASes (%.0f%%)   outside: mean %.1f (%.0f%%)\n",
			label, m.InsideMean, 100*m.InsideFrac, m.OutsideMean, 100*m.OutsideFrac)
	}
	fmt.Fprintf(out, "re-homing experiment (depth %d → %d):\n", r.Rehome.OldDepth, r.Rehome.NewDepth)
	row("before", r.Rehome.Before)
	row("after re-homing", r.Rehome.After)
	fmt.Fprintf(out, "\nregional filter experiment (filter at hub %s):\n", r.FilterASN)
	row("before", r.Filter.Base)
	row("with hub filter", r.Filter.Filtered)
	return nil
}
