package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestSubPrefixStudy(t *testing.T) {
	w := world(t)
	res, err := SubPrefixStudy(w, DeploymentConfig{AttackerSample: 80, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	base := res.Rows[0]
	// Undefended sub-prefix hijacks pollute (almost) everyone: no
	// LOCAL_PREF protection applies against a more-specific.
	if base.SubPrefix.Mean <= base.Origin.Mean {
		t.Errorf("undefended subprefix mean %.1f not above origin-hijack mean %.1f",
			base.SubPrefix.Mean, base.Origin.Mean)
	}
	if base.SubPrefix.Mean < 0.9*float64(w.Graph.N()) {
		t.Errorf("undefended subprefix mean %.1f should approach n=%d",
			base.SubPrefix.Mean, w.Graph.N())
	}
	// Core filtering must bite on both attack kinds.
	last := res.Rows[len(res.Rows)-1]
	if last.SubPrefix.Mean >= base.SubPrefix.Mean/2 {
		t.Errorf("core filters barely reduced subprefix pollution: %.1f → %.1f",
			base.SubPrefix.Mean, last.SubPrefix.Mean)
	}
	if last.Origin.Mean >= base.Origin.Mean/2 {
		t.Errorf("core filters barely reduced origin pollution: %.1f → %.1f",
			base.Origin.Mean, last.Origin.Mean)
	}
	var buf bytes.Buffer
	if err := res.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "subprefix mean") {
		t.Error("WriteText missing table header")
	}
}

func TestVulnerabilityRenderSVG(t *testing.T) {
	w := world(t)
	res, err := Fig2(w, VulnerabilityConfig{AttackerSample: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.RenderSVG(&buf); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	if !strings.HasPrefix(svg, "<svg") {
		t.Error("RenderSVG did not produce SVG")
	}
	if strings.Count(svg, "<path") < len(res.Curves) {
		t.Error("missing series paths")
	}
}

func TestSBGPStudy(t *testing.T) {
	w := world(t)
	res, err := SBGPStudy(w, DeploymentConfig{AttackerSample: 30, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Means) != 4 {
		t.Fatalf("means = %d modes", len(res.Means))
	}
	if res.ChainLen == 0 {
		t.Error("victim chain empty")
	}
	var buf bytes.Buffer
	if err := res.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "security 1st") {
		t.Error("WriteText missing mode rows")
	}
}

func TestDeploymentAndDetectionRenderSVG(t *testing.T) {
	w := world(t)
	dep, err := Fig6(w, DeploymentConfig{AttackerSample: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dep.RenderSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<svg") || strings.Count(buf.String(), "<path") < len(dep.Rungs) {
		t.Error("deployment chart incomplete")
	}

	det, err := Fig7(w, DetectionConfig{Attacks: 150, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := det.RenderSVG(&buf, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<rect") {
		t.Error("detection chart missing bars")
	}
	if err := det.RenderSVG(&buf, 99); err == nil {
		t.Error("out-of-range case accepted")
	}
}
