package experiments

// BenchmarkVulnerabilityReduction backs the BENCH_sweep.json comparison of
// the buffered reference against the streaming reducer: same workload,
// same curves, different reduction memory. bytes/op comes from -benchmem;
// peak RSS is sampled from the kernel per sub-benchmark (Linux only).

import (
	"bytes"
	"os"
	"strconv"
	"testing"

	"github.com/bgpsim/bgpsim/internal/topology"
)

// resetPeakRSS asks the kernel to reset the process high-water mark
// (VmHWM) to the current RSS, so each sub-benchmark measures its own
// peak. Best-effort: a non-Linux kernel just leaves the metric at the
// process-lifetime peak.
func resetPeakRSS() {
	os.WriteFile("/proc/self/clear_refs", []byte("5"), 0) //nolint:errcheck // best-effort, Linux-only
}

// peakRSSKB reads VmHWM from /proc/self/status; 0 if unavailable.
func peakRSSKB() float64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range bytes.Split(data, []byte("\n")) {
		if !bytes.HasPrefix(line, []byte("VmHWM:")) {
			continue
		}
		fields := bytes.Fields(line[len("VmHWM:"):])
		if len(fields) == 0 {
			return 0
		}
		kb, err := strconv.ParseFloat(string(fields[0]), 64)
		if err != nil {
			return 0
		}
		return kb
	}
	return 0
}

// BenchmarkVulnerabilityReduction runs the Figure 2 panel through the
// buffered reference and the streaming reducer. The streaming path must
// allocate strictly less per op (one reused pollution buffer instead of
// materialized per-curve result vectors).
func BenchmarkVulnerabilityReduction(b *testing.B) {
	w := world(b)
	cfg := VulnerabilityConfig{AttackerSample: 400, Seed: 3}
	b.Run("buffered", func(b *testing.B) {
		b.ReportAllocs()
		resetPeakRSS()
		for i := 0; i < b.N; i++ {
			if _, err := bufferedVulnerabilityPanel(w, cfg, topology.UnderTier1, "bench"); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(peakRSSKB(), "peakRSS-KB")
	})
	b.Run("streaming", func(b *testing.B) {
		b.ReportAllocs()
		resetPeakRSS()
		for i := 0; i < b.N; i++ {
			if _, err := Fig2(w, cfg); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(peakRSSKB(), "peakRSS-KB")
	})
}
