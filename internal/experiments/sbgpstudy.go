package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/sbgp"
	"github.com/bgpsim/bgpsim/internal/topology"
)

// SBGPResult is the partial-deployment path-security study: the same
// attacks and deployment evaluated under every security rank (the Lychev
// et al. §4 comparison the paper corroborates).
type SBGPResult struct {
	Title  string
	Target Target
	// DeployedCore is the size of the core deployment (the victim's
	// upstream chain is always added — without it no secure route exists).
	DeployedCore int
	ChainLen     int
	Means        map[core.SecureMode]float64
}

// SBGPStudy runs the mode comparison against the deep target with a
// scaled-62-core deployment plus the victim's provider chain.
func SBGPStudy(w *World, cfg DeploymentConfig) (*SBGPResult, error) {
	cfg = cfg.withDefaults()
	node, ok := w.DeepTarget()
	if !ok {
		return nil, fmt.Errorf("sbgp study: no deep target")
	}
	attackers := SampleAttackers(w.Graph.TransitNodes(), cfg.AttackerSample, rngFor(cfg.Seed, "attackers"))
	coreK := w.ScaledCoreK()
	deployed := append([]int(nil), topology.NodesByDegree(w.Graph)[:coreK]...)
	chain := providerChain(w, node)
	deployed = append(deployed, chain...)

	means, err := sbgp.CompareModes(w.Policy, node, attackers, deployed)
	if err != nil {
		return nil, fmt.Errorf("sbgp study: %w", err)
	}
	return &SBGPResult{
		Title: "S*BGP partial deployment: where security ranks in route selection",
		Target: Target{
			Name:  fmt.Sprintf("depth-%d stub", w.Class.Depth[node]),
			Node:  node,
			Depth: w.Class.Depth[node],
		},
		DeployedCore: coreK,
		ChainLen:     len(chain),
		Means:        means,
	}, nil
}

// providerChain walks the target's shortest provider chain to an anchor.
func providerChain(w *World, node int) []int {
	var chain []int
	cur := node
	for w.Class.Depth[cur] > 0 {
		next := -1
		nbrs, rels := w.Graph.Neighbors(cur)
		for k, nb := range nbrs {
			if rels[k] == topology.RelProvider && w.Class.Depth[nb] == w.Class.Depth[cur]-1 {
				if next == -1 || w.Graph.ASN(int(nb)) < w.Graph.ASN(next) {
					next = int(nb)
				}
			}
		}
		if next < 0 {
			break
		}
		chain = append(chain, next)
		cur = next
	}
	return chain
}

// WriteText renders the comparison table.
func (r *SBGPResult) WriteText(out io.Writer) error {
	fmt.Fprintf(out, "%s\ntarget: %s; core deployment %d ASes + %d-hop victim chain\n\n",
		r.Title, r.Target.Name, r.DeployedCore, r.ChainLen)
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "selection policy\tmean polluted")
	for _, mode := range []core.SecureMode{core.SecureOff, core.SecurityThird, core.SecuritySecond, core.SecurityFirst} {
		fmt.Fprintf(tw, "%s\t%.1f\n", sbgp.ModeName(mode), r.Means[mode])
	}
	return tw.Flush()
}
