package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/detect"
	"github.com/bgpsim/bgpsim/internal/viz"
)

// DetectionResult is the full Figure 7 panel: the same random attack
// workload evaluated against the paper's three probe configurations, plus
// the Section VI "top undetected attacks" tables.
type DetectionResult struct {
	Title   string
	Attacks int
	Cases   []DetectionCase
}

// DetectionCase is one probe configuration's outcome.
type DetectionCase struct {
	Result    *detect.Result
	TopMisses []detect.MissedAttack
}

// DetectionConfig tunes the Figure 7 reproduction.
type DetectionConfig struct {
	// Attacks is the workload size (paper: 8000). Default 2000.
	Attacks int
	// Seed drives workload generation and probe selection.
	Seed int64
	// BGPmonProbes is the case-2 probe count (paper: 24).
	BGPmonProbes int
	// TopMisses is the table size (default 5).
	TopMisses int
	// Semantics selects the detection model (default: SelectedRoute, as
	// in the paper).
	Semantics detect.Semantics
	// Kind selects the attack scenario evaluated (zero = exact-origin
	// hijack, the paper's model).
	Kind core.AttackKind
	// Defense is the prevention deployment the detectors run alongside
	// (zero = none, as in the paper's Section VI).
	Defense core.Defense
	// Workers bounds solve parallelism (0 = GOMAXPROCS); results are
	// bit-identical at any worker count.
	Workers int
}

func (c DetectionConfig) withDefaults() DetectionConfig {
	if c.Attacks == 0 {
		c.Attacks = 2000
	}
	if c.BGPmonProbes == 0 {
		c.BGPmonProbes = 24
	}
	if c.TopMisses == 0 {
		c.TopMisses = 5
	}
	return c
}

// detectionParts builds the Figure 7 workload: the paper's three probe
// configurations plus the shared random transit-pair attack list. cfg must
// already be defaulted; the same (world, config) pair always yields the
// same parts, which is what lets shard and merge runs rebuild the exact
// workload a full run would solve.
func detectionParts(w *World, cfg DetectionConfig) ([]detect.ProbeSet, []core.Attack, error) {
	transit := w.Graph.TransitNodes()
	attacks, err := detect.GenerateAttacksOfKind(transit, cfg.Attacks, cfg.Kind, rngFor(cfg.Seed, "attacks"))
	if err != nil {
		return nil, nil, err
	}
	// Case 3's probe count scales the paper's 62-of-42697 core.
	coreK := w.ScaledCoreK()
	sets := []detect.ProbeSet{
		detect.Tier1Probes(w.Class),
		detect.BGPmonLikeProbes(w.Graph, w.Class, cfg.BGPmonProbes, rngFor(cfg.Seed, "probes")),
		detect.TopDegreeProbes(w.Graph, coreK),
	}
	return sets, attacks, nil
}

// assembleDetection wraps the per-configuration results with their
// top-miss tables.
func assembleDetection(cfg DetectionConfig, results []*detect.Result) *DetectionResult {
	res := &DetectionResult{
		Title:   "Figure 7: detector configurations vs random transit attacks",
		Attacks: cfg.Attacks,
	}
	for _, r := range results {
		res.Cases = append(res.Cases, DetectionCase{
			Result:    r,
			TopMisses: r.TopMisses(cfg.TopMisses),
		})
	}
	return res
}

// Fig7 reproduces Figure 7 and the Section VI tables: three detector
// configurations — all tier-1s, a BGPmon-like volunteer set, and the
// high-degree core — against one shared random transit-pair workload.
func Fig7(w *World, cfg DetectionConfig) (*DetectionResult, error) {
	cfg = cfg.withDefaults()
	sets, attacks, err := detectionParts(w, cfg)
	if err != nil {
		return nil, fmt.Errorf("fig7: %w", err)
	}
	// One parallel pass: each attack is solved once and fanned out to all
	// three probe configurations (3× fewer solves than per-set evaluation).
	results, err := detect.EvaluateAll(w.Policy, sets, attacks, cfg.Semantics, cfg.Defense, cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("fig7: %w", err)
	}
	return assembleDetection(cfg, results), nil
}

// RenderSVG draws one Figure 7 panel (bars of attack counts per trigger
// bucket with the mean-pollution line) for the given case index.
func (r *DetectionResult) RenderSVG(out io.Writer, caseIdx int) error {
	if caseIdx < 0 || caseIdx >= len(r.Cases) {
		return fmt.Errorf("fig7 svg: case %d of %d", caseIdx, len(r.Cases))
	}
	c := r.Cases[caseIdx]
	return viz.RenderBarChart(out, c.Result.TriggerHist, c.Result.MeanPollutionByTriggers,
		viz.ChartOptions{
			Title:  "Figure 7 — " + c.Result.ProbeSet.Name,
			XLabel: "number of probes triggered",
		})
}

// WriteText renders the per-configuration summaries, trigger histograms,
// and top-miss tables.
func (r *DetectionResult) WriteText(out io.Writer, asnOf func(node int) string) error {
	fmt.Fprintf(out, "%s\nworkload: %d random attacks\n\n", r.Title, r.Attacks)
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "configuration\tprobes\tmissed\tmiss rate\tmiss mean pollution\tmiss max")
	for _, c := range r.Cases {
		mean, max := c.Result.MissSummary()
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.1f%%\t%.0f\t%d\n",
			c.Result.ProbeSet.Name, len(c.Result.ProbeSet.Probes),
			c.Result.MissCount(), 100*c.Result.MissRate(), mean, max)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, c := range r.Cases {
		fmt.Fprintf(out, "\n%s — attacks by number of probes triggered (count, mean pollution):\n",
			c.Result.ProbeSet.Name)
		hist := c.Result.TriggerHist
		step := 1
		if len(hist) > 16 {
			step = len(hist) / 16
		}
		for k := 0; k < len(hist); k += step {
			if hist[k] == 0 {
				continue
			}
			fmt.Fprintf(out, "  %3d probes: %5d attacks  avg pollution %.0f\n",
				k, hist[k], c.Result.MeanPollutionByTriggers[k])
		}
		if len(c.TopMisses) > 0 {
			fmt.Fprintln(out, "  top undetected attacks:")
			for _, m := range c.TopMisses {
				fmt.Fprintf(out, "    attacker %s → target %s  pollution %d\n",
					asnOf(m.Attacker), asnOf(m.Target), m.Pollution)
			}
		}
	}
	return nil
}
