package experiments

import (
	"fmt"
	"io"

	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/viz"
)

// PropagationResult is the Figure 1 study: a full engine run of one
// aggressive attack with per-generation statistics and renderable frames.
type PropagationResult struct {
	Title    string
	Target   int
	Attacker int

	Outcome *core.Outcome
	Trace   *core.Trace

	// PerGeneration[g-1] summarizes generation g.
	PerGeneration []GenerationStat
	// Polluted is the final polluted-AS count.
	Polluted int
	// AddrFracLost is the fraction of address space no longer reaching
	// the target (the paper's attack pollutes "96 % of the IP address
	// space").
	AddrFracLost float64
}

// GenerationStat counts one generation's messages.
type GenerationStat struct {
	Generation int
	Messages   int
	Accepted   int
	Rejected   int
}

// Fig1 runs the paper's Figure 1 scenario: the most aggressive attacker
// this world offers against the deepest (most vulnerable) stub, traced
// generation by generation on the message engine.
func Fig1(w *World) (*PropagationResult, error) {
	target, ok := w.DeepTarget()
	if !ok {
		return nil, fmt.Errorf("fig1: no deep target")
	}
	// Aggressive attacker: the highest-degree depth-1 transit that is not
	// the target's own provider chain — mirrors the paper's AS4.
	attacker := -1
	for _, i := range w.Graph.TransitNodes() {
		if i == target || w.Class.Depth[i] > 1 {
			continue
		}
		if attacker == -1 || w.Graph.Degree(i) > w.Graph.Degree(attacker) {
			attacker = i
		}
	}
	if attacker == -1 {
		return nil, fmt.Errorf("fig1: no transit attacker available")
	}
	engine := core.NewEngine(w.Policy)
	o, tr, err := engine.Run(core.Attack{Target: target, Attacker: attacker}, nil, true)
	if err != nil {
		return nil, fmt.Errorf("fig1: %w", err)
	}
	res := &PropagationResult{
		Title:    "Figure 1: origin-attack propagation, generation by generation",
		Target:   target,
		Attacker: attacker,
		Outcome:  o,
		Trace:    tr,
		Polluted: o.PollutedCount(),
	}
	var lost, total int64
	for i := 0; i < w.Graph.N(); i++ {
		weight := w.Graph.AddrWeight(i)
		total += weight
		if o.Polluted(i) {
			lost += weight
		}
	}
	if total > 0 {
		res.AddrFracLost = float64(lost) / float64(total)
	}
	for g := 1; g <= tr.Generations; g++ {
		st := GenerationStat{Generation: g}
		for _, ev := range tr.EventsInGen(g) {
			if ev.Withdraw {
				continue
			}
			st.Messages++
			if ev.Accepted {
				st.Accepted++
			} else {
				st.Rejected++
			}
		}
		res.PerGeneration = append(res.PerGeneration, st)
	}
	return res, nil
}

// RenderFrames emits one polar SVG per generation via emit.
func (r *PropagationResult) RenderFrames(w *World, size float64, emit func(gen int, svg []byte) error) error {
	layout := viz.ComputeLayout(w.Graph, w.Class, size)
	return viz.RenderPropagation(w.Graph, layout, r.Trace,
		fmt.Sprintf("%v attacks %v", w.Graph.ASN(r.Attacker), w.Graph.ASN(r.Target)), emit)
}

// WriteText renders the per-generation message statistics.
func (r *PropagationResult) WriteText(out io.Writer, asnOf func(node int) string) error {
	fmt.Fprintf(out, "%s\nattacker %s → target %s: %d ASes polluted, %.0f%% of address space lost, %d generations\n",
		r.Title, asnOf(r.Attacker), asnOf(r.Target), r.Polluted, 100*r.AddrFracLost, r.Trace.Generations)
	for _, st := range r.PerGeneration {
		fmt.Fprintf(out, "  generation %2d: %6d announcements  %6d accepted  %6d rejected\n",
			st.Generation, st.Messages, st.Accepted, st.Rejected)
	}
	return nil
}
