package experiments

import (
	"fmt"
	"io"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/prefix"
	"github.com/bgpsim/bgpsim/internal/rpki"
	"github.com/bgpsim/bgpsim/internal/sweep"
)

// FalseAlarmResult quantifies the paper's Section VI caveat: "detectors
// that use historical data can issue false alerts due to changing AS
// connectivity. Once again, it is prudent for ASes to securely publish
// their route origins so that detectors can have an accurate source of
// data." We model a population of prefixes undergoing legitimate origin
// transfers (mergers, renumbering) and compare a promptly-updated
// authoritative source (RPKI/ROVER publication) against a stale snapshot
// (an unmaintained IRR or historical baseline).
type FalseAlarmResult struct {
	Title     string
	Prefixes  int
	Transfers int
	Hijacks   int

	// FreshFalseAlarms / StaleFalseAlarms: legitimate post-transfer
	// announcements flagged Invalid by each data source.
	FreshFalseAlarms int
	StaleFalseAlarms int
	// FreshDetected / StaleDetected: hijacks flagged Invalid (true
	// positives) by each source.
	FreshDetected int
	StaleDetected int
}

// FalseAlarmConfig tunes the study.
type FalseAlarmConfig struct {
	// Prefixes is the published-prefix population (default 500).
	Prefixes int
	// TransferFraction of prefixes legitimately changes origin
	// (default 0.1).
	TransferFraction float64
	// StaleLag is the probability a transfer has NOT yet reached the
	// stale data source (default 0.8 — an unmaintained registry).
	StaleLag float64
	// Hijacks is the number of hijack announcements to check (default:
	// one per transferred prefix).
	Hijacks int
	Seed    int64
	// Workers bounds validation parallelism (0 = GOMAXPROCS); results are
	// bit-identical at any worker count.
	Workers int
}

// FalseAlarmStudy runs the comparison. The simulation assigns each prefix
// an owner AS from the world, publishes ROAs in both sources, applies
// legitimate transfers (fresh source always updated; stale source updated
// only with probability 1−StaleLag), then validates (a) the new owners'
// legitimate announcements and (b) hijack announcements from random other
// ASes against both sources.
func FalseAlarmStudy(w *World, cfg FalseAlarmConfig) (*FalseAlarmResult, error) {
	if cfg.Prefixes == 0 {
		cfg.Prefixes = 500
	}
	if cfg.TransferFraction == 0 {
		cfg.TransferFraction = 0.1
	}
	if cfg.StaleLag == 0 {
		cfg.StaleLag = 0.8
	}
	if cfg.Prefixes > w.Graph.N() {
		cfg.Prefixes = w.Graph.N()
	}
	rng := rngFor(cfg.Seed, "falsealarm")

	var fresh, stale rpki.Store
	type owned struct {
		p     prefix.Prefix
		owner asn.ASN
	}
	prefixes := make([]owned, 0, cfg.Prefixes)
	for i := 0; i < cfg.Prefixes; i++ {
		// Unique /16s from test-ish space, owner = a random AS.
		p := prefix.New(uint32(10+i/256)<<24|uint32(i%256)<<16, 16)
		owner := w.Graph.ASN(rng.Intn(w.Graph.N()))
		roa := rpki.ROA{Prefix: p, MaxLength: 24, Origin: owner}
		if err := fresh.Add(roa); err != nil {
			return nil, fmt.Errorf("false-alarm study: %w", err)
		}
		if err := stale.Add(roa); err != nil {
			return nil, fmt.Errorf("false-alarm study: %w", err)
		}
		prefixes = append(prefixes, owned{p, owner})
	}

	res := &FalseAlarmResult{
		Title:    "Detector data freshness: false alarms on legitimate origin transfers",
		Prefixes: cfg.Prefixes,
	}
	// Legitimate transfers.
	nTransfers := int(cfg.TransferFraction * float64(cfg.Prefixes))
	transferred := make([]owned, 0, nTransfers)
	for _, i := range rng.Perm(len(prefixes))[:nTransfers] {
		newOwner := w.Graph.ASN(rng.Intn(w.Graph.N()))
		if newOwner == prefixes[i].owner {
			continue
		}
		prefixes[i].owner = newOwner
		// The fresh source re-publishes immediately.
		if err := fresh.Add(rpki.ROA{Prefix: prefixes[i].p, MaxLength: 24, Origin: newOwner}); err != nil {
			return nil, err
		}
		// The stale source lags behind with probability StaleLag.
		if rng.Float64() >= cfg.StaleLag {
			if err := stale.Add(rpki.ROA{Prefix: prefixes[i].p, MaxLength: 24, Origin: newOwner}); err != nil {
				return nil, err
			}
		}
		transferred = append(transferred, prefixes[i])
	}
	res.Transfers = len(transferred)

	// (a) The new owners announce their own prefixes: any Invalid is a
	// false alarm. (Fresh can still flag when the old owner also had a
	// ROA — it does not, since Add with the new origin coexists; both
	// origins stay authorized in fresh, which is how RPKI transfers work
	// until the old ROA is revoked. We model revocation implicitly by
	// validating against the new origin only.)
	// (b) Hijacks of the same prefixes from random unrelated ASes.
	//
	// All rng draws happen serially here (so the streams match the old
	// serial loop draw for draw, including the skipped same-owner hijacks);
	// the read-only Store.Validate checks then fan out on the sweep kernel.
	if cfg.Hijacks == 0 {
		cfg.Hijacks = len(transferred)
	}
	res.Hijacks = cfg.Hijacks
	type check struct {
		p      prefix.Prefix
		origin asn.ASN
		hijack bool
	}
	checks := make([]check, 0, len(transferred)+cfg.Hijacks)
	for _, tr := range transferred {
		checks = append(checks, check{p: tr.p, origin: tr.owner})
	}
	for k := 0; k < cfg.Hijacks; k++ {
		tr := prefixes[rng.Intn(len(prefixes))]
		hijacker := w.Graph.ASN(rng.Intn(w.Graph.N()))
		if hijacker == tr.owner {
			continue
		}
		checks = append(checks, check{p: tr.p, origin: hijacker, hijack: true})
	}
	type verdict struct{ fresh, stale bool }
	if err := sweep.MapReduce(len(checks), sweep.Options{Workers: cfg.Workers},
		func(i int) (verdict, error) {
			c := checks[i]
			return verdict{
				fresh: fresh.Validate(c.p, c.origin) == rpki.Invalid,
				stale: stale.Validate(c.p, c.origin) == rpki.Invalid,
			}, nil
		},
		sweep.ReduceFunc[verdict]{EmitFn: func(i int, v verdict) {
			switch {
			case checks[i].hijack:
				if v.fresh {
					res.FreshDetected++
				}
				if v.stale {
					res.StaleDetected++
				}
			default:
				if v.fresh {
					res.FreshFalseAlarms++
				}
				if v.stale {
					res.StaleFalseAlarms++
				}
			}
		}}); err != nil {
		return nil, fmt.Errorf("false-alarm study: %w", err)
	}
	return res, nil
}

// WriteText renders the comparison.
func (r *FalseAlarmResult) WriteText(out io.Writer) error {
	fmt.Fprintf(out, "%s\n", r.Title)
	fmt.Fprintf(out, "population: %d published prefixes, %d legitimate transfers, %d hijack checks\n\n",
		r.Prefixes, r.Transfers, r.Hijacks)
	fmt.Fprintf(out, "  %-34s false alarms %4d / %d   hijacks flagged %4d / %d\n",
		"fresh publication (RPKI/ROVER):", r.FreshFalseAlarms, r.Transfers, r.FreshDetected, r.Hijacks)
	_, err := fmt.Fprintf(out, "  %-34s false alarms %4d / %d   hijacks flagged %4d / %d\n",
		"stale snapshot (old IRR/history):", r.StaleFalseAlarms, r.Transfers, r.StaleDetected, r.Hijacks)
	return err
}
