package experiments

import (
	"bytes"
	"strings"
	"testing"

	"github.com/bgpsim/bgpsim/internal/deploy"
	"github.com/bgpsim/bgpsim/internal/detect"
)

func TestHoleAnalysis(t *testing.T) {
	w := world(t)
	// A deliberately weak configuration so holes exist: tier-1-only
	// filters and tier-1-only probes.
	filters := deploy.Tier1(w.Class)
	probes := detect.Tier1Probes(w.Class)
	res, err := HoleAnalysis(w, HoleConfig{
		Attacks: 500,
		Seed:    3,
		Filters: &filters,
		Probes:  &probes,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Succeeded == 0 {
		t.Fatal("no successful attacks against tier-1-only filters — implausible")
	}
	if res.Undetected == 0 {
		t.Skip("no holes in this world (unlikely but possible)")
	}
	if res.Undetected > res.Succeeded {
		t.Fatal("undetected > succeeded")
	}
	// Holes are ranked and annotated.
	for i := 1; i < len(res.Holes); i++ {
		if res.Holes[i].Pollution > res.Holes[i-1].Pollution {
			t.Fatal("holes not ranked by pollution")
		}
	}
	totalDepth := 0
	for _, n := range res.AttackerDepthHist {
		totalDepth += n
	}
	if totalDepth != res.Undetected {
		t.Errorf("depth histogram covers %d, want %d", totalDepth, res.Undetected)
	}
	// Per-probe reasons must account for every (hole, probe) pair.
	for _, h := range res.Holes {
		n := 0
		for _, c := range h.WhyMissed {
			n += c
		}
		if n != len(probes.Probes) {
			t.Errorf("hole %d→%d: reasons cover %d probes, want %d",
				h.Attacker, h.Target, n, len(probes.Probes))
		}
	}
	reasonSum := 0
	for _, n := range res.ReasonTotals {
		reasonSum += n
	}
	if reasonSum == 0 {
		t.Error("no aggregated miss reasons")
	}

	var buf bytes.Buffer
	if err := res.WriteText(&buf, func(n int) string { return w.Graph.ASN(n).String() }); err != nil {
		t.Fatal(err)
	}
	outText := buf.String()
	for _, want := range []string{"escape detection", "depth histogram", "why probes stayed blind", "worst holes"} {
		if !strings.Contains(outText, want) {
			t.Errorf("WriteText missing %q", want)
		}
	}
}

// TestHoleAnalysisStrongConfigShrinksHoles: a stronger configuration must
// produce no more holes than a weak one on the same workload.
func TestHoleAnalysisStrongConfigShrinksHoles(t *testing.T) {
	w := world(t)
	weakF := deploy.Tier1(w.Class)
	weakP := detect.Tier1Probes(w.Class)
	weak, err := HoleAnalysis(w, HoleConfig{Attacks: 400, Seed: 5, Filters: &weakF, Probes: &weakP})
	if err != nil {
		t.Fatal(err)
	}
	strongF := deploy.TopDegree(w.Graph, 40)
	strongP := detect.TopDegreeProbes(w.Graph, 40)
	strong, err := HoleAnalysis(w, HoleConfig{Attacks: 400, Seed: 5, Filters: &strongF, Probes: &strongP})
	if err != nil {
		t.Fatal(err)
	}
	if strong.Undetected > weak.Undetected {
		t.Errorf("stronger config has more holes: %d vs %d", strong.Undetected, weak.Undetected)
	}
	if strong.Succeeded > weak.Succeeded {
		t.Errorf("stronger filters admit more successes: %d vs %d", strong.Succeeded, weak.Succeeded)
	}
}

func TestHoleAnalysisDefaults(t *testing.T) {
	w := world(t)
	res, err := HoleAnalysis(w, HoleConfig{Attacks: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.MinPollution <= 0 {
		t.Error("default MinPollution not set")
	}
	if res.Attacks != 200 {
		t.Errorf("Attacks = %d", res.Attacks)
	}
}
