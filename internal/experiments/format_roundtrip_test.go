package experiments

// Acceptance tests for the shard→merge contract across both shard-file
// formats: for every scan tool's experiment, the stdout a merge run
// renders must be byte-identical to the single-process run — at workers
// ∈ {1, 8} × shards ∈ {1, 3}, in json and recio alike — and a recio
// shard run killed mid-flight and restarted with resume must merge to
// the same bytes.

import (
	"bytes"
	"os"
	"testing"

	"github.com/bgpsim/bgpsim/internal/detect"
	"github.com/bgpsim/bgpsim/internal/hijack"
	"github.com/bgpsim/bgpsim/internal/sweep"
)

// formatCase wires one scan tool's experiment into the generic
// stdout-identity sweep: solve the full run, shard it into a store,
// merge the directory back, each rendering the tool's exact stdout.
type formatCase struct {
	name  string
	tag   string
	full  func(t *testing.T, w *World, workers int) []byte
	shard func(t *testing.T, w *World, workers int, sel sweep.ShardSel, store sweep.ShardStore) sweep.ShardReport
	merge func(t *testing.T, w *World, dir string) []byte
}

func render(t *testing.T, err error, buf *bytes.Buffer) []byte {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func formatCases(t *testing.T, w *World) []formatCase {
	asnOf := func(n int) string { return w.Graph.ASN(n).String() }
	vulnCfg := func(workers int) VulnerabilityConfig {
		return VulnerabilityConfig{AttackerSample: 150, Seed: 3, Workers: workers}
	}
	deployCfg := func(workers int) DeploymentConfig {
		return DeploymentConfig{AttackerSample: 100, Seed: 5, ResidualTop: 3, Workers: workers}
	}
	detectCfg := func(workers int) DetectionConfig {
		return DetectionConfig{Attacks: 250, Seed: 9, Workers: workers}
	}
	holeCfg := func(workers int) HoleConfig {
		return HoleConfig{Attacks: 250, Seed: 11, Workers: workers}
	}
	return []formatCase{
		{
			name: "vulnscan-fig2", tag: TagFig2,
			full: func(t *testing.T, w *World, workers int) []byte {
				res, err := Fig2(w, vulnCfg(workers))
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				return render(t, res.WriteText(&buf), &buf)
			},
			shard: func(t *testing.T, w *World, workers int, sel sweep.ShardSel, store sweep.ShardStore) sweep.ShardReport {
				rep, err := Fig2ShardTo(w, vulnCfg(workers), sel, store)
				if err != nil {
					t.Fatal(err)
				}
				return rep
			},
			merge: func(t *testing.T, w *World, dir string) []byte {
				files, err := sweep.ReadShardDir[hijack.Record](dir, TagFig2)
				if err != nil {
					t.Fatal(err)
				}
				res, err := Fig2Merge(w, vulnCfg(0), files)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				return render(t, res.WriteText(&buf), &buf)
			},
		},
		{
			name: "deployscan-fig5", tag: TagFig5,
			full: func(t *testing.T, w *World, workers int) []byte {
				res, err := Fig5(w, deployCfg(workers))
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				return render(t, res.WriteText(&buf), &buf)
			},
			shard: func(t *testing.T, w *World, workers int, sel sweep.ShardSel, store sweep.ShardStore) sweep.ShardReport {
				rep, err := Fig5ShardTo(w, deployCfg(workers), sel, store)
				if err != nil {
					t.Fatal(err)
				}
				return rep
			},
			merge: func(t *testing.T, w *World, dir string) []byte {
				files, err := sweep.ReadShardDir[hijack.Record](dir, TagFig5)
				if err != nil {
					t.Fatal(err)
				}
				res, err := Fig5Merge(w, deployCfg(0), files)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				return render(t, res.WriteText(&buf), &buf)
			},
		},
		{
			name: "detectscan-fig7", tag: TagFig7,
			full: func(t *testing.T, w *World, workers int) []byte {
				res, err := Fig7(w, detectCfg(workers))
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				return render(t, res.WriteText(&buf, asnOf), &buf)
			},
			shard: func(t *testing.T, w *World, workers int, sel sweep.ShardSel, store sweep.ShardStore) sweep.ShardReport {
				rep, err := Fig7ShardTo(w, detectCfg(workers), sel, store)
				if err != nil {
					t.Fatal(err)
				}
				return rep
			},
			merge: func(t *testing.T, w *World, dir string) []byte {
				files, err := sweep.ReadShardDir[detect.Record](dir, TagFig7)
				if err != nil {
					t.Fatal(err)
				}
				res, err := Fig7Merge(w, detectCfg(0), files)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				return render(t, res.WriteText(&buf, asnOf), &buf)
			},
		},
		{
			name: "holescan", tag: TagHoles,
			full: func(t *testing.T, w *World, workers int) []byte {
				res, err := HoleAnalysis(w, holeCfg(workers))
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				return render(t, res.WriteText(&buf, asnOf), &buf)
			},
			shard: func(t *testing.T, w *World, workers int, sel sweep.ShardSel, store sweep.ShardStore) sweep.ShardReport {
				rep, err := HoleShardTo(w, holeCfg(workers), sel, store)
				if err != nil {
					t.Fatal(err)
				}
				return rep
			},
			merge: func(t *testing.T, w *World, dir string) []byte {
				files, err := sweep.ReadShardDir[HoleRecord](dir, TagHoles)
				if err != nil {
					t.Fatal(err)
				}
				res, err := HoleMerge(w, holeCfg(0), files)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				return render(t, res.WriteText(&buf, asnOf), &buf)
			},
		},
	}
}

// TestFormatShardMergeStdoutIdentity is the headline acceptance matrix:
// each scan tool's shard→merge stdout must equal the full run's bytes
// for json and recio at workers ∈ {1, 8} × shards ∈ {1, 3}.
func TestFormatShardMergeStdoutIdentity(t *testing.T) {
	w := world(t)
	for _, tc := range formatCases(t, w) {
		t.Run(tc.name, func(t *testing.T) {
			want := tc.full(t, w, 4)
			for _, format := range []string{sweep.FormatJSON, sweep.FormatRecio} {
				for _, workers := range []int{1, 8} {
					for _, shards := range []int{1, 3} {
						dir := t.TempDir()
						store := sweep.ShardStore{Dir: dir, Format: format}
						// Solve shards in shuffled order, as independent
						// machines would finish.
						for _, s := range shardOrder {
							if s >= shards {
								continue
							}
							tc.shard(t, w, workers, sweep.OneShard(s, shards), store)
						}
						got := tc.merge(t, w, dir)
						if !bytes.Equal(got, want) {
							t.Errorf("format=%s workers=%d shards=%d: merged stdout differs from full run (%d vs %d bytes)",
								format, workers, shards, len(got), len(want))
						}
					}
				}
			}
		})
	}
}

// TestRecioResumeStdoutIdentity is the crash acceptance test at the
// tool level: a recio shard run killed mid-run (file truncated inside a
// segment, i.e. after N checkpointed records) and restarted with resume
// must merge to stdout byte-identical to an uninterrupted full run.
func TestRecioResumeStdoutIdentity(t *testing.T) {
	w := world(t)
	tc := formatCases(t, w)[0] // Figure 2
	want := tc.full(t, w, 4)

	dir := t.TempDir()
	store := sweep.ShardStore{Dir: dir, Format: sweep.FormatRecio, CheckpointEvery: 8}

	// Solve shard 0 fully, then truncate its file mid-segment to
	// simulate the process dying between two checkpoints.
	rep := tc.shard(t, w, 4, sweep.OneShard(0, 2), store)
	data, err := os.ReadFile(rep.Path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(rep.Path, data[:len(data)*55/100], 0o644); err != nil {
		t.Fatal(err)
	}

	store.Resume = true
	rep2 := tc.shard(t, w, 4, sweep.OneShard(0, 2), store)
	if rep2.Resumed == 0 {
		t.Fatal("restart recovered nothing — the truncated file should retain checkpointed records")
	}
	if rep2.Solved == 0 {
		t.Fatal("restart solved nothing — truncation should have lost the open segment")
	}
	// Shard 1 never crashed; -resume on a missing file is a fresh run.
	tc.shard(t, w, 4, sweep.OneShard(1, 2), store)

	got := tc.merge(t, w, dir)
	if !bytes.Equal(got, want) {
		t.Errorf("resumed merge stdout differs from full run (%d vs %d bytes)", len(got), len(want))
	}
}
