package deploy

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/topology"
)

func testWorld(t *testing.T, n int) (*core.Policy, *topology.Graph, *topology.Classification) {
	t.Helper()
	g := topology.MustGenerate(topology.DefaultParams(n))
	con, err := topology.ContractSiblings(g)
	if err != nil {
		t.Fatal(err)
	}
	c := topology.Classify(con.Graph, topology.ClassifyOptions{})
	pol, err := core.NewPolicy(con.Graph, c.Tier1)
	if err != nil {
		t.Fatal(err)
	}
	return pol, con.Graph, c
}

func TestStrategyConstructors(t *testing.T) {
	_, g, c := testWorld(t, 600)

	if n := None(); len(n.Nodes) != 0 || n.Blocked(g.N()) != nil {
		t.Error("None should be empty with nil Blocked")
	}

	r := Random(g, 10, rand.New(rand.NewSource(7)))
	if len(r.Nodes) != 10 {
		t.Errorf("Random size = %d, want 10", len(r.Nodes))
	}
	for _, i := range r.Nodes {
		if !g.IsTransit(i) {
			t.Error("Random must draw from transit ASes")
		}
	}
	r2 := Random(g, 10, rand.New(rand.NewSource(7)))
	for k := range r.Nodes {
		if r.Nodes[k] != r2.Nodes[k] {
			t.Error("Random not deterministic for a seed")
		}
	}
	if diff := Random(g, 10, rand.New(rand.NewSource(8))); equalInts(diff.Nodes, r.Nodes) {
		t.Error("different seeds gave identical random sets")
	}
	// Oversized k clamps.
	if big := Random(g, 1<<20, rand.New(rand.NewSource(7))); len(big.Nodes) != len(g.TransitNodes()) {
		t.Error("oversized Random should clamp to transit population")
	}

	t1 := Tier1(c)
	if len(t1.Nodes) != len(c.Tier1) {
		t.Error("Tier1 size mismatch")
	}

	top := TopDegree(g, 20)
	if len(top.Nodes) != 20 {
		t.Errorf("TopDegree size = %d", len(top.Nodes))
	}
	for i := 1; i < len(top.Nodes); i++ {
		if g.Degree(top.Nodes[i]) > g.Degree(top.Nodes[i-1]) {
			t.Error("TopDegree not in degree order")
		}
	}

	da := DegreeAtLeast(g, 30)
	for _, i := range da.Nodes {
		if g.Degree(i) < 30 {
			t.Error("DegreeAtLeast included low-degree AS")
		}
	}

	cu := Custom("x", []int{1, 2, 3})
	if len(cu.Nodes) != 3 || cu.Name != "x" {
		t.Error("Custom mangled input")
	}
	b := cu.Blocked(g.N())
	if !b.Contains(2) || b.Contains(4) {
		t.Error("Blocked set wrong")
	}
}

// TestEvaluateLadderMonotone verifies the paper's core Section V claim on
// synthetic topology: walking the deployment ladder from nothing through
// tier-1-only to core-outward filtering monotonically (here: weakly)
// drives mean pollution down, with a large drop once the core is covered.
func TestEvaluateLadderMonotone(t *testing.T) {
	pol, g, c := testWorld(t, 1500)
	target, err := topology.FindTarget(g, c, topology.TargetQuery{Depth: 2, Stub: true})
	if err != nil {
		t.Fatal(err)
	}
	attackers := g.TransitNodes()
	ladder := []Strategy{
		None(),
		Tier1(c),
		TopDegree(g, 30),
		TopDegree(g, 80),
	}
	evals, err := Evaluate(pol, target, attackers, ladder, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(evals) != len(ladder) {
		t.Fatalf("evals = %d", len(evals))
	}
	means := make([]float64, len(evals))
	for i, e := range evals {
		means[i] = e.Result.Summary().Mean
	}
	for i := 1; i < len(means); i++ {
		if means[i] > means[i-1]+1e-9 {
			t.Errorf("ladder rung %d (%s) increased mean pollution: %v", i, evals[i].Strategy.Name, means)
		}
	}
	if means[len(means)-1] >= means[0]*0.5 {
		t.Errorf("core filtering should at least halve mean pollution: %v", means)
	}

	// Residual-attack table comes out ranked.
	resid := evals[len(evals)-1].ResidualAttacks(5, g, c)
	for i := 1; i < len(resid); i++ {
		if resid[i].Pollution > resid[i-1].Pollution {
			t.Error("ResidualAttacks not ranked")
		}
	}
}

// TestRandomVsStrategic reproduces the paper's observation that random
// deployment at small scale "barely moves away from the baseline" while
// the same *budget* spent on the highest-degree core helps substantially.
func TestRandomVsStrategic(t *testing.T) {
	pol, g, c := testWorld(t, 1500)
	target, err := topology.FindTarget(g, c, topology.TargetQuery{Depth: 2, Stub: true})
	if err != nil {
		t.Fatal(err)
	}
	attackers := g.TransitNodes()
	k := len(attackers) * 100 / 6318 // the paper's "100 of 6318 transit ASes"
	if k < 2 {
		k = 2
	}
	evals, err := Evaluate(pol, target, attackers, []Strategy{
		None(),
		Random(g, k, rand.New(rand.NewSource(3))),
		TopDegree(g, k),
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	base := evals[0].Result.Summary().Mean
	random := evals[1].Result.Summary().Mean
	strategic := evals[2].Result.Summary().Mean
	if strategic >= random {
		t.Errorf("strategic (%.1f) should beat random (%.1f) at equal budget", strategic, random)
	}
	// Random at this scale stays near baseline (within 25%); strategic
	// must be clearly better than baseline.
	if random < base*0.75 {
		t.Logf("note: random deployment unusually effective on this topology (%.1f vs %.1f)", random, base)
	}
	if strategic > base*0.8 {
		t.Errorf("strategic top-%d should cut ≥20%% of baseline pollution (%.1f vs %.1f)", k, strategic, base)
	}
}

func TestPaperLadder(t *testing.T) {
	_, g, c := testWorld(t, 1000)
	ladder := PaperLadder(g, c, 42)
	if len(ladder) != 8 {
		t.Fatalf("ladder rungs = %d, want 8", len(ladder))
	}
	if ladder[0].Name != None().Name {
		t.Error("first rung must be baseline")
	}
	for _, st := range ladder[1:] {
		if len(st.Nodes) == 0 {
			t.Errorf("rung %q is empty", st.Name)
		}
	}
	// Core-outward rungs grow.
	for i := 5; i < 8; i++ {
		if len(ladder[i].Nodes) < len(ladder[i-1].Nodes) {
			t.Errorf("rung %q smaller than previous", ladder[i].Name)
		}
	}
	if !strings.Contains(ladder[3].Name, "tier-1") {
		t.Errorf("rung 3 should be tier-1, got %q", ladder[3].Name)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
