// Package deploy models incremental rollout of BGP origin-hijack
// prevention (Section V of the paper): strategies for choosing which ASes
// deploy route-origin validation, and the machinery to evaluate how much
// each deployment set reduces a target's vulnerability.
package deploy

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/hijack"
	"github.com/bgpsim/bgpsim/internal/sweep"
	"github.com/bgpsim/bgpsim/internal/topology"
)

// Strategy is a named set of ASes deploying origin validation.
type Strategy struct {
	Name  string
	Nodes []int
}

// Blocked materializes the strategy as an IndexSet for the solver.
func (s Strategy) Blocked(n int) *asn.IndexSet {
	if len(s.Nodes) == 0 {
		return nil
	}
	set := asn.NewIndexSet(n)
	for _, i := range s.Nodes {
		set.Add(i)
	}
	return set
}

// Defense materializes the strategy as a deployed-defense model with the
// given mechanisms — the query-shaped form of ConfigsScenario's per-rung
// deployment, for callers that solve cells one at a time instead of
// through the matrix runtime.
func (s Strategy) Defense(n int, mechs core.DefenseMech) core.Defense {
	return mechs.Deploy(s.Blocked(n))
}

// None is the undefended baseline.
func None() Strategy { return Strategy{Name: "baseline (no filters)"} }

// Random deploys at k transit ASes chosen uniformly at random — the
// paper's model of uncoordinated voluntary adoption ("various random ASes
// are motivated to deploy BGP security on their own"). The caller supplies
// the generator, so one seed replays one exact deployment set.
func Random(g *topology.Graph, k int, rng *rand.Rand) Strategy {
	transit := g.TransitNodes()
	rng.Shuffle(len(transit), func(i, j int) { transit[i], transit[j] = transit[j], transit[i] })
	if k > len(transit) {
		k = len(transit)
	}
	return Strategy{Name: fmt.Sprintf("random %d transit ASes", k), Nodes: transit[:k]}
}

// Tier1 deploys at exactly the tier-1 ASes ("this scenario was run under
// the assumption that the tier-1 ASes can act on their own, to everyone's
// benefit").
func Tier1(c *topology.Classification) Strategy {
	return Strategy{
		Name:  fmt.Sprintf("%d tier-1 ASes", len(c.Tier1)),
		Nodes: append([]int(nil), c.Tier1...),
	}
}

// DegreeAtLeast deploys at every AS with degree ≥ min — the paper's
// methodical core-outward strategy ("filter 62 ASes with degree ≥ 500",
// 124 @ ≥300, 166 @ ≥200, 299 @ ≥100).
func DegreeAtLeast(g *topology.Graph, min int) Strategy {
	nodes := topology.NodesWithDegreeAtLeast(g, min)
	return Strategy{
		Name:  fmt.Sprintf("%d ASes with degree ≥ %d", len(nodes), min),
		Nodes: nodes,
	}
}

// TopDegree deploys at the k highest-degree ASes. At reduced topology
// scale this is the shape-preserving equivalent of the paper's absolute
// degree thresholds.
func TopDegree(g *topology.Graph, k int) Strategy {
	order := topology.NodesByDegree(g)
	if k > len(order) {
		k = len(order)
	}
	return Strategy{
		Name:  fmt.Sprintf("top %d ASes by degree", k),
		Nodes: append([]int(nil), order[:k]...),
	}
}

// DepthRanked deploys at the k shallowest transit ASes — depth being the
// provider-hop distance from the tier-1 clique — breaking ties by degree
// (descending) then node index. The shallow core carries most valley-free
// paths, so depth ranking is the path-coverage counterpart of the paper's
// degree ranking; the scenario study contrasts the two per attack kind.
func DepthRanked(g *topology.Graph, c *topology.Classification, k int) Strategy {
	nodes := append([]int(nil), g.TransitNodes()...)
	sort.SliceStable(nodes, func(i, j int) bool {
		di, dj := c.Depth[nodes[i]], c.Depth[nodes[j]]
		// Unreachable (depth -1) sorts after every finite depth.
		if di == topology.DepthUnreachable {
			di = int(^uint(0) >> 1)
		}
		if dj == topology.DepthUnreachable {
			dj = int(^uint(0) >> 1)
		}
		if di != dj {
			return di < dj
		}
		if gi, gj := g.Degree(nodes[i]), g.Degree(nodes[j]); gi != gj {
			return gi > gj
		}
		return nodes[i] < nodes[j]
	})
	if k > len(nodes) {
		k = len(nodes)
	}
	return Strategy{
		Name:  fmt.Sprintf("%d shallowest transit ASes", k),
		Nodes: nodes[:k],
	}
}

// Custom wraps an explicit deployment set.
func Custom(name string, nodes []int) Strategy {
	return Strategy{Name: name, Nodes: append([]int(nil), nodes...)}
}

// Evaluation is the outcome of one strategy against one target.
type Evaluation struct {
	Strategy Strategy
	Result   *hijack.SweepResult
}

// Evaluate sweeps the target with every strategy, using the same attacker
// population, so the resulting curves are directly comparable (the paper's
// Figures 5 and 6). All (strategy × attack) pairs are flattened into one
// parallel run on the shared sweep kernel; workers bounds solve parallelism
// (0 = GOMAXPROCS) and results are bit-identical at any worker count.
func Evaluate(pol *core.Policy, target int, attackers []int, strategies []Strategy, workers int) ([]Evaluation, error) {
	return EvaluateMatrix(pol, target, attackers, strategies, sweep.MatrixOptions{Workers: workers})
}

// Configs flattens a strategy ladder into the hijack sweep-configuration
// list the matrix runtime runs: same target, same attacker population,
// one deployment set per rung. Exposed so shard CLIs can build the exact
// workload a full run would solve.
func Configs(pol *core.Policy, target int, attackers []int, strategies []Strategy) []hijack.SweepConfig {
	return ConfigsScenario(pol, target, attackers, strategies, core.KindOrigin, core.MechROV)
}

// ConfigsScenario is Configs with an explicit attack kind and deployed
// mechanism set: every rung deploys mechs at its strategy's node set and
// is swept with kind attacks. KindOrigin + MechROV reproduces Configs
// (and its workload digests) exactly.
func ConfigsScenario(pol *core.Policy, target int, attackers []int, strategies []Strategy, kind core.AttackKind, mechs core.DefenseMech) []hijack.SweepConfig {
	cfgs := make([]hijack.SweepConfig, len(strategies))
	for i, st := range strategies {
		def := mechs.Deploy(st.Blocked(pol.N()))
		cfgs[i] = hijack.SweepConfig{
			Target:    target,
			Attackers: attackers,
			Blocked:   def.Blocked,
			Defense:   def,
			Kind:      kind,
		}
	}
	return cfgs
}

// EvaluateMatrix is Evaluate under full matrix options (in-process shard
// selections included).
func EvaluateMatrix(pol *core.Policy, target int, attackers []int, strategies []Strategy, opts sweep.MatrixOptions) ([]Evaluation, error) {
	results, err := hijack.SweepMatrix(pol, Configs(pol, target, attackers, strategies), opts)
	if err != nil {
		return nil, fmt.Errorf("evaluate deployment ladder: %w", err)
	}
	return Evaluations(strategies, results), nil
}

// Evaluations pairs each ladder rung with its sweep result — the assembly
// step shared by EvaluateMatrix and merged shard runs.
func Evaluations(strategies []Strategy, results []*hijack.SweepResult) []Evaluation {
	out := make([]Evaluation, len(strategies))
	for i, st := range strategies {
		out[i] = Evaluation{Strategy: st, Result: results[i]}
	}
	return out
}

// ResidualAttacks returns the k most potent attacks that still succeed
// under the strategy — the paper's "which attacks are capable of slipping
// by these defenses?" tables (ASN, pollution, degree, depth). Attackers
// that are themselves deployers are flagged.
func (e Evaluation) ResidualAttacks(k int, g *topology.Graph, c *topology.Classification) []hijack.AttackerStat {
	stats := e.Result.TopAttackers(k, g, c)
	deployed := make(map[int]bool, len(e.Strategy.Nodes))
	for _, n := range e.Strategy.Nodes {
		deployed[n] = true
	}
	for i := range stats {
		stats[i].Deployed = deployed[stats[i].Attacker]
	}
	return stats
}

// PaperLadder returns the paper's full Figure 5/6 strategy ladder scaled
// to the given topology: baseline, two random sizes, tier-1, and four
// core-outward rungs. Fractions follow the paper's population (100 and 500
// of 6318 transit ASes; 62/124/166/299 of 42697 total).
func PaperLadder(g *topology.Graph, c *topology.Classification, seed int64) []Strategy {
	nTransit := len(g.TransitNodes())
	scaleT := func(paper int) int {
		v := paper * nTransit / 6318
		if v < 1 {
			v = 1
		}
		return v
	}
	scaleAll := func(paper int) int {
		v := paper * g.N() / 42697
		if v < 1 {
			v = 1
		}
		return v
	}
	// Each rung gets its own generator (seed, seed+1) so the two random
	// deployment sets stay independent draws, exactly as published runs
	// produced them.
	return []Strategy{
		None(),
		Random(g, scaleT(100), rand.New(rand.NewSource(seed))),
		Random(g, scaleT(500), rand.New(rand.NewSource(seed+1))),
		Tier1(c),
		TopDegree(g, scaleAll(62)),
		TopDegree(g, scaleAll(124)),
		TopDegree(g, scaleAll(166)),
		TopDegree(g, scaleAll(299)),
	}
}
