package firehose_test

import (
	"bytes"
	"context"
	"io"
	"net"
	"testing"
	"time"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/bgpwire"
	"github.com/bgpsim/bgpsim/internal/feed"
	"github.com/bgpsim/bgpsim/internal/firehose"
	"github.com/bgpsim/bgpsim/internal/mrt"
	"github.com/bgpsim/bgpsim/internal/prefix"
	"github.com/bgpsim/bgpsim/internal/rpki"
)

// benchUpdates renders n BGP4MP update records spread round-robin over
// the given peer count — the synthetic firehose the throughput
// benchmark replays.
func benchUpdates(b *testing.B, n, peers int) []byte {
	b.Helper()
	var buf bytes.Buffer
	mw := mrt.NewWriter(&buf, 0)
	for i := 0; i < n; i++ {
		peer := asn.FromUint32(uint32(64500 + i%peers))
		origin := asn.FromUint32(uint32(65000 + i%100))
		err := mw.WriteBGP4MP(&mrt.BGP4MPMessage{
			PeerAS:    peer,
			LocalAS:   65535,
			PeerAddr:  0x0A000001,
			LocalAddr: 0x7F000001,
			Message: &bgpwire.Update{
				ASPath:  []asn.ASN{peer, asn.FromUint32(3491), origin},
				NextHop: 0x0A000001,
				NLRI:    []prefix.Prefix{prefix.New(uint32(0x0A000000|(i%65536)<<8), 24)},
			},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	if err := mw.Flush(); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// BenchmarkReplayThroughput replays b.N synthetic updates over 8 probe
// sessions through a real TCP collector with the route-server validator
// at the boundary, timing the full pipeline — dispatch, session writes,
// collector reads, validation — and reporting updates/s.
// scripts/bench_json.sh collects it into BENCH_firehose.json.
func BenchmarkReplayThroughput(b *testing.B) {
	const peers = 8
	data := benchUpdates(b, b.N, peers)

	var store rpki.Store
	rs := feed.NewRouteServer(&store)
	det := feed.NewDetector(rs, nil)
	collector := &feed.Collector{
		LocalAS: 65535, RouterID: 1,
		Detector: det, Validator: rs,
		HoldTime: 30,
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		_ = collector.Serve(l)
	}()

	e := firehose.New(firehose.Config{
		Updates: bytes.NewReader(data),
		Dial: func() (io.ReadWriteCloser, error) {
			return net.DialTimeout("tcp", l.Addr().String(), 5*time.Second)
		},
		HoldTime:    30,
		BackoffBase: time.Millisecond,
	})

	b.ReportAllocs()
	b.ResetTimer()
	stats, err := e.Run(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	l.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := collector.Shutdown(ctx); err != nil {
		b.Fatalf("collector drain: %v", err)
	}
	<-serveDone
	b.StopTimer()

	if stats.Updates != b.N || stats.Sent != b.N || stats.Shed != 0 {
		b.Fatalf("replay lost traffic: %d dispatched, %d sent, %d shed of %d", stats.Updates, stats.Sent, stats.Shed, b.N)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "updates/s")
}
