package firehose

import (
	"encoding/binary"
	"fmt"
	"io"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/bgpwire"
	"github.com/bgpsim/bgpsim/internal/mrt"
	"github.com/bgpsim/bgpsim/internal/prefix"
	"github.com/bgpsim/bgpsim/internal/rpki"
)

// The historical-incident fixture: a synthesized MRT replay of a
// YouTube/Pakistan-Telecom-shaped origin hijack (February 2008, adapted
// to this module's IPv4/AS4 record subset). The victim announces an
// RPKI-covered /22; the hijacker originates more-specifics of it and an
// exact-prefix forgery through its upstream, each visible at exactly one
// vantage peer — so the alert *set* (and feed.AlertSetDigest over it) is
// a pure function of the fixture bytes, independent of session
// interleaving. The stream also carries the damage a real capture
// accumulates: a record of a foreign type, a known-type record with an
// undecodable body, and a truncated final record. Replays must skip the
// first two, stop cleanly at the third, and still raise every alert.
const (
	// IncidentVictimAS originates the covered prefix.
	IncidentVictimAS asn.ASN = 36561
	// IncidentHijackerAS originates the hijacked routes.
	IncidentHijackerAS asn.ASN = 17557
	// IncidentUpstreamAS is the hijacker's transit, through which the bogus
	// routes leak.
	IncidentUpstreamAS asn.ASN = 3491
	// IncidentAlerts is the number of distinct alerts the incident raises:
	// four sub-prefix hijacks plus one exact-prefix origin forgery. The
	// forged-origin announcement (hijacker prepending the victim) raises
	// none — the known detection gap of origin validation.
	IncidentAlerts = 5
)

// IncidentVictimPrefix is the covered /22 the hijack targets.
func IncidentVictimPrefix() prefix.Prefix { return prefix.MustParse("208.65.152.0/22") }

// IncidentPeers lists the collector's vantage peers, in peer-index order.
func IncidentPeers() []asn.ASN { return []asn.ASN{7018, 3356, 2914, 3257, 1239} }

// IncidentROAs returns the published route-origin data in force during
// the incident: the victim's /22, with more-specifics down to /24
// authorized — so the hijacked /24s are covered (hence classified as
// sub-prefix hijacks) yet Invalid, matching RFC 6811.
func IncidentROAs() []rpki.ROA {
	return []rpki.ROA{
		{Prefix: IncidentVictimPrefix(), MaxLength: 24, Origin: IncidentVictimAS},
	}
}

// incidentBaseline lists the unrelated prefixes padding the RIB dump;
// none has a ROA, so their routes validate NotFound and raise nothing.
func incidentBaseline() []prefix.Prefix {
	return []prefix.Prefix{
		prefix.MustParse("198.51.100.0/24"),
		prefix.MustParse("203.0.113.0/24"),
		prefix.MustParse("192.0.2.0/24"),
		prefix.MustParse("100.64.0.0/16"),
	}
}

// incidentHijacks returns the alert-raising announcements: one vantage
// peer each, so every alert's (prefix, origin, peer, path) tuple is
// unique and the digest is interleaving-proof.
type incidentEvent struct {
	ts     uint32
	peer   asn.ASN
	update *bgpwire.Update
}

func hijackUpdate(peer asn.ASN, p prefix.Prefix, withVictim bool) *bgpwire.Update {
	path := []asn.ASN{peer, IncidentUpstreamAS, IncidentHijackerAS}
	if withVictim {
		path = append(path, IncidentVictimAS)
	}
	return &bgpwire.Update{
		Origin:  bgpwire.OriginIGP,
		ASPath:  path,
		NextHop: 0x0A000001,
		NLRI:    []prefix.Prefix{p},
	}
}

func incidentEvents() []incidentEvent {
	peers := IncidentPeers()
	victim := IncidentVictimPrefix()
	return []incidentEvent{
		// A benign re-announcement of the victim's own route: Valid.
		{0, peers[0], &bgpwire.Update{
			Origin:  bgpwire.OriginIGP,
			ASPath:  []asn.ASN{peers[0], IncidentUpstreamAS, IncidentVictimAS},
			NextHop: 0x0A000001,
			NLRI:    []prefix.Prefix{victim},
		}},
		// Four more-specific /24 hijacks, one per vantage peer.
		{1, peers[0], hijackUpdate(peers[0], prefix.MustParse("208.65.153.0/24"), false)},
		{2, peers[1], hijackUpdate(peers[1], prefix.MustParse("208.65.152.0/24"), false)},
		{3, peers[2], hijackUpdate(peers[2], prefix.MustParse("208.65.154.0/24"), false)},
		{4, peers[3], hijackUpdate(peers[3], prefix.MustParse("208.65.155.0/24"), false)},
		// The exact-prefix forgery: the covered /22 itself with the
		// hijacker as origin.
		{5, peers[4], hijackUpdate(peers[4], victim, false)},
		// The forged-origin variant: hijacker prepends the victim, so the
		// origin validates — no alert. Same (prefix, origin) as the benign
		// baseline route, so it cannot perturb the digest either.
		{6, peers[0], hijackUpdate(peers[0], victim, true)},
	}
}

// WriteIncidentRIB writes the TABLE_DUMP_V2 baseline: the peer index
// table and each peer's pre-incident routes (the victim's /22 plus
// unrelated padding prefixes).
func WriteIncidentRIB(w io.Writer) error {
	peers := IncidentPeers()
	pit := &mrt.PeerIndexTable{CollectorBGPID: 0x7F000001, ViewName: "incident"}
	for i, as := range peers {
		pit.Peers = append(pit.Peers, mrt.Peer{
			BGPID: as.Uint32(),
			Addr:  0x0A000001 + uint32(i),
			AS:    as,
		})
	}
	mw := mrt.NewWriter(w, 0)
	if err := mw.WritePeerIndexTable(pit); err != nil {
		return err
	}
	prefixes := append([]prefix.Prefix{IncidentVictimPrefix()}, incidentBaseline()...)
	for seq, p := range prefixes {
		rec := &mrt.RIBIPv4Unicast{SequenceNumber: uint32(seq), Prefix: p}
		for i, as := range peers {
			origin := IncidentVictimAS
			if seq > 0 {
				// Padding prefixes are originated by a per-prefix stub AS.
				origin = asn.FromUint32(uint32(64496 + seq))
			}
			rec.Entries = append(rec.Entries, mrt.RIBEntry{
				PeerIndex: uint16(i),
				Origin:    bgpwire.OriginIGP,
				ASPath:    []asn.ASN{as, IncidentUpstreamAS, origin},
				NextHop:   0x0A000001 + uint32(i),
			})
		}
		if err := mw.WriteRIB(rec); err != nil {
			return err
		}
	}
	return mw.Flush()
}

// WriteIncidentUpdates writes the BGP4MP update stream, damage included:
// an unknown-type record and a malformed known-type record mid-stream,
// and a final record cut off mid-body the way a capture interrupted by a
// collector crash ends. Readers must report two skips and a truncation.
func WriteIncidentUpdates(w io.Writer) error {
	writeEvent := func(ev incidentEvent) error {
		mw := mrt.NewWriter(w, ev.ts)
		if err := mw.WriteBGP4MP(&mrt.BGP4MPMessage{
			Timestamp: ev.ts,
			PeerAS:    ev.peer,
			LocalAS:   65535,
			PeerAddr:  0x0A000001,
			LocalAddr: 0x7F000001,
			Message:   ev.update,
		}); err != nil {
			return err
		}
		return mw.Flush()
	}
	events := incidentEvents()
	for i, ev := range events {
		if err := writeEvent(ev); err != nil {
			return fmt.Errorf("incident event %d: %w", i, err)
		}
		switch i {
		case 1:
			// A record of a type this module does not decode (an OSPF
			// export, say), as mixed-capture files contain.
			if err := writeRawRecord(w, 99, 1, []byte{0xDE, 0xAD, 0xBE}); err != nil {
				return err
			}
		case 3:
			// A known-type record whose body is garbage: BGP4MP MESSAGE_AS4
			// shorter than its own preamble.
			if err := writeRawRecord(w, mrt.TypeBGP4MP, mrt.SubtypeMessageAS4, []byte{0x00, 0x01, 0x02, 0x03}); err != nil {
				return err
			}
		}
	}
	// The truncated tail: a header promising 64 body bytes, then ten.
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:4], 7)
	binary.BigEndian.PutUint16(hdr[4:6], mrt.TypeBGP4MP)
	binary.BigEndian.PutUint16(hdr[6:8], mrt.SubtypeMessageAS4)
	binary.BigEndian.PutUint32(hdr[8:12], 64)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(make([]byte, 10))
	return err
}

// writeRawRecord emits one MRT record with an arbitrary (possibly bogus)
// type, subtype and body — the fixture's damage injector.
func writeRawRecord(w io.Writer, typ, subtype uint16, body []byte) error {
	var hdr [12]byte
	binary.BigEndian.PutUint16(hdr[4:6], typ)
	binary.BigEndian.PutUint16(hdr[6:8], subtype)
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}
