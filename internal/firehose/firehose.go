// Package firehose replays MRT routing data — a TABLE_DUMP_V2 RIB dump
// as the baseline table plus a BGP4MP update stream — through the live
// feed stack: one ProbeRunner session per vantage peer (or a bounded
// pool of shared sessions), all streaming into one Collector. This is
// the repo's heavy-traffic path: real-format data, production-shaped
// concurrency, and robustness as the contract at every layer. Damaged
// input degrades to counted skips (mrt malformed budgets), a slow
// collector degrades to counted sheds (ProbeRunner MaxPending), an
// overloaded collector sheds its noisiest session (Collector MaxLoad),
// and a truncated file ends the replay cleanly after its intact prefix.
//
// Determinism: with per-peer sessions each alert-worthy announcement
// travels exactly one session in file order, so feed.AlertSetDigest over
// the resulting alerts is a pure function of the input bytes — under
// fault-injected transports too (see the chaos soak), because runners
// retransmit their full table on reconnect and the detector
// deduplicates. No wall clock is consulted: pacing and retry timing run
// on an injected tick.Clock.
package firehose

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/bgpwire"
	"github.com/bgpsim/bgpsim/internal/feed"
	"github.com/bgpsim/bgpsim/internal/mrt"
	"github.com/bgpsim/bgpsim/internal/prefix"
	"github.com/bgpsim/bgpsim/internal/tick"
)

// Config describes one replay.
type Config struct {
	// RIB, when non-nil, is a TABLE_DUMP_V2 snapshot loaded as the
	// baseline: every RIB entry is enqueued as an announcement from its
	// peer before the update stream starts.
	RIB io.Reader
	// Updates, when non-nil, is a BGP4MP update stream replayed in file
	// order.
	Updates io.Reader
	// Dial opens one transport connection to the collector per session
	// attempt. Required.
	Dial func() (io.ReadWriteCloser, error)
	// Sessions caps concurrent probe sessions. 0 means one session per
	// distinct peer AS; with a cap, peers are coalesced onto session
	// slots by first-appearance order (peer i → slot i mod Sessions),
	// and a slot speaks with the AS of its first peer.
	Sessions int
	// Speed scales replay pacing by the BGP4MP timestamps: 1.0 replays
	// in real time, 2.0 twice as fast, 0 at maximum speed (no pacing).
	Speed float64
	// MaxPending / LowPending bound each session's unsent queue (see
	// feed.ProbeRunner); 0 MaxPending means unbounded.
	MaxPending int
	LowPending int
	// MalformedBudget caps skippable (unknown or undecodable) records
	// per input file; 0 means mrt.DefaultMalformedBudget, negative means
	// unlimited.
	MalformedBudget int
	// MaxAttempts caps consecutive failed connect attempts per session;
	// 0 retries forever.
	MaxAttempts int
	// HoldTime is the hold time (seconds) each probe offers; 0 means
	// feed.DefaultHoldTime.
	HoldTime uint16
	// BackoffBase / BackoffMax bound reconnect delays; zero values take
	// the feed defaults.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Stop, when non-nil, ends dispatch early when closed: the replay
	// stops at the next record boundary (interrupting any pacing wait)
	// and proceeds to its normal graceful drain. Context cancellation,
	// by contrast, cuts the drain short and force-closes transports.
	Stop <-chan struct{}
	// Clock injects time for pacing, backoff and drain polling; nil
	// means the wall clock.
	Clock tick.Clock
	// Logf, when non-nil, receives replay progress and degradation log
	// lines.
	Logf func(format string, args ...any)
}

// RunnerReport is one session slot's final accounting.
type RunnerReport struct {
	// AS is the slot's speaker AS (its first-assigned peer).
	AS asn.ASN
	// Stats is the slot runner's final counter snapshot.
	Stats feed.RunnerStats
}

// Stats summarizes one replay.
type Stats struct {
	// RIBRoutes counts baseline routes loaded from the RIB dump.
	RIBRoutes int
	// Peers counts distinct peer ASes seen across both inputs.
	Peers int
	// Sessions counts session slots used.
	Sessions int
	// Updates counts updates dispatched to session queues (baseline
	// routes included).
	Updates int
	// Skipped counts unknown/malformed MRT records skipped across both
	// inputs.
	Skipped int
	// Truncated reports whether an input ended mid-record; the replay
	// covered its clean prefix.
	Truncated bool
	// Sent / Shed aggregate the per-session write and backpressure-drop
	// counters.
	Sent int
	Shed int
	// Runners holds each slot's final accounting, in slot order.
	Runners []RunnerReport
}

// Engine replays MRT data through probe sessions into a collector.
// Build with New; one Engine runs once.
type Engine struct {
	cfg   Config
	clock tick.Clock

	mu      sync.Mutex
	runners []*feed.ProbeRunner
	slotOf  map[asn.ASN]int
	peers   []asn.ASN // distinct peers in first-appearance order
	conns   map[io.Closer]struct{}
	closing bool
	runErr  error
	stats   Stats

	wg sync.WaitGroup
}

// New builds an Engine over cfg.
func New(cfg Config) *Engine {
	return &Engine{
		cfg:    cfg,
		clock:  tick.Or(cfg.Clock),
		slotOf: make(map[asn.ASN]int),
		conns:  make(map[io.Closer]struct{}),
	}
}

func (e *Engine) logf(format string, args ...any) {
	if e.cfg.Logf != nil {
		e.cfg.Logf(format, args...)
	}
}

// bump applies one counter mutation under the engine mutex.
func (e *Engine) bump(f func(*Stats)) {
	e.mu.Lock()
	f(&e.stats)
	e.mu.Unlock()
}

// collect assembles a Stats snapshot: dispatch counters plus the session
// runners' live counters.
func (e *Engine) collect() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.stats
	s.Peers = len(e.peers)
	s.Sessions = len(e.runners)
	for _, r := range e.runners {
		rs := r.Stats()
		s.Sent += rs.Sent
		s.Shed += rs.Shed
		s.Runners = append(s.Runners, RunnerReport{AS: r.AS, Stats: rs})
	}
	return s
}

// Snapshot reports the replay's counters as of now. Safe to call from
// any goroutine while Run is in flight — the progress feed for long
// replays and the probe point for backpressure tests.
func (e *Engine) Snapshot() Stats { return e.collect() }

// trackedConn unregisters itself from the engine's force-close set when
// the session closes it.
type trackedConn struct {
	io.ReadWriteCloser
	e *Engine
}

func (t *trackedConn) Close() error {
	t.e.mu.Lock()
	delete(t.e.conns, t)
	t.e.mu.Unlock()
	return t.ReadWriteCloser.Close()
}

// dial wraps cfg.Dial with live-connection tracking, so teardown can
// force-close transports that deadline-less fakes or stalled peers have
// wedged mid-write.
func (e *Engine) dial() (io.ReadWriteCloser, error) {
	conn, err := e.cfg.Dial()
	if err != nil {
		return nil, err
	}
	t := &trackedConn{ReadWriteCloser: conn, e: e}
	e.mu.Lock()
	if e.closing {
		e.mu.Unlock()
		conn.Close()
		return nil, errors.New("firehose: engine shutting down")
	}
	e.conns[t] = struct{}{}
	e.mu.Unlock()
	return t, nil
}

// closeConns force-closes every live transport, unblocking any session
// goroutine stuck in a read or write.
func (e *Engine) closeConns() {
	e.mu.Lock()
	e.closing = true
	conns := make([]io.Closer, 0, len(e.conns))
	for conn := range e.conns { //bgplint:ignore maporder force-close teardown; close order is immaterial
		conns = append(conns, conn)
	}
	e.conns = make(map[io.Closer]struct{})
	e.mu.Unlock()
	// Close outside the lock: trackedConn.Close re-enters e.mu to
	// unregister itself.
	for _, conn := range conns {
		_ = conn.Close()
	}
}

// runnerFor returns the session runner for peer, creating the slot (and
// starting its Run goroutine) on first sight. Slot assignment is a pure
// function of first-appearance order, so replays are reproducible.
func (e *Engine) runnerFor(ctx context.Context, peer asn.ASN) *feed.ProbeRunner {
	e.mu.Lock()
	defer e.mu.Unlock()
	if i, ok := e.slotOf[peer]; ok {
		return e.runners[i]
	}
	seen := len(e.peers)
	e.peers = append(e.peers, peer)
	if n := e.cfg.Sessions; n > 0 && len(e.runners) >= n {
		slot := seen % n
		e.slotOf[peer] = slot
		return e.runners[slot]
	}
	slot := len(e.runners)
	e.slotOf[peer] = slot
	r := &feed.ProbeRunner{
		AS:          peer,
		RouterID:    uint32(slot + 1),
		Dial:        e.dial,
		HoldTime:    e.cfg.HoldTime,
		BackoffBase: e.cfg.BackoffBase,
		BackoffMax:  e.cfg.BackoffMax,
		MaxAttempts: e.cfg.MaxAttempts,
		Clock:       e.clock,
		MaxPending:  e.cfg.MaxPending,
		LowPending:  e.cfg.LowPending,
		Logf:        e.cfg.Logf,
	}
	e.runners = append(e.runners, r)
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		if err := r.Run(ctx); err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			e.mu.Lock()
			if e.runErr == nil {
				e.runErr = fmt.Errorf("firehose: session %v: %w", peer, err)
			}
			e.mu.Unlock()
		}
	}()
	return r
}

// stopRequested reports whether cfg.Stop has been closed.
func (e *Engine) stopRequested() bool {
	if e.cfg.Stop == nil {
		return false
	}
	select {
	case <-e.cfg.Stop:
		return true
	default:
		return false
	}
}

// reader builds an mrt.Reader with the configured malformed budget.
func (e *Engine) reader(r io.Reader) *mrt.Reader {
	mr := mrt.NewReader(r)
	if e.cfg.MalformedBudget != 0 {
		mr.SetMalformedBudget(e.cfg.MalformedBudget)
	}
	return mr
}

// loadRIB enqueues every baseline route from the RIB dump onto its
// peer's session, in file order.
func (e *Engine) loadRIB(ctx context.Context) error {
	mr := e.reader(e.cfg.RIB)
	defer func() { e.bump(func(s *Stats) { s.Skipped += mr.Skipped() }) }()
	var pit *mrt.PeerIndexTable
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if e.stopRequested() {
			return nil
		}
		rec, err := mr.Next()
		if err == io.EOF {
			return nil
		}
		if mrt.Skippable(err) {
			continue
		}
		if errors.Is(err, mrt.ErrTruncated) {
			e.bump(func(s *Stats) { s.Truncated = true })
			e.logf("firehose: RIB dump truncated after a clean %d-byte prefix; replaying what decoded", mr.Offset())
			return nil
		}
		if err != nil {
			return fmt.Errorf("firehose: RIB dump: %w", err)
		}
		switch v := rec.(type) {
		case *mrt.PeerIndexTable:
			pit = v
		case *mrt.RIBIPv4Unicast:
			if pit == nil {
				return fmt.Errorf("firehose: RIB record before peer index table")
			}
			for _, entry := range v.Entries {
				if int(entry.PeerIndex) >= len(pit.Peers) {
					return fmt.Errorf("firehose: RIB entry references peer %d of %d", entry.PeerIndex, len(pit.Peers))
				}
				peer := pit.Peers[entry.PeerIndex]
				e.runnerFor(ctx, peer.AS).Enqueue(&bgpwire.Update{
					Origin:  entry.Origin,
					ASPath:  append([]asn.ASN(nil), entry.ASPath...),
					NextHop: entry.NextHop,
					NLRI:    []prefix.Prefix{v.Prefix},
				})
				e.bump(func(s *Stats) { s.RIBRoutes++; s.Updates++ })
			}
		}
	}
}

// replayUpdates streams the BGP4MP update log through the sessions,
// paced by record timestamps when Speed > 0.
func (e *Engine) replayUpdates(ctx context.Context) error {
	mr := e.reader(e.cfg.Updates)
	defer func() { e.bump(func(s *Stats) { s.Skipped += mr.Skipped() }) }()
	var lastTS uint32
	first := true
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if e.stopRequested() {
			return nil
		}
		rec, err := mr.Next()
		if err == io.EOF {
			return nil
		}
		if mrt.Skippable(err) {
			continue
		}
		if errors.Is(err, mrt.ErrTruncated) {
			e.bump(func(s *Stats) { s.Truncated = true })
			e.logf("firehose: update stream truncated after a clean %d-byte prefix; replaying what decoded", mr.Offset())
			return nil
		}
		if err != nil {
			return fmt.Errorf("firehose: update stream: %w", err)
		}
		m, ok := rec.(*mrt.BGP4MPMessage)
		if !ok {
			continue // a RIB record mid-stream carries no replay event
		}
		u, ok := m.Message.(*bgpwire.Update)
		if !ok {
			continue // OPENs/KEEPALIVEs in a capture are session noise
		}
		if e.cfg.Speed > 0 && !first && m.Timestamp > lastTS {
			gap := time.Duration(float64(m.Timestamp-lastTS) * float64(time.Second) / e.cfg.Speed)
			t := e.clock.NewTimer(gap)
			select {
			case <-t.C():
			case <-e.cfg.Stop: // nil when unset: never selected
				t.Stop()
				return nil
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			}
		}
		lastTS = m.Timestamp
		first = false
		e.runnerFor(ctx, m.PeerAS).Enqueue(u)
		e.bump(func(s *Stats) { s.Updates++ })
	}
}

// Run executes the replay: baseline RIB, then the update stream, then a
// graceful drain — every session finishes writing its table and closes
// with a Cease, so the collector has processed everything Run dispatched
// by the time it returns. On ctx cancellation or expiry the drain is cut
// short: live transports are force-closed and the error is returned with
// whatever Stats had accumulated.
func (e *Engine) Run(ctx context.Context) (Stats, error) {
	if e.cfg.Dial == nil {
		return Stats{}, errors.New("firehose: Config.Dial is required")
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	dispatchErr := func() error {
		if e.cfg.RIB != nil {
			if err := e.loadRIB(ctx); err != nil {
				return err
			}
		}
		if e.cfg.Updates != nil {
			if err := e.replayUpdates(ctx); err != nil {
				return err
			}
		}
		return nil
	}()

	// Drain: every runner closes its session once its queue is written.
	e.mu.Lock()
	runners := append([]*feed.ProbeRunner(nil), e.runners...)
	e.mu.Unlock()
	for _, r := range runners {
		r.CloseWhenDrained()
	}
	done := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		// Deadline-less transports can wedge a drain forever; cut the
		// connections out from under the sessions and collect what ran.
		cancel()
		e.closeConns()
		<-done
		if dispatchErr == nil {
			dispatchErr = ctx.Err()
		}
	}

	stats := e.collect()
	if dispatchErr == nil {
		e.mu.Lock()
		dispatchErr = e.runErr
		e.mu.Unlock()
	}
	return stats, dispatchErr
}
