package firehose_test

import (
	"bytes"
	"context"
	"flag"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/bgpsim/bgpsim/internal/chaos"
	"github.com/bgpsim/bgpsim/internal/feed"
	"github.com/bgpsim/bgpsim/internal/firehose"
)

// -firehose.seed selects the fault schedule; CI runs the soak at two
// fixed seeds: go test ./internal/firehose/ -args -firehose.seed=N
var firehoseSeed = flag.Int64("firehose.seed", 1, "base seed for the chaotic replay soak")

type soakOutcome struct {
	alerts []feed.Alert
	faults chaos.Stats
	stats  firehose.Stats
}

// runIncidentSoak replays the checked-in incident fixture into a real
// TCP collector, optionally through chaos-wrapped transports, and
// returns what the detector saw once the replay drained and the
// collector finished every session.
func runIncidentSoak(t *testing.T, seed int64, chaotic bool) soakOutcome {
	t.Helper()
	det, rs := incidentDetector(t)
	collector := &feed.Collector{
		LocalAS: 65535, RouterID: 1,
		Detector: det, Validator: rs,
		HoldTime: 30, MaxMalformed: 3,
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		_ = collector.Serve(l)
	}()

	cfg := chaos.Config{
		PReset: 0.15, PTruncate: 0.1, PCorrupt: 0.1,
		PStall: 0.2, Stall: 500 * time.Microsecond,
	}
	var (
		mu         sync.Mutex
		attempts   int
		chaosConns []*chaos.Conn
	)
	dial := func() (io.ReadWriteCloser, error) {
		conn, err := net.DialTimeout("tcp", l.Addr().String(), 5*time.Second)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		attempts++
		n := attempts
		mu.Unlock()
		// The first attempts fight the chaotic transport; after that the
		// weather clears, so the drain always terminates.
		if !chaotic || n > 40 {
			return conn, nil
		}
		cc := chaos.Wrap(conn, seed*1000+int64(n), cfg)
		mu.Lock()
		chaosConns = append(chaosConns, cc)
		mu.Unlock()
		return cc, nil
	}

	e := firehose.New(firehose.Config{
		RIB:         bytes.NewReader(readFixture(t, "incident_rib.mrt")),
		Updates:     bytes.NewReader(readFixture(t, "incident.mrt")),
		Dial:        dial,
		HoldTime:    30,
		BackoffBase: time.Millisecond,
		BackoffMax:  10 * time.Millisecond,
	})
	stats, err := e.Run(context.Background())
	if err != nil {
		t.Fatalf("seed %d: replay: %v", seed, err)
	}

	// Run returning means every session wrote its full table and closed
	// gracefully; Shutdown waits for the collector to read and process
	// what TCP still has buffered.
	l.Close()
	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer scancel()
	if err := collector.Shutdown(sctx); err != nil {
		t.Fatalf("seed %d: shutdown: %v", seed, err)
	}
	<-serveDone

	out := soakOutcome{alerts: det.Alerts(), stats: stats}
	mu.Lock()
	for _, cc := range chaosConns {
		st := cc.Stats()
		out.faults.Resets += st.Resets
		out.faults.Truncations += st.Truncations
		out.faults.Corruptions += st.Corruptions
		out.faults.Stalls += st.Stalls
	}
	mu.Unlock()
	return out
}

// TestIncidentReplayChaosSoak pins the tentpole robustness property: a
// fixture replay pushed through transports full of resets, truncations,
// corruption and stalls produces the exact alert-set digest of a
// fault-free replay — delayed, reconnected and retransmitted, but never
// losing or duplicating an alert.
func TestIncidentReplayChaosSoak(t *testing.T) {
	baseline := runIncidentSoak(t, 0, false)
	if len(baseline.alerts) != firehose.IncidentAlerts {
		t.Fatalf("fault-free alerts = %d, want %d", len(baseline.alerts), firehose.IncidentAlerts)
	}
	want := feed.AlertSetDigest(baseline.alerts)

	for _, seed := range []int64{*firehoseSeed, *firehoseSeed + 41} {
		res := runIncidentSoak(t, seed, true)
		if got := feed.AlertSetDigest(res.alerts); got != want {
			t.Errorf("seed %d: alert-set digest %x != fault-free digest %x", seed, got, want)
		}
		if res.faults == (chaos.Stats{}) {
			t.Errorf("seed %d: chaotic run injected no faults; the soak exercised nothing", seed)
		}
		var reconnects int
		for _, r := range res.stats.Runners {
			reconnects += r.Stats.Reconnects
		}
		t.Logf("seed %d: %d sessions, %d reconnects, %d sent, faults %+v",
			seed, res.stats.Sessions, reconnects, res.stats.Sent, res.faults)
	}
}
