package firehose_test

import (
	"bytes"
	"context"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/bgpwire"
	"github.com/bgpsim/bgpsim/internal/feed"
	"github.com/bgpsim/bgpsim/internal/firehose"
	"github.com/bgpsim/bgpsim/internal/mrt"
	"github.com/bgpsim/bgpsim/internal/prefix"
	"github.com/bgpsim/bgpsim/internal/rpki"
	"github.com/bgpsim/bgpsim/internal/tick"
)

// -firehose.update regenerates the checked-in fixtures from the
// generators in incident.go:
//
//	go test ./internal/firehose/ -run 'Fixtures|PinnedDigest' -args -firehose.update
var updateFixtures = flag.Bool("firehose.update", false, "rewrite testdata fixtures from the incident generators")

func fixturePath(name string) string { return filepath.Join("testdata", name) }

func readFixture(t *testing.T, name string) []byte {
	t.Helper()
	b, err := os.ReadFile(fixturePath(name))
	if err != nil {
		t.Fatalf("read fixture %s (regenerate with -args -firehose.update): %v", name, err)
	}
	return b
}

// genROAs renders IncidentROAs in the "prefix maxlen origin" line format
// rpki.LoadROAs and cmd/mrtreplay consume.
func genROAs() []byte {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "# route origin authorizations in force during the incident\n")
	for _, roa := range firehose.IncidentROAs() {
		fmt.Fprintf(&buf, "%v %d %d\n", roa.Prefix, roa.MaxLength, roa.Origin.Uint32())
	}
	return buf.Bytes()
}

// TestFixturesInSync pins the checked-in MRT fixtures byte-for-byte to
// the generators, so fixture edits can only happen deliberately via
// -firehose.update.
func TestFixturesInSync(t *testing.T) {
	var rib, upd bytes.Buffer
	if err := firehose.WriteIncidentRIB(&rib); err != nil {
		t.Fatal(err)
	}
	if err := firehose.WriteIncidentUpdates(&upd); err != nil {
		t.Fatal(err)
	}
	gen := map[string][]byte{
		"incident_rib.mrt":  rib.Bytes(),
		"incident.mrt":      upd.Bytes(),
		"incident_roas.txt": genROAs(),
	}
	if *updateFixtures {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"incident_rib.mrt", "incident.mrt", "incident_roas.txt"} {
			if err := os.WriteFile(fixturePath(name), gen[name], 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("wrote %s (%d bytes)", fixturePath(name), len(gen[name]))
		}
		return
	}
	for _, name := range []string{"incident_rib.mrt", "incident.mrt", "incident_roas.txt"} {
		if got := readFixture(t, name); !bytes.Equal(got, gen[name]) {
			t.Errorf("%s is out of sync with its generator (%d vs %d bytes); regenerate with -args -firehose.update", name, len(got), len(gen[name]))
		}
	}
}

// incidentDetector builds the detection stack the incident replay runs
// against: the ROAs in force, one route-server validator at the
// collector boundary, and a detector sharing its memo.
func incidentDetector(t *testing.T) (*feed.Detector, *feed.RouteServer) {
	t.Helper()
	var store rpki.Store
	rs := feed.NewRouteServer(&store)
	det := feed.NewDetector(rs, nil)
	for _, roa := range firehose.IncidentROAs() {
		if err := store.Add(roa); err != nil {
			t.Fatal(err)
		}
		det.NotePublished(roa.Prefix)
	}
	return det, rs
}

// pipeCollector starts a collector and returns a Dial that opens
// net.Pipe sessions into it. sessions.Wait() joins every session
// goroutine; the engine's drain closes all conns, so the join cannot
// hang.
func pipeCollector(t *testing.T, det *feed.Detector, rs *feed.RouteServer, clock tick.Clock) (*feed.Collector, func() (io.ReadWriteCloser, error), *sync.WaitGroup) {
	t.Helper()
	c := &feed.Collector{
		LocalAS: 65535, RouterID: 1,
		Clock:     clock,
		Detector:  det,
		Validator: rs,
	}
	var sessions sync.WaitGroup
	dial := func() (io.ReadWriteCloser, error) {
		server, client := net.Pipe()
		sessions.Add(1)
		go func() {
			defer sessions.Done()
			_ = c.HandleSession(server)
		}()
		return client, nil
	}
	return c, dial, &sessions
}

// replayIncident runs the checked-in incident fixture through a full
// pipe-backed stack and returns the stats and the detector.
func replayIncident(t *testing.T, sessions int) (firehose.Stats, *feed.Detector) {
	t.Helper()
	det, rs := incidentDetector(t)
	_, dial, join := pipeCollector(t, det, rs, tick.NewFake())
	e := firehose.New(firehose.Config{
		RIB:      bytes.NewReader(readFixture(t, "incident_rib.mrt")),
		Updates:  bytes.NewReader(readFixture(t, "incident.mrt")),
		Dial:     dial,
		Sessions: sessions,
		Clock:    tick.NewFake(),
	})
	stats, err := e.Run(context.Background())
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	join.Wait()
	return stats, det
}

// TestIncidentReplayPinnedDigest is the fixture's contract: the damaged
// update stream replays to exactly IncidentAlerts alerts whose set
// digest matches the checked-in testdata/incident.digest — two records
// skipped, the truncated tail detected, nothing shed and nothing lost.
func TestIncidentReplayPinnedDigest(t *testing.T) {
	stats, det := replayIncident(t, 0)

	peers := len(firehose.IncidentPeers())
	wantRoutes := peers * 5 // the victim /22 plus four padding prefixes, per peer
	if stats.RIBRoutes != wantRoutes {
		t.Errorf("RIBRoutes = %d, want %d", stats.RIBRoutes, wantRoutes)
	}
	if stats.Peers != peers || stats.Sessions != peers {
		t.Errorf("Peers/Sessions = %d/%d, want %d/%d", stats.Peers, stats.Sessions, peers, peers)
	}
	wantUpdates := wantRoutes + 7 // the seven BGP4MP events in incidentEvents
	if stats.Updates != wantUpdates || stats.Sent != wantUpdates {
		t.Errorf("Updates/Sent = %d/%d, want %d/%d (every dispatched update written)", stats.Updates, stats.Sent, wantUpdates, wantUpdates)
	}
	if stats.Skipped != 2 {
		t.Errorf("Skipped = %d, want 2 (one unknown type, one malformed body)", stats.Skipped)
	}
	if !stats.Truncated {
		t.Error("Truncated = false, want true (the fixture ends mid-record)")
	}
	if stats.Shed != 0 {
		t.Errorf("Shed = %d, want 0 (nothing backpressured this replay)", stats.Shed)
	}

	alerts := det.Alerts()
	if len(alerts) != firehose.IncidentAlerts {
		t.Fatalf("alerts = %d, want %d", len(alerts), firehose.IncidentAlerts)
	}
	var sub, invalid int
	for _, a := range alerts {
		switch a.Reason {
		case feed.ReasonSubPrefix:
			sub++
		case feed.ReasonInvalidOrigin:
			invalid++
		}
		if a.Origin != firehose.IncidentHijackerAS {
			t.Errorf("alert %v origin = %v, want %v", a.Prefix, a.Origin, firehose.IncidentHijackerAS)
		}
	}
	if sub != 4 || invalid != 1 {
		t.Errorf("reasons = %d sub-prefix / %d invalid-origin, want 4/1", sub, invalid)
	}

	digest := feed.AlertSetDigest(alerts)
	got := hex.EncodeToString(digest[:]) + "\n"
	if *updateFixtures {
		if err := os.WriteFile(fixturePath("incident.digest"), []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s: %s", fixturePath("incident.digest"), got)
		return
	}
	if want := string(readFixture(t, "incident.digest")); got != want {
		t.Errorf("alert-set digest = %s, pinned %s", got, want)
	}
}

// TestReplaySessionCoalescing: capping Sessions below the peer count
// funnels peers onto shared slots deterministically — the alert set stays
// complete and two identical runs agree byte-for-byte.
func TestReplaySessionCoalescing(t *testing.T) {
	stats1, det1 := replayIncident(t, 2)
	if stats1.Sessions != 2 {
		t.Errorf("Sessions = %d, want 2", stats1.Sessions)
	}
	if stats1.Peers != len(firehose.IncidentPeers()) {
		t.Errorf("Peers = %d, want %d (coalescing must not hide peers)", stats1.Peers, len(firehose.IncidentPeers()))
	}
	if n := len(det1.Alerts()); n != firehose.IncidentAlerts {
		t.Fatalf("alerts = %d, want %d", n, firehose.IncidentAlerts)
	}
	_, det2 := replayIncident(t, 2)
	if feed.AlertSetDigest(det1.Alerts()) != feed.AlertSetDigest(det2.Alerts()) {
		t.Error("two identical coalesced replays produced different digests")
	}
}

// TestReplayPacing: with Speed set, the engine spaces dispatches by the
// records' timestamp deltas on the injected clock — 9 seconds of capture
// at Speed 2 must advance the fake clock by at least 4.5 seconds.
func TestReplayPacing(t *testing.T) {
	var buf bytes.Buffer
	for i, ts := range []uint32{10, 13, 19} {
		mw := mrt.NewWriter(&buf, ts)
		err := mw.WriteBGP4MP(&mrt.BGP4MPMessage{
			Timestamp: ts, PeerAS: 65001, LocalAS: 65535, PeerAddr: 1, LocalAddr: 2,
			Message: &bgpwire.Update{
				Origin: bgpwire.OriginIGP, ASPath: []asn.ASN{65001}, NextHop: 1,
				NLRI: []prefix.Prefix{prefix.New(uint32(0xC6336400+i*4), 30)},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := mw.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	// A write-sink transport stands in for the collector: pacing happens
	// in the dispatch loop, and a synchronous pipe would deadlock the
	// clock driver against keepalive timers it happens to fire.
	fc := tick.NewFake()
	e := firehose.New(firehose.Config{
		Updates: bytes.NewReader(buf.Bytes()),
		Dial:    func() (io.ReadWriteCloser, error) { return newSinkConn(t), nil },
		Speed:   2,
		Clock:   fc,
	})
	start := fc.Now()
	var stats firehose.Stats
	var runErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		stats, runErr = e.Run(context.Background())
	}()
	// Drive the fake clock: fire whichever timer is due next until the
	// replay completes. Only pacing timers have near deadlines, so the
	// clock advances by the scaled capture gaps.
	for {
		select {
		case <-done:
			if runErr != nil {
				t.Fatalf("replay: %v", runErr)
			}
			if stats.Updates != 3 {
				t.Errorf("Updates = %d, want 3", stats.Updates)
			}
			if elapsed := fc.Now().Sub(start); elapsed < 4500*time.Millisecond {
				t.Errorf("fake clock advanced %v, want ≥ 4.5s (9s of capture at Speed 2)", elapsed)
			}
			return
		default:
		}
		if _, ok := fc.AdvanceToNext(); !ok {
			time.Sleep(100 * time.Microsecond)
		}
	}
}

// sinkConn scripts the collector half of a handshake and then accepts
// every write — a collector that always keeps up, for tests where only
// the dispatch side matters.
type sinkConn struct {
	mu        sync.Mutex
	script    []byte
	closed    chan struct{}
	closeOnce sync.Once
}

func newSinkConn(t *testing.T) *sinkConn {
	t.Helper()
	var script bytes.Buffer
	if err := bgpwire.WriteMessage(&script, &bgpwire.Open{Version: 4, AS: 65535, HoldTime: 30, RouterID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := bgpwire.WriteMessage(&script, bgpwire.Keepalive{}); err != nil {
		t.Fatal(err)
	}
	return &sinkConn{script: script.Bytes(), closed: make(chan struct{})}
}

func (c *sinkConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	if len(c.script) > 0 {
		n := copy(p, c.script)
		c.script = c.script[n:]
		c.mu.Unlock()
		return n, nil
	}
	c.mu.Unlock()
	<-c.closed
	return 0, io.EOF
}

func (c *sinkConn) Write(p []byte) (int, error) {
	select {
	case <-c.closed:
		return 0, io.ErrClosedPipe
	default:
		return len(p), nil
	}
}

func (c *sinkConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return nil
}

// stallConn scripts the collector half of a handshake and then stops
// reading forever: the probe's OPEN write succeeds, every later write
// blocks until Close. It deliberately implements no deadline methods, so
// only the engine's force-close teardown can unblock it.
type stallConn struct {
	mu        sync.Mutex
	script    []byte
	wrote     int
	stalled   chan struct{}
	closed    chan struct{}
	stallOnce sync.Once
	closeOnce sync.Once
}

func newStallConn(t *testing.T) *stallConn {
	t.Helper()
	var script bytes.Buffer
	if err := bgpwire.WriteMessage(&script, &bgpwire.Open{Version: 4, AS: 65535, HoldTime: 30, RouterID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := bgpwire.WriteMessage(&script, bgpwire.Keepalive{}); err != nil {
		t.Fatal(err)
	}
	return &stallConn{
		script:  script.Bytes(),
		stalled: make(chan struct{}),
		closed:  make(chan struct{}),
	}
}

func (c *stallConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	if len(c.script) > 0 {
		n := copy(p, c.script)
		c.script = c.script[n:]
		c.mu.Unlock()
		return n, nil
	}
	c.mu.Unlock()
	<-c.closed
	return 0, io.EOF
}

func (c *stallConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	c.wrote++
	first := c.wrote == 1
	c.mu.Unlock()
	if first {
		return len(p), nil // the probe's OPEN
	}
	c.stallOnce.Do(func() { close(c.stalled) })
	<-c.closed
	return 0, io.ErrClosedPipe
}

func (c *stallConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return nil
}

// TestReplayStalledCollectorBounded is the backpressure acceptance
// check: replaying 100 updates into a collector that never reads must
// complete dispatch at bounded memory with an exactly predictable shed
// count — 19 sheds of 5 as the queue crests MaxPending, so 95 shed and 5
// retained — and nothing ever sent.
func TestReplayStalledCollectorBounded(t *testing.T) {
	var buf bytes.Buffer
	mw := mrt.NewWriter(&buf, 0)
	for i := 0; i < 100; i++ {
		err := mw.WriteBGP4MP(&mrt.BGP4MPMessage{
			PeerAS: 65001, LocalAS: 65535, PeerAddr: 1, LocalAddr: 2,
			Message: &bgpwire.Update{
				Origin: bgpwire.OriginIGP, ASPath: []asn.ASN{65001, asn.FromUint32(uint32(1000 + i))}, NextHop: 1,
				NLRI: []prefix.Prefix{prefix.New(uint32(0x0A000000+i*256), 24)},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := mw.Flush(); err != nil {
		t.Fatal(err)
	}

	conn := newStallConn(t)
	e := firehose.New(firehose.Config{
		Updates:     bytes.NewReader(buf.Bytes()),
		Dial:        func() (io.ReadWriteCloser, error) { return conn, nil },
		MaxPending:  8,
		LowPending:  4,
		MaxAttempts: 1,
		Clock:       tick.NewFake(),
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stats firehose.Stats
	var runErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		stats, runErr = e.Run(ctx)
	}()

	// Dispatch completes against the stalled transport; the drain then
	// has nowhere to go, which is exactly the cancellation path.
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap := e.Snapshot()
		if snap.Updates == 100 && snap.Shed == 95 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out: snapshot %+v, want Updates 100 / Shed 95", snap)
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-done

	if !errors.Is(runErr, context.Canceled) {
		t.Errorf("Run error = %v, want context.Canceled", runErr)
	}
	if stats.Shed != 95 {
		t.Errorf("Shed = %d, want exactly 95 (19 crossings of MaxPending, 5 dropped each)", stats.Shed)
	}
	if stats.Sent != 0 {
		t.Errorf("Sent = %d, want 0 (the transport never accepted an update)", stats.Sent)
	}
	if len(stats.Runners) != 1 {
		t.Fatalf("Runners = %d, want 1", len(stats.Runners))
	}
	if p := stats.Runners[0].Stats.Pending; p > 8 {
		t.Errorf("Pending = %d, want ≤ MaxPending 8: memory must stay bounded", p)
	}
}

// TestReplayGracefulStop: a closed Stop channel ends dispatch at the
// next record boundary and the replay drains cleanly — the contract
// behind mrtreplay's first-SIGINT behavior, as opposed to ctx
// cancellation's force-close (which surfaces context.Canceled).
func TestReplayGracefulStop(t *testing.T) {
	det, rs := incidentDetector(t)
	clock := tick.NewFake()
	_, dial, join := pipeCollector(t, det, rs, clock)
	stop := make(chan struct{})
	close(stop)
	e := firehose.New(firehose.Config{
		RIB:     bytes.NewReader(readFixture(t, "incident_rib.mrt")),
		Updates: bytes.NewReader(readFixture(t, "incident.mrt")),
		Dial:    dial,
		Stop:    stop,
		Clock:   clock,
	})
	stats, err := e.Run(context.Background())
	if err != nil {
		t.Fatalf("Run after graceful stop: %v", err)
	}
	if stats.Updates != 0 || stats.Sessions != 0 {
		t.Errorf("stopped-before-start replay dispatched %d updates over %d sessions, want none",
			stats.Updates, stats.Sessions)
	}
	join.Wait()
}

// TestReplayMalformedBudgetFatal: a stream more damaged than its budget
// fails loudly instead of degrading silently.
func TestReplayMalformedBudgetFatal(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 3; i++ {
		buf.Write([]byte{0, 0, 0, 0, 0, 99, 0, 1, 0, 0, 0, 0}) // unknown type, empty body
	}
	det, rs := incidentDetector(t)
	_, dial, join := pipeCollector(t, det, rs, tick.NewFake())
	e := firehose.New(firehose.Config{
		Updates:         bytes.NewReader(buf.Bytes()),
		Dial:            dial,
		MalformedBudget: 2,
		Clock:           tick.NewFake(),
	})
	_, err := e.Run(context.Background())
	if !errors.Is(err, mrt.ErrBudgetExhausted) {
		t.Errorf("Run error = %v, want ErrBudgetExhausted", err)
	}
	join.Wait()
}
