// Package detect models IP-hijack detection (Section VI of the paper):
// probe sets (BGP data feeds at chosen vantage ASes), random attack
// workloads, and the evaluation of how many attacks each probe
// configuration sees or misses.
package detect

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/sweep"
	"github.com/bgpsim/bgpsim/internal/topology"
)

// ProbeSet is a named collection of vantage ASes feeding a hijack
// detector.
type ProbeSet struct {
	Name   string
	Probes []int
}

// Tier1Probes peers the detector with every tier-1 AS (the paper's
// case 1, which surprisingly misses 34 % of attacks).
func Tier1Probes(c *topology.Classification) ProbeSet {
	return ProbeSet{
		Name:   fmt.Sprintf("%d tier-1 probes", len(c.Tier1)),
		Probes: append([]int(nil), c.Tier1...),
	}
}

// TopDegreeProbes peers with the k highest-degree ASes (the paper's
// case 3: "all 62 AS routers with degree ≥ 500").
func TopDegreeProbes(g *topology.Graph, k int) ProbeSet {
	order := topology.NodesByDegree(g)
	if k > len(order) {
		k = len(order)
	}
	return ProbeSet{
		Name:   fmt.Sprintf("top %d degree probes", k),
		Probes: append([]int(nil), order[:k]...),
	}
}

// BGPmonLikeProbes reproduces the paper's case 2 configuration class: a
// modest number (24 in the paper) of medium-degree transit ASes with a
// regional clustering bias, like the volunteer peers of a university
// monitoring service. Selection draws from the caller's generator, so the
// same seeded *rand.Rand always yields the same probe set.
func BGPmonLikeProbes(g *topology.Graph, c *topology.Classification, k int, rng *rand.Rand) ProbeSet {
	// Candidates: transit ASes that are neither tier-1 nor in the very top
	// of the degree distribution.
	order := topology.NodesByDegree(g)
	skip := len(order) / 50 // skip the top 2%
	var candidates []int
	for _, i := range order[skip:] {
		if g.IsTransit(i) && !c.IsTier1(i) {
			candidates = append(candidates, i)
		}
	}
	// Regional clustering: favor candidates from a couple of regions.
	var pick []int
	if len(candidates) > 0 {
		homeA := g.Region(candidates[rng.Intn(len(candidates))])
		homeB := g.Region(candidates[rng.Intn(len(candidates))])
		var clustered, rest []int
		for _, i := range candidates {
			if r := g.Region(i); r >= 0 && (r == homeA || r == homeB) {
				clustered = append(clustered, i)
			} else {
				rest = append(rest, i)
			}
		}
		rng.Shuffle(len(clustered), func(i, j int) { clustered[i], clustered[j] = clustered[j], clustered[i] })
		rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
		// About two thirds from the home regions, the rest scattered.
		want := 2 * k / 3
		if want > len(clustered) {
			want = len(clustered)
		}
		pick = append(pick, clustered[:want]...)
		for _, i := range rest {
			if len(pick) >= k {
				break
			}
			pick = append(pick, i)
		}
	}
	sort.Ints(pick)
	return ProbeSet{Name: fmt.Sprintf("%d BGPmon-like probes", len(pick)), Probes: pick}
}

// CustomProbes wraps an explicit probe list.
func CustomProbes(name string, probes []int) ProbeSet {
	return ProbeSet{Name: name, Probes: append([]int(nil), probes...)}
}

// Semantics selects what counts as a probe "seeing" an attack.
type Semantics int

const (
	// SelectedRoute (paper semantics): a probe triggers when its AS
	// selects — and therefore re-exports — the bogus route. BGP feeds only
	// carry the routes the peer router itself chose.
	SelectedRoute Semantics = iota
	// AnyReceived (ablation): a probe triggers when any neighbor offered
	// it the bogus route, even if policy rejected it.
	AnyReceived
)

// GenerateAttacks draws n random attacker/target pairs (attacker ≠
// target) from the pool — the paper draws both from the 6318 transit ASes.
// Using one attack list across probe configurations makes the resulting
// miss rates directly comparable, as in Figure 7. The workload is a pure
// function of the supplied generator's state.
func GenerateAttacks(pool []int, n int, rng *rand.Rand) ([]core.Attack, error) {
	return GenerateAttacksOfKind(pool, n, core.KindOrigin, rng)
}

// GenerateAttacksOfKind is GenerateAttacks with an explicit attack
// scenario. The pair stream is identical across kinds for the same
// generator state, so per-scenario workloads stay directly comparable.
func GenerateAttacksOfKind(pool []int, n int, kind core.AttackKind, rng *rand.Rand) ([]core.Attack, error) {
	if len(pool) < 2 {
		return nil, fmt.Errorf("generate attacks: pool needs ≥ 2 ASes, has %d", len(pool))
	}
	out := make([]core.Attack, 0, n)
	for len(out) < n {
		a := pool[rng.Intn(len(pool))]
		t := pool[rng.Intn(len(pool))]
		if a == t {
			continue
		}
		out = append(out, core.Attack{Target: t, Attacker: a, Kind: kind})
	}
	return out, nil
}

// MissedAttack records one attack that no probe saw.
type MissedAttack struct {
	Attacker  int
	Target    int
	Pollution int
}

// Result summarizes one probe configuration against an attack workload
// (one bar group + line of Figure 7).
type Result struct {
	ProbeSet ProbeSet
	// TriggerHist[k] = number of attacks seen by exactly k probes
	// (k ranges 0..len(Probes)).
	TriggerHist []int
	// MeanPollutionByTriggers[k] = average polluted-AS count over attacks
	// seen by exactly k probes (NaN-free: 0 when the bucket is empty).
	MeanPollutionByTriggers []float64
	// Misses lists every attack with zero triggered probes, in workload
	// order.
	Misses []MissedAttack
	// TotalAttacks is the workload size.
	TotalAttacks int
}

// MissCount returns the number of completely undetected attacks.
func (r *Result) MissCount() int { return len(r.Misses) }

// MissRate returns the fraction of attacks that escaped detection.
func (r *Result) MissRate() float64 {
	if r.TotalAttacks == 0 {
		return 0
	}
	return float64(len(r.Misses)) / float64(r.TotalAttacks)
}

// MissSummary returns (mean, max) pollution over undetected attacks — the
// paper's "undetected attacks had an average AS pollution count of 2,344
// and a maximum of 20,306" numbers.
func (r *Result) MissSummary() (mean float64, max int) {
	if len(r.Misses) == 0 {
		return 0, 0
	}
	sum := 0
	for _, m := range r.Misses {
		sum += m.Pollution
		if m.Pollution > max {
			max = m.Pollution
		}
	}
	return float64(sum) / float64(len(r.Misses)), max
}

// TopMisses returns the k largest undetected attacks (the paper's "top 5
// undetected attacks" tables).
func (r *Result) TopMisses(k int) []MissedAttack {
	ms := append([]MissedAttack(nil), r.Misses...)
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Pollution != ms[j].Pollution {
			return ms[i].Pollution > ms[j].Pollution
		}
		if ms[i].Attacker != ms[j].Attacker {
			return ms[i].Attacker < ms[j].Attacker
		}
		return ms[i].Target < ms[j].Target
	})
	if k > len(ms) {
		k = len(ms)
	}
	return ms[:k]
}

// Evaluate runs the attack workload against one probe configuration.
// def is the deployed prevention the detection runs under (the zero
// Defense = none; the paper evaluates detection without prevention).
func Evaluate(pol *core.Policy, ps ProbeSet, attacks []core.Attack, sem Semantics, def core.Defense) (*Result, error) {
	res, err := EvaluateAll(pol, []ProbeSet{ps}, attacks, sem, def, 0)
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// Record is one attack's detection measurement: its pollution and, for
// every evaluated probe set, how many of that set's probes saw it. It is
// the matrix runtime's stream element and the shard-file payload.
type Record struct {
	Pollution int   `json:"pollution"`
	Triggers  []int `json:"triggers"`
}

// MatrixFor flattens a detection workload into a single-group matrix:
// one cell per attack, all under one policy. Sharding splits by cells,
// so the one big group still divides evenly across `-shard i/n` runs.
func MatrixFor(pol *core.Policy, attacks []core.Attack, def core.Defense) sweep.Matrix {
	return sweep.Matrix{
		Groups: 1,
		Size:   func(int) int { return len(attacks) },
		Policy: func(int) *core.Policy { return pol },
		Job:    func(_, k int) (core.Attack, core.Defense) { return attacks[k], def },
	}
}

// Extractor returns the per-attack measurement extractor: one solve
// serves every probe set (N× fewer solves than evaluating the sets one
// by one — Figure 7's three configurations share one 8000-attack solve
// pass). It runs concurrently on the workers.
func Extractor(pol *core.Policy, sets []ProbeSet, sem Semantics) func(g, k int, o *core.Outcome) Record {
	return func(_, _ int, o *core.Outcome) Record {
		return MeasureRecord(pol, sets, sem, o)
	}
}

// MeasureRecord measures one converged attack against every probe set —
// the query-shaped form of Extractor: it accepts any outcome view, so a
// delta-repaired solve from the query service produces the exact Record
// a batch solve of the same cell would.
func MeasureRecord(pol *core.Policy, sets []ProbeSet, sem Semantics, o core.OutcomeView) Record {
	var received []bool
	if sem == AnyReceived {
		received = core.ReceivedAttackerRoute(pol, o)
	}
	rec := Record{Pollution: o.PollutedCount(), Triggers: make([]int, len(sets))}
	for j := range sets {
		triggered := 0
		for _, p := range sets[j].Probes {
			switch sem {
			case SelectedRoute:
				if o.Polluted(p) {
					triggered++
				}
			case AnyReceived:
				if o.Polluted(p) || received[p] {
					triggered++
				}
			}
		}
		rec.Triggers[j] = triggered
	}
	return rec
}

// Results returns per-set result skeletons plus the streaming reducer
// that builds them incrementally from the in-order record stream —
// histograms, bucket means, and workload-ordered miss lists come out
// identical to the pre-kernel serial evaluation, without the per-attack
// pollution and trigger matrices the buffered path retained.
func Results(sets []ProbeSet, attacks []core.Attack) ([]*Result, sweep.Reducer[Record]) {
	out := make([]*Result, len(sets))
	sums := make([][]int, len(sets))
	for j, ps := range sets {
		out[j] = &Result{
			ProbeSet:                ps,
			TriggerHist:             make([]int, len(ps.Probes)+1),
			MeanPollutionByTriggers: make([]float64, len(ps.Probes)+1),
			TotalAttacks:            len(attacks),
		}
		sums[j] = make([]int, len(ps.Probes)+1)
	}
	return out, sweep.ReduceFunc[Record]{
		EmitFn: func(i int, rec Record) {
			for j := range sets {
				triggered := rec.Triggers[j]
				out[j].TriggerHist[triggered]++
				sums[j][triggered] += rec.Pollution
				if triggered == 0 {
					out[j].Misses = append(out[j].Misses, MissedAttack{
						Attacker: attacks[i].Attacker, Target: attacks[i].Target, Pollution: rec.Pollution,
					})
				}
			}
		},
		FinishFn: func() {
			for j := range out {
				for k := range out[j].MeanPollutionByTriggers {
					if out[j].TriggerHist[k] > 0 {
						out[j].MeanPollutionByTriggers[k] = float64(sums[j][k]) / float64(out[j].TriggerHist[k])
					}
				}
			}
		},
	}
}

// validateSets rejects empty workload descriptions before solving starts.
func validateSets(sets []ProbeSet) error {
	if len(sets) == 0 {
		return fmt.Errorf("evaluate detection: no probe sets")
	}
	for _, ps := range sets {
		if len(ps.Probes) == 0 {
			return fmt.Errorf("evaluate detection: probe set %q is empty", ps.Name)
		}
	}
	return nil
}

// EvaluateAll scores every probe configuration against the workload in
// one streaming matrix pass: each attack is solved exactly once, its
// Record extracted on the worker, and the in-order record stream reduced
// incrementally. workers bounds solve parallelism (0 = GOMAXPROCS);
// results are bit-identical at any worker count.
func EvaluateAll(pol *core.Policy, sets []ProbeSet, attacks []core.Attack, sem Semantics, def core.Defense, workers int) ([]*Result, error) {
	return EvaluateMatrix(pol, sets, attacks, sem, def, sweep.MatrixOptions{Workers: workers})
}

// EvaluateMatrix is EvaluateAll under full matrix options (in-process
// shard selections). Partial `-shard i/n` runs use MatrixFor + Extractor
// with sweep.RunShard and merge through Results' reducer.
func EvaluateMatrix(pol *core.Policy, sets []ProbeSet, attacks []core.Attack, sem Semantics, def core.Defense, opts sweep.MatrixOptions) ([]*Result, error) {
	if err := validateSets(sets); err != nil {
		return nil, err
	}
	out, red := Results(sets, attacks)
	if err := sweep.RunMatrixReduce(MatrixFor(pol, attacks, def), opts, Extractor(pol, sets, sem), red); err != nil {
		return nil, fmt.Errorf("evaluate detection: %w", err)
	}
	return out, nil
}
