package detect

import (
	"math/rand"
	"testing"

	"github.com/bgpsim/bgpsim/internal/core"
)

func TestGreedyProbesValidation(t *testing.T) {
	pol, g, _ := testWorld(t, 300)
	attacks, err := GenerateAttacks(g.TransitNodes(), 50, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GreedyProbes(pol, attacks, nil, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := GreedyProbes(pol, nil, nil, 3); err == nil {
		t.Error("empty workload accepted")
	}
	if _, err := GreedyProbes(pol, attacks, []int{}, 3); err == nil {
		t.Error("empty candidates accepted")
	}
}

func TestGreedyProbesCoverAndDeterminism(t *testing.T) {
	pol, g, _ := testWorld(t, 800)
	attacks, err := GenerateAttacks(g.TransitNodes(), 300, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	ps, err := GreedyProbes(pol, attacks, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.Probes) == 0 || len(ps.Probes) > 8 {
		t.Fatalf("probes = %d", len(ps.Probes))
	}
	// Determinism.
	ps2, err := GreedyProbes(pol, attacks, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ps.Probes {
		if ps.Probes[i] != ps2.Probes[i] {
			t.Fatal("greedy selection not deterministic")
		}
	}
	// No duplicates.
	seen := map[int]bool{}
	for _, p := range ps.Probes {
		if seen[p] {
			t.Fatal("duplicate probe chosen")
		}
		seen[p] = true
	}
}

// TestGreedyBeatsDegreeOnTraining: on its own training workload, k greedy
// probes must detect at least as many attacks as the k top-degree probes
// (greedy maximizes exactly that objective).
func TestGreedyBeatsDegreeOnTraining(t *testing.T) {
	pol, g, _ := testWorld(t, 1000)
	attacks, err := GenerateAttacks(g.TransitNodes(), 400, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	const k = 6
	greedy, err := GreedyProbes(pol, attacks, nil, k)
	if err != nil {
		t.Fatal(err)
	}
	degree := TopDegreeProbes(g, k)

	rg, err := Evaluate(pol, greedy, attacks, SelectedRoute, core.Defense{})
	if err != nil {
		t.Fatal(err)
	}
	rd, err := Evaluate(pol, degree, attacks, SelectedRoute, core.Defense{})
	if err != nil {
		t.Fatal(err)
	}
	if rg.MissCount() > rd.MissCount() {
		t.Errorf("greedy misses %d > degree-based %d on its training workload",
			rg.MissCount(), rd.MissCount())
	}
}

// TestGreedyGeneralizes: greedy probes trained on one workload should
// still be competitive with degree-based probes on a fresh workload.
func TestGreedyGeneralizes(t *testing.T) {
	pol, g, _ := testWorld(t, 1000)
	train, err := GenerateAttacks(g.TransitNodes(), 400, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	test, err := GenerateAttacks(g.TransitNodes(), 400, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	const k = 6
	greedy, err := GreedyProbes(pol, train, nil, k)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := Evaluate(pol, greedy, test, SelectedRoute, core.Defense{})
	if err != nil {
		t.Fatal(err)
	}
	rd, err := Evaluate(pol, TopDegreeProbes(g, k), test, SelectedRoute, core.Defense{})
	if err != nil {
		t.Fatal(err)
	}
	// Allow some generalization slack: within 1.5× of degree-based misses.
	if float64(rg.MissCount()) > 1.5*float64(rd.MissCount())+3 {
		t.Errorf("greedy generalizes poorly: misses %d vs degree %d",
			rg.MissCount(), rd.MissCount())
	}
}
