package detect

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/core"
)

// serialEvaluateReference is the pre-kernel Evaluate implementation, kept
// verbatim as the equivalence oracle: one solver, one probe set, attack by
// attack in workload order. EvaluateAll must reproduce its output
// byte-for-byte for every set at every worker count.
func serialEvaluateReference(pol *core.Policy, ps ProbeSet, attacks []core.Attack, sem Semantics, blocked *asn.IndexSet) (*Result, error) {
	solver := core.NewSolver(pol)
	res := &Result{
		ProbeSet:                ps,
		TriggerHist:             make([]int, len(ps.Probes)+1),
		MeanPollutionByTriggers: make([]float64, len(ps.Probes)+1),
		TotalAttacks:            len(attacks),
	}
	sums := make([]int, len(ps.Probes)+1)
	for _, at := range attacks {
		o, err := solver.Solve(at, blocked)
		if err != nil {
			return nil, err
		}
		var received []bool
		if sem == AnyReceived {
			received = core.ReceivedAttackerRoute(pol, o)
		}
		triggered := 0
		for _, p := range ps.Probes {
			switch sem {
			case SelectedRoute:
				if o.Polluted(p) {
					triggered++
				}
			case AnyReceived:
				if o.Polluted(p) || received[p] {
					triggered++
				}
			}
		}
		res.TriggerHist[triggered]++
		sums[triggered] += o.PollutedCount()
		if triggered == 0 {
			res.Misses = append(res.Misses, MissedAttack{
				Attacker: at.Attacker, Target: at.Target, Pollution: o.PollutedCount(),
			})
		}
	}
	for k := range res.MeanPollutionByTriggers {
		if res.TriggerHist[k] > 0 {
			res.MeanPollutionByTriggers[k] = float64(sums[k]) / float64(res.TriggerHist[k])
		}
	}
	return res, nil
}

// resultDigest hashes every observable field of a detection Result.
func resultDigest(r *Result) [sha256.Size]byte {
	h := sha256.New()
	binary.Write(h, binary.BigEndian, int64(r.TotalAttacks)) //nolint:errcheck // hash.Hash cannot fail
	for _, p := range r.ProbeSet.Probes {
		binary.Write(h, binary.BigEndian, int64(p)) //nolint:errcheck
	}
	for _, n := range r.TriggerHist {
		binary.Write(h, binary.BigEndian, int64(n)) //nolint:errcheck
	}
	for _, m := range r.MeanPollutionByTriggers {
		binary.Write(h, binary.BigEndian, math.Float64bits(m)) //nolint:errcheck
	}
	for _, m := range r.Misses {
		binary.Write(h, binary.BigEndian, int64(m.Attacker))  //nolint:errcheck
		binary.Write(h, binary.BigEndian, int64(m.Target))    //nolint:errcheck
		binary.Write(h, binary.BigEndian, int64(m.Pollution)) //nolint:errcheck
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// TestEvaluateAllSerialEquivalence requires the one-solve-many-consumers
// fan-out to match the per-set serial reference digest-for-digest under
// both trigger semantics at worker counts 1 and 4.
func TestEvaluateAllSerialEquivalence(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	pol, g, c := testWorld(t, 400)
	attacks, err := GenerateAttacks(g.TransitNodes(), 300, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	blocked := asn.NewIndexSet(g.N())
	for _, i := range c.Tier1 {
		blocked.Add(i)
	}
	sets := []ProbeSet{
		Tier1Probes(c),
		TopDegreeProbes(g, len(c.Tier1)+5),
	}
	for _, sem := range []Semantics{SelectedRoute, AnyReceived} {
		want := make([][sha256.Size]byte, len(sets))
		for j, ps := range sets {
			ref, err := serialEvaluateReference(pol, ps, attacks, sem, blocked)
			if err != nil {
				t.Fatal(err)
			}
			want[j] = resultDigest(ref)
		}
		for _, workers := range []int{1, 4} {
			got, err := EvaluateAll(pol, sets, attacks, sem, core.RovOnly(blocked), workers)
			if err != nil {
				t.Fatal(err)
			}
			for j := range sets {
				if d := resultDigest(got[j]); d != want[j] {
					t.Errorf("sem=%d workers=%d set %q: digest %x != serial reference %x",
						sem, workers, sets[j].Name, d[:8], want[j][:8])
				}
			}
		}
	}
}
