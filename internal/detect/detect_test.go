package detect

import (
	"math/rand"
	"testing"

	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/topology"
)

func testWorld(t *testing.T, n int) (*core.Policy, *topology.Graph, *topology.Classification) {
	t.Helper()
	g := topology.MustGenerate(topology.DefaultParams(n))
	con, err := topology.ContractSiblings(g)
	if err != nil {
		t.Fatal(err)
	}
	c := topology.Classify(con.Graph, topology.ClassifyOptions{})
	pol, err := core.NewPolicy(con.Graph, c.Tier1)
	if err != nil {
		t.Fatal(err)
	}
	return pol, con.Graph, c
}

func TestGenerateAttacks(t *testing.T) {
	pool := []int{1, 2, 3, 4, 5}
	attacks, err := GenerateAttacks(pool, 100, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if len(attacks) != 100 {
		t.Fatalf("got %d attacks", len(attacks))
	}
	inPool := map[int]bool{}
	for _, p := range pool {
		inPool[p] = true
	}
	for _, a := range attacks {
		if a.Attacker == a.Target {
			t.Fatal("attacker == target")
		}
		if !inPool[a.Attacker] || !inPool[a.Target] {
			t.Fatal("attack outside pool")
		}
	}
	// Deterministic per seed.
	again, err := GenerateAttacks(pool, 100, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range attacks {
		if attacks[i] != again[i] {
			t.Fatal("GenerateAttacks not deterministic")
		}
	}
	if _, err := GenerateAttacks([]int{1}, 5, rand.New(rand.NewSource(7))); err == nil {
		t.Error("tiny pool accepted")
	}
}

func TestProbeConstructors(t *testing.T) {
	_, g, c := testWorld(t, 800)

	t1 := Tier1Probes(c)
	if len(t1.Probes) != len(c.Tier1) {
		t.Error("Tier1Probes size mismatch")
	}

	top := TopDegreeProbes(g, 15)
	if len(top.Probes) != 15 {
		t.Errorf("TopDegreeProbes = %d", len(top.Probes))
	}

	bm := BGPmonLikeProbes(g, c, 24, rand.New(rand.NewSource(3)))
	if len(bm.Probes) == 0 {
		t.Fatal("BGPmonLikeProbes empty")
	}
	if len(bm.Probes) > 24 {
		t.Errorf("BGPmonLikeProbes = %d > 24", len(bm.Probes))
	}
	for _, p := range bm.Probes {
		if c.IsTier1(p) {
			t.Error("BGPmon-like probes must exclude tier-1s")
		}
		if !g.IsTransit(p) {
			t.Error("BGPmon-like probes must be transit ASes")
		}
	}
	bm2 := BGPmonLikeProbes(g, c, 24, rand.New(rand.NewSource(3)))
	for i := range bm.Probes {
		if bm.Probes[i] != bm2.Probes[i] {
			t.Fatal("BGPmonLikeProbes not deterministic")
		}
	}

	cp := CustomProbes("mine", []int{4, 5})
	if cp.Name != "mine" || len(cp.Probes) != 2 {
		t.Error("CustomProbes mangled input")
	}
}

func TestEvaluateBasics(t *testing.T) {
	pol, g, _ := testWorld(t, 800)
	attacks, err := GenerateAttacks(g.TransitNodes(), 300, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	ps := TopDegreeProbes(g, 12)
	res, err := Evaluate(pol, ps, attacks, SelectedRoute, core.Defense{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalAttacks != 300 {
		t.Errorf("TotalAttacks = %d", res.TotalAttacks)
	}
	total := 0
	for _, n := range res.TriggerHist {
		total += n
	}
	if total != 300 {
		t.Errorf("histogram sums to %d, want 300", total)
	}
	if res.TriggerHist[0] != res.MissCount() {
		t.Errorf("hist[0]=%d != misses=%d", res.TriggerHist[0], res.MissCount())
	}
	if r := res.MissRate(); r < 0 || r > 1 {
		t.Errorf("MissRate = %v", r)
	}
	mean, max := res.MissSummary()
	if max > 0 && mean <= 0 {
		t.Error("MissSummary inconsistent")
	}
	top := res.TopMisses(5)
	for i := 1; i < len(top); i++ {
		if top[i].Pollution > top[i-1].Pollution {
			t.Error("TopMisses not ranked")
		}
	}
	if _, err := Evaluate(pol, CustomProbes("empty", nil), attacks, SelectedRoute, core.Defense{}); err == nil {
		t.Error("empty probe set accepted")
	}
}

// TestDetectorOrdering reproduces Figure 7's qualitative finding: the
// degree≥500-class configuration misses the fewest attacks, the tier-1
// configuration the most, with BGPmon-like in between.
func TestDetectorOrdering(t *testing.T) {
	pol, g, c := testWorld(t, 1500)
	attacks, err := GenerateAttacks(g.TransitNodes(), 600, rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatal(err)
	}
	core62 := TopDegreeProbes(g, maxInt(len(c.Tier1)*3, 20))
	t1 := Tier1Probes(c)

	rTop, err := Evaluate(pol, core62, attacks, SelectedRoute, core.Defense{})
	if err != nil {
		t.Fatal(err)
	}
	rT1, err := Evaluate(pol, t1, attacks, SelectedRoute, core.Defense{})
	if err != nil {
		t.Fatal(err)
	}
	if rTop.MissRate() > rT1.MissRate() {
		t.Errorf("top-degree probes (%.3f) should miss less than tier-1 probes (%.3f)",
			rTop.MissRate(), rT1.MissRate())
	}
	// Tier-1 probes must actually miss something (the paper's surprise).
	if rT1.MissCount() == 0 {
		t.Error("tier-1 probes missed nothing; expected blind spots")
	}
}

// TestMeanPollutionGrowsWithTriggers checks the Figure 7 line graph: "the
// larger the attack extent, the more collectors triggered", i.e. mean
// pollution is (weakly) increasing with the trigger count on average.
func TestMeanPollutionGrowsWithTriggers(t *testing.T) {
	pol, g, c := testWorld(t, 1200)
	attacks, err := GenerateAttacks(g.TransitNodes(), 500, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(pol, Tier1Probes(c), attacks, SelectedRoute, core.Defense{})
	if err != nil {
		t.Fatal(err)
	}
	// Compare the low and high thirds of the trigger range (individual
	// buckets are noisy).
	var loSum, loN, hiSum, hiN float64
	for k, cnt := range res.TriggerHist {
		if cnt == 0 {
			continue
		}
		if k <= len(res.TriggerHist)/3 {
			loSum += res.MeanPollutionByTriggers[k] * float64(cnt)
			loN += float64(cnt)
		} else if k >= 2*len(res.TriggerHist)/3 {
			hiSum += res.MeanPollutionByTriggers[k] * float64(cnt)
			hiN += float64(cnt)
		}
	}
	if loN > 0 && hiN > 0 && hiSum/hiN <= loSum/loN {
		t.Errorf("mean pollution should grow with trigger count: low %.1f, high %.1f",
			loSum/loN, hiSum/hiN)
	}
}

// TestAnyReceivedSemanticsDetectsMore: the ablation semantics can only
// increase trigger counts, so the miss rate can only go down.
func TestAnyReceivedSemanticsDetectsMore(t *testing.T) {
	pol, g, c := testWorld(t, 1000)
	attacks, err := GenerateAttacks(g.TransitNodes(), 400, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	ps := Tier1Probes(c)
	sel, err := Evaluate(pol, ps, attacks, SelectedRoute, core.Defense{})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Evaluate(pol, ps, attacks, AnyReceived, core.Defense{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.MissCount() > sel.MissCount() {
		t.Errorf("AnyReceived misses %d > SelectedRoute misses %d", rec.MissCount(), sel.MissCount())
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
