package detect

import (
	"fmt"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/core"
)

// GreedyProbes chooses up to k probe ASes by greedy set cover over a
// training workload: each round adds the candidate AS that detects the
// most still-undetected attacks. This operationalizes the paper's
// Section VI recommendation that "BGP detectors peer with as many
// high-degree, NON-OVERLAPPING ASes as possible" — degree ranks raw
// visibility, while the greedy criterion maximizes marginal (i.e.
// non-overlapping) coverage directly, with the usual (1−1/e)
// approximation guarantee of submodular maximization.
//
// candidates defaults to all transit ASes when nil. The returned set is
// deterministic for a given workload and candidate order.
func GreedyProbes(pol *core.Policy, attacks []core.Attack, candidates []int, k int) (ProbeSet, error) {
	if k <= 0 {
		return ProbeSet{}, fmt.Errorf("greedy probes: k must be positive, got %d", k)
	}
	if len(attacks) == 0 {
		return ProbeSet{}, fmt.Errorf("greedy probes: empty training workload")
	}
	if candidates == nil {
		candidates = pol.Graph().TransitNodes()
	}
	if len(candidates) == 0 {
		return ProbeSet{}, fmt.Errorf("greedy probes: no candidates")
	}

	// coverage[c] = bitset of attack indices candidate c would detect.
	solver := core.NewSolver(pol)
	coverage := make(map[int]*asn.IndexSet, len(candidates))
	for _, c := range candidates {
		coverage[c] = asn.NewIndexSet(len(attacks))
	}
	for i, at := range attacks {
		o, err := solver.Solve(at, nil)
		if err != nil {
			return ProbeSet{}, fmt.Errorf("greedy probes: %w", err)
		}
		for _, c := range candidates {
			if o.Polluted(c) {
				coverage[c].Add(i)
			}
		}
	}

	undetected := asn.NewIndexSet(len(attacks))
	for i := range attacks {
		undetected.Add(i)
	}
	var chosen []int
	used := make(map[int]bool, k)
	scratch := make([]int, 0, len(attacks))
	for len(chosen) < k && undetected.Count() > 0 {
		best, bestGain := -1, 0
		for _, c := range candidates {
			if used[c] {
				continue
			}
			gain := 0
			scratch = coverage[c].Members(scratch[:0])
			for _, i := range scratch {
				if undetected.Contains(i) {
					gain++
				}
			}
			if gain > bestGain || gain == bestGain && gain > 0 && best >= 0 &&
				pol.Graph().ASN(c) < pol.Graph().ASN(best) {
				best, bestGain = c, gain
			}
		}
		if best < 0 || bestGain == 0 {
			break // nothing left to gain
		}
		used[best] = true
		chosen = append(chosen, best)
		scratch = coverage[best].Members(scratch[:0])
		for _, i := range scratch {
			undetected.Remove(i)
		}
	}
	return ProbeSet{
		Name:   fmt.Sprintf("%d greedy set-cover probes", len(chosen)),
		Probes: chosen,
	}, nil
}
