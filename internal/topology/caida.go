package topology

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"github.com/bgpsim/bgpsim/internal/asn"
)

// Parse reads a topology in the CAIDA AS-relationship interchange format:
//
//	# comment lines start with '#'
//	<as1>|<as2>|<relationship>[|<source>]
//
// where relationship -1 means as1 is a provider of as2, 0 means as1 and as2
// are peers, and 1 means siblings (an extension carried by some datasets;
// serial-2 files add a fourth source column, which is ignored). This is the
// data the paper loads: "a list of 139,156 provider/customer/peer
// relationships obtained from CAIDA".
func Parse(r io.Reader) (*Graph, error) {
	b := NewBuilder()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "|")
		if len(fields) < 3 {
			return nil, fmt.Errorf("line %d: want as1|as2|rel, got %q", lineNo, line)
		}
		a1, err := asn.Parse(fields[0])
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		a2, err := asn.Parse(fields[1])
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		code, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("line %d: bad relationship %q", lineNo, fields[2])
		}
		var rel Rel
		switch code {
		case -1:
			rel = RelCustomer // as2 is as1's customer
		case 0:
			rel = RelPeer
		case 1:
			rel = RelSibling
		default:
			return nil, fmt.Errorf("line %d: unknown relationship code %d", lineNo, code)
		}
		if err := b.AddLink(a1, a2, rel); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("read topology: %w", err)
	}
	g := b.Build()
	if g.N() == 0 {
		return nil, fmt.Errorf("topology is empty")
	}
	return g, nil
}

// Write emits g in the CAIDA serial-1 interchange format, one line per
// undirected link, in deterministic order. Parse(Write(g)) reproduces g's
// links exactly (regions and address weights are not part of the format).
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# %d ASes, %d links\n", g.N(), g.Edges()); err != nil {
		return err
	}
	type line struct {
		a1, a2 asn.ASN
		code   int
	}
	lines := make([]line, 0, g.Edges())
	for i := 0; i < g.N(); i++ {
		nbrs, rels := g.Neighbors(i)
		for k, nb := range nbrs {
			j := int(nb)
			if j < i {
				continue
			}
			a1, a2 := g.ASN(i), g.ASN(j)
			switch rels[k] {
			case RelCustomer:
				lines = append(lines, line{a1, a2, -1})
			case RelProvider:
				lines = append(lines, line{a2, a1, -1})
			case RelPeer:
				lines = append(lines, line{a1, a2, 0})
			case RelSibling:
				lines = append(lines, line{a1, a2, 1})
			}
		}
	}
	sort.Slice(lines, func(i, j int) bool {
		if lines[i].a1 != lines[j].a1 {
			return lines[i].a1 < lines[j].a1
		}
		return lines[i].a2 < lines[j].a2
	})
	for _, l := range lines {
		if _, err := fmt.Fprintf(bw, "%d|%d|%d\n", l.a1, l.a2, l.code); err != nil {
			return err
		}
	}
	return bw.Flush()
}
