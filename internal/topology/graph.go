// Package topology models the AS-level Internet graph the simulation runs
// on: business relationships between ASes (provider/customer, peer, sibling),
// the CAIDA AS-relationship interchange format, structural metrics (degree,
// depth, reach, tier classification), synthetic Internet generation, and the
// graph surgery (re-homing) used by the paper's Section VII experiments.
//
// Simulation code addresses ASes by dense node index in [0, N); the mapping
// to real ASN values is kept at the edges of the system.
package topology

import (
	"fmt"
	"sort"

	"github.com/bgpsim/bgpsim/internal/asn"
)

// Rel describes the role a neighbor plays from a node's own perspective.
type Rel int8

const (
	// RelProvider means the neighbor is this node's transit provider.
	RelProvider Rel = iota + 1
	// RelCustomer means the neighbor is this node's customer.
	RelCustomer
	// RelPeer means a settlement-free peering relationship.
	RelPeer
	// RelSibling means the neighbor belongs to the same organization; the
	// paper merges sibling groups into one logical AS via a community
	// string, which this package implements as graph contraction.
	RelSibling
)

// String returns the relationship name.
func (r Rel) String() string {
	switch r {
	case RelProvider:
		return "provider"
	case RelCustomer:
		return "customer"
	case RelPeer:
		return "peer"
	case RelSibling:
		return "sibling"
	default:
		return fmt.Sprintf("Rel(%d)", int8(r))
	}
}

// invert returns the relationship as seen from the other endpoint.
func (r Rel) invert() Rel {
	switch r {
	case RelProvider:
		return RelCustomer
	case RelCustomer:
		return RelProvider
	default:
		return r
	}
}

// Graph is an immutable AS-level topology in compressed sparse row form.
// Build one with a Builder, Parse (CAIDA format) or Generate.
type Graph struct {
	asns  []asn.ASN
	index map[asn.ASN]int

	off []int32 // off[i]:off[i+1] bounds node i's adjacency
	nbr []int32 // neighbor node index
	rel []Rel   // relationship from node i's perspective

	region     []int32 // optional region label per node (-1 = unassigned)
	addrWeight []int64 // synthetic announced address-space weight per node
}

// N returns the number of ASes in the graph.
func (g *Graph) N() int { return len(g.asns) }

// Edges returns the number of undirected relationship links.
func (g *Graph) Edges() int { return len(g.nbr) / 2 }

// ASN returns the AS number of node i.
func (g *Graph) ASN(i int) asn.ASN { return g.asns[i] }

// Index returns the node index for an ASN.
func (g *Graph) Index(a asn.ASN) (int, bool) {
	i, ok := g.index[a]
	return i, ok
}

// Degree returns the total number of neighbors of node i.
func (g *Graph) Degree(i int) int { return int(g.off[i+1] - g.off[i]) }

// Neighbors returns node i's adjacency as parallel slices of neighbor
// indices and relationships. The slices alias internal storage and must not
// be modified.
func (g *Graph) Neighbors(i int) ([]int32, []Rel) {
	lo, hi := g.off[i], g.off[i+1]
	return g.nbr[lo:hi], g.rel[lo:hi]
}

// Rel returns the relationship of node j from node i's perspective, or 0 if
// they are not adjacent.
func (g *Graph) Rel(i, j int) Rel {
	nbrs, rels := g.Neighbors(i)
	for k, n := range nbrs {
		if int(n) == j {
			return rels[k]
		}
	}
	return 0
}

// CountRel returns how many neighbors of node i have relationship r.
func (g *Graph) CountRel(i int, r Rel) int {
	_, rels := g.Neighbors(i)
	c := 0
	for _, rr := range rels {
		if rr == r {
			c++
		}
	}
	return c
}

// IsTransit reports whether node i has at least one customer.
func (g *Graph) IsTransit(i int) bool { return g.CountRel(i, RelCustomer) > 0 }

// TransitNodes returns the indices of all ASes with at least one customer —
// the attacker population for the paper's "optimistic" scenario.
func (g *Graph) TransitNodes() []int {
	var out []int
	for i := 0; i < g.N(); i++ {
		if g.IsTransit(i) {
			out = append(out, i)
		}
	}
	return out
}

// Region returns the region label of node i, or -1 when regions are not
// assigned.
func (g *Graph) Region(i int) int {
	if g.region == nil {
		return -1
	}
	return int(g.region[i])
}

// RegionNodes returns all nodes labeled with the given region.
func (g *Graph) RegionNodes(r int) []int {
	var out []int
	for i := 0; i < g.N(); i++ {
		if g.Region(i) == r {
			out = append(out, i)
		}
	}
	return out
}

// AddrWeight returns the synthetic announced-address-space weight of node
// i, used for "fraction of address space polluted" statistics and for
// circle sizes in the polar visualization. Weights default to 1.
func (g *Graph) AddrWeight(i int) int64 {
	if g.addrWeight == nil {
		return 1
	}
	return g.addrWeight[i]
}

// TotalAddrWeight returns the sum of all address weights.
func (g *Graph) TotalAddrWeight() int64 {
	var total int64
	for i := 0; i < g.N(); i++ {
		total += g.AddrWeight(i)
	}
	return total
}

// Builder accumulates relationship links and produces an immutable Graph.
type Builder struct {
	links      map[[2]asn.ASN]Rel // key is ordered (low, high); rel from low's perspective
	order      [][2]asn.ASN       // insertion order for deterministic builds
	regions    map[asn.ASN]int32
	addrWeight map[asn.ASN]int64
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{links: make(map[[2]asn.ASN]Rel)}
}

// AddLink records a relationship between a and b, where rel is b's role
// from a's perspective (e.g. AddLink(a, b, RelCustomer) makes a a provider
// of b). Self-links are rejected; re-adding the same link with the same
// relationship is a no-op; conflicting relationships are an error.
func (b *Builder) AddLink(a, c asn.ASN, rel Rel) error {
	if a == c {
		return fmt.Errorf("self link on %v", a)
	}
	if rel < RelProvider || rel > RelSibling {
		return fmt.Errorf("link %v-%v: invalid relationship %d", a, c, int8(rel))
	}
	key, r := orderLink(a, c, rel)
	if prev, ok := b.links[key]; ok {
		if prev != r {
			return fmt.Errorf("link %v-%v: conflicting relationships %v and %v", a, c, prev, r)
		}
		return nil
	}
	b.links[key] = r
	b.order = append(b.order, key)
	return nil
}

// orderLink normalizes a link to (low ASN, high ASN) with the relationship
// expressed as the high node's role from the low node's perspective.
func orderLink(a, c asn.ASN, rel Rel) ([2]asn.ASN, Rel) {
	if a <= c {
		return [2]asn.ASN{a, c}, rel
	}
	return [2]asn.ASN{c, a}, rel.invert()
}

// SetRegion labels an AS with a region identifier.
func (b *Builder) SetRegion(a asn.ASN, region int) {
	if b.regions == nil {
		b.regions = make(map[asn.ASN]int32)
	}
	b.regions[a] = int32(region)
}

// SetAddrWeight records the announced address-space weight of an AS.
func (b *Builder) SetAddrWeight(a asn.ASN, weight int64) {
	if b.addrWeight == nil {
		b.addrWeight = make(map[asn.ASN]int64)
	}
	b.addrWeight[a] = weight
}

// Build assembles the immutable Graph. Node indices are assigned in
// ascending ASN order, so builds are deterministic regardless of insertion
// order.
func (b *Builder) Build() *Graph {
	seen := make(map[asn.ASN]struct{}, len(b.links)*2)
	for key := range b.links {
		seen[key[0]] = struct{}{}
		seen[key[1]] = struct{}{}
	}
	asns := make([]asn.ASN, 0, len(seen))
	for a := range seen { //bgplint:ignore maporder asns are sorted immediately below
		asns = append(asns, a)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })

	index := make(map[asn.ASN]int, len(asns))
	for i, a := range asns {
		index[a] = i
	}

	n := len(asns)
	deg := make([]int32, n)
	for key := range b.links {
		deg[index[key[0]]]++
		deg[index[key[1]]]++
	}
	off := make([]int32, n+1)
	for i := 0; i < n; i++ {
		off[i+1] = off[i] + deg[i]
	}
	nbr := make([]int32, off[n])
	rel := make([]Rel, off[n])
	cursor := make([]int32, n)
	copy(cursor, off[:n])

	// Deterministic edge order: sort link keys.
	keys := make([][2]asn.ASN, 0, len(b.links))
	for key := range b.links { //bgplint:ignore maporder keys are sorted immediately below
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, key := range keys {
		r := b.links[key]
		lo, hi := index[key[0]], index[key[1]]
		nbr[cursor[lo]], rel[cursor[lo]] = int32(hi), r
		cursor[lo]++
		nbr[cursor[hi]], rel[cursor[hi]] = int32(lo), r.invert()
		cursor[hi]++
	}

	g := &Graph{asns: asns, index: index, off: off, nbr: nbr, rel: rel}
	if b.regions != nil {
		g.region = make([]int32, n)
		for i := range g.region {
			g.region[i] = -1
		}
		//bgplint:ignore maporder keyed writes into distinct indices; each ASN is visited once
		for a, r := range b.regions {
			if i, ok := index[a]; ok {
				g.region[i] = r
			}
		}
	}
	if b.addrWeight != nil {
		g.addrWeight = make([]int64, n)
		for i := range g.addrWeight {
			g.addrWeight[i] = 1
		}
		//bgplint:ignore maporder keyed writes into distinct indices; each ASN is visited once
		for a, w := range b.addrWeight {
			if i, ok := index[a]; ok {
				g.addrWeight[i] = w
			}
		}
	}
	return g
}

// Clone returns a Builder pre-populated with all of g's links and
// attributes, the starting point for graph surgery such as re-homing.
func Clone(g *Graph) *Builder {
	b := NewBuilder()
	for i := 0; i < g.N(); i++ {
		nbrs, rels := g.Neighbors(i)
		for k, nb := range nbrs {
			if int(nb) > i { // visit each undirected link once
				// rels[k] is the neighbor's role from i's perspective.
				if err := b.AddLink(g.ASN(i), g.ASN(int(nb)), rels[k]); err != nil {
					// Links coming from a valid Graph cannot conflict.
					panic(fmt.Sprintf("clone: %v", err))
				}
			}
		}
		if r := g.Region(i); r >= 0 {
			b.SetRegion(g.ASN(i), r)
		}
		if g.addrWeight != nil {
			b.SetAddrWeight(g.ASN(i), g.AddrWeight(i))
		}
	}
	return b
}

// Rehome replaces node i's provider links with the given new providers,
// returning a new Graph. It is the paper's Section VII "reduce
// vulnerability by re-homing" operation. Other links (customers, peers,
// siblings) are preserved.
func Rehome(g *Graph, i int, newProviders []int) (*Graph, error) {
	b := NewBuilder()
	target := g.ASN(i)
	for v := 0; v < g.N(); v++ {
		nbrs, rels := g.Neighbors(v)
		for k, nb := range nbrs {
			if int(nb) <= v {
				continue
			}
			// Drop the target's existing provider links.
			if v == i && rels[k] == RelProvider {
				continue
			}
			if int(nb) == i && rels[k].invert() == RelProvider {
				continue
			}
			if err := b.AddLink(g.ASN(v), g.ASN(int(nb)), rels[k]); err != nil {
				return nil, fmt.Errorf("rehome: %w", err)
			}
		}
		if r := g.Region(v); r >= 0 {
			b.SetRegion(g.ASN(v), r)
		}
		if g.addrWeight != nil {
			b.SetAddrWeight(g.ASN(v), g.AddrWeight(v))
		}
	}
	for _, p := range newProviders {
		if p == i {
			return nil, fmt.Errorf("rehome: %v cannot provide for itself", target)
		}
		if err := b.AddLink(target, g.ASN(p), RelProvider); err != nil {
			return nil, fmt.Errorf("rehome: %w", err)
		}
	}
	return b.Build(), nil
}
