package topology

import (
	"bytes"
	"strings"
	"testing"

	"github.com/bgpsim/bgpsim/internal/asn"
)

// tinyGraph builds the small hand-checkable topology used across tests:
//
//	T1a(1) ====peer==== T1b(2)        (tier-1 clique)
//	  |                  |  \
//	 T2(10)             T2b(11)       (tier-2s, peered with each other)
//	  |    \             |
//	 M(20)  S1(30)      M2(21)        (mid transits; M2 sibling of M)
//	  |
//	 S2(31)                           (stub at depth 2)
func tinyBuilder(t *testing.T) *Builder {
	t.Helper()
	b := NewBuilder()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(b.AddLink(1, 2, RelPeer))
	must(b.AddLink(1, 10, RelCustomer))
	must(b.AddLink(2, 11, RelCustomer))
	must(b.AddLink(10, 11, RelPeer))
	must(b.AddLink(10, 20, RelCustomer))
	must(b.AddLink(10, 30, RelCustomer))
	must(b.AddLink(11, 21, RelCustomer))
	must(b.AddLink(20, 31, RelCustomer))
	must(b.AddLink(20, 21, RelSibling))
	// Tier-2s need ≥5 customers to classify as tier-2 with defaults; use a
	// lower threshold in tests instead of padding the graph.
	return b
}

func tinyGraph(t *testing.T) *Graph {
	t.Helper()
	return tinyBuilder(t).Build()
}

func nodeOf(t *testing.T, g *Graph, a asn.ASN) int {
	t.Helper()
	i, ok := g.Index(a)
	if !ok {
		t.Fatalf("ASN %v not in graph", a)
	}
	return i
}

func TestBuilderBasics(t *testing.T) {
	g := tinyGraph(t)
	if g.N() != 8 {
		t.Fatalf("N = %d, want 8", g.N())
	}
	if g.Edges() != 9 {
		t.Fatalf("Edges = %d, want 9", g.Edges())
	}
	a1 := nodeOf(t, g, 1)
	a10 := nodeOf(t, g, 10)
	if got := g.Rel(a1, a10); got != RelCustomer {
		t.Errorf("rel(1→10) = %v, want customer", got)
	}
	if got := g.Rel(a10, a1); got != RelProvider {
		t.Errorf("rel(10→1) = %v, want provider", got)
	}
	a2 := nodeOf(t, g, 2)
	if got := g.Rel(a1, a2); got != RelPeer {
		t.Errorf("rel(1→2) = %v, want peer", got)
	}
	if got := g.Rel(a1, nodeOf(t, g, 31)); got != 0 {
		t.Errorf("rel(1→31) = %v, want 0 (not adjacent)", got)
	}
	if g.Degree(a1) != 2 {
		t.Errorf("degree(1) = %d, want 2", g.Degree(a1))
	}
}

func TestBuilderRejectsSelfAndConflicts(t *testing.T) {
	b := NewBuilder()
	if err := b.AddLink(5, 5, RelPeer); err == nil {
		t.Error("self link accepted")
	}
	if err := b.AddLink(1, 2, RelCustomer); err != nil {
		t.Fatal(err)
	}
	// Same link, same meaning (from the other side): no error.
	if err := b.AddLink(2, 1, RelProvider); err != nil {
		t.Errorf("re-adding equivalent link failed: %v", err)
	}
	// Conflicting meaning: error.
	if err := b.AddLink(1, 2, RelPeer); err == nil {
		t.Error("conflicting link accepted")
	}
	if err := b.AddLink(1, 2, Rel(9)); err == nil {
		t.Error("invalid relationship accepted")
	}
}

func TestBuildDeterminism(t *testing.T) {
	g1 := tinyGraph(t)
	var buf1, buf2 bytes.Buffer
	if err := Write(&buf1, g1); err != nil {
		t.Fatal(err)
	}
	// Build again from a builder populated in a different order.
	b := NewBuilder()
	if err := b.AddLink(31, 20, RelProvider); err != nil {
		t.Fatal(err)
	}
	for _, l := range []struct {
		a, b asn.ASN
		r    Rel
	}{
		{21, 20, RelSibling}, {21, 11, RelProvider}, {30, 10, RelProvider},
		{20, 10, RelProvider}, {11, 10, RelPeer}, {11, 2, RelProvider},
		{10, 1, RelProvider}, {2, 1, RelPeer},
	} {
		if err := b.AddLink(l.a, l.b, l.r); err != nil {
			t.Fatal(err)
		}
	}
	if err := Write(&buf2, b.Build()); err != nil {
		t.Fatal(err)
	}
	if buf1.String() != buf2.String() {
		t.Errorf("builds differ:\n%s\nvs\n%s", buf1.String(), buf2.String())
	}
}

func TestParseWriteRoundTrip(t *testing.T) {
	g := tinyGraph(t)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.Edges() != g.Edges() {
		t.Fatalf("round trip changed size: %d/%d vs %d/%d", g2.N(), g2.Edges(), g.N(), g.Edges())
	}
	for i := 0; i < g.N(); i++ {
		j := nodeOf(t, g2, g.ASN(i))
		nbrs, rels := g.Neighbors(i)
		for k, nb := range nbrs {
			j2 := nodeOf(t, g2, g.ASN(int(nb)))
			if got := g2.Rel(j, j2); got != rels[k] {
				t.Errorf("link %v-%v: rel %v, want %v", g.ASN(i), g.ASN(int(nb)), got, rels[k])
			}
		}
	}
}

func TestParseCAIDAFormat(t *testing.T) {
	in := `# serial-1 style comment
1|10|-1
1|2|0
10|20|-1
20|21|1
`
	g, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 5 {
		t.Fatalf("N = %d, want 5", g.N())
	}
	if got := g.Rel(nodeOf(t, g, 1), nodeOf(t, g, 10)); got != RelCustomer {
		t.Errorf("-1 should mean as2 is customer, got %v", got)
	}
	if got := g.Rel(nodeOf(t, g, 1), nodeOf(t, g, 2)); got != RelPeer {
		t.Errorf("0 should mean peer, got %v", got)
	}
	if got := g.Rel(nodeOf(t, g, 20), nodeOf(t, g, 21)); got != RelSibling {
		t.Errorf("1 should mean sibling, got %v", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"1|2",          // missing rel
		"1|2|7",        // unknown code
		"x|2|0",        // bad asn
		"1|y|0",        // bad asn
		"1|2|zero",     // non-numeric rel
		"",             // empty topology
		"# only\n#com", // comments only
	}
	for _, in := range bad {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestClassifyTiny(t *testing.T) {
	g := tinyGraph(t)
	c := Classify(g, ClassifyOptions{Tier2MinCustomers: 1})
	wantT1 := []asn.ASN{1, 2}
	if len(c.Tier1) != len(wantT1) {
		t.Fatalf("Tier1 = %v", c.Tier1)
	}
	for i, a := range wantT1 {
		if g.ASN(c.Tier1[i]) != a {
			t.Errorf("Tier1[%d] = %v, want %v", i, g.ASN(c.Tier1[i]), a)
		}
	}
	t2set := asn.NewSet()
	for _, i := range c.Tier2 {
		t2set.Add(g.ASN(i))
	}
	if !t2set.Contains(10) || !t2set.Contains(11) || len(t2set) != 2 {
		t.Errorf("Tier2 = %v, want {10, 11}", t2set.Sorted())
	}

	// Depth v2 (anchors tier-1 and tier-2).
	wantDepth := map[asn.ASN]int{1: 0, 2: 0, 10: 0, 11: 0, 20: 1, 21: 1, 30: 1, 31: 2}
	for a, d := range wantDepth {
		if got := c.Depth[nodeOf(t, g, a)]; got != d {
			t.Errorf("depth(%v) = %d, want %d", a, got, d)
		}
	}
	// Depth v1 (tier-1 anchors only): one deeper for everything under T2.
	wantV1 := map[asn.ASN]int{1: 0, 2: 0, 10: 1, 11: 1, 20: 2, 21: 2, 30: 2, 31: 3}
	for a, d := range wantV1 {
		if got := c.DepthV1[nodeOf(t, g, a)]; got != d {
			t.Errorf("depthV1(%v) = %d, want %d", a, got, d)
		}
	}
	if c.MaxDepth() != 2 {
		t.Errorf("MaxDepth = %d, want 2", c.MaxDepth())
	}
	if !c.IsTier1(nodeOf(t, g, 1)) || c.IsTier1(nodeOf(t, g, 10)) {
		t.Error("IsTier1 misclassified")
	}
	if !c.IsTier2(nodeOf(t, g, 10)) || c.IsTier2(nodeOf(t, g, 1)) {
		t.Error("IsTier2 misclassified")
	}
}

func TestDepthUnreachable(t *testing.T) {
	b := NewBuilder()
	if err := b.AddLink(1, 2, RelPeer); err != nil {
		t.Fatal(err)
	}
	if err := b.AddLink(3, 4, RelPeer); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	d := DepthFrom(g, []int{nodeOf(t, g, 1)})
	if d[nodeOf(t, g, 3)] != DepthUnreachable {
		t.Error("disconnected node should be DepthUnreachable")
	}
	// Peer links must not propagate depth.
	if d[nodeOf(t, g, 2)] != DepthUnreachable {
		t.Error("depth must only descend provider→customer links")
	}
}

func TestReachAndCone(t *testing.T) {
	g := tinyGraph(t)
	// From stub 31: up 20→10→1, plus sibling not traversed; down from
	// {31,20,10,1}: customers 31, 30, 20, 10. Reachable set excludes self:
	// {20, 10, 1, 30}. Note 21 is reachable only via sibling/peer links.
	if got := Reach(g, nodeOf(t, g, 31)); got != 4 {
		t.Errorf("Reach(31) = %d, want 4", got)
	}
	// Tier-1 AS 1: no providers; cone below = 10, 20, 30, 31.
	if got := Reach(g, nodeOf(t, g, 1)); got != 4 {
		t.Errorf("Reach(1) = %d, want 4", got)
	}
	if got := CustomerCone(g, nodeOf(t, g, 10)); got != 4 {
		t.Errorf("CustomerCone(10) = %d, want 4 (10,20,30,31)", got)
	}
	if got := CustomerCone(g, nodeOf(t, g, 31)); got != 1 {
		t.Errorf("CustomerCone(stub) = %d, want 1", got)
	}
}

func TestNodesByDegree(t *testing.T) {
	g := tinyGraph(t)
	order := NodesByDegree(g)
	if len(order) != g.N() {
		t.Fatalf("order covers %d nodes", len(order))
	}
	for i := 1; i < len(order); i++ {
		if g.Degree(order[i-1]) < g.Degree(order[i]) {
			t.Fatal("NodesByDegree not descending")
		}
	}
	top := NodesWithDegreeAtLeast(g, 3)
	for _, i := range top {
		if g.Degree(i) < 3 {
			t.Errorf("node %v has degree %d < 3", g.ASN(i), g.Degree(i))
		}
	}
}

func TestTransitNodes(t *testing.T) {
	g := tinyGraph(t)
	transit := asn.NewSet()
	for _, i := range g.TransitNodes() {
		transit.Add(g.ASN(i))
	}
	want := asn.NewSet(1, 2, 10, 11, 20)
	got := transit.Sorted()
	wantSorted := want.Sorted()
	if len(got) != len(wantSorted) {
		t.Fatalf("transit = %v, want %v", got, wantSorted)
	}
	for i := range got {
		if got[i] != wantSorted[i] {
			t.Fatalf("transit = %v, want %v", got, wantSorted)
		}
	}
}

func TestRehome(t *testing.T) {
	g := tinyGraph(t)
	c := Classify(g, ClassifyOptions{Tier2MinCustomers: 1})
	stub := nodeOf(t, g, 31)
	if c.Depth[stub] != 2 {
		t.Fatalf("precondition: depth(31) = %d, want 2", c.Depth[stub])
	}
	// Re-home 31 from mid 20 directly to tier-2 10.
	g2, err := Rehome(g, stub, []int{nodeOf(t, g, 10)})
	if err != nil {
		t.Fatal(err)
	}
	c2 := Classify(g2, ClassifyOptions{Tier2MinCustomers: 1})
	stub2 := nodeOf(t, g2, 31)
	if c2.Depth[stub2] != 1 {
		t.Errorf("after rehome depth = %d, want 1", c2.Depth[stub2])
	}
	if g2.Rel(stub2, nodeOf(t, g2, 20)) != 0 {
		t.Error("old provider link survived rehome")
	}
	// Original graph untouched.
	if g.Rel(stub, nodeOf(t, g, 20)) != RelProvider {
		t.Error("rehome mutated the original graph")
	}
	// Self-providing is rejected.
	if _, err := Rehome(g, stub, []int{stub}); err == nil {
		t.Error("self-provider accepted")
	}
}

func TestContractSiblings(t *testing.T) {
	g := tinyGraph(t)
	con, err := ContractSiblings(g)
	if err != nil {
		t.Fatal(err)
	}
	cg := con.Graph
	if cg.N() != g.N()-1 {
		t.Fatalf("contracted N = %d, want %d", cg.N(), g.N()-1)
	}
	// 21 merged into 20 (lower ASN representative).
	if _, ok := cg.Index(21); ok {
		t.Error("AS21 should be merged away")
	}
	m := nodeOf(t, cg, 20)
	// Merged node keeps 20's links and gains 21's provider 11.
	if got := cg.Rel(m, nodeOf(t, cg, 11)); got != RelProvider {
		t.Errorf("merged rel to 11 = %v, want provider", got)
	}
	if got := cg.Rel(m, nodeOf(t, cg, 10)); got != RelProvider {
		t.Errorf("merged rel to 10 = %v, want provider", got)
	}
	if got := cg.Rel(m, nodeOf(t, cg, 31)); got != RelCustomer {
		t.Errorf("merged rel to 31 = %v, want customer", got)
	}
	// NodeMap: both 20 and 21 map to the merged node.
	i20, i21 := nodeOf(t, g, 20), nodeOf(t, g, 21)
	if con.NodeMap[i20] != m || con.NodeMap[i21] != m {
		t.Errorf("NodeMap = %d/%d, want both %d", con.NodeMap[i20], con.NodeMap[i21], m)
	}
	if len(con.Groups) != 1 || len(con.Groups[0]) != 2 {
		t.Errorf("Groups = %v", con.Groups)
	}
	// No sibling links remain.
	for i := 0; i < cg.N(); i++ {
		_, rels := cg.Neighbors(i)
		for _, r := range rels {
			if r == RelSibling {
				t.Fatal("sibling link survived contraction")
			}
		}
	}
	// Address weight summed (defaults 1+1).
	if w := cg.AddrWeight(m); w != 2 {
		t.Errorf("merged weight = %d, want 2", w)
	}
}

func TestFindTarget(t *testing.T) {
	g := tinyGraph(t)
	c := Classify(g, ClassifyOptions{Tier2MinCustomers: 1})

	i, err := FindTarget(g, c, TargetQuery{Depth: 2, Stub: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.ASN(i) != 31 {
		t.Errorf("depth-2 stub = %v, want AS31", g.ASN(i))
	}
	// Single-homed depth-1 stubs under tier-2: AS21 (sibling of 20, no
	// customers) comes first by ASN, then AS30.
	i, err = FindTarget(g, c, TargetQuery{Depth: 1, Stub: true, MultiHomed: Bool(false), Hierarchy: UnderTier2})
	if err != nil {
		t.Fatal(err)
	}
	if g.ASN(i) != 21 {
		t.Errorf("depth-1 stub = %v, want AS21", g.ASN(i))
	}
	if _, err := FindTarget(g, c, TargetQuery{Depth: 7}); err == nil {
		t.Error("impossible query should fail")
	}
	if got := FindTargets(g, c, TargetQuery{Depth: 1, Stub: true}, 10); len(got) != 2 {
		t.Errorf("FindTargets found %d, want 2 (AS21, AS30)", len(got))
	}
}

func TestParseSerial2FourColumns(t *testing.T) {
	// CAIDA serial-2 appends a source column; it must be ignored.
	in := "1|10|-1|bgp\n1|2|0|mlp\n"
	g, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 {
		t.Fatalf("N = %d, want 3", g.N())
	}
	if got := g.Rel(nodeOf(t, g, 1), nodeOf(t, g, 10)); got != RelCustomer {
		t.Errorf("serial-2 p2c parsed as %v", got)
	}
}

func TestRehomeMultiProvider(t *testing.T) {
	g := tinyGraph(t)
	stub := nodeOf(t, g, 31)
	// Multi-home 31 to both tier-2s.
	g2, err := Rehome(g, stub, []int{nodeOf(t, g, 10), nodeOf(t, g, 11)})
	if err != nil {
		t.Fatal(err)
	}
	s2 := nodeOf(t, g2, 31)
	if g2.CountRel(s2, RelProvider) != 2 {
		t.Errorf("providers = %d, want 2", g2.CountRel(s2, RelProvider))
	}
	c := Classify(g2, ClassifyOptions{Tier2MinCustomers: 1})
	if c.Depth[s2] != 1 {
		t.Errorf("depth after multi-home = %d, want 1", c.Depth[s2])
	}
}
