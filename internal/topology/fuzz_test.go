package topology

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse: the CAIDA relationship parser must never panic, and any
// topology it accepts must survive a Write/Parse round trip unchanged.
func FuzzParse(f *testing.F) {
	f.Add("1|2|-1\n1|3|0\n2|4|1\n")
	f.Add("# comment\n10|20|-1\n")
	f.Fuzz(func(t *testing.T, s string) {
		g, err := Parse(strings.NewReader(s))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("accepted graph failed to serialize: %v", err)
		}
		g2, err := Parse(&buf)
		if err != nil {
			t.Fatalf("serialized graph failed to parse: %v", err)
		}
		if g2.N() != g.N() || g2.Edges() != g.Edges() {
			t.Fatalf("round trip changed size: %d/%d vs %d/%d", g2.N(), g2.Edges(), g.N(), g.Edges())
		}
	})
}
