package topology

import (
	"bytes"
	"testing"
)

func TestDefaultParamsScaling(t *testing.T) {
	p := DefaultParams(42697)
	if p.Tier1 != 17 {
		t.Errorf("paper-scale Tier1 = %d, want 17", p.Tier1)
	}
	transit := p.Tier1 + p.Tier2 + p.Mid + p.Small
	frac := float64(transit) / float64(p.Total())
	if frac < 0.10 || frac > 0.20 {
		t.Errorf("transit fraction = %.3f, want ≈ 0.147", frac)
	}
	small := DefaultParams(10)
	if small.Total() < 40 {
		t.Errorf("minimum params too small: %d", small.Total())
	}
	if err := p.Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
}

func TestGenParamsValidate(t *testing.T) {
	bad := []GenParams{
		{Tier1: 0, Regions: 1},
		{Tier1: 1, Regions: 0},
		{Tier1: 1, Regions: 1, Stub: -1},
		{Tier1: 1, Regions: 1, MultihomeFraction: 1.5},
		{Tier1: 1, Regions: 1, ChainFraction: -0.1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, p)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := DefaultParams(800)
	g1 := MustGenerate(p)
	g2 := MustGenerate(p)
	var b1, b2 bytes.Buffer
	if err := Write(&b1, g1); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b2, g2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("same seed produced different graphs")
	}
	p.Seed = 2
	var b3 bytes.Buffer
	if err := Write(&b3, MustGenerate(p)); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(b1.Bytes(), b3.Bytes()) {
		t.Error("different seeds produced identical graphs")
	}
}

func TestGenerateStructure(t *testing.T) {
	p := DefaultParams(2000)
	g := MustGenerate(p)
	if g.N() != p.Total() {
		t.Fatalf("N = %d, want %d", g.N(), p.Total())
	}
	c := Classify(g, ClassifyOptions{})

	if len(c.Tier1) != p.Tier1 {
		t.Errorf("classified %d tier-1s, generated %d", len(c.Tier1), p.Tier1)
	}
	if len(c.Tier2) == 0 {
		t.Error("no tier-2s classified")
	}

	// Every AS must have a finite depth (the graph is fully connected to
	// the core by construction).
	depthHist := map[int]int{}
	for i := 0; i < g.N(); i++ {
		if c.Depth[i] == DepthUnreachable {
			t.Fatalf("node %v unreachable from core", g.ASN(i))
		}
		depthHist[c.Depth[i]]++
	}
	// The paper's experiments need targets out to depth 5.
	for d := 1; d <= 4; d++ {
		if depthHist[d] == 0 {
			t.Errorf("no ASes at depth %d; hist=%v", d, depthHist)
		}
	}
	if c.MaxDepth() < 4 {
		t.Errorf("MaxDepth = %d, want ≥ 4 for deep-target scenarios", c.MaxDepth())
	}

	// Transit fraction in the right ballpark.
	transit := len(g.TransitNodes())
	frac := float64(transit) / float64(g.N())
	if frac < 0.08 || frac > 0.30 {
		t.Errorf("transit fraction %.3f outside sanity band", frac)
	}

	// Degree distribution: heavy head. Top node should be well above the
	// mean degree.
	order := NodesByDegree(g)
	mean := float64(2*g.Edges()) / float64(g.N())
	if top := float64(g.Degree(order[0])); top < 5*mean {
		t.Errorf("max degree %.0f vs mean %.1f: no heavy head", top, mean)
	}

	// Multihoming: a visible fraction of stubs has ≥2 providers.
	stubs, multi := 0, 0
	for i := 0; i < g.N(); i++ {
		if g.IsTransit(i) {
			continue
		}
		stubs++
		if g.CountRel(i, RelProvider) >= 2 {
			multi++
		}
	}
	if stubs == 0 {
		t.Fatal("no stubs generated")
	}
	mfrac := float64(multi) / float64(stubs)
	if mfrac < 0.15 || mfrac > 0.60 {
		t.Errorf("multihomed stub fraction = %.2f, want around 0.35", mfrac)
	}
}

func TestGenerateIslandRegion(t *testing.T) {
	p := DefaultParams(2000)
	g := MustGenerate(p)
	island := p.Regions - 1
	nodes := g.RegionNodes(island)
	if len(nodes) < p.IslandSize/2 {
		t.Fatalf("island has %d nodes, want ≈ %d", len(nodes), p.IslandSize)
	}
	inIsland := make(map[int]bool, len(nodes))
	for _, i := range nodes {
		inIsland[i] = true
	}
	// The island must touch the outside world through few border links
	// (hub-dominant, like the paper's NZ study).
	borderASes := map[int]bool{}
	for _, i := range nodes {
		nbrs, _ := g.Neighbors(i)
		for _, nb := range nbrs {
			if !inIsland[int(nb)] {
				borderASes[i] = true
			}
		}
	}
	if len(borderASes) == 0 {
		t.Fatal("island is fully disconnected")
	}
	if len(borderASes) > len(nodes)/4 {
		t.Errorf("island border too wide: %d of %d nodes", len(borderASes), len(nodes))
	}
}

func TestGenerateSiblingsPresent(t *testing.T) {
	p := DefaultParams(2000)
	if p.SiblingGroups == 0 {
		t.Skip("no sibling groups at this scale")
	}
	g := MustGenerate(p)
	found := 0
	for i := 0; i < g.N(); i++ {
		_, rels := g.Neighbors(i)
		for _, r := range rels {
			if r == RelSibling {
				found++
			}
		}
	}
	if found == 0 {
		t.Error("no sibling links generated")
	}
	con, err := ContractSiblings(g)
	if err != nil {
		t.Fatal(err)
	}
	if con.Graph.N() >= g.N() {
		t.Error("contraction did not shrink the graph")
	}
}

func TestGenerateAddrWeights(t *testing.T) {
	g := MustGenerate(DefaultParams(800))
	c := Classify(g, ClassifyOptions{})
	if len(c.Tier1) == 0 {
		t.Fatal("no tier-1")
	}
	t1 := c.Tier1[0]
	if g.AddrWeight(t1) <= 1 {
		t.Error("tier-1 should carry large address weight")
	}
	if g.TotalAddrWeight() <= int64(g.N()) {
		t.Error("total weight suspiciously small")
	}
}

// TestGraphSymmetryProperty: for every edge, the relationship seen from
// one endpoint must be the inverse of the relationship seen from the
// other — on hand-built, generated, and contracted graphs.
func TestGraphSymmetryProperty(t *testing.T) {
	graphs := []*Graph{MustGenerate(DefaultParams(600))}
	if con, err := ContractSiblings(graphs[0]); err == nil {
		graphs = append(graphs, con.Graph)
	}
	inverse := map[Rel]Rel{
		RelProvider: RelCustomer,
		RelCustomer: RelProvider,
		RelPeer:     RelPeer,
		RelSibling:  RelSibling,
	}
	for gi, g := range graphs {
		for i := 0; i < g.N(); i++ {
			nbrs, rels := g.Neighbors(i)
			for k, nb := range nbrs {
				back := g.Rel(int(nb), i)
				if back != inverse[rels[k]] {
					t.Fatalf("graph %d: rel(%d→%d)=%v but rel(%d→%d)=%v",
						gi, i, nb, rels[k], nb, i, back)
				}
			}
		}
		// Degree sums must equal twice the edge count.
		total := 0
		for i := 0; i < g.N(); i++ {
			total += g.Degree(i)
		}
		if total != 2*g.Edges() {
			t.Fatalf("graph %d: degree sum %d != 2×edges %d", gi, total, 2*g.Edges())
		}
	}
}
