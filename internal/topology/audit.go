package topology

// AuditReport summarizes structural health of a topology — the checks
// that matter before trusting simulation results on externally supplied
// relationship data (real CAIDA snapshots contain disconnected fragments
// and occasional provider loops from inference errors).
type AuditReport struct {
	// Components is the number of connected components (all link kinds).
	Components int
	// LargestComponent is the node count of the biggest component.
	LargestComponent int
	// ProviderCycles is the number of nodes involved in customer→provider
	// cycles (mutual- or circular-transit inference artifacts).
	ProviderCycles int
	// IsolatedFromCore counts nodes with no provider chain to any
	// provider-free AS.
	IsolatedFromCore int
	// StubShare is the fraction of ASes with no customers.
	StubShare float64
}

// Clean reports whether the topology is structurally sound for
// simulation: one dominant component, no provider cycles, and everyone
// reaches the core.
func (r AuditReport) Clean(n int) bool {
	return r.Components == 1 && r.ProviderCycles == 0 && r.IsolatedFromCore == 0 && r.LargestComponent == n
}

// Audit inspects g and returns the report.
func Audit(g *Graph) AuditReport {
	var rep AuditReport
	n := g.N()

	// Connected components over all links.
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var queue []int32
	for i := 0; i < n; i++ {
		if comp[i] >= 0 {
			continue
		}
		rep.Components++
		size := 1
		comp[i] = rep.Components
		queue = append(queue[:0], int32(i))
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			nbrs, _ := g.Neighbors(int(v))
			for _, nb := range nbrs {
				if comp[nb] < 0 {
					comp[nb] = rep.Components
					size++
					queue = append(queue, nb)
				}
			}
		}
		if size > rep.LargestComponent {
			rep.LargestComponent = size
		}
	}

	// Provider cycles: nodes not eliminated by repeatedly peeling ASes
	// with no providers (Kahn's algorithm over customer→provider edges).
	// Anything left sits on a cycle (or feeds only into one).
	provCount := make([]int, n)
	for i := 0; i < n; i++ {
		provCount[i] = g.CountRel(i, RelProvider)
	}
	peel := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		if provCount[i] == 0 {
			peel = append(peel, int32(i))
		}
	}
	removed := 0
	for head := 0; head < len(peel); head++ {
		v := peel[head]
		removed++
		nbrs, rels := g.Neighbors(int(v))
		for k, nb := range nbrs {
			// v is a provider of nb: removing v reduces nb's provider count.
			if rels[k] == RelCustomer {
				provCount[nb]--
				if provCount[nb] == 0 {
					peel = append(peel, nb)
				}
			}
		}
	}
	rep.ProviderCycles = n - removed

	// Core reachability under the depth metric.
	var anchors []int
	for i := 0; i < n; i++ {
		if g.CountRel(i, RelProvider) == 0 {
			anchors = append(anchors, i)
		}
	}
	depth := DepthFrom(g, anchors)
	stubs := 0
	for i := 0; i < n; i++ {
		if depth[i] == DepthUnreachable {
			rep.IsolatedFromCore++
		}
		if !g.IsTransit(i) {
			stubs++
		}
	}
	if n > 0 {
		rep.StubShare = float64(stubs) / float64(n)
	}
	return rep
}
