package topology

import "sort"

// DepthUnreachable marks nodes with no provider path to any anchor AS.
const DepthUnreachable = -1

// Classification holds the structural metrics the paper's analysis is
// built on: which ASes are tier-1 and tier-2, and each AS's depth under
// both of the paper's depth definitions.
type Classification struct {
	// Tier1 are the top-of-hierarchy ASes: no providers, densely peered
	// with each other (the paper's topology has 17).
	Tier1 []int
	// Tier2 are large transit ASes directly customered to a tier-1. The
	// paper redefines depth against tier-1 ∪ tier-2 after observing that
	// stubs of large tier-2s behave like depth-1 ASes.
	Tier2 []int
	// DepthV1 is hops to the nearest tier-1 (the paper's first definition).
	DepthV1 []int
	// Depth is hops to the nearest tier-1 or tier-2 (the paper's final
	// definition, used everywhere after Section IV).
	Depth []int

	tier1Set map[int]bool
	tier2Set map[int]bool
}

// IsTier1 reports whether node i is classified tier-1.
func (c *Classification) IsTier1(i int) bool { return c.tier1Set[i] }

// IsTier2 reports whether node i is classified tier-2.
func (c *Classification) IsTier2(i int) bool { return c.tier2Set[i] }

// MaxDepth returns the largest finite depth value.
func (c *Classification) MaxDepth() int {
	m := 0
	for _, d := range c.Depth {
		if d > m {
			m = d
		}
	}
	return m
}

// ClassifyOptions tunes tier inference. The zero value gives the defaults
// described on each field.
type ClassifyOptions struct {
	// Tier1PeerFraction is the fraction of other provider-free ASes a
	// provider-free AS must peer with to count as tier-1. Default 0.5.
	Tier1PeerFraction float64
	// Tier2MinCustomers is the minimum customer count for a direct
	// customer of a tier-1 to count as a (large) tier-2. Default 5.
	Tier2MinCustomers int
}

func (o ClassifyOptions) withDefaults() ClassifyOptions {
	if o.Tier1PeerFraction == 0 {
		o.Tier1PeerFraction = 0.5
	}
	if o.Tier2MinCustomers == 0 {
		o.Tier2MinCustomers = 5
	}
	return o
}

// Classify infers tier-1 and tier-2 sets and computes both depth metrics.
//
// Tier-1 inference: candidates are ASes with no providers; a candidate
// qualifies if it peers with at least Tier1PeerFraction of the other
// candidates (tier-1s form a near-clique). If no candidate qualifies (tiny
// or degenerate graphs) the highest-degree provider-free AS is used.
func Classify(g *Graph, opts ClassifyOptions) *Classification {
	opts = opts.withDefaults()

	var candidates []int
	for i := 0; i < g.N(); i++ {
		if g.CountRel(i, RelProvider) == 0 {
			candidates = append(candidates, i)
		}
	}
	candSet := make(map[int]bool, len(candidates))
	for _, i := range candidates {
		candSet[i] = true
	}

	var tier1 []int
	for _, i := range candidates {
		nbrs, rels := g.Neighbors(i)
		peers := 0
		for k, nb := range nbrs {
			if rels[k] == RelPeer && candSet[int(nb)] {
				peers++
			}
		}
		need := int(opts.Tier1PeerFraction * float64(len(candidates)-1))
		if len(candidates) == 1 || peers >= need && peers > 0 {
			tier1 = append(tier1, i)
		}
	}
	if len(tier1) == 0 && len(candidates) > 0 {
		best := candidates[0]
		for _, i := range candidates[1:] {
			if g.Degree(i) > g.Degree(best) {
				best = i
			}
		}
		tier1 = []int{best}
	}
	sort.Ints(tier1)
	tier1Set := make(map[int]bool, len(tier1))
	for _, i := range tier1 {
		tier1Set[i] = true
	}

	// Tier-2: direct customers of a tier-1 that are substantial transits.
	var tier2 []int
	tier2Set := make(map[int]bool)
	for i := 0; i < g.N(); i++ {
		if tier1Set[i] {
			continue
		}
		nbrs, rels := g.Neighbors(i)
		hasT1Provider := false
		for k, nb := range nbrs {
			if rels[k] == RelProvider && tier1Set[int(nb)] {
				hasT1Provider = true
				break
			}
		}
		if hasT1Provider && g.CountRel(i, RelCustomer) >= opts.Tier2MinCustomers {
			tier2 = append(tier2, i)
			tier2Set[i] = true
		}
	}

	c := &Classification{
		Tier1:    tier1,
		Tier2:    tier2,
		tier1Set: tier1Set,
		tier2Set: tier2Set,
	}
	c.DepthV1 = DepthFrom(g, tier1)
	anchors := make([]int, 0, len(tier1)+len(tier2))
	anchors = append(anchors, tier1...)
	anchors = append(anchors, tier2...)
	c.Depth = DepthFrom(g, anchors)
	return c
}

// DepthFrom computes, for every node, the minimum number of provider hops
// to reach any anchor (each anchor has depth 0; its direct customers depth
// 1, and so on). Nodes with no provider chain to an anchor get
// DepthUnreachable.
func DepthFrom(g *Graph, anchors []int) []int {
	depth := make([]int, g.N())
	for i := range depth {
		depth[i] = DepthUnreachable
	}
	queue := make([]int32, 0, g.N())
	for _, a := range anchors {
		if depth[a] == DepthUnreachable {
			depth[a] = 0
			queue = append(queue, int32(a))
		}
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		nbrs, rels := g.Neighbors(int(v))
		for k, nb := range nbrs {
			// Descend provider→customer links: nb is v's customer.
			if rels[k] == RelCustomer && depth[nb] == DepthUnreachable {
				depth[nb] = depth[v] + 1
				queue = append(queue, nb)
			}
		}
	}
	return depth
}

// Reach computes the paper's reach metric for node i: the number of other
// ASes reachable along valley-free paths that use no peer links — i.e. up
// through any chain of providers, then down through customer cones.
func Reach(g *Graph, i int) int {
	visitedUp := make(map[int]bool)
	up := []int{i}
	visitedUp[i] = true
	for head := 0; head < len(up); head++ {
		v := up[head]
		nbrs, rels := g.Neighbors(v)
		for k, nb := range nbrs {
			if rels[k] == RelProvider && !visitedUp[int(nb)] {
				visitedUp[int(nb)] = true
				up = append(up, int(nb))
			}
		}
	}
	// Descend customer links from everything on the up-paths.
	visited := make(map[int]bool, len(visitedUp))
	queue := make([]int, 0, len(up))
	for _, v := range up {
		visited[v] = true
		queue = append(queue, v)
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		nbrs, rels := g.Neighbors(v)
		for k, nb := range nbrs {
			if rels[k] == RelCustomer && !visited[int(nb)] {
				visited[int(nb)] = true
				queue = append(queue, int(nb))
			}
		}
	}
	return len(visited) - 1 // exclude self
}

// CustomerCone returns the size of node i's customer cone (itself plus all
// ASes reachable by repeatedly following customer links).
func CustomerCone(g *Graph, i int) int {
	visited := make(map[int]bool)
	queue := []int{i}
	visited[i] = true
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		nbrs, rels := g.Neighbors(v)
		for k, nb := range nbrs {
			if rels[k] == RelCustomer && !visited[int(nb)] {
				visited[int(nb)] = true
				queue = append(queue, int(nb))
			}
		}
	}
	return len(visited)
}

// NodesByDegree returns all node indices sorted by descending degree
// (ties broken by ascending ASN for determinism).
func NodesByDegree(g *Graph) []int {
	nodes := make([]int, g.N())
	for i := range nodes {
		nodes[i] = i
	}
	sort.Slice(nodes, func(a, b int) bool {
		da, db := g.Degree(nodes[a]), g.Degree(nodes[b])
		if da != db {
			return da > db
		}
		return g.ASN(nodes[a]) < g.ASN(nodes[b])
	})
	return nodes
}

// NodesWithDegreeAtLeast returns all nodes with degree ≥ min, in the same
// order as NodesByDegree. This is the paper's "filter N ASes with degree ≥
// D" deployment-set constructor.
func NodesWithDegreeAtLeast(g *Graph, min int) []int {
	var out []int
	for _, i := range NodesByDegree(g) {
		if g.Degree(i) < min {
			break
		}
		out = append(out, i)
	}
	return out
}
