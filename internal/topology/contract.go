package topology

import (
	"fmt"
	"sort"
)

// Contraction is the result of merging sibling groups: the contracted
// graph plus the mapping between old and new node indices. It implements
// the paper's sibling policy: "sibling to sibling: uses a community string
// to create the equivalent of one AS out of multiple sibling ASes".
type Contraction struct {
	// Graph is the contracted topology with no sibling links.
	Graph *Graph
	// NodeMap maps each original node index to its node in Graph.
	NodeMap []int
	// Groups lists the sibling groups that were merged (original indices),
	// each sorted ascending; single-node "groups" are omitted.
	Groups [][]int
}

// ContractSiblings merges every connected component of sibling links into a
// single logical AS carrying the lowest member ASN. External relationships
// are unioned; when two members disagree about an external AS the most
// customer-like relationship wins (customer > peer > provider), because the
// merged organization will use the most preferred of its sessions.
func ContractSiblings(g *Graph) (*Contraction, error) {
	// Union-find over sibling links.
	parent := make([]int, g.N())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	for i := 0; i < g.N(); i++ {
		nbrs, rels := g.Neighbors(i)
		for k, nb := range nbrs {
			if rels[k] == RelSibling {
				union(i, int(nb))
			}
		}
	}

	// Representative per group: lowest ASN member. Node indices ascend with
	// ASN, so the lowest index is the lowest ASN.
	repOf := make(map[int]int) // root -> representative index
	members := make(map[int][]int)
	for i := 0; i < g.N(); i++ {
		r := find(i)
		members[r] = append(members[r], i)
		if cur, ok := repOf[r]; !ok || i < cur {
			repOf[r] = i
		}
	}

	b := NewBuilder()
	repIdx := func(i int) int { return repOf[find(i)] }

	type pair [2]int
	merged := make(map[pair]Rel)
	relRank := func(r Rel) int { // lower = more preferred for the merged AS
		switch r {
		case RelCustomer:
			return 0
		case RelPeer:
			return 1
		default:
			return 2
		}
	}
	for i := 0; i < g.N(); i++ {
		nbrs, rels := g.Neighbors(i)
		ri := repIdx(i)
		for k, nb := range nbrs {
			if rels[k] == RelSibling {
				continue
			}
			rj := repIdx(int(nb))
			if ri == rj {
				continue // internal to a merged group
			}
			lo, hi, rel := ri, rj, rels[k]
			if lo > hi {
				lo, hi, rel = hi, lo, rel.invert()
			}
			key := pair{lo, hi}
			// Conflicting relationships between two merged groups are
			// resolved deterministically from the lower-indexed group's
			// perspective, preferring the most customer-like session.
			if prev, ok := merged[key]; !ok || relRank(rel) < relRank(prev) {
				merged[key] = rel
			}
		}
	}
	keys := make([]pair, 0, len(merged))
	for k := range merged { //bgplint:ignore maporder keys are sorted immediately below
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	for _, key := range keys {
		if err := b.AddLink(g.ASN(key[0]), g.ASN(key[1]), merged[key]); err != nil {
			return nil, fmt.Errorf("contract: %w", err)
		}
	}
	// Attributes: the representative keeps its region; address weight sums
	// over the group.
	groupWeight := make(map[int]int64)
	for i := 0; i < g.N(); i++ {
		groupWeight[repIdx(i)] += g.AddrWeight(i)
	}
	//bgplint:ignore maporder keyed per-rep writes; each representative is visited once
	for rep, w := range groupWeight {
		b.SetAddrWeight(g.ASN(rep), w)
		if r := g.Region(rep); r >= 0 {
			b.SetRegion(g.ASN(rep), r)
		}
	}

	cg := b.Build()
	nodeMap := make([]int, g.N())
	for i := 0; i < g.N(); i++ {
		ni, ok := cg.Index(g.ASN(repIdx(i)))
		if !ok {
			// A fully isolated sibling group (no external links) vanishes
			// from the contracted graph; map it to -1.
			ni = -1
		}
		nodeMap[i] = ni
	}
	var groups [][]int
	//bgplint:ignore maporder groups are sorted immediately below
	for root, ms := range members {
		if len(ms) > 1 {
			sort.Ints(ms)
			groups = append(groups, ms)
		}
		_ = root
	}
	sort.Slice(groups, func(a, b int) bool { return groups[a][0] < groups[b][0] })
	return &Contraction{Graph: cg, NodeMap: nodeMap, Groups: groups}, nil
}
