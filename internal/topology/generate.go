package topology

import (
	"fmt"
	"math/rand"

	"github.com/bgpsim/bgpsim/internal/asn"
)

// GenParams configures the synthetic Internet generator. The defaults
// produced by DefaultParams(n) scale the macro-structure of the paper's
// CAIDA snapshot (42,697 ASes: 17 tier-1s, ~6,318 transit ASes ≈ 14.7 %,
// the rest stubs at depths 1–7) down to n ASes.
type GenParams struct {
	Seed int64

	Tier1 int // top clique size
	Tier2 int // large transits directly under tier-1
	Mid   int // regional transit providers
	Small int // small transit providers (some form deep chains)
	Stub  int // edge networks

	// Regions partitions mid/small/stub ASes geographically; attachment is
	// region-biased. The last region is generated as an "island" (the
	// paper's New Zealand analog): a bounded sub-mesh reached almost
	// exclusively through one hub transit AS.
	Regions    int
	IslandSize int

	// SiblingGroups is the number of two-AS sibling organizations to embed.
	SiblingGroups int

	// MultihomeFraction is the probability that a stub gets a second
	// provider (a further 1/6 of those get a third).
	MultihomeFraction float64

	// ChainFraction is the fraction of small transits arranged into
	// provider chains of length 2–4 below a mid transit, which is what
	// creates the deep (depth 4–6) targets the paper studies.
	ChainFraction float64
}

// Validate checks the parameters for internal consistency.
func (p GenParams) Validate() error {
	if p.Tier1 < 1 {
		return fmt.Errorf("genparams: need at least one tier-1, got %d", p.Tier1)
	}
	for _, c := range []struct {
		name string
		v    int
	}{{"Tier2", p.Tier2}, {"Mid", p.Mid}, {"Small", p.Small}, {"Stub", p.Stub}} {
		if c.v < 0 {
			return fmt.Errorf("genparams: %s must be non-negative, got %d", c.name, c.v)
		}
	}
	if p.Regions < 1 {
		return fmt.Errorf("genparams: need at least one region, got %d", p.Regions)
	}
	if p.MultihomeFraction < 0 || p.MultihomeFraction > 1 {
		return fmt.Errorf("genparams: MultihomeFraction out of [0,1]: %v", p.MultihomeFraction)
	}
	if p.ChainFraction < 0 || p.ChainFraction > 1 {
		return fmt.Errorf("genparams: ChainFraction out of [0,1]: %v", p.ChainFraction)
	}
	return nil
}

// Total returns the number of ASes the parameters will generate.
func (p GenParams) Total() int { return p.Tier1 + p.Tier2 + p.Mid + p.Small + p.Stub }

// DefaultParams returns parameters scaled from the paper's topology to
// approximately n ASes (n ≥ 50). Pass n = 42697 for paper scale.
func DefaultParams(n int) GenParams {
	if n < 50 {
		n = 50
	}
	scale := func(paper int, min int) int {
		v := n * paper / 42697
		if v < min {
			v = min
		}
		return v
	}
	p := GenParams{
		Seed:              1,
		Tier1:             scale(17, 3),
		Tier2:             scale(55, 4),
		Mid:               scale(1250, 12),
		Small:             scale(5000, 16),
		Regions:           maxInt(3, n/1200),
		IslandSize:        scale(187, 40),
		SiblingGroups:     maxInt(1, n/2500),
		MultihomeFraction: 0.35,
		ChainFraction:     0.22,
	}
	rest := n - p.Tier1 - p.Tier2 - p.Mid - p.Small
	if rest < 10 {
		rest = 10
	}
	p.Stub = rest
	return p
}

// genState carries the in-progress topology through the generator stages.
type genState struct {
	p   GenParams
	rng *rand.Rand
	b   *Builder

	asns   []asn.ASN // node id (generation order) -> ASN
	region []int     // node id -> region, -1 global

	tier1, tier2, mid, small, stub []int // node ids per layer
	degree                         []int // running degree, for preferential attachment

	islandHub    int   // node id of the island's hub transit
	islandTrans  []int // island-internal transit ASes
	islandRegion int
}

// Generate builds a synthetic Internet-like AS graph. The same parameters
// (including Seed) always produce the identical graph.
func Generate(p GenParams) (*Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := &genState{
		p:            p,
		rng:          rand.New(rand.NewSource(p.Seed)),
		b:            NewBuilder(),
		islandRegion: p.Regions - 1,
	}
	s.assignASNs()
	s.buildTier1()
	s.buildTier2()
	s.buildMid()
	s.buildSmall()
	s.buildStubs()
	s.buildSiblings()
	s.assignWeights()
	g := s.b.Build()
	if g.N() == 0 {
		return nil, fmt.Errorf("generate: empty graph")
	}
	return g, nil
}

// MustGenerate is Generate for tests and examples; it panics on error.
func MustGenerate(p GenParams) *Graph {
	g, err := Generate(p)
	if err != nil {
		panic(err)
	}
	return g
}

func (s *genState) assignASNs() {
	n := s.p.Total()
	// Random but collision-free ASNs from a shuffled range, so that node
	// index and ASN never coincide by accident in tests.
	pool := s.rng.Perm(n * 4)
	s.asns = make([]asn.ASN, n)
	for i := 0; i < n; i++ {
		s.asns[i] = asn.FromUint32(uint32(pool[i] + 100))
	}
	s.region = make([]int, n)
	for i := range s.region {
		s.region[i] = -1
	}
	s.degree = make([]int, n)
}

func (s *genState) link(a, b int, rel Rel) {
	// Generator invariants make conflicts impossible: every link is created
	// exactly once between nodes of distinct layers or deduplicated peers.
	if err := s.b.AddLink(s.asns[a], s.asns[b], rel); err != nil {
		panic(fmt.Sprintf("generate: %v", err))
	}
	s.degree[a]++
	s.degree[b]++
}

// pickWeighted selects one candidate with probability proportional to
// degree+1 (preferential attachment), excluding ids in `used`.
func (s *genState) pickWeighted(candidates []int, used map[int]bool) int {
	total := 0
	for _, c := range candidates {
		if !used[c] {
			total += s.degree[c] + 1
		}
	}
	if total == 0 {
		return -1
	}
	r := s.rng.Intn(total)
	for _, c := range candidates {
		if used[c] {
			continue
		}
		r -= s.degree[c] + 1
		if r < 0 {
			return c
		}
	}
	return -1
}

func (s *genState) buildTier1() {
	n := s.p.Tier1
	for i := 0; i < n; i++ {
		s.tier1 = append(s.tier1, i)
	}
	// Full peering clique.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s.link(s.tier1[i], s.tier1[j], RelPeer)
		}
	}
}

func (s *genState) buildTier2() {
	base := s.p.Tier1
	for i := 0; i < s.p.Tier2; i++ {
		s.tier2 = append(s.tier2, base+i)
	}
	for _, t2 := range s.tier2 {
		// 1–3 tier-1 providers, degree-weighted.
		n := 1 + s.rng.Intn(3)
		used := map[int]bool{}
		for k := 0; k < n; k++ {
			p := s.pickWeighted(s.tier1, used)
			if p < 0 {
				break
			}
			used[p] = true
			s.link(p, t2, RelCustomer)
		}
	}
	// Dense tier-2 peering mesh (~55 %), mirroring the highly
	// inter-connected degree≥500 backbone class in the paper.
	for i := 0; i < len(s.tier2); i++ {
		for j := i + 1; j < len(s.tier2); j++ {
			if s.rng.Float64() < 0.55 {
				s.link(s.tier2[i], s.tier2[j], RelPeer)
			}
		}
	}
}

func (s *genState) buildMid() {
	base := s.p.Tier1 + s.p.Tier2
	for i := 0; i < s.p.Mid; i++ {
		id := base + i
		s.mid = append(s.mid, id)
		s.region[id] = s.rng.Intn(maxInt(1, s.p.Regions-1)) // not the island
	}
	// The island hub is a dedicated mid transit homed to tier-2s.
	if len(s.mid) > 0 {
		s.islandHub = s.mid[len(s.mid)-1]
		s.region[s.islandHub] = s.islandRegion
	}
	for _, m := range s.mid {
		nProv := 1 + s.rng.Intn(2)
		if s.rng.Float64() < 0.25 {
			nProv++
		}
		used := map[int]bool{}
		for k := 0; k < nProv; k++ {
			layer := s.tier2
			if len(layer) == 0 || s.rng.Float64() < 0.2 {
				layer = s.tier1
			}
			p := s.pickWeighted(layer, used)
			if p < 0 {
				continue
			}
			used[p] = true
			s.link(p, m, RelCustomer)
		}
	}
	// Sparse regional peering among mids.
	for i := 0; i < len(s.mid); i++ {
		for k := 0; k < 2; k++ {
			if s.rng.Float64() > 0.08 {
				continue
			}
			j := s.rng.Intn(len(s.mid))
			a, b := s.mid[i], s.mid[j]
			if a == b || s.region[a] != s.region[b] {
				continue
			}
			if s.b.linkExists(s.asns[a], s.asns[b]) {
				continue
			}
			s.link(a, b, RelPeer)
		}
	}
}

func (s *genState) buildSmall() {
	base := s.p.Tier1 + s.p.Tier2 + s.p.Mid
	for i := 0; i < s.p.Small; i++ {
		s.small = append(s.small, base+i)
	}
	// Reserve a slice of smalls as island-internal transits, arranged as a
	// two-level hierarchy below the hub so the island has depth of its own
	// (the paper's NZ region holds ASes at several depths). One first-level
	// transit gets a backup provider outside the island, mirroring a
	// regional ISP with its own international transit.
	nIslandTrans := minInt(len(s.small)/8, maxInt(4, s.p.IslandSize/8))
	idx := 0
	for ; idx < nIslandTrans && idx < len(s.small); idx++ {
		sm := s.small[idx]
		s.region[sm] = s.islandRegion
		s.islandTrans = append(s.islandTrans, sm)
		if k := len(s.islandTrans); k <= maxInt(2, nIslandTrans/2) {
			s.link(s.islandHub, sm, RelCustomer) // first level: under the hub
			if k == 2 && len(s.tier2) > 0 {
				out := s.pickWeighted(s.tier2, nil)
				if out >= 0 {
					s.link(out, sm, RelCustomer)
				}
			}
		} else {
			// Second level: under a first-level island transit.
			parent := s.islandTrans[s.rng.Intn(maxInt(1, len(s.islandTrans)/2))]
			s.link(parent, sm, RelCustomer)
		}
	}

	// Deep chains: consume groups of 2–4 smalls as provider chains below a
	// mid, producing transit ASes at depths 2–4 (and stub targets below
	// them at depths 3–5+).
	nChain := int(s.p.ChainFraction * float64(len(s.small)-idx))
	for idx < len(s.small) && nChain > 0 {
		chainLen := 2 + s.rng.Intn(3)
		if chainLen > nChain {
			chainLen = nChain
		}
		if idx+chainLen > len(s.small) {
			chainLen = len(s.small) - idx
		}
		parent := s.mid[s.rng.Intn(len(s.mid))]
		if parent == s.islandHub && len(s.mid) > 1 {
			parent = s.mid[0]
		}
		region := s.region[parent]
		for k := 0; k < chainLen; k++ {
			sm := s.small[idx]
			s.region[sm] = region
			s.link(parent, sm, RelCustomer)
			parent = sm
			idx++
			nChain--
		}
	}

	// Remaining smalls: ordinary single/dual-homed transits under mids
	// (mostly) or tier-2s.
	for ; idx < len(s.small); idx++ {
		sm := s.small[idx]
		var parentLayer []int
		if s.rng.Float64() < 0.7 && len(s.mid) > 0 {
			parentLayer = s.mid
		} else if len(s.tier2) > 0 {
			parentLayer = s.tier2
		} else {
			parentLayer = s.tier1
		}
		used := map[int]bool{s.islandHub: true}
		p := s.pickWeighted(parentLayer, used)
		if p < 0 {
			p = s.tier1[0]
		}
		used[p] = true
		s.region[sm] = s.region[p]
		if s.region[sm] < 0 {
			s.region[sm] = s.rng.Intn(maxInt(1, s.p.Regions-1))
		}
		s.link(p, sm, RelCustomer)
		if s.rng.Float64() < 0.3 {
			if q := s.pickWeighted(parentLayer, used); q >= 0 {
				s.link(q, sm, RelCustomer)
			}
		}
	}
}

// providerPool returns attachment candidates for a stub in a region,
// preferring transit ASes of that region.
func (s *genState) providerPool(region int, roll float64) []int {
	switch {
	case roll < 0.03:
		return s.tier1
	case roll < 0.30 && len(s.tier2) > 0:
		return s.tier2
	case roll < 0.72 && len(s.mid) > 0:
		return s.regionFiltered(s.mid, region)
	case len(s.small) > 0:
		return s.regionFiltered(s.small, region)
	default:
		return s.tier1
	}
}

func (s *genState) regionFiltered(layer []int, region int) []int {
	if region < 0 || s.rng.Float64() > 0.8 {
		return layer
	}
	var out []int
	for _, v := range layer {
		if s.region[v] == region {
			out = append(out, v)
		}
	}
	if len(out) == 0 {
		return layer
	}
	return out
}

func (s *genState) buildStubs() {
	base := s.p.Tier1 + s.p.Tier2 + s.p.Mid + s.p.Small
	nIslandStubs := maxInt(0, s.p.IslandSize-len(s.islandTrans)-1)
	for i := 0; i < s.p.Stub; i++ {
		id := base + i
		s.stub = append(s.stub, id)
		if i < nIslandStubs {
			// Island stubs attach inside the island, with a deep bias so
			// the region has its own vulnerable tail; ~12 % also multihome
			// to a provider outside the island (the region is reachable
			// around, not only through, the hub — as with the paper's NZ).
			s.region[id] = s.islandRegion
			pool := s.islandTrans
			if len(pool) == 0 || s.rng.Float64() < 0.15 {
				pool = []int{s.islandHub}
			} else if deep := pool[len(pool)/2:]; len(deep) > 0 && s.rng.Float64() < 0.6 {
				pool = deep // prefer second-level island transits
			}
			p := pool[s.rng.Intn(len(pool))]
			s.link(p, id, RelCustomer)
			switch {
			case s.rng.Float64() < 0.12 && len(s.mid) > 1:
				if out := s.pickWeighted(s.mid, map[int]bool{s.islandHub: true, p: true}); out >= 0 {
					s.link(out, id, RelCustomer)
				}
			case s.rng.Float64() < 0.2 && len(s.islandTrans) > 1:
				q := s.islandTrans[s.rng.Intn(len(s.islandTrans))]
				if q != p {
					s.link(q, id, RelCustomer)
				}
			}
			continue
		}
		region := s.rng.Intn(maxInt(1, s.p.Regions-1))
		s.region[id] = region
		pool := s.providerPool(region, s.rng.Float64())
		used := map[int]bool{}
		p := s.pickWeighted(pool, used)
		if p < 0 {
			p = s.tier1[0]
		}
		used[p] = true
		s.link(p, id, RelCustomer)
		if s.rng.Float64() < s.p.MultihomeFraction {
			pool2 := s.providerPool(region, s.rng.Float64())
			if q := s.pickWeighted(pool2, used); q >= 0 {
				used[q] = true
				s.link(q, id, RelCustomer)
				if s.rng.Float64() < 1.0/6 {
					if r := s.pickWeighted(pool2, used); r >= 0 {
						s.link(r, id, RelCustomer)
					}
				}
			}
		}
	}
	for i := range s.asns {
		s.b.SetRegion(s.asns[i], s.region[i])
	}
}

func (s *genState) buildSiblings() {
	// Pair up mids from the same region as sibling organizations.
	made := 0
	for attempt := 0; attempt < s.p.SiblingGroups*20 && made < s.p.SiblingGroups; attempt++ {
		if len(s.mid) < 2 {
			return
		}
		a := s.mid[s.rng.Intn(len(s.mid))]
		b := s.mid[s.rng.Intn(len(s.mid))]
		if a == b || a == s.islandHub || b == s.islandHub {
			continue
		}
		if s.b.linkExists(s.asns[a], s.asns[b]) {
			continue
		}
		s.link(a, b, RelSibling)
		made++
	}
}

func (s *genState) assignWeights() {
	weight := func(id int) int64 {
		switch {
		case containsInt(s.tier1, id):
			return 1 << 16
		case containsInt(s.tier2, id):
			return 1 << 14
		case containsInt(s.mid, id):
			return 1 << 10
		case containsInt(s.small, id):
			return 1 << 8
		default:
			return 1 << uint(4+s.rng.Intn(5))
		}
	}
	// Layer membership is contiguous by construction, so a binary check on
	// ranges would do; the explicit contains keeps this honest if layout
	// ever changes.
	for id := range s.asns {
		s.b.SetAddrWeight(s.asns[id], weight(id))
	}
}

// linkExists reports whether the builder already has any link between a and b.
func (b *Builder) linkExists(a, c asn.ASN) bool {
	key, _ := orderLink(a, c, RelPeer)
	_, ok := b.links[key]
	return ok
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
