package topology

import "fmt"

// Hierarchy selects which provider hierarchy a scenario target must sit
// under, matching the paper's Figure 2 (tier-1 hierarchies) versus Figure 3
// (tier-2 hierarchies) target selection.
type Hierarchy int

const (
	// AnyHierarchy accepts targets regardless of which anchor their
	// shortest provider chain reaches.
	AnyHierarchy Hierarchy = iota
	// UnderTier1 requires the target's shortest provider chain to top out
	// at a tier-1 AS.
	UnderTier1
	// UnderTier2 requires the chain to top out at a tier-2 AS.
	UnderTier2
)

// TargetQuery describes a topological role, the way the paper describes
// AS 98 ("a stub at depth 1, multi-homed, isolated within a tier-1
// hierarchy") or AS 55857 ("depth 5, very vulnerable").
type TargetQuery struct {
	// Depth is the required depth (tier-1 ∪ tier-2 definition).
	Depth int
	// MultiHomed constrains the provider count: nil = don't care,
	// true = ≥2 providers, false = exactly 1.
	MultiHomed *bool
	// Hierarchy constrains the anchor type of the shortest provider chain.
	Hierarchy Hierarchy
	// Stub requires the target to have no customers. Most paper targets
	// are stubs; set false to allow transit ASes too.
	Stub bool
}

// Bool is a convenience for building *bool query fields.
func Bool(v bool) *bool { return &v }

// FindTarget returns the first node (ascending ASN order) matching the
// query, so scenario selection is deterministic for a given topology.
func FindTarget(g *Graph, c *Classification, q TargetQuery) (int, error) {
	for i := 0; i < g.N(); i++ {
		if matchesTarget(g, c, i, q) {
			return i, nil
		}
	}
	return -1, fmt.Errorf("no AS matches %+v", q)
}

// FindTargets returns up to max nodes matching the query.
func FindTargets(g *Graph, c *Classification, q TargetQuery, max int) []int {
	var out []int
	for i := 0; i < g.N() && len(out) < max; i++ {
		if matchesTarget(g, c, i, q) {
			out = append(out, i)
		}
	}
	return out
}

func matchesTarget(g *Graph, c *Classification, i int, q TargetQuery) bool {
	if c.Depth[i] != q.Depth {
		return false
	}
	if q.Stub && g.IsTransit(i) {
		return false
	}
	if q.MultiHomed != nil {
		multi := g.CountRel(i, RelProvider) >= 2
		if multi != *q.MultiHomed {
			return false
		}
	}
	if q.Hierarchy != AnyHierarchy {
		anchor, ok := chainAnchor(g, c, i)
		if !ok {
			return false
		}
		if q.Hierarchy == UnderTier1 && !c.IsTier1(anchor) {
			return false
		}
		if q.Hierarchy == UnderTier2 && !c.IsTier2(anchor) {
			return false
		}
	}
	return true
}

// chainAnchor walks a shortest provider chain from node i upward and
// returns the tier-1/tier-2 anchor it reaches.
func chainAnchor(g *Graph, c *Classification, i int) (int, bool) {
	cur := i
	for c.Depth[cur] > 0 {
		nbrs, rels := g.Neighbors(cur)
		next := -1
		for k, nb := range nbrs {
			if rels[k] == RelProvider && c.Depth[nb] == c.Depth[cur]-1 {
				if next == -1 || g.ASN(int(nb)) < g.ASN(next) {
					next = int(nb)
				}
			}
		}
		if next == -1 {
			return -1, false
		}
		cur = next
	}
	return cur, c.IsTier1(cur) || c.IsTier2(cur)
}
