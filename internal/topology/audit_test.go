package topology

import (
	"strings"
	"testing"
)

func TestAuditCleanGenerated(t *testing.T) {
	g := MustGenerate(DefaultParams(800))
	rep := Audit(g)
	if !rep.Clean(g.N()) {
		t.Errorf("generated topology not clean: %+v", rep)
	}
	if rep.Components != 1 || rep.LargestComponent != g.N() {
		t.Errorf("components = %d/%d", rep.Components, rep.LargestComponent)
	}
	if rep.StubShare < 0.5 || rep.StubShare > 0.95 {
		t.Errorf("stub share = %.2f", rep.StubShare)
	}
}

func TestAuditDisconnected(t *testing.T) {
	in := "1|10|-1\n2|20|-1\n" // two separate provider islands
	g, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	rep := Audit(g)
	if rep.Components != 2 {
		t.Errorf("components = %d, want 2", rep.Components)
	}
	if rep.LargestComponent != 2 {
		t.Errorf("largest = %d, want 2", rep.LargestComponent)
	}
	if rep.Clean(g.N()) {
		t.Error("disconnected topology reported clean")
	}
}

func TestAuditProviderCycle(t *testing.T) {
	// 1 → 2 → 3 → 1 circular transit, with a clean stub alongside.
	in := "1|2|-1\n2|3|-1\n3|1|-1\n1|9|-1\n10|20|-1\n"
	g, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	rep := Audit(g)
	// Nodes 1,2,3 sit on the cycle; stub 9 hangs below it (never peeled
	// because its provider is cyclic — 9 has provider 1, which is never
	// removed… 9 itself has provider count 1 that never reaches zero).
	if rep.ProviderCycles < 3 {
		t.Errorf("provider-cycle nodes = %d, want ≥ 3", rep.ProviderCycles)
	}
	if rep.Clean(g.N()) {
		t.Error("cyclic topology reported clean")
	}
	// The healthy island (10 → 20) must not be flagged isolated.
	if rep.IsolatedFromCore != 0 {
		// 1,2,3,9 have providers but no provider-free ancestor, so they
		// ARE isolated from the core under the depth metric.
		if rep.IsolatedFromCore != 4 {
			t.Errorf("isolated = %d, want 4 (the cycle + its stub)", rep.IsolatedFromCore)
		}
	}
}

func TestAuditLoadedCleanRoundTrip(t *testing.T) {
	// A clean handcrafted file audits clean.
	in := "1|2|0\n1|10|-1\n2|11|-1\n10|20|-1\n11|21|-1\n"
	g, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	rep := Audit(g)
	if !rep.Clean(g.N()) {
		t.Errorf("clean topology flagged: %+v", rep)
	}
}
