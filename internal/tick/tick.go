// Package tick provides an injectable clock abstraction for the live
// feed pipeline. Hold-timer enforcement, keepalive scheduling and
// reconnect backoff must never read the wall clock directly: every
// duration-sensitive decision goes through a Clock so tests drive the
// exact same code with a deterministic Fake (see DESIGN.md, "Live
// pipeline robustness"). Real() is the production implementation; the
// cmd tools install it at the boundary.
package tick

import (
	"sync"
	"time"
)

// Clock abstracts "now" and timer creation.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// NewTimer returns a timer that fires once after d.
	NewTimer(d time.Duration) Timer
}

// Timer is the subset of *time.Timer the feed layer uses. Channel and
// Stop/Reset semantics match time.Timer under Go 1.22 rules: after a
// fire the value stays buffered in C until received, so callers reuse
// timers via the stop-drain-reset idiom (see Rearm).
type Timer interface {
	C() <-chan time.Time
	Stop() bool
	Reset(d time.Duration) bool
}

// Rearm safely re-arms a possibly-fired, possibly-drained timer for d,
// encapsulating the classic stop-drain-reset dance. It must only be
// called from the goroutine that receives on t.C().
func Rearm(t Timer, d time.Duration) {
	if !t.Stop() {
		select {
		case <-t.C():
		default:
		}
	}
	t.Reset(d)
}

// Real returns the wall-clock Clock backed by package time.
func Real() Clock { return realClock{} }

// Or returns c if non-nil, else the wall clock. It is the one sanctioned
// nil-Clock fallback: library structs whose zero value must work call
// tick.Or(x.Clock) instead of reaching for Real() themselves, keeping
// every wall-clock escape hatch in this package where the walltime
// analyzer's suppressions are audited together.
func Or(c Clock) Clock {
	if c != nil {
		return c
	}
	//bgplint:ignore walltime sanctioned nil-Clock fallback; tests inject Fake through the Clock field
	return Real()
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() } //bgplint:ignore walltime Real is the sanctioned wall-clock implementation behind Clock

//bgplint:ignore walltime Real is the sanctioned wall-clock implementation behind Clock
func (realClock) NewTimer(d time.Duration) Timer { return realTimer{time.NewTimer(d)} }

type realTimer struct{ t *time.Timer }

func (r realTimer) C() <-chan time.Time        { return r.t.C }
func (r realTimer) Stop() bool                 { return r.t.Stop() }
func (r realTimer) Reset(d time.Duration) bool { return r.t.Reset(d) }

// Fake is a manually advanced Clock for deterministic tests: timers
// fire only inside Advance/AdvanceToNext, on the advancing goroutine.
// It is safe for concurrent use.
type Fake struct {
	mu     sync.Mutex
	cond   *sync.Cond
	now    time.Time
	timers []*fakeTimer
}

// NewFake returns a Fake clock starting at a fixed epoch. The epoch is
// deliberately far in the real future: code under test may arm real
// socket deadlines (net.Conn.SetReadDeadline) from Clock.Now(), and a
// past-dated deadline would make every read fail instantly. Only
// durations matter to the feed layer, so the absolute value is
// otherwise arbitrary.
func NewFake() *Fake {
	f := &Fake{now: time.Unix(1<<40, 0)}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// Now returns the fake clock's current time.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// NewTimer arms a fake timer d from the fake now. A non-positive d
// fires on the next Advance(0).
func (f *Fake) NewTimer(d time.Duration) Timer {
	f.mu.Lock()
	defer f.mu.Unlock()
	t := &fakeTimer{
		clock:    f,
		ch:       make(chan time.Time, 1),
		deadline: f.now.Add(d),
		armed:    true,
	}
	f.timers = append(f.timers, t)
	f.cond.Broadcast()
	return t
}

// Advance moves the clock forward by d, firing every armed timer whose
// deadline is reached, earliest first.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.advanceTo(f.now.Add(d))
}

// AdvanceToNext jumps to the earliest armed deadline and fires it,
// returning how far the clock moved. It returns false when no timer is
// armed.
func (f *Fake) AdvanceToNext() (time.Duration, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var next *fakeTimer
	for _, t := range f.timers {
		if t.armed && (next == nil || t.deadline.Before(next.deadline)) {
			next = t
		}
	}
	if next == nil {
		return 0, false
	}
	d := next.deadline.Sub(f.now)
	if d < 0 {
		d = 0
	}
	f.advanceTo(f.now.Add(d))
	return d, true
}

// BlockUntilTimers waits until at least n timers are armed — the
// rendezvous a test needs before advancing past a deadline the code
// under test is still arming.
func (f *Fake) BlockUntilTimers(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for f.armedLocked() < n {
		//bgplint:ignore lockheld Cond.Wait atomically releases f.mu while parked
		f.cond.Wait()
	}
}

func (f *Fake) armedLocked() int {
	n := 0
	for _, t := range f.timers {
		if t.armed {
			n++
		}
	}
	return n
}

// advanceTo fires due timers in deadline order; the caller holds f.mu.
func (f *Fake) advanceTo(target time.Time) {
	for {
		var next *fakeTimer
		for _, t := range f.timers {
			if t.armed && !t.deadline.After(target) &&
				(next == nil || t.deadline.Before(next.deadline)) {
				next = t
			}
		}
		if next == nil {
			break
		}
		if next.deadline.After(f.now) {
			f.now = next.deadline
		}
		next.armed = false
		select {
		case next.ch <- next.deadline:
		default: // a previous fire is still buffered; drop, like time.Timer
		}
	}
	if target.After(f.now) {
		f.now = target
	}
}

type fakeTimer struct {
	clock    *Fake
	ch       chan time.Time
	deadline time.Time
	armed    bool
}

func (t *fakeTimer) C() <-chan time.Time { return t.ch }

func (t *fakeTimer) Stop() bool {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	was := t.armed
	t.armed = false
	return was
}

func (t *fakeTimer) Reset(d time.Duration) bool {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	was := t.armed
	t.deadline = t.clock.now.Add(d)
	t.armed = true
	t.clock.cond.Broadcast()
	return was
}
