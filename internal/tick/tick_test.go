package tick

import (
	"testing"
	"time"
)

func TestFakeAdvanceFiresInOrder(t *testing.T) {
	f := NewFake()
	start := f.Now()
	t1 := f.NewTimer(10 * time.Second)
	t2 := f.NewTimer(5 * time.Second)
	f.Advance(20 * time.Second)
	// Both fired; t2's deadline precedes t1's.
	v2 := <-t2.C()
	v1 := <-t1.C()
	if !v2.Before(v1) {
		t.Fatalf("fire order: t2=%v t1=%v", v2, v1)
	}
	if got := f.Now().Sub(start); got != 20*time.Second {
		t.Fatalf("now advanced %v, want 20s", got)
	}
}

func TestFakeStopAndRearm(t *testing.T) {
	f := NewFake()
	tm := f.NewTimer(time.Second)
	if !tm.Stop() {
		t.Fatal("Stop on armed timer = false")
	}
	f.Advance(5 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("stopped timer fired")
	default:
	}
	Rearm(tm, 2*time.Second)
	f.Advance(time.Second)
	select {
	case <-tm.C():
		t.Fatal("fired early")
	default:
	}
	f.Advance(time.Second)
	<-tm.C()
}

func TestFakeAdvanceToNext(t *testing.T) {
	f := NewFake()
	if _, ok := f.AdvanceToNext(); ok {
		t.Fatal("AdvanceToNext with no timers = true")
	}
	f.NewTimer(3 * time.Second)
	f.NewTimer(7 * time.Second)
	d, ok := f.AdvanceToNext()
	if !ok || d != 3*time.Second {
		t.Fatalf("first advance = %v,%v", d, ok)
	}
	d, ok = f.AdvanceToNext()
	if !ok || d != 4*time.Second {
		t.Fatalf("second advance = %v,%v", d, ok)
	}
}

func TestFakeBlockUntilTimers(t *testing.T) {
	f := NewFake()
	done := make(chan struct{})
	go func() {
		defer close(done)
		f.BlockUntilTimers(2)
	}()
	f.NewTimer(time.Second)
	f.NewTimer(time.Second)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("BlockUntilTimers never returned")
	}
}

func TestRealClockBasics(t *testing.T) {
	c := Real()
	tm := c.NewTimer(time.Millisecond)
	select {
	case <-tm.C():
	case <-time.After(5 * time.Second):
		t.Fatal("real timer never fired")
	}
	if c.Now().IsZero() {
		t.Fatal("real Now is zero")
	}
	Rearm(tm, time.Millisecond)
	select {
	case <-tm.C():
	case <-time.After(5 * time.Second):
		t.Fatal("rearmed real timer never fired")
	}
}
