// Writer: append-with-sync checkpointing over a parallel compression
// pipeline. Records are framed into an in-memory segment; Flush seals
// the segment and hands it to a worker pool, which deflates sealed
// segments concurrently while the caller keeps appending. Segments are
// written to the destination strictly in seal order — gzip members
// concatenate legally, so the bytes are identical to a sequential
// writer at the same level whatever the worker count. Checkpoint is the
// durability barrier: it waits for every sealed segment to land, writes
// the index trailer (on destinations that can rewind over it next
// time), and syncs — a crash loses at most the records not yet
// checkpointed, and the on-disk prefix stays decodable.

package recio

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// syncer is the subset of *os.File the writer uses to make a
// checkpoint durable; non-file destinations (buffers in tests) simply
// skip the sync.
type syncer interface{ Sync() error }

// rewinder is the subset of *os.File the writer needs to retract a
// trailer before appending more segments. Destinations without it
// (buffers) get their trailer once, at Close.
type rewinder interface {
	io.Seeker
	Truncate(int64) error
}

// segJob is one sealed segment travelling through the compression
// pool.
type segJob struct {
	done      chan struct{}
	recs      int
	firstCell int
	raw       []byte // sealed segment bytes; returned to w.spare after the write
	comp      []byte // compressed segment bytes (set by the worker)
	crc       uint32 // CRC-32C of comp
	err       error
}

// Writer appends checksummed record frames to a recio stream with
// explicit checkpoints. Not safe for concurrent use — the parallelism
// lives behind Flush, not in the caller's API.
type Writer struct {
	dst     io.Writer
	opts    Options
	fields  []Field // non-nil ⇒ columnar layout
	trailer bool    // v2 streams index themselves; resumed v1 files stay v1

	raw   []byte     // rows: framed records of the open segment
	spare [][]byte   // segment buffers back from the pool, ready to reuse
	cols  [][]uint64 // columns: per-field values of the open segment

	pending  int // records in the open segment
	nextCell int // absolute cell index of the next record

	sem    chan struct{} // compression slots
	sealed []*segJob     // segments flushed but not yet written

	segs      []SegmentInfo // segments written to dst, for the trailer
	off       int64         // end-of-body byte offset in dst
	trailerAt bool          // dst currently ends with a trailer
	dirty     bool          // body bytes written since the last sync
	err       error
}

// NewWriter starts a fresh recio stream on dst: it writes the magic and
// the header frame immediately (and syncs them, when dst can), so even
// a run that dies before its first checkpoint leaves a self-describing
// file behind. The header's Format and Level are stamped from the
// writer; a columnar header (Layout == LayoutColumns) must carry the
// field map its rows will arrive in.
func NewWriter(dst io.Writer, hdr Header, opts Options) (*Writer, error) {
	opts, err := opts.normalize()
	if err != nil {
		return nil, err
	}
	// A fresh stream's first record is always the shard's first cell.
	opts.CellBase = hdr.CellLo
	hdr.Format = formatVersion
	hdr.Level = opts.Level
	var fields []Field
	if hdr.Layout == LayoutColumns {
		if fields, err = ParseFields(hdr.Fields); err != nil {
			return nil, err
		}
	} else if hdr.Layout != "" {
		return nil, fmt.Errorf("%w: unknown layout %q", ErrLayout, hdr.Layout)
	}
	hj, err := json.Marshal(hdr)
	if err != nil {
		return nil, fmt.Errorf("recio: encode header: %w", err)
	}
	if len(hj) > MaxPayload {
		return nil, fmt.Errorf("recio: header too large: %w", ErrTooLarge)
	}
	head := appendFrame(append([]byte{}, magic...), hj)
	if _, err := dst.Write(head); err != nil {
		return nil, fmt.Errorf("recio: write header: %w", err)
	}
	w := newBodyWriter(dst, opts, fields, int64(len(head)), nil, true)
	if err := w.sync(); err != nil {
		return nil, err
	}
	return w, nil
}

// ResumeWriter continues an existing stream whose clean prefix the
// caller has already validated (via RecoverStats) and positioned dst
// at — typically an *os.File truncated to the recovered clean size,
// which excludes any trailer (the writer regrows it). No header is
// written; appended records extend the recovered ones, and rec's
// segment list seeds the trailer so the index keeps covering the whole
// body. A version-1 file stays version 1: no trailer is ever appended
// to it, preserving what its magic byte promises.
func ResumeWriter(dst io.Writer, opts Options, rec *Recovery) (*Writer, error) {
	opts, err := opts.normalize()
	if err != nil {
		return nil, err
	}
	var fields []Field
	if rec.Header.Layout == LayoutColumns {
		if fields, err = ParseFields(rec.Header.Fields); err != nil {
			return nil, err
		}
	}
	opts.CellBase = rec.Header.CellLo + rec.Records
	return newBodyWriter(dst, opts, fields, rec.CleanSize, rec.Segments, rec.Header.Format >= formatVersion), nil
}

func newBodyWriter(dst io.Writer, opts Options, fields []Field, off int64, segs []SegmentInfo, trailer bool) *Writer {
	w := &Writer{
		dst:      dst,
		opts:     opts,
		fields:   fields,
		trailer:  trailer,
		nextCell: opts.CellBase,
		sem:      make(chan struct{}, opts.Workers),
		segs:     segs,
		off:      off,
	}
	if fields != nil {
		w.cols = make([][]uint64, len(fields))
	}
	return w
}

// Append frames one record payload into the open segment (row layout
// only). The payload is not durable until the next Checkpoint (or
// Close).
func (w *Writer) Append(payload []byte) error {
	if w.err != nil {
		return w.err
	}
	if w.fields != nil {
		return w.fail(fmt.Errorf("%w: Append on a columnar writer (use AppendRow)", ErrLayout))
	}
	if len(payload) > MaxPayload {
		return w.fail(fmt.Errorf("recio: record of %d bytes: %w", len(payload), ErrTooLarge))
	}
	w.raw = appendFrame(w.raw, payload)
	w.pending++
	w.nextCell++
	return nil
}

// AppendRow adds one record's per-field values to the open columnar
// segment; vals must follow the header's field order.
func (w *Writer) AppendRow(vals []uint64) error {
	if w.err != nil {
		return w.err
	}
	if w.fields == nil {
		return w.fail(fmt.Errorf("%w: AppendRow on a row writer (use Append)", ErrLayout))
	}
	if len(vals) != len(w.fields) {
		return w.fail(fmt.Errorf("recio: row of %d values for %d fields", len(vals), len(w.fields)))
	}
	for i, v := range vals {
		w.cols[i] = append(w.cols[i], v)
	}
	w.pending++
	w.nextCell++
	return nil
}

// Pending reports how many records sit in the open, not-yet-durable
// segment.
func (w *Writer) Pending() int { return w.pending }

// maxBacklog bounds sealed-but-unwritten segments so a fast producer
// cannot hold the whole file in memory; past it, Flush drains the
// oldest segment synchronously.
const maxBacklog = 4

// Flush seals the open segment and queues it for compression. It
// returns without waiting: the segment becomes durable at the next
// Checkpoint (or Close). A Flush with nothing pending is a no-op.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	if w.pending == 0 {
		return nil
	}
	job := &segJob{done: make(chan struct{}), recs: w.pending, firstCell: w.nextCell - w.pending}
	level := w.opts.Level
	if w.fields == nil {
		// Hand the open buffer to the job rather than copying it; the
		// writer continues into a recycled one (drainOne returns each
		// job's buffer to w.spare once its segment is on disk).
		job.raw = w.raw
		w.raw = nil
		if n := len(w.spare); n > 0 {
			w.raw = w.spare[n-1]
			w.spare = w.spare[:n-1]
		}
		go func() {
			w.sem <- struct{}{}
			defer func() { <-w.sem; close(job.done) }()
			job.comp, job.err = deflate(job.raw, level)
			job.crc = crc32.Checksum(job.comp, castagnoli)
		}()
	} else {
		cols := w.cols
		w.cols = make([][]uint64, len(w.fields))
		fields := w.fields
		recs := w.pending
		go func() {
			w.sem <- struct{}{}
			defer func() { <-w.sem; close(job.done) }()
			job.comp, job.err = deflateColumns(fields, cols, recs, level)
			job.crc = crc32.Checksum(job.comp, castagnoli)
		}()
	}
	w.pending = 0
	w.sealed = append(w.sealed, job)
	for len(w.sealed) > maxBacklog*w.opts.Workers {
		if err := w.drainOne(); err != nil {
			return err
		}
	}
	return nil
}

// zwPools caches gzip writers per compression level: a level-1
// deflater alone carries a half-megabyte match table, and segment-cadence
// callers would otherwise allocate (and zero) one per few thousand
// records. Indexed by level; normalize guarantees 1..9.
var zwPools [gzip.BestCompression + 1]sync.Pool

// deflate compresses one sealed row segment into a single gzip member.
func deflate(raw []byte, level int) ([]byte, error) {
	var buf bytes.Buffer
	buf.Grow(len(raw)/3 + 64)
	zw, _ := zwPools[level].Get().(*gzip.Writer)
	if zw == nil {
		// The level was validated in normalize, so NewWriterLevel cannot
		// fail.
		zw, _ = gzip.NewWriterLevel(&buf, level)
	} else {
		zw.Reset(&buf)
	}
	if _, err := zw.Write(raw); err != nil {
		return nil, fmt.Errorf("recio: compress segment: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("recio: close segment: %w", err)
	}
	zwPools[level].Put(zw)
	return buf.Bytes(), nil
}

// deflateColumns builds one columnar segment: the record count, then
// each field's encoded column as its own gzip member behind a length
// prefix, so readers can skip fields they do not fold.
func deflateColumns(fields []Field, cols [][]uint64, recs int, level int) ([]byte, error) {
	seg := binary.AppendUvarint(nil, uint64(recs))
	for i, f := range fields {
		member, err := deflate(appendColumn(nil, f.Kind, cols[i]), level)
		if err != nil {
			return nil, err
		}
		seg = binary.AppendUvarint(seg, uint64(len(member)))
		seg = append(seg, member...)
	}
	return seg, nil
}

// drainOne waits for the oldest sealed segment and writes it.
func (w *Writer) drainOne() error {
	job := w.sealed[0]
	w.sealed = w.sealed[1:]
	<-job.done
	if job.err != nil {
		return w.fail(job.err)
	}
	if w.trailerAt {
		// Retract the trailer: the body grows over it and the index is
		// rewritten at the next checkpoint.
		r, ok := w.dst.(rewinder)
		if !ok {
			return w.fail(fmt.Errorf("recio: destination cannot rewind over its trailer"))
		}
		if _, err := r.Seek(w.off, io.SeekStart); err != nil {
			return w.fail(fmt.Errorf("recio: rewind to body end: %w", err))
		}
		if err := r.Truncate(w.off); err != nil {
			return w.fail(fmt.Errorf("recio: truncate trailer: %w", err))
		}
		w.trailerAt = false
	}
	var lenbuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenbuf[:], uint64(len(job.comp)))
	if _, err := w.dst.Write(lenbuf[:n]); err != nil {
		return w.fail(fmt.Errorf("recio: write segment length: %w", err))
	}
	if _, err := w.dst.Write(job.comp); err != nil {
		return w.fail(fmt.Errorf("recio: write segment: %w", err))
	}
	w.segs = append(w.segs, SegmentInfo{
		Offset:    w.off,
		CLen:      int64(len(job.comp)),
		Records:   job.recs,
		FirstCell: job.firstCell,
		LastCell:  job.firstCell + job.recs - 1,
		CRC:       job.crc,
	})
	w.off += int64(n) + int64(len(job.comp))
	w.dirty = true
	if job.raw != nil {
		w.spare = append(w.spare, job.raw[:0])
	}
	return nil
}

// barrier drains every sealed segment onto dst, in seal order.
func (w *Writer) barrier() error {
	for len(w.sealed) > 0 {
		if err := w.drainOne(); err != nil {
			return err
		}
	}
	return nil
}

// Checkpoint makes every appended record durable: it seals the open
// segment, waits for the pool to finish compressing, writes the
// segments in order, refreshes the index trailer (when the destination
// can rewind over it later — plain writers get theirs at Close), and
// syncs. A checkpoint with nothing new is a no-op.
func (w *Writer) Checkpoint() error {
	if err := w.Flush(); err != nil {
		return err
	}
	if err := w.barrier(); err != nil {
		return err
	}
	if !w.dirty {
		return nil
	}
	if w.trailer {
		if _, ok := w.dst.(rewinder); ok {
			if err := w.writeTrailer(); err != nil {
				return err
			}
		}
	}
	if err := w.sync(); err != nil {
		return err
	}
	w.dirty = false
	return nil
}

// Close checkpoints whatever is pending and, on destinations that never
// got one, writes the final trailer. It does not close the underlying
// destination — the caller owns the file handle.
func (w *Writer) Close() error {
	if err := w.Checkpoint(); err != nil {
		return err
	}
	if w.trailer && !w.trailerAt {
		if err := w.writeTrailer(); err != nil {
			return err
		}
		if err := w.sync(); err != nil {
			return err
		}
	}
	return nil
}

// writeTrailer appends sentinel + index + footer for everything written
// so far. w.off keeps pointing at the body end — the trailer is not
// body and the next segment overwrites it.
func (w *Writer) writeTrailer() error {
	if w.err != nil {
		return w.err
	}
	if w.trailerAt {
		return nil
	}
	if _, err := w.dst.Write(appendTrailer(nil, w.segs, w.off)); err != nil {
		return w.fail(fmt.Errorf("recio: write trailer: %w", err))
	}
	w.trailerAt = true
	return nil
}

func (w *Writer) sync() error {
	if w.opts.NoSync {
		return nil
	}
	if s, ok := w.dst.(syncer); ok {
		if err := s.Sync(); err != nil {
			return w.fail(fmt.Errorf("recio: sync: %w", err))
		}
	}
	return nil
}

func (w *Writer) fail(err error) error {
	if w.err == nil {
		w.err = err
	}
	return w.err
}

// Create opens (creating or truncating) a recio file at path and
// writes its header. The caller must Close the writer and then the
// file.
func Create(path string, hdr Header, opts Options) (*Writer, *os.File, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	w, err := NewWriter(f, hdr, opts)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return w, f, nil
}
