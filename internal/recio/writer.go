// Writer: append-with-sync checkpointing. Records are framed into an
// in-memory gzip member; Checkpoint closes the member and writes it as
// one length-prefixed segment followed by Sync (when the destination
// supports it). A crash therefore loses at most the records appended
// since the last checkpoint — the on-disk prefix stays decodable.

package recio

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// syncer is the subset of *os.File the writer uses to make a
// checkpoint durable; non-file destinations (buffers in tests) simply
// skip the sync.
type syncer interface{ Sync() error }

// Writer appends checksummed record frames to a recio stream with
// explicit checkpoints. Not safe for concurrent use.
type Writer struct {
	dst     io.Writer
	seg     bytes.Buffer
	gz      *gzip.Writer
	scratch []byte
	pending int // frames in the open segment
	err     error
}

// NewWriter starts a fresh recio stream on dst: it writes the magic and
// the header frame immediately (and syncs them, when dst can), so even
// a run that dies before its first checkpoint leaves a self-describing
// file behind.
func NewWriter(dst io.Writer, hdr Header) (*Writer, error) {
	hdr.Format = formatVersion
	hj, err := json.Marshal(hdr)
	if err != nil {
		return nil, fmt.Errorf("recio: encode header: %w", err)
	}
	if len(hj) > MaxPayload {
		return nil, fmt.Errorf("recio: header too large: %w", ErrTooLarge)
	}
	if _, err := dst.Write(appendFrame(append([]byte{}, magic...), hj)); err != nil {
		return nil, fmt.Errorf("recio: write header: %w", err)
	}
	w := newBodyWriter(dst)
	if err := w.sync(); err != nil {
		return nil, err
	}
	return w, nil
}

// ResumeWriter continues an existing stream whose clean prefix the
// caller has already validated (via Recover) and positioned dst at —
// typically an *os.File truncated to the recovered clean size. No
// header is written; appended records extend the recovered ones.
func ResumeWriter(dst io.Writer) *Writer {
	return newBodyWriter(dst)
}

func newBodyWriter(dst io.Writer) *Writer {
	w := &Writer{dst: dst}
	// Shard files are written once and read many times (every merge);
	// spend the extra encode time on the best ratio. The level is a
	// valid constant, so NewWriterLevel cannot fail.
	w.gz, _ = gzip.NewWriterLevel(&w.seg, gzip.BestCompression)
	return w
}

// Append frames one record payload into the open segment. The payload
// is not durable until the next Checkpoint (or Close).
func (w *Writer) Append(payload []byte) error {
	if w.err != nil {
		return w.err
	}
	if len(payload) > MaxPayload {
		return w.fail(fmt.Errorf("recio: record of %d bytes: %w", len(payload), ErrTooLarge))
	}
	w.scratch = appendFrame(w.scratch[:0], payload)
	if _, err := w.gz.Write(w.scratch); err != nil {
		return w.fail(fmt.Errorf("recio: compress record: %w", err))
	}
	w.pending++
	return nil
}

// Pending reports how many records sit in the open, not-yet-durable
// segment.
func (w *Writer) Pending() int { return w.pending }

// Checkpoint makes every appended record durable: it closes the open
// gzip member, writes it as one length-prefixed segment, syncs, and
// starts a fresh member. A checkpoint with nothing pending is a no-op.
func (w *Writer) Checkpoint() error {
	if w.err != nil {
		return w.err
	}
	if w.pending == 0 {
		return nil
	}
	if err := w.gz.Close(); err != nil {
		return w.fail(fmt.Errorf("recio: close segment: %w", err))
	}
	var lenbuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenbuf[:], uint64(w.seg.Len()))
	if _, err := w.dst.Write(lenbuf[:n]); err != nil {
		return w.fail(fmt.Errorf("recio: write segment length: %w", err))
	}
	if _, err := w.dst.Write(w.seg.Bytes()); err != nil {
		return w.fail(fmt.Errorf("recio: write segment: %w", err))
	}
	if err := w.sync(); err != nil {
		return err
	}
	w.seg.Reset()
	w.gz.Reset(&w.seg)
	w.pending = 0
	return nil
}

// Close checkpoints whatever is pending. It does not close the
// underlying destination — the caller owns the file handle.
func (w *Writer) Close() error { return w.Checkpoint() }

func (w *Writer) sync() error {
	if s, ok := w.dst.(syncer); ok {
		if err := s.Sync(); err != nil {
			return w.fail(fmt.Errorf("recio: sync: %w", err))
		}
	}
	return nil
}

func (w *Writer) fail(err error) error {
	if w.err == nil {
		w.err = err
	}
	return w.err
}

// Create opens (creating or truncating) a recio file at path and
// writes its header. The caller must Close the writer and then the
// file.
func Create(path string, hdr Header) (*Writer, *os.File, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	w, err := NewWriter(f, hdr)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return w, f, nil
}
