// The v2 index trailer: after the last body segment, a file may end
// with
//
//	sentinel  one 0x00 byte (uvarint 0 — no real segment is empty, a
//	          gzip member alone is ≥ 18 bytes, so the zero length
//	          unambiguously marks "body ends here")
//	index     one frame (uvarint len ++ payload ++ CRC-32C) holding a
//	          varint-packed entry per segment
//	footer    8 bytes LE: byte offset of the sentinel
//	          8 bytes: footer magic "recioIDX"
//
// The footer makes the trailer addressable from EOF in O(1); the frame
// CRC plus a battery of consistency checks (offsets contiguous from the
// header end to the sentinel, cell ranges monotone) make a damaged
// trailer detectable, and every reader treats "no usable trailer" as
// "scan the body the v1 way" — the trailer is an index, never the
// truth.
//
// Each entry records the segment's byte offset (of its uvarint length
// prefix), compressed length, record count, first/last absolute cell
// index, and the CRC-32C of the clen compressed bytes — enough to count
// and integrity-check a clean prefix without inflating it, and to seek
// straight to the segments covering a cell range.

package recio

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
)

// footerMagic terminates every v2 file that carries a trailer.
var footerMagic = []byte("recioIDX")

// footerSize is the fixed byte length of the footer (offset + magic).
const footerSize = 8 + 8

// SegmentInfo is one body segment's index entry.
type SegmentInfo struct {
	// Offset is the byte offset of the segment's uvarint length prefix.
	Offset int64
	// CLen is the compressed byte length the prefix declares.
	CLen int64
	// Records is the number of record rows the segment holds.
	Records int
	// FirstCell and LastCell are the absolute cell indices of the
	// segment's first and last record (inclusive).
	FirstCell int
	LastCell  int
	// CRC is the CRC-32C of the CLen compressed bytes.
	CRC uint32
}

// end returns the byte offset just past the segment.
func (s SegmentInfo) end() int64 {
	return s.Offset + int64(uvarintLen(uint64(s.CLen))) + s.CLen
}

// uvarintLen is the encoded size of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// appendTrailer appends sentinel + index frame + footer for segs to
// dst, where bodyEnd is the sentinel's byte offset.
func appendTrailer(dst []byte, segs []SegmentInfo, bodyEnd int64) []byte {
	payload := make([]byte, 0, 16+len(segs)*20)
	payload = binary.AppendUvarint(payload, uint64(len(segs)))
	var prevOff int64
	var prevFirst int
	for _, s := range segs {
		payload = binary.AppendUvarint(payload, uint64(s.Offset-prevOff))
		payload = binary.AppendUvarint(payload, uint64(s.CLen))
		payload = binary.AppendUvarint(payload, uint64(s.Records))
		payload = binary.AppendUvarint(payload, uint64(s.FirstCell-prevFirst))
		payload = binary.AppendUvarint(payload, uint64(s.LastCell-s.FirstCell))
		payload = binary.LittleEndian.AppendUint32(payload, s.CRC)
		prevOff, prevFirst = s.Offset, s.FirstCell
	}
	dst = append(dst, 0) // sentinel: uvarint(0)
	dst = appendFrame(dst, payload)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(bodyEnd))
	return append(dst, footerMagic...)
}

// parseTrailerPayload decodes the entry list; ok is false on any
// malformed varint or an overlong payload.
func parseTrailerPayload(payload []byte) (segs []SegmentInfo, ok bool) {
	pos := 0
	next := func() (uint64, bool) {
		v, w := binary.Uvarint(payload[pos:])
		if w <= 0 {
			return 0, false
		}
		pos += w
		return v, true
	}
	n, ok2 := next()
	if !ok2 || n > uint64(len(payload)) { // each entry is ≥ 9 bytes
		return nil, false
	}
	segs = make([]SegmentInfo, 0, n)
	var prevOff int64
	var prevFirst int
	for i := uint64(0); i < n; i++ {
		offD, ok2 := next()
		if !ok2 {
			return nil, false
		}
		clen, ok2 := next()
		if !ok2 {
			return nil, false
		}
		recs, ok2 := next()
		if !ok2 {
			return nil, false
		}
		firstD, ok2 := next()
		if !ok2 {
			return nil, false
		}
		span, ok2 := next()
		if !ok2 {
			return nil, false
		}
		if pos+crc32.Size > len(payload) {
			return nil, false
		}
		crc := binary.LittleEndian.Uint32(payload[pos:])
		pos += crc32.Size
		s := SegmentInfo{
			Offset:    prevOff + int64(offD),
			CLen:      int64(clen),
			Records:   int(recs),
			FirstCell: prevFirst + int(firstD),
			CRC:       crc,
		}
		s.LastCell = s.FirstCell + int(span)
		prevOff, prevFirst = s.Offset, s.FirstCell
		segs = append(segs, s)
	}
	return segs, pos == len(payload)
}

// findIndex locates and validates the trailer of a v2 file whose
// header frame ends at headerEnd. It returns nil — never an error —
// when the file carries no usable trailer: absent footer, frame damage,
// or any internal inconsistency all degrade the caller to the scan
// path.
func findIndex(data []byte, headerEnd int64) []SegmentInfo {
	if int64(len(data)) < headerEnd+1+footerSize {
		return nil
	}
	if !bytes.Equal(data[len(data)-8:], footerMagic) {
		return nil
	}
	bodyEnd := int64(binary.LittleEndian.Uint64(data[len(data)-footerSize:]))
	if bodyEnd < headerEnd || bodyEnd >= int64(len(data)-footerSize) || data[bodyEnd] != 0 {
		return nil
	}
	payload, next, err := parseFrame(data, int(bodyEnd)+1)
	if err != nil || int64(next) != int64(len(data)-footerSize) {
		return nil
	}
	segs, ok := parseTrailerPayload(payload)
	if !ok {
		return nil
	}
	// The entries must tile the body exactly: contiguous from the end
	// of the header to the sentinel, with monotone cell ranges.
	want := headerEnd
	cell := -1
	for _, s := range segs {
		if s.Offset != want || s.CLen <= 0 || s.CLen > maxSegment || s.Records <= 0 {
			return nil
		}
		if s.FirstCell <= cell || s.LastCell != s.FirstCell+s.Records-1 {
			return nil
		}
		cell = s.LastCell
		want = s.end()
		if want > bodyEnd {
			return nil
		}
	}
	if want != bodyEnd {
		return nil
	}
	return segs
}

// verifySegment reports whether the segment's compressed bytes match
// the CRC its index entry recorded — the integrity check of the seek
// path, run without inflating anything.
func verifySegment(data []byte, s SegmentInfo) bool {
	start := s.Offset + int64(uvarintLen(uint64(s.CLen)))
	end := start + s.CLen
	if start < 0 || end > int64(len(data)) {
		return false
	}
	return crc32.Checksum(data[start:end], castagnoli) == s.CRC
}
