// Package recio is the compressed binary record store behind `-format
// recio` shard files: a length-prefixed frame codec with per-record
// CRC-32C integrity, a gzip-compressed stream body, and a self-describing
// header carrying the workload's identity (experiment tag, matrix
// dimensions, shard selector, matrix digest) plus run provenance (tool,
// seed, workers).
//
// On-disk layout (DESIGN.md §9):
//
//	magic   "recio" + one format-version byte
//	header  frame: uvarint(len) ++ len bytes of JSON ++ CRC-32C(payload)
//	body    zero or more segments, each
//	        uvarint(clen) ++ clen bytes of one gzip member
//
// Each gzip member inflates to a run of record frames with the same
// shape as the header frame (uvarint length, payload, CRC-32C). A
// segment is the checkpoint unit: the Writer buffers frames into an
// in-memory gzip member and Checkpoint flushes it as one write followed
// by an fsync, so a crash can only ever lose the segment being built —
// every byte before the last checkpoint is a valid prefix of the file.
// Recover exploits exactly that: it reads segments until the first
// damaged one and reports the byte offset where the clean prefix ends,
// which is where a resumed run truncates and appends.
//
// The package is pure I/O: payloads are opaque bytes, and the sweep
// layer owns what a record means (internal/sweep codecs).
package recio

import (
	"errors"
	"fmt"
)

// magic identifies a recio file; the trailing byte is the format
// version and changes whenever the frame layout does.
var magic = []byte{'r', 'e', 'c', 'i', 'o', formatVersion}

// formatVersion is the current frame-layout version.
const formatVersion = 1

// MaxPayload bounds a single frame payload (header or record). A
// decoder never allocates more than this for one frame, no matter what
// a corrupt length prefix claims.
const MaxPayload = 1 << 26 // 64 MiB

// maxSegment bounds one compressed segment; segments are sized by the
// writer's checkpoint cadence and stay far below this.
const maxSegment = 1 << 30

// Decode and Recover errors. Decode wraps them with the byte offset of
// the damage.
var (
	ErrMagic     = errors.New("recio: not a recio file (bad magic)")
	ErrVersion   = errors.New("recio: unsupported format version")
	ErrCRC       = errors.New("recio: frame CRC-32C mismatch")
	ErrTooLarge  = errors.New("recio: frame length exceeds MaxPayload")
	ErrTruncated = errors.New("recio: truncated file")
)

// Header is the self-describing first frame of every recio file. The
// identity fields (Experiment through MatrixDigest) pin the workload
// the records were cut from — resume and merge refuse files whose
// identity disagrees with the workload rebuilt from the current flags.
// Tool, Seed and Workers are provenance only: informational, never
// validated (a shard may legitimately be resumed with a different
// worker count).
type Header struct {
	Format     int    `json:"format"`
	Experiment string `json:"experiment"`
	Cells      int    `json:"cells"`
	Groups     int    `json:"groups"`
	Shard      int    `json:"shard"`
	Shards     int    `json:"shards"`
	CellLo     int    `json:"cell_lo"`
	CellHi     int    `json:"cell_hi"`
	// MatrixDigest is the SHA-256 identity of the exact cell workload
	// (see sweep.MatrixDigest): same world, seeds and defaults ⇒ same
	// digest on every machine.
	MatrixDigest string `json:"matrix_digest"`
	Tool         string `json:"tool,omitempty"`
	Seed         int64  `json:"seed,omitempty"`
	Workers      int    `json:"workers,omitempty"`
}

// SameWorkload reports whether two headers describe the same shard of
// the same workload; provenance fields are ignored.
func (h Header) SameWorkload(o Header) bool {
	return h.Experiment == o.Experiment &&
		h.Cells == o.Cells && h.Groups == o.Groups &&
		h.Shard == o.Shard && h.Shards == o.Shards &&
		h.CellLo == o.CellLo && h.CellHi == o.CellHi &&
		h.MatrixDigest == o.MatrixDigest
}

// DescribeMismatch names the first identity field where h and o
// disagree, for resume/merge diagnostics.
func (h Header) DescribeMismatch(o Header) string {
	switch {
	case h.Experiment != o.Experiment:
		return fmt.Sprintf("experiment %q != %q", h.Experiment, o.Experiment)
	case h.Cells != o.Cells || h.Groups != o.Groups:
		return fmt.Sprintf("matrix dimensions %d cells/%d groups != %d cells/%d groups",
			h.Cells, h.Groups, o.Cells, o.Groups)
	case h.Shard != o.Shard || h.Shards != o.Shards:
		return fmt.Sprintf("shard selector %d/%d != %d/%d", h.Shard, h.Shards, o.Shard, o.Shards)
	case h.CellLo != o.CellLo || h.CellHi != o.CellHi:
		return fmt.Sprintf("cell range [%d,%d) != [%d,%d)", h.CellLo, h.CellHi, o.CellLo, o.CellHi)
	case h.MatrixDigest != o.MatrixDigest:
		return fmt.Sprintf("matrix digest %.12s… != %.12s… (different world/seed/defaults)",
			h.MatrixDigest, o.MatrixDigest)
	}
	return "headers match"
}
