// Package recio is the compressed binary record store behind `-format
// recio` shard files: a length-prefixed frame codec with per-record
// CRC-32C integrity, a gzip-compressed stream body, a self-describing
// header carrying the workload's identity (experiment tag, matrix
// dimensions, shard selector, matrix digest) plus run provenance (tool,
// seed, workers), and — since format version 2 — a seekable per-segment
// index trailer and an optional per-field columnar body layout.
//
// On-disk layout (DESIGN.md §9):
//
//	magic   "recio" + one format-version byte (1 or 2)
//	header  frame: uvarint(len) ++ len bytes of JSON ++ CRC-32C(payload)
//	body    zero or more segments, each
//	        uvarint(clen) ++ clen bytes (row layout: one gzip member;
//	        column layout: uvarint(records) ++ per-field gzip members)
//	trailer (v2, optional) uvarint(0) sentinel ++ index frame ++ footer
//
// Row-layout gzip members inflate to a run of record frames with the
// same shape as the header frame (uvarint length, payload, CRC-32C).
// A segment is the checkpoint unit: the Writer buffers frames into an
// in-memory segment, compresses sealed segments on a worker pool (gzip
// members concatenate legally, so parallel compression of consecutive
// segments written back in order is byte-equivalent to sequential
// compression at the same level), and Checkpoint writes everything
// sealed so far followed by an fsync — a crash can only ever lose the
// segments not yet checkpointed, and every byte before the last
// checkpoint is a valid prefix of the file.
//
// The v2 trailer makes that prefix seekable: one index entry per
// segment (byte offset, compressed length, record count, first/last
// cell index, CRC-32C of the compressed bytes) lets Recover count and
// verify records without inflating a single segment, and lets readers
// jump straight to the segments covering a cell range. The trailer is
// advisory: it is rewritten at every checkpoint (on seekable
// destinations) and on Close, and a missing or damaged trailer simply
// degrades every reader to the v1 scan path. Version-1 files, which
// never carry a trailer, keep reading through that same scan path.
//
// The package is pure I/O: payloads are opaque bytes, and the sweep
// layer owns what a record means (internal/sweep codecs).
package recio

import (
	"compress/gzip"
	"errors"
	"fmt"
	"runtime"
)

// magic identifies a recio file; the trailing byte is the format
// version and changes whenever the frame layout does.
var magic = []byte{'r', 'e', 'c', 'i', 'o', formatVersion}

// Format versions. Version 1 files are plain row-layout bodies with no
// trailer; version 2 adds the index trailer, the recorded compression
// level, and the columnar body layout. The writer always produces
// version 2 (except when resuming a version-1 file, which stays
// version 1 so its declared format keeps telling the truth); the
// readers accept both.
const (
	formatV1      = 1
	formatVersion = 2
)

// MaxPayload bounds a single frame payload (header or record). A
// decoder never allocates more than this for one frame, no matter what
// a corrupt length prefix claims.
const MaxPayload = 1 << 26 // 64 MiB

// maxSegment bounds one compressed segment; segments are sized by the
// writer's checkpoint cadence and stay far below this.
const maxSegment = 1 << 30

// DefaultLevel is the gzip level used when Options.Level is zero.
// Shard files are transport between a shard run and its merge, not
// archives: BestSpeed keeps the encoder off the critical path (the
// committed BENCH_recio.json has the measurements) and `-level 9`
// remains available when bytes on the wire matter more than time.
const DefaultLevel = gzip.BestSpeed

// Decode and Recover errors. Decode wraps them with the byte offset of
// the damage.
var (
	ErrMagic     = errors.New("recio: not a recio file (bad magic)")
	ErrVersion   = errors.New("recio: unsupported format version")
	ErrCRC       = errors.New("recio: frame CRC-32C mismatch")
	ErrTooLarge  = errors.New("recio: frame length exceeds MaxPayload")
	ErrTruncated = errors.New("recio: truncated file")
	ErrLayout    = errors.New("recio: wrong body layout for this reader")
	ErrLevel     = errors.New("recio: compression level outside gzip's 1..9")
)

// LayoutColumns marks a columnar-body file in Header.Layout; the empty
// string (and any v1 header) means the row layout.
const LayoutColumns = "columns"

// Options configure a Writer. The zero value is ready to use.
type Options struct {
	// Level is the gzip compression level, gzip.BestSpeed (1) through
	// gzip.BestCompression (9); 0 means DefaultLevel. Recorded in the
	// header. Any level produces legal input for every reader —
	// segments even mix levels across a resume.
	Level int
	// Workers bounds how many sealed segments compress concurrently;
	// 0 means min(GOMAXPROCS, 8), 1 compresses on the calling
	// goroutine. Segments are written strictly in seal order whatever
	// the worker count, so the bytes are identical at any value.
	Workers int
	// CellBase is the absolute cell index of the first record appended
	// through this writer (the header's CellLo for a fresh shard, CellLo
	// plus the recovered record count for a resumed one); it anchors the
	// trailer's per-segment cell ranges.
	CellBase int
	// NoSync skips every fsync. For whole-shard writes the durability
	// contract is the caller's (the json codec never syncs either);
	// checkpointed incremental writers must leave this false — without
	// the sync, Checkpoint no longer bounds what a crash can lose.
	NoSync bool
}

// normalize validates the level and fills defaults.
func (o Options) normalize() (Options, error) {
	if o.Level == 0 {
		o.Level = DefaultLevel
	}
	if o.Level < gzip.BestSpeed || o.Level > gzip.BestCompression {
		return o, fmt.Errorf("%w: %d", ErrLevel, o.Level)
	}
	if o.Workers <= 0 {
		o.Workers = min(runtime.GOMAXPROCS(0), 8)
	}
	return o, nil
}

// Header is the self-describing first frame of every recio file. The
// identity fields (Experiment through MatrixDigest) pin the workload
// the records were cut from — resume and merge refuse files whose
// identity disagrees with the workload rebuilt from the current flags.
// Tool, Seed and Workers are provenance only: informational, never
// validated (a shard may legitimately be resumed with a different
// worker count). Level, Layout and Fields describe how the body is
// encoded: the gzip level the segments were (initially) written at,
// and — for columnar files — the ordered per-field column map.
type Header struct {
	Format     int    `json:"format"`
	Experiment string `json:"experiment"`
	Cells      int    `json:"cells"`
	Groups     int    `json:"groups"`
	Shard      int    `json:"shard"`
	Shards     int    `json:"shards"`
	CellLo     int    `json:"cell_lo"`
	CellHi     int    `json:"cell_hi"`
	// MatrixDigest is the SHA-256 identity of the exact cell workload
	// (see sweep.MatrixDigest): same world, seeds and defaults ⇒ same
	// digest on every machine.
	MatrixDigest string `json:"matrix_digest"`
	Tool         string `json:"tool,omitempty"`
	Seed         int64  `json:"seed,omitempty"`
	Workers      int    `json:"workers,omitempty"`
	// Level records the gzip level segments were written at (v2 files;
	// informational — a resumed run may append at a different level).
	Level int `json:"level,omitempty"`
	// Layout is "" for row bodies, LayoutColumns for columnar ones.
	Layout string `json:"layout,omitempty"`
	// Fields is the columnar field map as "name:kind" pairs joined by
	// commas (see FieldsSpec/ParseFields); empty for row bodies.
	Fields string `json:"fields,omitempty"`
}

// SameWorkload reports whether two headers describe the same shard of
// the same workload; provenance and encoding fields are ignored (a
// resume may legally rewrite the shard at a different level or layout).
func (h Header) SameWorkload(o Header) bool {
	return h.Experiment == o.Experiment &&
		h.Cells == o.Cells && h.Groups == o.Groups &&
		h.Shard == o.Shard && h.Shards == o.Shards &&
		h.CellLo == o.CellLo && h.CellHi == o.CellHi &&
		h.MatrixDigest == o.MatrixDigest
}

// DescribeMismatch names the first identity field where h and o
// disagree, for resume/merge diagnostics.
func (h Header) DescribeMismatch(o Header) string {
	switch {
	case h.Experiment != o.Experiment:
		return fmt.Sprintf("experiment %q != %q", h.Experiment, o.Experiment)
	case h.Cells != o.Cells || h.Groups != o.Groups:
		return fmt.Sprintf("matrix dimensions %d cells/%d groups != %d cells/%d groups",
			h.Cells, h.Groups, o.Cells, o.Groups)
	case h.Shard != o.Shard || h.Shards != o.Shards:
		return fmt.Sprintf("shard selector %d/%d != %d/%d", h.Shard, h.Shards, o.Shard, o.Shards)
	case h.CellLo != o.CellLo || h.CellHi != o.CellHi:
		return fmt.Sprintf("cell range [%d,%d) != [%d,%d)", h.CellLo, h.CellHi, o.CellLo, o.CellHi)
	case h.MatrixDigest != o.MatrixDigest:
		return fmt.Sprintf("matrix digest %.12s… != %.12s… (different world/seed/defaults)",
			h.MatrixDigest, o.MatrixDigest)
	}
	return "headers match"
}
