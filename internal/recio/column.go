// Per-field column encodings for the columnar body layout. A columnar
// segment holds the same records as a row segment, but transposed: one
// independently-deflated gzip member per field, each inflating to that
// field's values encoded by the field's kind. Readers that fold a
// single field inflate only that field's members and skip the rest by
// their length prefixes — the point of the layout (the PAM store's
// per-field shard files are the exemplar).
//
// Values travel as uint64: integers directly (delta+zigzag handles
// signed differences), float64s as their IEEE-754 bits so every value —
// NaNs included — round-trips exactly and the merged record stream
// stays byte-identical to a row-layout or JSON shard's.
//
// Columnar segment body (inside the usual uvarint(clen) outer frame):
//
//	uvarint(records)
//	per field, in header-field order:
//	    uvarint(member length) ++ one gzip member of the encoded column

package recio

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// FieldKind selects a column's value encoding.
type FieldKind uint8

const (
	// KindDelta encodes zigzag(v[i] − v[i−1]) as uvarints — compact for
	// monotone or slowly-moving integers (cell indices, counts).
	KindDelta FieldKind = iota + 1
	// KindRLE encodes (value, run length) uvarint pairs — compact for
	// long runs of repeated tags (policy or scenario enums).
	KindRLE
	// KindFloat encodes raw little-endian float64 bits, 8 bytes per
	// value; the surrounding gzip member squeezes what it can.
	KindFloat
)

// kindNames maps kinds to their Header.Fields spelling.
var kindNames = map[FieldKind]string{
	KindDelta: "delta",
	KindRLE:   "rle",
	KindFloat: "float",
}

// String returns the kind's Header.Fields spelling.
func (k FieldKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Field is one column of a columnar file: the record field's wire name
// (its JSON tag, by convention) and its encoding.
type Field struct {
	Name string
	Kind FieldKind
}

// FieldsSpec renders a field list as the compact "name:kind,…" string
// the header carries.
func FieldsSpec(fields []Field) string {
	var b strings.Builder
	for i, f := range fields {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(f.Name)
		b.WriteByte(':')
		b.WriteString(f.Kind.String())
	}
	return b.String()
}

// ParseFields inverts FieldsSpec.
func ParseFields(spec string) ([]Field, error) {
	if spec == "" {
		return nil, fmt.Errorf("recio: empty columnar field map")
	}
	parts := strings.Split(spec, ",")
	fields := make([]Field, 0, len(parts))
	for _, p := range parts {
		name, kind, ok := strings.Cut(p, ":")
		if !ok || name == "" {
			return nil, fmt.Errorf("recio: malformed field map entry %q", p)
		}
		var k FieldKind
		switch kind {
		case "delta":
			k = KindDelta
		case "rle":
			k = KindRLE
		case "float":
			k = KindFloat
		}
		if k == 0 {
			return nil, fmt.Errorf("recio: unknown column kind %q for field %q", kind, name)
		}
		fields = append(fields, Field{Name: name, Kind: k})
	}
	return fields, nil
}

// zigzag maps signed deltas onto uvarint-friendly magnitudes.
func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// appendColumn encodes vals per kind, appending to dst.
func appendColumn(dst []byte, kind FieldKind, vals []uint64) []byte {
	switch kind {
	case KindDelta:
		prev := int64(0)
		for _, v := range vals {
			dst = binary.AppendUvarint(dst, zigzag(int64(v)-prev))
			prev = int64(v)
		}
	case KindRLE:
		for i := 0; i < len(vals); {
			j := i
			for j < len(vals) && vals[j] == vals[i] {
				j++
			}
			dst = binary.AppendUvarint(dst, vals[i])
			dst = binary.AppendUvarint(dst, uint64(j-i))
			i = j
		}
	case KindFloat:
		for _, v := range vals {
			dst = binary.LittleEndian.AppendUint64(dst, v)
		}
	}
	return dst
}

// decodeColumn inverts appendColumn: data must hold exactly n values.
func decodeColumn(data []byte, kind FieldKind, n int) ([]uint64, error) {
	vals := make([]uint64, 0, n)
	switch kind {
	case KindDelta:
		prev := int64(0)
		for pos := 0; pos < len(data); {
			u, w := binary.Uvarint(data[pos:])
			if w <= 0 {
				return nil, fmt.Errorf("recio: malformed delta column at byte %d", pos)
			}
			pos += w
			prev += unzigzag(u)
			vals = append(vals, uint64(prev))
		}
	case KindRLE:
		for pos := 0; pos < len(data); {
			v, w := binary.Uvarint(data[pos:])
			if w <= 0 {
				return nil, fmt.Errorf("recio: malformed RLE column at byte %d", pos)
			}
			pos += w
			run, w := binary.Uvarint(data[pos:])
			if w <= 0 || run == 0 || run > uint64(n-len(vals)) {
				return nil, fmt.Errorf("recio: malformed RLE run at byte %d", pos)
			}
			pos += w
			for i := uint64(0); i < run; i++ {
				vals = append(vals, v)
			}
		}
	case KindFloat:
		if len(data) != 8*n {
			return nil, fmt.Errorf("recio: float column holds %d bytes for %d values", len(data), n)
		}
		for pos := 0; pos < len(data); pos += 8 {
			vals = append(vals, binary.LittleEndian.Uint64(data[pos:]))
		}
	default:
		return nil, fmt.Errorf("recio: unknown column kind %d", kind)
	}
	if len(vals) != n {
		return nil, fmt.Errorf("recio: column decoded %d values, segment declares %d", len(vals), n)
	}
	return vals, nil
}
