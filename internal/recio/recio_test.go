package recio

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func testHeader() Header {
	return Header{
		Experiment:   "fig2",
		Cells:        1400,
		Groups:       7,
		Shard:        1,
		Shards:       3,
		CellLo:       466,
		CellHi:       933,
		MatrixDigest: "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef",
		Tool:         "recio_test",
		Seed:         42,
		Workers:      8,
	}
}

// writeTestFile builds a stream of n records with a checkpoint every
// `every` records and returns the encoded bytes plus the payloads.
func writeTestFile(t *testing.T, n, every int) ([]byte, [][]byte) {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testHeader(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var payloads [][]byte
	for i := 0; i < n; i++ {
		p := fmt.Appendf(nil, `{"pollution":%d,"weight_frac":0.%06d}`, i*37%1000, i)
		payloads = append(payloads, p)
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
		if (i+1)%every == 0 {
			if err := w.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), payloads
}

func samePayloads(a, b [][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// TestRoundTrip: header and every record survive encode → strict
// decode, across several checkpoint cadences (including none mid-run).
func TestRoundTrip(t *testing.T) {
	for _, every := range []int{1, 7, 100, 1 << 30} {
		data, want := writeTestFile(t, 100, every)
		hdr, got, err := Decode(data)
		if err != nil {
			t.Fatalf("every=%d: %v", every, err)
		}
		if hdr.Format != formatVersion {
			t.Errorf("every=%d: header format %d", every, hdr.Format)
		}
		wantHdr := testHeader()
		wantHdr.Format = formatVersion
		wantHdr.Level = DefaultLevel
		if hdr != wantHdr {
			t.Errorf("every=%d: header %+v != %+v", every, hdr, wantHdr)
		}
		if !samePayloads(got, want) {
			t.Errorf("every=%d: %d payloads decoded, want %d (or contents differ)", every, len(got), len(want))
		}
	}
}

// TestEmptyStream: a header-only file (zero records) round-trips.
func TestEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testHeader(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	hdr, payloads, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(payloads) != 0 || hdr.Experiment != "fig2" {
		t.Fatalf("got %d payloads, header %+v", len(payloads), hdr)
	}
}

// TestRecoverEveryTruncation: for every possible truncation length the
// recovered records must be a checkpoint-aligned prefix, the clean size
// must never exceed the truncation, and re-recovering the clean prefix
// must be a fixed point.
func TestRecoverEveryTruncation(t *testing.T) {
	const n, every = 60, 7
	data, want := writeTestFile(t, n, every)
	headerEnd := -1
	for cut := 0; cut <= len(data); cut++ {
		hdr, got, clean, err := RecoverFileBytes(t, data[:cut])
		if err != nil {
			// Unreadable magic/header: only legal before the header ends.
			if headerEnd >= 0 && cut >= headerEnd {
				t.Fatalf("cut=%d: unexpected recover error after header: %v", cut, err)
			}
			continue
		}
		if headerEnd < 0 {
			headerEnd = cut
		}
		if hdr.Experiment != "fig2" {
			t.Fatalf("cut=%d: header %+v", cut, hdr)
		}
		if clean > int64(cut) {
			t.Fatalf("cut=%d: clean size %d beyond data", cut, clean)
		}
		if len(got)%every != 0 && len(got) != n {
			t.Fatalf("cut=%d: %d records recovered, not checkpoint-aligned (every=%d)", cut, len(got), every)
		}
		if !samePayloads(got, want[:len(got)]) {
			t.Fatalf("cut=%d: recovered records are not a prefix", cut)
		}
		// Idempotence: the clean prefix recovers to exactly itself.
		_, again, clean2, err := RecoverFileBytes(t, data[:clean])
		if err != nil || clean2 != clean || !samePayloads(again, got) {
			t.Fatalf("cut=%d: clean prefix not a fixed point (err=%v clean=%d→%d records %d→%d)",
				cut, err, clean, clean2, len(got), len(again))
		}
	}
	if headerEnd < 0 {
		t.Fatal("recover never succeeded")
	}
}

// RecoverFileBytes adapts Recover for table-style tests.
func RecoverFileBytes(t *testing.T, data []byte) (Header, [][]byte, int64, error) {
	t.Helper()
	return Recover(data)
}

// TestCorruption: flipping any single byte must never panic, and the
// strict decoder must either error or (only for bytes inside ignored
// gzip redundancy) still yield the exact records.
func TestCorruption(t *testing.T) {
	data, want := writeTestFile(t, 24, 8)
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x5a
		hdr, got, err := Decode(mut)
		if err != nil {
			continue
		}
		if i >= len(magic) && hdr.Experiment != "fig2" {
			t.Fatalf("byte %d: corrupt decode succeeded with header %+v", i, hdr)
		}
		if !samePayloads(got, want) {
			t.Fatalf("byte %d: corrupt decode succeeded with wrong records", i)
		}
	}
}

// TestStrictDecodeRejectsTruncation: Decode (unlike Recover) must
// refuse any file whose *body* has a damaged tail. (Truncation confined
// to the trailer region is tolerated — the trailer is advisory.)
func TestStrictDecodeRejectsTruncation(t *testing.T) {
	data, _ := writeTestFile(t, 20, 5)
	rec, err := RecoverStats(data)
	if err != nil || !rec.ViaIndex {
		t.Fatalf("baseline: err=%v viaIndex=%v", err, rec.ViaIndex)
	}
	if _, _, err := Decode(data[:rec.CleanSize-3]); err == nil {
		t.Fatal("strict decode accepted a body-truncated file")
	}
}

// TestOversizedLength: a length prefix claiming more than MaxPayload
// must error out (ErrTooLarge) without allocating the claimed size.
func TestOversizedLength(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(magic)
	// Header frame claiming 2^62 bytes.
	buf.Write([]byte{0xfe, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x3f})
	if _, _, err := Decode(buf.Bytes()); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("got %v, want ErrTooLarge", err)
	}
}

// TestBadMagic: foreign files are rejected up front.
func TestBadMagic(t *testing.T) {
	if _, _, err := Decode([]byte(`{"experiment":"fig2"}`)); !errors.Is(err, ErrMagic) {
		t.Fatalf("got %v, want ErrMagic", err)
	}
	bad := append([]byte{}, magic...)
	bad[len(bad)-1] = 99
	if _, _, err := Decode(append(bad, 0)); !errors.Is(err, ErrVersion) {
		t.Fatalf("got %v, want ErrVersion", err)
	}
}

// TestResumeWriter: recover a truncated file, truncate to the clean
// size, append through ResumeWriter — the final file must decode to the
// full record sequence, and carry a trailer covering all of it.
func TestResumeWriter(t *testing.T) {
	const n, every = 40, 6
	data, want := writeTestFile(t, n, every)

	path := filepath.Join(t.TempDir(), "shard.rec")
	cut := len(data) * 2 / 3
	if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err := RecoverStatsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(rec.CleanSize); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(rec.CleanSize, 0); err != nil {
		t.Fatal(err)
	}
	w, err := ResumeWriter(f, Options{}, rec)
	if err != nil {
		t.Fatal(err)
	}
	for i := rec.Records; i < n; i++ {
		if err := w.Append(want[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	hdr, got, err := DecodeFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Experiment != "fig2" || !samePayloads(got, want) {
		t.Fatalf("resumed file decodes to %d records (want %d)", len(got), n)
	}
	// The regrown trailer must index the whole body, including the
	// segments written before the crash.
	again, err := RecoverStatsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !again.ViaIndex || again.Records != n {
		t.Fatalf("resumed file: ViaIndex=%v records=%d, want index covering %d",
			again.ViaIndex, again.Records, n)
	}
}

// writeDiskFile writes n records with a checkpoint cadence to a real
// file (so the writer can rewind over its trailer) and returns the
// path plus the payloads.
func writeDiskFile(t *testing.T, n, every int, opts Options) (string, [][]byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "shard.rec")
	w, f, err := Create(path, testHeader(), opts)
	if err != nil {
		t.Fatal(err)
	}
	var payloads [][]byte
	for i := 0; i < n; i++ {
		p := fmt.Appendf(nil, `{"pollution":%d,"weight_frac":0.%06d}`, i*37%1000, i)
		payloads = append(payloads, p)
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
		if (i+1)%every == 0 {
			if err := w.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, payloads
}

// TestTrailerSeekRecovery: an intact v2 file resolves its record count
// through the index (ViaIndex), and the clean size it reports excludes
// the trailer — truncating there and rescanning finds the same records.
func TestTrailerSeekRecovery(t *testing.T) {
	const n, every = 60, 7
	path, _ := writeDiskFile(t, n, every, Options{})
	rec, err := RecoverStatsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.ViaIndex {
		t.Fatal("intact v2 file recovered via scan, want index")
	}
	if rec.Records != n {
		t.Fatalf("index counted %d records, want %d", rec.Records, n)
	}
	wantSegs := n/every + 1 // n%every != 0 ⇒ Close seals a short tail segment
	if len(rec.Segments) != wantSegs {
		t.Fatalf("index holds %d segments, want %d", len(rec.Segments), wantSegs)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rec.CleanSize >= int64(len(data)) {
		t.Fatalf("clean size %d does not exclude the %d-byte trailer region",
			rec.CleanSize, int64(len(data))-rec.CleanSize)
	}
	_, payloads, clean, err := Recover(data[:rec.CleanSize])
	if err != nil || clean != rec.CleanSize || len(payloads) != n {
		t.Fatalf("body prefix rescans to %d records / clean %d (err=%v), want %d / %d",
			len(payloads), clean, err, n, rec.CleanSize)
	}
}

// TestDamagedTrailerDegrades pins the back-compat contract of satellite
// concern #4: any damage confined to the trailer region must degrade
// every reader to the v1 scan path — full strict decode still succeeds,
// recovery still counts every record — and must never surface as an
// error.
func TestDamagedTrailerDegrades(t *testing.T) {
	const n, every = 30, 8
	path, want := writeDiskFile(t, n, every, Options{})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := RecoverStats(data)
	if err != nil || !rec.ViaIndex {
		t.Fatalf("baseline: err=%v viaIndex=%v", err, rec.ViaIndex)
	}
	bodyEnd := rec.CleanSize

	damage := map[string]func([]byte) []byte{
		"truncated footer": func(d []byte) []byte { return d[:len(d)-5] },
		"truncated mid-index": func(d []byte) []byte {
			return d[:bodyEnd+(int64(len(d))-bodyEnd)/2]
		},
		"corrupt index entry": func(d []byte) []byte {
			d[bodyEnd+3] ^= 0x5a
			return d
		},
		"footer offset past EOF": func(d []byte) []byte {
			copy(d[len(d)-footerSize:], []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
			return d
		},
		"footer offset into body": func(d []byte) []byte {
			copy(d[len(d)-footerSize:], []byte{1, 0, 0, 0, 0, 0, 0, 0})
			return d
		},
	}
	for name, mut := range damage {
		d := mut(append([]byte(nil), data...))
		hdr, got, err := Decode(d)
		if err != nil {
			t.Errorf("%s: strict decode errored (%v), want scan-path fallback", name, err)
			continue
		}
		if hdr.Experiment != "fig2" || !samePayloads(got, want) {
			t.Errorf("%s: decode lost records (%d of %d)", name, len(got), len(want))
		}
		r, err := RecoverStats(d)
		if err != nil {
			t.Errorf("%s: RecoverStats errored: %v", name, err)
			continue
		}
		if r.ViaIndex {
			t.Errorf("%s: damaged trailer still classified as usable index", name)
		}
		if r.Records != n {
			t.Errorf("%s: scan fallback counted %d records, want %d", name, r.Records, n)
		}
	}
}

// TestDamagedBodySegmentKeepsIndexPrefix: when an indexed segment's
// bytes no longer match their recorded CRC, seek-recovery keeps the
// provably-clean prefix before it instead of trusting the index.
func TestDamagedBodySegmentKeepsIndexPrefix(t *testing.T) {
	const n, every = 40, 10
	path, _ := writeDiskFile(t, n, every, Options{})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := RecoverStats(data)
	if err != nil || len(rec.Segments) < 2 {
		t.Fatalf("baseline: err=%v segments=%d", err, len(rec.Segments))
	}
	hurt := rec.Segments[1]
	data[hurt.Offset+2] ^= 0x5a
	r, err := RecoverStats(data)
	if err != nil {
		t.Fatal(err)
	}
	if !r.ViaIndex || r.Records != every || r.CleanSize != rec.Segments[0].end() {
		t.Fatalf("got viaIndex=%v records=%d clean=%d, want index prefix of %d records ending %d",
			r.ViaIndex, r.Records, r.CleanSize, every, rec.Segments[0].end())
	}
}

// TestParallelWriterDeterminism: the same records produce bit-identical
// files at every worker count and flush cadence — the written order is
// the seal order regardless of which worker finishes first.
func TestParallelWriterDeterminism(t *testing.T) {
	encode := func(workers, flushEvery int) []byte {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, testHeader(), Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			if err := w.Append(fmt.Appendf(nil, `{"pollution":%d,"weight_frac":0.%06d}`, i%13, i)); err != nil {
				t.Fatal(err)
			}
			if (i+1)%flushEvery == 0 {
				if err := w.Flush(); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	for _, flushEvery := range []int{3, 50} {
		want := encode(1, flushEvery)
		for _, workers := range []int{2, 8} {
			if got := encode(workers, flushEvery); !bytes.Equal(got, want) {
				t.Errorf("flushEvery=%d: %d workers produced different bytes than 1 worker",
					flushEvery, workers)
			}
		}
	}
}

// TestWriterLevelValidation: out-of-range gzip levels are rejected at
// writer construction.
func TestWriterLevelValidation(t *testing.T) {
	for _, level := range []int{-1, 10, 42} {
		var buf bytes.Buffer
		if _, err := NewWriter(&buf, testHeader(), Options{Level: level}); !errors.Is(err, ErrLevel) {
			t.Errorf("level %d: got %v, want ErrLevel", level, err)
		}
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testHeader(), Options{Level: 9})
	if err != nil {
		t.Fatalf("level 9 rejected: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	hdr, _, err := Decode(buf.Bytes())
	if err != nil || hdr.Level != 9 {
		t.Fatalf("header level %d (err=%v), want 9", hdr.Level, err)
	}
}

// TestReadCells: a cell-range read answers identically through the
// index and through the scan fallback, and matches the full decode.
func TestReadCells(t *testing.T) {
	const n, every = 60, 7
	path, want := writeDiskFile(t, n, every, Options{})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	noIdx := append([]byte(nil), data...)
	noIdx[len(noIdx)-1] ^= 0xff // break the footer magic: scan fallback
	lo := testHeader().CellLo
	for _, span := range [][2]int{{lo, lo + n}, {lo + 10, lo + 24}, {lo - 5, lo + 3}, {lo + n - 2, lo + n + 9}, {lo + n + 1, lo + n + 4}} {
		hdr, got, first, err := ReadCells(data, span[0], span[1])
		if err != nil {
			t.Fatalf("span %v: %v", span, err)
		}
		if hdr.Experiment != "fig2" {
			t.Fatalf("span %v: header %+v", span, hdr)
		}
		effLo, effHi := max(span[0], lo), min(span[1], lo+n)
		if effLo >= effHi {
			if len(got) != 0 {
				t.Fatalf("span %v: %d payloads for an empty range", span, len(got))
			}
		} else if first != effLo || !samePayloads(got, want[effLo-lo:effHi-lo]) {
			t.Fatalf("span %v: first=%d len=%d, want first=%d len=%d", span, first, len(got), effLo, effHi-effLo)
		}
		_, got2, first2, err := ReadCells(noIdx, span[0], span[1])
		if err != nil || first2 != first || !samePayloads(got2, got) {
			t.Fatalf("span %v: scan fallback disagrees with index (err=%v first=%d/%d len=%d/%d)",
				span, err, first2, first, len(got2), len(got))
		}
	}
}

// columnarHeader is testHeader with the columnar layout for two fields
// shaped like hijack.Record.
func columnarHeader() Header {
	h := testHeader()
	h.Layout = LayoutColumns
	h.Fields = FieldsSpec([]Field{
		{Name: "pollution", Kind: KindDelta},
		{Name: "weight_frac", Kind: KindFloat},
	})
	return h
}

// TestColumnarRoundTrip: per-field values survive encode → decode
// exactly (floats by their bit patterns), across checkpoint cadences,
// with and without the trailer index.
func TestColumnarRoundTrip(t *testing.T) {
	const n = 100
	var buf bytes.Buffer
	w, err := NewWriter(&buf, columnarHeader(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var wantPol, wantWeight []uint64
	for i := 0; i < n; i++ {
		pol := uint64(i * 7 % 13)
		weight := uint64(i) * 0x9e3779b97f4a7c15 // arbitrary bit patterns
		wantPol = append(wantPol, pol)
		wantWeight = append(wantWeight, weight)
		if err := w.AppendRow([]uint64{pol, weight}); err != nil {
			t.Fatal(err)
		}
		if (i+1)%33 == 0 {
			if err := w.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	noIdx := append([]byte(nil), data...)
	noIdx[len(noIdx)-3] ^= 0x5a // damage the footer: scan fallback
	for name, d := range map[string][]byte{"indexed": data, "scan": noIdx} {
		hdr, cols, err := DecodeColumns(d)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if hdr.Layout != LayoutColumns || len(cols) != 2 {
			t.Fatalf("%s: layout %q, %d columns", name, hdr.Layout, len(cols))
		}
		for i := range wantPol {
			if cols[0][i] != wantPol[i] || cols[1][i] != wantWeight[i] {
				t.Fatalf("%s: record %d: got (%d,%#x) want (%d,%#x)",
					name, i, cols[0][i], cols[1][i], wantPol[i], wantWeight[i])
			}
		}
	}
	// Single-column read inflates only that field and still sees all
	// values.
	weights, err := ReadColumn(data, "weight_frac")
	if err != nil || len(weights) != n {
		t.Fatalf("ReadColumn: %d values, err=%v", len(weights), err)
	}
	for i := range weights {
		if weights[i] != wantWeight[i] {
			t.Fatalf("ReadColumn value %d: %#x want %#x", i, weights[i], wantWeight[i])
		}
	}
	if _, err := ReadColumn(data, "nope"); err == nil {
		t.Fatal("ReadColumn accepted an unknown field")
	}
	// Layout mismatches are loud, both ways.
	if _, _, err := Decode(data); !errors.Is(err, ErrLayout) {
		t.Fatalf("row Decode of a columnar file: %v, want ErrLayout", err)
	}
	rowData, _ := writeTestFile(t, 5, 2)
	if _, _, err := DecodeColumns(rowData); !errors.Is(err, ErrLayout) {
		t.Fatalf("DecodeColumns of a row file: %v, want ErrLayout", err)
	}
}

// TestColumnarWriterAPI: the two append entry points refuse the wrong
// layout.
func TestColumnarWriterAPI(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, columnarHeader(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("{}")); !errors.Is(err, ErrLayout) {
		t.Fatalf("Append on columnar writer: %v, want ErrLayout", err)
	}
	var buf2 bytes.Buffer
	w2, err := NewWriter(&buf2, testHeader(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.AppendRow([]uint64{1, 2}); !errors.Is(err, ErrLayout) {
		t.Fatalf("AppendRow on row writer: %v, want ErrLayout", err)
	}
}

// TestColumnarResume: a crash-truncated columnar file resumes like a
// row file — recover stats, truncate, append the remaining rows.
func TestColumnarResume(t *testing.T) {
	const n = 90
	path := filepath.Join(t.TempDir(), "col.rec")
	w, f, err := Create(path, columnarHeader(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := w.AppendRow([]uint64{uint64(i % 11), uint64(i)}); err != nil {
			t.Fatal(err)
		}
		if (i+1)%30 == 0 && i+1 < n {
			if err := w.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		if i == 59 { // "crash" with one checkpointed segment pair durable
			break
		}
	}
	// Simulate the crash: drop the writer without Close; the file holds
	// what the last Checkpoint wrote (body + trailer).
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := RecoverStatsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.ViaIndex || rec.Records != 60 {
		t.Fatalf("recovered viaIndex=%v records=%d, want index with 60", rec.ViaIndex, rec.Records)
	}
	fh, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := fh.Truncate(rec.CleanSize); err != nil {
		t.Fatal(err)
	}
	if _, err := fh.Seek(rec.CleanSize, 0); err != nil {
		t.Fatal(err)
	}
	w2, err := ResumeWriter(fh, Options{}, rec)
	if err != nil {
		t.Fatal(err)
	}
	for i := rec.Records; i < n; i++ {
		if err := w2.AppendRow([]uint64{uint64(i % 11), uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fh.Close(); err != nil {
		t.Fatal(err)
	}
	_, cols, err := DecodeColumnsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols[0]) != n {
		t.Fatalf("resumed columnar file holds %d records, want %d", len(cols[0]), n)
	}
	for i := 0; i < n; i++ {
		if cols[0][i] != uint64(i%11) || cols[1][i] != uint64(i) {
			t.Fatalf("record %d: (%d,%d)", i, cols[0][i], cols[1][i])
		}
	}
}

// TestFieldsSpecRoundTrip: the header field-map spelling inverts.
func TestFieldsSpecRoundTrip(t *testing.T) {
	fields := []Field{{"a", KindDelta}, {"b", KindRLE}, {"c", KindFloat}}
	spec := FieldsSpec(fields)
	got, err := ParseFields(spec)
	if err != nil || len(got) != len(fields) {
		t.Fatalf("ParseFields(%q): %v", spec, err)
	}
	for i := range fields {
		if got[i] != fields[i] {
			t.Fatalf("field %d: %+v != %+v", i, got[i], fields[i])
		}
	}
	for _, bad := range []string{"", "a", "a:", "a:nope", ":delta"} {
		if _, err := ParseFields(bad); err == nil {
			t.Errorf("ParseFields(%q) accepted", bad)
		}
	}
}

// TestSameWorkload: identity fields gate resume/merge; provenance must
// not.
func TestSameWorkload(t *testing.T) {
	a := testHeader()
	b := a
	b.Tool, b.Seed, b.Workers = "other", 7, 1
	if !a.SameWorkload(b) {
		t.Error("provenance fields must not affect workload identity")
	}
	b = a
	b.MatrixDigest = "ffff"
	if a.SameWorkload(b) {
		t.Error("digest mismatch not detected")
	}
	if msg := a.DescribeMismatch(b); msg == "headers match" {
		t.Error("DescribeMismatch found nothing")
	}
}
