package recio

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func testHeader() Header {
	return Header{
		Experiment:   "fig2",
		Cells:        1400,
		Groups:       7,
		Shard:        1,
		Shards:       3,
		CellLo:       466,
		CellHi:       933,
		MatrixDigest: "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef",
		Tool:         "recio_test",
		Seed:         42,
		Workers:      8,
	}
}

// writeTestFile builds a stream of n records with a checkpoint every
// `every` records and returns the encoded bytes plus the payloads.
func writeTestFile(t *testing.T, n, every int) ([]byte, [][]byte) {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	var payloads [][]byte
	for i := 0; i < n; i++ {
		p := fmt.Appendf(nil, `{"pollution":%d,"weight_frac":0.%06d}`, i*37%1000, i)
		payloads = append(payloads, p)
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
		if (i+1)%every == 0 {
			if err := w.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), payloads
}

func samePayloads(a, b [][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// TestRoundTrip: header and every record survive encode → strict
// decode, across several checkpoint cadences (including none mid-run).
func TestRoundTrip(t *testing.T) {
	for _, every := range []int{1, 7, 100, 1 << 30} {
		data, want := writeTestFile(t, 100, every)
		hdr, got, err := Decode(data)
		if err != nil {
			t.Fatalf("every=%d: %v", every, err)
		}
		if hdr.Format != formatVersion {
			t.Errorf("every=%d: header format %d", every, hdr.Format)
		}
		wantHdr := testHeader()
		wantHdr.Format = formatVersion
		if hdr != wantHdr {
			t.Errorf("every=%d: header %+v != %+v", every, hdr, wantHdr)
		}
		if !samePayloads(got, want) {
			t.Errorf("every=%d: %d payloads decoded, want %d (or contents differ)", every, len(got), len(want))
		}
	}
}

// TestEmptyStream: a header-only file (zero records) round-trips.
func TestEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	hdr, payloads, err := Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(payloads) != 0 || hdr.Experiment != "fig2" {
		t.Fatalf("got %d payloads, header %+v", len(payloads), hdr)
	}
}

// TestRecoverEveryTruncation: for every possible truncation length the
// recovered records must be a checkpoint-aligned prefix, the clean size
// must never exceed the truncation, and re-recovering the clean prefix
// must be a fixed point.
func TestRecoverEveryTruncation(t *testing.T) {
	const n, every = 60, 7
	data, want := writeTestFile(t, n, every)
	headerEnd := -1
	for cut := 0; cut <= len(data); cut++ {
		hdr, got, clean, err := RecoverFileBytes(t, data[:cut])
		if err != nil {
			// Unreadable magic/header: only legal before the header ends.
			if headerEnd >= 0 && cut >= headerEnd {
				t.Fatalf("cut=%d: unexpected recover error after header: %v", cut, err)
			}
			continue
		}
		if headerEnd < 0 {
			headerEnd = cut
		}
		if hdr.Experiment != "fig2" {
			t.Fatalf("cut=%d: header %+v", cut, hdr)
		}
		if clean > int64(cut) {
			t.Fatalf("cut=%d: clean size %d beyond data", cut, clean)
		}
		if len(got)%every != 0 && len(got) != n {
			t.Fatalf("cut=%d: %d records recovered, not checkpoint-aligned (every=%d)", cut, len(got), every)
		}
		if !samePayloads(got, want[:len(got)]) {
			t.Fatalf("cut=%d: recovered records are not a prefix", cut)
		}
		// Idempotence: the clean prefix recovers to exactly itself.
		_, again, clean2, err := RecoverFileBytes(t, data[:clean])
		if err != nil || clean2 != clean || !samePayloads(again, got) {
			t.Fatalf("cut=%d: clean prefix not a fixed point (err=%v clean=%d→%d records %d→%d)",
				cut, err, clean, clean2, len(got), len(again))
		}
	}
	if headerEnd < 0 {
		t.Fatal("recover never succeeded")
	}
}

// RecoverFileBytes adapts Recover for table-style tests.
func RecoverFileBytes(t *testing.T, data []byte) (Header, [][]byte, int64, error) {
	t.Helper()
	return Recover(data)
}

// TestCorruption: flipping any single byte must never panic, and the
// strict decoder must either error or (only for bytes inside ignored
// gzip redundancy) still yield the exact records.
func TestCorruption(t *testing.T) {
	data, want := writeTestFile(t, 24, 8)
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x5a
		hdr, got, err := Decode(mut)
		if err != nil {
			continue
		}
		if i >= len(magic) && hdr.Experiment != "fig2" {
			t.Fatalf("byte %d: corrupt decode succeeded with header %+v", i, hdr)
		}
		if !samePayloads(got, want) {
			t.Fatalf("byte %d: corrupt decode succeeded with wrong records", i)
		}
	}
}

// TestStrictDecodeRejectsTruncation: Decode (unlike Recover) must
// refuse any file with a damaged tail.
func TestStrictDecodeRejectsTruncation(t *testing.T) {
	data, _ := writeTestFile(t, 20, 5)
	if _, _, err := Decode(data[:len(data)-3]); err == nil {
		t.Fatal("strict decode accepted a truncated file")
	}
}

// TestOversizedLength: a length prefix claiming more than MaxPayload
// must error out (ErrTooLarge) without allocating the claimed size.
func TestOversizedLength(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(magic)
	// Header frame claiming 2^62 bytes.
	buf.Write([]byte{0xfe, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x3f})
	if _, _, err := Decode(buf.Bytes()); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("got %v, want ErrTooLarge", err)
	}
}

// TestBadMagic: foreign files are rejected up front.
func TestBadMagic(t *testing.T) {
	if _, _, err := Decode([]byte(`{"experiment":"fig2"}`)); !errors.Is(err, ErrMagic) {
		t.Fatalf("got %v, want ErrMagic", err)
	}
	bad := append([]byte{}, magic...)
	bad[len(bad)-1] = 99
	if _, _, err := Decode(append(bad, 0)); !errors.Is(err, ErrVersion) {
		t.Fatalf("got %v, want ErrVersion", err)
	}
}

// TestResumeWriter: recover a truncated file, truncate to the clean
// size, append through ResumeWriter — the final file must decode to the
// full record sequence.
func TestResumeWriter(t *testing.T) {
	const n, every = 40, 6
	data, want := writeTestFile(t, n, every)

	path := filepath.Join(t.TempDir(), "shard.rec")
	cut := len(data) * 2 / 3
	if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	_, kept, clean, err := RecoverFile(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(clean); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(clean, 0); err != nil {
		t.Fatal(err)
	}
	w := ResumeWriter(f)
	for i := len(kept); i < n; i++ {
		if err := w.Append(want[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	hdr, got, err := DecodeFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Experiment != "fig2" || !samePayloads(got, want) {
		t.Fatalf("resumed file decodes to %d records (want %d)", len(got), n)
	}
}

// TestSameWorkload: identity fields gate resume/merge; provenance must
// not.
func TestSameWorkload(t *testing.T) {
	a := testHeader()
	b := a
	b.Tool, b.Seed, b.Workers = "other", 7, 1
	if !a.SameWorkload(b) {
		t.Error("provenance fields must not affect workload identity")
	}
	b = a
	b.MatrixDigest = "ffff"
	if a.SameWorkload(b) {
		t.Error("digest mismatch not detected")
	}
	if msg := a.DescribeMismatch(b); msg == "headers match" {
		t.Error("DescribeMismatch found nothing")
	}
}
