// Readers: Decode is the strict path (any damage is an error — the
// merge contract must never silently drop records), Recover is the
// resume path (the clean prefix is returned together with the byte
// offset where it ends, and only a damaged header is fatal).

package recio

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Decode strictly parses a whole recio file held in memory: every
// segment must inflate cleanly and every frame must verify. Returns the
// header and the record payloads in append order.
func Decode(data []byte) (Header, [][]byte, error) {
	hdr, payloads, clean, err := scan(data)
	if err != nil {
		return hdr, nil, err
	}
	if clean != int64(len(data)) {
		return hdr, nil, fmt.Errorf("recio: damaged tail after byte %d (%d clean records): %w",
			clean, len(payloads), ErrTruncated)
	}
	return hdr, payloads, nil
}

// DecodeFile is Decode over a file path.
func DecodeFile(path string) (Header, [][]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Header{}, nil, err
	}
	hdr, payloads, err := Decode(data)
	if err != nil {
		return hdr, nil, fmt.Errorf("%s: %w", path, err)
	}
	return hdr, payloads, nil
}

// Recover parses as much of a possibly crash-truncated recio file as is
// intact: the records of every undamaged checkpoint segment, plus the
// byte offset where the clean prefix ends (truncate there to append).
// Only an unreadable magic or header is an error — a run that cannot
// prove what workload the file belongs to must not resume onto it.
func Recover(data []byte) (hdr Header, payloads [][]byte, cleanSize int64, err error) {
	hdr, payloads, cleanSize, scanErr := scan(data)
	if scanErr != nil {
		return hdr, nil, 0, scanErr
	}
	return hdr, payloads, cleanSize, nil
}

// RecoverFile is Recover over a file path.
func RecoverFile(path string) (Header, [][]byte, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Header{}, nil, 0, err
	}
	hdr, payloads, clean, err := Recover(data)
	if err != nil {
		return hdr, nil, 0, fmt.Errorf("%s: %w", path, err)
	}
	return hdr, payloads, clean, nil
}

// scan walks magic, header and segments. It returns the records of
// every intact segment and the offset just past the last intact one;
// err is non-nil only when the magic or header is unreadable.
func scan(data []byte) (hdr Header, payloads [][]byte, cleanSize int64, err error) {
	if len(data) < len(magic) {
		return hdr, nil, 0, ErrTruncated
	}
	if !bytes.Equal(data[:len(magic)-1], magic[:len(magic)-1]) {
		return hdr, nil, 0, ErrMagic
	}
	if data[len(magic)-1] != formatVersion {
		return hdr, nil, 0, fmt.Errorf("%w %d (this build reads %d)", ErrVersion, data[len(magic)-1], formatVersion)
	}
	hj, off, err := parseFrame(data, len(magic))
	if err != nil {
		return hdr, nil, 0, fmt.Errorf("recio: header frame: %w", err)
	}
	if err := json.Unmarshal(hj, &hdr); err != nil {
		return hdr, nil, 0, fmt.Errorf("recio: decode header: %w", err)
	}
	if hdr.Format != formatVersion {
		return hdr, nil, 0, fmt.Errorf("%w %d in header (this build reads %d)", ErrVersion, hdr.Format, formatVersion)
	}
	cleanSize = int64(off)
	for off < len(data) {
		recs, next, segErr := parseSegment(data, off)
		if segErr != nil {
			// Damaged tail: everything before this segment stays valid.
			return hdr, payloads, cleanSize, nil
		}
		payloads = append(payloads, recs...)
		off = next
		cleanSize = int64(off)
	}
	return hdr, payloads, cleanSize, nil
}

// parseSegment inflates and frame-checks the segment starting at
// data[off:]; on success it returns the segment's record payloads
// (copied out of the inflate buffer) and the offset just past it.
func parseSegment(data []byte, off int) (payloads [][]byte, next int, err error) {
	clen, width := binary.Uvarint(data[off:])
	if width <= 0 {
		return nil, off, ErrTruncated
	}
	if clen > maxSegment {
		return nil, off, fmt.Errorf("recio: segment of %d bytes: %w", int64(clen), ErrTooLarge)
	}
	off += width
	end := off + int(clen)
	if end > len(data) || end < off {
		return nil, off, ErrTruncated
	}
	zr, err := gzip.NewReader(bytes.NewReader(data[off:end]))
	if err != nil {
		return nil, off, fmt.Errorf("recio: open segment: %w", err)
	}
	// A gzip member compresses at most ~1032:1; capping the inflated
	// size keeps a corrupt length from turning into a decompression
	// bomb.
	inflated, err := io.ReadAll(io.LimitReader(zr, maxSegment+1))
	if cerr := zr.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, off, fmt.Errorf("recio: inflate segment: %w", err)
	}
	if len(inflated) > maxSegment {
		return nil, off, fmt.Errorf("recio: inflated segment: %w", ErrTooLarge)
	}
	for pos := 0; pos < len(inflated); {
		payload, posNext, err := parseFrame(inflated, pos)
		if err != nil {
			return nil, off, fmt.Errorf("recio: record frame at segment byte %d: %w", pos, err)
		}
		payloads = append(payloads, append([]byte(nil), payload...))
		pos = posNext
	}
	return payloads, end, nil
}
