// Readers, three tiers of them. Decode/DecodeColumns are the strict
// paths (any body damage is an error — the merge contract must never
// silently drop records), and go parallel over the index trailer when
// one is present. Recover is the v1-compatible resume path (the clean
// prefix's records are inflated and returned). RecoverStats is the seek
// path: with a usable trailer it counts and CRC-verifies the clean
// prefix without inflating a single segment; without one it degrades to
// the same scan Recover does. A missing or damaged trailer is never an
// error anywhere — the trailer is an index, the body is the truth.

package recio

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"runtime"
	"sync"
)

// ReadHeader parses just the magic and header frame, returning the
// header and the byte offset where the body begins.
func ReadHeader(data []byte) (Header, int64, error) {
	var hdr Header
	if len(data) < len(magic) {
		return hdr, 0, ErrTruncated
	}
	if !bytes.Equal(data[:len(magic)-1], magic[:len(magic)-1]) {
		return hdr, 0, ErrMagic
	}
	version := int(data[len(magic)-1])
	if version != formatV1 && version != formatVersion {
		return hdr, 0, fmt.Errorf("%w %d (this build reads %d and %d)", ErrVersion, version, formatV1, formatVersion)
	}
	hj, off, err := parseFrame(data, len(magic))
	if err != nil {
		return hdr, 0, fmt.Errorf("recio: header frame: %w", err)
	}
	if err := json.Unmarshal(hj, &hdr); err != nil {
		return hdr, 0, fmt.Errorf("recio: decode header: %w", err)
	}
	if hdr.Format != version {
		return hdr, 0, fmt.Errorf("%w: header declares format %d inside a version-%d file", ErrVersion, hdr.Format, version)
	}
	return hdr, int64(off), nil
}

// Recovery is what RecoverStats learns about a possibly crash-truncated
// file: the workload identity, how many records the clean prefix holds,
// where it ends (truncate there to append), the per-segment index of
// that prefix, and whether the answer came from the trailer (seek) or a
// full scan (inflate + replay).
type Recovery struct {
	Header    Header
	Records   int
	CleanSize int64
	Segments  []SegmentInfo
	ViaIndex  bool
}

// Decode strictly parses a whole row-layout recio file held in memory:
// every segment must inflate cleanly and every frame must verify.
// Returns the header and the record payloads in append order. Damage in
// the trailer region is not an error — the trailer is advisory and
// regenerable; the body is not.
func Decode(data []byte) (Header, [][]byte, error) {
	hdr, headerEnd, err := ReadHeader(data)
	if err != nil {
		return hdr, nil, err
	}
	if hdr.Layout == LayoutColumns {
		return hdr, nil, fmt.Errorf("%w: columnar file (use DecodeColumns)", ErrLayout)
	}
	if segs := findIndex(data, headerEnd); segs != nil {
		payloads, err := inflateRowSegments(data, segs, 0)
		if err != nil {
			return hdr, nil, err
		}
		return hdr, payloads, nil
	}
	sc := scanBody(data, hdr, headerEnd, nil)
	if !sc.complete {
		return hdr, nil, fmt.Errorf("recio: damaged tail after byte %d (%d clean records): %w",
			sc.cleanSize, sc.records, ErrTruncated)
	}
	return hdr, sc.payloads, nil
}

// DecodeFile is Decode over a file path.
func DecodeFile(path string) (Header, [][]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Header{}, nil, err
	}
	hdr, payloads, err := Decode(data)
	if err != nil {
		return hdr, nil, fmt.Errorf("%s: %w", path, err)
	}
	return hdr, payloads, nil
}

// DecodeColumns strictly parses a whole columnar recio file, returning
// the header and one value slice per field (in header-field order),
// each holding every record's value for that field.
func DecodeColumns(data []byte) (Header, [][]uint64, error) {
	hdr, headerEnd, err := ReadHeader(data)
	if err != nil {
		return hdr, nil, err
	}
	if hdr.Layout != LayoutColumns {
		return hdr, nil, fmt.Errorf("%w: row file (use Decode)", ErrLayout)
	}
	fields, err := ParseFields(hdr.Fields)
	if err != nil {
		return hdr, nil, err
	}
	if segs := findIndex(data, headerEnd); segs != nil {
		cols, err := inflateColSegments(data, segs, fields)
		if err != nil {
			return hdr, nil, err
		}
		return hdr, cols, nil
	}
	sc := scanBody(data, hdr, headerEnd, fields)
	if !sc.complete {
		return hdr, nil, fmt.Errorf("recio: damaged tail after byte %d (%d clean records): %w",
			sc.cleanSize, sc.records, ErrTruncated)
	}
	return hdr, sc.cols, nil
}

// DecodeColumnsFile is DecodeColumns over a file path.
func DecodeColumnsFile(path string) (Header, [][]uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Header{}, nil, err
	}
	hdr, cols, err := DecodeColumns(data)
	if err != nil {
		return hdr, nil, fmt.Errorf("%s: %w", path, err)
	}
	return hdr, cols, nil
}

// Recover parses as much of a possibly crash-truncated row-layout recio
// file as is intact: the records of every undamaged segment, plus the
// byte offset where the clean prefix ends (truncate there to append —
// any trailer is excluded, the writer regrows it). Only an unreadable
// magic or header is an error — a run that cannot prove what workload
// the file belongs to must not resume onto it.
func Recover(data []byte) (hdr Header, payloads [][]byte, cleanSize int64, err error) {
	hdr, headerEnd, err := ReadHeader(data)
	if err != nil {
		return hdr, nil, 0, err
	}
	if hdr.Layout == LayoutColumns {
		return hdr, nil, 0, fmt.Errorf("%w: columnar file", ErrLayout)
	}
	sc := scanBody(data, hdr, headerEnd, nil)
	return hdr, sc.payloads, sc.cleanSize, nil
}

// RecoverFile is Recover over a file path.
func RecoverFile(path string) (Header, [][]byte, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Header{}, nil, 0, err
	}
	hdr, payloads, clean, err := Recover(data)
	if err != nil {
		return hdr, nil, 0, fmt.Errorf("%s: %w", path, err)
	}
	return hdr, payloads, clean, nil
}

// RecoverStats is the seek-resume path: it learns the clean prefix's
// record count and extent without returning (or, trailer permitting,
// even inflating) the records themselves. With a usable trailer the
// whole job is a CRC sweep over the compressed segment bytes —
// sub-millisecond where the scan path decompresses megabytes — and a
// damaged trailer, or a trailer whose segments no longer checksum,
// degrades to exactly the scan Recover performs. Only an unreadable
// magic or header is an error.
func RecoverStats(data []byte) (*Recovery, error) {
	hdr, headerEnd, err := ReadHeader(data)
	if err != nil {
		return nil, err
	}
	rec := &Recovery{Header: hdr, CleanSize: headerEnd}
	if segs := findIndex(data, headerEnd); segs != nil {
		rec.ViaIndex = true
		for _, s := range segs {
			if !verifySegment(data, s) {
				// Bit rot inside an indexed segment: everything before it
				// is still provably clean; resume re-solves the rest.
				break
			}
			rec.Segments = append(rec.Segments, s)
			rec.Records += s.Records
			rec.CleanSize = s.end()
		}
		return rec, nil
	}
	var fields []Field
	if hdr.Layout == LayoutColumns {
		if fields, err = ParseFields(hdr.Fields); err != nil {
			return nil, err
		}
	}
	sc := scanBody(data, hdr, headerEnd, fields)
	rec.Records = sc.records
	rec.CleanSize = sc.cleanSize
	rec.Segments = sc.segs
	return rec, nil
}

// RecoverStatsFile is RecoverStats over a file path.
func RecoverStatsFile(path string) (*Recovery, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rec, err := RecoverStats(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rec, nil
}

// ReadCells returns the record payloads covering absolute cells
// [lo, hi) of a row-layout file, clamped to what the file holds, plus
// the cell index of the first returned payload. With a trailer only the
// overlapping segments inflate; without one the body is scanned whole —
// the result is identical either way. The file must be strictly intact
// across the segments read.
func ReadCells(data []byte, lo, hi int) (Header, [][]byte, int, error) {
	hdr, headerEnd, err := ReadHeader(data)
	if err != nil {
		return hdr, nil, 0, err
	}
	if hdr.Layout == LayoutColumns {
		return hdr, nil, 0, fmt.Errorf("%w: columnar file", ErrLayout)
	}
	if segs := findIndex(data, headerEnd); segs != nil {
		var picked []SegmentInfo
		for _, s := range segs {
			if s.LastCell >= lo && s.FirstCell < hi {
				picked = append(picked, s)
			}
		}
		if len(picked) == 0 {
			return hdr, nil, lo, nil
		}
		payloads, err := inflateRowSegments(data, picked, 0)
		if err != nil {
			return hdr, nil, 0, err
		}
		first := picked[0].FirstCell
		effLo, effHi := max(lo, first), min(hi, picked[len(picked)-1].LastCell+1)
		return hdr, payloads[effLo-first : effHi-first], effLo, nil
	}
	_, payloads, err2 := Decode(data)
	if err2 != nil {
		return hdr, nil, 0, err2
	}
	effLo := max(lo, hdr.CellLo)
	effHi := min(hi, hdr.CellLo+len(payloads))
	if effLo >= effHi {
		return hdr, nil, lo, nil
	}
	return hdr, payloads[effLo-hdr.CellLo : effHi-hdr.CellLo], effLo, nil
}

// ReadCellsFile is ReadCells over a file path.
func ReadCellsFile(path string, lo, hi int) (Header, [][]byte, int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Header{}, nil, 0, err
	}
	hdr, payloads, first, err := ReadCells(data, lo, hi)
	if err != nil {
		return hdr, nil, 0, fmt.Errorf("%s: %w", path, err)
	}
	return hdr, payloads, first, nil
}

// ReadColumn returns every record's value for one named field of a
// columnar file, inflating only that field's members — sibling columns
// are skipped by their length prefixes, which is the layout's point.
func ReadColumn(data []byte, name string) ([]uint64, error) {
	hdr, headerEnd, err := ReadHeader(data)
	if err != nil {
		return nil, err
	}
	if hdr.Layout != LayoutColumns {
		return nil, fmt.Errorf("%w: row file has no columns", ErrLayout)
	}
	fields, err := ParseFields(hdr.Fields)
	if err != nil {
		return nil, err
	}
	want := -1
	for i, f := range fields {
		if f.Name == name {
			want = i
		}
	}
	if want < 0 {
		return nil, fmt.Errorf("recio: no column %q (file has %s)", name, hdr.Fields)
	}
	var vals []uint64
	off := headerEnd
	for off < int64(len(data)) {
		clen, width := binary.Uvarint(data[off:])
		if width <= 0 {
			return nil, fmt.Errorf("recio: damaged segment length at byte %d: %w", off, ErrTruncated)
		}
		if clen == 0 { // trailer sentinel: body ends
			break
		}
		if clen > maxSegment || off+int64(width)+int64(clen) > int64(len(data)) {
			return nil, fmt.Errorf("recio: damaged segment at byte %d: %w", off, ErrTruncated)
		}
		seg := data[off+int64(width) : off+int64(width)+int64(clen)]
		segVals, err := decodeOneColumn(seg, fields, want)
		if err != nil {
			return nil, err
		}
		vals = append(vals, segVals...)
		off += int64(width) + int64(clen)
	}
	return vals, nil
}

// ReadColumnFile is ReadColumn over a file path.
func ReadColumnFile(path, name string) ([]uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	vals, err := ReadColumn(data, name)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return vals, nil
}

// decodeOneColumn extracts field `want` from one columnar segment body.
func decodeOneColumn(seg []byte, fields []Field, want int) ([]uint64, error) {
	recs, pos := binary.Uvarint(seg)
	if pos <= 0 || recs > maxSegment {
		return nil, fmt.Errorf("recio: malformed columnar segment: %w", ErrTruncated)
	}
	for i := range fields {
		mlen, w := binary.Uvarint(seg[pos:])
		if w <= 0 || int64(mlen) > maxSegment || pos+w+int(mlen) > len(seg) {
			return nil, fmt.Errorf("recio: malformed column member %d: %w", i, ErrTruncated)
		}
		pos += w
		if i == want {
			enc, err := inflate(seg[pos:pos+int(mlen)], maxSegment)
			if err != nil {
				return nil, err
			}
			return decodeColumn(enc, fields[i].Kind, int(recs))
		}
		pos += int(mlen)
	}
	return nil, fmt.Errorf("recio: columnar segment ended before field %d", want)
}

// scanResult is everything one sequential body walk learns.
type scanResult struct {
	payloads  [][]byte   // row layout: record payloads, in order
	cols      [][]uint64 // column layout: per-field values, in order
	records   int
	segs      []SegmentInfo
	cleanSize int64
	// complete is true when the body ended legitimately: at EOF on a
	// segment boundary, or at a v2 trailer sentinel. False means the
	// tail is damaged (crash truncation or corruption).
	complete bool
}

// scanBody walks segments sequentially — the v1 path, and the fallback
// whenever no usable trailer exists. fields is nil for row layouts.
// Damage stops the walk; everything before it stays valid.
func scanBody(data []byte, hdr Header, headerEnd int64, fields []Field) scanResult {
	sc := scanResult{cleanSize: headerEnd}
	if fields != nil {
		sc.cols = make([][]uint64, len(fields))
	}
	nextCell := hdr.CellLo
	off := headerEnd
	for {
		if off == int64(len(data)) {
			sc.complete = true
			return sc
		}
		clen, width := binary.Uvarint(data[off:])
		if width <= 0 {
			return sc
		}
		if clen == 0 {
			// v2 trailer sentinel; v1 files never contain one, so there
			// it is damage.
			sc.complete = hdr.Format >= formatVersion
			return sc
		}
		if clen > maxSegment || off+int64(width)+int64(clen) > int64(len(data)) {
			return sc
		}
		start := off + int64(width)
		seg := data[start : start+int64(clen)]
		var recs int
		var err error
		if fields == nil {
			var payloads [][]byte
			payloads, err = parseRowSegment(seg)
			recs = len(payloads)
			if err == nil {
				sc.payloads = append(sc.payloads, payloads...)
			}
		} else {
			var segCols [][]uint64
			segCols, err = parseColSegment(seg, fields)
			if err == nil {
				recs = len(segCols[0])
				for i := range sc.cols {
					sc.cols[i] = append(sc.cols[i], segCols[i]...)
				}
			}
		}
		if err != nil {
			return sc
		}
		sc.segs = append(sc.segs, SegmentInfo{
			Offset:    off,
			CLen:      int64(clen),
			Records:   recs,
			FirstCell: nextCell,
			LastCell:  nextCell + recs - 1,
			CRC:       crc32.Checksum(seg, castagnoli),
		})
		nextCell += recs
		sc.records += recs
		off = start + int64(clen)
		sc.cleanSize = off
	}
}

// inflate decompresses one gzip member with a bound on the inflated
// size, so a corrupt length can never become a decompression bomb.
func inflate(comp []byte, limit int64) ([]byte, error) {
	zr, err := gzip.NewReader(bytes.NewReader(comp))
	if err != nil {
		return nil, fmt.Errorf("recio: open segment: %w", err)
	}
	out, err := io.ReadAll(io.LimitReader(zr, limit+1))
	if cerr := zr.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, fmt.Errorf("recio: inflate segment: %w", err)
	}
	if int64(len(out)) > limit {
		return nil, fmt.Errorf("recio: inflated segment: %w", ErrTooLarge)
	}
	return out, nil
}

// parseRowSegment inflates and frame-checks one row segment's bytes; on
// success it returns the record payloads (copied out of the inflate
// buffer).
func parseRowSegment(seg []byte) ([][]byte, error) {
	inflated, err := inflate(seg, maxSegment)
	if err != nil {
		return nil, err
	}
	var payloads [][]byte
	for pos := 0; pos < len(inflated); {
		payload, next, err := parseFrame(inflated, pos)
		if err != nil {
			return nil, fmt.Errorf("recio: record frame at segment byte %d: %w", pos, err)
		}
		payloads = append(payloads, append([]byte(nil), payload...))
		pos = next
	}
	return payloads, nil
}

// parseColSegment inflates and decodes every field member of one
// columnar segment's bytes.
func parseColSegment(seg []byte, fields []Field) ([][]uint64, error) {
	recs, pos := binary.Uvarint(seg)
	if pos <= 0 || recs == 0 || recs > maxSegment {
		return nil, fmt.Errorf("recio: malformed columnar segment: %w", ErrTruncated)
	}
	cols := make([][]uint64, len(fields))
	for i, f := range fields {
		mlen, w := binary.Uvarint(seg[pos:])
		if w <= 0 || int64(mlen) > maxSegment || pos+w+int(mlen) > len(seg) {
			return nil, fmt.Errorf("recio: malformed column member %d: %w", i, ErrTruncated)
		}
		pos += w
		enc, err := inflate(seg[pos:pos+int(mlen)], maxSegment)
		if err != nil {
			return nil, err
		}
		cols[i], err = decodeColumn(enc, f.Kind, int(recs))
		if err != nil {
			return nil, err
		}
		pos += int(mlen)
	}
	if pos != len(seg) {
		return nil, fmt.Errorf("recio: %d trailing bytes after last column", len(seg)-pos)
	}
	return cols, nil
}

// inflateRowSegments decompresses the given segments concurrently (in
// index order) and concatenates their record payloads. workers ≤ 0
// means min(GOMAXPROCS, 8). Strict: any CRC, inflate or frame failure
// is an error.
func inflateRowSegments(data []byte, segs []SegmentInfo, workers int) ([][]byte, error) {
	per := make([][][]byte, len(segs))
	err := eachSegment(segs, workers, func(i int) error {
		s := segs[i]
		if !verifySegment(data, s) {
			return fmt.Errorf("recio: segment at byte %d: %w", s.Offset, ErrCRC)
		}
		start := s.Offset + int64(uvarintLen(uint64(s.CLen)))
		payloads, err := parseRowSegment(data[start : start+s.CLen])
		if err != nil {
			return err
		}
		if len(payloads) != s.Records {
			return fmt.Errorf("recio: segment at byte %d holds %d records, index says %d",
				s.Offset, len(payloads), s.Records)
		}
		per[i] = payloads
		return nil
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, p := range per {
		total += len(p)
	}
	out := make([][]byte, 0, total)
	for _, p := range per {
		out = append(out, p...)
	}
	return out, nil
}

// inflateColSegments is inflateRowSegments for columnar bodies: each
// segment decodes all its field members, concurrently across segments.
func inflateColSegments(data []byte, segs []SegmentInfo, fields []Field) ([][]uint64, error) {
	per := make([][][]uint64, len(segs))
	err := eachSegment(segs, 0, func(i int) error {
		s := segs[i]
		if !verifySegment(data, s) {
			return fmt.Errorf("recio: segment at byte %d: %w", s.Offset, ErrCRC)
		}
		start := s.Offset + int64(uvarintLen(uint64(s.CLen)))
		cols, err := parseColSegment(data[start:start+s.CLen], fields)
		if err != nil {
			return err
		}
		if len(cols[0]) != s.Records {
			return fmt.Errorf("recio: segment at byte %d holds %d records, index says %d",
				s.Offset, len(cols[0]), s.Records)
		}
		per[i] = cols
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([][]uint64, len(fields))
	for _, cols := range per {
		for i := range out {
			out[i] = append(out[i], cols[i]...)
		}
	}
	return out, nil
}

// eachSegment runs fn(i) for every segment index on a bounded worker
// pool, returning the lowest-index error.
func eachSegment(segs []SegmentInfo, workers int, fn func(i int) error) error {
	if workers <= 0 {
		workers = min(runtime.GOMAXPROCS(0), 8)
	}
	workers = min(workers, len(segs))
	if workers <= 1 {
		for i := range segs {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(segs))
	var next int64
	var wg sync.WaitGroup
	var mu sync.Mutex
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := int(next)
				next++
				mu.Unlock()
				if i >= len(segs) {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
