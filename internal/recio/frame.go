// The frame codec: every payload in a recio file — the header and each
// record — travels as one length-prefixed, checksummed frame:
//
//	uvarint(len(payload)) ++ payload ++ CRC-32C(payload), 4 bytes LE
//
// Decoding is defensive by construction: the length prefix is checked
// against MaxPayload and against the bytes actually present before
// anything is sliced, so corrupt or adversarial inputs produce errors,
// never panics or giant allocations.

package recio

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// castagnoli is the CRC-32C polynomial table (the same checksum family
// used by ext4, iSCSI and most storage formats).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendFrame appends one frame holding payload to dst and returns the
// extended slice.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	return binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
}

// frameOverhead bounds the non-payload bytes of one frame (length
// prefix plus checksum); used to size buffers.
const frameOverhead = binary.MaxVarintLen64 + crc32.Size

// parseFrame decodes the frame starting at data[off:]. It returns the
// payload (aliasing data — callers copy if they retain it) and the
// offset just past the frame. Errors:
//
//	ErrTruncated — data ends inside the length prefix, payload or CRC
//	ErrTooLarge  — the length prefix claims more than MaxPayload
//	ErrCRC       — the payload does not match its checksum
func parseFrame(data []byte, off int) (payload []byte, next int, err error) {
	n, width := binary.Uvarint(data[off:])
	if width == 0 {
		return nil, off, ErrTruncated
	}
	if width < 0 || n > MaxPayload {
		return nil, off, fmt.Errorf("%w (length prefix %d)", ErrTooLarge, int64(n))
	}
	off += width
	end := off + int(n)
	if end+crc32.Size > len(data) {
		return nil, off, ErrTruncated
	}
	payload = data[off:end]
	want := binary.LittleEndian.Uint32(data[end : end+crc32.Size])
	if crc32.Checksum(payload, castagnoli) != want {
		return nil, off, ErrCRC
	}
	return payload, end + crc32.Size, nil
}
