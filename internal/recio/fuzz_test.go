package recio

import (
	"bytes"
	"fmt"
	"testing"
)

// FuzzDecode drives both decoders over arbitrary bytes. The properties
// under test are the frame codec's safety guarantees: truncated frames,
// corrupted CRCs and oversized varint lengths must come back as errors —
// never a panic, never an allocation sized by a corrupt length prefix —
// and the two decoders must agree with each other:
//
//  1. Recover errors only when Decode does (both require a readable
//     magic + header; Recover tolerates everything after).
//  2. Recover's clean size never exceeds the input length.
//  3. The clean prefix is a fixed point: recovering data[:clean] yields
//     the same header, records and clean size.
//  4. If strict Decode succeeds, Recover must return identical records
//     (the clean size may be smaller than the input — a v2 trailer is
//     not body).
//  5. RecoverStats never errors when Recover succeeds. Through the scan
//     path it agrees with Recover exactly; through the index it may
//     stop earlier (the segment CRC is stricter than gzip's own
//     redundancy) but never claims more than the scan proves.
func FuzzDecode(f *testing.F) {
	// Valid small file: header plus two checkpointed segments, ending in
	// a v2 index trailer.
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Experiment: "seed", Cells: 4, Groups: 1, Shards: 1, CellHi: 4,
		MatrixDigest: "d1"}, Options{})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := w.Append(fmt.Appendf(nil, `{"pollution":%d}`, i)); err != nil {
			f.Fatal(err)
		}
		if i == 1 {
			if err := w.Checkpoint(); err != nil {
				f.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	rec, err := RecoverStats(valid)
	if err != nil || !rec.ViaIndex {
		f.Fatalf("seed file has no usable index: %v", err)
	}
	bodyEnd := int(rec.CleanSize)

	f.Add(valid)
	f.Add(valid[:bodyEnd])              // trailer stripped: pure body
	f.Add(valid[:len(valid)-5])         // truncated footer
	f.Add(valid[:bodyEnd+3])            // truncated mid-index-frame
	f.Add(valid[:len(magic)+3])         // truncated header frame
	f.Add([]byte("recio"))              // bare magic, no version
	f.Add([]byte{})                     // empty input
	f.Add([]byte(`{"experiment":"x"}`)) // JSON masquerading as recio
	corrupt := append([]byte(nil), valid...)
	corrupt[bodyEnd-3] ^= 0xff // CRC damage in the last body segment
	f.Add(corrupt)
	badEntry := append([]byte(nil), valid...)
	badEntry[bodyEnd+4] ^= 0x5a // corrupt index entry under an intact footer
	f.Add(badEntry)
	pastEOF := append([]byte(nil), valid...)
	copy(pastEOF[len(pastEOF)-16:], []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}) // footer offset past EOF
	f.Add(pastEOF)
	huge := append([]byte(nil), magic...)
	huge = append(huge, 0xfe, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x3f) // 2^62-byte header claim
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, recs, decodeErr := Decode(data)
		rhdr, rrecs, clean, recoverErr := Recover(data)
		if (recoverErr == nil) != (decodeErr == nil) && decodeErr == nil {
			t.Fatalf("Decode ok but Recover failed: %v", recoverErr)
		}
		if recoverErr != nil {
			return
		}
		if clean < 0 || clean > int64(len(data)) {
			t.Fatalf("clean size %d outside [0,%d]", clean, len(data))
		}
		if decodeErr == nil {
			if len(recs) != len(rrecs) || hdr != rhdr {
				t.Fatalf("strict/recover disagree on a fully valid file: records=%d/%d",
					len(recs), len(rrecs))
			}
		}
		stats, statsErr := RecoverStats(data)
		if statsErr != nil {
			t.Fatalf("Recover ok but RecoverStats failed: %v", statsErr)
		}
		if stats.Header != rhdr {
			t.Fatalf("RecoverStats header disagrees with Recover")
		}
		if stats.ViaIndex {
			if stats.Records > len(rrecs) || stats.CleanSize > clean {
				t.Fatalf("index recovery claims more than the scan proves: records=%d/%d clean=%d/%d",
					stats.Records, len(rrecs), stats.CleanSize, clean)
			}
		} else if stats.Records != len(rrecs) || stats.CleanSize != clean {
			t.Fatalf("scan RecoverStats disagrees with Recover: records=%d/%d clean=%d/%d",
				stats.Records, len(rrecs), stats.CleanSize, clean)
		}
		hdr2, rrecs2, clean2, err2 := Recover(data[:clean])
		if err2 != nil || clean2 != clean || len(rrecs2) != len(rrecs) || hdr2 != rhdr {
			t.Fatalf("clean prefix not a fixed point: err=%v clean=%d→%d records=%d→%d",
				err2, clean, clean2, len(rrecs), len(rrecs2))
		}
		for i := range rrecs {
			if !bytes.Equal(rrecs[i], rrecs2[i]) {
				t.Fatalf("record %d differs across recover passes", i)
			}
		}
	})
}
