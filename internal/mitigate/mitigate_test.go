package mitigate

import (
	"testing"

	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/prefix"
	"github.com/bgpsim/bgpsim/internal/topology"
)

func mp(s string) prefix.Prefix { return prefix.MustParse(s) }

func testWorld(t *testing.T, n int) (*core.Policy, *topology.Graph, *topology.Classification) {
	t.Helper()
	g := topology.MustGenerate(topology.DefaultParams(n))
	con, err := topology.ContractSiblings(g)
	if err != nil {
		t.Fatal(err)
	}
	c := topology.Classify(con.Graph, topology.ClassifyOptions{})
	pol, err := core.NewPolicy(con.Graph, c.Tier1)
	if err != nil {
		t.Fatal(err)
	}
	return pol, con.Graph, c
}

func TestHalves(t *testing.T) {
	hs, err := Halves(mp("129.82.0.0/16"))
	if err != nil {
		t.Fatal(err)
	}
	if hs[0] != mp("129.82.0.0/17") || hs[1] != mp("129.82.128.0/17") {
		t.Errorf("halves = %v", hs)
	}
	for _, h := range hs {
		if !h.IsSubprefixOf(mp("129.82.0.0/16")) {
			t.Errorf("%v is not a subprefix of the parent", h)
		}
	}
	if _, err := Halves(mp("1.2.3.4/32")); err == nil {
		t.Error("splitting a /32 accepted")
	}
}

func TestExecuteValidation(t *testing.T) {
	pol, _, _ := testWorld(t, 200)
	if _, err := Execute(pol, Plan{Victim: -1, Attacker: 1, VictimPrefix: mp("10.0.0.0/16")}); err == nil {
		t.Error("bad victim accepted")
	}
	if _, err := Execute(pol, Plan{Victim: 1, Attacker: 1, VictimPrefix: mp("10.0.0.0/16")}); err == nil {
		t.Error("victim == attacker accepted")
	}
}

// TestCounterAnnouncementRecovers: with no validation in the picture, the
// victim's more-specifics win back (nearly) the whole internet.
func TestCounterAnnouncementRecovers(t *testing.T) {
	pol, g, c := testWorld(t, 700)
	victim, err := topology.FindTarget(g, c, topology.TargetQuery{Depth: 2, Stub: true})
	if err != nil {
		t.Fatal(err)
	}
	attacker := c.Tier1[0]

	// Baseline: the hijack pollutes a substantial share.
	o, err := core.NewSolver(pol).Solve(core.Attack{Target: victim, Attacker: attacker}, nil)
	if err != nil {
		t.Fatal(err)
	}
	polluted := o.PollutedCount()
	if polluted == 0 {
		t.Skip("attack polluted nothing; nothing to mitigate")
	}
	res, err := Execute(pol, Plan{Victim: victim, Attacker: attacker, VictimPrefix: mp("129.82.0.0/16")})
	if err != nil {
		t.Fatal(err)
	}
	if res.RecoveredASes != g.N()-1 {
		t.Errorf("recovered %d of %d ASes; counter-announcement should win everywhere", res.RecoveredASes, g.N()-1)
	}
	if !res.MitigationValid {
		t.Error("no validator configured; mitigation cannot be invalid")
	}
}

// TestMaxLengthTrap reproduces the operational trap: a conservative ROA
// (MaxLength = prefix length) makes the victim's own mitigation Invalid,
// so filtering ASes drop it and part of the internet stays stranded.
func TestMaxLengthTrap(t *testing.T) {
	pol, g, c := testWorld(t, 900)
	victim, err := topology.FindTarget(g, c, topology.TargetQuery{Depth: 2, Stub: true})
	if err != nil {
		t.Fatal(err)
	}
	attacker := c.Tier1[0]
	filtering := topology.NodesByDegree(g)[:30]

	study, err := Study(pol, victim, attacker, mp("129.82.0.0/16"), filtering)
	if err != nil {
		t.Fatal(err)
	}
	if !study.Permissive.MitigationValid {
		t.Error("permissive ROA should validate the halves")
	}
	if study.Conservative.MitigationValid {
		t.Error("conservative ROA should invalidate the halves")
	}
	// The permissive mitigation recovers everyone; the conservative one
	// strands everything behind the filtering core.
	if study.Permissive.RecoveredASes != g.N()-1 {
		t.Errorf("permissive recovered %d of %d", study.Permissive.RecoveredASes, g.N()-1)
	}
	if study.Conservative.RecoveredASes >= study.Permissive.RecoveredASes {
		t.Errorf("conservative ROA should strand ASes: %d vs %d recovered",
			study.Conservative.RecoveredASes, study.Permissive.RecoveredASes)
	}
	if study.Conservative.StrandedASes == 0 {
		t.Error("MaxLength trap stranded nobody despite a filtering core")
	}
	// Filtering ASes themselves are stranded (they drop the cure).
	// Spot-check via the stranded count covering at least the filter set.
	if study.Conservative.StrandedASes < len(filtering) {
		t.Errorf("stranded %d < filter deployment %d", study.Conservative.StrandedASes, len(filtering))
	}
}
