// Package mitigate implements the paper's third defense class — reactive
// mitigation ("reactive mitigation systems minimize the effects of an
// attack once it has been detected. An example is route purge/promote") —
// as the classic sub-prefix counter-announcement: once a hijack is
// detected, the victim announces more-specific halves of its prefix,
// which win longest-prefix-match forwarding back from the attacker
// everywhere they propagate.
//
// The package also models the operational trap that couples mitigation to
// the RPKI substrate: if the victim's ROA was published with MaxLength
// equal to the covering prefix length (the conservative practice), its own
// /17 counter-announcements validate as Invalid, and every AS performing
// route-origin validation drops the cure along with the disease.
package mitigate

import (
	"fmt"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/prefix"
	"github.com/bgpsim/bgpsim/internal/rpki"
)

// Plan describes one sub-prefix mitigation attempt.
type Plan struct {
	// Victim is the hijacked AS (node index).
	Victim int
	// Attacker is the hijacking AS.
	Attacker int
	// VictimPrefix is the hijacked covering prefix.
	VictimPrefix prefix.Prefix
	// Validator is the route-origin oracle filters consult (nil = no
	// validation anywhere).
	Validator rpki.OriginValidator
	// Filtering lists ASes performing route-origin validation.
	Filtering []int
}

// Result reports the outcome of the counter-announcement.
type Result struct {
	// Halves are the two announced more-specifics.
	Halves [2]prefix.Prefix
	// MitigationValid reports whether the victim's more-specifics
	// validate against the published origin data (false = the ROA
	// MaxLength trap: filters drop the cure).
	MitigationValid bool
	// RecoveredASes counts ASes whose traffic the counter-announcement
	// wins back (they select the victim's more-specific).
	RecoveredASes int
	// StrandedASes counts ASes left without the more-specific route
	// (behind filters that drop an Invalid mitigation, or unreachable).
	StrandedASes int
}

// Halves splits p into its two more-specific halves.
func Halves(p prefix.Prefix) ([2]prefix.Prefix, error) {
	if p.Len >= 32 {
		return [2]prefix.Prefix{}, fmt.Errorf("mitigate: cannot split a /%d", p.Len)
	}
	lo := prefix.New(p.Addr, p.Len+1)
	hi := prefix.New(p.Addr|1<<(31-p.Len), p.Len+1)
	return [2]prefix.Prefix{lo, hi}, nil
}

// Execute runs the counter-announcement on the converged internet: the
// victim originates both halves; in each half's routing plane the victim
// is the only origin, so every AS that accepts the announcement recovers.
// Filtering ASes consult the validator: when the more-specific validates
// as Invalid (the MaxLength trap) they drop it — and ASes whose only
// paths cross droppers stay stranded on the attacker.
func Execute(pol *core.Policy, plan Plan) (*Result, error) {
	n := pol.N()
	if plan.Victim < 0 || plan.Victim >= n || plan.Attacker < 0 || plan.Attacker >= n {
		return nil, fmt.Errorf("mitigate: node index out of range")
	}
	if plan.Victim == plan.Attacker {
		return nil, fmt.Errorf("mitigate: victim and attacker are the same node")
	}
	halves, err := Halves(plan.VictimPrefix)
	if err != nil {
		return nil, err
	}
	res := &Result{Halves: halves, MitigationValid: true}

	// Validate the mitigation announcement itself.
	var blocked *asn.IndexSet
	if plan.Validator != nil && len(plan.Filtering) > 0 {
		victimASN := pol.Graph().ASN(plan.Victim)
		invalid := false
		for _, h := range halves {
			if plan.Validator.Validate(h, victimASN) == rpki.Invalid {
				invalid = true
			}
		}
		if invalid {
			res.MitigationValid = false
			blocked = asn.NewIndexSet(n)
			for _, f := range plan.Filtering {
				if f < 0 || f >= n {
					return nil, fmt.Errorf("mitigate: filtering node %d out of range", f)
				}
				blocked.Add(f)
			}
		}
	}

	// The more-specific plane: only the victim announces. Reuse the
	// sub-prefix machinery with the victim in the announcing role; the
	// blocked set (if the mitigation is Invalid) drops it at validators.
	solver := core.NewSolver(pol)
	o, err := solver.Solve(core.Attack{
		Target:    plan.Attacker, // unused in a sub-prefix plane
		Attacker:  plan.Victim,   // the announcing origin
		SubPrefix: true,
	}, blocked)
	if err != nil {
		return nil, fmt.Errorf("mitigate: %w", err)
	}
	for i := 0; i < n; i++ {
		if i == plan.Victim {
			continue
		}
		if o.Origin(i) == core.OriginAttacker { // routes to the announcing victim
			res.RecoveredASes++
		} else {
			res.StrandedASes++
		}
	}
	return res, nil
}

// StudyResult contrasts mitigation with a permissive ROA (MaxLength
// covers the halves) against the conservative-MaxLength trap.
type StudyResult struct {
	Permissive   *Result
	Conservative *Result
	// FilteringASes is the validator deployment size used.
	FilteringASes int
}

// Study runs both variants with the same filter deployment: a ROA with
// MaxLength = len+1 (mitigation validates) versus MaxLength = len (the
// halves validate Invalid and get dropped by every filtering AS).
func Study(pol *core.Policy, victim, attacker int, victimPrefix prefix.Prefix, filtering []int) (*StudyResult, error) {
	victimASN := pol.Graph().ASN(victim)

	var permissive rpki.Store
	if err := permissive.Add(rpki.ROA{Prefix: victimPrefix, MaxLength: victimPrefix.Len + 1, Origin: victimASN}); err != nil {
		return nil, err
	}
	var conservative rpki.Store
	if err := conservative.Add(rpki.ROA{Prefix: victimPrefix, MaxLength: victimPrefix.Len, Origin: victimASN}); err != nil {
		return nil, err
	}
	base := Plan{Victim: victim, Attacker: attacker, VictimPrefix: victimPrefix, Filtering: filtering}

	planP := base
	planP.Validator = &permissive
	resP, err := Execute(pol, planP)
	if err != nil {
		return nil, err
	}
	planC := base
	planC.Validator = &conservative
	resC, err := Execute(pol, planC)
	if err != nil {
		return nil, err
	}
	return &StudyResult{Permissive: resP, Conservative: resC, FilteringASes: len(filtering)}, nil
}
