// Package asn provides autonomous-system number types and compact AS sets.
//
// Simulation code addresses ASes by dense integer index (assigned by the
// topology package); ASN values appear only at the edges of the system —
// input parsing, reporting, and origin-authorization records. Keeping the
// two representations distinct avoids an entire class of "index used as
// ASN" bugs.
package asn

import (
	"fmt"
	"math/bits"
	"sort"
	"strconv"
)

// ASN is a BGP autonomous system number (RFC 6793 four-octet form).
type ASN uint32

// String renders the ASN in the conventional "AS<number>" form.
func (a ASN) String() string {
	return "AS" + strconv.FormatUint(uint64(a), 10)
}

// FromUint32 converts a wire-format four-octet AS number to the typed
// form. It is the only sanctioned integer→ASN conversion outside this
// package (enforced by bgplint's asnconv analyzer), so call sites state
// explicitly that the value in hand is an AS number, not a node index.
func FromUint32(v uint32) ASN { return ASN(v) }

// Uint32 returns the wire-format four-octet AS number — the sanctioned
// ASN→integer conversion for encoders and formatters.
func (a ASN) Uint32() uint32 { return uint32(a) }

// Parse parses an ASN from decimal text, with or without an "AS" prefix.
func Parse(s string) (ASN, error) {
	t := s
	if len(t) >= 2 && (t[0] == 'A' || t[0] == 'a') && (t[1] == 'S' || t[1] == 's') {
		t = t[2:]
	}
	v, err := strconv.ParseUint(t, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("parse ASN %q: %w", s, err)
	}
	return ASN(v), nil
}

// Set is a set of ASNs. The zero value is an empty set ready to use for
// reads; use Add (which allocates lazily) for writes.
type Set map[ASN]struct{}

// NewSet returns a Set containing the given members.
func NewSet(members ...ASN) Set {
	s := make(Set, len(members))
	for _, m := range members {
		s[m] = struct{}{}
	}
	return s
}

// Add inserts a into the set.
func (s Set) Add(a ASN) { s[a] = struct{}{} }

// Contains reports whether a is a member.
func (s Set) Contains(a ASN) bool {
	_, ok := s[a]
	return ok
}

// Sorted returns the members in ascending order.
func (s Set) Sorted() []ASN {
	out := make([]ASN, 0, len(s))
	for a := range s { //bgplint:ignore maporder members are sorted immediately below
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IndexSet is a bitset over dense node indices. It is the workhorse set
// representation inside attack sweeps, where allocation-free membership
// tests dominate the profile.
type IndexSet struct {
	words []uint64
	n     int
}

// NewIndexSet returns an empty IndexSet able to hold indices [0, size).
func NewIndexSet(size int) *IndexSet {
	return &IndexSet{words: make([]uint64, (size+63)/64), n: size}
}

// Len returns the capacity (number of addressable indices).
func (s *IndexSet) Len() int { return s.n }

// Add inserts index i.
func (s *IndexSet) Add(i int) { s.words[i>>6] |= 1 << (uint(i) & 63) }

// Remove deletes index i.
func (s *IndexSet) Remove(i int) { s.words[i>>6] &^= 1 << (uint(i) & 63) }

// Contains reports whether index i is a member.
func (s *IndexSet) Contains(i int) bool {
	return s.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Clear removes all members, retaining capacity.
func (s *IndexSet) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Count returns the number of members.
func (s *IndexSet) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Members appends all member indices to dst and returns it.
func (s *IndexSet) Members(dst []int) []int {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			dst = append(dst, wi*64+b)
			w &= w - 1
		}
	}
	return dst
}
