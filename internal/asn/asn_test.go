package asn

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParse(t *testing.T) {
	tests := []struct {
		in      string
		want    ASN
		wantErr bool
	}{
		{"0", 0, false},
		{"64512", 64512, false},
		{"AS7018", 7018, false},
		{"as4826", 4826, false},
		{"4294967295", 4294967295, false},
		{"4294967296", 0, true},
		{"", 0, true},
		{"AS", 0, true},
		{"-1", 0, true},
		{"seven", 0, true},
	}
	for _, tt := range tests {
		got, err := Parse(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("Parse(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("Parse(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestASNString(t *testing.T) {
	if got := ASN(7018).String(); got != "AS7018" {
		t.Errorf("String() = %q, want AS7018", got)
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		a := ASN(v)
		back, err := Parse(a.String())
		return err == nil && back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSet(t *testing.T) {
	s := NewSet(3, 1, 2, 3)
	if len(s) != 3 {
		t.Fatalf("len = %d, want 3", len(s))
	}
	if !s.Contains(2) || s.Contains(9) {
		t.Error("Contains gave wrong answers")
	}
	s.Add(9)
	if !s.Contains(9) {
		t.Error("Add(9) not visible")
	}
	got := s.Sorted()
	want := []ASN{1, 2, 3, 9}
	if len(got) != len(want) {
		t.Fatalf("Sorted() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sorted() = %v, want %v", got, want)
		}
	}
}

func TestIndexSetBasics(t *testing.T) {
	s := NewIndexSet(200)
	if s.Count() != 0 {
		t.Fatalf("empty set Count = %d", s.Count())
	}
	for _, i := range []int{0, 63, 64, 65, 127, 128, 199} {
		s.Add(i)
	}
	if s.Count() != 7 {
		t.Fatalf("Count = %d, want 7", s.Count())
	}
	if !s.Contains(64) || s.Contains(66) {
		t.Error("Contains wrong after Add")
	}
	s.Remove(64)
	if s.Contains(64) || s.Count() != 6 {
		t.Error("Remove(64) did not take effect")
	}
	members := s.Members(nil)
	want := []int{0, 63, 65, 127, 128, 199}
	if len(members) != len(want) {
		t.Fatalf("Members = %v, want %v", members, want)
	}
	for i := range want {
		if members[i] != want[i] {
			t.Fatalf("Members = %v, want %v", members, want)
		}
	}
	s.Clear()
	if s.Count() != 0 {
		t.Error("Clear left members behind")
	}
}

// TestIndexSetMatchesMap property-tests the bitset against a map-based model.
func TestIndexSetMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const size = 500
	s := NewIndexSet(size)
	model := make(map[int]bool)
	for step := 0; step < 5000; step++ {
		i := rng.Intn(size)
		switch rng.Intn(3) {
		case 0:
			s.Add(i)
			model[i] = true
		case 1:
			s.Remove(i)
			delete(model, i)
		case 2:
			if s.Contains(i) != model[i] {
				t.Fatalf("step %d: Contains(%d) = %v, model %v", step, i, s.Contains(i), model[i])
			}
		}
		if s.Count() != len(model) {
			t.Fatalf("step %d: Count = %d, model %d", step, s.Count(), len(model))
		}
	}
}

func TestIndexSetIdempotentAdd(t *testing.T) {
	s := NewIndexSet(10)
	s.Add(3)
	s.Add(3)
	if s.Count() != 1 {
		t.Errorf("double Add changed Count = %d", s.Count())
	}
}
