package hijack

import (
	"crypto/sha256"
	"encoding/binary"
	"runtime"
	"testing"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/sweep"
	"github.com/bgpsim/bgpsim/internal/topology"
)

// These tests pin the repository's bit-identical rerun invariant (see
// DESIGN.md "Determinism & static analysis"): the same seed must produce
// byte-for-byte identical results across runs — including the full engine
// event trace, whose ordering is sensitive to map iteration, and the
// parallel sweep, whose ordering is sensitive to goroutine scheduling.

// traceDigest hashes every field of every event plus the generation count.
func traceDigest(tr *core.Trace) [sha256.Size]byte {
	h := sha256.New()
	binary.Write(h, binary.BigEndian, int64(tr.Generations)) //nolint:errcheck // hash.Hash cannot fail
	for _, e := range tr.Events {
		binary.Write(h, binary.BigEndian, int64(e.Gen)) //nolint:errcheck
		binary.Write(h, binary.BigEndian, e.From)       //nolint:errcheck
		binary.Write(h, binary.BigEndian, e.To)         //nolint:errcheck
		binary.Write(h, binary.BigEndian, e.Origin)     //nolint:errcheck
		binary.Write(h, binary.BigEndian, e.Withdraw)   //nolint:errcheck
		binary.Write(h, binary.BigEndian, e.Accepted)   //nolint:errcheck
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// sweepDigest hashes the full per-attack measurement vectors.
func sweepDigest(r *SweepResult) [sha256.Size]byte {
	h := sha256.New()
	binary.Write(h, binary.BigEndian, int64(r.Target)) //nolint:errcheck // hash.Hash cannot fail
	for _, a := range r.Attackers {
		binary.Write(h, binary.BigEndian, int64(a)) //nolint:errcheck
	}
	for _, p := range r.Pollution {
		binary.Write(h, binary.BigEndian, int64(p)) //nolint:errcheck
	}
	for _, w := range r.WeightFrac {
		binary.Write(h, binary.BigEndian, w) //nolint:errcheck
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// TestEngineTraceDeterminism runs the full message-passing engine twice on
// the same attack and requires byte-identical event traces. A stray map
// iteration anywhere in the engine's per-generation work (the bug class
// bgplint's maporder analyzer exists to catch) shows up here as a digest
// mismatch long before it corrupts a published figure.
func TestEngineTraceDeterminism(t *testing.T) {
	pol, g, c := testWorld(t, 300)
	target, err := topology.FindTarget(g, c, topology.TargetQuery{Depth: 2, Stub: true})
	if err != nil {
		t.Fatal(err)
	}
	attacker := c.Tier1[0]
	at := core.Attack{Target: target, Attacker: attacker}

	var digests [2][sha256.Size]byte
	var events int
	for run := 0; run < 2; run++ {
		o, tr, err := core.NewEngine(pol).Run(at, nil, true)
		if err != nil {
			t.Fatal(err)
		}
		if o == nil || tr == nil || len(tr.Events) == 0 {
			t.Fatal("engine produced no trace")
		}
		digests[run] = traceDigest(tr)
		events = len(tr.Events)
	}
	if digests[0] != digests[1] {
		t.Errorf("engine trace not reproducible: run digests %x != %x over %d events",
			digests[0][:8], digests[1][:8], events)
	}
}

// TestParallelSweepDeterminism runs the concurrent hijack sweep twice with
// multiple workers and requires byte-identical result vectors, and that
// the parallel result matches the sequential one. Results are written into
// pre-sized slices at the attack's own index, so scheduling order must not
// be observable.
func TestParallelSweepDeterminism(t *testing.T) {
	// Force true parallelism even on single-CPU CI runners: with
	// GOMAXPROCS=1 the workers merely interleave and scheduling races
	// could hide.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	pol, g, c := testWorld(t, 300)
	target, err := topology.FindTarget(g, c, topology.TargetQuery{Depth: 2, Stub: true})
	if err != nil {
		t.Fatal(err)
	}
	cfg := SweepConfig{Target: target, Attackers: AllNodes(g.N()), Workers: 4}

	var digests [2][sha256.Size]byte
	for run := 0; run < 2; run++ {
		res, err := Sweep(pol, cfg)
		if err != nil {
			t.Fatal(err)
		}
		digests[run] = sweepDigest(res)
	}
	if digests[0] != digests[1] {
		t.Errorf("parallel sweep not reproducible: %x != %x", digests[0][:8], digests[1][:8])
	}

	seq := cfg
	seq.Workers = 1
	res, err := Sweep(pol, seq)
	if err != nil {
		t.Fatal(err)
	}
	if d := sweepDigest(res); d != digests[0] {
		t.Errorf("parallel sweep diverges from sequential: %x != %x", digests[0][:8], d[:8])
	}
}

// TestSweepAllSerialEquivalence compares the flattened multi-configuration
// kernel run against a hand-rolled single-solver serial loop — the
// pre-kernel reference implementation — and requires byte-identical
// measurement vectors at every worker count. This is the equivalence proof
// for the deployment-ladder refactor: rungs that used to run one at a time
// now load-balance across one pool, and nothing observable may change.
func TestSweepAllSerialEquivalence(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	pol, g, c := testWorld(t, 300)
	target, err := topology.FindTarget(g, c, topology.TargetQuery{Depth: 2, Stub: true})
	if err != nil {
		t.Fatal(err)
	}
	blocked := asn.NewIndexSet(g.N())
	for _, i := range c.Tier1 {
		blocked.Add(i)
	}
	cfgs := []SweepConfig{
		{Target: target, Attackers: AllNodes(g.N())},
		{Target: target, Attackers: AllNodes(g.N()), Blocked: blocked},
		{Target: target, Attackers: g.TransitNodes(), SubPrefix: true},
	}

	// Serial reference: one solver, configuration by configuration, attack
	// by attack — exactly the shape every runner had before the kernel.
	totalWeight := g.TotalAddrWeight()
	solver := core.NewSolver(pol)
	refs := make([]*SweepResult, len(cfgs))
	for ci, cfg := range cfgs {
		ref := &SweepResult{Target: cfg.Target}
		for _, a := range cfg.Attackers {
			if a == cfg.Target {
				continue
			}
			o, err := solver.Solve(core.Attack{Target: cfg.Target, Attacker: a, SubPrefix: cfg.SubPrefix}, cfg.Blocked)
			if err != nil {
				t.Fatal(err)
			}
			count := 0
			var weight int64
			for v := 0; v < o.N(); v++ {
				if o.Polluted(v) {
					count++
					weight += g.AddrWeight(v)
				}
			}
			ref.Attackers = append(ref.Attackers, a)
			ref.Pollution = append(ref.Pollution, count)
			ref.WeightFrac = append(ref.WeightFrac, float64(weight)/float64(totalWeight))
		}
		refs[ci] = ref
	}

	for _, workers := range []int{1, 4} {
		results, err := SweepAll(pol, cfgs, sweep.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for ci := range cfgs {
			if got, want := sweepDigest(results[ci]), sweepDigest(refs[ci]); got != want {
				t.Errorf("workers=%d cfg=%d: kernel digest %x != serial reference %x",
					workers, ci, got[:8], want[:8])
			}
		}
	}
}

// TestSweepRunDeterminism drives the sweep.Run kernel directly from this
// package's workload shape and requires identical observer-visible outcome
// digests at worker counts 1, 4, and GOMAXPROCS.
func TestSweepRunDeterminism(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	pol, g, c := testWorld(t, 300)
	target, err := topology.FindTarget(g, c, topology.TargetQuery{Depth: 2, Stub: true})
	if err != nil {
		t.Fatal(err)
	}
	attackers := g.TransitNodes()

	digest := func(workers int) [sha256.Size]byte {
		polluted := make([]int64, len(attackers))
		err := sweep.Run(pol, len(attackers),
			func(i int) (core.Attack, core.Defense) {
				return core.Attack{Target: target, Attacker: attackers[i]}, core.Defense{}
			},
			sweep.Options{Workers: workers},
			func(i int, o *core.Outcome) { polluted[i] = int64(o.PollutedCount()) })
		if err != nil {
			t.Fatal(err)
		}
		h := sha256.New()
		for _, p := range polluted {
			binary.Write(h, binary.BigEndian, p) //nolint:errcheck // hash.Hash cannot fail
		}
		var out [sha256.Size]byte
		h.Sum(out[:0])
		return out
	}

	want := digest(1)
	for _, workers := range []int{4, 0} {
		if got := digest(workers); got != want {
			t.Errorf("sweep.Run workers=%d digest %x != serial %x", workers, got[:8], want[:8])
		}
	}
}
