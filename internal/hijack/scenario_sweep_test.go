package hijack

import (
	"runtime"
	"testing"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/topology"
)

// TestForgedOriginWorkerInvariance is the scenario-axis arm of the CI
// digest job: a forged-origin sweep defended by ROV + ASPA must produce
// byte-identical result vectors at workers ∈ {1, 8}. Forged-origin cells
// exercise the ASPA-plausibility branch of the scenario resolver, which
// the exact-origin determinism tests never touch.
func TestForgedOriginWorkerInvariance(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	pol, g, c := testWorld(t, 300)
	target, err := topology.FindTarget(g, c, topology.TargetQuery{Depth: 2, Stub: true})
	if err != nil {
		t.Fatal(err)
	}
	blocked := asn.NewIndexSet(g.N())
	aspa := asn.NewIndexSet(g.N())
	for i := 0; i < g.N(); i += 4 {
		blocked.Add(i)
	}
	for i := 0; i < g.N(); i += 3 {
		aspa.Add(i)
	}
	cfg := SweepConfig{
		Target:    target,
		Attackers: AllNodes(g.N()),
		Kind:      core.KindForgedOrigin,
		Defense:   core.Defense{Blocked: blocked, ASPA: aspa},
	}
	var ref [32]byte
	for i, workers := range []int{1, 8} {
		cfg.Workers = workers
		res, err := Sweep(pol, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		d := sweepDigest(res)
		if i == 0 {
			ref = d
			continue
		}
		if d != ref {
			t.Errorf("workers=%d: forged-origin sweep digest %x diverges from serial %x",
				workers, d[:8], ref[:8])
		}
	}
}
