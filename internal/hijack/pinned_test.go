package hijack_test

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"testing"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/experiments"
	"github.com/bgpsim/bgpsim/internal/hijack"
	"github.com/bgpsim/bgpsim/internal/sweep"
)

// Pinned SHA-256 values captured from the pre-scenario-refactor tree.
// The scenario layer must be behavior-preserving for the paper's original
// attack model: an exact-origin hijack defended by a blocked set alone has
// to reproduce both the workload identity (MatrixDigest) and the solved
// record stream bit for bit.
const (
	pinnedMatrixDigest = "591e5093ad9282265a8cc203271ac5f23ae06df80035f78072e29a063a9d1b97"
	pinnedSweepDigest  = "1b4585c9eb64a0a077604c230d30a723271e84d7822d2789c375025876de08a5"
)

// TestExactOriginPinnedDigests rebuilds the captured workload — three
// sweep configurations over the scale-400 seed-7 world (undefended,
// blocked-set exact-prefix, blocked-set sub-prefix) — and checks both
// digests against the recorded constants.
func TestExactOriginPinnedDigests(t *testing.T) {
	w, err := experiments.NewWorld(400, 7)
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	n := w.Graph.N()
	blocked := asn.NewIndexSet(n)
	for i := 0; i < n; i += 7 {
		blocked.Add(i)
	}
	cfgs := []hijack.SweepConfig{
		{Target: 1, Attackers: hijack.AllNodes(n)},
		{Target: 2, Attackers: hijack.AllNodes(n), Blocked: blocked},
		{Target: 3, Attackers: hijack.AllNodes(n), Blocked: blocked, SubPrefix: true},
	}
	wl, err := hijack.NewWorkload(w.Policy, cfgs)
	if err != nil {
		t.Fatalf("NewWorkload: %v", err)
	}
	if got := sweep.MatrixDigest(wl.Matrix); got != pinnedMatrixDigest {
		t.Errorf("MatrixDigest changed for exact-origin blocked-set workload:\n got %s\nwant %s", got, pinnedMatrixDigest)
	}

	results, err := hijack.SweepAll(w.Policy, cfgs, sweep.Options{Workers: 3})
	if err != nil {
		t.Fatalf("SweepAll: %v", err)
	}
	h := sha256.New()
	var buf [8]byte
	for _, r := range results {
		for i := range r.Pollution {
			binary.BigEndian.PutUint64(buf[:], uint64(int64(r.Pollution[i])))
			h.Write(buf[:])
			binary.BigEndian.PutUint64(buf[:], math.Float64bits(r.WeightFrac[i]))
			h.Write(buf[:])
		}
	}
	if got := hex.EncodeToString(h.Sum(nil)); got != pinnedSweepDigest {
		t.Errorf("sweep record stream changed for exact-origin blocked-set workload:\n got %s\nwant %s", got, pinnedSweepDigest)
	}
}
