package hijack

import (
	"encoding/json"
	"math"
	"testing"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/topology"
)

// testWorld builds a mid-sized synthetic topology with policy and
// classification for sweep tests.
func testWorld(t *testing.T, n int) (*core.Policy, *topology.Graph, *topology.Classification) {
	t.Helper()
	g := topology.MustGenerate(topology.DefaultParams(n))
	con, err := topology.ContractSiblings(g)
	if err != nil {
		t.Fatal(err)
	}
	cg := con.Graph
	c := topology.Classify(cg, topology.ClassifyOptions{})
	pol, err := core.NewPolicy(cg, c.Tier1)
	if err != nil {
		t.Fatal(err)
	}
	return pol, cg, c
}

func TestSweepValidation(t *testing.T) {
	pol, _, _ := testWorld(t, 200)
	if _, err := Sweep(pol, SweepConfig{Target: -1}); err == nil {
		t.Error("bad target accepted")
	}
	if _, err := Sweep(pol, SweepConfig{Target: 0, Attackers: []int{pol.N()}}); err == nil {
		t.Error("bad attacker accepted")
	}
}

func TestSweepBasics(t *testing.T) {
	pol, g, c := testWorld(t, 400)
	target, err := topology.FindTarget(g, c, topology.TargetQuery{Depth: 2, Stub: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Sweep(pol, SweepConfig{Target: target, Attackers: AllNodes(g.N())})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Attackers) != g.N()-1 {
		t.Fatalf("attacks = %d, want %d (target skipped)", len(res.Attackers), g.N()-1)
	}
	sum := res.Summary()
	if sum.Mean <= 0 {
		t.Error("mean pollution should be positive on an undefended graph")
	}
	if sum.Max >= g.N() {
		t.Error("pollution cannot reach all nodes (attacker+target excluded)")
	}
	for i, p := range res.Pollution {
		if p < 0 || p > g.N()-2 {
			t.Fatalf("attack %d pollution %d out of range", i, p)
		}
		if res.WeightFrac[i] < 0 || res.WeightFrac[i] > 1 {
			t.Fatalf("attack %d weight fraction %v out of [0,1]", i, res.WeightFrac[i])
		}
	}
	// CCDF starts with all attacks and decreases.
	ccdf := res.CCDF()
	if len(ccdf) == 0 || ccdf[0].Count != len(res.Attackers) {
		t.Errorf("CCDF head = %+v", ccdf[:min(3, len(ccdf))])
	}
	if res.CountAttacksAtLeast(0) != len(res.Attackers) {
		t.Error("CountAttacksAtLeast(0) should count everything")
	}
}

func TestSweepWorkersAgree(t *testing.T) {
	pol, g, c := testWorld(t, 300)
	target, err := topology.FindTarget(g, c, topology.TargetQuery{Depth: 1, Stub: true})
	if err != nil {
		t.Fatal(err)
	}
	cfg := SweepConfig{Target: target, Attackers: AllNodes(g.N())}
	seq, err := Sweep(pol, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	par, err := Sweep(pol, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.Pollution {
		if seq.Pollution[i] != par.Pollution[i] {
			t.Fatalf("parallel sweep diverged at %d: %d vs %d", i, seq.Pollution[i], par.Pollution[i])
		}
	}
}

// TestSweepDepthMonotonicity reproduces the paper's central Section IV
// finding on the synthetic topology: deeper targets are (on average) more
// vulnerable than depth-1 targets.
func TestSweepDepthMonotonicity(t *testing.T) {
	pol, g, c := testWorld(t, 1200)
	shallow, err := topology.FindTarget(g, c, topology.TargetQuery{Depth: 1, Stub: true})
	if err != nil {
		t.Fatal(err)
	}
	deepQ := topology.TargetQuery{Depth: 3, Stub: true}
	deep, err := topology.FindTarget(g, c, deepQ)
	if err != nil {
		t.Skip("no depth-3 stub in this topology")
	}
	attackers := AllNodes(g.N())
	rs, err := Sweep(pol, SweepConfig{Target: shallow, Attackers: attackers})
	if err != nil {
		t.Fatal(err)
	}
	rd, err := Sweep(pol, SweepConfig{Target: deep, Attackers: attackers})
	if err != nil {
		t.Fatal(err)
	}
	if rd.Summary().Mean <= rs.Summary().Mean {
		t.Errorf("depth-3 target mean pollution %.1f not worse than depth-1 %.1f",
			rd.Summary().Mean, rs.Summary().Mean)
	}
}

// TestSweepBlockedReducesPollution: filtering at high-degree ASes must
// reduce pollution and can never increase it on any single attack.
func TestSweepBlockedReducesPollution(t *testing.T) {
	pol, g, c := testWorld(t, 800)
	target, err := topology.FindTarget(g, c, topology.TargetQuery{Depth: 2, Stub: true})
	if err != nil {
		t.Fatal(err)
	}
	attackers := g.TransitNodes()
	base, err := Sweep(pol, SweepConfig{Target: target, Attackers: attackers})
	if err != nil {
		t.Fatal(err)
	}
	blocked := asn.NewIndexSet(g.N())
	for _, i := range topology.NodesByDegree(g)[:40] {
		blocked.Add(i)
	}
	def, err := Sweep(pol, SweepConfig{Target: target, Attackers: attackers, Blocked: blocked})
	if err != nil {
		t.Fatal(err)
	}
	if def.Summary().Mean >= base.Summary().Mean {
		t.Errorf("filtering did not reduce mean pollution: %.1f vs %.1f",
			def.Summary().Mean, base.Summary().Mean)
	}
	// A blocked set can reroute individual ASes but a blocked node itself
	// must never be polluted.
	for k, a := range def.Attackers {
		_ = a
		_ = k
	}
	// Spot-check one attack outcome directly.
	s := core.NewSolver(pol)
	o, err := s.Solve(core.Attack{Target: target, Attacker: attackers[0]}, blocked)
	if err != nil {
		t.Fatal(err)
	}
	members := blocked.Members(nil)
	for _, b := range members {
		if o.Polluted(b) {
			t.Fatalf("blocked node %d polluted", b)
		}
	}
}

func TestTopAttackers(t *testing.T) {
	pol, g, c := testWorld(t, 400)
	target, err := topology.FindTarget(g, c, topology.TargetQuery{Depth: 1, Stub: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Sweep(pol, SweepConfig{Target: target, Attackers: AllNodes(g.N())})
	if err != nil {
		t.Fatal(err)
	}
	top := res.TopAttackers(5, g, c)
	if len(top) != 5 {
		t.Fatalf("top = %d entries", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Pollution > top[i-1].Pollution {
			t.Fatal("TopAttackers not sorted by pollution")
		}
	}
	// The strongest attack must match the sweep max.
	if top[0].Pollution != res.Summary().Max {
		t.Errorf("top pollution %d != max %d", top[0].Pollution, res.Summary().Max)
	}
	// Asking for more than available truncates.
	all := res.TopAttackers(10*g.N(), g, c)
	if len(all) != len(res.Attackers) {
		t.Errorf("oversized k returned %d, want %d", len(all), len(res.Attackers))
	}
}

// TestAggressivenessDepthCorrelation verifies the paper's negative
// depth/aggressiveness correlation on synthetic data.
func TestAggressivenessDepthCorrelation(t *testing.T) {
	pol, g, c := testWorld(t, 1000)
	target, err := topology.FindTarget(g, c, topology.TargetQuery{Depth: 2, Stub: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Sweep(pol, SweepConfig{Target: target, Attackers: AllNodes(g.N())})
	if err != nil {
		t.Fatal(err)
	}
	rho, err := res.AggressivenessDepthCorrelation(c)
	if err != nil {
		t.Fatal(err)
	}
	if rho >= 0 {
		t.Errorf("aggressiveness/depth correlation = %.3f, want negative", rho)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestRecordAppendJSON pins Record's fast-marshal path to
// encoding/json byte for byte: shard files must carry identical
// payloads whichever path encoded them.
func TestRecordAppendJSON(t *testing.T) {
	for i := 0; i < 5000; i++ {
		r := Record{Pollution: i*13 - 7, WeightFrac: float64(i%617) / 617}
		want, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.AppendJSON(nil)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("AppendJSON(%+v) = %q, json.Marshal = %q", r, got, want)
		}
	}
	for _, wf := range []float64{0, 1e-7, 1e21, 1e22, -3.5e-300, math.MaxFloat64} {
		r := Record{Pollution: 1, WeightFrac: wf}
		want, _ := json.Marshal(r)
		got, err := r.AppendJSON(nil)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("AppendJSON at %v = %q, want %q", wf, got, want)
		}
	}
	if _, err := (Record{WeightFrac: math.NaN()}).AppendJSON(nil); err == nil {
		t.Fatal("AppendJSON accepted NaN")
	}
}

// TestRecordParseJSON pins the decode twin: every payload AppendJSON
// produces must parse back bit-identically through the fast path, and
// every shape it does not produce must decode exactly as encoding/json
// would — values and errors both.
func TestRecordParseJSON(t *testing.T) {
	check := func(t *testing.T, payload []byte) {
		t.Helper()
		var want Record
		wantErr := json.Unmarshal(payload, &want)
		var got Record
		gotErr := got.ParseJSON(payload)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("%s: error mismatch: json=%v parse=%v", payload, wantErr, gotErr)
		}
		if wantErr == nil && (got.Pollution != want.Pollution ||
			math.Float64bits(got.WeightFrac) != math.Float64bits(want.WeightFrac)) {
			t.Fatalf("%s: ParseJSON = %+v, json.Unmarshal = %+v", payload, got, want)
		}
	}
	// Round trip: AppendJSON's own output across magnitude extremes.
	for i := 0; i < 5000; i++ {
		r := Record{Pollution: i*13 - 7, WeightFrac: float64(i%617) / 617}
		enc, err := r.AppendJSON(nil)
		if err != nil {
			t.Fatal(err)
		}
		check(t, enc)
	}
	for _, wf := range []float64{0, math.Copysign(0, -1), 1e-7, 1e-6, 1e21, 1e22,
		-3.5e-300, math.MaxFloat64, math.SmallestNonzeroFloat64, 0.6372549019607843} {
		enc, err := Record{Pollution: 42, WeightFrac: wf}.AppendJSON(nil)
		if err != nil {
			t.Fatal(err)
		}
		check(t, enc)
	}
	// Shapes the fast path must hand to encoding/json, not mis-parse.
	for _, payload := range []string{
		`{ "pollution": 5, "weight_frac": 0.25 }`,
		`{"weight_frac":0.5,"pollution":9}`,
		`{"pollution":7}`,
		`{"pollution":7,"weight_frac":0.5,"extra":1}`,
		`{"pollution":01,"weight_frac":0.5}`,
		`{"pollution":1.5,"weight_frac":0.5}`,
		`{"pollution":2,"weight_frac":"0.5"}`,
		`{"pollution":3,"weight_frac":0.5`,
		`{"pollution":4,"weight_frac":1e999}`,
		`null`,
		`{}`,
	} {
		check(t, []byte(payload))
	}
}
