// Package hijack implements the paper's attack-measurement machinery:
// sweeping a target with attacks from many attacker ASes (the Section IV
// vulnerability analysis), per-attack pollution accounting in AS count and
// address-space weight, top-attacker ranking, and the vulnerability/depth
// correlation measurements.
package hijack

import (
	"encoding/json"
	"fmt"
	"math"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/recio"
	"github.com/bgpsim/bgpsim/internal/stats"
	"github.com/bgpsim/bgpsim/internal/sweep"
	"github.com/bgpsim/bgpsim/internal/topology"
)

// SweepConfig configures a vulnerability sweep against one target.
type SweepConfig struct {
	// Target is the victim node whose address space is hijacked.
	Target int
	// Attackers are the nodes to originate the hijack from, one attack
	// each; the target itself is skipped if present. Use every other AS
	// for the paper's worst case, or the transit ASes for its "optimistic"
	// stub-filtered case.
	Attackers []int
	// Blocked is the origin-validation (ROV) deployment set (nil = none);
	// it is Defense.Blocked kept as a top-level field for the paper's
	// original single-mechanism runs.
	Blocked *asn.IndexSet
	// Defense carries the full deployed-defense model (ASPA validators,
	// Peerlock) for scenario sweeps. When Blocked is also set it takes
	// the ROV slot unless Defense.Blocked is set too.
	Defense core.Defense
	// Kind selects the attack scenario swept (zero = exact/sub-prefix
	// type-0 origin hijack).
	Kind core.AttackKind
	// SubPrefix switches every attack to a sub-prefix hijack.
	SubPrefix bool
	// Workers bounds solve parallelism; 0 means GOMAXPROCS.
	Workers int
}

// defense resolves the configuration's effective Defense value.
func (c *SweepConfig) defense() core.Defense {
	d := c.Defense
	if d.Blocked == nil {
		d.Blocked = c.Blocked
	}
	return d
}

// SweepResult holds per-attack pollution measurements, parallel slices
// indexed by attack number.
type SweepResult struct {
	Target     int
	Attackers  []int     // attacker node per attack
	Pollution  []int     // polluted AS count per attack
	WeightFrac []float64 // polluted address-space fraction per attack
}

// Record is one attack's self-contained measurement: the two numbers
// every downstream curve and table is built from. It is the matrix
// runtime's stream element and the shard-file payload — JSON round-trips
// preserve it exactly (Go prints float64 at shortest-exact precision).
type Record struct {
	Pollution  int     `json:"pollution"`
	WeightFrac float64 `json:"weight_frac"`
}

// ColumnFields implements sweep.ColumnarRecord: pollution counts are
// small and slowly-moving (delta-encoded), weight fractions are raw
// float64 bits. The names are the JSON tags, so the columnar layout
// carries exactly the row layout's fields.
func (Record) ColumnFields() []recio.Field {
	return []recio.Field{
		{Name: "pollution", Kind: recio.KindDelta},
		{Name: "weight_frac", Kind: recio.KindFloat},
	}
}

// ColumnValues implements sweep.ColumnarRecord.
func (r Record) ColumnValues() []uint64 {
	return []uint64{uint64(r.Pollution), math.Float64bits(r.WeightFrac)}
}

// SetColumnValues implements sweep.ColumnarRecord.
func (r *Record) SetColumnValues(vals []uint64) {
	r.Pollution = int(vals[0])
	r.WeightFrac = math.Float64frombits(vals[1])
}

// AppendJSON implements sweep.JSONAppender: shard encoding marshals
// every record once, and this append path produces json.Marshal's exact
// bytes without its reflection cost (pinned by TestRecordAppendJSON).
func (r Record) AppendJSON(dst []byte) ([]byte, error) {
	dst = append(dst, `{"pollution":`...)
	dst = sweep.AppendJSONInt(dst, r.Pollution)
	dst = append(dst, `,"weight_frac":`...)
	dst, err := sweep.AppendJSONFloat(dst, r.WeightFrac)
	if err != nil {
		return nil, err
	}
	return append(dst, '}'), nil
}

// ParseJSON implements sweep.JSONParser, the decode twin of AppendJSON:
// strict shard reads unmarshal every record once, and this parse path
// decodes AppendJSON's exact byte shape without reflection (pinned
// bit-identical to json.Unmarshal by TestRecordParseJSON). Any other
// payload shape — whitespace, reordered fields, foreign writers — falls
// back to encoding/json, errors and all.
func (r *Record) ParseJSON(p []byte) error {
	const pre = `{"pollution":`
	const mid = `,"weight_frac":`
	if len(p) > len(pre)+len(mid)+2 && string(p[:len(pre)]) == pre {
		i := len(pre)
		pol, n, ok := sweep.ParseJSONInt(p[i:])
		if ok {
			i += n
			if len(p)-i > len(mid) && string(p[i:i+len(mid)]) == mid {
				i += len(mid)
				wf, n, ok := sweep.ParseJSONFloat(p[i:])
				if ok && i+n+1 == len(p) && p[len(p)-1] == '}' {
					r.Pollution = pol
					r.WeightFrac = wf
					return nil
				}
			}
		}
	}
	return json.Unmarshal(p, r)
}

// Record's column mapping and fast marshal/unmarshal paths must keep
// satisfying the codec seams they ride.
var (
	_ sweep.ColumnarRecord = (*Record)(nil)
	_ sweep.JSONAppender   = Record{}
	_ sweep.JSONParser     = (*Record)(nil)
)

// Measure compresses a transient outcome into a Record. totalWeight is
// g.TotalAddrWeight(), hoisted by the caller so per-attack extraction
// stays allocation-free. It accepts any converged view — a batch solve
// and a delta repair of the same attack measure identically (the weight
// accumulator is an integer, so the sum is order-free).
func Measure(g *topology.Graph, totalWeight int64, o core.OutcomeView) Record {
	count := 0
	var weight int64
	for v := 0; v < o.N(); v++ {
		if o.Polluted(v) {
			count++
			weight += g.AddrWeight(v)
		}
	}
	rec := Record{Pollution: count}
	if totalWeight > 0 {
		rec.WeightFrac = float64(weight) / float64(totalWeight)
	}
	return rec
}

// Workload is the validated matrix form of a configuration list: one
// matrix group per configuration, one cell per surviving attacker (the
// target itself is filtered out), all under one policy.
type Workload struct {
	Matrix sweep.Matrix
	// Attackers[c] is configuration c's validated attacker list — the
	// Attackers slice of the c-th SweepResult.
	Attackers [][]int
	cfgs      []SweepConfig
	pol       *core.Policy
}

// NewWorkload validates cfgs against the policy and flattens them into a
// matrix.
func NewWorkload(pol *core.Policy, cfgs []SweepConfig) (*Workload, error) {
	n := pol.N()
	w := &Workload{Attackers: make([][]int, len(cfgs)), cfgs: cfgs, pol: pol}
	for ci, cfg := range cfgs {
		if cfg.Target < 0 || cfg.Target >= n {
			return nil, fmt.Errorf("sweep: target %d out of range", cfg.Target)
		}
		if cfg.Kind == core.KindRouteLeak && cfg.SubPrefix {
			return nil, fmt.Errorf("sweep: config %d: a route leak re-announces the real prefix; sub-prefix route leaks are invalid", ci)
		}
		attackers := make([]int, 0, len(cfg.Attackers))
		for _, a := range cfg.Attackers {
			if a == cfg.Target {
				continue
			}
			if a < 0 || a >= n {
				return nil, fmt.Errorf("sweep: attacker %d out of range", a)
			}
			attackers = append(attackers, a)
		}
		w.Attackers[ci] = attackers
	}
	w.Matrix = sweep.Matrix{
		Groups: len(cfgs),
		Size:   func(c int) int { return len(w.Attackers[c]) },
		Policy: func(int) *core.Policy { return pol },
		Job: func(c, k int) (core.Attack, core.Defense) {
			cfg := &w.cfgs[c]
			return core.Attack{
				Target:    cfg.Target,
				Attacker:  w.Attackers[c][k],
				SubPrefix: cfg.SubPrefix,
				Kind:      cfg.Kind,
			}, cfg.defense()
		},
	}
	return w, nil
}

// Extract returns the per-cell measurement extractor for the matrix
// runtime; it runs concurrently on the workers.
func (w *Workload) Extract() func(c, k int, o *core.Outcome) Record {
	g := w.pol.Graph()
	totalWeight := g.TotalAddrWeight()
	return func(_, _ int, o *core.Outcome) Record { return Measure(g, totalWeight, o) }
}

// Results returns per-configuration result skeletons plus the streaming
// reducer that fills them from the workload's in-order record stream;
// results are complete once the stream finishes.
func (w *Workload) Results() ([]*SweepResult, sweep.Reducer[Record]) {
	results := make([]*SweepResult, len(w.cfgs))
	sizes := make([]int, len(w.cfgs))
	for ci := range w.cfgs {
		sizes[ci] = len(w.Attackers[ci])
		results[ci] = &SweepResult{
			Target:     w.cfgs[ci].Target,
			Attackers:  w.Attackers[ci],
			Pollution:  make([]int, 0, sizes[ci]),
			WeightFrac: make([]float64, 0, sizes[ci]),
		}
	}
	// Cursor over the group-major stream: records for configuration c
	// arrive contiguously, in attack order.
	ci := 0
	advance := func() {
		for ci < len(results) && len(results[ci].Pollution) == sizes[ci] {
			ci++
		}
	}
	advance()
	return results, sweep.ReduceFunc[Record]{EmitFn: func(_ int, rec Record) {
		r := results[ci]
		r.Pollution = append(r.Pollution, rec.Pollution)
		r.WeightFrac = append(r.WeightFrac, rec.WeightFrac)
		advance()
	}}
}

// Sweep attacks the target from every configured attacker and records the
// pollution each attack achieves. It is a thin wrapper over SweepAll's
// shared matrix runtime.
func Sweep(pol *core.Policy, cfg SweepConfig) (*SweepResult, error) {
	res, err := SweepAll(pol, []SweepConfig{cfg}, sweep.Options{Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// SweepAll runs several sweep configurations as one flattened matrix run
// over every (configuration, attack) pair, so a deployment ladder's
// strategies load-balance across one worker pool instead of running rung
// by rung. Results are index-ordered per configuration and bit-identical
// at any worker count (DESIGN.md §5, §7).
func SweepAll(pol *core.Policy, cfgs []SweepConfig, opts sweep.Options) ([]*SweepResult, error) {
	return SweepMatrix(pol, cfgs, sweep.MatrixOptions{Workers: opts.Workers, Progress: opts.Progress})
}

// SweepMatrix is SweepAll under full matrix options: shard selections
// (in-process concurrent shards) included. Partial `-shard i/n` runs go
// through NewWorkload + sweep.RunShard instead, and their merged record
// stream through Results' reducer — same digests either way.
func SweepMatrix(pol *core.Policy, cfgs []SweepConfig, opts sweep.MatrixOptions) ([]*SweepResult, error) {
	w, err := NewWorkload(pol, cfgs)
	if err != nil {
		return nil, err
	}
	results, red := w.Results()
	if err := sweep.RunMatrixReduce(w.Matrix, opts, w.Extract(), red); err != nil {
		return nil, err
	}
	return results, nil
}

// CCDF returns the vulnerability-analysis curve (Figures 2–6): how many
// attacks achieved at least X polluted ASes.
func (r *SweepResult) CCDF() []stats.CCDFPoint { return stats.CCDF(r.Pollution) }

// Summary returns distribution statistics over per-attack pollution.
func (r *SweepResult) Summary() stats.Summary { return stats.Summarize(r.Pollution) }

// CountAttacksAtLeast returns how many attacks polluted ≥ threshold ASes —
// the paper's "only N attackers can pollute more than X ASes" statements.
func (r *SweepResult) CountAttacksAtLeast(threshold int) int {
	return stats.CountAtLeast(r.Pollution, threshold)
}

// AttackerStat describes one attack for ranking tables.
type AttackerStat struct {
	Attacker  int
	ASN       asn.ASN
	Pollution int
	Degree    int
	Depth     int
	// Deployed marks attackers that are themselves part of the evaluated
	// filter deployment (a deployer-turned-attacker still originates its
	// own announcement; only its *import* filtering is bypassed).
	Deployed bool
}

// TopAttackers returns the k most potent attacks, ranked by pollution
// (ties by ascending ASN), annotated with the attacker's degree and depth —
// the Section V "top 5 still-potent attacks" tables.
func (r *SweepResult) TopAttackers(k int, g *topology.Graph, c *topology.Classification) []AttackerStat {
	idx := make([]int, len(r.Attackers))
	for i := range idx {
		idx[i] = i
	}
	// Partial selection sort: k is small (tables show 5).
	if k > len(idx) {
		k = len(idx)
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			pi, pj := r.Pollution[idx[j]], r.Pollution[idx[best]]
			if pi > pj || pi == pj && g.ASN(r.Attackers[idx[j]]) < g.ASN(r.Attackers[idx[best]]) {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	out := make([]AttackerStat, 0, k)
	for _, i := range idx[:k] {
		a := r.Attackers[i]
		out = append(out, AttackerStat{
			Attacker:  a,
			ASN:       g.ASN(a),
			Pollution: r.Pollution[i],
			Degree:    g.Degree(a),
			Depth:     c.Depth[a],
		})
	}
	return out
}

// AggressivenessDepthCorrelation measures the paper's Section IV claim
// that "attacker aggressiveness has a strong negative correlation with
// attacker depth": it correlates per-attack pollution against attacker
// depth and returns the Spearman rank coefficient.
func (r *SweepResult) AggressivenessDepthCorrelation(c *topology.Classification) (float64, error) {
	return DepthCorrelation(r.Attackers, r.Pollution, c)
}

// DepthCorrelation is AggressivenessDepthCorrelation over parallel
// attacker/pollution slices, for streaming consumers that reduce a
// record stream without materializing a SweepResult.
func DepthCorrelation(attackers []int, pollution []int, c *topology.Classification) (float64, error) {
	xs := make([]float64, 0, len(attackers))
	ys := make([]float64, 0, len(attackers))
	for i, a := range attackers {
		if c.Depth[a] == topology.DepthUnreachable {
			continue
		}
		xs = append(xs, float64(c.Depth[a]))
		ys = append(ys, float64(pollution[i]))
	}
	return stats.Spearman(xs, ys)
}

// AllNodes returns 0..n-1, the paper's worst-case attacker population.
func AllNodes(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
