// Package hijack implements the paper's attack-measurement machinery:
// sweeping a target with attacks from many attacker ASes (the Section IV
// vulnerability analysis), per-attack pollution accounting in AS count and
// address-space weight, top-attacker ranking, and the vulnerability/depth
// correlation measurements.
package hijack

import (
	"fmt"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/stats"
	"github.com/bgpsim/bgpsim/internal/sweep"
	"github.com/bgpsim/bgpsim/internal/topology"
)

// SweepConfig configures a vulnerability sweep against one target.
type SweepConfig struct {
	// Target is the victim node whose address space is hijacked.
	Target int
	// Attackers are the nodes to originate the hijack from, one attack
	// each; the target itself is skipped if present. Use every other AS
	// for the paper's worst case, or the transit ASes for its "optimistic"
	// stub-filtered case.
	Attackers []int
	// Blocked is the origin-validation deployment set (nil = none).
	Blocked *asn.IndexSet
	// SubPrefix switches every attack to a sub-prefix hijack.
	SubPrefix bool
	// Workers bounds solve parallelism; 0 means GOMAXPROCS.
	Workers int
}

// SweepResult holds per-attack pollution measurements, parallel slices
// indexed by attack number.
type SweepResult struct {
	Target     int
	Attackers  []int     // attacker node per attack
	Pollution  []int     // polluted AS count per attack
	WeightFrac []float64 // polluted address-space fraction per attack
}

// Sweep attacks the target from every configured attacker and records the
// pollution each attack achieves. It is a thin wrapper over SweepAll's
// shared parallel solve kernel.
func Sweep(pol *core.Policy, cfg SweepConfig) (*SweepResult, error) {
	res, err := SweepAll(pol, []SweepConfig{cfg}, sweep.Options{Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// SweepAll runs several sweep configurations as one flattened parallel run
// over every (configuration, attack) pair on the sweep.Run kernel, so a
// deployment ladder's strategies load-balance across one worker pool
// instead of running rung by rung. Results are index-ordered per
// configuration and bit-identical at any worker count (DESIGN.md §7).
func SweepAll(pol *core.Policy, cfgs []SweepConfig, opts sweep.Options) ([]*SweepResult, error) {
	n := pol.N()
	results := make([]*SweepResult, len(cfgs))
	// slot maps one flattened job index back to (configuration, attack).
	type slot struct{ cfg, k int32 }
	var slots []slot
	for ci, cfg := range cfgs {
		if cfg.Target < 0 || cfg.Target >= n {
			return nil, fmt.Errorf("sweep: target %d out of range", cfg.Target)
		}
		attackers := make([]int, 0, len(cfg.Attackers))
		for _, a := range cfg.Attackers {
			if a == cfg.Target {
				continue
			}
			if a < 0 || a >= n {
				return nil, fmt.Errorf("sweep: attacker %d out of range", a)
			}
			attackers = append(attackers, a)
		}
		results[ci] = &SweepResult{
			Target:     cfg.Target,
			Attackers:  attackers,
			Pollution:  make([]int, len(attackers)),
			WeightFrac: make([]float64, len(attackers)),
		}
		for k := range attackers {
			slots = append(slots, slot{int32(ci), int32(k)})
		}
	}

	g := pol.Graph()
	totalWeight := g.TotalAddrWeight()
	err := sweep.Run(pol, len(slots),
		func(i int) (core.Attack, *asn.IndexSet) {
			s := slots[i]
			cfg := &cfgs[s.cfg]
			return core.Attack{
				Target:    cfg.Target,
				Attacker:  results[s.cfg].Attackers[s.k],
				SubPrefix: cfg.SubPrefix,
			}, cfg.Blocked
		},
		opts,
		func(i int, o *core.Outcome) {
			count := 0
			var weight int64
			for v := 0; v < o.N(); v++ {
				if o.Polluted(v) {
					count++
					weight += g.AddrWeight(v)
				}
			}
			s := slots[i]
			r := results[s.cfg]
			r.Pollution[s.k] = count
			if totalWeight > 0 {
				r.WeightFrac[s.k] = float64(weight) / float64(totalWeight)
			}
		})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// CCDF returns the vulnerability-analysis curve (Figures 2–6): how many
// attacks achieved at least X polluted ASes.
func (r *SweepResult) CCDF() []stats.CCDFPoint { return stats.CCDF(r.Pollution) }

// Summary returns distribution statistics over per-attack pollution.
func (r *SweepResult) Summary() stats.Summary { return stats.Summarize(r.Pollution) }

// CountAttacksAtLeast returns how many attacks polluted ≥ threshold ASes —
// the paper's "only N attackers can pollute more than X ASes" statements.
func (r *SweepResult) CountAttacksAtLeast(threshold int) int {
	return stats.CountAtLeast(r.Pollution, threshold)
}

// AttackerStat describes one attack for ranking tables.
type AttackerStat struct {
	Attacker  int
	ASN       asn.ASN
	Pollution int
	Degree    int
	Depth     int
	// Deployed marks attackers that are themselves part of the evaluated
	// filter deployment (a deployer-turned-attacker still originates its
	// own announcement; only its *import* filtering is bypassed).
	Deployed bool
}

// TopAttackers returns the k most potent attacks, ranked by pollution
// (ties by ascending ASN), annotated with the attacker's degree and depth —
// the Section V "top 5 still-potent attacks" tables.
func (r *SweepResult) TopAttackers(k int, g *topology.Graph, c *topology.Classification) []AttackerStat {
	idx := make([]int, len(r.Attackers))
	for i := range idx {
		idx[i] = i
	}
	// Partial selection sort: k is small (tables show 5).
	if k > len(idx) {
		k = len(idx)
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			pi, pj := r.Pollution[idx[j]], r.Pollution[idx[best]]
			if pi > pj || pi == pj && g.ASN(r.Attackers[idx[j]]) < g.ASN(r.Attackers[idx[best]]) {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	out := make([]AttackerStat, 0, k)
	for _, i := range idx[:k] {
		a := r.Attackers[i]
		out = append(out, AttackerStat{
			Attacker:  a,
			ASN:       g.ASN(a),
			Pollution: r.Pollution[i],
			Degree:    g.Degree(a),
			Depth:     c.Depth[a],
		})
	}
	return out
}

// AggressivenessDepthCorrelation measures the paper's Section IV claim
// that "attacker aggressiveness has a strong negative correlation with
// attacker depth": it correlates per-attack pollution against attacker
// depth and returns the Spearman rank coefficient.
func (r *SweepResult) AggressivenessDepthCorrelation(c *topology.Classification) (float64, error) {
	xs := make([]float64, 0, len(r.Attackers))
	ys := make([]float64, 0, len(r.Attackers))
	for i, a := range r.Attackers {
		if c.Depth[a] == topology.DepthUnreachable {
			continue
		}
		xs = append(xs, float64(c.Depth[a]))
		ys = append(ys, float64(r.Pollution[i]))
	}
	return stats.Spearman(xs, ys)
}

// AllNodes returns 0..n-1, the paper's worst-case attacker population.
func AllNodes(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
