// Package hijack implements the paper's attack-measurement machinery:
// sweeping a target with attacks from many attacker ASes (the Section IV
// vulnerability analysis), per-attack pollution accounting in AS count and
// address-space weight, top-attacker ranking, and the vulnerability/depth
// correlation measurements.
package hijack

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/stats"
	"github.com/bgpsim/bgpsim/internal/topology"
)

// SweepConfig configures a vulnerability sweep against one target.
type SweepConfig struct {
	// Target is the victim node whose address space is hijacked.
	Target int
	// Attackers are the nodes to originate the hijack from, one attack
	// each; the target itself is skipped if present. Use every other AS
	// for the paper's worst case, or the transit ASes for its "optimistic"
	// stub-filtered case.
	Attackers []int
	// Blocked is the origin-validation deployment set (nil = none).
	Blocked *asn.IndexSet
	// SubPrefix switches every attack to a sub-prefix hijack.
	SubPrefix bool
	// Workers bounds solve parallelism; 0 means GOMAXPROCS.
	Workers int
}

// SweepResult holds per-attack pollution measurements, parallel slices
// indexed by attack number.
type SweepResult struct {
	Target     int
	Attackers  []int     // attacker node per attack
	Pollution  []int     // polluted AS count per attack
	WeightFrac []float64 // polluted address-space fraction per attack
}

// Sweep attacks the target from every configured attacker and records the
// pollution each attack achieves.
func Sweep(pol *core.Policy, cfg SweepConfig) (*SweepResult, error) {
	n := pol.N()
	if cfg.Target < 0 || cfg.Target >= n {
		return nil, fmt.Errorf("sweep: target %d out of range", cfg.Target)
	}
	attackers := make([]int, 0, len(cfg.Attackers))
	for _, a := range cfg.Attackers {
		if a == cfg.Target {
			continue
		}
		if a < 0 || a >= n {
			return nil, fmt.Errorf("sweep: attacker %d out of range", a)
		}
		attackers = append(attackers, a)
	}
	res := &SweepResult{
		Target:     cfg.Target,
		Attackers:  attackers,
		Pollution:  make([]int, len(attackers)),
		WeightFrac: make([]float64, len(attackers)),
	}

	g := pol.Graph()
	totalWeight := g.TotalAddrWeight()

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(attackers) {
		workers = len(attackers)
	}
	if workers <= 1 {
		s := core.NewSolver(pol)
		for k, a := range attackers {
			if err := sweepOne(s, g, cfg, a, totalWeight, res, k); err != nil {
				return nil, err
			}
		}
		return res, nil
	}

	// mu guards firstErr only. Workers write results into disjoint
	// index ranges of the pre-sized slices, so result order — and
	// therefore the digest of a run — is independent of scheduling (see
	// TestParallelSweepDeterminism).
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	chunk := (len(attackers) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(attackers) {
			hi = len(attackers)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			s := core.NewSolver(pol)
			for k := lo; k < hi; k++ {
				if err := sweepOne(s, g, cfg, attackers[k], totalWeight, res, k); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return res, nil
}

func sweepOne(s *core.Solver, g *topology.Graph, cfg SweepConfig, attacker int, totalWeight int64, res *SweepResult, k int) error {
	o, err := s.Solve(core.Attack{Target: cfg.Target, Attacker: attacker, SubPrefix: cfg.SubPrefix}, cfg.Blocked)
	if err != nil {
		return fmt.Errorf("sweep attack from %d: %w", attacker, err)
	}
	count := 0
	var weight int64
	for i := 0; i < o.N(); i++ {
		if o.Polluted(i) {
			count++
			weight += g.AddrWeight(i)
		}
	}
	res.Pollution[k] = count
	if totalWeight > 0 {
		res.WeightFrac[k] = float64(weight) / float64(totalWeight)
	}
	return nil
}

// CCDF returns the vulnerability-analysis curve (Figures 2–6): how many
// attacks achieved at least X polluted ASes.
func (r *SweepResult) CCDF() []stats.CCDFPoint { return stats.CCDF(r.Pollution) }

// Summary returns distribution statistics over per-attack pollution.
func (r *SweepResult) Summary() stats.Summary { return stats.Summarize(r.Pollution) }

// CountAttacksAtLeast returns how many attacks polluted ≥ threshold ASes —
// the paper's "only N attackers can pollute more than X ASes" statements.
func (r *SweepResult) CountAttacksAtLeast(threshold int) int {
	return stats.CountAtLeast(r.Pollution, threshold)
}

// AttackerStat describes one attack for ranking tables.
type AttackerStat struct {
	Attacker  int
	ASN       asn.ASN
	Pollution int
	Degree    int
	Depth     int
	// Deployed marks attackers that are themselves part of the evaluated
	// filter deployment (a deployer-turned-attacker still originates its
	// own announcement; only its *import* filtering is bypassed).
	Deployed bool
}

// TopAttackers returns the k most potent attacks, ranked by pollution
// (ties by ascending ASN), annotated with the attacker's degree and depth —
// the Section V "top 5 still-potent attacks" tables.
func (r *SweepResult) TopAttackers(k int, g *topology.Graph, c *topology.Classification) []AttackerStat {
	idx := make([]int, len(r.Attackers))
	for i := range idx {
		idx[i] = i
	}
	// Partial selection sort: k is small (tables show 5).
	if k > len(idx) {
		k = len(idx)
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			pi, pj := r.Pollution[idx[j]], r.Pollution[idx[best]]
			if pi > pj || pi == pj && g.ASN(r.Attackers[idx[j]]) < g.ASN(r.Attackers[idx[best]]) {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	out := make([]AttackerStat, 0, k)
	for _, i := range idx[:k] {
		a := r.Attackers[i]
		out = append(out, AttackerStat{
			Attacker:  a,
			ASN:       g.ASN(a),
			Pollution: r.Pollution[i],
			Degree:    g.Degree(a),
			Depth:     c.Depth[a],
		})
	}
	return out
}

// AggressivenessDepthCorrelation measures the paper's Section IV claim
// that "attacker aggressiveness has a strong negative correlation with
// attacker depth": it correlates per-attack pollution against attacker
// depth and returns the Spearman rank coefficient.
func (r *SweepResult) AggressivenessDepthCorrelation(c *topology.Classification) (float64, error) {
	xs := make([]float64, 0, len(r.Attackers))
	ys := make([]float64, 0, len(r.Attackers))
	for i, a := range r.Attackers {
		if c.Depth[a] == topology.DepthUnreachable {
			continue
		}
		xs = append(xs, float64(c.Depth[a]))
		ys = append(ys, float64(r.Pollution[i]))
	}
	return stats.Spearman(xs, ys)
}

// AllNodes returns 0..n-1, the paper's worst-case attacker population.
func AllNodes(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
