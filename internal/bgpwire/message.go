// Package bgpwire implements the BGP-4 wire format (RFC 4271) for the
// message types a hijack-detection pipeline consumes: OPEN, UPDATE,
// NOTIFICATION and KEEPALIVE encoding/decoding with the path attributes
// that carry origin information (ORIGIN, AS_PATH with four-octet ASNs per
// RFC 6793, NEXT_HOP). The paper's detectors "work by collecting real-time
// BGP data sources by peering with routers in multiple ASes"; this package
// is the codec those feeds run on (see internal/feed).
package bgpwire

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/prefix"
)

// Message type codes (RFC 4271 §4.1).
const (
	TypeOpen         = 1
	TypeUpdate       = 2
	TypeNotification = 3
	TypeKeepalive    = 4
)

// Header sizes and limits.
const (
	HeaderLen     = 19
	MaxMessageLen = 4096
	markerLen     = 16
)

// Path attribute type codes (RFC 4271 §5.1).
const (
	AttrOrigin  = 1
	AttrASPath  = 2
	AttrNextHop = 3
)

// ORIGIN attribute values.
const (
	OriginIGP        = 0
	OriginEGP        = 1
	OriginIncomplete = 2
)

// AS_PATH segment types.
const (
	SegmentSet      = 1
	SegmentSequence = 2
)

// Open is a BGP OPEN message (RFC 4271 §4.2). Optional parameters are
// not modeled; four-octet AS numbers are carried directly (the simulator's
// peers are all RFC 6793-capable).
type Open struct {
	Version  uint8
	AS       asn.ASN
	HoldTime uint16
	RouterID uint32
}

// Update is a BGP UPDATE message (RFC 4271 §4.3) restricted to the
// attributes origin validation needs.
type Update struct {
	Withdrawn []prefix.Prefix
	// Origin is the ORIGIN attribute (IGP/EGP/INCOMPLETE).
	Origin uint8
	// ASPath is a single AS_SEQUENCE; the final element is the route's
	// origin AS.
	ASPath []asn.ASN
	// NextHop is the NEXT_HOP attribute in host byte order.
	NextHop uint32
	// NLRI lists the announced prefixes.
	NLRI []prefix.Prefix
}

// OriginAS returns the announcement's origin AS (last AS_PATH element).
func (u *Update) OriginAS() (asn.ASN, bool) {
	if len(u.ASPath) == 0 {
		return 0, false
	}
	return u.ASPath[len(u.ASPath)-1], true
}

// Notification is a BGP NOTIFICATION message (RFC 4271 §4.5).
type Notification struct {
	Code    uint8
	Subcode uint8
	Data    []byte
}

// Keepalive is a BGP KEEPALIVE message (header only).
type Keepalive struct{}

// Marshal encodes a message with its BGP header. Supported payload types:
// *Open, *Update, *Notification, Keepalive.
func Marshal(msg any) ([]byte, error) {
	var body []byte
	var typ uint8
	switch m := msg.(type) {
	case *Open:
		typ = TypeOpen
		body = marshalOpen(m)
	case *Update:
		typ = TypeUpdate
		var err error
		body, err = marshalUpdate(m)
		if err != nil {
			return nil, err
		}
	case *Notification:
		typ = TypeNotification
		body = append([]byte{m.Code, m.Subcode}, m.Data...)
	case Keepalive, *Keepalive:
		typ = TypeKeepalive
	default:
		return nil, fmt.Errorf("bgpwire: cannot marshal %T", msg)
	}
	total := HeaderLen + len(body)
	if total > MaxMessageLen {
		return nil, fmt.Errorf("bgpwire: message length %d exceeds %d", total, MaxMessageLen)
	}
	out := make([]byte, total)
	for i := 0; i < markerLen; i++ {
		out[i] = 0xff
	}
	binary.BigEndian.PutUint16(out[16:18], uint16(total))
	out[18] = typ
	copy(out[HeaderLen:], body)
	return out, nil
}

func marshalOpen(o *Open) []byte {
	body := make([]byte, 10)
	body[0] = o.Version
	// RFC 6793: a four-octet speaker puts AS_TRANS (23456) here when its
	// ASN does not fit; we encode the low 16 bits or AS_TRANS.
	my16 := uint16(23456)
	if o.AS <= 0xffff {
		my16 = uint16(o.AS.Uint32())
	}
	binary.BigEndian.PutUint16(body[1:3], my16)
	binary.BigEndian.PutUint16(body[3:5], o.HoldTime)
	binary.BigEndian.PutUint32(body[5:9], o.RouterID)
	// Optional-parameters: one capability-style parameter carrying the
	// four-octet ASN (simplified capability 65, RFC 6793).
	opt := make([]byte, 0, 8)
	opt = append(opt, 2 /* param type: capability */, 6, 65, 4)
	var as4 [4]byte
	binary.BigEndian.PutUint32(as4[:], o.AS.Uint32())
	opt = append(opt, as4[:]...)
	body[9] = byte(len(opt))
	return append(body, opt...)
}

func marshalUpdate(u *Update) ([]byte, error) {
	var buf bytes.Buffer
	withdrawn, err := marshalNLRI(u.Withdrawn)
	if err != nil {
		return nil, err
	}
	var lenBuf [2]byte
	binary.BigEndian.PutUint16(lenBuf[:], uint16(len(withdrawn)))
	buf.Write(lenBuf[:])
	buf.Write(withdrawn)

	var attrs bytes.Buffer
	if len(u.NLRI) > 0 {
		if u.Origin > OriginIncomplete {
			return nil, fmt.Errorf("bgpwire: invalid ORIGIN %d", u.Origin)
		}
		writeAttr(&attrs, AttrOrigin, []byte{u.Origin})
		writeAttr(&attrs, AttrASPath, marshalASPath(u.ASPath))
		var nh [4]byte
		binary.BigEndian.PutUint32(nh[:], u.NextHop)
		writeAttr(&attrs, AttrNextHop, nh[:])
	}
	binary.BigEndian.PutUint16(lenBuf[:], uint16(attrs.Len()))
	buf.Write(lenBuf[:])
	buf.Write(attrs.Bytes())

	nlri, err := marshalNLRI(u.NLRI)
	if err != nil {
		return nil, err
	}
	buf.Write(nlri)
	return buf.Bytes(), nil
}

// writeAttr emits one path attribute with flags chosen automatically
// (well-known transitive, extended length when needed).
func writeAttr(w *bytes.Buffer, typ uint8, val []byte) {
	flags := uint8(0x40) // transitive
	if len(val) > 255 {
		flags |= 0x10 // extended length
		w.WriteByte(flags)
		w.WriteByte(typ)
		var l [2]byte
		binary.BigEndian.PutUint16(l[:], uint16(len(val)))
		w.Write(l[:])
	} else {
		w.WriteByte(flags)
		w.WriteByte(typ)
		w.WriteByte(uint8(len(val)))
	}
	w.Write(val)
}

// marshalASPath encodes one AS_SEQUENCE with four-octet ASNs (RFC 6793
// "new speaker" encoding).
func marshalASPath(path []asn.ASN) []byte {
	if len(path) == 0 {
		return nil
	}
	out := make([]byte, 2+4*len(path))
	out[0] = SegmentSequence
	out[1] = uint8(len(path))
	for i, a := range path {
		binary.BigEndian.PutUint32(out[2+4*i:], a.Uint32())
	}
	return out
}

// marshalNLRI encodes prefixes in the (length, truncated address) NLRI
// form.
func marshalNLRI(ps []prefix.Prefix) ([]byte, error) {
	var buf bytes.Buffer
	for _, p := range ps {
		if p.Len > 32 {
			return nil, fmt.Errorf("bgpwire: prefix length %d invalid", p.Len)
		}
		buf.WriteByte(p.Len)
		nBytes := int(p.Len+7) / 8
		var addr [4]byte
		binary.BigEndian.PutUint32(addr[:], p.Addr)
		buf.Write(addr[:nBytes])
	}
	return buf.Bytes(), nil
}

// Unmarshal decodes one full BGP message (header included) and returns the
// payload as *Open, *Update, *Notification or Keepalive.
func Unmarshal(data []byte) (any, error) {
	if len(data) < HeaderLen {
		return nil, fmt.Errorf("bgpwire: short message (%d bytes)", len(data))
	}
	for i := 0; i < markerLen; i++ {
		if data[i] != 0xff {
			return nil, fmt.Errorf("bgpwire: bad marker at byte %d", i)
		}
	}
	total := int(binary.BigEndian.Uint16(data[16:18]))
	if total < HeaderLen || total > MaxMessageLen {
		return nil, fmt.Errorf("bgpwire: invalid length %d", total)
	}
	if total != len(data) {
		return nil, fmt.Errorf("bgpwire: length field %d != buffer %d", total, len(data))
	}
	body := data[HeaderLen:]
	switch data[18] {
	case TypeOpen:
		return unmarshalOpen(body)
	case TypeUpdate:
		return unmarshalUpdate(body)
	case TypeNotification:
		if len(body) < 2 {
			return nil, fmt.Errorf("bgpwire: short NOTIFICATION")
		}
		return &Notification{Code: body[0], Subcode: body[1], Data: append([]byte(nil), body[2:]...)}, nil
	case TypeKeepalive:
		if len(body) != 0 {
			return nil, fmt.Errorf("bgpwire: KEEPALIVE with body")
		}
		return Keepalive{}, nil
	default:
		return nil, fmt.Errorf("bgpwire: unknown message type %d", data[18])
	}
}

func unmarshalOpen(body []byte) (*Open, error) {
	if len(body) < 10 {
		return nil, fmt.Errorf("bgpwire: short OPEN")
	}
	o := &Open{
		Version:  body[0],
		AS:       asn.FromUint32(uint32(binary.BigEndian.Uint16(body[1:3]))),
		HoldTime: binary.BigEndian.Uint16(body[3:5]),
		RouterID: binary.BigEndian.Uint32(body[5:9]),
	}
	optLen := int(body[9])
	opts := body[10:]
	if optLen != len(opts) {
		return nil, fmt.Errorf("bgpwire: OPEN optional-parameter length mismatch")
	}
	// Scan for the four-octet-AS capability.
	for len(opts) >= 2 {
		pType, pLen := opts[0], int(opts[1])
		if len(opts) < 2+pLen {
			return nil, fmt.Errorf("bgpwire: truncated OPEN parameter")
		}
		if pType == 2 && pLen >= 6 && opts[2] == 65 && opts[3] == 4 {
			o.AS = asn.FromUint32(binary.BigEndian.Uint32(opts[4:8]))
		}
		opts = opts[2+pLen:]
	}
	return o, nil
}

func unmarshalUpdate(body []byte) (*Update, error) {
	u := &Update{}
	if len(body) < 2 {
		return nil, fmt.Errorf("bgpwire: short UPDATE")
	}
	wLen := int(binary.BigEndian.Uint16(body[0:2]))
	if len(body) < 2+wLen+2 {
		return nil, fmt.Errorf("bgpwire: UPDATE withdrawn length overruns")
	}
	var err error
	u.Withdrawn, err = unmarshalNLRI(body[2 : 2+wLen])
	if err != nil {
		return nil, err
	}
	rest := body[2+wLen:]
	aLen := int(binary.BigEndian.Uint16(rest[0:2]))
	if len(rest) < 2+aLen {
		return nil, fmt.Errorf("bgpwire: UPDATE attribute length overruns")
	}
	if err := u.unmarshalAttrs(rest[2 : 2+aLen]); err != nil {
		return nil, err
	}
	u.NLRI, err = unmarshalNLRI(rest[2+aLen:])
	if err != nil {
		return nil, err
	}
	if len(u.NLRI) > 0 && len(u.ASPath) == 0 {
		return nil, fmt.Errorf("bgpwire: UPDATE announces routes without AS_PATH")
	}
	return u, nil
}

func (u *Update) unmarshalAttrs(data []byte) error {
	for len(data) > 0 {
		if len(data) < 3 {
			return fmt.Errorf("bgpwire: truncated path attribute")
		}
		flags, typ := data[0], data[1]
		var aLen, hdr int
		if flags&0x10 != 0 { // extended length
			if len(data) < 4 {
				return fmt.Errorf("bgpwire: truncated extended attribute")
			}
			aLen, hdr = int(binary.BigEndian.Uint16(data[2:4])), 4
		} else {
			aLen, hdr = int(data[2]), 3
		}
		if len(data) < hdr+aLen {
			return fmt.Errorf("bgpwire: attribute %d overruns message", typ)
		}
		val := data[hdr : hdr+aLen]
		switch typ {
		case AttrOrigin:
			if aLen != 1 || val[0] > OriginIncomplete {
				return fmt.Errorf("bgpwire: malformed ORIGIN")
			}
			u.Origin = val[0]
		case AttrASPath:
			path, err := unmarshalASPath(val)
			if err != nil {
				return err
			}
			u.ASPath = path
		case AttrNextHop:
			if aLen != 4 {
				return fmt.Errorf("bgpwire: malformed NEXT_HOP")
			}
			u.NextHop = binary.BigEndian.Uint32(val)
		default:
			// Unknown attributes are skipped (we only need the origin
			// trio); real routers apply the transitive bit here.
		}
		data = data[hdr+aLen:]
	}
	return nil
}

func unmarshalASPath(data []byte) ([]asn.ASN, error) {
	var path []asn.ASN
	for len(data) > 0 {
		if len(data) < 2 {
			return nil, fmt.Errorf("bgpwire: truncated AS_PATH segment")
		}
		segType, count := data[0], int(data[1])
		if segType != SegmentSequence && segType != SegmentSet {
			return nil, fmt.Errorf("bgpwire: unknown AS_PATH segment type %d", segType)
		}
		need := 2 + 4*count
		if len(data) < need {
			return nil, fmt.Errorf("bgpwire: AS_PATH segment overruns")
		}
		for i := 0; i < count; i++ {
			path = append(path, asn.FromUint32(binary.BigEndian.Uint32(data[2+4*i:])))
		}
		data = data[need:]
	}
	return path, nil
}

func unmarshalNLRI(data []byte) ([]prefix.Prefix, error) {
	var out []prefix.Prefix
	for len(data) > 0 {
		l := data[0]
		if l > 32 {
			return nil, fmt.Errorf("bgpwire: NLRI length %d invalid", l)
		}
		nBytes := int(l+7) / 8
		if len(data) < 1+nBytes {
			return nil, fmt.Errorf("bgpwire: truncated NLRI")
		}
		var addr [4]byte
		copy(addr[:], data[1:1+nBytes])
		p := prefix.New(binary.BigEndian.Uint32(addr[:]), l)
		if p.Addr != binary.BigEndian.Uint32(addr[:]) {
			return nil, fmt.Errorf("bgpwire: NLRI %v has host bits set", p)
		}
		out = append(out, p)
		data = data[1+nBytes:]
	}
	return out, nil
}

// EncodeAttributes encodes the ORIGIN/AS_PATH/NEXT_HOP path-attribute
// block as it appears in UPDATE messages and MRT RIB entries.
func EncodeAttributes(origin uint8, asPath []asn.ASN, nextHop uint32) ([]byte, error) {
	if origin > OriginIncomplete {
		return nil, fmt.Errorf("bgpwire: invalid ORIGIN %d", origin)
	}
	var attrs bytes.Buffer
	writeAttr(&attrs, AttrOrigin, []byte{origin})
	writeAttr(&attrs, AttrASPath, marshalASPath(asPath))
	var nh [4]byte
	binary.BigEndian.PutUint32(nh[:], nextHop)
	writeAttr(&attrs, AttrNextHop, nh[:])
	return attrs.Bytes(), nil
}

// DecodeAttributes parses a path-attribute block (the inverse of
// EncodeAttributes; unknown attributes are skipped).
func DecodeAttributes(data []byte) (origin uint8, asPath []asn.ASN, nextHop uint32, err error) {
	var u Update
	if err := u.unmarshalAttrs(data); err != nil {
		return 0, nil, 0, err
	}
	return u.Origin, u.ASPath, u.NextHop, nil
}

// ReadMessage reads exactly one framed BGP message from r.
func ReadMessage(r io.Reader) (any, error) {
	frame, err := ReadFrame(r)
	if err != nil {
		return nil, err
	}
	return Unmarshal(frame)
}

// WriteMessage marshals and writes one message to w.
func WriteMessage(w io.Writer, msg any) error {
	data, err := Marshal(msg)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}
