package bgpwire

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// ReadDeadliner is the read-deadline half of net.Conn. The feed layer's
// hold-timer enforcement arms it before every blocking read so a hung
// peer cannot wedge a session goroutine past the negotiated hold time.
type ReadDeadliner interface {
	SetReadDeadline(t time.Time) error
}

// WriteDeadliner is the write-deadline half of net.Conn.
type WriteDeadliner interface {
	SetWriteDeadline(t time.Time) error
}

// ReadFrame reads exactly one length-framed BGP message (header
// included) from r and returns its raw bytes without decoding them. An
// error from ReadFrame is a transport/framing failure — the stream can
// no longer be resynchronized and the session must be torn down. A
// successfully framed message that fails Unmarshal, by contrast, leaves
// the stream aligned on the next frame, which is what lets the
// collector tolerate a bounded number of malformed messages per peer.
func ReadFrame(r io.Reader) ([]byte, error) {
	hdr := make([]byte, HeaderLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	total := int(binary.BigEndian.Uint16(hdr[16:18]))
	if total < HeaderLen || total > MaxMessageLen {
		return nil, fmt.Errorf("bgpwire: invalid framed length %d", total)
	}
	buf := make([]byte, total)
	copy(buf, hdr)
	if _, err := io.ReadFull(r, buf[HeaderLen:]); err != nil {
		return nil, fmt.Errorf("bgpwire: short body: %w", err)
	}
	return buf, nil
}

// ReadFrameDeadline arms r's read deadline (when r supports one and the
// deadline is non-zero) and then reads one frame. Callers compute the
// deadline from their injected clock; a zero deadline reads without
// one.
func ReadFrameDeadline(r io.Reader, deadline time.Time) ([]byte, error) {
	if d, ok := r.(ReadDeadliner); ok && !deadline.IsZero() {
		// A deadline-set failure (typically a conn the peer already
		// closed) is deliberately not surfaced here: the read below
		// reports the true condition — io.EOF for a clean remote close —
		// which callers must be able to tell apart from a fault.
		_ = d.SetReadDeadline(deadline)
	}
	return ReadFrame(r)
}

// ReadMessageDeadline is ReadFrameDeadline + Unmarshal in one call, for
// handshake reads where any failure (framing or decoding) is fatal.
func ReadMessageDeadline(r io.Reader, deadline time.Time) (any, error) {
	frame, err := ReadFrameDeadline(r, deadline)
	if err != nil {
		return nil, err
	}
	return Unmarshal(frame)
}

// WriteMessageDeadline arms w's write deadline (when supported and
// non-zero) and writes one message, so a peer that stops reading cannot
// block a session goroutine forever.
func WriteMessageDeadline(w io.Writer, msg any, deadline time.Time) error {
	if d, ok := w.(WriteDeadliner); ok && !deadline.IsZero() {
		// As with reads: let the write itself report a closed conn.
		_ = d.SetWriteDeadline(deadline)
	}
	return WriteMessage(w, msg)
}
