package bgpwire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/prefix"
)

func mp(s string) prefix.Prefix { return prefix.MustParse(s) }

func TestOpenRoundTrip(t *testing.T) {
	for _, as := range []asn.ASN{64512, 70000, 4200000000} {
		in := &Open{Version: 4, AS: as, HoldTime: 90, RouterID: 0x0a000001}
		data, err := Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		out, err := Unmarshal(data)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := out.(*Open)
		if !ok {
			t.Fatalf("decoded %T", out)
		}
		if *got != *in {
			t.Errorf("round trip: %+v != %+v", got, in)
		}
	}
}

func TestUpdateRoundTrip(t *testing.T) {
	in := &Update{
		Withdrawn: []prefix.Prefix{mp("10.2.0.0/16")},
		Origin:    OriginIGP,
		ASPath:    []asn.ASN{7018, 3356, 4200000000, 65001},
		NextHop:   0xc0a80101,
		NLRI:      []prefix.Prefix{mp("129.82.0.0/16"), mp("129.83.4.0/24"), mp("8.0.0.0/8")},
	}
	data, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := out.(*Update)
	if !ok {
		t.Fatalf("decoded %T", out)
	}
	if !reflect.DeepEqual(got, in) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, in)
	}
	origin, ok := got.OriginAS()
	if !ok || origin != 65001 {
		t.Errorf("OriginAS = %v/%v", origin, ok)
	}
}

func TestUpdateWithdrawOnly(t *testing.T) {
	in := &Update{Withdrawn: []prefix.Prefix{mp("10.0.0.0/8")}}
	data, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	got := out.(*Update)
	if len(got.NLRI) != 0 || len(got.Withdrawn) != 1 {
		t.Errorf("withdraw-only round trip: %+v", got)
	}
	if _, ok := got.OriginAS(); ok {
		t.Error("withdraw-only update should have no origin")
	}
}

func TestKeepaliveAndNotification(t *testing.T) {
	data, err := Marshal(Keepalive{})
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != HeaderLen {
		t.Errorf("KEEPALIVE length = %d", len(data))
	}
	if _, err := Unmarshal(data); err != nil {
		t.Fatal(err)
	}

	n := &Notification{Code: 6, Subcode: 2, Data: []byte("bye")}
	data, err = Marshal(n)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	got := out.(*Notification)
	if got.Code != 6 || got.Subcode != 2 || string(got.Data) != "bye" {
		t.Errorf("NOTIFICATION round trip: %+v", got)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	good, err := Marshal(&Update{
		Origin: OriginIGP, ASPath: []asn.ASN{1}, NextHop: 1,
		NLRI: []prefix.Prefix{mp("10.0.0.0/8")},
	})
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"short":        good[:10],
		"bad marker":   append([]byte{0}, good[1:]...),
		"bad type":     mutate(good, 18, 9),
		"short length": mutate(good, 17, 5),
	}
	for name, data := range cases {
		if _, err := Unmarshal(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Truncated buffer vs length field.
	if _, err := Unmarshal(good[:len(good)-1]); err == nil {
		t.Error("truncated update accepted")
	}
	// NLRI with length field exceeding 32: the final NLRI entry for
	// 10.0.0.0/8 is [8, 10]; corrupt its length byte.
	bad := append([]byte(nil), good...)
	bad[len(bad)-2] = 77
	if _, err := Unmarshal(bad); err == nil {
		t.Error("invalid NLRI length accepted")
	}
}

func mutate(data []byte, at int, v byte) []byte {
	out := append([]byte(nil), data...)
	out[at] = v
	return out
}

func TestAnnouncementRequiresASPath(t *testing.T) {
	// Hand-craft an UPDATE with NLRI but no attributes.
	nlri, err := marshalNLRI([]prefix.Prefix{mp("10.0.0.0/8")})
	if err != nil {
		t.Fatal(err)
	}
	body := []byte{0, 0, 0, 0}
	body = append(body, nlri...)
	msg := make([]byte, HeaderLen+len(body))
	for i := 0; i < markerLen; i++ {
		msg[i] = 0xff
	}
	msg[16] = byte(len(msg) >> 8)
	msg[17] = byte(len(msg))
	msg[18] = TypeUpdate
	copy(msg[HeaderLen:], body)
	if _, err := Unmarshal(msg); err == nil {
		t.Error("announcement without AS_PATH accepted")
	}
}

func TestStreamReadWrite(t *testing.T) {
	var buf bytes.Buffer
	msgs := []any{
		&Open{Version: 4, AS: 65000, HoldTime: 180, RouterID: 7},
		Keepalive{},
		&Update{Origin: OriginIGP, ASPath: []asn.ASN{65000}, NextHop: 9, NLRI: []prefix.Prefix{mp("192.0.2.0/24")}},
		&Notification{Code: 6},
	}
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i := range msgs {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		switch want := msgs[i].(type) {
		case Keepalive:
			if _, ok := got.(Keepalive); !ok {
				t.Errorf("message %d: got %T", i, got)
			}
		case *Update:
			u, ok := got.(*Update)
			if !ok || !reflect.DeepEqual(u.NLRI, want.NLRI) {
				t.Errorf("message %d mismatch", i)
			}
		}
	}
	if _, err := ReadMessage(&buf); err == nil {
		t.Error("read past end succeeded")
	}
}

// TestUpdateFuzzRoundTrip round-trips randomized updates.
func TestUpdateFuzzRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		u := &Update{Origin: uint8(rng.Intn(3)), NextHop: rng.Uint32()}
		for i := rng.Intn(5); i > 0; i-- {
			u.ASPath = append(u.ASPath, asn.ASN(rng.Uint32()))
		}
		for i := rng.Intn(4); i > 0; i-- {
			u.NLRI = append(u.NLRI, prefix.New(rng.Uint32(), uint8(1+rng.Intn(32))))
		}
		for i := rng.Intn(3); i > 0; i-- {
			u.Withdrawn = append(u.Withdrawn, prefix.New(rng.Uint32(), uint8(1+rng.Intn(32))))
		}
		if len(u.NLRI) > 0 && len(u.ASPath) == 0 {
			u.ASPath = []asn.ASN{1}
		}
		if len(u.NLRI) == 0 {
			// Attributes travel only with announcements.
			u.Origin, u.NextHop, u.ASPath = 0, 0, nil
		}
		data, err := Marshal(u)
		if err != nil {
			t.Fatalf("trial %d: marshal: %v", trial, err)
		}
		got, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("trial %d: unmarshal: %v", trial, err)
		}
		if !reflect.DeepEqual(got, u) {
			t.Fatalf("trial %d: round trip mismatch\n got %+v\nwant %+v", trial, got, u)
		}
	}
}

// TestUnmarshalGarbage ensures arbitrary bytes never panic the decoder.
func TestUnmarshalGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(100)
		data := make([]byte, n)
		rng.Read(data)
		// Half the trials get a valid marker+length to reach deeper code.
		if trial%2 == 0 && n >= HeaderLen {
			for i := 0; i < markerLen; i++ {
				data[i] = 0xff
			}
			data[16] = byte(n >> 8)
			data[17] = byte(n)
		}
		_, _ = Unmarshal(data) // must not panic
	}
}

// TestExtendedLengthAttribute: AS paths beyond 63 hops need the
// extended-length attribute encoding (value > 255 bytes).
func TestExtendedLengthAttribute(t *testing.T) {
	long := make([]asn.ASN, 100) // 2 + 4·100 = 402 bytes > 255
	for i := range long {
		long[i] = asn.ASN(i + 1)
	}
	in := &Update{
		Origin: OriginIGP, ASPath: long, NextHop: 9,
		NLRI: []prefix.Prefix{mp("10.0.0.0/8")},
	}
	data, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	got := out.(*Update)
	if !reflect.DeepEqual(got.ASPath, long) {
		t.Error("extended-length AS path mangled")
	}
}

// TestASSetSegment: decoders must accept AS_SET segments (aggregated
// routes), flattening their members into the path.
func TestASSetSegment(t *testing.T) {
	// Hand-encode: one AS_SEQUENCE [100] + one AS_SET {200, 300}.
	val := []byte{
		SegmentSequence, 1, 0, 0, 0, 100,
		SegmentSet, 2, 0, 0, 0, 200, 0, 0, 1, 44, // 300
	}
	path, err := unmarshalASPath(val)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 || path[0] != 100 || path[1] != 200 || path[2] != 300 {
		t.Errorf("path = %v", path)
	}
	// Unknown segment type rejected.
	if _, err := unmarshalASPath([]byte{9, 1, 0, 0, 0, 1}); err == nil {
		t.Error("unknown segment type accepted")
	}
	// Truncated segment rejected.
	if _, err := unmarshalASPath([]byte{SegmentSequence, 2, 0, 0, 0, 1}); err == nil {
		t.Error("truncated segment accepted")
	}
}

// TestEncodeDecodeAttributesHelpers covers the exported helpers used by
// the MRT codec.
func TestEncodeDecodeAttributesHelpers(t *testing.T) {
	attrs, err := EncodeAttributes(OriginEGP, []asn.ASN{1, 2, 3}, 42)
	if err != nil {
		t.Fatal(err)
	}
	origin, path, nh, err := DecodeAttributes(attrs)
	if err != nil {
		t.Fatal(err)
	}
	if origin != OriginEGP || nh != 42 || len(path) != 3 {
		t.Errorf("decoded %d/%v/%d", origin, path, nh)
	}
	if _, err := EncodeAttributes(9, nil, 0); err == nil {
		t.Error("invalid origin accepted")
	}
	if _, _, _, err := DecodeAttributes([]byte{0x40}); err == nil {
		t.Error("truncated attribute block accepted")
	}
}
