package bgpwire

import (
	"bytes"
	"testing"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/prefix"
)

// FuzzUnmarshal exercises the BGP message decoder with arbitrary bytes; it
// must never panic, and anything it accepts must re-marshal to bytes that
// decode to the same message.
func FuzzUnmarshal(f *testing.F) {
	seed, err := Marshal(&Update{
		Origin: OriginIGP, ASPath: []asn.ASN{7018, 12145}, NextHop: 7,
		NLRI: []prefix.Prefix{mp("129.82.0.0/16")},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	open, err := Marshal(&Open{Version: 4, AS: 4200000000, HoldTime: 90, RouterID: 1})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(open)
	ka, err := Marshal(Keepalive{})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(ka)

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Unmarshal(data)
		if err != nil {
			return
		}
		// Accepted messages must round-trip.
		out, err := Marshal(msg)
		if err != nil {
			t.Fatalf("accepted message failed to re-marshal: %v", err)
		}
		msg2, err := Unmarshal(out)
		if err != nil {
			t.Fatalf("re-marshaled message failed to decode: %v", err)
		}
		out2, err := Marshal(msg2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatal("marshal not a fixed point after one round trip")
		}
	})
}
