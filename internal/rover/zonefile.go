package rover

import (
	"bufio"
	"encoding/base64"
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/bgpsim/bgpsim/internal/asn"
)

// WriteZoneFile serializes the zone in a DNS-master-file-like format: one
// line per signed SRO record set plus RRSIG lines carrying the Ed25519
// signatures, and DS lines for delegations. The format is this package's
// own (SRO is not a real RR type) but follows master-file conventions so
// operators can eyeball it:
//
//	; zone 82.129.in-addr.arpa
//	82.129.in-addr.arpa. IN SRO AS12145
//	82.129.in-addr.arpa. IN RRSIG SRO <base64 signature>
//	sub.example. IN DS <base64 key digest> <base64 signature>
func (z *Zone) WriteZoneFile(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "; zone %s\n", z.Apex); err != nil {
		return err
	}
	fmt.Fprintf(bw, "; key %s\n", base64.StdEncoding.EncodeToString(z.pub))

	names := make([]string, 0, len(z.records))
	for name := range z.records { //bgplint:ignore maporder names are sorted immediately below
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, rec := range z.records[name] {
			fmt.Fprintf(bw, "%s. IN SRO %v\n", name, rec.Record.Origin)
			fmt.Fprintf(bw, "%s. IN RRSIG SRO %s\n",
				name, base64.StdEncoding.EncodeToString(rec.Signature))
		}
	}
	children := make([]string, 0, len(z.children))
	for apex := range z.children { //bgplint:ignore maporder children are sorted immediately below
		children = append(children, apex)
	}
	sort.Strings(children)
	for _, apex := range children {
		ds := z.children[apex]
		fmt.Fprintf(bw, "%s. IN DS %s %s\n", apex,
			base64.StdEncoding.EncodeToString(ds.KeyDigest[:]),
			base64.StdEncoding.EncodeToString(ds.Signature))
	}
	return bw.Flush()
}

// LoadZoneFile parses a zone file produced by WriteZoneFile into the zone,
// verifying every RRSIG against the zone key as it loads (records that
// fail verification are rejected, as a validating secondary would).
// Delegation DS lines are verified against the zone key and installed;
// the child zones themselves are not created (they live in their own
// files).
func (z *Zone) LoadZoneFile(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var pendingName string
	var pendingOrigin asn.ASN
	havePending := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, ";") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[1] != "IN" {
			return fmt.Errorf("zonefile line %d: malformed record %q", lineNo, line)
		}
		name := strings.TrimSuffix(fields[0], ".")
		switch fields[2] {
		case "SRO":
			origin, err := asn.Parse(fields[3])
			if err != nil {
				return fmt.Errorf("zonefile line %d: %w", lineNo, err)
			}
			pendingName, pendingOrigin, havePending = name, origin, true
		case "RRSIG":
			if !havePending || len(fields) < 5 || fields[3] != "SRO" {
				return fmt.Errorf("zonefile line %d: RRSIG without preceding SRO", lineNo)
			}
			sig, err := base64.StdEncoding.DecodeString(fields[4])
			if err != nil {
				return fmt.Errorf("zonefile line %d: bad signature encoding", lineNo)
			}
			p, err := ParseReverseName(pendingName)
			if err != nil {
				return fmt.Errorf("zonefile line %d: %w", lineNo, err)
			}
			rec := SRO{Prefix: p, Origin: pendingOrigin}
			if !verifySRO(z.pub, rec, sig) {
				return fmt.Errorf("zonefile line %d: signature verification failed for %s", lineNo, pendingName)
			}
			z.records[pendingName] = append(z.records[pendingName], SignedSRO{Record: rec, Signature: sig})
			havePending = false
		case "DS":
			if len(fields) < 5 {
				return fmt.Errorf("zonefile line %d: malformed DS", lineNo)
			}
			digestRaw, err := base64.StdEncoding.DecodeString(fields[3])
			if err != nil || len(digestRaw) != 32 {
				return fmt.Errorf("zonefile line %d: bad DS digest", lineNo)
			}
			sig, err := base64.StdEncoding.DecodeString(fields[4])
			if err != nil {
				return fmt.Errorf("zonefile line %d: bad DS signature", lineNo)
			}
			var digest [32]byte
			copy(digest[:], digestRaw)
			if !verifyDS(z.pub, name, digest, sig) {
				return fmt.Errorf("zonefile line %d: DS verification failed for %s", lineNo, name)
			}
			z.children[name] = &DS{Child: name, KeyDigest: digest, Signature: sig}
		default:
			return fmt.Errorf("zonefile line %d: unknown RR type %q", lineNo, fields[2])
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("zonefile: %w", err)
	}
	if havePending {
		return fmt.Errorf("zonefile: SRO for %s has no RRSIG", pendingName)
	}
	return nil
}
