// Package rover implements ROVER — Route Origin Verification using DNS —
// the paper authors' own origin-publication system: route origins are
// published as records in the reverse DNS under a CIDR naming convention
// (draft-gersch-dnsop-revdns-cidr) and protected by DNSSEC. This package
// provides the naming convention, a signed zone tree with DS-style
// delegation (DNSSEC-lite over Ed25519), and a resolver that verifies the
// chain of trust on every lookup. The resulting store satisfies
// rpki.OriginValidator, so filters and detectors can consume either
// substrate interchangeably.
package rover

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/prefix"
	"github.com/bgpsim/bgpsim/internal/rpki"
)

// ReverseName maps a CIDR block to its reverse-DNS owner name following
// the draft-gersch-dnsop-revdns-cidr convention: the network octets in
// reverse order under in-addr.arpa, with an "m" (mask) label encoding the
// prefix length when it does not fall on an octet boundary.
//
//	129.82.0.0/16   → 82.129.in-addr.arpa
//	10.0.0.0/8      → 10.in-addr.arpa
//	129.82.64.0/18  → m18.64.82.129.in-addr.arpa
func ReverseName(p prefix.Prefix) string {
	octets := []byte{
		byte(p.Addr >> 24), byte(p.Addr >> 16), byte(p.Addr >> 8), byte(p.Addr),
	}
	nOct := int(p.Len+7) / 8
	var labels []string
	if p.Len%8 != 0 {
		labels = append(labels, "m"+strconv.Itoa(int(p.Len)))
	}
	for i := nOct - 1; i >= 0; i-- {
		labels = append([]string{strconv.Itoa(int(octets[i]))}, labels...)
	}
	// labels currently reversed network octets with the m-label adjacent
	// to the most specific octet; assemble most-specific-first.
	reverse(labels)
	return strings.Join(append(labels, "in-addr", "arpa"), ".")
}

func reverse(s []string) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// ParseReverseName inverts ReverseName.
func ParseReverseName(name string) (prefix.Prefix, error) {
	labels := strings.Split(name, ".")
	if len(labels) < 3 || labels[len(labels)-1] != "arpa" || labels[len(labels)-2] != "in-addr" {
		return prefix.Prefix{}, fmt.Errorf("reverse name %q: not under in-addr.arpa", name)
	}
	labels = labels[:len(labels)-2]
	var maskLen = -1
	if len(labels) > 0 && strings.HasPrefix(labels[0], "m") {
		v, err := strconv.Atoi(labels[0][1:])
		if err != nil || v < 1 || v > 32 {
			return prefix.Prefix{}, fmt.Errorf("reverse name %q: bad mask label", name)
		}
		maskLen = v
		labels = labels[1:]
	}
	if len(labels) == 0 || len(labels) > 4 {
		return prefix.Prefix{}, fmt.Errorf("reverse name %q: wrong octet count", name)
	}
	var addr uint32
	for i := len(labels) - 1; i >= 0; i-- {
		v, err := strconv.Atoi(labels[i])
		if err != nil || v < 0 || v > 255 {
			return prefix.Prefix{}, fmt.Errorf("reverse name %q: bad octet %q", name, labels[i])
		}
		addr = addr<<8 | uint32(v)
	}
	addr <<= uint(8 * (4 - len(labels)))
	length := uint8(8 * len(labels))
	if maskLen >= 0 {
		if maskLen > int(length) || maskLen <= int(length)-8 {
			return prefix.Prefix{}, fmt.Errorf("reverse name %q: mask %d inconsistent with %d octets", name, maskLen, len(labels))
		}
		length = uint8(maskLen)
	}
	p := prefix.New(addr, length)
	if p.Addr != addr {
		return prefix.Prefix{}, fmt.Errorf("reverse name %q: host bits set", name)
	}
	return p, nil
}

// SRO is a Secure Route Origin record: the reverse-DNS record type ROVER
// publishes ("RLOCK"-guarded origin data in the paper's drafts).
type SRO struct {
	Prefix prefix.Prefix
	Origin asn.ASN
}

func sroBytes(r SRO) []byte {
	var b [9]byte
	binary.BigEndian.PutUint32(b[0:4], r.Prefix.Addr)
	b[4] = r.Prefix.Len
	binary.BigEndian.PutUint32(b[5:9], r.Origin.Uint32())
	return b[:]
}

// Zone is one signed reverse-DNS zone: an apex name, Ed25519 zone key,
// SRO record sets, and (for non-leaf zones) signed DS-style delegations to
// child zones.
type Zone struct {
	Apex string

	pub  ed25519.PublicKey
	priv ed25519.PrivateKey

	records map[string][]SignedSRO // owner name → signed records
	// children maps child apex → DS record (hash of child key, signed by
	// this zone).
	children map[string]*DS
	zones    map[string]*Zone
}

// SignedSRO is an SRO with its RRSIG-equivalent.
type SignedSRO struct {
	Record    SRO
	Signature []byte
}

// DS is the delegation-signer record: the parent's commitment to the
// child's zone key.
type DS struct {
	Child     string
	KeyDigest [32]byte
	Signature []byte // by the parent zone key over (child, digest)
}

func dsBytes(child string, digest [32]byte) []byte {
	out := make([]byte, 0, len(child)+32)
	out = append(out, child...)
	out = append(out, digest[:]...)
	return out
}

// NewZone creates a zone with a deterministic key derived from apex+seed.
func NewZone(apex string, seed int64) *Zone {
	h := sha256.New()
	io.WriteString(h, apex)                   //nolint:errcheck
	binary.Write(h, binary.BigEndian, seed)   //nolint:errcheck
	io.WriteString(h, "bgpsim-rover-keyseed") //nolint:errcheck
	priv := ed25519.NewKeyFromSeed(h.Sum(nil))
	return &Zone{
		Apex:     apex,
		pub:      priv.Public().(ed25519.PublicKey),
		priv:     priv,
		records:  make(map[string][]SignedSRO),
		children: make(map[string]*DS),
		zones:    make(map[string]*Zone),
	}
}

// Key returns the zone's public key.
func (z *Zone) Key() ed25519.PublicKey { return z.pub }

// Publish signs and stores an SRO for the prefix, at its ReverseName.
func (z *Zone) Publish(r SRO) error {
	name := ReverseName(r.Prefix)
	if !strings.HasSuffix(name, z.Apex) {
		return fmt.Errorf("publish %v: name %q outside zone %q", r.Prefix, name, z.Apex)
	}
	sig := ed25519.Sign(z.priv, sroBytes(r))
	for _, existing := range z.records[name] {
		if existing.Record == r {
			return nil // idempotent
		}
	}
	z.records[name] = append(z.records[name], SignedSRO{Record: r, Signature: sig})
	return nil
}

// Delegate creates (or links) a child zone and installs a signed DS for it.
func (z *Zone) Delegate(childApex string, seed int64) (*Zone, error) {
	if !strings.HasSuffix(childApex, "."+z.Apex) {
		return nil, fmt.Errorf("delegate %q: not under %q", childApex, z.Apex)
	}
	if c, ok := z.zones[childApex]; ok {
		return c, nil
	}
	child := NewZone(childApex, seed)
	digest := sha256.Sum256(child.pub)
	ds := &DS{
		Child:     childApex,
		KeyDigest: digest,
		Signature: ed25519.Sign(z.priv, dsBytes(childApex, digest)),
	}
	z.children[childApex] = ds
	z.zones[childApex] = child
	return child, nil
}

// verifySRO checks a record signature against a zone key.
func verifySRO(pub ed25519.PublicKey, rec SRO, sig []byte) bool {
	return ed25519.Verify(pub, sroBytes(rec), sig)
}

// verifyDS checks a delegation signature against the parent zone key.
func verifyDS(pub ed25519.PublicKey, child string, digest [32]byte, sig []byte) bool {
	return ed25519.Verify(pub, dsBytes(child, digest), sig)
}

// Resolver performs verified lookups against a zone tree, walking
// delegations from a pinned trust anchor and checking every signature —
// the DNSSEC chain of trust that makes ROVER data authoritative.
type Resolver struct {
	anchor *Zone
	// KeyLog counts signature verifications, exposed for tests and for
	// the example programs to show the cost of verification.
	KeyLog int
}

// NewResolver returns a Resolver anchored at the given root zone.
func NewResolver(anchor *Zone) *Resolver {
	return &Resolver{anchor: anchor}
}

// zoneFor walks from the anchor toward the most-specific zone that could
// hold name, verifying each DS delegation.
func (r *Resolver) zoneFor(name string) (*Zone, error) {
	z := r.anchor
	for {
		next := ""
		//bgplint:ignore maporder longest-suffix selection; distinct apexes of equal length cannot both match
		for apex := range z.children {
			if name == apex || strings.HasSuffix(name, "."+apex) {
				if len(apex) > len(next) {
					next = apex
				}
			}
		}
		if next == "" {
			return z, nil
		}
		ds := z.children[next]
		child := z.zones[next]
		r.KeyLog++
		if !ed25519.Verify(z.pub, dsBytes(ds.Child, ds.KeyDigest), ds.Signature) {
			return nil, fmt.Errorf("resolve %q: DS signature for %q invalid", name, next)
		}
		if sha256.Sum256(child.pub) != ds.KeyDigest {
			return nil, fmt.Errorf("resolve %q: child key for %q does not match DS", name, next)
		}
		z = child
	}
}

// LookupOrigins returns the verified authorized origins published at the
// reverse name of p (exact match; callers walk covering prefixes for
// validation, see Store).
func (r *Resolver) LookupOrigins(p prefix.Prefix) (asn.Set, error) {
	name := ReverseName(p)
	z, err := r.zoneFor(name)
	if err != nil {
		return nil, err
	}
	out := asn.NewSet()
	for _, srr := range z.records[name] {
		r.KeyLog++
		if !ed25519.Verify(z.pub, sroBytes(srr.Record), srr.Signature) {
			return nil, fmt.Errorf("lookup %q: record signature invalid", name)
		}
		out.Add(srr.Record.Origin)
	}
	return out, nil
}

// Store adapts a ROVER zone tree into an rpki.OriginValidator: an
// announcement is Valid if any covering published prefix authorizes the
// origin, Invalid if covering publications exist without a match, and
// NotFound when nothing covering is published. Verification failures are
// treated as NotFound (fail-open, as incremental deployment demands) and
// surfaced through Err.
type Store struct {
	resolver *Resolver
	// published mirrors the set of published prefixes so covering lookups
	// do not have to probe all 32 lengths blindly.
	published *prefix.Trie[struct{}]
	lastErr   error
}

var _ rpki.OriginValidator = (*Store)(nil)

// NewStore builds a validating view over the zone tree. The published
// prefix index is built by the caller publishing through it.
func NewStore(anchor *Zone) *Store {
	return &Store{
		resolver:  NewResolver(anchor),
		published: &prefix.Trie[struct{}]{},
	}
}

// NotePublished registers a prefix as published so Validate can find it.
// (Publication itself happens on a Zone.)
func (s *Store) NotePublished(p prefix.Prefix) {
	s.published.Insert(p, struct{}{})
}

// Err returns the last verification error swallowed by Validate.
func (s *Store) Err() error { return s.lastErr }

// Validate implements rpki.OriginValidator over the ROVER data.
func (s *Store) Validate(p prefix.Prefix, origin asn.ASN) rpki.Validity {
	res := rpki.NotFound
	s.published.Covering(p, func(matchLen uint8, _ struct{}) bool {
		cover := prefix.New(p.Addr, matchLen)
		origins, err := s.resolver.LookupOrigins(cover)
		if err != nil {
			s.lastErr = err
			return true
		}
		if len(origins) == 0 {
			return true
		}
		if origins.Contains(origin) {
			res = rpki.Valid
			return false
		}
		res = rpki.Invalid
		return true
	})
	return res
}
