package rover

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/prefix"
	"github.com/bgpsim/bgpsim/internal/rpki"
)

func mp(s string) prefix.Prefix { return prefix.MustParse(s) }

func TestReverseName(t *testing.T) {
	cases := []struct {
		p    string
		want string
	}{
		{"129.82.0.0/16", "82.129.in-addr.arpa"},
		{"10.0.0.0/8", "10.in-addr.arpa"},
		{"192.168.4.0/24", "4.168.192.in-addr.arpa"},
		{"1.2.3.4/32", "4.3.2.1.in-addr.arpa"},
		{"129.82.64.0/18", "m18.64.82.129.in-addr.arpa"},
		{"10.128.0.0/9", "m9.128.10.in-addr.arpa"},
	}
	for _, c := range cases {
		if got := ReverseName(mp(c.p)); got != c.want {
			t.Errorf("ReverseName(%s) = %q, want %q", c.p, got, c.want)
		}
	}
}

func TestParseReverseNameRoundTrip(t *testing.T) {
	f := func(addr uint32, length uint8) bool {
		l := length % 32
		if l == 0 {
			l = 32 // /0 has no reverse name
		}
		p := prefix.New(addr, l)
		back, err := ParseReverseName(ReverseName(p))
		return err == nil && back == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseReverseNameErrors(t *testing.T) {
	bad := []string{
		"",
		"82.129.example.com",
		"in-addr.arpa",
		"m40.82.129.in-addr.arpa", // mask out of range
		"m8.82.129.in-addr.arpa",  // mask inconsistent with 2 octets
		"300.129.in-addr.arpa",    // bad octet
		"x.129.in-addr.arpa",      // non-numeric
		"1.2.3.4.5.in-addr.arpa",  // too many octets
	}
	for _, s := range bad {
		if _, err := ParseReverseName(s); err == nil {
			t.Errorf("ParseReverseName(%q) succeeded, want error", s)
		}
	}
}

// buildTree constructs root → in-addr.arpa → 129.in-addr.arpa zones.
func buildTree(t *testing.T) (*Zone, *Zone) {
	t.Helper()
	root := NewZone("arpa", 1)
	inaddr, err := root.Delegate("in-addr.arpa", 2)
	if err != nil {
		t.Fatal(err)
	}
	z129, err := inaddr.Delegate("129.in-addr.arpa", 3)
	if err != nil {
		t.Fatal(err)
	}
	return root, z129
}

func TestZonePublishAndResolve(t *testing.T) {
	root, z129 := buildTree(t)
	if err := z129.Publish(SRO{Prefix: mp("129.82.0.0/16"), Origin: 12145}); err != nil {
		t.Fatal(err)
	}
	// Idempotent republish.
	if err := z129.Publish(SRO{Prefix: mp("129.82.0.0/16"), Origin: 12145}); err != nil {
		t.Fatal(err)
	}
	r := NewResolver(root)
	origins, err := r.LookupOrigins(mp("129.82.0.0/16"))
	if err != nil {
		t.Fatal(err)
	}
	if len(origins) != 1 || !origins.Contains(12145) {
		t.Errorf("origins = %v", origins.Sorted())
	}
	if r.KeyLog == 0 {
		t.Error("resolver performed no signature verifications")
	}
	// Unpublished name resolves to empty set, not error.
	none, err := r.LookupOrigins(mp("129.83.0.0/16"))
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Errorf("unpublished lookup = %v", none.Sorted())
	}
}

func TestZonePublishOutsideApex(t *testing.T) {
	_, z129 := buildTree(t)
	if err := z129.Publish(SRO{Prefix: mp("10.0.0.0/8"), Origin: 1}); err == nil {
		t.Error("publish outside zone apex accepted")
	}
}

func TestDelegateValidation(t *testing.T) {
	root := NewZone("arpa", 1)
	if _, err := root.Delegate("example.com", 2); err == nil {
		t.Error("delegation outside parent accepted")
	}
	// Re-delegation returns the same child.
	a, err := root.Delegate("in-addr.arpa", 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := root.Delegate("in-addr.arpa", 99)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("re-delegation created a new zone")
	}
}

// TestChainOfTrustTamper verifies that a forged child key is rejected at
// resolve time.
func TestChainOfTrustTamper(t *testing.T) {
	root, z129 := buildTree(t)
	if err := z129.Publish(SRO{Prefix: mp("129.82.0.0/16"), Origin: 12145}); err != nil {
		t.Fatal(err)
	}
	// Swap the child zone for an impostor with a different key but keep
	// the parent's DS record: the digest check must fail.
	parent := root.zones["in-addr.arpa"]
	impostor := NewZone("129.in-addr.arpa", 666)
	if err := impostor.Publish(SRO{Prefix: mp("129.82.0.0/16"), Origin: 666}); err != nil {
		t.Fatal(err)
	}
	parent.zones["129.in-addr.arpa"] = impostor

	r := NewResolver(root)
	if _, err := r.LookupOrigins(mp("129.82.0.0/16")); err == nil {
		t.Error("impostor zone accepted; DS check failed to fire")
	}
}

func TestStoreValidator(t *testing.T) {
	root, z129 := buildTree(t)
	store := NewStore(root)
	publish := func(p prefix.Prefix, origin uint32) {
		t.Helper()
		if err := z129.Publish(SRO{Prefix: p, Origin: asn.ASN(origin)}); err != nil {
			t.Fatal(err)
		}
		store.NotePublished(p)
	}
	publish(mp("129.82.0.0/16"), 12145)

	if got := store.Validate(mp("129.82.0.0/16"), 12145); got != rpki.Valid {
		t.Errorf("published origin = %v, want valid", got)
	}
	if got := store.Validate(mp("129.82.0.0/16"), 666); got != rpki.Invalid {
		t.Errorf("wrong origin = %v, want invalid", got)
	}
	// ROVER validates sub-prefixes against covering publications.
	if got := store.Validate(mp("129.82.4.0/24"), 666); got != rpki.Invalid {
		t.Errorf("hijacked subprefix = %v, want invalid", got)
	}
	if got := store.Validate(mp("10.0.0.0/8"), 12145); got != rpki.NotFound {
		t.Errorf("unpublished space = %v, want not-found", got)
	}
	if store.Err() != nil {
		t.Errorf("unexpected swallowed error: %v", store.Err())
	}
}

func TestZoneFileRoundTrip(t *testing.T) {
	_, z129 := buildTree(t)
	for _, rec := range []SRO{
		{Prefix: mp("129.82.0.0/16"), Origin: 12145},
		{Prefix: mp("129.83.0.0/16"), Origin: 7},
		{Prefix: mp("129.82.64.0/18"), Origin: 12145},
	} {
		if err := z129.Publish(rec); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := z129.Delegate("4.82.129.in-addr.arpa", 9); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := z129.WriteZoneFile(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{"IN SRO AS12145", "IN RRSIG SRO", "IN DS", "m18.64.82.129.in-addr.arpa."} {
		if !strings.Contains(text, want) {
			t.Errorf("zone file missing %q:\n%s", want, text)
		}
	}

	// A fresh zone with the same key loads and verifies everything.
	clone := NewZone("129.in-addr.arpa", 3) // same apex+seed → same key
	if err := clone.LoadZoneFile(strings.NewReader(text)); err != nil {
		t.Fatal(err)
	}
	if len(clone.records) != len(z129.records) {
		t.Errorf("loaded %d record names, want %d", len(clone.records), len(z129.records))
	}
	if len(clone.children) != 1 {
		t.Errorf("loaded %d delegations, want 1", len(clone.children))
	}

	// A zone with a DIFFERENT key must reject every signature.
	impostor := NewZone("129.in-addr.arpa", 666)
	if err := impostor.LoadZoneFile(strings.NewReader(text)); err == nil {
		t.Error("impostor key verified foreign signatures")
	}
}

func TestZoneFileErrors(t *testing.T) {
	z := NewZone("129.in-addr.arpa", 3)
	bad := []string{
		"82.129.in-addr.arpa. IN SRO AS1\n",                     // SRO without RRSIG
		"82.129.in-addr.arpa. IN RRSIG SRO AAAA\n",              // RRSIG without SRO
		"82.129.in-addr.arpa. IN TXT hello extra\n",             // unknown type
		"82.129.in-addr.arpa. SRO AS1 x\n",                      // missing IN
		"82.129.in-addr.arpa. IN SRO pizza\n82. IN RRSIG SRO x", // bad origin
	}
	for _, in := range bad {
		if err := z.LoadZoneFile(strings.NewReader(in)); err == nil {
			t.Errorf("LoadZoneFile(%q) succeeded, want error", in)
		}
	}
}
