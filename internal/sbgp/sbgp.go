// Package sbgp evaluates S*BGP-style path security under partial
// deployment — the model of Lychev, Goldberg & Schapira ("BGP Security in
// Partial Deployment: Is the Juice Worth the Squeeze?", SIGCOMM 2013),
// whose section 4 the reproduced paper corroborates. A route is secure
// when the legitimate origin and every subsequent hop deploy S*BGP and
// sign the announcement; deployed ASes rank security first, second or
// third in their route selection, and the attacker can never forge a
// secure route for the victim's prefix.
package sbgp

import (
	"fmt"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/stats"
)

// Result is one (mode, deployment) sweep outcome.
type Result struct {
	Mode      core.SecureMode
	Deployed  []int
	Attackers []int
	Pollution []int
	// SecureTarget reports whether the victim itself deployed (without
	// it, no secure route to the victim's prefix can exist at all).
	SecureTarget bool
}

// Summary returns the pollution distribution statistics.
func (r *Result) Summary() stats.Summary { return stats.Summarize(r.Pollution) }

// ModeName returns a human-readable mode label.
func ModeName(m core.SecureMode) string {
	switch m {
	case core.SecurityFirst:
		return "security 1st"
	case core.SecuritySecond:
		return "security 2nd"
	case core.SecurityThird:
		return "security 3rd"
	default:
		return "security off"
	}
}

// Evaluate sweeps the target with every attacker under S*BGP partial
// deployment. The victim must be included in `deployed` for secure routes
// to exist; Evaluate adds it automatically (an operator evaluating S*BGP
// for their own protection deploys it first).
func Evaluate(pol *core.Policy, target int, attackers, deployed []int, mode core.SecureMode) (*Result, error) {
	n := pol.N()
	if target < 0 || target >= n {
		return nil, fmt.Errorf("sbgp: target %d out of range", target)
	}
	set := asn.NewIndexSet(n)
	for _, d := range deployed {
		if d < 0 || d >= n {
			return nil, fmt.Errorf("sbgp: deployed node %d out of range", d)
		}
		set.Add(d)
	}
	set.Add(target)

	eng := core.NewEngine(pol)
	eng.SecureDeployed = set
	eng.SecureMode = mode
	res := &Result{Mode: mode, Deployed: deployed, SecureTarget: true}
	for _, a := range attackers {
		if a == target {
			continue
		}
		o, _, err := eng.Run(core.Attack{Target: target, Attacker: a}, nil, false)
		if err != nil {
			return nil, fmt.Errorf("sbgp: attack from %d: %w", a, err)
		}
		res.Attackers = append(res.Attackers, a)
		res.Pollution = append(res.Pollution, o.PollutedCount())
	}
	return res, nil
}

// CompareModes runs the same deployment under all three security ranks
// plus the undefended baseline, returning mean pollution per mode — the
// juice-worth-the-squeeze comparison.
func CompareModes(pol *core.Policy, target int, attackers, deployed []int) (map[core.SecureMode]float64, error) {
	out := make(map[core.SecureMode]float64, 4)
	for _, mode := range []core.SecureMode{core.SecureOff, core.SecurityFirst, core.SecuritySecond, core.SecurityThird} {
		res, err := Evaluate(pol, target, attackers, deployed, mode)
		if err != nil {
			return nil, err
		}
		out[mode] = res.Summary().Mean
	}
	return out, nil
}
