package sbgp

import (
	"testing"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/topology"
)

func testWorld(t *testing.T, n int) (*core.Policy, *topology.Graph, *topology.Classification) {
	t.Helper()
	g := topology.MustGenerate(topology.DefaultParams(n))
	con, err := topology.ContractSiblings(g)
	if err != nil {
		t.Fatal(err)
	}
	c := topology.Classify(con.Graph, topology.ClassifyOptions{})
	pol, err := core.NewPolicy(con.Graph, c.Tier1)
	if err != nil {
		t.Fatal(err)
	}
	return pol, con.Graph, c
}

func TestEvaluateValidation(t *testing.T) {
	pol, _, _ := testWorld(t, 200)
	if _, err := Evaluate(pol, -1, nil, nil, core.SecurityFirst); err == nil {
		t.Error("bad target accepted")
	}
	if _, err := Evaluate(pol, 0, []int{1}, []int{pol.N()}, core.SecurityFirst); err == nil {
		t.Error("bad deployed node accepted")
	}
}

// TestSecurityOffMatchesBaseline: mode off must equal a plain engine run.
func TestSecurityOffMatchesBaseline(t *testing.T) {
	pol, g, c := testWorld(t, 500)
	target, err := topology.FindTarget(g, c, topology.TargetQuery{Depth: 2, Stub: true})
	if err != nil {
		t.Fatal(err)
	}
	attackers := g.TransitNodes()[:30]
	off, err := Evaluate(pol, target, attackers, topology.NodesByDegree(g)[:20], core.SecureOff)
	if err != nil {
		t.Fatal(err)
	}
	plain := core.NewEngine(pol)
	for i, a := range off.Attackers {
		o, _, err := plain.Run(core.Attack{Target: target, Attacker: a}, nil, false)
		if err != nil {
			t.Fatal(err)
		}
		if o.PollutedCount() != off.Pollution[i] {
			t.Fatalf("mode-off diverges from baseline at attacker %d: %d vs %d",
				a, off.Pollution[i], o.PollutedCount())
		}
	}
}

// TestSecurityModeOrdering reproduces the Lychev et al. section-4 shape
// that the paper corroborates: against origin hijacks, ranking security
// higher in route selection can only help —
// security-1st ≤ security-2nd ≤ security-3rd ≤ off (in mean pollution).
func TestSecurityModeOrdering(t *testing.T) {
	pol, g, c := testWorld(t, 900)
	target, err := topology.FindTarget(g, c, topology.TargetQuery{Depth: 2, Stub: true})
	if err != nil {
		t.Fatal(err)
	}
	attackers := g.TransitNodes()
	if len(attackers) > 50 {
		attackers = attackers[:50]
	}
	deployed := topology.NodesByDegree(g)[:40]
	means, err := CompareModes(pol, target, attackers, deployed)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 1e-9
	if means[core.SecurityFirst] > means[core.SecuritySecond]+eps {
		t.Errorf("security-1st (%.1f) worse than security-2nd (%.1f)",
			means[core.SecurityFirst], means[core.SecuritySecond])
	}
	if means[core.SecuritySecond] > means[core.SecurityThird]+eps {
		t.Errorf("security-2nd (%.1f) worse than security-3rd (%.1f)",
			means[core.SecuritySecond], means[core.SecurityThird])
	}
	if means[core.SecurityThird] > means[core.SecureOff]+eps {
		t.Errorf("security-3rd (%.1f) worse than off (%.1f)",
			means[core.SecurityThird], means[core.SecureOff])
	}
	// And security-1st at a meaningful core deployment must actually beat
	// the undefended baseline.
	if means[core.SecurityFirst] >= means[core.SecureOff] {
		t.Errorf("security-1st (%.1f) no better than undefended (%.1f)",
			means[core.SecurityFirst], means[core.SecureOff])
	}
}

// TestSecureChainRequiresFullPath: a secure route exists only along fully
// deployed paths — breaking one hop of the chain removes the protection.
func TestSecureChainRequiresFullPath(t *testing.T) {
	// Hand-built chain: T1(1) ── M(10) ── target(20); attacker(30) under T1.
	b := topology.NewBuilder()
	for _, l := range []struct {
		a, c asn.ASN
		r    topology.Rel
	}{
		{1, 10, topology.RelCustomer},
		{10, 20, topology.RelCustomer},
		{1, 30, topology.RelCustomer},
		{1, 2, topology.RelPeer},
		{2, 40, topology.RelCustomer}, // observer stub under the other tier-1
	} {
		if err := b.AddLink(l.a, l.c, l.r); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	c := topology.Classify(g, topology.ClassifyOptions{Tier2MinCustomers: 1})
	pol, err := core.NewPolicy(g, c.Tier1, core.WithTier1ShortestPath(false))
	if err != nil {
		t.Fatal(err)
	}
	ix := func(a asn.ASN) int {
		i, ok := g.Index(a)
		if !ok {
			t.Fatalf("missing AS%v", a)
		}
		return i
	}
	target, attacker, observerT1 := ix(20), ix(30), ix(2)

	// Fully deployed chain {target, M, T1a, T1b}: T1b prefers the secure
	// (longer) route to the target over the shorter bogus customer route
	// under security-1st... both routes reach T1b as peer/customer:
	// T1a offers the target's secure route (customer-class at T1a), the
	// attacker's insecure route is also a customer route of T1a — T1a
	// itself picks by length: bogus (dist 1) beats legit (dist 2) when
	// insecure. With security-1st at T1a, the secure route wins there and
	// everything below T1b stays clean.
	full := []int{target, ix(10), ix(1), observerT1}
	res, err := Evaluate(pol, target, []int{attacker}, full, core.SecurityFirst)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pollution[0] != 0 {
		t.Errorf("fully deployed chain: pollution = %d, want 0", res.Pollution[0])
	}

	// Break the chain at M(10): no secure route can exist anywhere, so
	// the outcome reverts to the undefended one.
	broken := []int{target, ix(1), observerT1}
	resBroken, err := Evaluate(pol, target, []int{attacker}, broken, core.SecurityFirst)
	if err != nil {
		t.Fatal(err)
	}
	resOff, err := Evaluate(pol, target, []int{attacker}, nil, core.SecureOff)
	if err != nil {
		t.Fatal(err)
	}
	if resBroken.Pollution[0] != resOff.Pollution[0] {
		t.Errorf("broken chain should equal undefended: %d vs %d",
			resBroken.Pollution[0], resOff.Pollution[0])
	}
	if resBroken.Pollution[0] == 0 {
		t.Error("broken chain cannot protect anyone")
	}
}

func TestModeName(t *testing.T) {
	names := map[core.SecureMode]string{
		core.SecureOff:      "security off",
		core.SecurityFirst:  "security 1st",
		core.SecuritySecond: "security 2nd",
		core.SecurityThird:  "security 3rd",
	}
	for m, want := range names {
		if got := ModeName(m); got != want {
			t.Errorf("ModeName(%d) = %q, want %q", m, got, want)
		}
	}
}
