package mrt

import (
	"bytes"
	"testing"

	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/topology"
)

func TestSnapshotRoundTripFromOutcome(t *testing.T) {
	g := topology.MustGenerate(topology.DefaultParams(400))
	con, err := topology.ContractSiblings(g)
	if err != nil {
		t.Fatal(err)
	}
	cg := con.Graph
	c := topology.Classify(cg, topology.ClassifyOptions{})
	pol, err := core.NewPolicy(cg, c.Tier1)
	if err != nil {
		t.Fatal(err)
	}
	target, err := topology.FindTarget(cg, c, topology.TargetQuery{Depth: 2, Stub: true})
	if err != nil {
		t.Fatal(err)
	}
	o, err := core.NewSolver(pol).Solve(core.Attack{Target: target, Attacker: c.Tier1[0]}, nil)
	if err != nil {
		t.Fatal(err)
	}

	contested := mp("129.82.0.0/16")
	peers := topology.NodesByDegree(cg)[:12]
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, cg, o, contested, peers, 1234); err != nil {
		t.Fatal(err)
	}
	snap, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Peers.Peers) != len(peers) {
		t.Fatalf("peers = %d, want %d", len(snap.Peers.Peers), len(peers))
	}
	paths := snap.PathsByPeerAS(contested)
	for _, p := range peers {
		want := o.Path(p)
		got, ok := paths[cg.ASN(p)]
		if want == nil {
			if ok {
				t.Errorf("peer %v: unexpected RIB entry", cg.ASN(p))
			}
			continue
		}
		if !ok {
			t.Errorf("peer %v: missing RIB entry", cg.ASN(p))
			continue
		}
		if len(got) != len(want) {
			t.Errorf("peer %v: path length %d, want %d", cg.ASN(p), len(got), len(want))
			continue
		}
		for k := range want {
			if got[k] != cg.ASN(want[k]) {
				t.Errorf("peer %v: path[%d] = %v, want %v", cg.ASN(p), k, got[k], cg.ASN(want[k]))
			}
		}
	}
	if err := WriteSnapshot(&buf, cg, o, contested, []int{-1}, 0); err == nil {
		t.Error("bad peer index accepted")
	}
}

func TestReadSnapshotErrors(t *testing.T) {
	// RIB before peer table.
	var buf bytes.Buffer
	w := NewWriter(&buf, 1)
	if err := w.WriteRIB(&RIBIPv4Unicast{Prefix: mp("10.0.0.0/8")}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("RIB-before-peer-table accepted")
	}
	// Empty stream.
	if _, err := ReadSnapshot(bytes.NewReader(nil)); err == nil {
		t.Error("empty snapshot accepted")
	}
	// Entry referencing a nonexistent peer.
	buf.Reset()
	w = NewWriter(&buf, 1)
	if err := w.WritePeerIndexTable(&PeerIndexTable{ViewName: "v"}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRIB(&RIBIPv4Unicast{
		Prefix:  mp("10.0.0.0/8"),
		Entries: []RIBEntry{{PeerIndex: 5, Origin: 0, ASPath: nil}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("dangling peer index accepted")
	}
}
