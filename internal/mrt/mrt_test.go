package mrt

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"testing"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/bgpwire"
	"github.com/bgpsim/bgpsim/internal/prefix"
)

func mp(s string) prefix.Prefix { return prefix.MustParse(s) }

func TestPeerIndexTableRoundTrip(t *testing.T) {
	in := &PeerIndexTable{
		CollectorBGPID: 0x0a0b0c0d,
		ViewName:       "route-views.sim",
		Peers: []Peer{
			{BGPID: 1, Addr: 0xc0000201, AS: 7018},
			{BGPID: 2, Addr: 0xc0000202, AS: 4200000000},
		},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf, 1000)
	if err := w.WritePeerIndexTable(in); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rec, err := NewReader(&buf).Next()
	if err != nil {
		t.Fatal(err)
	}
	got, ok := rec.(*PeerIndexTable)
	if !ok {
		t.Fatalf("decoded %T", rec)
	}
	if !reflect.DeepEqual(got, in) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, in)
	}
}

func TestRIBRoundTrip(t *testing.T) {
	in := &RIBIPv4Unicast{
		SequenceNumber: 42,
		Prefix:         mp("129.82.0.0/16"),
		Entries: []RIBEntry{
			{PeerIndex: 0, OriginatedTime: 99, Origin: bgpwire.OriginIGP,
				ASPath: []asn.ASN{7018, 12145}, NextHop: 7},
			{PeerIndex: 1, OriginatedTime: 98, Origin: bgpwire.OriginIncomplete,
				ASPath: []asn.ASN{3356, 209, 12145}, NextHop: 9},
		},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf, 1234)
	if err := w.WriteRIB(in); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rec, err := NewReader(&buf).Next()
	if err != nil {
		t.Fatal(err)
	}
	got, ok := rec.(*RIBIPv4Unicast)
	if !ok {
		t.Fatalf("decoded %T", rec)
	}
	if !reflect.DeepEqual(got, in) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, in)
	}
}

func TestBGP4MPRoundTrip(t *testing.T) {
	in := &BGP4MPMessage{
		Timestamp: 777,
		PeerAS:    65001,
		LocalAS:   65000,
		PeerAddr:  0x01020304,
		LocalAddr: 0x05060708,
		Message: &bgpwire.Update{
			Origin:  bgpwire.OriginIGP,
			ASPath:  []asn.ASN{65001, 12145},
			NextHop: 0x01020304,
			NLRI:    []prefix.Prefix{mp("129.82.0.0/16")},
		},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf, 777)
	if err := w.WriteBGP4MP(in); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rec, err := NewReader(&buf).Next()
	if err != nil {
		t.Fatal(err)
	}
	got, ok := rec.(*BGP4MPMessage)
	if !ok {
		t.Fatalf("decoded %T", rec)
	}
	if !reflect.DeepEqual(got, in) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, in)
	}
}

func TestMixedStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 1)
	pit := &PeerIndexTable{ViewName: "v", Peers: []Peer{{AS: 1}}}
	if err := w.WritePeerIndexTable(pit); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		rib := &RIBIPv4Unicast{
			SequenceNumber: uint32(i),
			Prefix:         prefix.New(uint32(i)<<24, 8),
			Entries: []RIBEntry{{
				Origin: bgpwire.OriginIGP, ASPath: []asn.ASN{asn.ASN(i + 1)}, NextHop: 1,
			}},
		}
		if err := w.WriteRIB(rib); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	count := 0
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		count++
		if count == 1 {
			if _, ok := rec.(*PeerIndexTable); !ok {
				t.Errorf("first record is %T, want PeerIndexTable", rec)
			}
		}
	}
	if count != 6 {
		t.Errorf("read %d records, want 6", count)
	}
}

func TestReaderReportsUnknownTypes(t *testing.T) {
	var buf bytes.Buffer
	// Unknown record (type 99), then a valid peer index table.
	hdr := make([]byte, 12)
	hdr[5] = 99
	hdr[11] = 3
	buf.Write(hdr)
	buf.Write([]byte{1, 2, 3})
	w := NewWriter(&buf, 1)
	if err := w.WritePeerIndexTable(&PeerIndexTable{ViewName: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	_, err := r.Next()
	var unknown *ErrUnknownRecord
	if !errors.As(err, &unknown) {
		t.Fatalf("first Next error = %v, want *ErrUnknownRecord", err)
	}
	if unknown.Type != 99 || unknown.Length != 3 {
		t.Errorf("unknown record = %+v, want type 99 length 3", unknown)
	}
	if !Skippable(err) {
		t.Error("ErrUnknownRecord not Skippable")
	}
	if r.Offset() != 15 {
		t.Errorf("Offset after skipping = %d, want 15", r.Offset())
	}
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rec.(*PeerIndexTable); !ok {
		t.Errorf("got %T, want PeerIndexTable after skipping unknown", rec)
	}
	if r.Skipped() != 1 {
		t.Errorf("Skipped = %d, want 1", r.Skipped())
	}
}

func TestReaderReportsMalformedBody(t *testing.T) {
	var buf bytes.Buffer
	// A TABLE_DUMP_V2 peer-index record whose body is too short to parse,
	// followed by a valid one: the reader must stay aligned.
	hdr := make([]byte, 12)
	hdr[5] = TypeTableDumpV2
	hdr[7] = SubtypePeerIndexTable
	hdr[11] = 3
	buf.Write(hdr)
	buf.Write([]byte{1, 2, 3})
	w := NewWriter(&buf, 1)
	if err := w.WritePeerIndexTable(&PeerIndexTable{ViewName: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	_, err := r.Next()
	var malformed *ErrMalformedRecord
	if !errors.As(err, &malformed) {
		t.Fatalf("first Next error = %v, want *ErrMalformedRecord", err)
	}
	if !Skippable(err) {
		t.Error("ErrMalformedRecord not Skippable")
	}
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rec.(*PeerIndexTable); !ok {
		t.Errorf("got %T, want PeerIndexTable after malformed record", rec)
	}
}

func TestReaderErrors(t *testing.T) {
	// Truncated header.
	r := NewReader(bytes.NewReader([]byte{1, 2, 3}))
	if _, err := r.Next(); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated header error = %v, want ErrTruncated", err)
	}
	if r.Offset() != 0 {
		t.Errorf("clean-prefix offset after truncated header = %d, want 0", r.Offset())
	}
	// Truncated body.
	hdr := make([]byte, 12)
	hdr[5] = TypeTableDumpV2
	hdr[7] = SubtypePeerIndexTable
	hdr[11] = 200 // claims 200 bytes
	if _, err := NewReader(bytes.NewReader(append(hdr, 1, 2))).Next(); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated body error = %v, want ErrTruncated", err)
	}
	// Truncation is fatal, not skippable.
	if Skippable(fmt.Errorf("wrap: %w", ErrTruncated)) {
		t.Error("ErrTruncated reported Skippable")
	}
	// Clean EOF.
	if _, err := NewReader(bytes.NewReader(nil)).Next(); err != io.EOF {
		t.Errorf("empty stream error = %v, want io.EOF", err)
	}
}

// TestReaderCleanPrefix writes two good records, then chops the stream
// mid-way through a third: both good records must decode and Offset must
// land exactly on the byte where the truncated record starts.
func TestReaderCleanPrefix(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 1)
	if err := w.WritePeerIndexTable(&PeerIndexTable{ViewName: "v", Peers: []Peer{{AS: 1}}}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRIB(&RIBIPv4Unicast{Prefix: mp("10.0.0.0/8")}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	cleanLen := buf.Len()
	if err := w.WriteRIB(&RIBIPv4Unicast{Prefix: mp("10.1.0.0/16")}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	chopped := buf.Bytes()[:buf.Len()-1]

	r := NewReader(bytes.NewReader(chopped))
	var recs int
	for {
		_, err := r.Next()
		if err == nil {
			recs++
			continue
		}
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("error = %v, want ErrTruncated", err)
		}
		break
	}
	if recs != 2 {
		t.Errorf("clean records = %d, want 2", recs)
	}
	if r.Offset() != int64(cleanLen) {
		t.Errorf("Offset = %d, want clean prefix %d", r.Offset(), cleanLen)
	}
}

func TestReaderMalformedBudget(t *testing.T) {
	var buf bytes.Buffer
	unknown := make([]byte, 12)
	unknown[5] = 99
	for i := 0; i < 4; i++ {
		buf.Write(unknown)
	}
	r := NewReader(bytes.NewReader(buf.Bytes()))
	r.SetMalformedBudget(2)
	var fatal error
	for i := 0; i < 10; i++ {
		_, err := r.Next()
		if err == nil || Skippable(err) {
			continue
		}
		fatal = err
		break
	}
	if !errors.Is(fatal, ErrBudgetExhausted) {
		t.Errorf("over-budget error = %v, want ErrBudgetExhausted", fatal)
	}

	// Negative budget: unlimited.
	r = NewReader(bytes.NewReader(buf.Bytes()))
	r.SetMalformedBudget(-1)
	for {
		_, err := r.Next()
		if err == io.EOF {
			break
		}
		if !Skippable(err) {
			t.Fatalf("unlimited budget error = %v", err)
		}
	}
	if r.Skipped() != 4 {
		t.Errorf("Skipped = %d, want 4", r.Skipped())
	}
}

// TestFuzzGarbage feeds random bytes; the reader must error or EOF, never
// panic or loop forever.
func TestFuzzGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		data := make([]byte, rng.Intn(200))
		rng.Read(data)
		r := NewReader(bytes.NewReader(data))
		for i := 0; i < 20; i++ {
			if _, err := r.Next(); err != nil {
				break
			}
		}
	}
}
