package mrt_test

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"github.com/bgpsim/bgpsim/internal/firehose"
	"github.com/bgpsim/bgpsim/internal/mrt"
)

// drainStream runs a Reader to its terminal error, checking the
// progress invariants every step: Offset never runs backwards or past
// the input, and every call either yields a record, a skippable error,
// or ends the stream. Returns the record count, the reader's skip
// count, the clean-prefix offset and the terminal error (io.EOF for a
// clean end).
func drainStream(t *testing.T, data []byte, budget int) (recs, skipped int, off int64, term error) {
	t.Helper()
	r := mrt.NewReader(bytes.NewReader(data))
	r.SetMalformedBudget(budget)
	// A record is at least a 12-byte header, so a reader that makes
	// progress can take at most len/12+1 steps to the terminal error.
	maxSteps := len(data)/12 + 2
	for steps := 0; ; steps++ {
		if steps > maxSteps {
			t.Fatalf("reader made no progress: %d steps over %d bytes", steps, len(data))
		}
		rec, err := r.Next()
		if o := r.Offset(); o < off || o > int64(len(data)) {
			t.Fatalf("offset %d outside [%d,%d]", o, off, len(data))
		}
		off = r.Offset()
		switch {
		case err == nil:
			if rec == nil {
				t.Fatal("nil record with nil error")
			}
			recs++
		case mrt.Skippable(err):
			continue
		default:
			return recs, r.Skipped(), off, err
		}
	}
}

// FuzzMRTReader drives the MRT reader over arbitrary bytes. The
// properties under test are the robustness contract the firehose replay
// engine leans on: no panic and no runaway allocation on corrupt
// lengths, skippable errors leave the stream aligned, truncation yields
// a clean prefix that is a fixed point under re-parsing, and the
// malformed budget trips after exactly budget+1 skips.
func FuzzMRTReader(f *testing.F) {
	var rib, upd bytes.Buffer
	if err := firehose.WriteIncidentRIB(&rib); err != nil {
		f.Fatal(err)
	}
	if err := firehose.WriteIncidentUpdates(&upd); err != nil {
		f.Fatal(err)
	}
	f.Add(rib.Bytes())
	f.Add(upd.Bytes())
	f.Add(append(rib.Bytes(), upd.Bytes()...))
	f.Add(rib.Bytes()[:len(rib.Bytes())-7]) // truncated mid-record
	f.Add(rib.Bytes()[:5])                  // truncated mid-header
	f.Add([]byte{})
	// Unknown record type, well-formed framing.
	f.Add([]byte{0, 0, 0, 0, 0, 99, 0, 1, 0, 0, 0, 2, 0xAB, 0xCD})
	// Implausible length claim: must be fatal, never a 2 GiB allocation.
	f.Add([]byte{0, 0, 0, 0, 0, 16, 0, 4, 0x7f, 0xff, 0xff, 0xff})
	corrupt := append([]byte(nil), upd.Bytes()...)
	corrupt[20] ^= 0xff
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, skipped, off, term := drainStream(t, data, -1)
		if errors.Is(term, mrt.ErrBudgetExhausted) {
			t.Fatalf("unlimited budget exhausted after %d skips", skipped)
		}
		if errors.Is(term, mrt.ErrTruncated) {
			// The clean prefix must re-parse to the same stream and end
			// cleanly: Offset is the contract the replay engine trusts
			// when it reports "replayed the intact prefix".
			recs2, skipped2, off2, term2 := drainStream(t, data[:off], -1)
			if term2 != io.EOF {
				t.Fatalf("clean prefix [:%d] did not end cleanly: %v", off, term2)
			}
			if recs2 != recs || skipped2 != skipped || off2 != off {
				t.Fatalf("clean prefix not a fixed point: records %d→%d, skips %d→%d, offset %d→%d",
					recs, recs2, skipped, skipped2, off, off2)
			}
		}

		// A budgeted reader sees a prefix of the unlimited reader's
		// stream and trips after exactly budget+1 skippable records.
		const budget = 2
		brecs, bskipped, boff, bterm := drainStream(t, data, budget)
		if boff > off || brecs > recs {
			t.Fatalf("budgeted run overran unlimited run: offset %d>%d, records %d>%d", boff, off, brecs, recs)
		}
		if errors.Is(bterm, mrt.ErrBudgetExhausted) != (skipped > budget) {
			t.Fatalf("budget %d with %d skippable records ended with %v", budget, skipped, bterm)
		}
		if errors.Is(bterm, mrt.ErrBudgetExhausted) && bskipped != budget+1 {
			t.Fatalf("budget %d tripped after %d skips, want %d", budget, bskipped, budget+1)
		}
	})
}
