package mrt

import (
	"fmt"
	"io"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/bgpwire"
	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/prefix"
	"github.com/bgpsim/bgpsim/internal/topology"
)

// WriteSnapshot dumps one converged routing state as a RouteViews-style
// TABLE_DUMP_V2 snapshot: a peer index table for the chosen vantage ASes
// followed by one RIB record for the contested prefix holding each peer's
// selected AS path. The result is byte-compatible with what real
// MRT-consuming pipelines read.
func WriteSnapshot(w io.Writer, g *topology.Graph, o *core.Outcome, contested prefix.Prefix, peers []int, timestamp uint32) error {
	mw := NewWriter(w, timestamp)
	pit := &PeerIndexTable{
		CollectorBGPID: 0x0a000001,
		ViewName:       "bgpsim",
	}
	var entries []RIBEntry
	for _, p := range peers {
		if p < 0 || p >= g.N() {
			return fmt.Errorf("mrt snapshot: peer index %d out of range", p)
		}
		idx := uint16(len(pit.Peers))
		pit.Peers = append(pit.Peers, Peer{
			BGPID: uint32(p + 1),
			Addr:  uint32(p + 1),
			AS:    g.ASN(p),
		})
		path := o.Path(p)
		if path == nil {
			continue // peer has no route for the prefix: no RIB entry
		}
		asPath := make([]asn.ASN, 0, len(path))
		for _, node := range path {
			asPath = append(asPath, g.ASN(node))
		}
		entries = append(entries, RIBEntry{
			PeerIndex:      idx,
			OriginatedTime: timestamp,
			Origin:         bgpwire.OriginIGP,
			ASPath:         asPath,
			NextHop:        uint32(p + 1),
		})
	}
	if err := mw.WritePeerIndexTable(pit); err != nil {
		return err
	}
	if err := mw.WriteRIB(&RIBIPv4Unicast{SequenceNumber: 0, Prefix: contested, Entries: entries}); err != nil {
		return err
	}
	return mw.Flush()
}

// Snapshot is a decoded TABLE_DUMP_V2 dump.
type Snapshot struct {
	Peers *PeerIndexTable
	RIBs  []*RIBIPv4Unicast
}

// ReadSnapshot decodes a full dump (peer table first, per RFC 6396).
// Unknown or malformed records are skipped up to the reader's default
// malformed budget.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	mr := NewReader(r)
	s := &Snapshot{}
	for {
		rec, err := mr.Next()
		if err == io.EOF {
			break
		}
		if Skippable(err) {
			continue
		}
		if err != nil {
			return nil, err
		}
		switch v := rec.(type) {
		case *PeerIndexTable:
			if s.Peers != nil {
				return nil, fmt.Errorf("mrt snapshot: duplicate peer index table")
			}
			s.Peers = v
		case *RIBIPv4Unicast:
			if s.Peers == nil {
				return nil, fmt.Errorf("mrt snapshot: RIB record before peer index table")
			}
			for _, e := range v.Entries {
				if int(e.PeerIndex) >= len(s.Peers.Peers) {
					return nil, fmt.Errorf("mrt snapshot: RIB entry references peer %d of %d",
						e.PeerIndex, len(s.Peers.Peers))
				}
			}
			s.RIBs = append(s.RIBs, v)
		}
	}
	if s.Peers == nil {
		return nil, fmt.Errorf("mrt snapshot: no peer index table")
	}
	return s, nil
}

// PathsByPeerAS flattens a snapshot into peer-AS → AS path for one prefix.
func (s *Snapshot) PathsByPeerAS(p prefix.Prefix) map[asn.ASN][]asn.ASN {
	out := make(map[asn.ASN][]asn.ASN)
	for _, rib := range s.RIBs {
		if rib.Prefix != p {
			continue
		}
		for _, e := range rib.Entries {
			peer := s.Peers.Peers[e.PeerIndex]
			out[peer.AS] = append([]asn.ASN(nil), e.ASPath...)
		}
	}
	return out
}
