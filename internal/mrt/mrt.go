// Package mrt implements the MRT export format (RFC 6396) that BGP
// collectors such as Oregon RouteViews — the paper's validation data
// source — publish their RIB snapshots and update streams in:
// TABLE_DUMP_V2 PEER_INDEX_TABLE / RIB_IPV4_UNICAST records and BGP4MP
// AS4 message records. The package reads and writes both, so simulated
// routing tables can round-trip through the same on-disk format real
// measurement pipelines consume.
package mrt

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/bgpwire"
	"github.com/bgpsim/bgpsim/internal/prefix"
)

// MRT record types and subtypes used here.
const (
	TypeTableDumpV2 = 13
	TypeBGP4MP      = 16

	SubtypePeerIndexTable = 1
	SubtypeRIBIPv4Unicast = 2
	SubtypeMessageAS4     = 4
)

// Record is one decoded MRT record.
type Record interface{ mrtRecord() }

// Peer describes one collector peer in a PEER_INDEX_TABLE.
type Peer struct {
	BGPID uint32
	Addr  uint32 // IPv4, host byte order
	AS    asn.ASN
}

// PeerIndexTable is the TABLE_DUMP_V2 peer directory that RIB entries
// reference by index.
type PeerIndexTable struct {
	CollectorBGPID uint32
	ViewName       string
	Peers          []Peer
}

func (*PeerIndexTable) mrtRecord() {}

// RIBEntry is one peer's route for a RIB record's prefix.
type RIBEntry struct {
	PeerIndex      uint16
	OriginatedTime uint32
	Origin         uint8
	ASPath         []asn.ASN
	NextHop        uint32
}

// RIBIPv4Unicast is one TABLE_DUMP_V2 RIB record: every peer's route to
// one prefix.
type RIBIPv4Unicast struct {
	SequenceNumber uint32
	Prefix         prefix.Prefix
	Entries        []RIBEntry
}

func (*RIBIPv4Unicast) mrtRecord() {}

// BGP4MPMessage is a BGP4MP MESSAGE_AS4 record: one BGP message as seen on
// a collector session.
type BGP4MPMessage struct {
	Timestamp uint32
	PeerAS    asn.ASN
	LocalAS   asn.ASN
	PeerAddr  uint32
	LocalAddr uint32
	// Message is the decoded BGP message (*bgpwire.Update etc.).
	Message any
}

func (*BGP4MPMessage) mrtRecord() {}

// Writer emits MRT records.
type Writer struct {
	w   *bufio.Writer
	now uint32
}

// NewWriter wraps w; timestamp stamps every record (collectors use the
// dump wall-clock; the simulator passes logical time).
func NewWriter(w io.Writer, timestamp uint32) *Writer {
	return &Writer{w: bufio.NewWriter(w), now: timestamp}
}

func (w *Writer) writeRecord(typ, subtype uint16, body []byte) error {
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:4], w.now)
	binary.BigEndian.PutUint16(hdr[4:6], typ)
	binary.BigEndian.PutUint16(hdr[6:8], subtype)
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(body)))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.w.Write(body)
	return err
}

// WritePeerIndexTable emits the peer directory; call it before any RIB
// records, as RFC 6396 requires.
func (w *Writer) WritePeerIndexTable(t *PeerIndexTable) error {
	var buf bytes.Buffer
	var b4 [4]byte
	binary.BigEndian.PutUint32(b4[:], t.CollectorBGPID)
	buf.Write(b4[:])
	var b2 [2]byte
	binary.BigEndian.PutUint16(b2[:], uint16(len(t.ViewName)))
	buf.Write(b2[:])
	buf.WriteString(t.ViewName)
	binary.BigEndian.PutUint16(b2[:], uint16(len(t.Peers)))
	buf.Write(b2[:])
	for _, p := range t.Peers {
		// Peer type 0x06: AS4 + IPv4 address.
		buf.WriteByte(0x06)
		binary.BigEndian.PutUint32(b4[:], p.BGPID)
		buf.Write(b4[:])
		binary.BigEndian.PutUint32(b4[:], p.Addr)
		buf.Write(b4[:])
		binary.BigEndian.PutUint32(b4[:], p.AS.Uint32())
		buf.Write(b4[:])
	}
	return w.writeRecord(TypeTableDumpV2, SubtypePeerIndexTable, buf.Bytes())
}

// WriteRIB emits one RIB_IPV4_UNICAST record.
func (w *Writer) WriteRIB(r *RIBIPv4Unicast) error {
	var buf bytes.Buffer
	var b4 [4]byte
	var b2 [2]byte
	binary.BigEndian.PutUint32(b4[:], r.SequenceNumber)
	buf.Write(b4[:])
	// NLRI: length byte + truncated prefix.
	buf.WriteByte(r.Prefix.Len)
	binary.BigEndian.PutUint32(b4[:], r.Prefix.Addr)
	buf.Write(b4[:int(r.Prefix.Len+7)/8])
	binary.BigEndian.PutUint16(b2[:], uint16(len(r.Entries)))
	buf.Write(b2[:])
	for _, e := range r.Entries {
		binary.BigEndian.PutUint16(b2[:], e.PeerIndex)
		buf.Write(b2[:])
		binary.BigEndian.PutUint32(b4[:], e.OriginatedTime)
		buf.Write(b4[:])
		attrs, err := bgpwire.EncodeAttributes(e.Origin, e.ASPath, e.NextHop)
		if err != nil {
			return fmt.Errorf("mrt: rib entry: %w", err)
		}
		binary.BigEndian.PutUint16(b2[:], uint16(len(attrs)))
		buf.Write(b2[:])
		buf.Write(attrs)
	}
	return w.writeRecord(TypeTableDumpV2, SubtypeRIBIPv4Unicast, buf.Bytes())
}

// WriteBGP4MP emits one BGP4MP MESSAGE_AS4 record.
func (w *Writer) WriteBGP4MP(m *BGP4MPMessage) error {
	msg, err := bgpwire.Marshal(m.Message)
	if err != nil {
		return fmt.Errorf("mrt: bgp4mp: %w", err)
	}
	var buf bytes.Buffer
	var b4 [4]byte
	var b2 [2]byte
	binary.BigEndian.PutUint32(b4[:], m.PeerAS.Uint32())
	buf.Write(b4[:])
	binary.BigEndian.PutUint32(b4[:], m.LocalAS.Uint32())
	buf.Write(b4[:])
	binary.BigEndian.PutUint16(b2[:], 0) // interface index
	buf.Write(b2[:])
	binary.BigEndian.PutUint16(b2[:], 1) // AFI IPv4
	buf.Write(b2[:])
	binary.BigEndian.PutUint32(b4[:], m.PeerAddr)
	buf.Write(b4[:])
	binary.BigEndian.PutUint32(b4[:], m.LocalAddr)
	buf.Write(b4[:])
	buf.Write(msg)
	return w.writeRecord(TypeBGP4MP, SubtypeMessageAS4, buf.Bytes())
}

// Flush flushes buffered records.
func (w *Writer) Flush() error { return w.w.Flush() }

// ErrTruncated marks a file that ends mid-record. The records decoded
// before it form a clean prefix of the stream (the recovery model of
// recio.RecoverFile): Offset reports where that prefix ends.
var ErrTruncated = errors.New("mrt: truncated record")

// ErrBudgetExhausted ends a stream whose skippable-record count exceeded
// the reader's malformed budget. It is fatal: a file this degraded is more
// likely the wrong format than a damaged capture.
var ErrBudgetExhausted = errors.New("mrt: malformed-record budget exhausted")

// ErrUnknownRecord reports a record of a type/subtype this package does
// not decode. The reader stays aligned on the following record, so callers
// that tolerate foreign records skip it by calling Next again.
type ErrUnknownRecord struct {
	Type    uint16
	Subtype uint16
	Length  uint32
}

func (e *ErrUnknownRecord) Error() string {
	return fmt.Sprintf("mrt: unknown record type %d subtype %d (%d bytes)", e.Type, e.Subtype, e.Length)
}

// ErrMalformedRecord reports a record of a known type whose body failed to
// decode. The whole body was consumed, so the reader stays aligned and
// callers can skip it by calling Next again.
type ErrMalformedRecord struct {
	Type    uint16
	Subtype uint16
	Err     error
}

func (e *ErrMalformedRecord) Error() string {
	return fmt.Sprintf("mrt: malformed record type %d subtype %d: %v", e.Type, e.Subtype, e.Err)
}

func (e *ErrMalformedRecord) Unwrap() error { return e.Err }

// Skippable reports whether err marks exactly one damaged or foreign
// record after which the stream remains record-aligned, so the caller may
// keep reading. Truncation and budget exhaustion are not skippable.
func Skippable(err error) bool {
	var unknown *ErrUnknownRecord
	var malformed *ErrMalformedRecord
	return errors.As(err, &unknown) || errors.As(err, &malformed)
}

// DefaultMalformedBudget is the per-file cap on skippable records a Reader
// tolerates before Next turns fatal, mirroring the per-session malformed
// budget in the feed collector.
const DefaultMalformedBudget = 64

// Reader decodes MRT records sequentially.
type Reader struct {
	r       *bufio.Reader
	off     int64
	skipped int
	budget  int
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r), budget: DefaultMalformedBudget}
}

// SetMalformedBudget caps how many skippable records (unknown type or
// malformed body) Next tolerates before failing with ErrBudgetExhausted.
// Negative means unlimited.
func (r *Reader) SetMalformedBudget(n int) { r.budget = n }

// Offset is the byte offset of the clean prefix read so far: the end of
// the last fully consumed record, which is also where the next record
// header starts. After ErrTruncated it is the safe re-write point.
func (r *Reader) Offset() int64 { return r.off }

// Skipped counts the skippable records surfaced so far.
func (r *Reader) Skipped() int { return r.skipped }

// skip accounts one skippable record against the malformed budget and
// returns either the typed error or, over budget, a fatal one.
func (r *Reader) skip(err error) error {
	r.skipped++
	if r.budget >= 0 && r.skipped > r.budget {
		return fmt.Errorf("%w after %d skippable records, last: %v", ErrBudgetExhausted, r.skipped, err)
	}
	return err
}

// Next returns the next record, or io.EOF at a clean end of stream.
// Unknown record types and undecodable bodies come back as typed
// *ErrUnknownRecord / *ErrMalformedRecord errors with the stream still
// aligned — call Next again to continue past them (subject to the
// malformed budget). A stream ending mid-record yields an error wrapping
// ErrTruncated; the records already returned are a clean prefix ending at
// Offset.
func (r *Reader) Next() (Record, error) {
	var hdr [12]byte
	if n, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("mrt: %d of 12 header bytes at offset %d: %w", n, r.off, ErrTruncated)
		}
		return nil, err
	}
	typ := binary.BigEndian.Uint16(hdr[4:6])
	subtype := binary.BigEndian.Uint16(hdr[6:8])
	length := binary.BigEndian.Uint32(hdr[8:12])
	if length > 1<<24 {
		// The length field itself is untrustworthy, so realignment is
		// impossible: fatal, not skippable.
		return nil, fmt.Errorf("mrt: implausible record length %d at offset %d", length, r.off)
	}
	body := make([]byte, length)
	if n, err := io.ReadFull(r.r, body); err != nil {
		return nil, fmt.Errorf("mrt: %d of %d body bytes at offset %d: %w", n, length, r.off, ErrTruncated)
	}
	r.off += 12 + int64(length)
	ts := binary.BigEndian.Uint32(hdr[0:4])
	var (
		rec Record
		err error
	)
	switch {
	case typ == TypeTableDumpV2 && subtype == SubtypePeerIndexTable:
		rec, err = parsePeerIndexTable(body)
	case typ == TypeTableDumpV2 && subtype == SubtypeRIBIPv4Unicast:
		rec, err = parseRIB(body)
	case typ == TypeBGP4MP && subtype == SubtypeMessageAS4:
		rec, err = parseBGP4MP(ts, body)
	default:
		return nil, r.skip(&ErrUnknownRecord{Type: typ, Subtype: subtype, Length: length})
	}
	if err != nil {
		return nil, r.skip(&ErrMalformedRecord{Type: typ, Subtype: subtype, Err: err})
	}
	return rec, nil
}

func parsePeerIndexTable(body []byte) (*PeerIndexTable, error) {
	if len(body) < 8 {
		return nil, fmt.Errorf("mrt: short peer index table")
	}
	t := &PeerIndexTable{CollectorBGPID: binary.BigEndian.Uint32(body[0:4])}
	nameLen := int(binary.BigEndian.Uint16(body[4:6]))
	if len(body) < 6+nameLen+2 {
		return nil, fmt.Errorf("mrt: peer index table name overruns")
	}
	t.ViewName = string(body[6 : 6+nameLen])
	rest := body[6+nameLen:]
	count := int(binary.BigEndian.Uint16(rest[0:2]))
	rest = rest[2:]
	for i := 0; i < count; i++ {
		if len(rest) < 1 {
			return nil, fmt.Errorf("mrt: truncated peer entry")
		}
		peerType := rest[0]
		if peerType != 0x06 {
			return nil, fmt.Errorf("mrt: unsupported peer type %#x (want AS4+IPv4)", peerType)
		}
		if len(rest) < 13 {
			return nil, fmt.Errorf("mrt: truncated AS4+IPv4 peer entry")
		}
		t.Peers = append(t.Peers, Peer{
			BGPID: binary.BigEndian.Uint32(rest[1:5]),
			Addr:  binary.BigEndian.Uint32(rest[5:9]),
			AS:    asn.FromUint32(binary.BigEndian.Uint32(rest[9:13])),
		})
		rest = rest[13:]
	}
	return t, nil
}

func parseRIB(body []byte) (*RIBIPv4Unicast, error) {
	if len(body) < 5 {
		return nil, fmt.Errorf("mrt: short RIB record")
	}
	r := &RIBIPv4Unicast{SequenceNumber: binary.BigEndian.Uint32(body[0:4])}
	plen := body[4]
	if plen > 32 {
		return nil, fmt.Errorf("mrt: RIB prefix length %d invalid", plen)
	}
	nBytes := int(plen+7) / 8
	if len(body) < 5+nBytes+2 {
		return nil, fmt.Errorf("mrt: RIB prefix overruns")
	}
	var addr [4]byte
	copy(addr[:], body[5:5+nBytes])
	r.Prefix = prefix.New(binary.BigEndian.Uint32(addr[:]), plen)
	rest := body[5+nBytes:]
	count := int(binary.BigEndian.Uint16(rest[0:2]))
	rest = rest[2:]
	for i := 0; i < count; i++ {
		if len(rest) < 8 {
			return nil, fmt.Errorf("mrt: truncated RIB entry")
		}
		e := RIBEntry{
			PeerIndex:      binary.BigEndian.Uint16(rest[0:2]),
			OriginatedTime: binary.BigEndian.Uint32(rest[2:6]),
		}
		attrLen := int(binary.BigEndian.Uint16(rest[6:8]))
		if len(rest) < 8+attrLen {
			return nil, fmt.Errorf("mrt: RIB entry attributes overrun")
		}
		var err error
		e.Origin, e.ASPath, e.NextHop, err = bgpwire.DecodeAttributes(rest[8 : 8+attrLen])
		if err != nil {
			return nil, fmt.Errorf("mrt: RIB entry: %w", err)
		}
		r.Entries = append(r.Entries, e)
		rest = rest[8+attrLen:]
	}
	return r, nil
}

func parseBGP4MP(ts uint32, body []byte) (*BGP4MPMessage, error) {
	if len(body) < 20 {
		return nil, fmt.Errorf("mrt: short BGP4MP record")
	}
	afi := binary.BigEndian.Uint16(body[10:12])
	if afi != 1 {
		return nil, fmt.Errorf("mrt: BGP4MP AFI %d unsupported", afi)
	}
	m := &BGP4MPMessage{
		Timestamp: ts,
		PeerAS:    asn.FromUint32(binary.BigEndian.Uint32(body[0:4])),
		LocalAS:   asn.FromUint32(binary.BigEndian.Uint32(body[4:8])),
		PeerAddr:  binary.BigEndian.Uint32(body[12:16]),
		LocalAddr: binary.BigEndian.Uint32(body[16:20]),
	}
	msg, err := bgpwire.Unmarshal(body[20:])
	if err != nil {
		return nil, fmt.Errorf("mrt: BGP4MP payload: %w", err)
	}
	m.Message = msg
	return m, nil
}
