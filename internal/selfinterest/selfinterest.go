// Package selfinterest implements the paper's Section VII "pragmatic
// self-interest" toolkit: measuring a region's exposure to hijacks of one
// of its ASes, reducing vulnerability by re-homing the AS to a
// shallower provider, and placing a single targeted filter at the
// regional transit hub — the New Zealand / AS55857 / VOCUS case study,
// generalized.
package selfinterest

import (
	"fmt"
	"math/rand"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/topology"
)

// RegionalResult measures how badly hijacks of one target pollute the
// target's own region, split by where the attack originates.
type RegionalResult struct {
	Region     int
	RegionSize int

	InsideAttacks int     // number of attacks launched from region members
	InsideMean    float64 // mean polluted region ASes per inside attack
	InsideFrac    float64 // InsideMean / RegionSize

	OutsideAttacks int // random sample of attacks from outside the region
	OutsideMean    float64
	OutsideFrac    float64
}

// MeasureRegional attacks the target from every AS inside the region and
// from a random sample of outsideSample ASes elsewhere, counting how many
// region ASes each attack pollutes. The outside sample is drawn from rng;
// callers comparing two policies must hand each call a generator built
// from the same seed so both measure the identical sample. Blocked is the
// active filter set (nil = none).
func MeasureRegional(pol *core.Policy, target, region, outsideSample int, rng *rand.Rand, blocked *asn.IndexSet) (*RegionalResult, error) {
	g := pol.Graph()
	regionNodes := g.RegionNodes(region)
	if len(regionNodes) == 0 {
		return nil, fmt.Errorf("regional measure: region %d is empty", region)
	}
	inRegion := make(map[int]bool, len(regionNodes))
	for _, i := range regionNodes {
		inRegion[i] = true
	}
	if !inRegion[target] {
		return nil, fmt.Errorf("regional measure: target %d not in region %d", target, region)
	}

	s := core.NewSolver(pol)
	regionalPollution := func(attacker int) (int, error) {
		o, err := s.Solve(core.Attack{Target: target, Attacker: attacker}, blocked)
		if err != nil {
			return 0, err
		}
		c := 0
		for _, i := range regionNodes {
			if o.Polluted(i) {
				c++
			}
		}
		return c, nil
	}

	res := &RegionalResult{Region: region, RegionSize: len(regionNodes)}
	insideSum := 0
	for _, a := range regionNodes {
		if a == target {
			continue
		}
		p, err := regionalPollution(a)
		if err != nil {
			return nil, err
		}
		insideSum += p
		res.InsideAttacks++
	}
	if res.InsideAttacks > 0 {
		res.InsideMean = float64(insideSum) / float64(res.InsideAttacks)
		res.InsideFrac = res.InsideMean / float64(res.RegionSize)
	}

	// Outside sample, deterministic for the generator's state.
	var outside []int
	for i := 0; i < g.N(); i++ {
		if !inRegion[i] {
			outside = append(outside, i)
		}
	}
	rng.Shuffle(len(outside), func(i, j int) { outside[i], outside[j] = outside[j], outside[i] })
	if outsideSample > len(outside) {
		outsideSample = len(outside)
	}
	outsideSum := 0
	for _, a := range outside[:outsideSample] {
		p, err := regionalPollution(a)
		if err != nil {
			return nil, err
		}
		outsideSum += p
		res.OutsideAttacks++
	}
	if res.OutsideAttacks > 0 {
		res.OutsideMean = float64(outsideSum) / float64(res.OutsideAttacks)
		res.OutsideFrac = res.OutsideMean / float64(res.RegionSize)
	}
	return res, nil
}

// RegionHub returns the region's dominant transit AS — the VOCUS analog
// where one targeted filter gives regional leverage. Dominance is measured
// by how much of the region sits in the AS's customer cone (the routes a
// filter there actually guards), with degree and ASN as tie-breaks.
func RegionHub(g *topology.Graph, region int) (int, error) {
	nodes := g.RegionNodes(region)
	inRegion := make(map[int]bool, len(nodes))
	for _, i := range nodes {
		inRegion[i] = true
	}
	best, bestCone := -1, -1
	for _, i := range nodes {
		if !g.IsTransit(i) {
			continue
		}
		cone := regionalCone(g, i, inRegion)
		better := cone > bestCone
		if cone == bestCone && best >= 0 {
			if d1, d2 := g.Degree(i), g.Degree(best); d1 != d2 {
				better = d1 > d2
			} else {
				better = g.ASN(i) < g.ASN(best)
			}
		}
		if better {
			best, bestCone = i, cone
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("region %d has no transit AS", region)
	}
	return best, nil
}

// regionalCone counts region members inside node i's customer cone.
func regionalCone(g *topology.Graph, i int, inRegion map[int]bool) int {
	visited := map[int]bool{i: true}
	queue := []int{i}
	count := 0
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		if inRegion[v] {
			count++
		}
		nbrs, rels := g.Neighbors(v)
		for k, nb := range nbrs {
			if rels[k] == topology.RelCustomer && !visited[int(nb)] {
				visited[int(nb)] = true
				queue = append(queue, int(nb))
			}
		}
	}
	return count
}

// RehomeUp re-homes the target "up N levels", reducing its depth by up to
// `levels`: it makes the ancestor levels+1 hops up the shortest provider
// chain the target's (sole) new provider (homing to an AS at depth d
// yields depth d+1), returning the modified graph and the new provider.
// This is the paper's first Section VII experiment ("re-homed AS55857 up
// two levels").
func RehomeUp(g *topology.Graph, c *topology.Classification, target, levels int) (*topology.Graph, int, error) {
	if levels < 1 {
		return nil, 0, fmt.Errorf("rehome: levels must be ≥ 1, got %d", levels)
	}
	if c.Depth[target] == topology.DepthUnreachable {
		return nil, 0, fmt.Errorf("rehome: target %d has no provider chain", target)
	}
	cur := target
	for step := 0; step < levels+1; step++ {
		if c.Depth[cur] == 0 {
			break // cannot go above the anchor
		}
		nbrs, rels := g.Neighbors(cur)
		next := -1
		for k, nb := range nbrs {
			if rels[k] == topology.RelProvider && c.Depth[nb] == c.Depth[cur]-1 {
				if next == -1 || g.ASN(int(nb)) < g.ASN(next) {
					next = int(nb)
				}
			}
		}
		if next == -1 {
			break
		}
		cur = next
	}
	if cur == target {
		return nil, 0, fmt.Errorf("rehome: no shallower provider found for %d", target)
	}
	ng, err := topology.Rehome(g, target, []int{cur})
	if err != nil {
		return nil, 0, err
	}
	return ng, cur, nil
}

// RehomeResult holds the before/after comparison of a re-homing
// experiment.
type RehomeResult struct {
	Before      *RegionalResult
	After       *RegionalResult
	OldDepth    int
	NewDepth    int
	NewProvider int // node index in the ORIGINAL graph
}

// RehomeExperiment measures regional exposure, re-homes the target up
// `levels`, and measures again on the modified internet (same node
// indexing: re-homing preserves the AS set).
func RehomeExperiment(g *topology.Graph, c *topology.Classification, target, levels, region, outsideSample int, seed int64, opts ...core.PolicyOption) (*RehomeResult, error) {
	pol, err := core.NewPolicy(g, c.Tier1, opts...)
	if err != nil {
		return nil, err
	}
	// Both measurements get a fresh generator from the same seed on
	// purpose: the before/after comparison must attack from the identical
	// outside sample, or sampling noise would masquerade as a re-homing
	// effect.
	before, err := MeasureRegional(pol, target, region, outsideSample, rand.New(rand.NewSource(seed)), nil)
	if err != nil {
		return nil, fmt.Errorf("rehome experiment (before): %w", err)
	}
	ng, newProv, err := RehomeUp(g, c, target, levels)
	if err != nil {
		return nil, err
	}
	nc := topology.Classify(ng, topology.ClassifyOptions{})
	npol, err := core.NewPolicy(ng, nc.Tier1, opts...)
	if err != nil {
		return nil, err
	}
	after, err := MeasureRegional(npol, target, region, outsideSample, rand.New(rand.NewSource(seed)), nil)
	if err != nil {
		return nil, fmt.Errorf("rehome experiment (after): %w", err)
	}
	return &RehomeResult{
		Before:      before,
		After:       after,
		OldDepth:    c.Depth[target],
		NewDepth:    nc.Depth[target],
		NewProvider: newProv,
	}, nil
}

// FilterResult holds the before/after comparison of placing one targeted
// filter at a regional hub.
type FilterResult struct {
	Base     *RegionalResult
	Filtered *RegionalResult
	FilterAS int
}

// FilterExperiment measures regional exposure with and without a single
// origin-validation filter at the region's transit hub — the paper's
// "added a single prefix filter to VOCUS at AS4826" experiment.
func FilterExperiment(pol *core.Policy, target, region, outsideSample int, seed int64) (*FilterResult, error) {
	g := pol.Graph()
	hub, err := RegionHub(g, region)
	if err != nil {
		return nil, err
	}
	// Same seed for both runs, deliberately: with and without the filter
	// must face the identical outside attack sample for the delta to be
	// attributable to the filter alone.
	base, err := MeasureRegional(pol, target, region, outsideSample, rand.New(rand.NewSource(seed)), nil)
	if err != nil {
		return nil, fmt.Errorf("filter experiment (base): %w", err)
	}
	blocked := asn.NewIndexSet(g.N())
	blocked.Add(hub)
	filtered, err := MeasureRegional(pol, target, region, outsideSample, rand.New(rand.NewSource(seed)), blocked)
	if err != nil {
		return nil, fmt.Errorf("filter experiment (filtered): %w", err)
	}
	return &FilterResult{Base: base, Filtered: filtered, FilterAS: hub}, nil
}
