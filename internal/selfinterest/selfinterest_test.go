package selfinterest

import (
	"math/rand"
	"testing"

	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/topology"
)

// islandWorld generates a topology and returns everything needed to run
// Section VII experiments against its island region.
func islandWorld(t *testing.T, n int) (*topology.Graph, *topology.Classification, *core.Policy, int, int) {
	t.Helper()
	p := topology.DefaultParams(n)
	g := topology.MustGenerate(p)
	con, err := topology.ContractSiblings(g)
	if err != nil {
		t.Fatal(err)
	}
	cg := con.Graph
	c := topology.Classify(cg, topology.ClassifyOptions{})
	pol, err := core.NewPolicy(cg, c.Tier1)
	if err != nil {
		t.Fatal(err)
	}
	island := p.Regions - 1
	// Pick the deepest stub in the island as the vulnerable target.
	best, bestDepth := -1, -1
	for _, i := range cg.RegionNodes(island) {
		if cg.IsTransit(i) {
			continue
		}
		if c.Depth[i] > bestDepth {
			best, bestDepth = i, c.Depth[i]
		}
	}
	if best < 0 {
		t.Fatal("island has no stub")
	}
	return cg, c, pol, island, best
}

func TestMeasureRegional(t *testing.T) {
	g, _, pol, island, target := islandWorld(t, 1200)
	res, err := MeasureRegional(pol, target, island, 100, rand.New(rand.NewSource(7)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.RegionSize != len(g.RegionNodes(island)) {
		t.Errorf("RegionSize = %d", res.RegionSize)
	}
	if res.InsideAttacks != res.RegionSize-1 {
		t.Errorf("InsideAttacks = %d, want %d", res.InsideAttacks, res.RegionSize-1)
	}
	if res.OutsideAttacks != 100 {
		t.Errorf("OutsideAttacks = %d, want 100", res.OutsideAttacks)
	}
	if res.InsideMean <= 0 {
		t.Error("inside attacks should pollute some region ASes")
	}
	if res.InsideFrac < 0 || res.InsideFrac > 1 || res.OutsideFrac < 0 || res.OutsideFrac > 1 {
		t.Error("fractions out of range")
	}
	// The paper's qualitative expectation: attacks from inside the region
	// pollute more of the region than attacks from outside.
	if res.InsideMean <= res.OutsideMean {
		t.Errorf("inside attacks (%.1f) should out-pollute outside attacks (%.1f) regionally",
			res.InsideMean, res.OutsideMean)
	}
	// Determinism.
	res2, err := MeasureRegional(pol, target, island, 100, rand.New(rand.NewSource(7)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if *res2 != *res {
		t.Error("MeasureRegional not deterministic for a seed")
	}
}

func TestMeasureRegionalValidation(t *testing.T) {
	g, _, pol, island, _ := islandWorld(t, 600)
	// Target outside the region is rejected.
	outside := -1
	for i := 0; i < g.N(); i++ {
		if g.Region(i) != island {
			outside = i
			break
		}
	}
	if _, err := MeasureRegional(pol, outside, island, 10, rand.New(rand.NewSource(1)), nil); err == nil {
		t.Error("target outside region accepted")
	}
	if _, err := MeasureRegional(pol, 0, 9999, 10, rand.New(rand.NewSource(1)), nil); err == nil {
		t.Error("empty region accepted")
	}
}

func TestRegionHub(t *testing.T) {
	g, _, _, island, _ := islandWorld(t, 800)
	hub, err := RegionHub(g, island)
	if err != nil {
		t.Fatal(err)
	}
	if g.Region(hub) != island || !g.IsTransit(hub) {
		t.Error("hub must be a transit AS of the region")
	}
	// The hub must dominate: no other regional transit may cover more of
	// the region with its customer cone.
	inRegion := map[int]bool{}
	for _, i := range g.RegionNodes(island) {
		inRegion[i] = true
	}
	hubCone := regionalCone(g, hub, inRegion)
	for _, i := range g.RegionNodes(island) {
		if g.IsTransit(i) && regionalCone(g, i, inRegion) > hubCone {
			t.Error("hub does not have the largest regional customer cone")
		}
	}
	if _, err := RegionHub(g, 9999); err == nil {
		t.Error("empty region accepted")
	}
}

func TestRehomeUp(t *testing.T) {
	g, c, _, _, target := islandWorld(t, 800)
	if c.Depth[target] < 2 {
		t.Skip("island target too shallow to re-home upward")
	}
	ng, newProv, err := RehomeUp(g, c, target, 2)
	if err != nil {
		t.Fatal(err)
	}
	nc := topology.Classify(ng, topology.ClassifyOptions{})
	if nc.Depth[target] >= c.Depth[target] {
		t.Errorf("rehome did not reduce depth: %d → %d", c.Depth[target], nc.Depth[target])
	}
	if ng.Rel(target, newProv) != topology.RelProvider {
		t.Error("new provider link missing")
	}
	if _, _, err := RehomeUp(g, c, target, 0); err == nil {
		t.Error("levels=0 accepted")
	}
}

// TestRehomeExperiment reproduces the paper's first Section VII
// experiment: re-homing the vulnerable island AS reduces its depth and its
// exposure. The dominant, reliable effect is against outside attacks
// (shorter provider chains beat distant attackers); the inside effect
// depends on whether the new home stays within the regional subtree, so
// we require it not to blow up rather than to strictly improve.
func TestRehomeExperiment(t *testing.T) {
	g, c, _, island, target := islandWorld(t, 1500)
	if c.Depth[target] < 2 {
		t.Skip("island target too shallow")
	}
	res, err := RehomeExperiment(g, c, target, 2, island, 120, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.NewDepth >= res.OldDepth {
		t.Errorf("depth did not drop: %d → %d", res.OldDepth, res.NewDepth)
	}
	if res.Before.OutsideMean > 0 && res.After.OutsideMean >= res.Before.OutsideMean {
		t.Errorf("re-homing did not reduce outside-attack pollution: %.2f → %.2f",
			res.Before.OutsideMean, res.After.OutsideMean)
	}
	if res.After.InsideMean > res.Before.InsideMean*1.3 {
		t.Errorf("re-homing exploded inside-attack pollution: %.2f → %.2f",
			res.Before.InsideMean, res.After.InsideMean)
	}
}

// TestFilterExperiment reproduces the paper's second Section VII
// experiment: one filter at the regional hub reduces regional pollution.
func TestFilterExperiment(t *testing.T) {
	_, _, pol, island, target := islandWorld(t, 1500)
	res, err := FilterExperiment(pol, target, island, 60, 13)
	if err != nil {
		t.Fatal(err)
	}
	if res.Filtered.InsideMean > res.Base.InsideMean {
		t.Errorf("hub filter increased inside pollution: %.2f → %.2f",
			res.Base.InsideMean, res.Filtered.InsideMean)
	}
	if res.Filtered.OutsideMean > res.Base.OutsideMean {
		t.Errorf("hub filter increased outside pollution: %.2f → %.2f",
			res.Base.OutsideMean, res.Filtered.OutsideMean)
	}
	// The filter must achieve a real reduction against inside attacks;
	// outside attacks may bypass the hub through the island's other
	// border links (the paper saw only 15 % → 14 % there).
	if res.Base.InsideMean > 0 && res.Filtered.InsideMean >= res.Base.InsideMean {
		t.Error("hub filter had no effect on inside attacks")
	}
}
