// Package pgbgp implements Pretty Good BGP (Karlin, Forrest & Rexford,
// ICNP 2006), the non-cryptographic prevention technique the paper uses as
// its comparison point: routers remember which origin ASes historically
// announced each prefix and treat announcements from novel origins as
// suspicious for a quarantine period, preferring any historically normal
// route while the suspicion lasts. Unlike origin-validation filters, a
// PGBGP router falls back to the suspicious route when nothing else is
// available — it trades a little protection for zero risk of
// disconnection.
//
// The paper cites PGBGP's claim that "97 % of ASes can be protected from
// malicious prefix routes when PGBGP is deployed only on the 62 core
// ASes", and notes that "while this result is possible, the general case
// requires wider security deployment"; Evaluate reproduces exactly that
// comparison against drop-style filtering.
package pgbgp

import (
	"fmt"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/prefix"
	"github.com/bgpsim/bgpsim/internal/stats"
)

// Day is a logical simulation day; PGBGP parameters are expressed in days.
type Day int

// History is one router's prefix-origin memory.
type History struct {
	// WindowDays is how long an origin stays "normal" after being seen
	// (PGBGP's history window h; the paper's implementation used 10 days).
	WindowDays int
	// SuspiciousDays is the quarantine applied to a novel origin
	// (PGBGP's s; 24 hours in the original).
	SuspiciousDays int

	seen map[histKey]Day // last day each (prefix, origin) was observed
}

type histKey struct {
	p      prefix.Prefix
	origin asn.ASN
}

// NewHistory returns an empty history with the given parameters (zero
// values default to the original paper's 10-day window and 1-day
// quarantine).
func NewHistory(windowDays, suspiciousDays int) *History {
	if windowDays == 0 {
		windowDays = 10
	}
	if suspiciousDays == 0 {
		suspiciousDays = 1
	}
	return &History{
		WindowDays:     windowDays,
		SuspiciousDays: suspiciousDays,
		seen:           make(map[histKey]Day),
	}
}

// Observe records that origin announced p on the given day.
func (h *History) Observe(p prefix.Prefix, origin asn.ASN, day Day) {
	key := histKey{p, origin}
	if prev, ok := h.seen[key]; !ok || day > prev {
		h.seen[key] = day
	}
}

// Suspicious reports whether an announcement of p by origin on `day`
// should be quarantined: the origin has not been seen for this prefix
// within the history window. A suspicious origin becomes normal once it
// survives the quarantine (Observe is called as the announcement persists).
func (h *History) Suspicious(p prefix.Prefix, origin asn.ASN, day Day) bool {
	last, ok := h.seen[histKey{p, origin}]
	if !ok {
		return true
	}
	if day-last > Day(h.WindowDays) {
		return true // stale history: treat as novel again
	}
	// Seen recently. If it first appeared within the quarantine period it
	// is still suspicious; we approximate first-seen by last-seen for the
	// static hijack scenarios (announcements persist, so last≈first+k).
	return false
}

// SeedFromBaseline records the pre-attack steady state into the history:
// each prefix observed with its legitimate origin on the given day. In
// deployment this is what a PGBGP router accumulates by watching BGP for
// the history window before enforcing.
func (h *History) SeedFromBaseline(owners map[prefix.Prefix]asn.ASN, day Day) {
	for p, origin := range owners { //bgplint:ignore maporder per-(prefix,origin) history updates commute; each key is visited once
		h.Observe(p, origin, day)
	}
}

// EvaluateWithHistory runs the sweep with the depref set derived from the
// history: the deployed routers quarantine the hijack announcement only
// when its (prefix, origin) is novel to them. A hijacker that already
// legitimately originated the prefix within the window (e.g. the previous
// owner after a transfer) sails through — PGBGP's inherent blind spot.
func EvaluateWithHistory(pol *core.Policy, target int, attackers, deployed []int, h *History, hijacked prefix.Prefix, day Day) (*Result, error) {
	n := pol.N()
	if target < 0 || target >= n {
		return nil, fmt.Errorf("pgbgp: target %d out of range", target)
	}
	eng := core.NewEngine(pol)
	res := &Result{Deployed: deployed}
	g := pol.Graph()
	depref := asn.NewIndexSet(n)
	for _, d := range deployed {
		if d < 0 || d >= n {
			return nil, fmt.Errorf("pgbgp: deployed node %d out of range", d)
		}
		depref.Add(d)
	}
	for _, a := range attackers {
		if a == target {
			continue
		}
		if h.Suspicious(hijacked, g.ASN(a), day) {
			eng.Depref = depref
		} else {
			eng.Depref = nil // historically normal origin: no quarantine
		}
		o, _, err := eng.Run(core.Attack{Target: target, Attacker: a}, nil, false)
		if err != nil {
			return nil, fmt.Errorf("pgbgp: attack from %d: %w", a, err)
		}
		res.Attackers = append(res.Attackers, a)
		res.Pollution = append(res.Pollution, o.PollutedCount())
	}
	return res, nil
}

// Result mirrors deploy.Evaluation for depref semantics.
type Result struct {
	Deployed  []int
	Attackers []int
	// Pollution per attack, parallel to Attackers.
	Pollution []int
}

// Summary returns distribution statistics of per-attack pollution.
func (r *Result) Summary() stats.Summary { return stats.Summarize(r.Pollution) }

// Evaluate sweeps the target with every attacker, with the deployed nodes
// running PGBGP depref (history knows only the legitimate origin, so the
// hijack's origin is quarantined). It uses the message engine, which is
// the reference implementation of the two-plane preference.
func Evaluate(pol *core.Policy, target int, attackers, deployed []int) (*Result, error) {
	n := pol.N()
	if target < 0 || target >= n {
		return nil, fmt.Errorf("pgbgp: target %d out of range", target)
	}
	depref := asn.NewIndexSet(n)
	for _, d := range deployed {
		if d < 0 || d >= n {
			return nil, fmt.Errorf("pgbgp: deployed node %d out of range", d)
		}
		depref.Add(d)
	}
	eng := core.NewEngine(pol)
	eng.Depref = depref
	res := &Result{Deployed: deployed}
	for _, a := range attackers {
		if a == target {
			continue
		}
		o, _, err := eng.Run(core.Attack{Target: target, Attacker: a}, nil, false)
		if err != nil {
			return nil, fmt.Errorf("pgbgp: attack from %d: %w", a, err)
		}
		res.Attackers = append(res.Attackers, a)
		res.Pollution = append(res.Pollution, o.PollutedCount())
	}
	return res, nil
}

// CompareWithDrop evaluates the same deployment under PGBGP depref and
// under drop-style origin-validation filtering, returning (depref, drop)
// mean pollution — the quantitative form of the paper's PGBGP
// corroboration.
func CompareWithDrop(pol *core.Policy, target int, attackers, deployed []int) (deprefMean, dropMean float64, err error) {
	pg, err := Evaluate(pol, target, attackers, deployed)
	if err != nil {
		return 0, 0, err
	}
	blocked := asn.NewIndexSet(pol.N())
	for _, d := range deployed {
		blocked.Add(d)
	}
	s := core.NewSolver(pol)
	var drops []int
	for _, a := range attackers {
		if a == target {
			continue
		}
		o, err := s.Solve(core.Attack{Target: target, Attacker: a}, blocked)
		if err != nil {
			return 0, 0, err
		}
		drops = append(drops, o.PollutedCount())
	}
	return pg.Summary().Mean, stats.Summarize(drops).Mean, nil
}
