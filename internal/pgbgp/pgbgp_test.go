package pgbgp

import (
	"testing"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/prefix"
	"github.com/bgpsim/bgpsim/internal/topology"
)

func mp(s string) prefix.Prefix { return prefix.MustParse(s) }

func TestHistorySuspicion(t *testing.T) {
	h := NewHistory(10, 1)
	p := mp("129.82.0.0/16")

	// Never-seen origin: suspicious.
	if !h.Suspicious(p, 666, 100) {
		t.Error("novel origin should be suspicious")
	}
	// Seen recently: normal.
	h.Observe(p, 12145, 95)
	if h.Suspicious(p, 12145, 100) {
		t.Error("recently seen origin should be normal")
	}
	// Stale history: suspicious again.
	if !h.Suspicious(p, 12145, 120) {
		t.Error("origin unseen for > window should be suspicious")
	}
	// Re-observation refreshes.
	h.Observe(p, 12145, 120)
	if h.Suspicious(p, 12145, 125) {
		t.Error("refreshed origin should be normal")
	}
	// Per-prefix isolation.
	if !h.Suspicious(mp("10.0.0.0/8"), 12145, 100) {
		t.Error("history must be per-prefix")
	}
	// Observe keeps the max day.
	h.Observe(p, 12145, 100)
	if h.seen[histKey{p, 12145}] != 120 {
		t.Error("Observe went backwards in time")
	}
}

func TestHistoryDefaults(t *testing.T) {
	h := NewHistory(0, 0)
	if h.WindowDays != 10 || h.SuspiciousDays != 1 {
		t.Errorf("defaults = %d/%d", h.WindowDays, h.SuspiciousDays)
	}
}

func testWorld(t *testing.T, n int) (*core.Policy, *topology.Graph, *topology.Classification) {
	t.Helper()
	g := topology.MustGenerate(topology.DefaultParams(n))
	con, err := topology.ContractSiblings(g)
	if err != nil {
		t.Fatal(err)
	}
	c := topology.Classify(con.Graph, topology.ClassifyOptions{})
	pol, err := core.NewPolicy(con.Graph, c.Tier1)
	if err != nil {
		t.Fatal(err)
	}
	return pol, con.Graph, c
}

func TestEvaluateValidation(t *testing.T) {
	pol, _, _ := testWorld(t, 200)
	if _, err := Evaluate(pol, -1, nil, nil); err == nil {
		t.Error("bad target accepted")
	}
	if _, err := Evaluate(pol, 0, []int{1}, []int{pol.N()}); err == nil {
		t.Error("bad deployed node accepted")
	}
}

// TestDepreffReducesPollution: PGBGP at the core must reduce pollution
// versus no deployment.
func TestDepreffReducesPollution(t *testing.T) {
	pol, g, c := testWorld(t, 700)
	target, err := topology.FindTarget(g, c, topology.TargetQuery{Depth: 2, Stub: true})
	if err != nil {
		t.Fatal(err)
	}
	attackers := g.TransitNodes()
	if len(attackers) > 60 {
		attackers = attackers[:60]
	}
	none, err := Evaluate(pol, target, attackers, nil)
	if err != nil {
		t.Fatal(err)
	}
	core62 := topology.NodesByDegree(g)[:20]
	deployed, err := Evaluate(pol, target, attackers, core62)
	if err != nil {
		t.Fatal(err)
	}
	if deployed.Summary().Mean >= none.Summary().Mean {
		t.Errorf("PGBGP at the core did not help: %.1f vs %.1f",
			deployed.Summary().Mean, none.Summary().Mean)
	}
}

// TestDepreffVsDrop: drop-style filtering is at least as strong as PGBGP
// depref (a depreffing node may still fall back to the bogus route), and
// both beat the baseline. This is the paper's PGBGP corroboration.
func TestDepreffVsDrop(t *testing.T) {
	pol, g, c := testWorld(t, 700)
	target, err := topology.FindTarget(g, c, topology.TargetQuery{Depth: 2, Stub: true})
	if err != nil {
		t.Fatal(err)
	}
	attackers := g.TransitNodes()
	if len(attackers) > 60 {
		attackers = attackers[:60]
	}
	deployed := topology.NodesByDegree(g)[:20]
	deprefMean, dropMean, err := CompareWithDrop(pol, target, attackers, deployed)
	if err != nil {
		t.Fatal(err)
	}
	if dropMean > deprefMean {
		t.Errorf("drop filtering (%.1f) weaker than depref (%.1f)", dropMean, deprefMean)
	}
}

// TestDepreffNeverDisconnects: the defining PGBGP property — a depreffing
// node keeps SOME route whenever an unfiltered node would have one,
// because it falls back to the suspicious route.
func TestDepreffNeverDisconnects(t *testing.T) {
	pol, g, c := testWorld(t, 500)
	target, err := topology.FindTarget(g, c, topology.TargetQuery{Depth: 1, Stub: true})
	if err != nil {
		t.Fatal(err)
	}
	attacker := c.Tier1[0]

	plain := core.NewEngine(pol)
	oPlain, _, err := plain.Run(core.Attack{Target: target, Attacker: attacker}, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	depref := core.NewEngine(pol)
	set := asn.NewIndexSet(g.N())
	for _, i := range topology.NodesByDegree(g)[:30] {
		set.Add(i)
	}
	depref.Depref = set
	oDepref, _, err := depref.Run(core.Attack{Target: target, Attacker: attacker}, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.N(); i++ {
		if oPlain.HasRoute(i) && !oDepref.HasRoute(i) {
			t.Fatalf("node %d disconnected by PGBGP depref", i)
		}
	}
	// And it does protect: fewer or equal polluted nodes.
	if oDepref.PollutedCount() > oPlain.PollutedCount() {
		t.Errorf("depref increased pollution: %d vs %d",
			oDepref.PollutedCount(), oPlain.PollutedCount())
	}
}

// TestEvaluateWithHistory: history-derived quarantine protects against a
// novel-origin hijack but waves through an attacker whose origination is
// historically normal — PGBGP's inherent blind spot.
func TestEvaluateWithHistory(t *testing.T) {
	pol, g, c := testWorld(t, 600)
	target, err := topology.FindTarget(g, c, topology.TargetQuery{Depth: 2, Stub: true})
	if err != nil {
		t.Fatal(err)
	}
	hijacked := mp("129.82.0.0/16")
	attacker := c.Tier1[0]

	h := NewHistory(10, 1)
	h.SeedFromBaseline(map[prefix.Prefix]asn.ASN{hijacked: g.ASN(target)}, 100)
	deployed := topology.NodesByDegree(g)[:20]

	// Novel-origin hijack: quarantined.
	res, err := EvaluateWithHistory(pol, target, []int{attacker}, deployed, h, hijacked, 101)
	if err != nil {
		t.Fatal(err)
	}
	// Same attack with no history protection.
	base, err := Evaluate(pol, target, []int{attacker}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pollution[0] >= base.Pollution[0] {
		t.Errorf("history quarantine did not help: %d vs %d", res.Pollution[0], base.Pollution[0])
	}

	// Blind spot: the attacker has legitimately originated the prefix
	// recently (MOAS history); PGBGP lets it through.
	h.Observe(hijacked, g.ASN(attacker), 100)
	moas, err := EvaluateWithHistory(pol, target, []int{attacker}, deployed, h, hijacked, 101)
	if err != nil {
		t.Fatal(err)
	}
	if moas.Pollution[0] != base.Pollution[0] {
		t.Errorf("historically-normal origin should bypass PGBGP: %d vs %d",
			moas.Pollution[0], base.Pollution[0])
	}
}
