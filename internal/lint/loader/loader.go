// Package loader parses and type-checks the module's packages for
// bgplint without shelling out to the go tool or requiring network
// access. Module-internal imports are resolved against the repository
// tree; standard-library imports are type-checked from GOROOT source via
// the compiler's source importer.
package loader

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package.
type Package struct {
	Path  string // module-qualified import path
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads packages of a single module rooted at Root.
type Loader struct {
	Fset    *token.FileSet
	Root    string // absolute module root (directory containing go.mod)
	ModPath string // module path from go.mod

	std      types.ImporterFrom
	pkgs     map[string]*Package // by import path
	loading  map[string]bool     // cycle guard
	InclTest bool                // also parse _test.go files (in-package only)
	// Extra maps import paths to directories outside the module's
	// package space (analyzer testdata fixtures).
	Extra map[string]string
}

// New returns a Loader for the module rooted at root.
func New(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("loader: source importer unavailable")
	}
	return &Loader{
		Fset:    fset,
		Root:    abs,
		ModPath: mod,
		std:     std,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("loader: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("loader: no module directive in %s", gomod)
}

// LoadAll walks the module tree and loads every package found.
// Directories named testdata, hidden directories, and directories without
// buildable Go files are skipped. Packages are returned sorted by path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var paths []string
	err := filepath.WalkDir(l.Root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.Root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(p) {
			rel, err := filepath.Rel(l.Root, p)
			if err != nil {
				return err
			}
			if rel == "." {
				paths = append(paths, l.ModPath)
			} else {
				paths = append(paths, l.ModPath+"/"+filepath.ToSlash(rel))
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// Load loads (or returns the cached) module package with the given
// import path.
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if !l.inModule(path) {
		return nil, fmt.Errorf("loader: %s is outside module %s", path, l.ModPath)
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
	dir := filepath.Join(l.Root, filepath.FromSlash(rel))
	return l.LoadDirAs(dir, path)
}

// LoadDirAs parses and type-checks the package in dir under the given
// import path. Used both for module packages and for analyzer testdata
// directories (which live outside the module's package space).
func (l *Loader) LoadDirAs(dir, path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("loader: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("loader: %w", err)
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !l.InclTest && strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("loader: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("loader: no Go files in %s", dir)
	}
	// External test packages (package foo_test) cannot be mixed into the
	// in-package check; drop them.
	base := files[0].Name.Name
	for _, f := range files {
		if !strings.HasSuffix(f.Name.Name, "_test") {
			base = f.Name.Name
			break
		}
	}
	kept := files[:0]
	for _, f := range files {
		if f.Name.Name == base {
			kept = append(kept, f)
		}
	}
	files = kept

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: &chainImporter{l: l, dir: dir},
		Error:    func(error) {}, // collect via the returned error
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("loader: type-check %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

func (l *Loader) inModule(path string) bool {
	return path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/")
}

// chainImporter resolves module-internal imports through the Loader and
// everything else (the standard library) through the source importer.
type chainImporter struct {
	l   *Loader
	dir string
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	return c.ImportFrom(path, c.dir, 0)
}

func (c *chainImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if c.l.inModule(path) {
		pkg, err := c.l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if fixtureDir, ok := c.l.Extra[path]; ok {
		pkg, err := c.l.LoadDirAs(fixtureDir, path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return c.l.std.ImportFrom(path, dir, 0)
}
