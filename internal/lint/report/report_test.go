package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

var sample = []Finding{
	{Analyzer: "maporder", File: "internal/core/solver.go", Line: 12, Column: 3,
		Message: "nondeterministic map iteration"},
	{Analyzer: "walltime", File: "internal/feed/runner.go", Line: 40, Column: 9,
		Message: "direct time.Now in deterministic package"},
}

func TestText(t *testing.T) {
	var buf bytes.Buffer
	if err := Text(&buf, sample); err != nil {
		t.Fatal(err)
	}
	want := "internal/core/solver.go:12:3: nondeterministic map iteration (maporder)\n"
	if !strings.HasPrefix(buf.String(), want) {
		t.Errorf("Text output = %q, want prefix %q", buf.String(), want)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := JSON(&buf, sample); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Findings []Finding `json:"findings"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Findings) != 2 || got.Findings[0] != sample[0] || got.Findings[1] != sample[1] {
		t.Errorf("round trip mismatch: %+v", got.Findings)
	}
}

func TestJSONEmptyIsArray(t *testing.T) {
	var buf bytes.Buffer
	if err := JSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"findings": []`) {
		t.Errorf("empty run must encode findings as [], got %s", buf.String())
	}
}

func TestSARIFShape(t *testing.T) {
	rules := []Rule{{ID: "maporder", Doc: "map iteration order"}, {ID: "walltime", Doc: "wall clock"}}
	var buf bytes.Buffer
	if err := SARIF(&buf, rules, sample); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Message   struct{ Text string }
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI       string `json:"uri"`
							URIBaseID string `json:"uriBaseId"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatal(err)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-schema-2.1.0") {
		t.Errorf("version/schema = %q / %q", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("want 1 run, got %d", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "bgplint" || len(run.Tool.Driver.Rules) != 2 {
		t.Errorf("driver = %+v", run.Tool.Driver)
	}
	if len(run.Results) != 2 {
		t.Fatalf("want 2 results, got %d", len(run.Results))
	}
	r := run.Results[0]
	loc := r.Locations[0].PhysicalLocation
	if r.RuleID != "maporder" || r.Level != "error" ||
		loc.ArtifactLocation.URI != "internal/core/solver.go" ||
		loc.ArtifactLocation.URIBaseID != "%SRCROOT%" ||
		loc.Region.StartLine != 12 || loc.Region.StartColumn != 3 {
		t.Errorf("result[0] = %+v", r)
	}
}

func TestSARIFEmptyResults(t *testing.T) {
	var buf bytes.Buffer
	if err := SARIF(&buf, nil, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"results": []`) {
		t.Errorf("empty run must encode results as [], got %s", buf.String())
	}
}
