// Package report renders bgplint findings as plain text, machine-readable
// JSON, or SARIF 2.1.0 for GitHub code-scanning annotations.
//
// The text form is the developer loop (make lint); the JSON form feeds
// scripting (jq over bgplint.json); the SARIF form is the minimal subset
// of the 2.1.0 schema that github/codeql-action/upload-sarif accepts, so
// CI findings surface as inline PR annotations instead of a log line.
// File paths in findings must be repository-relative with forward
// slashes — SARIF consumers resolve them against %SRCROOT%.
package report

import (
	"encoding/json"
	"fmt"
	"io"
)

// Finding is one diagnostic with its source position resolved to a
// repo-relative path.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// Rule describes one analyzer for the SARIF rule table.
type Rule struct {
	ID  string
	Doc string
}

// Text writes the classic file:line:col: message (analyzer) lines.
func Text(w io.Writer, findings []Finding) error {
	for _, f := range findings {
		if _, err := fmt.Fprintf(w, "%s:%d:%d: %s (%s)\n",
			f.File, f.Line, f.Column, f.Message, f.Analyzer); err != nil {
			return err
		}
	}
	return nil
}

// JSON writes {"findings": [...]}; an empty run encodes as an empty
// array, never null, so jq pipelines need no guards.
func JSON(w io.Writer, findings []Finding) error {
	if findings == nil {
		findings = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Findings []Finding `json:"findings"`
	}{findings})
}

const (
	sarifSchema  = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemas/sarif-schema-2.1.0.json"
	sarifVersion = "2.1.0"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// SARIF writes one run with the given rule table and findings. Every
// finding's Analyzer should appear in rules (unknown ruleIds still
// upload, but lose their description in the annotation UI).
func SARIF(w io.Writer, rules []Rule, findings []Finding) error {
	srules := make([]sarifRule, 0, len(rules))
	for _, r := range rules {
		srules = append(srules, sarifRule{
			ID:               r.ID,
			ShortDescription: sarifText{Text: r.Doc},
		})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifText{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: f.File, URIBaseID: "%SRCROOT%"},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "bgplint", Rules: srules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
