package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDeterministicClosureSynthetic(t *testing.T) {
	defer func(old []string) { DeterministicRoots = old }(DeterministicRoots)
	DeterministicRoots = []string{"root"}
	imports := map[string][]string{
		"root":     {"a", "b"},
		"a":        {"c"},
		"b":        nil,
		"c":        {"a"}, // cycle back is fine
		"orphan":   {"c"},
		"isolated": nil,
	}
	got := DeterministicClosure(imports)
	for _, p := range []string{"root", "a", "b", "c"} {
		if !got[p] {
			t.Errorf("closure should cover %s", p)
		}
	}
	for _, p := range []string{"orphan", "isolated"} {
		if got[p] {
			t.Errorf("closure must not cover %s (nothing deterministic imports it)", p)
		}
	}
}

func TestExemptedPatterns(t *testing.T) {
	defer func(old map[string]string) { Exempt = old }(Exempt)
	Exempt = map[string]string{
		"m/internal/cli":      "boundary",
		"m/internal/lint/...": "tooling",
	}
	cases := []struct {
		path string
		want bool
	}{
		{"m/internal/cli", true},
		{"m/internal/cli/sub", false}, // exact entries do not cover subtrees
		{"m/internal/lint", true},
		{"m/internal/lint/maporder", true},
		{"m/internal/lintx", false},
		{"m/internal/core", false},
	}
	for _, c := range cases {
		if _, got := Exempted(c.path); got != c.want {
			t.Errorf("Exempted(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

// moduleRoot walks up from the test's working directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			t.Fatalf("no go.mod above %s", dir)
		}
		d = parent
	}
}

// TestModuleDeterminismCoverage is the guard the hand-maintained package
// list could never be: every internal/ package must either inherit the
// deterministic fact through the import closure or carry an explicit
// exemption with a reason — a new package cannot silently dodge the
// determinism analyzers.
func TestModuleDeterminismCoverage(t *testing.T) {
	root := moduleRoot(t)
	imports, err := ScanModuleImports(root, "github.com/bgpsim/bgpsim")
	if err != nil {
		t.Fatal(err)
	}
	closure := DeterministicClosure(imports)

	for pkg := range imports {
		if !strings.HasPrefix(pkg, "github.com/bgpsim/bgpsim/internal/") {
			continue // cmd/, examples/ and the facade root are boundaries or roots
		}
		covered := closure[pkg]
		_, exempted := Exempted(pkg)
		switch {
		case covered && exempted:
			t.Errorf("%s: stale exemption — deterministic code now imports this package; remove the Exempt entry", pkg)
		case !covered && !exempted:
			t.Errorf("%s: neither in the determinism closure nor exempted; add an import from a root, a new root, or an Exempt entry with a reason", pkg)
		}
	}

	// The closure must keep covering the packages whose outputs ARE the
	// reproduction; losing one silently would disable maporder/walltime
	// where they matter most.
	for _, p := range []string{
		"github.com/bgpsim/bgpsim/internal/core",
		"github.com/bgpsim/bgpsim/internal/sweep",
		"github.com/bgpsim/bgpsim/internal/feed",
		"github.com/bgpsim/bgpsim/internal/tick",
		"github.com/bgpsim/bgpsim/internal/topology",
		"github.com/bgpsim/bgpsim/internal/experiments",
	} {
		if !closure[p] {
			t.Errorf("determinism closure lost %s", p)
		}
	}
}

// TestExemptReasonsNonEmpty enforces the "every exemption says why" half
// of the directive contract at the config level.
func TestExemptReasonsNonEmpty(t *testing.T) {
	for path, reason := range Exempt {
		if strings.TrimSpace(reason) == "" {
			t.Errorf("Exempt[%q] has no reason", path)
		}
	}
}

func TestNamesCoversSuite(t *testing.T) {
	names := Names()
	for _, want := range []string{
		"maporder", "globalrand", "asnconv", "errdrop", "obsappend",
		"walltime", "lockheld", "goroleak", "hotalloc",
	} {
		if !names[want] {
			t.Errorf("analyzer %q missing from suite", want)
		}
	}
	if len(names) != 9 {
		t.Errorf("suite has %d analyzers, want 9", len(names))
	}
}
