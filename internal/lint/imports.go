package lint

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ScanModuleImports builds the module-internal import graph by parsing
// import clauses only (no type checking): each package import path maps
// to the sorted set of module packages its non-test files import.
// Directories named testdata, hidden directories, and _-prefixed
// directories are skipped, matching the loader's view of the module.
// Test files are excluded deliberately — tests wiring a package (chaos
// fault injection, say) must not drag it into the determinism closure.
func ScanModuleImports(root, modPath string) (map[string][]string, error) {
	fset := token.NewFileSet()
	graph := make(map[string][]string)
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		name := d.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			return nil
		}
		f, err := parser.ParseFile(fset, p, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, filepath.Dir(p))
		if err != nil {
			return err
		}
		pkgPath := modPath
		if rel != "." {
			pkgPath = modPath + "/" + filepath.ToSlash(rel)
		}
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == modPath || strings.HasPrefix(path, modPath+"/") {
				graph[pkgPath] = append(graph[pkgPath], path)
			}
		}
		if _, ok := graph[pkgPath]; !ok {
			graph[pkgPath] = nil // package exists even with no internal imports
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for p, deps := range graph { //bgplint:ignore maporder per-key dedup; no cross-key effect
		sort.Strings(deps)
		graph[p] = dedup(deps)
	}
	return graph, nil
}

func dedup(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}
