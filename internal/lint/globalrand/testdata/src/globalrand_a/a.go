// Package globalrand_a exercises the globalrand analyzer.
package globalrand_a

import (
	"math/rand"
	"time"
)

// Flagged: package-level functions share hidden global state.
func globals() int {
	rand.Seed(42)                                               // want "global rand.Seed"
	v := rand.Intn(10)                                          // want "global rand.Intn"
	f := rand.Float64()                                         // want "global rand.Float64"
	p := rand.Perm(4)                                           // want "global rand.Perm"
	rand.Shuffle(4, func(i, j int) { p[i], p[j] = p[j], p[i] }) // want "global rand.Shuffle"
	return v + int(f) + p[0]
}

// Flagged: wall-clock seeds are unreplayable.
func clockSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "time.Now-derived rand seed"
}

// Not flagged: an explicit seeded generator is the approved pattern.
func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	out := rng.Perm(8)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out[rng.Intn(len(out))]
}

// Not flagged: time.Now outside a seed expression is ordinary code.
func clockElsewhere() time.Time {
	return time.Now()
}
