package globalrand_a

import randv2 "math/rand/v2"

// Flagged: math/rand/v2 top-level functions are global too.
func v2Globals() int {
	return randv2.IntN(10) // want "global rand/v2.IntN"
}

// Not flagged: v2 with an explicit PCG source.
func v2Seeded(seed uint64) int {
	rng := randv2.New(randv2.NewPCG(seed, seed))
	return rng.IntN(10)
}
