// Package globalrand implements the bgplint analyzer that forbids the
// process-global math/rand source in library code.
//
// Every sampled quantity in the simulator (attacker samples, random
// deployments, probe placement, synthetic topologies) must be replayable
// from an explicit seed, or Figure/Table reproductions drift between
// runs. The analyzer flags package-level math/rand functions
// (rand.Intn, rand.Shuffle, rand.Seed, ...) — which share hidden global
// state — and time.Now()-derived seeds fed into rand.New/rand.NewSource.
// The approved pattern is an injected `*rand.Rand` built as
// rand.New(rand.NewSource(seed)) from a caller-supplied seed.
package globalrand

import (
	"go/ast"
	"go/types"

	"github.com/bgpsim/bgpsim/internal/lint/analysis"
)

// Analyzer is the globalrand pass.
var Analyzer = &analysis.Analyzer{
	Name: "globalrand",
	Doc: "forbids package-level math/rand functions and time.Now-derived " +
		"seeds in non-test library code; inject a seeded *rand.Rand instead",
	Run: run,
}

// constructors are the math/rand package-level functions that build
// explicit sources/generators rather than touching the global one.
var constructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	// math/rand/v2
	"NewPCG":     true,
	"NewChaCha8": true,
}

// seedTaking marks the constructors whose arguments are seeds.
var seedTaking = map[string]bool{
	"NewSource":  true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() != nil {
				return true // methods on an explicit *rand.Rand are the goal
			}
			if !constructors[fn.Name()] {
				pass.Reportf(call.Pos(),
					"global %s.%s uses shared hidden state; thread a seeded *rand.Rand through instead",
					shortRand(path), fn.Name())
				return true
			}
			// Seed-taking constructors must not be fed the wall clock.
			// (rand.New takes a Source, not a seed; any clock use inside
			// it sits in a nested NewSource call visited on its own.)
			if seedTaking[fn.Name()] {
				for _, arg := range call.Args {
					reportClockSeeds(pass, arg)
				}
			}
			return true
		})
	}
	return nil, nil
}

func shortRand(path string) string {
	if path == "math/rand/v2" {
		return "rand/v2"
	}
	return "rand"
}

// calleeFunc resolves the called function object, if statically known.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// reportClockSeeds flags any time.Now call inside a seed expression.
func reportClockSeeds(pass *analysis.Pass, e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Now" {
			pass.Reportf(call.Pos(),
				"time.Now-derived rand seed defeats replayable reproductions; take the seed from configuration (-seed)")
			return false
		}
		return true
	})
}
