package globalrand

import (
	"testing"

	"github.com/bgpsim/bgpsim/internal/lint/linttest"
)

func TestGlobalRand(t *testing.T) {
	linttest.Run(t, Analyzer, "testdata/src/globalrand_a", "globalrand_a")
}
