// Package linttest is a minimal analogue of
// golang.org/x/tools/go/analysis/analysistest: it runs one analyzer over
// a testdata package and checks the reported diagnostics against
// `// want "regexp"` comments in the sources.
package linttest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"github.com/bgpsim/bgpsim/internal/lint/analysis"
	"github.com/bgpsim/bgpsim/internal/lint/directive"
	"github.com/bgpsim/bgpsim/internal/lint/loader"
)

// Options configures a golden run beyond the defaults.
type Options struct {
	// Deps maps import paths to testdata directories the package under
	// test may import (fixture packages outside the module space).
	Deps map[string]string
	// NonDeterministic runs the package WITHOUT the deterministic fact
	// (the default marks it deterministic, since most golden packages
	// exercise determinism-gated analyzers).
	NonDeterministic bool
	// Known lists analyzer names valid in //bgplint:ignore directives;
	// nil defaults to the analyzer under test plus "maporder" (the
	// shared suppression examples).
	Known map[string]bool
}

// Run loads the package in dir (e.g. "testdata/src/a") as import path
// pkgPath and applies the analyzer. Every diagnostic must be matched by a
// `// want "re"` comment on the same line, and every want comment must be
// matched by a diagnostic. The package is given the deterministic fact,
// and //bgplint:ignore directives are applied exactly as the driver
// applies them (malformed ones surface as "directive" diagnostics, which
// want comments can assert on).
func Run(t *testing.T, a *analysis.Analyzer, dir, pkgPath string) {
	t.Helper()
	RunWith(t, a, Options{}, dir, pkgPath)
}

// RunDeps is Run with auxiliary fixture packages: deps maps import paths
// to testdata directories the package under test may import.
func RunDeps(t *testing.T, a *analysis.Analyzer, deps map[string]string, dir, pkgPath string) {
	t.Helper()
	RunWith(t, a, Options{Deps: deps}, dir, pkgPath)
}

// RunWith is Run with explicit Options.
func RunWith(t *testing.T, a *analysis.Analyzer, opts Options, dir, pkgPath string) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	root, err := moduleRoot(abs)
	if err != nil {
		t.Fatal(err)
	}
	l, err := loader.New(root)
	if err != nil {
		t.Fatal(err)
	}
	for path, d := range opts.Deps {
		absDep, err := filepath.Abs(d)
		if err != nil {
			t.Fatal(err)
		}
		if l.Extra == nil {
			l.Extra = make(map[string]string)
		}
		l.Extra[path] = absDep
	}
	pkg, err := l.LoadDirAs(abs, pkgPath)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      l.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		PkgPath:   pkg.Path,
		Facts:     analysis.Facts{Deterministic: !opts.NonDeterministic},
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}
	known := opts.Known
	if known == nil {
		known = map[string]bool{a.Name: true, "maporder": true}
	}
	diags = directive.Filter(l.Fset, pkg.Files, diags, known)

	wants := collectWants(t, l.Fset, pkg)
	for _, d := range diags {
		pos := l.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
		matched := false
		for i, w := range wants[key] {
			if w != nil && w.MatchString(d.Message) {
				wants[key][i] = nil
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if w != nil {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, w)
			}
		}
	}
}

var wantRE = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

// collectWants scans file sources for want comments, keyed by
// "basename:line".
func collectWants(t *testing.T, fset *token.FileSet, pkg *loader.Package) map[string][]*regexp.Regexp {
	t.Helper()
	wants := make(map[string][]*regexp.Regexp)
	for _, f := range pkg.Files {
		name := fset.Position(f.Pos()).Filename
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
				pat := strings.ReplaceAll(m[1], `\"`, `"`)
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", name, i+1, pat, err)
				}
				key := fmt.Sprintf("%s:%d", filepath.Base(name), i+1)
				wants[key] = append(wants[key], re)
			}
		}
	}
	return wants
}

// moduleRoot walks up from dir to the directory containing go.mod.
func moduleRoot(dir string) (string, error) {
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("linttest: no go.mod above %s", dir)
		}
		d = parent
	}
}
