// Package maporder implements the bgplint analyzer that flags `for range`
// over map values inside the simulator's deterministic packages.
//
// The paper's reproduction claim is bit-identical outcomes between the
// Engine and the Solver across every AS; Go's randomized map iteration
// order silently breaks that whenever a loop's effect depends on
// visitation order. The analyzer permits loop bodies it can prove
// order-insensitive — writes into maps/sets keyed by the loop variables
// and commutative integer accumulation — and otherwise demands either a
// rewrite (collect keys, sort, iterate: see internal/xmaps.SortedKeys) or
// an explicit `//bgplint:ignore maporder <reason>` justification on the
// range statement.
//
// Whether a package is deterministic is not configured here: the driver
// computes the determinism closure (lint.DeterministicClosure) from the
// config roots and hands the verdict to the pass as
// pass.Facts.Deterministic.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/bgpsim/bgpsim/internal/lint/analysis"
)

// Analyzer is the maporder pass.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flags for-range over maps in deterministic packages unless the " +
		"loop body is provably order-insensitive or carries a " +
		"//bgplint:ignore maporder justification",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !pass.Facts.Deterministic {
		return nil, nil
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if orderInsensitiveBody(pass, rng) {
				return true
			}
			pass.Reportf(rng.Pos(),
				"nondeterministic map iteration in deterministic package %s; "+
					"iterate sorted keys (xmaps.SortedKeys) or justify with "+
					"//bgplint:ignore maporder <reason>",
				shortPath(pass.PkgPath))
			return true
		})
	}
	return nil, nil
}

func shortPath(p string) string {
	if i := strings.LastIndex(p, "/"); i >= 0 {
		return p[i+1:]
	}
	return p
}

// orderInsensitiveBody reports whether every statement in the range body
// is one whose cumulative effect cannot depend on iteration order:
//
//   - m[k] = v assignments whose index involves only loop variables
//     (writes into a map/set; last-writer conflicts cannot arise because
//     each key is visited once)
//   - integer compound accumulation: x += e, x *= e, x |= e, x &= e,
//     x ^= e, x++, x--
//
// Anything else — calls, appends, comparisons, string concatenation,
// float accumulation (not associative) — is treated as order-sensitive.
func orderInsensitiveBody(pass *analysis.Pass, rng *ast.RangeStmt) bool {
	for _, stmt := range rng.Body.List {
		if !orderInsensitiveStmt(pass, stmt) {
			return false
		}
	}
	return true
}

func orderInsensitiveStmt(pass *analysis.Pass, stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		return orderInsensitiveAssign(pass, s)
	case *ast.IncDecStmt:
		return isIntegerExpr(pass, s.X)
	case *ast.EmptyStmt:
		return true
	}
	return false
}

func orderInsensitiveAssign(pass *analysis.Pass, s *ast.AssignStmt) bool {
	switch s.Tok {
	case token.ASSIGN:
		// Pure map/set writes: every LHS must be an index into a map and
		// the RHS must not read order-dependent state (conservatively: no
		// calls).
		for _, lhs := range s.Lhs {
			idx, ok := lhs.(*ast.IndexExpr)
			if !ok {
				return false
			}
			tv, ok := pass.TypesInfo.Types[idx.X]
			if !ok {
				return false
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return false
			}
		}
		for _, rhs := range s.Rhs {
			if containsCall(rhs) {
				return false
			}
		}
		return true
	case token.ADD_ASSIGN, token.MUL_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		// Commutative+associative only over integers: float addition is
		// order-sensitive, string += is concatenation.
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return false
		}
		return isIntegerExpr(pass, s.Lhs[0]) && !containsCall(s.Rhs[0])
	}
	return false
}

func isIntegerExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func containsCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			found = true
			return false
		}
		return true
	})
	return found
}
