// Package maporder_a exercises the maporder analyzer: the test runs it
// with the deterministic fact set, so order-sensitive map loops must be
// flagged and order-insensitive ones must not.
package maporder_a

import "sort"

func sink(string) {}

// Flagged: the append order escapes into a slice.
func collectUnsorted(m map[string]int) []string {
	var out []string
	for k := range m { // want "nondeterministic map iteration"
		out = append(out, k)
	}
	return out
}

// Flagged: calls in the body can observe iteration order.
func callsOut(m map[string]int) {
	for k := range m { // want "nondeterministic map iteration"
		sink(k)
	}
}

// Flagged: float accumulation is not associative.
func floatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want "nondeterministic map iteration"
		sum += v
	}
	return sum
}

// Flagged: string concatenation depends on visit order.
func concat(m map[string]string) string {
	s := ""
	for _, v := range m { // want "nondeterministic map iteration"
		s += v
	}
	return s
}

// Not flagged: integer accumulation is commutative.
func intSum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Not flagged: counting and bit-accumulation are commutative.
func countAndMask(m map[int]uint64) (int, uint64) {
	n := 0
	var mask uint64
	for _, v := range m {
		n++
		mask |= v
	}
	return n, mask
}

// Not flagged: writes into a map keyed by the loop variable.
func invert(m map[string]int) map[int]string {
	inv := make(map[int]string, len(m))
	for k, v := range m {
		inv[v] = k
	}
	return inv
}

// Not flagged: justified with an explicit reason.
func justified(m map[string]int) []string {
	var out []string
	//bgplint:ignore maporder keys are sorted before use below
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Not flagged: same-line directive form.
func justifiedInline(m map[string]int) []string {
	var out []string
	for k := range m { //bgplint:ignore maporder keys are sorted before use below
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Not flagged: ranging over a slice is always ordered.
func slices(s []int) int {
	total := 0
	for _, v := range s {
		total += v
	}
	return total
}
