// Package maporder_b runs WITHOUT the deterministic fact: even blatantly
// order-sensitive map iteration stays unflagged here.
package maporder_b

func sink(string) {}

func freeToIterate(m map[string]int) {
	for k := range m {
		sink(k)
	}
}
