package maporder

import (
	"testing"

	"github.com/bgpsim/bgpsim/internal/lint/linttest"
)

func TestDeterministicPackage(t *testing.T) {
	linttest.Run(t, Analyzer, "testdata/src/maporder_a", "maporder_a")
}

func TestNonDeterministicPackage(t *testing.T) {
	// Without the deterministic fact the pass reports nothing, so the
	// fixture's unsorted range stays quiet.
	linttest.RunWith(t, Analyzer, linttest.Options{NonDeterministic: true},
		"testdata/src/maporder_b", "maporder_b")
}
