package maporder

import (
	"testing"

	"github.com/bgpsim/bgpsim/internal/lint/linttest"
)

func TestDeterministicPackage(t *testing.T) {
	defer func(old []string) { Deterministic = old }(Deterministic)
	Deterministic = []string{"maporder_a"}
	linttest.Run(t, Analyzer, "testdata/src/maporder_a", "maporder_a")
}

func TestNonDesignatedPackage(t *testing.T) {
	defer func(old []string) { Deterministic = old }(Deterministic)
	Deterministic = []string{"maporder_a"}
	linttest.Run(t, Analyzer, "testdata/src/maporder_b", "maporder_b")
}
