// Package goroleak implements the bgplint analyzer that requires every
// go statement to have a visible join or cancel path.
//
// Probe supervisors, sweep workers and collector session handlers all
// spawn goroutines; one without a WaitGroup, done channel, result
// channel or context is a goroutine the owner can neither wait for nor
// stop — it leaks across Shutdown, keeps connections alive after their
// listener closed, and turns -race runs flaky. The analyzer accepts a
// go statement when it can see any of:
//
//   - the goroutine body touches a sync.WaitGroup (wg.Done/wg.Wait) or
//     calls close() — the spawner joins via Wait or a closed channel;
//   - the body performs a channel operation (send, receive, select,
//     range over a channel) — the goroutine is coupled to a channel the
//     owner controls;
//   - the body references a context.Context — cancellation reaches it;
//   - a named (non-literal) callee is passed a channel- or
//     context-typed argument — the join/cancel path is the argument.
//
// The check is lexical and intraprocedural, so a goroutine whose
// lifecycle is managed in a way it cannot see (joined by process exit
// in a short-lived tool, say) carries //bgplint:ignore goroleak with
// the reason.
package goroleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/bgpsim/bgpsim/internal/lint/analysis"
)

// Analyzer is the goroleak pass.
var Analyzer = &analysis.Analyzer{
	Name: "goroleak",
	Doc: "flags go statements with no visible join or cancel path " +
		"(WaitGroup, done/result channel, close, or context)",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !joined(pass, g) {
				pass.Reportf(g.Pos(),
					"goroutine has no visible join or cancel path; give it a WaitGroup, done/result channel, or context so Shutdown can collect it")
			}
			return true
		})
	}
	return nil, nil
}

// joined reports whether the go statement has a visible join/cancel
// path.
func joined(pass *analysis.Pass, g *ast.GoStmt) bool {
	// Channel- or context-typed arguments hand the callee its lifecycle.
	for _, a := range g.Call.Args {
		if isChanOrContext(pass, a) {
			return true
		}
	}
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		return bodyJoined(pass, lit.Body)
	}
	// Named callee with no channel/context argument: nothing visible
	// couples it to the spawner.
	return false
}

// bodyJoined scans a goroutine body (including nested literals — a
// join anywhere in the lexical extent counts) for lifecycle plumbing.
func bodyJoined(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[x.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			switch fun := x.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "close" {
					if _, isBuiltin := pass.TypesInfo.Uses[fun].(*types.Builtin); isBuiltin {
						found = true
					}
				}
			case *ast.SelectorExpr:
				if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil &&
					fn.Pkg().Path() == "sync" && recvIsWaitGroup(fn) {
					found = true
				}
			}
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[x]; obj != nil && isContextType(obj.Type()) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isChanOrContext(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
		return true
	}
	return isContextType(tv.Type)
}

func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func recvIsWaitGroup(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "WaitGroup"
}
