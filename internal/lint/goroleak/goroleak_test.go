package goroleak

import (
	"testing"

	"github.com/bgpsim/bgpsim/internal/lint/linttest"
)

func TestGoroutineLeaks(t *testing.T) {
	linttest.Run(t, Analyzer, "testdata/src/goroleak_a", "goroleak_a")
}
