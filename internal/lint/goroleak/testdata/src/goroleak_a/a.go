// Package goroleak_a exercises the goroleak analyzer: goroutines with no
// visible join or cancel path must be flagged; WaitGroup-, channel-,
// close- and context-coupled goroutines must not.
package goroleak_a

import (
	"context"
	"sync"
)

func work() {}

// Flagged: fire-and-forget literal.
func fire() {
	go func() { // want "goroutine has no visible join or cancel path"
		work()
	}()
}

// Flagged: named callee with no channel or context argument.
func fireNamed() {
	go work() // want "goroutine has no visible join or cancel path"
}

// Not flagged: WaitGroup join.
func joinedWG() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// Not flagged: result channel couples the goroutine to its reader.
func joinedChan() <-chan int {
	out := make(chan int, 1)
	go func() {
		out <- 42
	}()
	return out
}

// Not flagged: close signals completion.
func joinedClose(done chan struct{}) {
	go func() {
		work()
		close(done)
	}()
}

// Not flagged: cancellation reaches the body through the context.
func joinedCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func pump(ch chan int) {
	for range ch {
	}
}

// Not flagged: the channel argument is the join path.
func joinedArg() chan int {
	ch := make(chan int)
	go pump(ch)
	return ch
}

func serve(ctx context.Context) {}

// Not flagged: the context argument is the cancel path.
func joinedCtxArg(ctx context.Context) {
	go serve(ctx)
}

// Not flagged: suppressed with a reason.
func sanctioned() {
	//bgplint:ignore goroleak fixture: joined by process exit in a one-shot tool
	go work()
}
