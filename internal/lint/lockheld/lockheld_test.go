package lockheld

import (
	"testing"

	"github.com/bgpsim/bgpsim/internal/lint/linttest"
)

func TestLockHeld(t *testing.T) {
	linttest.Run(t, Analyzer, "testdata/src/lockheld_a", "lockheld_a")
}
