// Package lockheld implements the bgplint analyzer that flags blocking
// operations reachable while a sync.Mutex or sync.RWMutex is held.
//
// DESIGN.md §8 states the feed layer's locking discipline in prose:
// mutexes guard counters and registration maps, and nothing that can
// block — channel operations, condition waits, network I/O — may run
// inside a critical section, or a stalled peer can wedge every other
// session behind the lock. This pass machine-checks that discipline. It
// is deliberately intraprocedural and conservative: within one function
// body it tracks which lock expressions are held (x.Lock()/x.RLock()
// until the matching x.Unlock()/x.RUnlock(); a deferred unlock holds to
// the end of the function) and reports
//
//   - channel sends and receives (a select with a default clause is
//     non-blocking and stays allowed),
//   - for-range over a channel,
//   - sync.Cond.Wait and sync.WaitGroup.Wait,
//   - time.Sleep,
//   - blocking net/net\/http/os\/exec calls (Dial, Accept, conn
//     Read/Write, Cmd.Run, ...),
//
// while any lock is held. Calls into other functions are not followed;
// a legitimate blocking call under a lock (sync.Cond.Wait on the lock
// it atomically releases, say) carries a //bgplint:ignore lockheld with
// its justification.
package lockheld

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"github.com/bgpsim/bgpsim/internal/lint/analysis"
)

// Analyzer is the lockheld pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockheld",
	Doc: "flags blocking operations (channel ops, Cond/WaitGroup waits, " +
		"network I/O, exec) reachable while a sync.Mutex/RWMutex is held",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		s := &scanner{pass: pass}
		// Every function body — declarations and literals — is analyzed
		// as its own scope: a closure does not inherit the lock state of
		// its definition site (it may run on another goroutine entirely).
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					s.stmts(fn.Body.List, map[string]bool{})
				}
			case *ast.FuncLit:
				s.stmts(fn.Body.List, map[string]bool{})
			}
			return true
		})
	}
	return nil, nil
}

type scanner struct {
	pass *analysis.Pass
}

// stmts walks a statement list in order, updating the held-lock set.
func (s *scanner) stmts(list []ast.Stmt, held map[string]bool) {
	for _, st := range list {
		s.stmt(st, held)
	}
}

// copyHeld snapshots the held set for a branch body.
func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held { //bgplint:ignore maporder lock-state set copy; map semantics are order-free
		out[k] = v
	}
	return out
}

func (s *scanner) stmt(st ast.Stmt, held map[string]bool) {
	switch n := st.(type) {
	case *ast.ExprStmt:
		if key, acquire, ok := lockOp(s.pass, n.X); ok {
			if acquire {
				held[key] = true
			} else {
				delete(held, key)
			}
			return
		}
		s.expr(n.X, held)
	case *ast.DeferStmt:
		// defer x.Unlock() keeps the lock held to the end of the
		// function; the deferred call's arguments are evaluated now.
		if _, _, ok := lockOp(s.pass, n.Call); ok {
			return
		}
		for _, a := range n.Call.Args {
			s.expr(a, held)
		}
	case *ast.GoStmt:
		// The spawned body runs on another goroutine without our locks;
		// only the argument evaluation happens here.
		for _, a := range n.Call.Args {
			s.expr(a, held)
		}
	case *ast.SendStmt:
		if len(held) > 0 {
			s.reportf(n.Pos(), held, "channel send")
		}
		s.expr(n.Chan, held)
		s.expr(n.Value, held)
	case *ast.AssignStmt:
		for _, e := range n.Rhs {
			s.expr(e, held)
		}
		for _, e := range n.Lhs {
			s.expr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range n.Results {
			s.expr(e, held)
		}
	case *ast.IncDecStmt:
		s.expr(n.X, held)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						s.expr(v, held)
					}
				}
			}
		}
	case *ast.BlockStmt:
		s.stmts(n.List, held)
	case *ast.LabeledStmt:
		s.stmt(n.Stmt, held)
	case *ast.IfStmt:
		if n.Init != nil {
			s.stmt(n.Init, held)
		}
		s.expr(n.Cond, held)
		s.stmts(n.Body.List, copyHeld(held))
		if n.Else != nil {
			s.stmt(n.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if n.Init != nil {
			s.stmt(n.Init, held)
		}
		if n.Cond != nil {
			s.expr(n.Cond, held)
		}
		s.stmts(n.Body.List, copyHeld(held))
	case *ast.RangeStmt:
		s.expr(n.X, held)
		if len(held) > 0 {
			if tv, ok := s.pass.TypesInfo.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					s.reportf(n.Pos(), held, "range over channel")
				}
			}
		}
		s.stmts(n.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if n.Init != nil {
			s.stmt(n.Init, held)
		}
		if n.Tag != nil {
			s.expr(n.Tag, held)
		}
		for _, c := range n.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					s.expr(e, held)
				}
				s.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		if n.Init != nil {
			s.stmt(n.Init, held)
		}
		for _, c := range n.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range n.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault && len(held) > 0 {
			s.reportf(n.Pos(), held, "blocking select")
		}
		for _, c := range n.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				s.stmts(cc.Body, copyHeld(held))
			}
		}
	}
}

// expr scans one expression for blocking operations while locks are
// held. Function literals are skipped (analyzed as their own scope).
func (s *scanner) expr(e ast.Expr, held map[string]bool) {
	if e == nil || len(held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				s.reportf(x.Pos(), held, "channel receive")
			}
		case *ast.CallExpr:
			if desc, ok := blockingCall(s.pass, x); ok {
				s.reportf(x.Pos(), held, desc)
			}
		}
		return true
	})
}

func (s *scanner) reportf(pos token.Pos, held map[string]bool, what string) {
	s.pass.Reportf(pos, "%s while %s is held; move it outside the critical section (deadlock risk, DESIGN.md §8)",
		what, describeHeld(held))
}

// describeHeld names the held lock(s) deterministically.
func describeHeld(held map[string]bool) string {
	names := make([]string, 0, len(held))
	for k := range held { //bgplint:ignore maporder names are sorted immediately below
		names = append(names, k)
	}
	sort.Strings(names)
	if len(names) == 1 {
		return names[0]
	}
	return strings.Join(names, ", ")
}

// lockOp reports whether e is a mutex Lock/RLock (acquire=true) or
// Unlock/RUnlock (acquire=false) call, keyed by the receiver expression.
func lockOp(pass *analysis.Pass, e ast.Expr) (key string, acquire, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	fn, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false, false
	}
	recv := recvTypeName(fn)
	if recv != "Mutex" && recv != "RWMutex" {
		return "", false, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return types.ExprString(sel.X), true, true
	case "Unlock", "RUnlock":
		return types.ExprString(sel.X), false, true
	}
	return "", false, false
}

// recvTypeName returns the name of fn's receiver type (sans pointer),
// or "".
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// blockingPkgFuncs are package-level functions that block on external
// events.
var blockingPkgFuncs = map[string]map[string]bool{
	"time": {"Sleep": true},
	"net":  {"Dial": true, "DialTimeout": true, "DialIP": true, "DialTCP": true, "DialUDP": true, "DialUnix": true, "Listen": true, "ListenPacket": true},
	"net/http": {
		"Get": true, "Post": true, "PostForm": true, "Head": true,
		"ListenAndServe": true, "ListenAndServeTLS": true, "Serve": true, "ServeTLS": true,
	},
}

// blockingMethods are (package, receiver-independent) method names that
// block: condition/waitgroup waits, socket reads/writes/accepts, and
// subprocess waits.
var blockingMethods = map[string]map[string]bool{
	"sync":     {"Wait": true}, // Cond.Wait, WaitGroup.Wait
	"net":      {"Read": true, "Write": true, "Accept": true, "ReadFrom": true, "WriteTo": true, "AcceptTCP": true, "AcceptUnix": true},
	"net/http": {"Do": true, "Get": true, "Post": true, "PostForm": true, "Head": true},
	"os/exec":  {"Run": true, "Wait": true, "Output": true, "CombinedOutput": true},
}

// blockingCall reports whether call is a known blocking call, with a
// description for the diagnostic.
func blockingCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return "", false
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	path := fn.Pkg().Path()
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	if sig.Recv() == nil {
		if blockingPkgFuncs[path][fn.Name()] {
			return "blocking " + shortPkg(path) + "." + fn.Name() + " call", true
		}
		return "", false
	}
	if blockingMethods[path][fn.Name()] {
		recv := recvTypeName(fn)
		if recv == "" {
			recv = shortPkg(path)
		}
		return "blocking " + recv + "." + fn.Name() + " call", true
	}
	return "", false
}

func shortPkg(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}
