// Package lockheld_a exercises the lockheld analyzer: blocking
// operations inside critical sections must be flagged; the same
// operations after the unlock, behind a select default, or inside an
// escaping closure must not.
package lockheld_a

import (
	"sync"
	"time"
)

type counter struct {
	mu sync.Mutex
	n  int
	ch chan int
}

// Flagged: a stalled receiver wedges every caller behind c.mu.
func (c *counter) sendLocked() {
	c.mu.Lock()
	c.ch <- c.n // want "channel send while c.mu is held"
	c.mu.Unlock()
}

// Flagged: deferred unlock holds to the end of the function.
func (c *counter) recvLocked() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return <-c.ch // want "channel receive while c.mu is held"
}

// Flagged: sleeping inside the critical section.
func (c *counter) sleepLocked() {
	c.mu.Lock()
	time.Sleep(time.Millisecond) // want "blocking time.Sleep call while c.mu is held"
	c.mu.Unlock()
}

// Flagged: a select without a default clause blocks.
func (c *counter) selectLocked(done chan struct{}) {
	c.mu.Lock()
	select { // want "blocking select while c.mu is held"
	case <-done:
	case v := <-c.ch:
		c.n = v
	}
	c.mu.Unlock()
}

// Flagged: draining a channel under the lock.
func (c *counter) drainLocked() {
	c.mu.Lock()
	for v := range c.ch { // want "range over channel while c.mu is held"
		c.n += v
	}
	c.mu.Unlock()
}

// Flagged: waiting for goroutines while holding the lock they may need.
func (c *counter) waitLocked(wg *sync.WaitGroup) {
	c.mu.Lock()
	wg.Wait() // want "blocking WaitGroup.Wait call while c.mu is held"
	c.mu.Unlock()
}

type store struct {
	rw sync.RWMutex
	ch chan struct{}
}

// Flagged: read locks block writers just the same.
func (s *store) readLocked() {
	s.rw.RLock()
	<-s.ch // want "channel receive while s.rw is held"
	s.rw.RUnlock()
}

// Not flagged: the send happens after the unlock.
func (c *counter) sendAfterUnlock() {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	c.ch <- n
}

// Not flagged: a select with a default clause cannot block.
func (c *counter) trySend() {
	c.mu.Lock()
	select {
	case c.ch <- c.n:
	default:
	}
	c.mu.Unlock()
}

// Not flagged: the closure runs later, on a goroutine that does not
// inherit this critical section.
func (c *counter) closureEscapes() func() {
	c.mu.Lock()
	defer c.mu.Unlock()
	return func() {
		c.ch <- c.n
	}
}

// Not flagged: suppressed with a reason — Wait atomically releases the
// mutex it was built over.
func (c *counter) condWait(cond *sync.Cond) {
	c.mu.Lock()
	//bgplint:ignore lockheld Cond.Wait atomically releases c.mu while parked
	cond.Wait()
	c.mu.Unlock()
}
