// Package errdrop implements the bgplint analyzer that flags silently
// discarded error returns from this module's own APIs.
//
// The simulator's entry points (Solver.Solve, Engine.Run, the
// bgpwire/mrt/irr/topology parsers, the experiment runners) all report
// failure through their final error result; a call statement that drops
// that value turns a broken reproduction into a silently wrong one.
// Only implicit drops are flagged: an explicit `_ = f()` assignment is
// visible intent and stays allowed (the transport layer uses it for
// best-effort session teardown).
package errdrop

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/bgpsim/bgpsim/internal/lint/analysis"
)

// ModulePrefix scopes the analyzer to the module's own functions;
// stdlib calls (fmt.Fprintf and friends) are left to other tools.
// Tests point it at a testdata package path.
var ModulePrefix = "github.com/bgpsim/bgpsim"

// Analyzer is the errdrop pass.
var Analyzer = &analysis.Analyzer{
	Name: "errdrop",
	Doc: "flags call statements that implicitly discard an error returned " +
		"by one of this module's own functions",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, _ = s.X.(*ast.CallExpr)
			case *ast.GoStmt:
				call = s.Call
			case *ast.DeferStmt:
				call = s.Call
			}
			if call == nil {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if !inModule(fn.Pkg().Path()) {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || !returnsError(sig) {
				return true
			}
			pass.Reportf(call.Pos(),
				"result of %s.%s includes an error that is silently discarded; handle it or assign to _ explicitly",
				fn.Pkg().Name(), fn.Name())
			return true
		})
	}
	return nil, nil
}

func inModule(path string) bool {
	return path == ModulePrefix || strings.HasPrefix(path, ModulePrefix+"/")
}

func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		named, ok := res.At(i).Type().(*types.Named)
		if ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
			return true
		}
	}
	return false
}

// calleeFunc resolves the statically-known callee.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}
