// Package errdrop_a exercises the errdrop analyzer: the test registers
// this package path as the module prefix, so its own error-returning
// functions must not be called as bare statements.
package errdrop_a

import "fmt"

func fails() error { return nil }

func pair() (int, error) { return 0, nil }

func pure() int { return 1 }

type runner struct{}

func (runner) Run() error { return nil }

// Flagged: implicit drops of module errors.
func drops() {
	fails()       // want "silently discarded"
	pair()        // want "silently discarded"
	go fails()    // want "silently discarded"
	defer fails() // want "silently discarded"
	var r runner
	r.Run() // want "silently discarded"
}

// Not flagged: handled, explicitly blanked, or errorless.
func handled() error {
	if err := fails(); err != nil {
		return err
	}
	v, err := pair()
	if err != nil {
		return fmt.Errorf("pair (%d): %w", v, err)
	}
	_ = fails() // visible intent: best-effort teardown idiom
	pure()
	fmt.Println("stdlib error drops are out of scope here")
	return nil
}
