package errdrop

import (
	"testing"

	"github.com/bgpsim/bgpsim/internal/lint/linttest"
)

func TestErrDrop(t *testing.T) {
	defer func(old string) { ModulePrefix = old }(ModulePrefix)
	ModulePrefix = "errdrop_a"
	linttest.Run(t, Analyzer, "testdata/src/errdrop_a", "errdrop_a")
}
