// Package hotalloc_a exercises the hotalloc analyzer: per-iteration
// allocations inside loops of //bgplint:hotpath functions must be
// flagged; preallocated, caller-owned and field buffers must not, and
// unannotated functions are never inspected.
package hotalloc_a

import "fmt"

type solver struct {
	buf []int
}

// Flagged: every allocation pattern in one loop.
//
//bgplint:hotpath fixture kernel
func bad(xs []int) []string {
	var out []string
	for _, x := range xs {
		seen := map[int]bool{x: true} // want "map literal allocates every iteration"
		row := []int{x}               // want "slice literal allocates every iteration"
		tmp := make([]byte, 0, 8)     // want "make allocates every iteration"
		_, _, _ = seen, row, tmp
		label := fmt.Sprintf("%d", x) // want "fmt.Sprintf allocates every iteration"
		out = append(out, label)      // want "append to out grows an unpreallocated local slice"
	}
	return out
}

// Not flagged: preallocated locals, parameters, and field buffers are
// reused or caller-owned.
//
//bgplint:hotpath
func good(s *solver, xs []int, out []int) []int {
	acc := make([]int, 0, len(xs))
	for _, x := range xs {
		acc = append(acc, x)
		out = append(out, x)
		s.buf = append(s.buf, x)
	}
	return append(acc, out...)
}

// Not flagged: allocation-free nested loops.
//
//bgplint:hotpath
func nested(grid [][]int) int {
	total := 0
	for _, row := range grid {
		for _, v := range row {
			total += v
		}
	}
	return total
}

// Not flagged: no hotpath annotation, no budget.
func cold(xs []int) []string {
	var out []string
	for _, x := range xs {
		out = append(out, fmt.Sprintf("%d", x))
	}
	return out
}

// Not flagged: suppressed with a reason.
//
//bgplint:hotpath
func sanctioned(xs []int) []string {
	var out []string
	for _, x := range xs {
		//bgplint:ignore hotalloc fixture: cold error path inside the kernel
		out = append(out, fmt.Sprintf("%d", x))
	}
	return out
}
