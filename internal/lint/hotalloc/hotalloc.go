// Package hotalloc implements the bgplint analyzer that enforces a
// per-iteration allocation budget inside functions marked
// //bgplint:hotpath.
//
// The solve loop runs once per (target, attacker, policy) cell — tens of
// millions of iterations in a full-topology sweep — so a single
// per-iteration allocation multiplies into gigabytes of garbage and
// dominates the profile (BENCH_sweep.json's allocs/op column is the
// scoreboard). Annotating a function with //bgplint:hotpath in its doc
// comment opts its loops into the budget; inside those loop bodies the
// analyzer flags
//
//   - fmt.Sprintf/Errorf/Sprint/... calls (every call allocates),
//   - map and slice composite literals and make() calls,
//   - append to a slice declared in the function without
//     make-with-capacity — the growth reallocates every few iterations;
//     appends to reused struct-field buffers and to slices the caller
//     owns stay allowed.
//
// The check is the enforcement half of the dense-core rewrite contract:
// annotate the kernel now, and any future change that sneaks an
// allocation into the loop fails lint instead of a benchmark review.
package hotalloc

import (
	"go/ast"
	"go/types"

	"github.com/bgpsim/bgpsim/internal/lint/analysis"
	"github.com/bgpsim/bgpsim/internal/lint/directive"
)

// Analyzer is the hotalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "flags per-iteration allocation patterns (fmt.Sprintf, map/slice " +
		"literals, make, append without preallocated cap) in loops of " +
		"//bgplint:hotpath functions",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	var params map[types.Object]bool // lazily built: most packages have no hotpaths
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !directive.Hotpath(fn) {
				continue
			}
			if params == nil {
				params = paramObjs(pass)
			}
			checkHotpath(pass, fn, params)
		}
	}
	return nil, nil
}

// checkHotpath inspects every loop body in fn (nested function literals
// included — they run inside the hot path too).
func checkHotpath(pass *analysis.Pass, fn *ast.FuncDecl, params map[types.Object]bool) {
	prealloc := preallocated(pass, fn.Body)
	for obj := range params { //bgplint:ignore maporder set union; no order-dependent effect
		prealloc[obj] = true
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch loop := n.(type) {
		case *ast.ForStmt:
			body = loop.Body
		case *ast.RangeStmt:
			body = loop.Body
		default:
			return true
		}
		checkLoopBody(pass, body, prealloc)
		return true
	})
}

// preallocated collects the objects of slice variables declared with
// make(T, n) or make(T, n, c) anywhere in body — appends to those do not
// grow per iteration (amortized by the caller-chosen capacity).
func preallocated(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				continue
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "make" {
				continue
			}
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
				continue
			}
			lhs, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if obj := pass.TypesInfo.Defs[lhs]; obj != nil {
				out[obj] = true
			} else if obj := pass.TypesInfo.Uses[lhs]; obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

func checkLoopBody(pass *analysis.Pass, body *ast.BlockStmt, prealloc map[types.Object]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			// Nested loops are visited by checkHotpath on their own;
			// avoid double-reporting their bodies.
			if n != ast.Node(body) {
				return false
			}
		case *ast.CompositeLit:
			tv, ok := pass.TypesInfo.Types[x]
			if !ok {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Map:
				pass.Reportf(x.Pos(), "map literal allocates every iteration of a hotpath loop; hoist it out or reuse a cleared map")
			case *types.Slice:
				pass.Reportf(x.Pos(), "slice literal allocates every iteration of a hotpath loop; hoist it out or reuse a buffer")
			}
		case *ast.CallExpr:
			checkCall(pass, x, prealloc)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, prealloc map[types.Object]bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if _, isBuiltin := pass.TypesInfo.Uses[fun].(*types.Builtin); !isBuiltin {
			return
		}
		switch fun.Name {
		case "make":
			pass.Reportf(call.Pos(), "make allocates every iteration of a hotpath loop; hoist it out and reuse the buffer")
		case "append":
			checkAppend(pass, call, prealloc)
		}
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			pass.Reportf(call.Pos(), "fmt.%s allocates every iteration of a hotpath loop; format outside the loop or write into a reused buffer", fn.Name())
		}
	}
}

// checkAppend flags append whose destination is a local slice not
// preallocated with capacity. Appends to struct fields, parameters, or
// package variables are assumed to be reused or caller-owned buffers
// (prealloc contains the make-with-cap locals and all parameters).
func checkAppend(pass *analysis.Pass, call *ast.CallExpr, prealloc map[types.Object]bool) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return // selector (s.buf) or index expression: a reused buffer
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil || prealloc[obj] {
		return
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return
	}
	// Package-level variables are long-lived buffers.
	if v.Parent() != nil && v.Parent().Parent() == types.Universe {
		return
	}
	pass.Reportf(call.Pos(),
		"append to %s grows an unpreallocated local slice inside a hotpath loop; make(..., 0, cap) it or reuse a field buffer", id.Name)
}

// paramObjs collects every object declared by a function parameter or
// named result in the package.
func paramObjs(pass *analysis.Pass) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var ft *ast.FuncType
			switch x := n.(type) {
			case *ast.FuncDecl:
				ft = x.Type
			case *ast.FuncLit:
				ft = x.Type
			default:
				return true
			}
			for _, fl := range []*ast.FieldList{ft.Params, ft.Results} {
				if fl == nil {
					continue
				}
				for _, field := range fl.List {
					for _, name := range field.Names {
						if obj := pass.TypesInfo.Defs[name]; obj != nil {
							out[obj] = true
						}
					}
				}
			}
			return true
		})
	}
	return out
}
