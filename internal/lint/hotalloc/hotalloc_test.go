package hotalloc

import (
	"testing"

	"github.com/bgpsim/bgpsim/internal/lint/linttest"
)

func TestHotpathAllocations(t *testing.T) {
	linttest.Run(t, Analyzer, "testdata/src/hotalloc_a", "hotalloc_a")
}
