// Package lint assembles the bgplint analyzer suite: five domain-specific
// static-analysis passes that machine-check the simulator's determinism
// and error-handling invariants (see DESIGN.md, "Determinism & static
// analysis"). The driver lives in cmd/bgplint; run it via `make lint`.
package lint

import (
	"github.com/bgpsim/bgpsim/internal/lint/analysis"
	"github.com/bgpsim/bgpsim/internal/lint/asnconv"
	"github.com/bgpsim/bgpsim/internal/lint/errdrop"
	"github.com/bgpsim/bgpsim/internal/lint/globalrand"
	"github.com/bgpsim/bgpsim/internal/lint/maporder"
	"github.com/bgpsim/bgpsim/internal/lint/obsappend"
)

// Analyzers returns the full bgplint suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		maporder.Analyzer,
		globalrand.Analyzer,
		asnconv.Analyzer,
		errdrop.Analyzer,
		obsappend.Analyzer,
	}
}
