// Package lint assembles the bgplint analyzer suite: nine domain-specific
// static-analysis passes that machine-check the simulator's determinism,
// concurrency and allocation invariants (see DESIGN.md, "Determinism &
// static analysis"). The driver lives in cmd/bgplint; run it via
// `make lint`.
//
// The package also owns the determinism-fact configuration: instead of a
// hand-maintained package list, coverage is computed as the transitive
// import closure of a few roots — if deterministic code imports a
// package, that package's behavior feeds figure digests and it inherits
// the deterministic fact automatically. New packages therefore cannot
// dodge the maporder/walltime analyzers by being forgotten; a test
// (lint_test.go) fails if an internal/ package is neither covered by the
// closure nor explicitly exempted here with a reason.
package lint

import (
	"sort"
	"strings"

	"github.com/bgpsim/bgpsim/internal/lint/analysis"
	"github.com/bgpsim/bgpsim/internal/lint/asnconv"
	"github.com/bgpsim/bgpsim/internal/lint/errdrop"
	"github.com/bgpsim/bgpsim/internal/lint/globalrand"
	"github.com/bgpsim/bgpsim/internal/lint/goroleak"
	"github.com/bgpsim/bgpsim/internal/lint/hotalloc"
	"github.com/bgpsim/bgpsim/internal/lint/lockheld"
	"github.com/bgpsim/bgpsim/internal/lint/maporder"
	"github.com/bgpsim/bgpsim/internal/lint/obsappend"
	"github.com/bgpsim/bgpsim/internal/lint/walltime"
)

// Analyzers returns the full bgplint suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		maporder.Analyzer,
		globalrand.Analyzer,
		asnconv.Analyzer,
		errdrop.Analyzer,
		obsappend.Analyzer,
		walltime.Analyzer,
		lockheld.Analyzer,
		goroleak.Analyzer,
		hotalloc.Analyzer,
	}
}

// Names returns the set of analyzer names, for directive validation.
func Names() map[string]bool {
	out := make(map[string]bool)
	for _, a := range Analyzers() {
		out[a.Name] = true
	}
	return out
}

// DeterministicRoots are the packages whose results ARE the reproduction:
// everything they import (transitively) shapes figure digests and
// inherits the deterministic fact. Keep this list to genuine roots —
// packages nothing else in the module imports; anything reachable from a
// root is covered automatically.
var DeterministicRoots = []string{
	// The facade: every figure, table and live-detection result flows
	// through it, which pulls in core, experiments, feed, sweep and all
	// of their dependencies.
	"github.com/bgpsim/bgpsim",
	// Chaos transports replay seeded fault schedules whose digests must
	// equal fault-free runs; nothing imports the package (tests wire it).
	"github.com/bgpsim/bgpsim/internal/chaos",
	// ROVER origin validation: its accept/reject outcomes are
	// reproduction inputs even though only tests exercise it today.
	"github.com/bgpsim/bgpsim/internal/rover",
	// MRT replay: firehose digests are pinned against checked-in
	// fixtures, so its pacing and dispatch must be clock-injected; only
	// cmd/mrtreplay (exempt) imports it.
	"github.com/bgpsim/bgpsim/internal/firehose",
}

// Exempt maps internal packages outside the determinism contract to the
// reason they are exempt. A path ending in "/..." exempts the subtree.
// Exemptions are checked for staleness: if the closure ever reaches an
// exempted package (deterministic code started importing it), the
// coverage test fails until the entry is removed.
var Exempt = map[string]string{
	"github.com/bgpsim/bgpsim/internal/cli":      "process boundary: flag parsing and output-file naming for the cmd/ tools; computes no figure data itself",
	"github.com/bgpsim/bgpsim/internal/lint/...": "host-side static-analysis tooling; never linked into a reproduction binary",
	"github.com/bgpsim/bgpsim/internal/queryd":   "wall-clock serving boundary: HTTP daemon whose uptime and latency histograms read an injected tick.Clock; computes no figure data itself — every answer delegates to the deterministic core/hijack/deploy/detect kernels, and the equivalence suite pins its responses digest-identical to the batch tools",
}

// Exempted reports whether path is covered by an Exempt entry, and the
// recorded reason.
func Exempted(path string) (string, bool) {
	if r, ok := Exempt[path]; ok {
		return r, true
	}
	for pat, r := range Exempt {
		if sub, ok := strings.CutSuffix(pat, "/..."); ok {
			if path == sub || strings.HasPrefix(path, sub+"/") {
				return r, true
			}
		}
	}
	return "", false
}

// DeterministicClosure computes the determinism fact for every package:
// a package is deterministic iff it is a root or any deterministic
// package imports it. imports maps each package path to its
// module-internal imports; the closure is a breadth-first walk from
// DeterministicRoots down the import edges.
func DeterministicClosure(imports map[string][]string) map[string]bool {
	covered := make(map[string]bool)
	queue := make([]string, 0, len(DeterministicRoots))
	for _, r := range DeterministicRoots {
		if !covered[r] {
			covered[r] = true
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		deps := append([]string(nil), imports[p]...)
		sort.Strings(deps) // stable traversal; the result set is order-free anyway
		for _, d := range deps {
			if !covered[d] {
				covered[d] = true
				queue = append(queue, d)
			}
		}
	}
	return covered
}
