package directive

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"github.com/bgpsim/bgpsim/internal/lint/analysis"
)

func TestParse(t *testing.T) {
	cases := []struct {
		text    string
		keyword string
		rest    string
		ok      bool
	}{
		{"//bgplint:ignore maporder keys sorted below", "ignore", "maporder keys sorted below", true},
		{"//bgplint:hotpath solve kernel", "hotpath", "solve kernel", true},
		{"//bgplint:hotpath", "hotpath", "", true},
		{"//bgplint:ignore", "ignore", "", true},
		{"// bgplint:ignore maporder x", "", "", false}, // space breaks the marker
		{"//lint:maporder-ok legacy", "", "", false},
		{"// ordinary comment", "", "", false},
	}
	for _, c := range cases {
		kw, rest, ok := parse(c.text)
		if kw != c.keyword || rest != c.rest || ok != c.ok {
			t.Errorf("parse(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.text, kw, rest, ok, c.keyword, c.rest, c.ok)
		}
	}
}

func TestHotpath(t *testing.T) {
	src := `package p

// hot is a kernel.
//
//bgplint:hotpath per-cell loop
func hot() {}

// cold has no annotation.
func cold() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, d := range f.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok {
			got[fn.Name.Name] = Hotpath(fn)
		}
	}
	if !got["hot"] || got["cold"] {
		t.Errorf("Hotpath detection = %v, want hot=true cold=false", got)
	}
}

// filterSrc runs Filter over src with the given pre-existing diagnostics
// (keyed by line) and returns the surviving messages.
func filterSrc(t *testing.T, src string, diags map[int]string, known map[string]bool) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	tf := fset.File(f.Pos())
	var in []analysis.Diagnostic
	for line, spec := range diags {
		name, msg, _ := strings.Cut(spec, ":")
		in = append(in, analysis.Diagnostic{
			Pos:      tf.LineStart(line),
			Analyzer: name,
			Message:  msg,
		})
	}
	var out []string
	for _, d := range Filter(fset, []*ast.File{f}, in, known) {
		out = append(out, d.Analyzer+":"+d.Message)
	}
	return out
}

func TestFilterSuppressesOwnAndNextLine(t *testing.T) {
	src := `package p

//bgplint:ignore maporder keys sorted below
var a = 1
var b = 2 //bgplint:ignore maporder set write
var c = 3
`
	known := map[string]bool{"maporder": true}
	// Line 3 directive covers lines 3-4; line 5 directive covers 5-6.
	got := filterSrc(t, src, map[int]string{
		4: "maporder:suppressed by line above",
		5: "maporder:suppressed same line",
		6: "maporder:suppressed by trailing directive above",
	}, known)
	if len(got) != 0 {
		t.Errorf("expected all diagnostics suppressed, got %v", got)
	}
	// A diagnostic outside the two-line window survives.
	got = filterSrc(t, src, map[int]string{1: "maporder:not covered"}, known)
	if len(got) != 1 {
		t.Errorf("expected uncovered diagnostic to survive, got %v", got)
	}
	// A different analyzer on a covered line survives.
	got = filterSrc(t, src, map[int]string{4: "walltime:different analyzer"}, map[string]bool{"maporder": true, "walltime": true})
	if len(got) != 1 {
		t.Errorf("expected other-analyzer diagnostic to survive, got %v", got)
	}
}

func TestFilterRejectsIgnoreWithoutReason(t *testing.T) {
	src := `package p

//bgplint:ignore maporder
var a = 1
`
	got := filterSrc(t, src, map[int]string{4: "maporder:should NOT be suppressed"},
		map[string]bool{"maporder": true})
	if len(got) != 2 {
		t.Fatalf("want 2 diagnostics (malformed directive + unsuppressed finding), got %v", got)
	}
	joined := strings.Join(got, "\n")
	if !strings.Contains(joined, "has no reason") {
		t.Errorf("missing no-reason diagnostic in %v", got)
	}
	if !strings.Contains(joined, "should NOT be suppressed") {
		t.Errorf("reasonless ignore must not suppress; got %v", got)
	}
}

func TestFilterRejectsUnknownAnalyzerAndKeyword(t *testing.T) {
	src := `package p

//bgplint:ignore mapodrer typo in the analyzer name
//bgplint:igore maporder typo in the keyword
var a = 1
`
	got := filterSrc(t, src, nil, map[string]bool{"maporder": true})
	joined := strings.Join(got, "\n")
	if !strings.Contains(joined, `unknown analyzer "mapodrer"`) {
		t.Errorf("missing unknown-analyzer diagnostic in %v", got)
	}
	if !strings.Contains(joined, `unknown bgplint directive "igore"`) {
		t.Errorf("missing unknown-keyword diagnostic in %v", got)
	}
}

func TestDirectiveItselfCannotBeSuppressed(t *testing.T) {
	// Naming the pseudo-analyzer is rejected even if a caller leaks it
	// into known, and directive diagnostics survive any suppression.
	src := `package p

//bgplint:ignore directive trying to silence the grammar check
var a = 1
`
	got := filterSrc(t, src, nil, map[string]bool{"maporder": true, Name: true})
	if len(got) != 1 || !strings.Contains(got[0], `unknown analyzer "directive"`) {
		t.Errorf("want unknown-analyzer rejection for %q, got %v", Name, got)
	}
}

func TestFilterMultiAnalyzerIgnore(t *testing.T) {
	src := `package p

//bgplint:ignore maporder,walltime both justified here
var a = 1
`
	known := map[string]bool{"maporder": true, "walltime": true}
	got := filterSrc(t, src, map[int]string{
		4: "maporder:m finding",
	}, known)
	if len(got) != 0 {
		t.Errorf("maporder not suppressed by list directive: %v", got)
	}
	got = filterSrc(t, src, map[int]string{4: "walltime:w finding"}, known)
	if len(got) != 0 {
		t.Errorf("walltime not suppressed by list directive: %v", got)
	}
}
