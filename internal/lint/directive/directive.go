// Package directive parses bgplint's source directives and applies the
// suppression ones centrally, so every analyzer shares one grammar:
//
//	//bgplint:ignore <analyzer>[,<analyzer>...] <reason>
//	//bgplint:hotpath [note]
//
// An ignore directive suppresses findings of the named analyzers on its
// own line and on the line directly below (so it works both as a
// trailing comment and as a standalone line above the offending
// statement). The reason is mandatory: an ignore without one — or one
// naming an analyzer that does not exist — is itself a finding, reported
// under the "directive" pseudo-analyzer, and fails the lint run. Any
// other //bgplint: comment that is not a known directive is rejected the
// same way, so typos cannot silently disable a check.
//
// A hotpath directive in a function's doc comment opts that function
// into the hotalloc analyzer's per-iteration allocation budget; the
// trailing note is free-form.
package directive

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"

	"github.com/bgpsim/bgpsim/internal/lint/analysis"
)

// Name is the pseudo-analyzer malformed directives are attributed to.
// It cannot itself be suppressed.
const Name = "directive"

const (
	prefix        = "//bgplint:"
	ignoreKeyword = "ignore"
	// HotpathKeyword marks a function whose loops hotalloc budgets.
	HotpathKeyword = "hotpath"
)

// Ignore is one well-formed //bgplint:ignore directive.
type Ignore struct {
	Pos       token.Pos
	Line      int
	Analyzers []string
	Reason    string
}

// Hotpath reports whether fn's doc comment carries //bgplint:hotpath.
func Hotpath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if kw, _, ok := parse(c.Text); ok && kw == HotpathKeyword {
			return true
		}
	}
	return false
}

// parse splits a comment into (keyword, rest) if it is a //bgplint:
// directive. rest is the text after the keyword, space-trimmed.
func parse(text string) (keyword, rest string, ok bool) {
	body, found := strings.CutPrefix(text, prefix)
	if !found {
		return "", "", false
	}
	body = strings.TrimSpace(body)
	if i := strings.IndexAny(body, " \t"); i >= 0 {
		return body[:i], strings.TrimSpace(body[i+1:]), true
	}
	return body, "", true
}

// scan walks one file's comments, returning its well-formed ignores and
// reporting each malformed directive through report. known is the set of
// analyzer names an ignore may suppress.
func scan(fset *token.FileSet, file *ast.File, known map[string]bool, report func(analysis.Diagnostic)) []Ignore {
	var out []Ignore
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			kw, rest, ok := parse(c.Text)
			if !ok {
				continue
			}
			bad := func(format string, args ...interface{}) {
				report(analysis.Diagnostic{
					Pos:      c.Pos(),
					Analyzer: Name,
					Message:  fmt.Sprintf(format, args...),
				})
			}
			switch kw {
			case HotpathKeyword:
				// Free-form note; consumed by hotalloc via Hotpath.
			case ignoreKeyword:
				names, reason, found := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				if names == "" {
					bad("ignore directive names no analyzer; write //bgplint:ignore <analyzer> <reason>")
					continue
				}
				if !found || reason == "" {
					bad("ignore directive for %q has no reason; every suppression must say why", names)
					continue
				}
				split := strings.Split(names, ",")
				valid := true
				for _, n := range split {
					if !known[n] || n == Name {
						bad("ignore directive names unknown analyzer %q", n)
						valid = false
					}
				}
				if !valid {
					continue
				}
				out = append(out, Ignore{
					Pos:       c.Pos(),
					Line:      fset.Position(c.Pos()).Line,
					Analyzers: split,
					Reason:    reason,
				})
			default:
				bad("unknown bgplint directive %q (known: ignore, hotpath)", kw)
			}
		}
	}
	return out
}

// Filter applies the files' ignore directives to diags: suppressed
// diagnostics are dropped, and every malformed directive is appended as
// a diagnostic of the directive pseudo-analyzer. known lists the
// analyzer names that exist (independent of which subset this run
// enabled, so -only runs do not misreport ignores of other analyzers).
func Filter(fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic, known map[string]bool) []analysis.Diagnostic {
	// line -> analyzer -> suppressed
	suppress := make(map[int]map[string]bool)
	var out []analysis.Diagnostic
	for _, f := range files {
		igns := scan(fset, f, known, func(d analysis.Diagnostic) { out = append(out, d) })
		for _, ig := range igns {
			for _, line := range []int{ig.Line, ig.Line + 1} {
				m := suppress[line]
				if m == nil {
					m = make(map[string]bool)
					suppress[line] = m
				}
				for _, a := range ig.Analyzers {
					m[a] = true
				}
			}
		}
	}
	for _, d := range diags {
		line := fset.Position(d.Pos).Line
		if d.Analyzer != Name && suppress[line][d.Analyzer] {
			continue
		}
		out = append(out, d)
	}
	return out
}
