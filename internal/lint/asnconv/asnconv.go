// Package asnconv implements the bgplint analyzer that confines raw
// integer<->asn.ASN conversions to the asn package itself.
//
// The simulator addresses ASes two ways: dense node indices (int/int32,
// assigned by the topology package) and wire-format AS numbers
// (asn.ASN). A bare conversion between the two compiles fine and is
// almost always a bug — a node index silently becomes "AS17". Outside
// internal/asn, code must use the typed helpers (asn.FromUint32,
// ASN.Uint32) whose names say which representation is in hand; constant
// conversions such as asn.ASN(65000) remain allowed.
package asnconv

import (
	"go/ast"
	"go/types"

	"github.com/bgpsim/bgpsim/internal/lint/analysis"
)

// AsnPkgPath is the import path of the package owning the ASN type.
// Tests point it at a testdata stand-in.
var AsnPkgPath = "github.com/bgpsim/bgpsim/internal/asn"

// Analyzer is the asnconv pass.
var Analyzer = &analysis.Analyzer{
	Name: "asnconv",
	Doc: "flags raw integer<->asn.ASN conversions outside internal/asn; " +
		"use asn.FromUint32 / ASN.Uint32 so AS numbers and node indices stay distinct",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if pass.PkgPath == AsnPkgPath {
		return nil, nil // the helpers themselves live here
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			tv, ok := pass.TypesInfo.Types[call.Fun]
			if !ok || !tv.IsType() {
				return true
			}
			target := tv.Type
			argTV, ok := pass.TypesInfo.Types[call.Args[0]]
			if !ok {
				return true
			}
			if argTV.Value != nil {
				return true // constant conversions (asn.ASN(65000)) are fine
			}
			switch {
			case isASN(target) && isRawInteger(argTV.Type):
				pass.Reportf(call.Pos(),
					"raw integer-to-ASN conversion; use asn.FromUint32 so the value is explicitly an AS number")
			case isRawInteger(target) && isASN(argTV.Type):
				pass.Reportf(call.Pos(),
					"raw ASN-to-integer conversion; use ASN.Uint32 so the representation change is explicit")
			}
			return true
		})
	}
	return nil, nil
}

// isASN reports whether t is the asn.ASN named type.
func isASN(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "ASN" && obj.Pkg() != nil && obj.Pkg().Path() == AsnPkgPath
}

// isRawInteger reports whether t is a plain integer type (not a named
// domain type like ASN itself).
func isRawInteger(t types.Type) bool {
	if isASN(t) {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
