package asnconv

import (
	"testing"

	"github.com/bgpsim/bgpsim/internal/lint/linttest"
)

func TestOutsideOwnerPackage(t *testing.T) {
	defer func(old string) { AsnPkgPath = old }(AsnPkgPath)
	AsnPkgPath = "asnstub"
	linttest.RunDeps(t, Analyzer,
		map[string]string{"asnstub": "testdata/src/asnstub"},
		"testdata/src/asnconv_a", "asnconv_a")
}

func TestInsideOwnerPackage(t *testing.T) {
	defer func(old string) { AsnPkgPath = old }(AsnPkgPath)
	AsnPkgPath = "asnstub"
	// The owner package converts freely; no diagnostics expected.
	linttest.Run(t, Analyzer, "testdata/src/asnstub", "asnstub")
}
