// Package asnconv_a exercises the asnconv analyzer from outside the
// ASN-owning package.
package asnconv_a

import "asnstub"

// Flagged: a raw integer (here: a node index) silently becomes an ASN.
func fromIndex(idx int) asnstub.ASN {
	return asnstub.ASN(idx) // want "raw integer-to-ASN conversion"
}

func fromWire(v uint32) asnstub.ASN {
	return asnstub.ASN(v) // want "raw integer-to-ASN conversion"
}

// Flagged: an ASN silently becomes a raw integer.
func toIndex(a asnstub.ASN) int {
	return int(a) // want "raw ASN-to-integer conversion"
}

func toWire(a asnstub.ASN) uint64 {
	return uint64(a) // want "raw ASN-to-integer conversion"
}

// Not flagged: constant conversions are unambiguous.
func constants() asnstub.ASN {
	const wellKnown = 65000
	return asnstub.ASN(wellKnown) + asnstub.ASN(174)
}

// Not flagged: the typed helpers say which representation is in hand.
func viaHelpers(v uint32) uint32 {
	a := asnstub.FromUint32(v)
	return a.Uint32()
}

// Not flagged: integer-to-integer conversions don't involve ASN.
func plainIntegers(v uint16) uint32 {
	return uint32(v)
}
