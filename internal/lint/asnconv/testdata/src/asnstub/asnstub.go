// Package asnstub stands in for internal/asn in asnconv tests: it owns
// the ASN type, so raw conversions inside it are allowed.
package asnstub

// ASN mirrors the real asn.ASN.
type ASN uint32

// FromUint32 converts a wire-format AS number to the typed form.
func FromUint32(v uint32) ASN { return ASN(v) }

// Uint32 returns the wire-format AS number.
func (a ASN) Uint32() uint32 { return uint32(a) }
