// Package walltime implements the bgplint analyzer that keeps the wall
// clock out of deterministic packages.
//
// The live-pipeline robustness contract (DESIGN.md §8) is that every
// duration-sensitive decision — hold timers, keepalive cadence,
// reconnect backoff — flows through an injected tick.Clock, so the
// deterministic tick.Fake drives the exact production code path in
// tests. A single direct time.Now (or timer built from package time)
// silently forks the code into a path the fake clock never exercises:
// the test pins one schedule while production runs another. The
// analyzer therefore flags every package-level wall-clock accessor from
// package time inside the determinism closure, plus calls to
// tick.Real() outside the process boundary — Real() in library code
// reintroduces the wall clock behind the injection API. cmd/ and
// examples/ are boundaries (not in the closure) and install Real freely;
// package internal/tick implements Real and carries the two sanctioned
// //bgplint:ignore directives in the whole module.
package walltime

import (
	"go/ast"
	"go/types"

	"github.com/bgpsim/bgpsim/internal/lint/analysis"
)

// Analyzer is the walltime pass.
var Analyzer = &analysis.Analyzer{
	Name: "walltime",
	Doc: "flags direct wall-clock access (time.Now/Since/NewTimer/After/...) " +
		"and tick.Real() in deterministic packages; inject a tick.Clock instead",
	Run: run,
}

// tickPath is the injectable-clock package; Real() is its wall-clock
// constructor for the process boundary.
const tickPath = "github.com/bgpsim/bgpsim/internal/tick"

// banned are the package-level functions of package time that read or
// schedule against the wall clock. Pure constructors (time.Date,
// time.Unix, time.Duration arithmetic) and methods on time.Time stay
// allowed — they are deterministic given their inputs.
var banned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
	"Tick":      true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !pass.Facts.Deterministic {
		return nil, nil
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (t.Add, t.Sub, ...) are pure
			}
			switch {
			case fn.Pkg().Path() == "time" && banned[fn.Name()]:
				pass.Reportf(call.Pos(),
					"direct time.%s in deterministic package; route wall-clock access through an injected tick.Clock so fake-clock tests drive the production path",
					fn.Name())
			case fn.Pkg().Path() == tickPath && fn.Name() == "Real":
				pass.Reportf(call.Pos(),
					"tick.Real() in library code bypasses clock injection; accept a tick.Clock and let the process boundary (cmd/, examples/) install Real")
			}
			return true
		})
	}
	return nil, nil
}

// calleeFunc resolves the called function object, if statically known.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}
