// Package walltime_a exercises the walltime analyzer: the test runs it
// with the deterministic fact set, so direct wall-clock access must be
// flagged while injected-clock use and pure time arithmetic stay quiet.
package walltime_a

import (
	"time"

	"github.com/bgpsim/bgpsim/internal/tick"
)

// Flagged: reads the wall clock.
func stamp() time.Time {
	return time.Now() // want "direct time.Now in deterministic package"
}

// Flagged: Since is Now in disguise.
func age(t0 time.Time) time.Duration {
	return time.Since(t0) // want "direct time.Since in deterministic package"
}

// Flagged: timers scheduled against the wall clock.
func holdTimer() *time.Timer {
	return time.NewTimer(30 * time.Second) // want "direct time.NewTimer in deterministic package"
}

func deadline() <-chan time.Time {
	return time.After(time.Second) // want "direct time.After in deterministic package"
}

func nap() {
	time.Sleep(time.Millisecond) // want "direct time.Sleep in deterministic package"
}

// Flagged: Real() reintroduces the wall clock behind the injection API.
func fallback(c tick.Clock) tick.Clock {
	if c == nil {
		return tick.Real() // want "tick.Real\(\) in library code bypasses clock injection"
	}
	return c
}

// Not flagged: the injected clock is the sanctioned path.
func viaClock(c tick.Clock) time.Time {
	return c.Now()
}

// Not flagged: pure constructors and Time/Duration arithmetic are
// deterministic given their inputs.
func pure(t time.Time) time.Duration {
	epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	return t.Add(time.Hour).Sub(epoch) + 2*time.Minute
}

// Not flagged: suppressed with a reason.
func sanctioned() time.Time {
	//bgplint:ignore walltime fixture: boundary shim owns the wall clock
	return time.Now()
}
