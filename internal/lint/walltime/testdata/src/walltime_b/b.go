// Package walltime_b runs WITHOUT the deterministic fact (a process
// boundary like cmd/ or examples/): direct wall-clock access is allowed.
package walltime_b

import "time"

func stamp() time.Time {
	return time.Now()
}

func nap() {
	time.Sleep(time.Millisecond)
}
