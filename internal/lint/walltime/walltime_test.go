package walltime

import (
	"testing"

	"github.com/bgpsim/bgpsim/internal/lint/linttest"
)

func TestDeterministicPackage(t *testing.T) {
	linttest.Run(t, Analyzer, "testdata/src/walltime_a", "walltime_a")
}

func TestNonDeterministicPackage(t *testing.T) {
	// Outside the determinism closure the wall clock is free: the same
	// fixture must produce zero diagnostics, so every want comment in it
	// would fail — use the boundary fixture instead.
	linttest.RunWith(t, Analyzer, linttest.Options{NonDeterministic: true},
		"testdata/src/walltime_b", "walltime_b")
}
