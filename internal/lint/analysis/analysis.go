// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis driver contract, just large enough to
// host bgplint's analyzers. The shapes (Analyzer, Pass, Diagnostic) match
// the upstream API deliberately, so the suite can be rebased onto
// x/tools unchanged once the module is allowed external dependencies.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the bgplint
	// command line. It must be a valid Go identifier.
	Name string
	// Doc is the one-paragraph description printed by `bgplint help`.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) (interface{}, error)
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// PkgPath is the import path the package was loaded under. For
	// module packages it is the full module-qualified path.
	PkgPath string

	// Facts carries the package-level facts the driver computed before
	// running any analyzer — cross-package properties (like membership
	// in the determinism closure) that a single-package pass cannot
	// derive on its own.
	Facts Facts

	// Report delivers one diagnostic. The driver supplies it.
	Report func(Diagnostic)
}

// Facts is the set of package-level facts propagated by the driver.
// Unlike upstream go/analysis fact machinery (which serializes analyzer
// facts between passes), bgplint's facts are derived once from the
// module import graph and the lint configuration: they flow from the
// config-listed roots through the import graph, so a package becomes
// deterministic the moment deterministic code imports it — no
// hand-maintained package list.
type Facts struct {
	// Deterministic reports whether the package is in the determinism
	// closure: a config root, or (transitively) imported by a
	// deterministic package. Analyzers guarding reproduction invariants
	// (maporder, walltime) fire only in deterministic packages.
	Deterministic bool
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// IsTestFile reports whether the file containing pos is a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	if f == nil {
		return false
	}
	name := f.Name()
	return len(name) >= len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go"
}
