// Package obsappend_a exercises the obsappend analyzer: appends to
// captured slices inside *corestub.Outcome callbacks are completion-order
// bugs; indexed assignment and local appends are fine.
package obsappend_a

import "corestub"

func runSweep(n int, obs func(idx int, o *corestub.Outcome)) {
	for i := 0; i < n; i++ {
		obs(i, &corestub.Outcome{N: i})
	}
}

// Flagged: the observer appends to a slice captured from the enclosing
// function, so the result order depends on worker completion order.
func capturedAppend(n int) []int {
	var pollution []int
	runSweep(n, func(idx int, o *corestub.Outcome) {
		pollution = append(pollution, o.PollutedCount()) // want "append to captured \"pollution\""
	})
	return pollution
}

type result struct{ rows []int }

// Flagged: appending through a captured struct field is the same bug.
func capturedFieldAppend(n int) *result {
	res := &result{}
	runSweep(n, func(idx int, o *corestub.Outcome) {
		res.rows = append(res.rows, o.PollutedCount()) // want "append to captured \"res\""
	})
	return res
}

// Not flagged: indexed assignment into a preallocated slice is the
// deterministic pattern.
func indexedAssign(n int) []int {
	pollution := make([]int, n)
	runSweep(n, func(idx int, o *corestub.Outcome) {
		pollution[idx] = o.PollutedCount()
	})
	return pollution
}

// Not flagged: the slice is local to the callback.
func localAppend(n int) {
	runSweep(n, func(idx int, o *corestub.Outcome) {
		var local []int
		local = append(local, o.PollutedCount())
		_ = local
	})
}

// Not flagged: callbacks without an Outcome parameter (e.g. reducer Emit
// functions) see indices in order and may append freely.
func reducerAppend(n int) []int {
	var out []int
	emit := func(idx int, v int) {
		out = append(out, v)
	}
	for i := 0; i < n; i++ {
		emit(i, i)
	}
	return out
}
