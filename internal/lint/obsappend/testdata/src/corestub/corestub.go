// Package corestub stands in for internal/core in obsappend tests: it
// owns the Outcome type the analyzer keys on.
package corestub

// Outcome mirrors the real core.Outcome.
type Outcome struct {
	N int
}

// PollutedCount mirrors the real accessor.
func (o *Outcome) PollutedCount() int { return o.N }
