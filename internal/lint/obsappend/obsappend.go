// Package obsappend implements the bgplint analyzer that guards the sweep
// kernel's ordering contract at its call sites.
//
// Callbacks that receive a *core.Outcome — sweep.Observer implementations
// and matrix extract functions — run on worker goroutines in COMPLETION
// order, which varies with the worker count. Appending to a slice captured
// from an enclosing scope inside such a callback therefore records results
// in a nondeterministic order (and, on the matrix paths, races outright):
// the classic way a sweep silently loses its bit-identical-at-any-worker-
// count guarantee. The deterministic patterns are indexed assignment into
// a preallocated slice (results[idx] = v) or returning a record for a
// streaming sweep.Reducer, whose Emit sees indices in order and may append
// freely.
package obsappend

import (
	"go/ast"
	"go/types"

	"github.com/bgpsim/bgpsim/internal/lint/analysis"
)

// OutcomePkgPath is the import path of the package owning the Outcome
// type. Tests point it at a testdata stand-in.
var OutcomePkgPath = "github.com/bgpsim/bgpsim/internal/core"

// Analyzer is the obsappend pass.
var Analyzer = &analysis.Analyzer{
	Name: "obsappend",
	Doc: "flags appends to captured slices inside *core.Outcome callbacks (observers/extractors), " +
		"which run in completion order; assign by index or reduce through a sweep.Reducer instead",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.FuncLit)
			if !ok || !takesOutcome(pass, lit) {
				return true
			}
			checkBody(pass, lit)
			return true
		})
	}
	return nil, nil
}

// takesOutcome reports whether the literal has a *core.Outcome parameter —
// the signature shared by sweep observers and matrix extract callbacks.
func takesOutcome(pass *analysis.Pass, lit *ast.FuncLit) bool {
	for _, field := range lit.Type.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok {
			continue
		}
		ptr, ok := tv.Type.(*types.Pointer)
		if !ok {
			continue
		}
		named, ok := ptr.Elem().(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Name() == "Outcome" && obj.Pkg() != nil && obj.Pkg().Path() == OutcomePkgPath {
			return true
		}
	}
	return false
}

// checkBody flags append calls in the literal whose destination slice is
// captured from an enclosing scope.
func checkBody(pass *analysis.Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok {
			return true
		}
		if b, ok := pass.TypesInfo.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
			return true
		}
		root := rootIdent(call.Args[0])
		if root == nil {
			return true
		}
		obj := pass.TypesInfo.Uses[root]
		if obj == nil || obj.Pos() == 0 {
			return true
		}
		// Declared outside the literal = captured shared state.
		if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
			pass.Reportf(call.Pos(),
				"append to captured %q inside a *core.Outcome callback runs in completion order, not index order; "+
					"assign results[idx] into a preallocated slice or stream through a sweep.Reducer", root.Name)
		}
		return true
	})
}

// rootIdent walks selector/index chains (res.Rows, out[i].Vals) down to
// the base identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
