package obsappend

import (
	"testing"

	"github.com/bgpsim/bgpsim/internal/lint/linttest"
)

func TestObserverAppends(t *testing.T) {
	defer func(old string) { OutcomePkgPath = old }(OutcomePkgPath)
	OutcomePkgPath = "corestub"
	linttest.RunDeps(t, Analyzer,
		map[string]string{"corestub": "testdata/src/corestub"},
		"testdata/src/obsappend_a", "obsappend_a")
}
