package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestCCDF(t *testing.T) {
	pts := CCDF([]int{5, 3, 3, 8})
	want := []CCDFPoint{{3, 4}, {5, 2}, {8, 1}}
	if len(pts) != len(want) {
		t.Fatalf("CCDF = %v, want %v", pts, want)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("CCDF = %v, want %v", pts, want)
		}
	}
	if CCDF(nil) != nil {
		t.Error("CCDF(nil) should be nil")
	}
}

// TestCCDFProperties checks the defining invariants on random data: the
// curve is non-increasing in Count, starts at N, and Count at x equals the
// number of samples ≥ x.
func TestCCDFProperties(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		values := make([]int, len(raw))
		for i, r := range raw {
			values[i] = int(r)
		}
		pts := CCDF(values)
		if pts[0].Count != len(values) {
			return false
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].Count >= pts[i-1].Count || pts[i].X <= pts[i-1].X {
				return false
			}
		}
		for _, p := range pts {
			if p.Count != CountAtLeast(values, p.X) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCountAtLeast(t *testing.T) {
	v := []int{1, 5, 5, 9}
	cases := []struct{ th, want int }{{0, 4}, {1, 4}, {2, 3}, {5, 3}, {6, 1}, {10, 0}}
	for _, c := range cases {
		if got := CountAtLeast(v, c.th); got != c.want {
			t.Errorf("CountAtLeast(%d) = %d, want %d", c.th, got, c.want)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]int{4, 1, 7, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 7 {
		t.Errorf("Summary = %+v", s)
	}
	if math.Abs(s.Mean-3.5) > 1e-9 {
		t.Errorf("Mean = %v, want 3.5", s.Mean)
	}
	if math.Abs(s.Median-3.0) > 1e-9 {
		t.Errorf("Median = %v, want 3.0", s.Median)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Error("empty Summarize should be zero")
	}
}

func TestPercentile(t *testing.T) {
	v := []int{10, 20, 30, 40, 50}
	if got := Percentile(v, 0); got != 10 {
		t.Errorf("P0 = %v", got)
	}
	if got := Percentile(v, 1); got != 50 {
		t.Errorf("P100 = %v", got)
	}
	if got := Percentile(v, 0.5); got != 30 {
		t.Errorf("P50 = %v", got)
	}
	if got := Percentile(v, 0.25); got != 20 {
		t.Errorf("P25 = %v", got)
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]int{0, 1, 1, 3, 99, -5}, 3)
	want := []int{2, 2, 0, 2} // -5 clamps to 0, 99 clamps to 3
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("Histogram = %v, want %v", h, want)
		}
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Errorf("Pearson = %v, want 1", r)
	}
	neg := []float64{8, 6, 4, 2}
	r, err = Pearson(xs, neg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r+1) > 1e-12 {
		t.Errorf("Pearson = %v, want -1", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Error("single sample accepted")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("zero variance accepted")
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Any strictly monotone transform gives rank correlation 1.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125}
	r, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Errorf("Spearman = %v, want 1", r)
	}
}

func TestSpearmanTies(t *testing.T) {
	// Tied x values get average ranks; correlation stays defined.
	xs := []float64{1, 1, 2, 3}
	ys := []float64{10, 20, 30, 40}
	r, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if r <= 0.8 || r > 1 {
		t.Errorf("Spearman with ties = %v, want strong positive", r)
	}
}

// TestRanksAverageTies verifies the tie-handling in rank assignment.
func TestRanksAverageTies(t *testing.T) {
	got := ranks([]float64{5, 1, 5, 2})
	// sorted: 1(rank1), 2(rank2), 5, 5 (ranks 3,4 → 3.5 each)
	want := []float64{3.5, 1, 3.5, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", got, want)
		}
	}
}

// TestPercentileMatchesSort cross-checks Percentile monotonicity on random
// inputs.
func TestPercentileMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	values := make([]int, 200)
	for i := range values {
		values[i] = rng.Intn(1000)
	}
	sorted := append([]int(nil), values...)
	sort.Ints(sorted)
	last := math.Inf(-1)
	for p := 0.0; p <= 1.0; p += 0.05 {
		v := Percentile(values, p)
		if v < last {
			t.Fatalf("percentile not monotone at p=%v", p)
		}
		if v < float64(sorted[0]) || v > float64(sorted[len(sorted)-1]) {
			t.Fatalf("percentile out of range at p=%v", p)
		}
		last = v
	}
}

func TestCCDFArea(t *testing.T) {
	// A fast-dropping (convex/resistant) distribution: most attacks weak.
	convex := CCDF([]int{1, 1, 1, 1, 1, 1, 1, 1, 1, 100})
	// A plateauing (concave/vulnerable) one: most attacks near-max.
	concave := CCDF([]int{90, 92, 94, 96, 98, 99, 99, 100, 100, 2})
	a1, a2 := CCDFArea(convex), CCDFArea(concave)
	if a1 >= a2 {
		t.Errorf("convex area %.3f not below concave %.3f", a1, a2)
	}
	if a1 > 0.5 {
		t.Errorf("resistant-shape area = %.3f, want < 0.5", a1)
	}
	if a2 < 0.5 {
		t.Errorf("vulnerable-shape area = %.3f, want > 0.5", a2)
	}
	if got := CCDFArea(nil); got != 0 {
		t.Errorf("empty area = %v", got)
	}
	// Areas stay in [0, 1] on arbitrary data.
	for seed := 0; seed < 20; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		vals := make([]int, 50)
		for i := range vals {
			vals[i] = rng.Intn(1000)
		}
		if a := CCDFArea(CCDF(vals)); a < 0 || a > 1 {
			t.Fatalf("seed %d: area %v out of [0,1]", seed, a)
		}
	}
}
