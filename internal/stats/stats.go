// Package stats provides the statistical primitives behind the paper's
// measurements: complementary cumulative counts (the vulnerability-analysis
// curves of Figures 2–6), histograms (Figure 7), summary statistics, and
// the depth/degree correlation metrics discussed in Section IV.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// CCDFPoint is one point of a complementary cumulative curve: Count
// attacks produced at least X polluted ASes.
type CCDFPoint struct {
	X     int
	Count int
}

// CCDF computes the paper's vulnerability-analysis curve from per-attack
// pollution counts: for each distinct pollution level x, how many attacks
// polluted at least x ASes ("the faster a curve approaches zero, the more
// resistant the AS is to attack"). Points are returned in ascending X.
func CCDF(values []int) []CCDFPoint {
	if len(values) == 0 {
		return nil
	}
	sorted := append([]int(nil), values...)
	sort.Ints(sorted)
	var out []CCDFPoint
	n := len(sorted)
	for i := 0; i < n; {
		x := sorted[i]
		// Attacks with pollution ≥ x = everything from i on; emit one point
		// per distinct value.
		out = append(out, CCDFPoint{X: x, Count: n - i})
		j := i
		for j < n && sorted[j] == x {
			j++
		}
		i = j
	}
	return out
}

// CountAtLeast returns how many values are ≥ threshold — the paper's
// "only N attackers can pollute more than X ASes" summaries.
func CountAtLeast(values []int, threshold int) int {
	c := 0
	for _, v := range values {
		if v >= threshold {
			c++
		}
	}
	return c
}

// Summary holds the distribution statistics reported throughout the paper.
type Summary struct {
	N      int
	Mean   float64
	Max    int
	Min    int
	Median float64
	P90    float64
	P99    float64
}

// Summarize computes summary statistics of integer samples.
func Summarize(values []int) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	sorted := append([]int(nil), values...)
	sort.Ints(sorted)
	sum := 0
	for _, v := range sorted {
		sum += v
	}
	return Summary{
		N:      len(sorted),
		Mean:   float64(sum) / float64(len(sorted)),
		Max:    sorted[len(sorted)-1],
		Min:    sorted[0],
		Median: percentileSorted(sorted, 0.5),
		P90:    percentileSorted(sorted, 0.9),
		P99:    percentileSorted(sorted, 0.99),
	}
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1) with linear interpolation.
func Percentile(values []int, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]int(nil), values...)
	sort.Ints(sorted)
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []int, p float64) float64 {
	if p <= 0 {
		return float64(sorted[0])
	}
	if p >= 1 {
		return float64(sorted[len(sorted)-1])
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return float64(sorted[lo])
	}
	frac := pos - float64(lo)
	return float64(sorted[lo])*(1-frac) + float64(sorted[hi])*frac
}

// Histogram counts values into unit buckets [0..max]; values above max
// are clamped into the last bucket.
func Histogram(values []int, max int) []int {
	h := make([]int, max+1)
	for _, v := range values {
		if v < 0 {
			v = 0
		}
		if v > max {
			v = max
		}
		h[v]++
	}
	return h
}

// CCDFArea computes the normalized area under a CCDF curve, both axes
// scaled to [0,1]. It quantifies the paper's concavity observation: a
// resistant AS's curve "approaches zero fast" (convex, area well below
// 0.5) while a vulnerable AS's curve plateaus before dropping (concave,
// area above 0.5) — "the concavity of the curve actually flips between
// depth 1 and 2". The curve is integrated as the right-continuous step
// function CCDFs are.
func CCDFArea(points []CCDFPoint) float64 {
	if len(points) == 0 {
		return 0
	}
	maxX := points[len(points)-1].X
	maxY := points[0].Count
	if maxX == 0 || maxY == 0 {
		return 0
	}
	area := 0.0
	prevX := 0
	for _, p := range points {
		// F(x) = #samples ≥ x holds the value p.Count on (prevX, p.X].
		area += float64(p.X-prevX) * float64(p.Count)
		prevX = p.X
	}
	return area / (float64(maxX) * float64(maxY))
}

// Pearson computes the Pearson correlation coefficient of two equal-length
// samples. Returns an error on mismatched or degenerate input.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("pearson: length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, fmt.Errorf("pearson: need at least 2 samples")
	}
	n := float64(len(xs))
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, fmt.Errorf("pearson: zero variance")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Spearman computes the Spearman rank correlation (Pearson over ranks,
// with tied values receiving their average rank).
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("spearman: length mismatch %d vs %d", len(xs), len(ys))
	}
	return Pearson(ranks(xs), ranks(ys))
}

func ranks(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, len(xs))
	for i := 0; i < len(idx); {
		j := i
		for j < len(idx) && xs[idx[j]] == xs[idx[i]] {
			j++
		}
		// Average rank for the tie group [i, j).
		avg := float64(i+j-1)/2 + 1
		for k := i; k < j; k++ {
			out[idx[k]] = avg
		}
		i = j
	}
	return out
}
