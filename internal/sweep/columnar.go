// The columnar shard layout ("recio-col"): the same records as a recio
// row shard, transposed into one compressed column per field so a
// reducer that folds a single field — a pollution histogram, a weight
// quantile — inflates only that field's bytes. A record type opts in by
// implementing ColumnarRecord; types carrying slices or maps (detect
// triggers, hole maps) have no fixed-width column mapping and stay in
// the row layout, loudly.
package sweep

import (
	"fmt"

	"github.com/bgpsim/bgpsim/internal/recio"
)

// ColumnarRecord is the contract a record type implements to ride the
// columnar layout. ColumnFields declares the per-field wire names and
// encodings (stable — it becomes the file's field map); ColumnValues
// and SetColumnValues transpose one record to and from that declared
// order, floats travelling as IEEE-754 bits so round-trips are exact.
// ColumnFields and ColumnValues want value receivers, SetColumnValues a
// pointer receiver: *T implements the full interface.
type ColumnarRecord interface {
	ColumnFields() []recio.Field
	ColumnValues() []uint64
	SetColumnValues(vals []uint64)
}

// columnarOf asserts *T implements ColumnarRecord, with a diagnosis
// naming the offending type when it does not.
func columnarOf[T any](z *T) (ColumnarRecord, error) {
	cr, ok := any(z).(ColumnarRecord)
	if !ok {
		return nil, fmt.Errorf("record type %T has no columnar mapping (slices or maps have no fixed-width column): use -format %s",
			*z, FormatRecio)
	}
	return cr, nil
}

// ColumnarCodec stores shards in the per-field columnar variant of the
// recio format. Reading is layout-blind (any .rec file decodes through
// readRecShard); writing requires T to implement ColumnarRecord.
type ColumnarCodec[T any] struct {
	// Level is the gzip compression level (0 = recio.DefaultLevel).
	Level int
}

// Name implements Codec.
func (ColumnarCodec[T]) Name() string { return FormatRecioCol }

// Ext implements Codec: columnar shards share the .rec extension — the
// header's layout field, not the filename, says how the body decodes.
func (ColumnarCodec[T]) Ext() string { return "rec" }

// WriteShard implements Codec.
func (c ColumnarCodec[T]) WriteShard(path string, f *ShardFile[T]) error {
	if len(f.Records) != f.CellHi-f.CellLo {
		return fmt.Errorf("shard %d/%d: %d records for cell range [%d,%d)",
			f.Shard, f.Shards, len(f.Records), f.CellLo, f.CellHi)
	}
	var z T
	cz, err := columnarOf(&z)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	hdr := recioHeader(f)
	hdr.Layout = recio.LayoutColumns
	hdr.Fields = recio.FieldsSpec(cz.ColumnFields())
	w, fh, err := recio.Create(path, hdr, recio.Options{Level: c.Level})
	if err != nil {
		return err
	}
	for i := range f.Records {
		cr, _ := columnarOf(&f.Records[i])
		if err := w.AppendRow(cr.ColumnValues()); err != nil {
			fh.Close()
			return fmt.Errorf("%s: %w", path, err)
		}
		if w.Pending() >= wholeShardSegment {
			if err := w.Flush(); err != nil {
				fh.Close()
				return fmt.Errorf("%s: %w", path, err)
			}
		}
	}
	if err := w.Close(); err != nil {
		fh.Close()
		return fmt.Errorf("%s: %w", path, err)
	}
	return fh.Close()
}

// ReadShard implements Codec.
func (ColumnarCodec[T]) ReadShard(path string) (*ShardFile[T], error) {
	return readRecShard[T](path)
}

// readColumnarShard turns decoded columns back into a validated
// ShardFile of T records.
func readColumnarShard[T any](path string, hdr recio.Header, cols [][]uint64) (*ShardFile[T], error) {
	var z T
	if _, err := columnarOf(&z); err != nil {
		return nil, fmt.Errorf("%s:1: %w", path, err)
	}
	n := 0
	if len(cols) > 0 {
		n = len(cols[0])
	}
	f := shardFileOf[T](path, hdr, n)
	row := make([]uint64, len(cols))
	for i := 0; i < n; i++ {
		for j := range cols {
			row[j] = cols[j][i]
		}
		var v T
		cr, _ := columnarOf(&v)
		cr.SetColumnValues(row)
		f.Records = append(f.Records, v)
	}
	if err := f.validate(); err != nil {
		return nil, fmt.Errorf("%s:1: %w", path, err)
	}
	return f, nil
}

// ReadShardColumn reads one named column of a columnar shard file
// without inflating its sibling columns — the fast path for reducers
// that fold a single field. The returned values are in cell order;
// fields declared KindFloat arrive as float64 bits.
func ReadShardColumn(path, field string) ([]uint64, error) {
	return recio.ReadColumnFile(path, field)
}

// ReadShardCells reads the records covering absolute cells [lo, hi) of
// a row-layout recio shard file, seeking via the index trailer when the
// file carries one. It returns the raw record payloads plus the cell
// index of the first.
func ReadShardCells(path string, lo, hi int) ([][]byte, int, error) {
	_, payloads, first, err := recio.ReadCellsFile(path, lo, hi)
	return payloads, first, err
}
