package sweep

import (
	"fmt"
	"testing"

	"github.com/bgpsim/bgpsim/internal/core"
)

// BenchmarkMatrixShards measures in-process shard scaling on the shared
// test matrix: the same cell space solved as 1, 2, and 4 concurrent
// shards over a fixed worker pool. Shards add a bounded reorder window
// per slice, so the cost of the `-shard` path shows up directly against
// the unsharded baseline.
func BenchmarkMatrixShards(b *testing.B) {
	m, cells := testMatrix(b)
	extract := func(_, _ int, o *core.Outcome) int { return o.PollutedCount() }
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			sel := ShardSel{}
			if shards > 1 {
				sel = AllShards(shards)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				n := 0
				err := RunMatrixReduce(m, MatrixOptions{Workers: 4, Sel: sel}, extract,
					ReduceFunc[int]{EmitFn: func(int, int) { n++ }})
				if err != nil {
					b.Fatal(err)
				}
				if n != cells {
					b.Fatalf("%d records, want %d", n, cells)
				}
			}
		})
	}
}
