// Package sweep is the repository's shared deterministic parallel solve
// runtime. Every experiment layer — the hijack vulnerability sweeps, the
// deployment ladders, the detector evaluations, and the hole/sub-prefix/
// validation studies — maps some list of attacks through a core.Solver and
// aggregates per-attack measurements. This package owns that map exactly
// once: worker-pool setup, per-worker solver reuse, index-ordered result
// writes, first-error propagation with cancellation, and an optional
// progress callback.
//
// Determinism contract (DESIGN.md §5 "Sweep runtime", §7): a run's results
// are a pure function of its inputs, bit-identical at any worker count and
// any GOMAXPROCS. The kernel guarantees this by construction — observers
// receive each index exactly once and write into pre-sized, index-disjoint
// slots, so goroutine scheduling never orders anything observable. Callers
// keep their side of the contract by doing all order-sensitive aggregation
// (histograms, appends, map updates) in a serial pass over the index-ordered
// slices after Run returns.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/bgpsim/bgpsim/internal/core"
)

// Options tune one parallel run.
type Options struct {
	// Workers bounds solve parallelism; 0 means GOMAXPROCS.
	Workers int
	// Progress, when non-nil, is called once per completed item with the
	// running completion count and the total. Calls are serialized, but
	// arrive in completion order — not index order — so Progress must only
	// drive reporting, never results.
	Progress func(done, total int)
}

// workers resolves the effective worker count for n items.
func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Map runs fn(i) for every i in [0, n) across the configured workers.
// Indices are handed out dynamically for load balance; determinism is the
// caller's index-disjoint writes, not the schedule. On error the run
// cancels: in-flight items finish, unstarted items never run, and the
// lowest-indexed observed error is returned.
func Map(n int, opts Options, fn func(i int) error) error {
	return MapLocal(n, opts, func() struct{} { return struct{}{} },
		func(_ struct{}, i int) error { return fn(i) })
}

// MapLocal is Map with per-worker state: each worker calls local() once and
// threads the value through every fn it runs, so expensive reusable buffers
// (a core.Solver, scratch slices) are allocated once per worker instead of
// once per item.
//
//bgplint:hotpath the worker dispatch loop runs once per sweep cell
func MapLocal[W any](n int, opts Options, local func() W, fn func(w W, i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := opts.workers(n)
	if workers == 1 {
		w := local()
		for i := 0; i < n; i++ {
			if err := fn(w, i); err != nil {
				return err
			}
			if opts.Progress != nil {
				opts.Progress(i+1, n)
			}
		}
		return nil
	}

	var (
		next atomic.Int64 // next index to hand out
		done atomic.Int64 // completed items, for Progress
		stop atomic.Bool  // set on first error: cancel unstarted work

		mu       sync.Mutex // guards firstErr/errIdx and serializes Progress
		firstErr error
		errIdx   int
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := local()
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(st, i); err != nil {
					mu.Lock()
					// Keep the lowest-indexed error so the reported failure
					// does not depend on scheduling when one item fails.
					if firstErr == nil || i < errIdx {
						firstErr, errIdx = err, i
					}
					mu.Unlock()
					stop.Store(true)
					return
				}
				if opts.Progress != nil {
					d := int(done.Add(1))
					mu.Lock()
					opts.Progress(d, n)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// Job yields the idx-th attack of a run and the defense deployment it
// runs under (the zero Defense = no prevention deployed). Job is called
// from multiple workers and must be a pure read.
type Job func(idx int) (core.Attack, core.Defense)

// Observer consumes one solved outcome. The outcome is transient — it
// belongs to the worker's solver and is only valid for the duration of the
// call (Clone it to keep it). Observers run concurrently across indices;
// each must confine its writes to index-disjoint slots of pre-sized slices
// and leave order-sensitive aggregation to a serial pass after Run.
type Observer func(idx int, o *core.Outcome)

// Run solves n attacks in parallel and fans each converged outcome out to
// every observer before the solver's buffers are recycled — so one solve
// serves all consumers (pollution accounting, several probe sets, miss
// analysis, hole classification) instead of one solve per consumer.
func Run(pol *core.Policy, n int, job Job, opts Options, observers ...Observer) error {
	return MapLocal(n, opts,
		func() *core.Solver { return core.NewSolver(pol) },
		func(s *core.Solver, i int) error {
			at, def := job(i)
			o, err := s.SolveDefense(at, def)
			if err != nil {
				return fmt.Errorf("sweep attack %d (attacker %d → target %d): %w",
					i, at.Attacker, at.Target, err)
			}
			for _, ob := range observers {
				ob(i, o)
			}
			return nil
		})
}
