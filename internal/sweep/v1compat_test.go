package sweep

import (
	"encoding/json"
	"math"
	"path/filepath"
	"testing"

	"github.com/bgpsim/bgpsim/internal/recio"
)

// The checked-in v1 fixture (testdata/v1fix.0of3.rec) was written by
// the format-version-1 writer before the v2 refactor: row layout, no
// level field, no index trailer. Its workload: experiment "v1fix",
// 60 cells, 1 group, shard 0 of 3 covering cells [0,20), digest
// v1fixDigest, and record i holding {(i*7)%13, float64(i%5)/8}.
const (
	v1fixDigest = "1f1f1f1f000000000000000000000000000000000000000000000000f1f1f1f1"
	v1fixCells  = 60
	v1fixPer    = 20
)

// fixRecord mirrors hijack.Record's wire shape without importing it
// (hijack imports sweep). It also carries the columnar mapping so the
// fixture's sibling shards can ride every format.
type fixRecord struct {
	Pollution  int     `json:"pollution"`
	WeightFrac float64 `json:"weight_frac"`
}

func (fixRecord) ColumnFields() []recio.Field {
	return []recio.Field{
		{Name: "pollution", Kind: recio.KindDelta},
		{Name: "weight_frac", Kind: recio.KindFloat},
	}
}

func (r fixRecord) ColumnValues() []uint64 {
	return []uint64{uint64(r.Pollution), math.Float64bits(r.WeightFrac)}
}

func (r *fixRecord) SetColumnValues(vals []uint64) {
	r.Pollution = int(vals[0])
	r.WeightFrac = math.Float64frombits(vals[1])
}

func (r fixRecord) AppendJSON(dst []byte) ([]byte, error) {
	dst = append(dst, `{"pollution":`...)
	dst = AppendJSONInt(dst, r.Pollution)
	dst = append(dst, `,"weight_frac":`...)
	dst, err := AppendJSONFloat(dst, r.WeightFrac)
	if err != nil {
		return nil, err
	}
	return append(dst, '}'), nil
}

// v1fixRecord reproduces the rule the fixture generator used, for any
// absolute cell index.
func v1fixRecord(i int) fixRecord {
	return fixRecord{Pollution: (i * 7) % 13, WeightFrac: float64(i%5) / 8}
}

// v1fixShard builds the in-memory ShardFile for one of the fixture
// workload's three shards.
func v1fixShard(shard int) *ShardFile[fixRecord] {
	lo, hi := ShardRange(v1fixCells, shard, 3)
	f := &ShardFile[fixRecord]{
		Experiment: "v1fix", Cells: v1fixCells, Groups: 1,
		Shard: shard, Shards: 3, CellLo: lo, CellHi: hi,
		MatrixDigest: v1fixDigest,
	}
	for i := lo; i < hi; i++ {
		f.Records = append(f.Records, v1fixRecord(i))
	}
	return f
}

// TestV1FixtureReads: the version-2 reader must keep decoding the
// checked-in version-1 file — through the scan path, since v1 files
// carry no trailer — with full metadata and every record intact.
func TestV1FixtureReads(t *testing.T) {
	path := filepath.Join("testdata", "v1fix.0of3.rec")
	f, err := ReadShardAuto[fixRecord](path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Experiment != "v1fix" || f.Cells != v1fixCells || f.Groups != 1 ||
		f.Shard != 0 || f.Shards != 3 || f.CellLo != 0 || f.CellHi != v1fixPer ||
		f.MatrixDigest != v1fixDigest {
		t.Fatalf("v1 metadata did not survive: %+v", f)
	}
	if len(f.Records) != v1fixPer {
		t.Fatalf("%d records, want %d", len(f.Records), v1fixPer)
	}
	for i, r := range f.Records {
		if r != v1fixRecord(i) {
			t.Fatalf("record %d = %+v, want %+v", i, r, v1fixRecord(i))
		}
	}
	// The seek-recovery API must classify it as scan-recovered (no
	// trailer to seek) while still counting every record.
	rec, err := recio.RecoverStatsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rec.ViaIndex || rec.Records != v1fixPer || rec.Header.Format != 1 {
		t.Fatalf("v1 recovery: viaIndex=%v records=%d format=%d, want scan/%d/1",
			rec.ViaIndex, rec.Records, rec.Header.Format, v1fixPer)
	}
}

// TestMixedVersionMerge: one experiment's shards arriving as a v1 recio
// file, a json file, and a v2 columnar file must pass digest validation
// and merge into a record stream byte-identical to the expected one.
func TestMixedVersionMerge(t *testing.T) {
	dir := t.TempDir()
	fixture := filepath.Join("testdata", "v1fix.0of3.rec")

	// Shard 0: the checked-in v1 file, read in place alongside the dir's
	// shards (ReadShardFiles takes explicit paths).
	paths := []string{fixture}

	// Shard 1: json. Shard 2: columnar v2.
	s1 := v1fixShard(1)
	p1 := ShardPath(dir, "v1fix", 1, 3, "json")
	if err := (JSONCodec[fixRecord]{}).WriteShard(p1, s1); err != nil {
		t.Fatal(err)
	}
	s2 := v1fixShard(2)
	p2 := ShardPath(dir, "v1fix", 2, 3, "rec")
	if err := (ColumnarCodec[fixRecord]{}).WriteShard(p2, s2); err != nil {
		t.Fatal(err)
	}
	paths = append(paths, p1, p2)

	files, err := ReadShardFiles[fixRecord](paths)
	if err != nil {
		t.Fatal(err)
	}

	// Digest validation: the merge must refuse a rebuilt workload whose
	// digest disagrees with all three shards.
	sink := ReduceFunc[fixRecord]{EmitFn: func(int, fixRecord) {}}
	if err := MergeShards(files, "v1fix", "not-the-digest", sink); err == nil {
		t.Fatal("merge accepted a foreign workload digest across mixed-version shards")
	}

	// The merged stream must be byte-identical to the expected records,
	// whichever version or layout carried each shard.
	var got []byte
	err = MergeShards(files, "v1fix", v1fixDigest, ReduceFunc[fixRecord]{
		EmitFn: func(_ int, r fixRecord) {
			b, err := json.Marshal(r)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, b...)
			got = append(got, '\n')
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	for i := 0; i < v1fixCells; i++ {
		b, err := json.Marshal(v1fixRecord(i))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, b...)
		want = append(want, '\n')
	}
	if string(got) != string(want) {
		t.Fatalf("merged stream diverges from expected records:\ngot %d bytes\nwant %d bytes", len(got), len(want))
	}
}

// TestColumnarCodecRejectsUncolumnarType: record types carrying
// variable-width fields have no column mapping; selecting recio-col for
// them must fail at codec selection with a clear diagnosis.
func TestColumnarCodecRejectsUncolumnarType(t *testing.T) {
	type triggers struct {
		Hits []int `json:"hits"`
	}
	if _, err := CodecFor[triggers](FormatRecioCol, 0); err == nil {
		t.Fatal("recio-col accepted a record type with no columnar mapping")
	}
	if _, err := CodecFor[fixRecord](FormatRecioCol, 0); err != nil {
		t.Fatalf("recio-col rejected a columnar record type: %v", err)
	}
}
