package sweep

import (
	"bytes"
	"testing"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/core"
)

// mixedScenarioMatrix builds a matrix whose cells span every attack kind
// and rotate through heterogeneous defenses — undefended, a blocked set,
// an ASPA authorization set, and ROV+Peerlock — so shard and digest
// plumbing is exercised with scenario-extended cells, not just the legacy
// exact-origin/blocked-set shape.
func mixedScenarioMatrix(t testing.TB) (Matrix, int) {
	t.Helper()
	pol, g := testPolicy(t, 300)
	n := g.N() - 1
	kinds := core.Kinds()
	blocked := asn.NewIndexSet(g.N())
	aspa := asn.NewIndexSet(g.N())
	for i := 0; i < g.N(); i += 5 {
		blocked.Add(i)
	}
	for i := 0; i < g.N(); i += 3 {
		aspa.Add(i)
	}
	defs := []core.Defense{
		{},
		core.RovOnly(blocked),
		core.MechASPA.Deploy(aspa),
		(core.MechROV | core.MechPeerlock).Deploy(blocked),
	}
	m := Matrix{
		Groups: len(kinds),
		Size:   func(int) int { return n },
		Policy: func(int) *core.Policy { return pol },
		Job: func(gi, k int) (core.Attack, core.Defense) {
			at := core.Attack{Target: 0, Attacker: k + 1, Kind: kinds[gi]}
			// Sub-prefix variants on some cells; leaks don't sub-prefix.
			at.SubPrefix = kinds[gi] != core.KindRouteLeak && k%4 == 1
			return at, defs[(gi+k)%len(defs)]
		},
	}
	return m, m.Cells()
}

// TestMixedScenarioShardMergeEquivalence: a matrix mixing all attack
// kinds and defense mechanisms, sharded three ways with the shards
// completing in shuffled order and round-tripped through the on-disk
// encoding, must merge to the unsharded run's digest.
func TestMixedScenarioShardMergeEquivalence(t *testing.T) {
	m, cells := mixedScenarioMatrix(t)
	extract := func(_, _ int, o *core.Outcome) int { return o.PollutedCount() }

	want := make([]int, 0, cells)
	if err := RunMatrixReduce(m, MatrixOptions{Workers: 4}, extract, ReduceFunc[int]{
		EmitFn: func(_ int, v int) { want = append(want, v) },
	}); err != nil {
		t.Fatal(err)
	}

	const shards = 3
	files := make([]*ShardFile[int], 0, shards)
	for _, s := range []int{2, 0, 1} {
		f, err := RunShard(m, MatrixOptions{Workers: 2, Sel: OneShard(s, shards)}, "scenario-mix", extract)
		if err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
		var buf bytes.Buffer
		if err := WriteShardFile(&buf, f); err != nil {
			t.Fatalf("shard %d: write: %v", s, err)
		}
		rt, err := ReadShardFile[int](&buf)
		if err != nil {
			t.Fatalf("shard %d: read: %v", s, err)
		}
		files = append(files, rt)
	}

	got := make([]int, 0, cells)
	if err := MergeShards(files, "scenario-mix", MatrixDigest(m), ReduceFunc[int]{
		EmitFn: func(_ int, v int) { got = append(got, v) },
	}); err != nil {
		t.Fatal(err)
	}
	if runDigest(got) != runDigest(want) {
		t.Fatal("merged mixed-scenario shard stream diverges from unsharded run")
	}
}

// TestMatrixDigestScenarioAxis: the workload digest must cover the
// scenario axis — flipping one cell's attack kind, toggling Peerlock, or
// changing the ASPA authorization set all move the digest, so a merge of
// shards solved under different scenarios is rejected.
func TestMatrixDigestScenarioAxis(t *testing.T) {
	m, _ := mixedScenarioMatrix(t)
	ref := MatrixDigest(m)
	base := m.Job

	kindFlipped := m
	kindFlipped.Job = func(gi, k int) (core.Attack, core.Defense) {
		at, def := base(gi, k)
		if gi == 0 && k == 0 {
			at.Kind = core.KindForgedOrigin
		}
		return at, def
	}
	if MatrixDigest(kindFlipped) == ref {
		t.Error("different attack kind, same digest")
	}

	peerlockFlipped := m
	peerlockFlipped.Job = func(gi, k int) (core.Attack, core.Defense) {
		at, def := base(gi, k)
		if gi == 0 && k == 0 {
			def.Peerlock = !def.Peerlock
		}
		return at, def
	}
	if MatrixDigest(peerlockFlipped) == ref {
		t.Error("different Peerlock deployment, same digest")
	}

	otherASPA := asn.NewIndexSet(m.Policy(0).N())
	otherASPA.Add(1)
	aspaSwapped := m
	aspaSwapped.Job = func(gi, k int) (core.Attack, core.Defense) {
		at, def := base(gi, k)
		if def.ASPA != nil {
			def.ASPA = otherASPA
		}
		return at, def
	}
	if MatrixDigest(aspaSwapped) == ref {
		t.Error("different ASPA set, same digest")
	}
}
