package sweep

import (
	"encoding/json"
	"math"
	"testing"
)

// floatTortureValues covers every branch of encoding/json's float64
// encoder: zero and signed zero, fixed-notation interior values, both
// boundaries of the [1e-6, 1e21) fixed-notation window, scientific
// notation with one- and two-digit exponents (the leading-zero rewrite),
// extreme magnitudes, and shortest-round-trip decimals.
var floatTortureValues = []float64{
	0, math.Copysign(0, -1), 1, -1, 0.5, -0.5, 1.0 / 3.0, 0.1, 2.0 / 3.0,
	1e-6, 9.999999999999999e-7, -9.999999999999999e-7, 1e-7, 1e-21,
	1e21, 999999999999999934463.9, 1e22, -1e22, 1.5e300, -2.5e-300,
	math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64,
	-math.SmallestNonzeroFloat64, 0.6372549019607843, 42.0, 1234567.891,
	float64(1<<53) + 1, -0.000123456789,
}

// TestAppendJSONFloatMatchesMarshal pins the hand-rolled float encoder
// to encoding/json byte for byte — the contract every JSONAppender in
// the tree builds on.
func TestAppendJSONFloatMatchesMarshal(t *testing.T) {
	vals := append([]float64{}, floatTortureValues...)
	for i := 0; i < 3000; i++ {
		vals = append(vals, float64(i%997)/997, float64(i)*1.7e-9, float64(i*i)*3.14159e12)
	}
	for _, f := range vals {
		want, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		got, err := AppendJSONFloat(nil, f)
		if err != nil {
			t.Fatalf("AppendJSONFloat(%v): %v", f, err)
		}
		if string(got) != string(want) {
			t.Fatalf("AppendJSONFloat(%v) = %q, json.Marshal = %q", f, got, want)
		}
	}
	// Non-finite values must fail exactly where json.Marshal fails.
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := AppendJSONFloat(nil, f); err == nil {
			t.Fatalf("AppendJSONFloat(%v) accepted a non-finite value", f)
		}
	}
}

// TestAppendRecordJSONMatchesMarshal pins the whole-record fast path
// (benchRecord implements JSONAppender) and the reflection fallback
// (a type that does not) against json.Marshal.
func TestAppendRecordJSONMatchesMarshal(t *testing.T) {
	for i := -3; i < 4000; i++ {
		r := benchRecord{Pollution: i * 31, WeightFrac: float64(i%997) / 997}
		want, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		got, err := appendRecordJSON([]byte("prefix"), r)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != "prefix"+string(want) {
			t.Fatalf("fast path diverged for %+v:\n got %q\nwant prefix+%q", r, got, want)
		}
	}
	for _, f := range floatTortureValues {
		r := benchRecord{Pollution: -7, WeightFrac: f}
		want, _ := json.Marshal(r)
		got, err := appendRecordJSON(nil, r)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("fast path diverged at %v: got %q want %q", f, got, want)
		}
	}

	// The fallback: a plain struct without AppendJSON goes through
	// encoding/json.
	type plain struct {
		A string `json:"a"`
		B int    `json:"b"`
	}
	want, _ := json.Marshal(plain{A: "x", B: 9})
	got, err := appendRecordJSON(nil, plain{A: "x", B: 9})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("fallback diverged: got %q want %q", got, want)
	}

	// A non-finite float errors on the fast path just as json.Marshal
	// would.
	if _, err := appendRecordJSON(nil, benchRecord{WeightFrac: math.NaN()}); err == nil {
		t.Fatal("fast path accepted NaN")
	}
}
