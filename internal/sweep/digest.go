// Workload identity: MatrixDigest hashes the exact cell space a matrix
// describes — every attack (scenario kind included), every deployed
// defense (ROV blocked set, ASPA validator set, Peerlock), the policy's
// routing graph — into one SHA-256 value. Two processes that rebuild the same
// workload from the same flags (world scale, seeds, defaults) compute
// the same digest, and any divergence (different topology seed, a
// changed sample size, -no-tier1-spf toggled) changes it. Shard files
// embed the digest at write time; resume and merge validate it against
// the freshly rebuilt workload, so records can never be silently
// replayed into the wrong experiment.
package sweep

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/core"
)

// MatrixDigest returns the hex SHA-256 identity of the matrix's cell
// workload. Cost is one Job/Policy callback pass over the cell space
// plus one adjacency walk per distinct policy — cheap next to solving
// (no BFS runs), so shard and merge invocations recompute it freely.
func MatrixDigest(m Matrix) string {
	h := sha256.New()
	buf := make([]byte, binary.MaxVarintLen64)
	put := func(v int64) {
		n := binary.PutVarint(buf, v)
		h.Write(buf[:n])
	}
	put(int64(m.Groups))
	// Policies and deployment sets repeat across cells; fingerprint each
	// distinct pointer once and feed the cached value per use. Pointers
	// never enter the hash — only content does — so the digest is
	// stable across processes and machines.
	polFP := make(map[*core.Policy][sha256.Size]byte, 2)
	setFP := make(map[*asn.IndexSet][sha256.Size]byte, 2)
	setFingerprint := func(s *asn.IndexSet) [sha256.Size]byte {
		fp, ok := setFP[s]
		if !ok {
			fp = blockedFingerprint(s)
			setFP[s] = fp
		}
		return fp
	}
	for g := 0; g < m.Groups; g++ {
		size := m.Size(g)
		put(int64(size))
		pol := m.Policy(g)
		fp, ok := polFP[pol]
		if !ok {
			fp = policyFingerprint(pol)
			polFP[pol] = fp
		}
		h.Write(fp[:])
		for k := 0; k < size; k++ {
			at, def := m.Job(g, k)
			// The original cell encoding covered (target, attacker,
			// sub-prefix, blocked set). Scenario cells — a non-origin
			// attack kind or a defense beyond the blocked set — prefix
			// an extension block flagged by a -1 sentinel, which a
			// legacy cell can never produce (targets are indices ≥ 0).
			// Exact-origin blocked-only workloads therefore hash exactly
			// as they did before the scenario layer existed.
			if at.Kind != core.KindOrigin || def.ASPA != nil || def.Peerlock {
				put(-1)
				put(int64(at.Kind))
				if def.Peerlock {
					put(1)
				} else {
					put(0)
				}
				afp := setFingerprint(def.ASPA)
				h.Write(afp[:])
			}
			put(int64(at.Target))
			put(int64(at.Attacker))
			if at.SubPrefix {
				put(1)
			} else {
				put(0)
			}
			bfp := setFingerprint(def.Blocked)
			h.Write(bfp[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// policyFingerprint hashes the routing substrate a policy solves over:
// node count, tier-1 flags and SPF override, the per-relationship
// adjacency, and each node's ASN — everything that makes two "same
// scale" worlds genuinely the same world.
func policyFingerprint(pol *core.Policy) [sha256.Size]byte {
	h := sha256.New()
	buf := make([]byte, binary.MaxVarintLen64)
	put := func(v int64) {
		n := binary.PutVarint(buf, v)
		h.Write(buf[:n])
	}
	if pol == nil {
		return sha256.Sum256(nil)
	}
	n := pol.N()
	put(int64(n))
	if pol.Tier1ShortestPath() {
		put(1)
	} else {
		put(0)
	}
	if pol.PreferHighNextHop() {
		put(1)
	} else {
		put(0)
	}
	g := pol.Graph()
	for i := 0; i < n; i++ {
		put(int64(g.ASN(i).Uint32()))
		if pol.IsTier1(i) {
			put(1)
		} else {
			put(0)
		}
		putAdj(h, put, pol.Providers(i))
		putAdj(h, put, pol.Customers(i))
		putAdj(h, put, pol.Peers(i))
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

func putAdj(h hash.Hash, put func(int64), adj []int32) {
	put(int64(len(adj)))
	for _, v := range adj {
		put(int64(v))
	}
}

// blockedFingerprint hashes an origin-validation deployment set by
// content (member indices), with a distinct value for "no deployment".
func blockedFingerprint(s *asn.IndexSet) [sha256.Size]byte {
	if s == nil {
		return sha256.Sum256(nil)
	}
	h := sha256.New()
	buf := make([]byte, binary.MaxVarintLen64)
	n := binary.PutVarint(buf, int64(s.Len()))
	h.Write(buf[:n])
	for _, i := range s.Members(nil) {
		n := binary.PutVarint(buf, int64(i))
		h.Write(buf[:n])
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}
