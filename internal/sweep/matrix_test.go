package sweep

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/topology"
)

// testMatrix builds a ≥2-policy × ≥100-attack workload on the shared test
// topology: the default policy and a perturbed-tie-break policy each solve
// every attacker against a fixed target.
func testMatrix(t testing.TB) (Matrix, int) {
	t.Helper()
	pol, g := testPolicy(t, 300)
	polHigh, err := core.NewPolicy(g, tier1Of(t, g), core.WithPreferHighNextHop(true))
	if err != nil {
		t.Fatal(err)
	}
	pols := []*core.Policy{pol, polHigh}
	n := g.N() - 1
	if n < 100 {
		t.Fatalf("test topology too small: %d attacks per policy", n)
	}
	m := Matrix{
		Groups: len(pols),
		Size:   func(int) int { return n },
		Policy: func(g int) *core.Policy { return pols[g] },
		Job: func(_, k int) (core.Attack, core.Defense) {
			return core.Attack{Target: 0, Attacker: k + 1}, core.Defense{}
		},
	}
	return m, m.Cells()
}

// tier1Of re-derives the tier-1 clique for a generated test graph.
func tier1Of(t testing.TB, g *topology.Graph) []int {
	t.Helper()
	c := topology.Classify(g, topology.ClassifyOptions{})
	return c.Tier1
}

// TestMatrixDigestInvariance is the acceptance criterion: a ≥2-policy ×
// ≥100-attack matrix produces byte-identical digests at workers ∈ {1, 8}
// × shards ∈ {1, 3}, streamed or collected.
func TestMatrixDigestInvariance(t *testing.T) {
	m, cells := testMatrix(t)
	extract := func(_, _ int, o *core.Outcome) int { return o.PollutedCount() }

	var ref [sha256.Size]byte
	first := true
	for _, workers := range []int{1, 8} {
		for _, shards := range []int{1, 3} {
			sel := ShardSel{}
			if shards > 1 {
				sel = AllShards(shards)
			}
			got := make([]int, 0, cells)
			lastIdx := -1
			err := RunMatrixReduce(m, MatrixOptions{Workers: workers, Sel: sel}, extract,
				ReduceFunc[int]{EmitFn: func(idx int, v int) {
					if idx != lastIdx+1 {
						t.Fatalf("workers=%d shards=%d: Emit(%d) after %d, want in-order", workers, shards, idx, lastIdx)
					}
					lastIdx = idx
					got = append(got, v)
				}})
			if err != nil {
				t.Fatalf("workers=%d shards=%d: %v", workers, shards, err)
			}
			if len(got) != cells {
				t.Fatalf("workers=%d shards=%d: %d records, want %d", workers, shards, len(got), cells)
			}
			d := runDigest(got)
			if first {
				ref, first = d, false
				continue
			}
			if d != ref {
				t.Errorf("workers=%d shards=%d: digest %x diverges from reference %x", workers, shards, d[:8], ref[:8])
			}
		}
	}
}

// TestMatrixShardMergeShuffled runs each shard as its own partial run —
// completing in shuffled order — and checks the merged stream matches the
// unsharded run bit-for-bit through a JSON round-trip.
func TestMatrixShardMergeShuffled(t *testing.T) {
	m, cells := testMatrix(t)
	extract := func(_, _ int, o *core.Outcome) int { return o.PollutedCount() }

	want := make([]int, 0, cells)
	if err := RunMatrixReduce(m, MatrixOptions{Workers: 4}, extract, ReduceFunc[int]{
		EmitFn: func(_ int, v int) { want = append(want, v) },
	}); err != nil {
		t.Fatal(err)
	}

	const shards = 3
	files := make([]*ShardFile[int], 0, shards)
	// Run shards out of order — 2, 0, 1 — to model independent processes
	// finishing whenever they finish.
	for _, s := range []int{2, 0, 1} {
		f, err := RunShard(m, MatrixOptions{Workers: 2, Sel: OneShard(s, shards)}, "matrix-test", extract)
		if err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
		// Round-trip through the on-disk encoding.
		var buf bytes.Buffer
		if err := WriteShardFile(&buf, f); err != nil {
			t.Fatalf("shard %d: write: %v", s, err)
		}
		rt, err := ReadShardFile[int](&buf)
		if err != nil {
			t.Fatalf("shard %d: read: %v", s, err)
		}
		files = append(files, rt)
	}

	got := make([]int, 0, cells)
	if err := MergeShards(files, "matrix-test", MatrixDigest(m), ReduceFunc[int]{
		EmitFn: func(_ int, v int) { got = append(got, v) },
	}); err != nil {
		t.Fatal(err)
	}
	if runDigest(got) != runDigest(want) {
		t.Fatal("merged shard stream diverges from unsharded run")
	}
}

// TestMergeShardsValidation checks the tiling guards: wrong experiment,
// overlap, gap, and missing tail are all rejected.
func TestMergeShardsValidation(t *testing.T) {
	mk := func(lo, hi int) *ShardFile[int] {
		recs := make([]int, hi-lo)
		return &ShardFile[int]{Experiment: "e", Cells: 10, Groups: 1, Shards: 2, CellLo: lo, CellHi: hi, Records: recs}
	}
	sink := ReduceFunc[int]{EmitFn: func(int, int) {}}

	cases := []struct {
		name  string
		files []*ShardFile[int]
		exp   string
		want  string
	}{
		{"wrong experiment", []*ShardFile[int]{mk(0, 5), mk(5, 10)}, "other", "experiment"},
		{"overlap", []*ShardFile[int]{mk(0, 6), mk(5, 10)}, "e", "overlap"},
		{"gap", []*ShardFile[int]{mk(0, 4), mk(5, 10)}, "e", "missing cells"},
		{"missing tail", []*ShardFile[int]{mk(0, 5)}, "e", "missing cells"},
		{"none", nil, "e", "no shard files"},
	}
	for _, tc := range cases {
		err := MergeShards(tc.files, tc.exp, "", sink)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}

	ok := []*ShardFile[int]{mk(5, 10), mk(0, 5)} // shuffled but valid
	if err := MergeShards(ok, "e", "", sink); err != nil {
		t.Errorf("shuffled valid tiling rejected: %v", err)
	}
}

// TestRunReduceMatchesRun pins the streaming single-policy path against
// the observer path on the same workload.
func TestRunReduceMatchesRun(t *testing.T) {
	pol, g := testPolicy(t, 300)
	n := g.N() - 1
	job := func(i int) (core.Attack, core.Defense) {
		return core.Attack{Target: 0, Attacker: i + 1}, core.Defense{}
	}

	buffered := make([]int, n)
	if err := Run(pol, n, job, Options{Workers: 4}, func(i int, o *core.Outcome) {
		buffered[i] = o.PollutedCount()
	}); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4} {
		streamed := make([]int, 0, n)
		err := RunReduce(pol, n, job, Options{Workers: workers},
			func(_ int, o *core.Outcome) int { return o.PollutedCount() },
			ReduceFunc[int]{EmitFn: func(_ int, v int) { streamed = append(streamed, v) }})
		if err != nil {
			t.Fatal(err)
		}
		if runDigest(streamed) != runDigest(buffered) {
			t.Errorf("workers=%d: streamed digest diverges from buffered reference", workers)
		}
	}
}

// TestMatrixSolveErrorPropagates checks a failing cell cancels the run
// and reports the failure without deadlocking blocked window Puts.
func TestMatrixSolveErrorPropagates(t *testing.T) {
	pol, g := testPolicy(t, 200)
	n := g.N()
	m := Matrix{
		Groups: 2,
		Size:   func(int) int { return n },
		Policy: func(int) *core.Policy { return pol },
		Job: func(_, k int) (core.Attack, core.Defense) {
			a := k
			if k == 7 {
				a = 0 // target==attacker: rejected by the solver
			}
			return core.Attack{Target: 0, Attacker: a}, core.Defense{}
		},
	}
	done := make(chan error, 1)
	go func() {
		done <- RunMatrixReduce(m, MatrixOptions{Workers: 4, Window: 2}, // tiny window: force blocking
			func(_, _ int, o *core.Outcome) int { return o.PollutedCount() },
			ReduceFunc[int]{EmitFn: func(int, int) {}})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected solve error")
		}
		if !strings.Contains(err.Error(), "matrix cell") {
			t.Errorf("error %q lacks cell context", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("matrix error path deadlocked")
	}
}

// TestWindowInOrderBounded drives a window from concurrent producers and
// checks delivery order, exactly-once coverage, and the capacity bound.
func TestWindowInOrderBounded(t *testing.T) {
	const n, capacity = 1000, 8
	got := make([]int, 0, n)
	last := -1
	win := NewWindow(0, n, capacity, func(idx, v int) {
		if idx != last+1 || v != idx*3 {
			t.Errorf("delivered (%d,%d) after head %d", idx, v, last)
		}
		last = idx
		got = append(got, v)
	})
	var next int64
	var mu sync.Mutex
	take := func() int {
		mu.Lock()
		defer mu.Unlock()
		i := int(next)
		next++
		return i
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := take()
				if i >= n {
					return
				}
				win.Put(i, i*3)
			}
		}()
	}
	wg.Wait()
	if len(got) != n {
		t.Fatalf("delivered %d of %d", len(got), n)
	}
	if p := win.Peak(); p > capacity {
		t.Errorf("window buffered %d items, capacity %d", p, capacity)
	}
}

// TestWindowPutBlocksUntilHead checks a Put past the head+capacity bound
// blocks, then completes once the head arrives; Abort releases blocked
// Puts too.
func TestWindowPutBlocksUntilHead(t *testing.T) {
	win := NewWindow(0, 4, 2, func(int, int) {})
	released := make(chan struct{})
	go func() {
		win.Put(2, 0) // head=0, capacity 2 → must wait for index 0
		close(released)
	}()
	select {
	case <-released:
		t.Fatal("Put(2) completed with head at 0 and capacity 2")
	case <-time.After(50 * time.Millisecond):
	}
	win.Put(0, 0) // head advances to 1; slot frees
	select {
	case <-released:
	case <-time.After(5 * time.Second):
		t.Fatal("Put(2) still blocked after head advanced")
	}

	win2 := NewWindow(0, 4, 1, func(int, int) {})
	released2 := make(chan struct{})
	go func() {
		win2.Put(3, 0)
		close(released2)
	}()
	time.Sleep(20 * time.Millisecond)
	win2.Abort()
	select {
	case <-released2:
	case <-time.After(5 * time.Second):
		t.Fatal("Abort did not release blocked Put")
	}
}

// TestGroupsReducer checks per-group flushing, buffer reuse, and
// zero-size group handling.
func TestGroupsReducer(t *testing.T) {
	sizes := []int{0, 3, 0, 2, 0}
	type flushed struct {
		g    int
		vals []int
	}
	var flushes []flushed
	finished := false
	r := Groups[int](sizes, func(g int, vals []int) {
		cp := append([]int(nil), vals...)
		flushes = append(flushes, flushed{g, cp})
	}, func() { finished = true })
	for i, v := range []int{10, 11, 12, 20, 21} {
		r.Emit(i, v)
	}
	r.Finish()
	if !finished {
		t.Error("finish hook did not run")
	}
	want := []flushed{
		{0, []int{}}, {1, []int{10, 11, 12}}, {2, []int{}}, {3, []int{20, 21}}, {4, []int{}},
	}
	if len(flushes) != len(want) {
		t.Fatalf("%d flushes, want %d: %+v", len(flushes), len(want), flushes)
	}
	for i, f := range flushes {
		if f.g != want[i].g || len(f.vals) != len(want[i].vals) {
			t.Fatalf("flush %d = %+v, want %+v", i, f, want[i])
		}
		for j := range f.vals {
			if f.vals[j] != want[i].vals[j] {
				t.Fatalf("flush %d = %+v, want %+v", i, f, want[i])
			}
		}
	}
}

// TestMapReduce checks the non-solver streaming path: in-order delivery
// and error propagation through a tiny window without deadlock.
func TestMapReduce(t *testing.T) {
	n := 500
	sum := 0
	err := MapReduce(n, Options{Workers: 4},
		func(i int) (int, error) { return i, nil },
		ReduceFunc[int]{EmitFn: func(idx, v int) {
			if idx != v {
				t.Fatalf("Emit(%d, %d)", idx, v)
			}
			sum += v
		}})
	if err != nil {
		t.Fatal(err)
	}
	if want := n * (n - 1) / 2; sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}

	wantErr := errors.New("boom")
	done := make(chan error, 1)
	go func() {
		done <- MapReduce(10000, Options{Workers: 8},
			func(i int) (int, error) {
				if i == 37 {
					return 0, wantErr
				}
				return i, nil
			},
			ReduceFunc[int]{EmitFn: func(int, int) {}})
	}()
	select {
	case err := <-done:
		if !errors.Is(err, wantErr) {
			t.Fatalf("err = %v, want %v", err, wantErr)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("MapReduce error path deadlocked")
	}
}

// TestParseShardSel covers the CLI selector grammar.
func TestParseShardSel(t *testing.T) {
	if s, err := ParseShardSel(""); err != nil || s.Shards != 0 {
		t.Errorf("empty selector: %+v, %v", s, err)
	}
	if s, err := ParseShardSel("2/5"); err != nil || s.Shard != 2 || s.Shards != 5 {
		t.Errorf("2/5: %+v, %v", s, err)
	}
	for _, bad := range []string{"2", "a/b", "-1/4", "4/4", "1/0", "1/-2"} {
		if _, err := ParseShardSel(bad); err == nil {
			t.Errorf("ParseShardSel(%q) accepted", bad)
		}
	}
	if got := OneShard(2, 5).String(); got != "2/5" {
		t.Errorf("String() = %q", got)
	}
}

// TestShardRangeTiles checks the ranges tile exactly for awkward splits.
func TestShardRangeTiles(t *testing.T) {
	for _, tc := range []struct{ n, shards int }{{10, 3}, {7, 7}, {5, 8}, {0, 3}, {1000, 1}} {
		want := 0
		for s := 0; s < tc.shards; s++ {
			lo, hi := ShardRange(tc.n, s, tc.shards)
			if lo != want || hi < lo {
				t.Fatalf("n=%d shards=%d: shard %d = [%d,%d), want lo %d", tc.n, tc.shards, s, lo, hi, want)
			}
			want = hi
		}
		if want != tc.n {
			t.Fatalf("n=%d shards=%d: ranges end at %d", tc.n, tc.shards, want)
		}
	}
}
