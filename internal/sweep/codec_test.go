package sweep

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/bgpsim/bgpsim/internal/asn"
	"github.com/bgpsim/bgpsim/internal/core"
)

// TestMatrixDigestIdentity: the digest is deterministic for one
// workload and moves when the workload does — a different attack set, a
// different blocked set, or a different policy all change it.
func TestMatrixDigestIdentity(t *testing.T) {
	m, _ := testMatrix(t)
	d1, d2 := MatrixDigest(m), MatrixDigest(m)
	if d1 != d2 || len(d1) != 64 {
		t.Fatalf("digest not deterministic: %q vs %q", d1, d2)
	}

	shifted := m
	shifted.Job = func(_, k int) (core.Attack, core.Defense) {
		return core.Attack{Target: 1, Attacker: k + 1}, core.Defense{}
	}
	if MatrixDigest(shifted) == d1 {
		t.Error("different attacks, same digest")
	}

	sub := m
	sub.Job = func(_, k int) (core.Attack, core.Defense) {
		return core.Attack{Target: 0, Attacker: k + 1, SubPrefix: true}, core.Defense{}
	}
	if MatrixDigest(sub) == d1 {
		t.Error("sub-prefix attacks, same digest")
	}

	blocked := asn.NewIndexSet(m.Policy(0).N())
	blocked.Add(2)
	defended := m
	defended.Job = func(_, k int) (core.Attack, core.Defense) {
		return core.Attack{Target: 0, Attacker: k + 1}, core.RovOnly(blocked)
	}
	if MatrixDigest(defended) == d1 {
		t.Error("different blocked set, same digest")
	}

	swapped := m
	swapped.Policy = func(int) *core.Policy { return m.Policy(0) }
	if MatrixDigest(swapped) == d1 {
		t.Error("different policy assignment, same digest")
	}
}

// TestCodecRoundTrip: both codecs reproduce a solved shard exactly —
// metadata, digest and every record — and ReadShardAuto dispatches to
// the right one by extension.
func TestCodecRoundTrip(t *testing.T) {
	m, _ := testMatrix(t)
	extract := func(_, _ int, o *core.Outcome) int { return o.PollutedCount() }
	sf, err := RunShard(m, MatrixOptions{Workers: 4, Sel: OneShard(1, 3)}, "codec-test", extract)
	if err != nil {
		t.Fatal(err)
	}
	if sf.MatrixDigest == "" {
		t.Fatal("RunShard left MatrixDigest empty")
	}
	dir := t.TempDir()
	for _, name := range []string{FormatJSON, FormatRecio} {
		codec, err := CodecByName[int](name)
		if err != nil {
			t.Fatal(err)
		}
		path := ShardPath(dir, "codec-test", 1, 3, codec.Ext())
		if err := codec.WriteShard(path, sf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rt, err := ReadShardAuto[int](path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rt.Experiment != sf.Experiment || rt.Cells != sf.Cells || rt.Groups != sf.Groups ||
			rt.Shard != sf.Shard || rt.Shards != sf.Shards ||
			rt.CellLo != sf.CellLo || rt.CellHi != sf.CellHi || rt.MatrixDigest != sf.MatrixDigest {
			t.Fatalf("%s: metadata did not round-trip: %+v", name, rt)
		}
		if rt.Path != path || rt.Line < 1 {
			t.Fatalf("%s: reader left location unset: %q:%d", name, rt.Path, rt.Line)
		}
		if len(rt.Records) != len(sf.Records) {
			t.Fatalf("%s: %d records, want %d", name, len(rt.Records), len(sf.Records))
		}
		for i := range rt.Records {
			if rt.Records[i] != sf.Records[i] {
				t.Fatalf("%s: record %d = %d, want %d", name, i, rt.Records[i], sf.Records[i])
			}
		}
	}
}

// TestPersistShardBothFormats: PersistShard's files — json and recio —
// merge back into exactly the unsharded stream, across a multi-shard
// split.
func TestPersistShardBothFormats(t *testing.T) {
	m, cells := testMatrix(t)
	extract := func(_, _ int, o *core.Outcome) int { return o.PollutedCount() }

	want := make([]int, 0, cells)
	if err := RunMatrixReduce(m, MatrixOptions{Workers: 4}, extract, ReduceFunc[int]{
		EmitFn: func(_ int, v int) { want = append(want, v) },
	}); err != nil {
		t.Fatal(err)
	}

	const shards = 3
	for _, format := range []string{FormatJSON, FormatRecio} {
		dir := t.TempDir()
		for _, s := range []int{2, 0, 1} {
			rep, err := PersistShard(m, MatrixOptions{Workers: 2, Sel: OneShard(s, shards)},
				"persist-test", extract, ShardStore{Dir: dir, Format: format, CheckpointEvery: 16})
			if err != nil {
				t.Fatalf("%s shard %d: %v", format, s, err)
			}
			lo, hi := ShardRange(cells, s, shards)
			if rep.Solved != hi-lo || rep.Resumed != 0 {
				t.Fatalf("%s shard %d: report %+v, want %d solved", format, s, rep, hi-lo)
			}
		}
		files, err := ReadShardDir[int](dir, "persist-test")
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		got := make([]int, 0, cells)
		if err := MergeShards(files, "persist-test", MatrixDigest(m), ReduceFunc[int]{
			EmitFn: func(_ int, v int) { got = append(got, v) },
		}); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if runDigest(got) != runDigest(want) {
			t.Fatalf("%s: merged stream diverges from unsharded run", format)
		}
	}
}

// TestPersistShardResume is the crash/recovery acceptance test: a recio
// shard run killed mid-run (simulated by truncating the file inside a
// segment) and restarted with Resume picks up from its last checkpoint
// and produces a shard whose merged output is byte-identical to an
// uninterrupted run.
func TestPersistShardResume(t *testing.T) {
	m, cells := testMatrix(t)
	extract := func(_, _ int, o *core.Outcome) int { return o.PollutedCount() }
	dir := t.TempDir()
	store := ShardStore{Dir: dir, Format: FormatRecio, CheckpointEvery: 16}

	// Uninterrupted reference shard.
	rep, err := PersistShard(m, MatrixOptions{Workers: 4, Sel: OneShard(0, 2)}, "resume-test", extract, store)
	if err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(rep.Path)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ReadShardAuto[int](rep.Path)
	if err != nil {
		t.Fatal(err)
	}

	// Kill: keep only 60% of the bytes, slicing through a segment.
	if err := os.WriteFile(rep.Path, full[:len(full)*6/10], 0o644); err != nil {
		t.Fatal(err)
	}
	store.Resume = true
	rep2, err := PersistShard(m, MatrixOptions{Workers: 4, Sel: OneShard(0, 2)}, "resume-test", extract, store)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Resumed == 0 || rep2.Solved == 0 {
		t.Fatalf("resume did neither recover nor solve: %+v", rep2)
	}
	if rep2.Resumed+rep2.Solved != ref.CellHi-ref.CellLo {
		t.Fatalf("resumed %d + solved %d != %d cells", rep2.Resumed, rep2.Solved, ref.CellHi-ref.CellLo)
	}
	got, err := ReadShardAuto[int](rep2.Path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(ref.Records) {
		t.Fatalf("resumed shard has %d records, want %d", len(got.Records), len(ref.Records))
	}
	for i := range got.Records {
		if got.Records[i] != ref.Records[i] {
			t.Fatalf("record %d = %d, want %d", i, got.Records[i], ref.Records[i])
		}
	}

	// Resuming a complete shard is a no-op that re-reports the records.
	rep3, err := PersistShard(m, MatrixOptions{Workers: 4, Sel: OneShard(0, 2)}, "resume-test", extract, store)
	if err != nil {
		t.Fatal(err)
	}
	if rep3.Solved != 0 || rep3.Resumed != ref.CellHi-ref.CellLo {
		t.Fatalf("complete shard re-solved: %+v", rep3)
	}
	_ = cells
}

// TestPersistShardResumeWrongWorkload: a shard file from a different
// workload must refuse to resume, naming the digest mismatch.
func TestPersistShardResumeWrongWorkload(t *testing.T) {
	m, _ := testMatrix(t)
	extract := func(_, _ int, o *core.Outcome) int { return o.PollutedCount() }
	dir := t.TempDir()
	store := ShardStore{Dir: dir, Format: FormatRecio}
	if _, err := PersistShard(m, MatrixOptions{Workers: 2}, "wrong-world", extract, store); err != nil {
		t.Fatal(err)
	}

	other := m
	other.Job = func(_, k int) (core.Attack, core.Defense) {
		return core.Attack{Target: 1, Attacker: k + 1}, core.Defense{}
	}
	store.Resume = true
	_, err := PersistShard(other, MatrixOptions{Workers: 2}, "wrong-world", extract, store)
	if err == nil || !strings.Contains(err.Error(), "cannot resume") || !strings.Contains(err.Error(), "digest") {
		t.Fatalf("resume onto a different workload: err = %v, want digest mismatch", err)
	}
}

// TestPersistShardResumeNeedsRecio: json shards cannot resume.
func TestPersistShardResumeNeedsRecio(t *testing.T) {
	m, _ := testMatrix(t)
	extract := func(_, _ int, o *core.Outcome) int { return o.PollutedCount() }
	_, err := PersistShard(m, MatrixOptions{}, "x", extract,
		ShardStore{Dir: t.TempDir(), Format: FormatJSON, Resume: true})
	if err == nil || !strings.Contains(err.Error(), "recio") {
		t.Fatalf("json resume accepted: %v", err)
	}
}

// TestMergeShardsDigestMismatch covers the mixed-digest merge: shards
// produced from different worlds must abort the merge with a file:line
// diagnostic, and a shard set disagreeing with the rebuilt workload's
// digest must abort too.
func TestMergeShardsDigestMismatch(t *testing.T) {
	mk := func(lo, hi int, digest, path string) *ShardFile[int] {
		return &ShardFile[int]{Experiment: "e", Cells: 10, Groups: 1, Shards: 2,
			CellLo: lo, CellHi: hi, MatrixDigest: digest,
			Records: make([]int, hi-lo), Path: path, Line: 9}
	}
	sink := ReduceFunc[int]{EmitFn: func(int, int) {}}

	// Shards disagree with each other.
	mixed := []*ShardFile[int]{mk(0, 5, "aaaa", "a.rec"), mk(5, 10, "bbbb", "b.json")}
	err := MergeShards(mixed, "e", "aaaa", sink)
	if err == nil || !strings.Contains(err.Error(), "digest") {
		t.Fatalf("mixed digests accepted: %v", err)
	}
	if !strings.Contains(err.Error(), "b.json:9") {
		t.Fatalf("diagnostic %q does not point at the offending file:line", err)
	}

	// Shards agree with each other but not with the rebuilt workload.
	stale := []*ShardFile[int]{mk(0, 5, "aaaa", "a.rec"), mk(5, 10, "aaaa", "b.json")}
	err = MergeShards(stale, "e", "cccc", sink)
	if err == nil || !strings.Contains(err.Error(), "a.rec:9") {
		t.Fatalf("stale digests accepted or mislocated: %v", err)
	}

	// Legacy digest-free shards stay mergeable.
	legacy := []*ShardFile[int]{mk(0, 5, "", ""), mk(5, 10, "", "")}
	if err := MergeShards(legacy, "e", "cccc", sink); err != nil {
		t.Fatalf("legacy shards rejected: %v", err)
	}
}

// TestReadShardDirMixedFormats: one experiment's shards may arrive in
// different formats from different machines and still merge.
func TestReadShardDirMixedFormats(t *testing.T) {
	m, cells := testMatrix(t)
	extract := func(_, _ int, o *core.Outcome) int { return o.PollutedCount() }
	dir := t.TempDir()
	formats := []string{FormatJSON, FormatRecio}
	for s := 0; s < 2; s++ {
		_, err := PersistShard(m, MatrixOptions{Workers: 2, Sel: OneShard(s, 2)},
			"mixed", extract, ShardStore{Dir: dir, Format: formats[s]})
		if err != nil {
			t.Fatal(err)
		}
	}
	files, err := ReadShardDir[int](dir, "mixed")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("found %d shard files, want 2", len(files))
	}
	n := 0
	if err := MergeShards(files, "mixed", MatrixDigest(m), ReduceFunc[int]{
		EmitFn: func(int, int) { n++ },
	}); err != nil {
		t.Fatal(err)
	}
	if n != cells {
		t.Fatalf("merged %d records, want %d", n, cells)
	}

	if _, err := ReadShardDir[int](filepath.Join(dir, "empty"), "mixed"); err == nil {
		t.Fatal("empty directory produced no error")
	}
}
