// Streaming reduction: the replacement for the repository's historical
// buffer-then-reduce pattern (`make([]T, n)` filled index-disjoint by
// observers, then a serial pass). A Reducer consumes measurements as an
// in-order stream instead, so a run's working memory is bounded by the
// reorder window — not by the workload size — which is what lets the
// paper-scale 42,697-AS × 8,000-attack matrices fit in memory.
//
// Contract (DESIGN.md §5 "Matrix runtime"): Emit is called exactly once
// per index, in strictly increasing index order, from one goroutine at a
// time; Finish is called exactly once after the last Emit. Because
// delivery is index-ordered by construction, a reducer may freely append,
// histogram, or update maps — the aggregation order is the workload
// order, bit-identical at any worker or shard count.
package sweep

import (
	"sync"
)

// Reducer consumes one run's extracted measurements as an in-order
// stream. Emit(idx, v) is called exactly once per index in strictly
// increasing index order, serially; Finish is called once after the last
// Emit and carries the "summary" step of the old serial reduce.
type Reducer[T any] interface {
	Emit(idx int, v T)
	Finish()
}

// ReduceFunc adapts plain functions to the Reducer interface. FinishFn
// may be nil.
type ReduceFunc[T any] struct {
	EmitFn   func(idx int, v T)
	FinishFn func()
}

// Emit implements Reducer.
func (r ReduceFunc[T]) Emit(idx int, v T) { r.EmitFn(idx, v) }

// Finish implements Reducer.
func (r ReduceFunc[T]) Finish() {
	if r.FinishFn != nil {
		r.FinishFn()
	}
}

// Tee fans one in-order stream out to several reducers, preserving the
// single-goroutine in-order contract for each.
func Tee[T any](rs ...Reducer[T]) Reducer[T] {
	if len(rs) == 1 {
		return rs[0]
	}
	return ReduceFunc[T]{
		EmitFn: func(idx int, v T) {
			for _, r := range rs {
				r.Emit(idx, v)
			}
		},
		FinishFn: func() {
			for _, r := range rs {
				r.Finish()
			}
		},
	}
}

// Collect buffers every record of the stream, index-ordered. It is the
// buffered end of the spectrum — the shard-file payload and the test
// reference — and deliberately scales with the range it covers; use a
// streaming reducer when memory must stay bounded.
type Collect[T any] struct {
	Records []T
}

// Emit implements Reducer.
func (c *Collect[T]) Emit(_ int, v T) { c.Records = append(c.Records, v) }

// Finish implements Reducer.
func (c *Collect[T]) Finish() {}

// Groups reduces a group-major stream (group sizes known up front) with
// one reusable buffer: each completed group is flushed and the buffer
// recycled, so memory is O(largest group) instead of O(total cells) — a
// deployment ladder's memory stops scaling with rung count. flush
// receives the group index and its records in index order; the slice is
// only valid during the call. finish may be nil.
func Groups[T any](sizes []int, flush func(group int, vals []T), finish func()) Reducer[T] {
	g := &groupReducer[T]{sizes: sizes, flush: flush, finish: finish}
	g.skipEmpty()
	return g
}

type groupReducer[T any] struct {
	sizes  []int
	flush  func(group int, vals []T)
	finish func()
	g      int
	buf    []T
}

func (r *groupReducer[T]) skipEmpty() {
	for r.g < len(r.sizes) && r.sizes[r.g] == 0 {
		r.flush(r.g, nil)
		r.g++
	}
}

func (r *groupReducer[T]) Emit(_ int, v T) {
	r.buf = append(r.buf, v)
	if len(r.buf) == r.sizes[r.g] {
		r.flush(r.g, r.buf)
		r.buf = r.buf[:0]
		r.g++
		r.skipEmpty()
	}
}

func (r *groupReducer[T]) Finish() {
	if r.finish != nil {
		r.finish()
	}
}

// Window is the bounded reorder buffer between concurrent workers and an
// in-order Reducer: workers Put completed indices in any order; the
// window delivers them in strictly increasing index order and blocks a
// Put that runs more than capacity indices ahead of the delivery head.
// The worker holding the head index can always store immediately, so a
// blocked Put is released as soon as the head arrives — bounded memory
// without deadlock at any worker count ≥ 1 and capacity ≥ 1.
type Window[T any] struct {
	mu       sync.Mutex
	notFull  sync.Cond
	buf      []T
	present  []bool
	head     int // next index to deliver
	hi       int // exclusive end of the covered range
	aborted  bool
	deliver  func(idx int, v T)
	buffered int // currently held out-of-order items
	peak     int // high-water mark, for tests and telemetry
}

// NewWindow covers the half-open index range [lo, hi). deliver runs
// serially, in index order, under the window's lock — reduction must stay
// cheap relative to the work producing the records.
func NewWindow[T any](lo, hi, capacity int, deliver func(idx int, v T)) *Window[T] {
	if capacity < 1 {
		capacity = 1
	}
	w := &Window[T]{
		buf:     make([]T, capacity),
		present: make([]bool, capacity),
		head:    lo,
		hi:      hi,
		deliver: deliver,
	}
	w.notFull.L = &w.mu
	return w
}

// Put stores index idx's record, blocking while idx is more than capacity
// ahead of the delivery head. Whichever Put completes the head index
// drains every contiguous ready record to the reducer before returning.
// After an Abort, Put discards silently and never blocks.
func (w *Window[T]) Put(idx int, v T) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for !w.aborted && idx-w.head >= len(w.buf) {
		//bgplint:ignore lockheld Cond.Wait atomically releases w.mu while parked
		w.notFull.Wait()
	}
	if w.aborted {
		return
	}
	slot := idx % len(w.buf)
	w.buf[slot] = v
	w.present[slot] = true
	w.buffered++
	if w.buffered > w.peak {
		w.peak = w.buffered
	}
	for w.head < w.hi && w.present[w.head%len(w.buf)] {
		s := w.head % len(w.buf)
		rec := w.buf[s]
		var zero T
		w.buf[s] = zero
		w.present[s] = false
		w.buffered--
		h := w.head
		w.head++
		w.deliver(h, rec)
	}
	w.notFull.Broadcast()
}

// Abort releases every blocked Put and turns subsequent Puts into no-ops;
// the error path calls it before propagating so cancellation never
// deadlocks on a full window.
func (w *Window[T]) Abort() {
	w.mu.Lock()
	w.aborted = true
	w.notFull.Broadcast()
	w.mu.Unlock()
}

// Peak reports the high-water mark of simultaneously buffered
// out-of-order records — the measured bound of the streaming contract.
func (w *Window[T]) Peak() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.peak
}

// defaultWindow sizes the reorder buffer for a worker count: enough slack
// that workers rarely block on stragglers, small enough that memory stays
// a constant multiple of parallelism.
func defaultWindow(workers int) int {
	return 4*workers + 16
}

// MapReduce runs compute(i) for every i in [0, n) on the Map worker pool
// and streams the results, in index order through a bounded window, into
// the reducers. It carries non-solver workloads (e.g. RPKI validation
// checks) on the same streaming contract as RunReduce.
func MapReduce[T any](n int, opts Options, compute func(i int) (T, error), reds ...Reducer[T]) error {
	red := Tee(reds...)
	win := NewWindow(0, n, windowCap(opts, n), red.Emit)
	err := Map(n, opts, func(i int) error {
		v, err := compute(i)
		if err != nil {
			win.Abort()
			return err
		}
		win.Put(i, v)
		return nil
	})
	if err != nil {
		return err
	}
	red.Finish()
	return nil
}

// windowCap resolves the reorder-window capacity for a run.
func windowCap(opts Options, n int) int {
	c := defaultWindow(opts.workers(n))
	if c > n && n > 0 {
		c = n
	}
	return c
}
