// The append-style record marshal seam. Shard encoding marshals every
// record exactly once, and reflection-driven json.Marshal is as
// expensive as compressing the result — so record types may opt into a
// hand-rolled fast path by implementing JSONAppender. The contract is
// strict: the appended bytes must be byte-identical to json.Marshal's
// compact encoding, so the shard file carries the same payloads
// whichever path built them (appendjson_test.go pins this for every
// implementing type in the tree).

package sweep

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
)

// JSONAppender is the optional fast-marshal interface for record
// types: append the record's compact JSON — byte-identical to what
// json.Marshal would produce — to dst. Implementations must return an
// error exactly where json.Marshal would (unsupported values such as
// NaN), so the two paths stay interchangeable.
type JSONAppender interface {
	AppendJSON(dst []byte) ([]byte, error)
}

// appendRecordJSON marshals one record onto dst: through the type's
// own appender when it has one, through encoding/json otherwise.
func appendRecordJSON[T any](dst []byte, rec T) ([]byte, error) {
	if a, ok := any(rec).(JSONAppender); ok {
		return a.AppendJSON(dst)
	}
	p, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	return append(dst, p...), nil
}

// AppendJSONInt appends an int field value as json.Marshal encodes it.
func AppendJSONInt(dst []byte, v int) []byte {
	return strconv.AppendInt(dst, int64(v), 10)
}

// AppendJSONFloat appends a float64 field value using encoding/json's
// exact algorithm: shortest round-trip form, fixed notation inside
// [1e-6, 1e21), scientific outside it with the exponent's leading zero
// stripped. Non-finite values error, as they do under json.Marshal.
func AppendJSONFloat(dst []byte, f float64) ([]byte, error) {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return nil, fmt.Errorf("json: unsupported value: %v", f)
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// encoding/json rewrites "e-09" to "e-9".
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst, nil
}
