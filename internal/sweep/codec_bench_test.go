package sweep

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"github.com/bgpsim/bgpsim/internal/recio"
)

// benchRecord mirrors the shape of the scan tools' records (see
// hijack.Record): one small int plus one float64 whose JSON text
// repeats field names every record — the redundancy recio's gzip body
// exists to remove. It carries the columnar mapping so the recio-col
// codec benchmarks on the same shard.
type benchRecord struct {
	Pollution  int     `json:"pollution"`
	WeightFrac float64 `json:"weight_frac"`
}

func (benchRecord) ColumnFields() []recio.Field {
	return []recio.Field{
		{Name: "pollution", Kind: recio.KindDelta},
		{Name: "weight_frac", Kind: recio.KindFloat},
	}
}

func (r benchRecord) ColumnValues() []uint64 {
	return []uint64{uint64(r.Pollution), math.Float64bits(r.WeightFrac)}
}

func (r *benchRecord) SetColumnValues(vals []uint64) {
	r.Pollution = int(vals[0])
	r.WeightFrac = math.Float64frombits(vals[1])
}

func (r benchRecord) AppendJSON(dst []byte) ([]byte, error) {
	dst = append(dst, `{"pollution":`...)
	dst = AppendJSONInt(dst, r.Pollution)
	dst = append(dst, `,"weight_frac":`...)
	dst, err := AppendJSONFloat(dst, r.WeightFrac)
	if err != nil {
		return nil, err
	}
	return append(dst, '}'), nil
}

func (r *benchRecord) ParseJSON(p []byte) error {
	const pre = `{"pollution":`
	const mid = `,"weight_frac":`
	if len(p) > len(pre)+len(mid)+2 && string(p[:len(pre)]) == pre {
		i := len(pre)
		pol, n, ok := ParseJSONInt(p[i:])
		if ok {
			i += n
			if len(p)-i > len(mid) && string(p[i:i+len(mid)]) == mid {
				i += len(mid)
				wf, n, ok := ParseJSONFloat(p[i:])
				if ok && i+n+1 == len(p) && p[len(p)-1] == '}' {
					r.Pollution = pol
					r.WeightFrac = wf
					return nil
				}
			}
		}
	}
	return json.Unmarshal(p, r)
}

const benchRecords = 20000

func benchShard() *ShardFile[benchRecord] {
	recs := make([]benchRecord, benchRecords)
	for i := range recs {
		recs[i] = benchRecord{
			Pollution:  i * 37 % 1200,
			WeightFrac: float64(i%997) / 997,
		}
	}
	return &ShardFile[benchRecord]{
		Experiment:   "bench",
		Cells:        benchRecords,
		Groups:       4,
		Shards:       1,
		CellHi:       benchRecords,
		MatrixDigest: "57a7ab1e0000000000000000000000000000000000000000000000000000beef",
		Records:      recs,
	}
}

// BenchmarkShardEncode measures each codec writing one 20k-record
// shard. bytes/op counts the records' logical size; disk-B reports the
// bytes that actually landed on disk, so the recio/json ratio can be
// read straight off the two sub-benchmarks.
func BenchmarkShardEncode(b *testing.B) {
	sf := benchShard()
	for _, name := range []string{FormatJSON, FormatRecio, FormatRecioCol} {
		b.Run(name, func(b *testing.B) {
			codec, err := CodecByName[benchRecord](name)
			if err != nil {
				b.Fatal(err)
			}
			path := filepath.Join(b.TempDir(), "shard."+codec.Ext())
			var size int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := codec.WriteShard(path, sf); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st, err := os.Stat(path)
			if err != nil {
				b.Fatal(err)
			}
			size = st.Size()
			b.SetBytes(size)
			b.ReportMetric(float64(size), "disk-B")
		})
	}
}

// BenchmarkShardDecode measures each codec reading the same shard back.
func BenchmarkShardDecode(b *testing.B) {
	sf := benchShard()
	for _, name := range []string{FormatJSON, FormatRecio, FormatRecioCol} {
		b.Run(name, func(b *testing.B) {
			codec, err := CodecByName[benchRecord](name)
			if err != nil {
				b.Fatal(err)
			}
			path := filepath.Join(b.TempDir(), "shard."+codec.Ext())
			if err := codec.WriteShard(path, sf); err != nil {
				b.Fatal(err)
			}
			st, err := os.Stat(path)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(st.Size())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, err := codec.ReadShard(path)
				if err != nil {
					b.Fatal(err)
				}
				if len(got.Records) != benchRecords {
					b.Fatalf("%d records", len(got.Records))
				}
			}
		})
	}
}

// BenchmarkShardResumeReplay measures the resume path's fixed cost:
// recovering a truncated recio shard's clean prefix (decompress +
// re-frame every checkpointed record) before any solving starts.
func BenchmarkShardResumeReplay(b *testing.B) {
	sf := benchShard()
	codec := RecioCodec[benchRecord]{}
	path := filepath.Join(b.TempDir(), "shard."+codec.Ext())
	if err := codec.WriteShard(path, sf); err != nil {
		b.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		b.Fatal(err)
	}
	// Slice mid-file so Recover walks a damaged tail like a real crash.
	cut := path + ".cut"
	if err := os.WriteFile(cut, data[:len(data)*9/10], 0o644); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data) * 9 / 10))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, payloads, _, err := recio.RecoverFile(cut)
		if err != nil {
			b.Fatal(err)
		}
		if len(payloads) == 0 || len(payloads) >= benchRecords {
			b.Fatalf("recovered %d records from a truncated file", len(payloads))
		}
	}
}

// BenchmarkShardSeekResume measures the v2 resume path over the same
// shard: with an intact index trailer, counting and CRC-verifying the
// clean prefix is a seek plus a checksum sweep — no segment inflates,
// no record replays. Compare against BenchmarkShardResumeReplay, the
// scan path's cost on the same data.
func BenchmarkShardSeekResume(b *testing.B) {
	sf := benchShard()
	codec := RecioCodec[benchRecord]{}
	path := filepath.Join(b.TempDir(), "shard."+codec.Ext())
	if err := codec.WriteShard(path, sf); err != nil {
		b.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(st.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := recio.RecoverStatsFile(path)
		if err != nil {
			b.Fatal(err)
		}
		if !rec.ViaIndex || rec.Records != benchRecords {
			b.Fatalf("seek resume fell back: viaIndex=%v records=%d", rec.ViaIndex, rec.Records)
		}
	}
}

// BenchmarkShardColumnRead measures the columnar layout's selling
// point: folding one field of a recio-col shard without inflating its
// siblings.
func BenchmarkShardColumnRead(b *testing.B) {
	sf := benchShard()
	codec := ColumnarCodec[benchRecord]{}
	path := filepath.Join(b.TempDir(), "shard."+codec.Ext())
	if err := codec.WriteShard(path, sf); err != nil {
		b.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(st.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vals, err := ReadShardColumn(path, "pollution")
		if err != nil {
			b.Fatal(err)
		}
		if len(vals) != benchRecords {
			b.Fatalf("%d values", len(vals))
		}
	}
}
