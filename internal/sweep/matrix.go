// The matrix runtime: target×attack×policy workloads flattened into one
// global cell index space, sharded into contiguous index ranges, solved
// in parallel with per-worker solver reuse, and reduced as an in-order
// stream. A shard is the unit of both in-process concurrency and
// multi-process splitting (`-shard i/n` on the scan CLIs); because shard
// outputs are index-ordered record slices over an exact tiling of the
// cell space, merging them reproduces the unsharded stream bit-for-bit —
// the SHA-256 digest contract holds at any worker AND shard count.
package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/bgpsim/bgpsim/internal/core"
)

// Matrix describes a target×attack×policy workload as Groups contiguous
// groups of cells. Group g holds Size(g) attacks, all solved under
// Policy(g); Job(g, k) yields the k-th attack of group g. Cells are
// numbered group-major — group 0's cells first, then group 1's — and that
// global cell order is the workload order every reducer observes. All
// three callbacks are called from multiple workers and must be pure
// reads.
type Matrix struct {
	Groups int
	Size   func(g int) int
	Policy func(g int) *core.Policy
	Job    func(g, k int) (core.Attack, core.Defense)
}

// offsets returns the group→first-cell prefix sums (length Groups+1);
// offsets[Groups] is the total cell count.
func (m Matrix) offsets() []int {
	off := make([]int, m.Groups+1)
	for g := 0; g < m.Groups; g++ {
		off[g+1] = off[g] + m.Size(g)
	}
	return off
}

// Cells returns the total number of matrix cells.
func (m Matrix) Cells() int {
	n := 0
	for g := 0; g < m.Groups; g++ {
		n += m.Size(g)
	}
	return n
}

// ShardSel selects how a matrix's cell space is split. The zero value
// means unsharded. Shards > 1 with Shard in [0, Shards) runs only that
// shard — the multi-process `-shard i/n` path. Shards > 1 with Shard < 0
// runs every shard concurrently in one process.
type ShardSel struct {
	Shard  int
	Shards int
}

// AllShards selects an in-process run of all n shards.
func AllShards(n int) ShardSel { return ShardSel{Shard: -1, Shards: n} }

// OneShard selects shard i of n for a single-process partial run.
func OneShard(i, n int) ShardSel { return ShardSel{Shard: i, Shards: n} }

// ParseShardSel parses the CLI "i/n" form ("" = unsharded).
func ParseShardSel(s string) (ShardSel, error) {
	if s == "" {
		return ShardSel{}, nil
	}
	is, ns, ok := strings.Cut(s, "/")
	if !ok {
		return ShardSel{}, fmt.Errorf("shard selector %q: want i/n, e.g. 0/4", s)
	}
	i, err := strconv.Atoi(is)
	if err != nil {
		return ShardSel{}, fmt.Errorf("shard selector %q: bad shard index: %v", s, err)
	}
	n, err := strconv.Atoi(ns)
	if err != nil {
		return ShardSel{}, fmt.Errorf("shard selector %q: bad shard count: %v", s, err)
	}
	if n < 1 || i < 0 || i >= n {
		return ShardSel{}, fmt.Errorf("shard selector %q: need 0 <= i < n", s)
	}
	return ShardSel{Shard: i, Shards: n}, nil
}

// String renders the selector in the CLI "i/n" form.
func (s ShardSel) String() string {
	if s.Shards <= 1 {
		return ""
	}
	return fmt.Sprintf("%d/%d", s.Shard, s.Shards)
}

// ShardRange returns the half-open cell range [lo, hi) owned by shard sh
// of shards over n cells: contiguous, near-equal ranges that tile [0, n)
// exactly. Sharding is by cells, not groups, so a matrix with one huge
// group (a detector evaluation) still splits evenly.
func ShardRange(n, sh, shards int) (lo, hi int) {
	return sh * n / shards, (sh + 1) * n / shards
}

// MatrixOptions tune one matrix run.
type MatrixOptions struct {
	// Workers bounds total solve parallelism across all in-process
	// shards; 0 means GOMAXPROCS.
	Workers int
	// Window overrides the per-shard reorder-window capacity; 0 sizes it
	// from the shard's worker count.
	Window int
	// Sel splits the cell space; the zero value runs unsharded.
	Sel ShardSel
	// Progress, when non-nil, is called once per completed cell with the
	// running count over every cell this run covers. Serialized, but in
	// completion order — reporting only, never results.
	Progress func(done, total int)
}

// shardError tags a cell-level failure with its global cell index so a
// multi-shard run can report the lowest-indexed error deterministically,
// matching MapLocal's lowest-index-first contract within a shard.
type shardError struct {
	cell int
	err  error
}

func (e *shardError) Error() string { return e.err.Error() }
func (e *shardError) Unwrap() error { return e.err }

// RunMatrix solves the selected shards of a matrix, streaming each
// shard's records in cell order into the reducer reducerFor builds for
// it. reducerFor is called on the caller's goroutine, once per covered
// shard, before any solving starts; each shard's reducer then receives
// Emit(cell, rec) for exactly its [cellLo, cellHi) range in increasing
// order followed by one Finish. extract runs concurrently on the workers
// and must compress the transient outcome into a self-contained record.
//
// This is the low-level entry point used for partial (single-shard) runs
// whose output is persisted via WriteShards; RunMatrixReduce is the
// whole-matrix form that feeds one final reducer.
func RunMatrix[T any](m Matrix, opts MatrixOptions, extract func(g, k int, o *core.Outcome) T, reducerFor func(shard, cellLo, cellHi int) Reducer[T]) error {
	off := m.offsets()
	cells := off[m.Groups]
	shards := opts.Sel.Shards
	if shards < 1 {
		shards = 1
	}
	list := make([]int, 0, shards)
	if opts.Sel.Shard >= 0 && shards > 1 {
		if opts.Sel.Shard >= shards {
			return fmt.Errorf("sweep: shard %d out of range (shards=%d)", opts.Sel.Shard, shards)
		}
		list = append(list, opts.Sel.Shard)
	} else {
		for s := 0; s < shards; s++ {
			list = append(list, s)
		}
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	covered := 0
	for _, s := range list {
		lo, hi := ShardRange(cells, s, shards)
		covered += hi - lo
	}
	var prog func(done, total int)
	if opts.Progress != nil {
		// One counter across all shards: MapLocal's per-shard counts are
		// ignored in favour of a shared completion count.
		var pmu sync.Mutex
		pdone := 0
		user := opts.Progress
		prog = func(_, _ int) {
			pmu.Lock()
			pdone++
			user(pdone, covered)
			pmu.Unlock()
		}
	}

	if len(list) == 1 {
		s := list[0]
		lo, hi := ShardRange(cells, s, shards)
		return unwrapShardErr(runShard(m, off, lo, hi, workers, opts.Window, prog, reducerFor(s, lo, hi), extract))
	}

	// All shards in one process: divide the worker budget, run shards
	// concurrently. Each shard's stream is independent; determinism needs
	// only per-shard cell order, which the per-shard windows provide.
	type job struct {
		shard, lo, hi, workers int
		red                    Reducer[T]
	}
	jobs := make([]job, len(list))
	for i, s := range list {
		lo, hi := ShardRange(cells, s, shards)
		w := workers / len(list)
		if i < workers%len(list) {
			w++
		}
		if w < 1 {
			w = 1
		}
		jobs[i] = job{shard: s, lo: lo, hi: hi, workers: w, red: reducerFor(s, lo, hi)}
	}
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j := jobs[i]
			errs[i] = runShard(m, off, j.lo, j.hi, j.workers, opts.Window, prog, j.red, extract)
		}(i)
	}
	wg.Wait()

	// Report the lowest-celled failure so the error does not depend on
	// which shard's goroutine lost the race.
	var first error
	firstCell := -1
	for _, e := range errs {
		if e == nil {
			continue
		}
		var se *shardError
		if errors.As(e, &se) {
			if firstCell < 0 || se.cell < firstCell {
				first, firstCell = e, se.cell
			}
		} else if first == nil {
			first = e
		}
	}
	return unwrapShardErr(first)
}

func unwrapShardErr(err error) error {
	var se *shardError
	if errors.As(err, &se) {
		return se.err
	}
	return err
}

// runShard solves cells [lo, hi) and delivers them in order to red
// through a bounded reorder window; on success it also calls red.Finish.
// A solve failure aborts the window before returning so workers blocked
// on a full window are released (cancellation never deadlocks).
func runShard[T any](m Matrix, off []int, lo, hi, workers, window int, prog func(done, total int), red Reducer[T], extract func(g, k int, o *core.Outcome) T) error {
	n := hi - lo
	if n <= 0 {
		red.Finish()
		return nil
	}
	opts := Options{Workers: workers, Progress: prog}
	cap := window
	if cap <= 0 {
		cap = defaultWindow(opts.workers(n))
	}
	if cap > n {
		cap = n
	}
	win := NewWindow(lo, hi, cap, red.Emit)
	err := MapLocal(n, opts,
		// Per-worker solver cache keyed by policy identity: a worker that
		// crosses a group boundary keeps one warm solver per distinct
		// policy instead of re-deriving routing state per cell.
		func() map[*core.Policy]*core.Solver { return make(map[*core.Policy]*core.Solver, 2) },
		func(cache map[*core.Policy]*core.Solver, i int) error {
			cell := lo + i
			g := sort.SearchInts(off, cell+1) - 1
			k := cell - off[g]
			pol := m.Policy(g)
			s := cache[pol]
			if s == nil {
				s = core.NewSolver(pol)
				cache[pol] = s
			}
			at, def := m.Job(g, k)
			o, err := s.SolveDefense(at, def)
			if err != nil {
				win.Abort()
				return &shardError{cell: cell, err: fmt.Errorf("matrix cell %d (group %d attack %d, attacker %d → target %d): %w",
					cell, g, k, at.Attacker, at.Target, err)}
			}
			win.Put(cell, extract(g, k, o))
			return nil
		})
	if err != nil {
		return err
	}
	red.Finish()
	return nil
}

// RunMatrixReduce solves the whole matrix and streams every cell's
// record, in global cell order, into the final reducers. Unsharded, the
// stream flows straight through a bounded window (memory stays O(window)
// plus whatever the reducers retain). With Sel = AllShards(n) the shards
// solve concurrently into per-shard collectors and the collected ranges
// replay in cell order afterwards — same stream, same digests, at the
// cost of buffering the shard outputs. A partial selection (Shard >= 0)
// is rejected: merging partial runs is WriteShards/MergeShards territory.
func RunMatrixReduce[T any](m Matrix, opts MatrixOptions, extract func(g, k int, o *core.Outcome) T, reds ...Reducer[T]) error {
	shards := opts.Sel.Shards
	if shards > 1 && opts.Sel.Shard >= 0 {
		return fmt.Errorf("sweep: RunMatrixReduce covers the full matrix; run shard %s via RunMatrix and merge with MergeShards", opts.Sel)
	}
	if shards <= 1 {
		final := Tee(reds...)
		return RunMatrix(m, opts, extract, func(_, _, _ int) Reducer[T] { return final })
	}
	parts := make([]*Collect[T], shards)
	err := RunMatrix(m, opts, extract, func(s, lo, hi int) Reducer[T] {
		parts[s] = &Collect[T]{Records: make([]T, 0, hi-lo)}
		return parts[s]
	})
	if err != nil {
		return err
	}
	final := Tee(reds...)
	idx := 0
	for _, p := range parts {
		for _, v := range p.Records {
			final.Emit(idx, v)
			idx++
		}
	}
	final.Finish()
	return nil
}

// RunReduce solves n attacks under one policy and streams the extracted
// per-attack records, in index order, into the reducers — the
// single-policy convenience over RunMatrixReduce.
func RunReduce[T any](pol *core.Policy, n int, job Job, opts Options, extract func(i int, o *core.Outcome) T, reds ...Reducer[T]) error {
	m := Matrix{
		Groups: 1,
		Size:   func(int) int { return n },
		Policy: func(int) *core.Policy { return pol },
		Job:    func(_, k int) (core.Attack, core.Defense) { return job(k) },
	}
	return RunMatrixReduce(m, MatrixOptions{Workers: opts.Workers, Progress: opts.Progress},
		func(_, k int, o *core.Outcome) T { return extract(k, o) }, reds...)
}
