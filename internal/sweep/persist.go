// Checkpointed shard persistence: PersistShard is the write side of a
// multi-process matrix run. In the json format it solves the shard in
// memory and writes one indented file at the end (the historical
// behaviour). In the recio format it streams records into the shard
// file as cells complete, checkpointing every CheckpointEvery records —
// and with Resume set it recovers the clean prefix of a crashed run,
// validates the file's header against the freshly rebuilt workload, and
// continues solving from the first missing cell instead of from zero.
package sweep

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"runtime"
	"sync"

	"github.com/bgpsim/bgpsim/internal/core"
	"github.com/bgpsim/bgpsim/internal/recio"
)

// defaultCheckpointEvery is the records-per-fsync cadence when the
// store does not set one: frequent enough that a kill loses seconds of
// solving, rare enough that sync cost stays invisible next to BFS time.
const defaultCheckpointEvery = 256

// ShardStore says where and how PersistShard writes its shard file.
type ShardStore struct {
	// Dir is the shard directory (created if missing).
	Dir string
	// Format is a codec name (FormatJSON, FormatRecio); "" means json.
	Format string
	// Resume continues a previously interrupted recio run in place of
	// starting over. Invalid with the json format — json shards are
	// written whole at the end and leave nothing to resume.
	Resume bool
	// CheckpointEvery is the recio checkpoint cadence in records;
	// 0 means defaultCheckpointEvery.
	CheckpointEvery int
	// Level is the gzip compression level for recio formats,
	// gzip.BestSpeed (1) through gzip.BestCompression (9); 0 means
	// recio.DefaultLevel. The json format ignores it.
	Level int
	// Tool, Seed and Workers are provenance recorded in the recio
	// header — informational only, never validated on resume.
	Tool    string
	Seed    int64
	Workers int
}

// ShardReport summarizes one PersistShard call for the caller's logs.
type ShardReport struct {
	Path           string
	Format         string
	CellLo, CellHi int
	// Resumed counts records recovered from a previous run's clean
	// prefix; Solved counts cells computed (and persisted) this run.
	Resumed int
	Solved  int
	// SeekResume reports that the resumed prefix was counted and
	// CRC-verified through the file's index trailer (a seek) rather than
	// by inflating and replaying it (the v1 scan).
	SeekResume bool
}

// PersistShard solves one shard of the matrix and persists it to the
// store, returning where the file went and how much of it was recovered
// versus solved. opts.Sel must select a single shard (or be zero for an
// unsharded 0-of-1 run), exactly as RunShard requires.
func PersistShard[T any](m Matrix, opts MatrixOptions, experiment string, extract func(g, k int, o *core.Outcome) T, store ShardStore) (ShardReport, error) {
	var rep ShardReport
	codec, err := CodecFor[T](store.Format, store.Level)
	if err != nil {
		return rep, err
	}
	if opts.Sel.Shards > 1 && opts.Sel.Shard < 0 {
		return rep, fmt.Errorf("sweep: PersistShard needs a single shard selection, got %q", opts.Sel)
	}
	if store.Resume && codec.Name() != FormatRecio {
		return rep, fmt.Errorf("sweep: -resume needs the recio format: %s shards are written whole at the end and leave nothing to resume", codec.Name())
	}
	if store.Level != 0 && codec.Name() == FormatJSON {
		return rep, fmt.Errorf("sweep: -level only applies to the recio formats; json shards are not compressed")
	}
	if err := os.MkdirAll(store.Dir, 0o755); err != nil {
		return rep, err
	}
	shard, shards := opts.Sel.Shard, opts.Sel.Shards
	if shards < 1 {
		shards = 1
	}
	if shard < 0 {
		shard = 0
	}
	lo, hi := ShardRange(m.Cells(), shard, shards)
	rep = ShardReport{
		Path:   ShardPath(store.Dir, experiment, shard, shards, codec.Ext()),
		Format: codec.Name(),
		CellLo: lo,
		CellHi: hi,
	}

	if codec.Name() == FormatRecio {
		return persistRecio(m, opts, experiment, extract, store, rep, shard, shards)
	}
	sf, err := RunShard(m, opts, experiment, extract)
	if err != nil {
		return rep, err
	}
	if err := codec.WriteShard(rep.Path, sf); err != nil {
		return rep, err
	}
	rep.Solved = hi - lo
	return rep, nil
}

// persistRecio streams the shard's records into a checkpointed recio
// file, optionally resuming a crashed run's clean prefix.
func persistRecio[T any](m Matrix, opts MatrixOptions, experiment string, extract func(g, k int, o *core.Outcome) T, store ShardStore, rep ShardReport, shard, shards int) (ShardReport, error) {
	lo, hi := rep.CellLo, rep.CellHi
	hdr := recio.Header{
		Experiment:   experiment,
		Cells:        m.Cells(),
		Groups:       m.Groups,
		Shard:        shard,
		Shards:       shards,
		CellLo:       lo,
		CellHi:       hi,
		MatrixDigest: MatrixDigest(m),
		Tool:         store.Tool,
		Seed:         store.Seed,
		Workers:      store.Workers,
	}

	var (
		w    *recio.Writer
		fh   *os.File
		done int
	)
	if store.Resume {
		// RecoverStats seeks: with an intact index trailer the clean
		// prefix is counted and CRC-verified without inflating a segment;
		// v1 files (and files whose trailer a crash damaged) fall back to
		// the scan the old replay path performed.
		rec, err := recio.RecoverStatsFile(rep.Path)
		switch {
		case errors.Is(err, fs.ErrNotExist):
			// Nothing to resume: first run of this shard.
		case err != nil:
			// Unreadable magic or header: the previous run died before
			// its first sync, so there is provably nothing to keep.
			// Starting fresh is exactly what the crashed run would redo.
		case !rec.Header.SameWorkload(hdr):
			return rep, fmt.Errorf("%s:1: cannot resume: %s", rep.Path, rec.Header.DescribeMismatch(hdr))
		case rec.Records > hi-lo:
			return rep, fmt.Errorf("%s:1: cannot resume: %d recovered records exceed the %d-cell range [%d,%d)",
				rep.Path, rec.Records, hi-lo, lo, hi)
		case rec.Records == hi-lo:
			// The previous run had already persisted every cell; leave the
			// file — body, trailer and all — untouched.
			rep.Resumed, rep.SeekResume = rec.Records, rec.ViaIndex
			return rep, nil
		default:
			done = rec.Records
			rep.SeekResume = rec.ViaIndex
			fh, err = os.OpenFile(rep.Path, os.O_RDWR, 0)
			if err != nil {
				return rep, err
			}
			if err := fh.Truncate(rec.CleanSize); err != nil {
				fh.Close()
				return rep, fmt.Errorf("%s: truncate to clean prefix: %w", rep.Path, err)
			}
			if _, err := fh.Seek(rec.CleanSize, io.SeekStart); err != nil {
				fh.Close()
				return rep, fmt.Errorf("%s: %w", rep.Path, err)
			}
			if w, err = recio.ResumeWriter(fh, recio.Options{Level: store.Level}, rec); err != nil {
				fh.Close()
				return rep, fmt.Errorf("%s: %w", rep.Path, err)
			}
		}
	}
	if w == nil {
		var err error
		w, fh, err = recio.Create(rep.Path, hdr, recio.Options{Level: store.Level})
		if err != nil {
			return rep, err
		}
	}
	rep.Resumed = done

	every := store.CheckpointEvery
	if every <= 0 {
		every = defaultCheckpointEvery
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var prog func(int, int)
	if user := opts.Progress; user != nil {
		// Completed-cell counter over the whole shard: resumed records
		// count as already done.
		var mu sync.Mutex
		count := done
		prog = func(_, _ int) {
			mu.Lock()
			count++
			user(count, hi-lo)
			mu.Unlock()
		}
	}

	// The reducer is the file: records arrive in cell order from the
	// reorder window and append straight into the open segment, which is
	// checkpointed (written + fsynced) every `every` records.
	var ioErr error
	var p []byte
	red := ReduceFunc[T]{EmitFn: func(_ int, v T) {
		if ioErr != nil {
			return
		}
		var err error
		p, err = appendRecordJSON(p[:0], v)
		if err != nil {
			ioErr = fmt.Errorf("%s: encode record: %w", rep.Path, err)
			return
		}
		if err := w.Append(p); err != nil {
			ioErr = fmt.Errorf("%s: %w", rep.Path, err)
			return
		}
		if w.Pending() >= every {
			if err := w.Checkpoint(); err != nil {
				ioErr = fmt.Errorf("%s: %w", rep.Path, err)
			}
		}
	}}
	err := unwrapShardErr(runShard(m, m.offsets(), lo+done, hi, workers, opts.Window, prog, red, extract))
	if err == nil {
		err = ioErr
	}
	if err != nil {
		// Best effort: the records already emitted are an in-order
		// prefix, so checkpointing them preserves the work for -resume.
		if ioErr == nil {
			_ = w.Checkpoint()
		}
		fh.Close()
		return rep, err
	}
	if err := w.Close(); err != nil {
		fh.Close()
		return rep, fmt.Errorf("%s: %w", rep.Path, err)
	}
	if err := fh.Close(); err != nil {
		return rep, err
	}
	rep.Solved = hi - lo - done
	return rep, nil
}
