// Mergeable shard output: the on-disk handoff for multi-process matrix
// runs. Each `-shard i/n` process writes one ShardFile holding its cell
// range's records in cell order; a merge run reads any number of shard
// files (in any order), validates that they tile the cell space exactly,
// and replays the records as the single in-order stream the reducers
// would have seen unsharded. Records round-trip through encoding/json —
// Go prints float64 with the shortest exact representation, so merged
// digests stay bit-identical to single-process runs.
package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"github.com/bgpsim/bgpsim/internal/core"
)

// ShardFile is one shard's persisted slice of a matrix run.
type ShardFile[T any] struct {
	// Experiment names the workload (e.g. "fig2-vulnerability") so a
	// merge refuses to mix shards of different runs.
	Experiment string `json:"experiment"`
	// Cells and Groups pin the matrix dimensions the shard was cut from.
	Cells  int `json:"cells"`
	Groups int `json:"groups"`
	// Shard/Shards echo the -shard i/n selection; CellLo/CellHi is the
	// half-open cell range the records cover, in cell order.
	Shard  int `json:"shard"`
	Shards int `json:"shards"`
	CellLo int `json:"cell_lo"`
	CellHi int `json:"cell_hi"`
	// MatrixDigest is the SHA-256 workload identity (MatrixDigest(m)) of
	// the matrix the shard was solved from; merge refuses shards whose
	// digest disagrees with the workload rebuilt from the current flags.
	// Empty in files written before digests existed (checked leniently).
	MatrixDigest string `json:"matrix_digest,omitempty"`
	Records      []T    `json:"records"`

	// Path/Line locate the file the shard was loaded from (Line points
	// at the matrix_digest field for JSON shards, 1 for recio headers);
	// set by readers, never serialized, used for merge diagnostics.
	Path string `json:"-"`
	Line int    `json:"-"`
}

// validate checks a decoded shard file's internal consistency.
func (f *ShardFile[T]) validate() error {
	if f.CellLo < 0 || f.CellHi > f.Cells || f.CellLo > f.CellHi {
		return fmt.Errorf("shard %d/%d: cell range [%d,%d) outside [0,%d)",
			f.Shard, f.Shards, f.CellLo, f.CellHi, f.Cells)
	}
	if len(f.Records) != f.CellHi-f.CellLo {
		return fmt.Errorf("shard %d/%d: %d records for cell range [%d,%d)",
			f.Shard, f.Shards, len(f.Records), f.CellLo, f.CellHi)
	}
	return nil
}

// loc renders the shard's source location for diagnostics: "path:line"
// when the shard came from a file, a shard-selector description when it
// was built in memory.
func (f *ShardFile[T]) loc() string {
	if f.Path != "" {
		line := f.Line
		if line < 1 {
			line = 1
		}
		return fmt.Sprintf("%s:%d", f.Path, line)
	}
	return fmt.Sprintf("shard %d/%d", f.Shard, f.Shards)
}

// WriteShardFile encodes one shard file as indented JSON.
func WriteShardFile[T any](w io.Writer, f *ShardFile[T]) error {
	if len(f.Records) != f.CellHi-f.CellLo {
		return fmt.Errorf("shard %d/%d: %d records for cell range [%d,%d)",
			f.Shard, f.Shards, len(f.Records), f.CellLo, f.CellHi)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// ReadShardFile decodes one shard file and checks its internal
// consistency.
func ReadShardFile[T any](r io.Reader) (*ShardFile[T], error) {
	var f ShardFile[T]
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("decode shard file: %w", err)
	}
	if err := f.validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// RunShard solves one shard of a matrix and returns it as a ShardFile
// ready for WriteShardFile; opts.Sel must select a single shard.
func RunShard[T any](m Matrix, opts MatrixOptions, experiment string, extract func(g, k int, o *core.Outcome) T) (*ShardFile[T], error) {
	if opts.Sel.Shards > 1 && opts.Sel.Shard < 0 {
		return nil, fmt.Errorf("sweep: RunShard needs a single shard selection, got %q", opts.Sel)
	}
	digest := MatrixDigest(m)
	var out *ShardFile[T]
	err := RunMatrix(m, opts, extract, func(s, lo, hi int) Reducer[T] {
		out = &ShardFile[T]{
			Experiment:   experiment,
			Cells:        m.Cells(),
			Groups:       m.Groups,
			Shard:        s,
			Shards:       max(1, opts.Sel.Shards),
			CellLo:       lo,
			CellHi:       hi,
			MatrixDigest: digest,
		}
		return ReduceFunc[T]{EmitFn: func(_ int, v T) { out.Records = append(out.Records, v) }}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MergeShards replays shard files as one in-order stream into the
// reducers. Input order is free — shards are sorted by cell range — but
// the set must belong to one experiment and tile [0, Cells) exactly:
// no gap, no overlap, no missing shard. The replayed stream is
// indistinguishable from an unsharded run's.
//
// wantDigest is the MatrixDigest of the workload the merging process
// rebuilt from its own flags; any shard carrying a different digest was
// produced from a different world/seed/defaults and aborts the merge
// with a file:line diagnostic. Shards must also agree with each other.
// Empty digests (pre-digest shard files, or wantDigest == "") are
// exempt from the comparison they would anchor.
func MergeShards[T any](files []*ShardFile[T], experiment, wantDigest string, reds ...Reducer[T]) error {
	if len(files) == 0 {
		return fmt.Errorf("merge %s: no shard files", experiment)
	}
	sorted := make([]*ShardFile[T], len(files))
	copy(sorted, files)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].CellLo < sorted[j].CellLo })
	ref := sorted[0]
	var digestRef *ShardFile[T]
	want := 0
	for _, f := range sorted {
		if f.Experiment != experiment {
			return fmt.Errorf("merge %s: shard %d/%d is from experiment %q", experiment, f.Shard, f.Shards, f.Experiment)
		}
		if f.MatrixDigest != "" {
			if wantDigest != "" && f.MatrixDigest != wantDigest {
				return fmt.Errorf("%s: merge %s: shard %d/%d matrix digest %.12s… does not match the workload rebuilt from the current flags (%.12s…): different world, seed or defaults",
					f.loc(), experiment, f.Shard, f.Shards, f.MatrixDigest, wantDigest)
			}
			if digestRef == nil {
				digestRef = f
			} else if f.MatrixDigest != digestRef.MatrixDigest {
				return fmt.Errorf("%s: merge %s: shard %d/%d matrix digest %.12s… disagrees with %s (%.12s…): shards were produced from different worlds",
					f.loc(), experiment, f.Shard, f.Shards, f.MatrixDigest, digestRef.loc(), digestRef.MatrixDigest)
			}
		}
		if f.Cells != ref.Cells || f.Groups != ref.Groups || f.Shards != ref.Shards {
			return fmt.Errorf("merge %s: shard %d/%d dimensions (%d cells, %d groups, %d shards) disagree with shard %d/%d (%d cells, %d groups, %d shards)",
				experiment, f.Shard, f.Shards, f.Cells, f.Groups, f.Shards, ref.Shard, ref.Shards, ref.Cells, ref.Groups, ref.Shards)
		}
		if f.CellLo != want {
			if f.CellLo < want {
				return fmt.Errorf("merge %s: shards overlap at cell %d", experiment, f.CellLo)
			}
			return fmt.Errorf("merge %s: missing cells [%d,%d)", experiment, want, f.CellLo)
		}
		want = f.CellHi
	}
	if want != ref.Cells {
		return fmt.Errorf("merge %s: missing cells [%d,%d)", experiment, want, ref.Cells)
	}
	final := Tee(reds...)
	idx := 0
	for _, f := range sorted {
		for i := range f.Records {
			final.Emit(idx, f.Records[i])
			idx++
		}
	}
	final.Finish()
	return nil
}

// ReadShardFiles loads a list of shard file paths for MergeShards,
// dispatching each to its format's codec by extension.
func ReadShardFiles[T any](paths []string) ([]*ShardFile[T], error) {
	files := make([]*ShardFile[T], 0, len(paths))
	for _, p := range paths {
		f, err := ReadShardAuto[T](p)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// WriteShardFileTo writes one shard file to path, creating or truncating
// it.
func WriteShardFileTo[T any](path string, f *ShardFile[T]) error {
	w, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteShardFile(w, f); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}
