package sweep

import (
	"encoding/json"
	"math"
	"strconv"
	"testing"
)

// TestParseJSONFloatMatchesUnmarshal pins the hand-rolled float decode
// against encoding/json bit for bit, across the torture set and the
// shortest-exact encodings of a dense value sweep — the round trip the
// shard files actually take.
func TestParseJSONFloatMatchesUnmarshal(t *testing.T) {
	vals := append([]float64{}, floatTortureValues...)
	for i := 0; i < 3000; i++ {
		vals = append(vals, float64(i%997)/997, float64(i)*1.7e-9, float64(i*i)*3.14159e12)
	}
	for _, f := range vals {
		enc, err := AppendJSONFloat(nil, f)
		if err != nil {
			t.Fatal(err)
		}
		var want float64
		if err := json.Unmarshal(enc, &want); err != nil {
			t.Fatal(err)
		}
		got, n, ok := ParseJSONFloat(enc)
		if !ok || n != len(enc) {
			t.Fatalf("ParseJSONFloat(%q): ok=%v n=%d", enc, ok, n)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("ParseJSONFloat(%q) = %v (bits %x), json.Unmarshal = %v (bits %x)",
				enc, got, math.Float64bits(got), want, math.Float64bits(want))
		}
	}
}

// TestParseJSONFloatStrictness pins the fallback triggers: anything the
// scanner is not sure of must come back ok=false, never a wrong value.
func TestParseJSONFloatStrictness(t *testing.T) {
	for _, bad := range []string{
		"", "-", ".", "e5", ".5", "-.5", // missing integer part
		"01", "00.5", "-01e2", // leading zeros
		"1.", "1.e5", // empty fraction
		"1e", "1e+", "2E-", // empty exponent
		"NaN", "Infinity", "+1", "0x10",
		"1e999", "-1e999", // finite grammar, out of float64 range
	} {
		if v, n, ok := ParseJSONFloat([]byte(bad)); ok && n == len(bad) {
			t.Fatalf("ParseJSONFloat(%q) accepted the whole input as %v", bad, v)
		}
	}
	// Trailing bytes are the caller's to judge: the scanner stops at the
	// number's end and reports how far it got.
	if v, n, ok := ParseJSONFloat([]byte(`0.25,"x":1`)); !ok || n != 4 || v != 0.25 {
		t.Fatalf("prefix parse = (%v, %d, %v)", v, n, ok)
	}
}

// TestParseJSONIntMatchesUnmarshal pins the int decode against
// encoding/json over boundaries and a modular sweep.
func TestParseJSONIntMatchesUnmarshal(t *testing.T) {
	vals := []int{0, 1, -1, 7, -900719925474099, 1<<53 + 1, math.MaxInt32, math.MinInt32}
	for i := 0; i < 4000; i++ {
		vals = append(vals, i*37-6000, i*i*31)
	}
	for _, v := range vals {
		enc := strconv.AppendInt(nil, int64(v), 10)
		var want int
		if err := json.Unmarshal(enc, &want); err != nil {
			t.Fatal(err)
		}
		got, n, ok := ParseJSONInt(enc)
		if !ok || n != len(enc) || got != want {
			t.Fatalf("ParseJSONInt(%q) = (%d, %d, %v), want %d", enc, got, n, ok, want)
		}
	}
}

func TestParseJSONIntStrictness(t *testing.T) {
	for _, bad := range []string{
		"", "-", "01", "-042", // leading zeros and bare signs
		"1.5", "1e3", "2E1", // floats in an int slot
		"9999999999999999999",  // 19 digits: overflow territory
		"-9999999999999999999", // likewise
	} {
		if v, n, ok := ParseJSONInt([]byte(bad)); ok && n == len(bad) {
			t.Fatalf("ParseJSONInt(%q) accepted the whole input as %v", bad, v)
		}
	}
	if v, n, ok := ParseJSONInt([]byte(`42,"y":2`)); !ok || n != 2 || v != 42 {
		t.Fatalf("prefix parse = (%v, %d, %v)", v, n, ok)
	}
}

// TestParseRecordJSONSeam pins the dispatch: a JSONParser type decodes
// through its own parser, a plain type through encoding/json, and both
// agree with json.Unmarshal on every payload shape — compact, spaced,
// reordered, and invalid alike.
func TestParseRecordJSONSeam(t *testing.T) {
	payloads := []string{
		`{"pollution":37,"weight_frac":0.6372549019607843}`,
		`{"pollution":0,"weight_frac":0}`,
		`{"pollution":-3,"weight_frac":1.7e-9}`,
		`{ "pollution": 5, "weight_frac": 0.25 }`,               // whitespace: fallback
		`{"weight_frac":0.5,"pollution":9}`,                     // reordered: fallback
		`{"pollution":7,"weight_frac":0.5,"x":1}`,               // extra field: fallback
		`{"pollution":01,"weight_frac":0.5}`,                    // invalid JSON
		`{"pollution":1.5,"weight_frac":0.5}`,                   // float in int slot
		`{"pollution":2,"weight_frac":"0.5"}`,                   // wrong type
		`{"pollution":3,"weight_frac":0.5`,                      // truncated
		`{"pollution":4,"weight_frac":1e999}`,                   // out of range
		`{"pollution":99999999999999999999999,"weight_frac":0}`, // int overflow
	}
	for _, p := range payloads {
		var want benchRecord
		wantErr := json.Unmarshal([]byte(p), &want)
		var got benchRecord
		gotErr := parseRecordJSON([]byte(p), &got)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("%s: error mismatch: json=%v parse=%v", p, wantErr, gotErr)
		}
		if wantErr == nil && (got.Pollution != want.Pollution ||
			math.Float64bits(got.WeightFrac) != math.Float64bits(want.WeightFrac)) {
			t.Fatalf("%s: parse = %+v, json.Unmarshal = %+v", p, got, want)
		}
	}

	// A type without ParseJSON rides encoding/json unchanged.
	type plain struct {
		A string `json:"a"`
		B int    `json:"b"`
	}
	var pl plain
	if err := parseRecordJSON([]byte(`{"a":"x","b":3}`), &pl); err != nil || pl.A != "x" || pl.B != 3 {
		t.Fatalf("plain fallback: %+v, %v", pl, err)
	}
}

// TestRecioRoundTripFastParse pins the end-to-end contract the seam
// exists for: a recio shard written through AppendJSON and read back
// through ParseJSON carries every record bit-identically.
func TestRecioRoundTripFastParse(t *testing.T) {
	sf := benchShard()
	// Splice the torture floats into the shard so the round trip covers
	// the encoder/decoder extremes, not just friendly fractions.
	for i, f := range floatTortureValues {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			continue
		}
		sf.Records[i].WeightFrac = f
	}
	codec := RecioCodec[benchRecord]{}
	path := t.TempDir() + "/shard.rec"
	if err := codec.WriteShard(path, sf); err != nil {
		t.Fatal(err)
	}
	got, err := codec.ReadShard(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(sf.Records) {
		t.Fatalf("%d records, want %d", len(got.Records), len(sf.Records))
	}
	for i := range sf.Records {
		if got.Records[i].Pollution != sf.Records[i].Pollution ||
			math.Float64bits(got.Records[i].WeightFrac) != math.Float64bits(sf.Records[i].WeightFrac) {
			t.Fatalf("record %d: %+v != %+v", i, got.Records[i], sf.Records[i])
		}
	}
}
